// Process-variation modelling: the litho corner set, the realistic joint
// (focus, dose) distribution the paper argues should replace corner-only
// guardbands, per-gate random CD noise (ACLV/LER), and per-gate CD response
// surfaces fitted over the process window so Monte-Carlo sampling does not
// need a litho simulation per sample.
#pragma once

#include <string>
#include <vector>

#include "src/common/linalg.h"
#include "src/common/rng.h"
#include "src/litho/optics.h"

namespace poc {

struct ProcessCorner {
  std::string name;
  Exposure exposure;
};

/// Nominal plus the four litho extremes at ~3 sigma of the distribution
/// below: defocus +/-120 nm, dose +/-6 %.
std::vector<ProcessCorner> standard_corners();

/// Gaussian focus / dose variation plus white per-gate CD noise.
struct VariationModel {
  double focus_sigma_nm = 40.0;
  double dose_sigma = 0.02;
  double aclv_sigma_nm = 1.2;  ///< across-chip linewidth variation per gate

  Exposure sample_exposure(Rng& rng) const;
  double sample_aclv_nm(Rng& rng) const;
};

/// Quadratic-in-focus, quadratic-in-dose CD model:
///   cd(f, d) = c0 + cf2 f^2 + cf f + cd1 (d-1) + cd2 (d-1)^2.
/// A Bossung curve through nominal dose is a parabola in focus; the dose
/// response is markedly asymmetric (over-dose thins a line much faster
/// than under-dose thickens it), so a linear dose term alone badly
/// overstates the slow tail of Monte-Carlo timing.
struct CdResponse {
  double c0 = 0.0;
  double cf2 = 0.0;
  double cf = 0.0;
  double cd1 = 0.0;
  double cd2 = 0.0;

  double eval(const Exposure& e) const {
    const double dd = e.dose - 1.0;
    return c0 + cf2 * e.focus_nm * e.focus_nm + cf * e.focus_nm + cd1 * dd +
           cd2 * dd * dd;
  }
};

/// Least-squares fit over sampled (exposure, cd) observations; needs >= 5
/// samples spanning focus and dose (the 3x3 response_fit_grid suffices).
CdResponse fit_cd_response(
    const std::vector<std::pair<Exposure, double>>& samples);

/// The 3x3 (focus x dose) exposure grid used to sample a gate's process
/// window before fitting.
std::vector<Exposure> response_fit_grid(double focus_span_nm = 120.0,
                                        double dose_span = 0.06);

}  // namespace poc
