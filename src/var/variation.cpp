#include "src/var/variation.h"

#include "src/common/check.h"

namespace poc {

std::vector<ProcessCorner> standard_corners() {
  // Full single- and two-axis corner grid at 3 sigma of the VariationModel
  // defaults.  The single-axis dose corners matter: through-focus CD is not
  // monotonic, so a +/-focus-only stack can miss the worst timing condition
  // entirely (bench T3 demonstrates this).
  return {
      {"nominal", {0.0, 1.00}},
      {"foc+", {120.0, 1.00}},
      {"foc-", {-120.0, 1.00}},
      {"dose+", {0.0, 1.06}},
      {"dose-", {0.0, 0.94}},
      {"foc+dose+", {120.0, 1.06}},
      {"foc+dose-", {120.0, 0.94}},
      {"foc-dose+", {-120.0, 1.06}},
      {"foc-dose-", {-120.0, 0.94}},
  };
}

Exposure VariationModel::sample_exposure(Rng& rng) const {
  return {rng.normal(0.0, focus_sigma_nm), rng.normal(1.0, dose_sigma)};
}

double VariationModel::sample_aclv_nm(Rng& rng) const {
  return rng.normal(0.0, aclv_sigma_nm);
}

CdResponse fit_cd_response(
    const std::vector<std::pair<Exposure, double>>& samples) {
  POC_EXPECTS(samples.size() >= 5);
  const std::size_t rows = samples.size();
  std::vector<double> x(rows * 5);
  std::vector<double> y(rows);
  for (std::size_t r = 0; r < rows; ++r) {
    const Exposure& e = samples[r].first;
    const double dd = e.dose - 1.0;
    x[r * 5 + 0] = 1.0;
    x[r * 5 + 1] = e.focus_nm * e.focus_nm;
    x[r * 5 + 2] = e.focus_nm;
    x[r * 5 + 3] = dd;
    x[r * 5 + 4] = dd * dd;
    y[r] = samples[r].second;
  }
  const std::vector<double> beta = least_squares(x, y, rows, 5);
  return {beta[0], beta[1], beta[2], beta[3], beta[4]};
}

std::vector<Exposure> response_fit_grid(double focus_span_nm,
                                        double dose_span) {
  std::vector<Exposure> grid;
  for (double f : {-focus_span_nm, 0.0, focus_span_nm}) {
    for (double d : {1.0 - dose_span, 1.0, 1.0 + dose_span}) {
      grid.push_back({f, d});
    }
  }
  return grid;
}

}  // namespace poc
