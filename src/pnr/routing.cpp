#include "src/pnr/routing.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/stdcell/layout_gen.h"

namespace poc {
namespace {

Rect vertical_wire(DbUnit x, DbUnit y0, DbUnit y1, DbUnit width) {
  return {x - width / 2, std::min(y0, y1), x + width / 2, std::max(y0, y1)};
}

Rect horizontal_wire(DbUnit y, DbUnit x0, DbUnit x1, DbUnit width) {
  return {std::min(x0, x1), y - width / 2, std::max(x0, x1), y + width / 2};
}

}  // namespace

Um NetRoute::total_length() const {
  Um total = 0.0;
  for (const SinkRoute& s : sinks) total += s.length_m1 + s.length_m2;
  return total;
}

void route_nets(PlacedDesign& design, const PlacementResult& placement,
                const StdCellLibrary& lib) {
  const Netlist& nl = design.netlist;
  const Tech& tech = design.tech;
  design.routes.assign(nl.num_nets(), NetRoute{});

  for (NetIdx n = 0; n < nl.num_nets(); ++n) {
    NetRoute& route = design.routes[n];
    route.net = n;
    const Net& net = nl.net(n);
    if (net.driver == kNoIndex || net.sinks.empty()) continue;

    const GateInst& drv = nl.gate(net.driver);
    const CellSpec& drv_spec = lib.spec(drv.cell);
    const Point drv_pin = placement.transforms[net.driver].apply(
        pin_position(drv_spec, tech, drv_spec.output));

    for (const auto& [sink_gate, sink_pin] : net.sinks) {
      const GateInst& snk = nl.gate(sink_gate);
      const CellSpec& snk_spec = lib.spec(snk.cell);
      const Point snk_pt = placement.transforms[sink_gate].apply(
          pin_position(snk_spec, tech, snk_spec.inputs[sink_pin]));

      SinkRoute sr;
      sr.sink_gate = sink_gate;
      sr.sink_pin = sink_pin;
      // Horizontal M2 leg rides a per-net track near the sink's y so
      // different nets' trunks do not all collapse onto one line.
      const DbUnit track_offset =
          static_cast<DbUnit>((n % 5)) * tech.m2_pitch - 2 * tech.m2_pitch;
      const DbUnit m2_y = snk_pt.y + track_offset;

      // Leg 1: M1 vertical from the driver pin to the M2 track.
      if (drv_pin.y != m2_y) {
        sr.segments.push_back(
            {vertical_wire(drv_pin.x, drv_pin.y, m2_y, tech.m1_width),
             Layer::kMetal1});
        sr.length_m1 += nm_to_um(static_cast<Nm>(std::abs(drv_pin.y - m2_y)));
      }
      // Leg 2: M2 horizontal to the sink's x.
      if (drv_pin.x != snk_pt.x) {
        sr.segments.push_back(
            {horizontal_wire(m2_y, drv_pin.x, snk_pt.x, tech.m2_width),
             Layer::kMetal2});
        sr.length_m2 += nm_to_um(static_cast<Nm>(std::abs(drv_pin.x - snk_pt.x)));
      }
      // Leg 3: M1 vertical from the track down/up to the sink pin.
      if (m2_y != snk_pt.y) {
        sr.segments.push_back(
            {vertical_wire(snk_pt.x, m2_y, snk_pt.y, tech.m1_width),
             Layer::kMetal1});
        sr.length_m1 += nm_to_um(static_cast<Nm>(std::abs(m2_y - snk_pt.y)));
      }
      // Vias at the two bends.
      sr.segments.push_back(
          {Rect::from_center({drv_pin.x, m2_y}, tech.contact_size,
                             tech.contact_size),
           Layer::kVia1});
      sr.segments.push_back(
          {Rect::from_center({snk_pt.x, m2_y}, tech.contact_size,
                             tech.contact_size),
           Layer::kVia1});

      for (const RouteSegment& seg : sr.segments) {
        if (!seg.rect.empty()) {
          design.layout.add_top_shape(Shape::rect(seg.layer, seg.rect));
        }
      }
      route.sinks.push_back(std::move(sr));
    }
  }
}

}  // namespace poc
