#include "src/pnr/placement.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/stdcell/layout_gen.h"

namespace poc {

PlacementResult place_rows(const Netlist& nl, const StdCellLibrary& lib,
                           const Tech& tech, double aspect_ratio,
                           DbUnit row_gap) {
  POC_EXPECTS(aspect_ratio > 0.0);
  // Total cell area decides the row width for the requested aspect ratio.
  double total_width = 0.0;
  for (GateIdx g = 0; g < nl.num_gates(); ++g) {
    total_width +=
        static_cast<double>(cell_width(lib.spec(nl.gate(g).cell), tech));
  }
  const double row_h = static_cast<double>(tech.cell_height + row_gap);
  // width * n_rows*row_h with width/(n_rows*row_h) == aspect:
  const double est_height =
      std::sqrt(total_width * row_h / aspect_ratio);
  const std::size_t n_rows = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::lround(est_height / row_h)));
  const DbUnit row_width_target =
      static_cast<DbUnit>(total_width / static_cast<double>(n_rows)) + 1;

  PlacementResult result;
  result.transforms.resize(nl.num_gates());
  std::size_t row = 0;
  DbUnit x = 0;
  DbUnit max_x = 0;
  // Topological order keeps connected gates physically close.
  for (GateIdx g : nl.topological_order()) {
    const DbUnit w = cell_width(lib.spec(nl.gate(g).cell), tech);
    if (x > 0 && x + w > row_width_target) {
      max_x = std::max(max_x, x);
      x = 0;
      ++row;
    }
    Transform t;
    const DbUnit row_base =
        static_cast<DbUnit>(row) * (tech.cell_height + row_gap);
    if (row % 2 == 0) {
      t.orient = Orient::kR0;
      t.offset = {x, row_base};
    } else {
      // MX maps [0, h] to [-h, 0]; shift up one cell height so the row
      // occupies [row_base, row_base + h] with its VDD rail shared below.
      t.orient = Orient::kMX;
      t.offset = {x, row_base + tech.cell_height};
    }
    result.transforms[g] = t;
    x += w;
  }
  max_x = std::max(max_x, x);
  result.num_rows = row + 1;
  result.block_width = max_x;
  result.block_height =
      static_cast<DbUnit>(result.num_rows) * (tech.cell_height + row_gap);
  return result;
}

}  // namespace poc
