// Row-based placement: gates are packed into standard-cell rows in
// topological order (a cheap locality heuristic — producers end up near
// consumers), alternating row orientation R0/MX so rows share power rails
// like a real standard-cell block.
#pragma once

#include <vector>

#include "src/geom/transform.h"
#include "src/layout/tech.h"
#include "src/netlist/netlist.h"
#include "src/stdcell/library.h"

namespace poc {

struct PlacementResult {
  /// Per netlist gate, the placement transform of its cell instance.
  std::vector<Transform> transforms;
  DbUnit block_width = 0;
  DbUnit block_height = 0;
  std::size_t num_rows = 0;
};

PlacementResult place_rows(const Netlist& nl, const StdCellLibrary& lib,
                           const Tech& tech, double aspect_ratio,
                           DbUnit row_gap);

}  // namespace poc
