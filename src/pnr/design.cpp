#include "src/pnr/design.h"

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/pnr/placement.h"
#include "src/pnr/routing.h"

namespace poc {

std::vector<const PlacedGate*> PlacedDesign::gates_of(GateIdx gate) const {
  POC_EXPECTS(gate < gate_to_instance.size());
  const std::size_t inst = gate_to_instance[gate];
  std::vector<const PlacedGate*> out;
  for (const PlacedGate& pg : layout.placed_gates()) {
    if (pg.instance == inst) out.push_back(&pg);
  }
  return out;
}

Rect PlacedDesign::litho_window(GateIdx gate, DbUnit ambit_nm) const {
  POC_EXPECTS(gate < gate_to_instance.size());
  const Instance& inst = layout.instance(gate_to_instance[gate]);
  const Rect boundary =
      inst.transform.apply(layout.cell(inst.cell).boundary);
  return boundary.inflated(ambit_nm);
}

PlacedDesign place_and_route(const Netlist& nl, const StdCellLibrary& lib,
                             const Tech& tech,
                             const PlaceRouteOptions& options) {
  PlacedDesign design;
  design.netlist = nl;
  design.tech = tech;

  const PlacementResult placement =
      place_rows(nl, lib, tech, options.aspect_ratio, options.row_gap);

  // Register each used cell master once.
  for (GateIdx g = 0; g < nl.num_gates(); ++g) {
    const std::string& cell = nl.gate(g).cell;
    bool have = false;
    for (std::size_t c = 0; c < design.layout.num_cells(); ++c) {
      if (design.layout.cell(c).name == cell) {
        have = true;
        break;
      }
    }
    if (!have) design.layout.add_cell(lib.layout(cell, tech));
  }

  design.gate_to_instance.resize(nl.num_gates());
  for (GateIdx g = 0; g < nl.num_gates(); ++g) {
    Instance inst;
    inst.name = nl.gate(g).name;
    inst.cell = design.layout.cell_index(nl.gate(g).cell);
    inst.transform = placement.transforms[g];
    design.gate_to_instance[g] = design.layout.add_instance(std::move(inst));
  }

  if (options.route) route_nets(design, placement, lib);
  design.layout.freeze();
  log_info("placed ", nl.num_gates(), " gates in ", placement.num_rows,
           " rows (", placement.block_width, " x ", placement.block_height,
           " nm)");
  return design;
}

}  // namespace poc
