// PlacedDesign ties a netlist to its physical implementation: the layout
// database with one instance per gate, routed net geometry, and per-sink
// route lengths for parasitic extraction.  This is the "placed and routed
// full-chip layout" the paper's flow starts from.
#pragma once

#include <string>
#include <vector>

#include "src/layout/layout_db.h"
#include "src/layout/tech.h"
#include "src/netlist/netlist.h"
#include "src/stdcell/library.h"

namespace poc {

/// One routed two-pin connection (driver pin -> sink pin) of a net.
struct RouteSegment {
  Rect rect;      ///< wire shape
  Layer layer = Layer::kMetal1;
};

struct SinkRoute {
  GateIdx sink_gate = kNoIndex;
  std::size_t sink_pin = 0;
  std::vector<RouteSegment> segments;
  Um length_m1 = 0.0;
  Um length_m2 = 0.0;
};

struct NetRoute {
  NetIdx net = kNoIndex;
  std::vector<SinkRoute> sinks;
  Um total_length() const;
};

struct PlacedDesign {
  Netlist netlist{"empty"};  ///< owned copy: a design is self-contained
  LayoutDb layout;
  Tech tech;
  std::vector<NetRoute> routes;          ///< indexed by net
  std::vector<std::size_t> gate_to_instance;  ///< netlist gate -> layout inst

  /// Placed gates (transistors) belonging to a netlist gate instance.
  std::vector<const PlacedGate*> gates_of(GateIdx gate) const;

  /// Bounding window for litho simulation of one instance: the cell
  /// boundary inflated by the optical ambit.
  Rect litho_window(GateIdx gate, DbUnit ambit_nm = 600) const;
};

struct PlaceRouteOptions {
  double aspect_ratio = 1.0;   ///< target width/height of the block
  DbUnit row_gap = 0;          ///< extra space between rows (0 = abutting)
  bool route = true;
};

/// Places every gate of `nl` into rows and routes every net with two-layer
/// L-routes.  Deterministic.
PlacedDesign place_and_route(const Netlist& nl, const StdCellLibrary& lib,
                             const Tech& tech = Tech::default_tech(),
                             const PlaceRouteOptions& options = {});

}  // namespace poc
