// Two-layer L-route router: every driver->sink connection is a vertical
// metal-1 leg at the driver's x followed by a horizontal metal-2 leg on the
// sink's pad row, with vias at the bend and endpoints.  Horizontal legs are
// nudged onto per-net tracks to spread congestion.  This is intentionally a
// construction router (no legality search): its outputs are realistic wire
// lengths for extraction and realistic metal shapes for the multi-layer
// litho experiment.
#pragma once

#include "src/pnr/design.h"
#include "src/pnr/placement.h"

namespace poc {

/// Routes all nets of the design; fills design.routes and adds the wire
/// shapes to design.layout as top-level shapes.  Must run before freeze().
void route_nets(PlacedDesign& design, const PlacementResult& placement,
                const StdCellLibrary& lib);

}  // namespace poc
