// Design-driven metrology (after Capodieci's DDM methodology, the
// measurement side of the paper's ecosystem): CD-SEM measurement plans are
// generated straight from the physical-design database (gate coordinates,
// targets, orientation), a CD-SEM is emulated by sampling the silicon
// simulator with tool noise, and the measurements drive a dose
// recalibration of the OPC model — closing the loop the paper's flow
// depends on ("silicon-calibrated CD values").
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/core/flow.h"

namespace poc {

/// One CD-SEM measurement site, generated from design data.
struct MeasurementSite {
  GateIdx gate = kNoIndex;
  std::string device;      ///< e.g. "g12/MN_A_0"
  Point location;          ///< top-level layout coordinates (cut-line centre)
  double target_cd_nm = 0.0;
};

struct MetrologyPlan {
  std::vector<MeasurementSite> sites;
};

/// CD-SEM tool model: unbiased gaussian measurement noise.
struct CdSemParams {
  double noise_sigma_nm = 0.8;   ///< typical single-measurement 1-sigma
  std::size_t max_sites = 50;    ///< measurement-time budget
};

struct CdMeasurement {
  MeasurementSite site;
  double measured_cd_nm = 0.0;
};

/// Generates a measurement plan directly from the placed design: one site
/// per annotated transistor gate, evenly subsampled to `max_sites` (the
/// DDM concept — coordinates come from the design database, not manual
/// job setup).
MetrologyPlan design_driven_plan(const PlacedDesign& design,
                                 std::size_t max_sites);

/// Emulates a CD-SEM run: measures each planned site on the flow's silicon
/// at `exposure`, with tool noise.  run_opc must have been called.
std::vector<CdMeasurement> simulate_cdsem(const PostOpcFlow& flow,
                                          const MetrologyPlan& plan,
                                          const Exposure& exposure,
                                          const CdSemParams& params, Rng& rng);

/// Result of metrology-driven model calibration.
struct CalibrationResult {
  double dose_correction = 1.0;     ///< multiply model dose by this
  double mean_error_before_nm = 0.0;  ///< model prediction - measurement
  double mean_error_after_nm = 0.0;
};

/// One-parameter (dose) recalibration of the OPC model against silicon
/// measurements: bisects the model dose until the model-predicted mean CD
/// over the measured gates matches the measured mean.  This is the
/// workhorse production loop: full model refits are rare, dose/threshold
/// trims per lot are routine.
CalibrationResult calibrate_model_dose(const PostOpcFlow& flow,
                                       const std::vector<CdMeasurement>& meas,
                                       double dose_lo = 0.90,
                                       double dose_hi = 1.10,
                                       int iterations = 12);

}  // namespace poc
