#include "src/metro/metrology.h"

#include <algorithm>
#include <map>

#include "src/common/check.h"
#include "src/common/log.h"

namespace poc {

MetrologyPlan design_driven_plan(const PlacedDesign& design,
                                 std::size_t max_sites) {
  POC_EXPECTS(max_sites >= 1);
  const Netlist& nl = design.netlist;
  // Candidate sites: every annotated transistor of every gate instance, in
  // deterministic design order.
  std::vector<MeasurementSite> all;
  for (GateIdx g = 0; g < nl.num_gates(); ++g) {
    for (const PlacedGate* pg : design.gates_of(g)) {
      const Instance& inst = design.layout.instance(pg->instance);
      const GateInfo& info =
          design.layout.cell(inst.cell).gates[pg->gate_in_cell];
      MeasurementSite site;
      site.gate = g;
      site.device = nl.gate(g).name + "/" + info.device;
      site.location = pg->region.center();
      site.target_cd_nm = static_cast<double>(info.drawn_l);
      all.push_back(std::move(site));
    }
  }
  MetrologyPlan plan;
  if (all.size() <= max_sites) {
    plan.sites = std::move(all);
  } else {
    // Even spatial/design subsampling.
    for (std::size_t i = 0; i < max_sites; ++i) {
      plan.sites.push_back(all[i * all.size() / max_sites]);
    }
  }
  return plan;
}

std::vector<CdMeasurement> simulate_cdsem(const PostOpcFlow& flow,
                                          const MetrologyPlan& plan,
                                          const Exposure& exposure,
                                          const CdSemParams& params,
                                          Rng& rng) {
  POC_EXPECTS(params.noise_sigma_nm >= 0.0);
  // Group sites by gate so each litho window simulates once.
  std::vector<GateIdx> gates;
  for (const MeasurementSite& s : plan.sites) gates.push_back(s.gate);
  std::sort(gates.begin(), gates.end());
  gates.erase(std::unique(gates.begin(), gates.end()), gates.end());
  const auto extractions = flow.extract(exposure, gates);
  std::map<std::pair<GateIdx, std::string>, double> true_cd;
  const Netlist& nl = flow.design().netlist;
  for (const GateExtraction& ge : extractions) {
    for (const DeviceCd& dev : ge.devices) {
      true_cd[{ge.gate, nl.gate(ge.gate).name + "/" + dev.device}] =
          dev.profile.mean_cd();
    }
  }
  std::vector<CdMeasurement> out;
  const std::size_t n = std::min(plan.sites.size(), params.max_sites);
  for (std::size_t i = 0; i < n; ++i) {
    const MeasurementSite& site = plan.sites[i];
    const auto it = true_cd.find({site.gate, site.device});
    POC_EXPECTS(it != true_cd.end());
    CdMeasurement m;
    m.site = site;
    m.measured_cd_nm = it->second + rng.normal(0.0, params.noise_sigma_nm);
    out.push_back(std::move(m));
  }
  log_info("CD-SEM run: ", out.size(), " sites measured");
  return out;
}

namespace {

double mean_model_cd(const PostOpcFlow& flow,
                     const std::vector<GateIdx>& gates, double dose) {
  const auto ext = flow.extract_with_model({0.0, dose}, gates);
  double sum = 0.0;
  std::size_t n = 0;
  for (const GateExtraction& ge : ext) {
    for (const DeviceCd& dev : ge.devices) {
      if (dev.profile.mean_cd() > 0.0) {
        sum += dev.profile.mean_cd();
        ++n;
      }
    }
  }
  POC_ENSURES(n > 0);
  return sum / static_cast<double>(n);
}

}  // namespace

CalibrationResult calibrate_model_dose(const PostOpcFlow& flow,
                                       const std::vector<CdMeasurement>& meas,
                                       double dose_lo, double dose_hi,
                                       int iterations) {
  POC_EXPECTS(!meas.empty());
  POC_EXPECTS(dose_hi > dose_lo);
  double measured_mean = 0.0;
  std::vector<GateIdx> gates;
  for (const CdMeasurement& m : meas) {
    measured_mean += m.measured_cd_nm;
    gates.push_back(m.site.gate);
  }
  measured_mean /= static_cast<double>(meas.size());
  std::sort(gates.begin(), gates.end());
  gates.erase(std::unique(gates.begin(), gates.end()), gates.end());

  CalibrationResult result;
  result.mean_error_before_nm =
      mean_model_cd(flow, gates, 1.0) - measured_mean;
  // Model CD decreases monotonically with dose; bisect for the match.
  double lo = dose_lo, hi = dose_hi;
  for (int i = 0; i < iterations; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (mean_model_cd(flow, gates, mid) > measured_mean) {
      lo = mid;  // model prints too wide -> raise dose
    } else {
      hi = mid;
    }
  }
  result.dose_correction = (lo + hi) / 2.0;
  result.mean_error_after_nm =
      mean_model_cd(flow, gates, result.dose_correction) - measured_mean;
  log_info("dose calibration: x", result.dose_correction, ", model error ",
           result.mean_error_before_nm, " -> ", result.mean_error_after_nm,
           " nm");
  return result;
}

}  // namespace poc
