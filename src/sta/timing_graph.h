// Explicit levelized timing graph with worklist-driven incremental update —
// the engine behind both the stateless StaEngine::run() and the warm
// timing-query service (service.h).
//
// Model: one timing node per (net, transition) carrying {arrival, slew,
// valid}, one arc per (input pin -> gate output) pair in negative-unate
// NLDM form, plus per-net required times seeded at the clock period.
// Gates are bucketed by logic level (all of a gate's fanin nets level
// strictly below it), which makes the worklist passes level-synchronous:
//
//   * forward (arrivals): dirty gates are re-evaluated level by level
//     ascending; a gate whose output {at, slew, valid} is bit-unchanged
//     cuts propagation — its fanout is NOT re-enqueued.  Gates within one
//     level write disjoint output slots, so big levels evaluate in
//     parallel with bit-identical results at any thread count.
//   * backward (requireds): recomputed lazily, on the first query that
//     needs them (pin slack, gate slacks, full report).  Seeds are the
//     nets whose arrival changed since the last backward flush (their
//     outgoing arc delays moved) plus clock/options changes; propagation
//     walks net levels descending and cuts where the recomputed required
//     is bit-unchanged.
//
// Dirty-marking contract: every mutation that can change an arc delay —
// set_annotation(s), set_parasitics, set_options — marks exactly the gates
// it touches (set_annotations diffs against the current values, so
// re-applying an identical vector is a no-op).  update_delays(changed)
// marks the given gates and flushes arrivals immediately.  After any
// sequence of updates, every query answers bit-identically to a
// from-scratch propagation over the same state — the equivalence fuzz
// harness (tests/sta_incremental_test.cpp) enforces this at 1 and 4
// threads, and the property tests (tests/property_test.cpp) pin the cone
// containment / idempotence / commutativity invariants.
#pragma once

#include <cstddef>
#include <vector>

#include "src/netlist/netlist.h"
#include "src/pex/extractor.h"
#include "src/sta/sta.h"

namespace poc {

class TimingGraph {
 public:
  /// Builds the static structure (levelization, arc wiring, loads) and
  /// marks everything dirty; the first query performs the initial full
  /// propagation.  `threads` bounds the per-level parallel evaluation
  /// (0 = hardware concurrency, 1 = serial); results are bit-identical
  /// for every value.
  TimingGraph(const Netlist& nl, const StdCellLibrary& lib,
              StaOptions options = {}, std::size_t threads = 1);

  const Netlist& netlist() const { return *nl_; }
  const StaOptions& options() const { return options_; }

  // ---- configuration (each marks exactly the affected state dirty) ----

  /// Owning parasitics (indexed by net).  Rebuilds wire delays and loads;
  /// full re-propagation.
  void set_parasitics(std::vector<NetParasitics> parasitics);
  /// Non-owning variant for callers whose parasitics outlive the graph
  /// (StaEngine::run).  Pass nullptr for ideal wires.
  void borrow_parasitics(const std::vector<NetParasitics>* parasitics);

  /// Diffs against the current annotations and marks only gates whose
  /// values actually changed — the incremental entry point for post-OPC
  /// CD updates.  `annotations` must be empty (= all drawn) or per-gate.
  void set_annotations(const std::vector<DelayAnnotation>& annotations);
  void set_annotation(GateIdx gate, const DelayAnnotation& annotation);
  void clear_annotations();
  const std::vector<DelayAnnotation>& annotations() const { return ann_; }

  /// Re-times under new analysis options; dirties the minimum (clock-only
  /// changes invalidate requireds but not arrivals; path knobs nothing).
  void set_options(const StaOptions& options);

  void set_threads(std::size_t threads);
  std::size_t threads() const { return threads_; }

  // ---- incremental update ----

  /// Marks the given gates' arcs changed and re-propagates arrivals
  /// through their fanout cone now; required times follow lazily on the
  /// next query that needs them.
  void update_delays(const std::vector<GateIdx>& changed);
  void mark_dirty(GateIdx gate);
  void mark_all_dirty();
  /// Propagates pending arrival work (no-op when clean).
  void flush();

  // ---- queries (each flushes what it needs) ----

  Ps worst_arrival();
  Ps worst_slack();
  /// All valid PO transitions, worst-first (same order as StaReport).
  std::vector<EndpointTime> endpoint_slacks();
  NodeTime arrival(NetIdx net, bool rising);
  Ps required(NetIdx net, bool rising);
  /// min over valid transitions of required - arrival (clock period when
  /// the net never transitions).
  Ps pin_slack(NetIdx net);
  std::vector<Ps> gate_slacks();
  double total_leakage_ua() const;
  /// Top-k worst paths with explicit deterministic tie-breaking (see
  /// top_paths in paths.h).
  std::vector<TimingPath> top_paths(std::size_t k);
  /// Full report, bit-identical to StaEngine::run() over the same state.
  StaReport report();

  // ---- structure / introspection ----

  std::size_t num_levels() const { return gate_levels_.size(); }
  std::size_t level(GateIdx gate) const { return level_[gate]; }
  /// g plus every gate reachable forward from g (arrivals can only change
  /// inside this set when g's delays change).
  std::vector<GateIdx> fanout_cone(GateIdx gate) const;
  /// Fanin closure of the fanout cone: the only gates whose slacks can
  /// change when g's delays change.  (Required times propagate backward
  /// from re-timed arcs, so siblings feeding g's fanout are affected even
  /// though their arrivals are not.)
  std::vector<GateIdx> affected_region(GateIdx gate) const;

  struct UpdateStats {
    std::size_t forward_flushes = 0;   ///< flushes that found dirty work
    std::size_t backward_flushes = 0;
    std::size_t arrival_evals = 0;     ///< per-gate arrival recomputations
    std::size_t required_evals = 0;    ///< per-net required recomputations
  };
  const UpdateStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  struct GateArrival {
    NodeTime rise, fall;
  };
  struct RequiredPair {
    Ps rise = 0.0, fall = 0.0;
  };

  void build_static();
  void rebuild_parasitic_tables();
  void seed_primary_inputs();
  GateArrival eval_arrival(GateIdx g) const;
  RequiredPair eval_required(NetIdx net) const;
  void ensure_arrivals();
  void ensure_required();
  void enqueue_forward(GateIdx g);
  void enqueue_backward(NetIdx net);
  const std::vector<NetParasitics>& parasitics() const;

  const Netlist* nl_;
  const StdCellLibrary* lib_;
  StaOptions options_;
  std::size_t threads_ = 1;

  std::vector<NetParasitics> owned_parasitics_;
  /// Borrowed parasitics (StaEngine::run); null when owning or ideal.
  const std::vector<NetParasitics>* borrowed_parasitics_ = nullptr;
  bool owns_parasitics_ = false;
  std::vector<DelayAnnotation> ann_;  ///< always num_gates, default = drawn

  // Static structure.
  std::vector<GateIdx> topo_;
  std::vector<std::size_t> level_;                 ///< per gate
  std::vector<std::size_t> net_level_;             ///< driver level (PI = 0)
  std::vector<std::vector<GateIdx>> gate_levels_;  ///< gates per level
  std::size_t max_net_level_ = 0;
  std::vector<std::size_t> pin_offset_;  ///< per gate, into wire_/ordinal_
  std::vector<std::size_t> ordinal_;     ///< sink ordinal per (gate, pin)
  std::vector<Ps> wire_;                 ///< wire delay per (gate, pin)
  std::vector<Ff> load_;                 ///< effective load per net

  // Timing state.
  std::vector<NodeTime> rise_, fall_;  ///< arrivals per net
  std::vector<Ps> req_rise_, req_fall_;

  // Worklists.
  std::vector<char> gate_dirty_;
  std::vector<std::vector<GateIdx>> forward_pending_;  ///< per gate level
  bool any_forward_ = false;
  std::vector<char> net_req_dirty_;
  std::vector<std::vector<NetIdx>> backward_pending_;  ///< per net level
  bool req_full_ = true;    ///< requireds never computed / invalidated
  bool any_backward_ = false;

  UpdateStats stats_;
};

}  // namespace poc
