#include "src/sta/paths.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "src/common/stats.h"

namespace poc {

PathRankComparison compare_path_ranks(const Netlist& nl,
                                      const std::vector<TimingPath>& base,
                                      const std::vector<TimingPath>& other) {
  PathRankComparison cmp;
  std::unordered_map<std::string, std::size_t> other_index;
  for (std::size_t i = 0; i < other.size(); ++i) {
    other_index.emplace(other[i].signature(nl), i);
  }
  std::vector<double> arr_base, arr_other;
  std::vector<std::size_t> base_pos, other_pos;
  for (std::size_t i = 0; i < base.size(); ++i) {
    const auto it = other_index.find(base[i].signature(nl));
    if (it == other_index.end()) continue;
    arr_base.push_back(base[i].arrival);
    arr_other.push_back(other[it->second].arrival);
    base_pos.push_back(i);
    other_pos.push_back(it->second);
  }
  cmp.matched = arr_base.size();
  if (cmp.matched >= 2) {
    cmp.spearman = spearman(arr_base, arr_other);
    cmp.kendall = kendall_tau(arr_base, arr_other);
  }
  for (std::size_t k = 0; k < cmp.matched; ++k) {
    cmp.max_rank_shift =
        std::max(cmp.max_rank_shift,
                 std::abs(static_cast<double>(base_pos[k]) -
                          static_cast<double>(other_pos[k])));
  }
  // Top-10 displacement: of the baseline's 10 worst paths, how many are no
  // longer among the annotated run's 10 worst.
  const std::size_t top_n = std::min<std::size_t>(10, base.size());
  for (std::size_t i = 0; i < top_n; ++i) {
    const auto it = other_index.find(base[i].signature(nl));
    if (it == other_index.end() || it->second >= top_n) ++cmp.top10_displaced;
  }
  if (!base.empty() && !other.empty() &&
      base[0].signature(nl) != other[0].signature(nl)) {
    cmp.rank1_changed = 1;
  }
  return cmp;
}

std::string format_path(const Netlist& nl, const TimingPath& path,
                        std::size_t max_points) {
  std::ostringstream os;
  const std::size_t n = path.points.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (n > max_points && i == max_points / 2) {
      os << "... -> ";
      // Jump to the tail.
      const std::size_t skip = n - max_points;
      i += skip;
    }
    const PathPoint& p = path.points[i];
    os << nl.net(p.net).name << (p.rising ? "^" : "v");
    if (i + 1 < n) os << " -> ";
  }
  os << "  arrival=" << path.arrival << "ps slack=" << path.slack << "ps";
  return os.str();
}

}  // namespace poc
