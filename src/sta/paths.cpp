#include "src/sta/paths.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "src/common/stats.h"

namespace poc {

namespace {

/// Backward DFS path enumeration with arrival-bound pruning and explicit
/// deterministic tie-breaking (pin id) in every ordering.
class Enumerator {
 public:
  Enumerator(const Netlist& nl, const StdCellLibrary& lib,
             const std::vector<DelayAnnotation>& annotations,
             const std::vector<NetParasitics>& parasitics,
             const StaOptions& options, const std::vector<NodeTime>& rise,
             const std::vector<NodeTime>& fall, Ps best_arrival)
      : nl_(nl), lib_(lib), annotations_(annotations), parasitics_(parasitics),
        options_(options), rise_(rise), fall_(fall),
        cutoff_(best_arrival - options.path_window) {}

  std::vector<TimingPath> enumerate() {
    // Endpoints worst-first, so global budgets never drop the most critical
    // paths; ties by endpoint net id, rise before fall.
    struct End {
      NetIdx net;
      bool rising;
      Ps at;
    };
    std::vector<End> ends;
    for (NetIdx e : nl_.primary_outputs()) {
      for (bool rising : {true, false}) {
        const auto& node = rising ? rise_[e] : fall_[e];
        if (node.valid) ends.push_back({e, rising, node.at});
      }
    }
    std::sort(ends.begin(), ends.end(), [](const End& a, const End& b) {
      if (a.at != b.at) return a.at > b.at;
      if (a.net != b.net) return a.net < b.net;
      return a.rising && !b.rising;
    });
    for (const End& end : ends) {
      chain_.clear();
      endpoint_emitted_ = 0;
      walk(end.net, end.rising, 0.0);
    }
    std::sort(paths_.begin(), paths_.end(),
              [](const TimingPath& a, const TimingPath& b) {
                if (a.arrival != b.arrival) return a.arrival > b.arrival;
                return path_less(a, b);
              });
    if (paths_.size() > options_.max_paths) paths_.resize(options_.max_paths);
    for (TimingPath& p : paths_) {
      p.slack = options_.clock_period - p.arrival;
    }
    return std::move(paths_);
  }

 private:
  struct Hop {
    NetIdx net;
    bool rising;
    Ps edge_delay;  ///< delay from this net to the next hop toward endpoint
  };

  /// Total order on equal-arrival paths: endpoint net id, rise before
  /// fall, then lexicographic over traversed (net, transition) points.
  static bool path_less(const TimingPath& a, const TimingPath& b) {
    if (a.endpoint != b.endpoint) return a.endpoint < b.endpoint;
    if (a.endpoint_rising != b.endpoint_rising) return a.endpoint_rising;
    const std::size_t n = std::min(a.points.size(), b.points.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (a.points[i].net != b.points[i].net) {
        return a.points[i].net < b.points[i].net;
      }
      if (a.points[i].rising != b.points[i].rising) return a.points[i].rising;
    }
    return a.points.size() < b.points.size();
  }

  void walk(NetIdx net, bool rising, Ps suffix) {
    if (paths_.size() >= options_.max_paths * 4) return;  // global budget
    if (endpoint_emitted_ >= options_.max_paths) return;  // per endpoint
    const auto& node = rising ? rise_[net] : fall_[net];
    if (!node.valid || node.at + suffix < cutoff_) return;
    const Net& n = nl_.net(net);
    chain_.push_back({net, rising, 0.0});
    if (n.driver == kNoIndex) {
      emit();
      chain_.pop_back();
      return;
    }
    const GateInst& gate = nl_.gate(n.driver);
    const CellTiming& timing = lib_.timing(gate.cell);
    const DelayAnnotation ann =
        annotations_.empty() ? DelayAnnotation{} : annotations_[n.driver];
    const Ff load = sta_net_load(nl_, lib_, parasitics_, net, options_);
    // Expand fanins worst-first so the first completed path per endpoint is
    // its critical path (greedy max-contributor backtrace); ties by input
    // net id.
    struct Cand {
      NetIdx in;
      Ps edge;
      Ps through;  // in-arrival + edge delay
    };
    std::vector<Cand> cands;
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      const NetIdx in = gate.inputs[pin];
      const bool in_rising = !rising;  // negative unate
      const auto& in_node = in_rising ? rise_[in] : fall_[in];
      if (!in_node.valid) continue;
      const TimingArc& arc = timing.arcs[pin];
      const Ps wire = sta_sink_wire_delay(
          parasitics_, in, sta_sink_ordinal(nl_, in, n.driver, pin));
      const Ps slew_in = StaEngine::degraded_slew(in_node.slew, wire);
      const Ps d = (rising
                        ? arc.delay_rise.lookup(slew_in, load) * ann.rise_scale
                        : arc.delay_fall.lookup(slew_in, load) *
                              ann.fall_scale) *
                   options_.late_derate;
      cands.push_back({in, wire + d, in_node.at + wire + d});
    }
    std::sort(cands.begin(), cands.end(), [](const Cand& a, const Cand& b) {
      if (a.through != b.through) return a.through > b.through;
      return a.in < b.in;
    });
    for (const Cand& c : cands) {
      chain_.back().edge_delay = c.edge;
      walk(c.in, !rising, suffix + c.edge);
    }
    chain_.pop_back();
  }

  void emit() {
    TimingPath path;
    // chain_ is endpoint-first; reverse into PI-first with cumulative
    // arrivals.
    Ps cum = 0.0;
    for (std::size_t i = chain_.size(); i-- > 0;) {
      PathPoint pt;
      pt.net = chain_[i].net;
      pt.rising = chain_[i].rising;
      pt.arrival = cum;
      path.points.push_back(pt);
      if (i > 0) cum += chain_[i - 1].edge_delay;
    }
    // The final cumulative value is the path arrival at the endpoint.
    path.points.back().arrival = cum;
    path.arrival = cum;
    path.endpoint = chain_.front().net;
    path.endpoint_rising = chain_.front().rising;
    ++endpoint_emitted_;
    paths_.push_back(std::move(path));
  }

  const Netlist& nl_;
  const StdCellLibrary& lib_;
  const std::vector<DelayAnnotation>& annotations_;
  const std::vector<NetParasitics>& parasitics_;
  const StaOptions& options_;
  const std::vector<NodeTime>& rise_;
  const std::vector<NodeTime>& fall_;
  Ps cutoff_;
  std::vector<Hop> chain_;
  std::vector<TimingPath> paths_;
  std::size_t endpoint_emitted_ = 0;
};

}  // namespace

std::vector<TimingPath> top_paths(const Netlist& nl,
                                  const StdCellLibrary& lib,
                                  const std::vector<DelayAnnotation>& annotations,
                                  const std::vector<NetParasitics>& parasitics,
                                  const StaOptions& options,
                                  const std::vector<NodeTime>& rise,
                                  const std::vector<NodeTime>& fall,
                                  Ps worst_arrival) {
  Enumerator en(nl, lib, annotations, parasitics, options, rise, fall,
                worst_arrival);
  return en.enumerate();
}

PathRankComparison compare_path_ranks(const Netlist& nl,
                                      const std::vector<TimingPath>& base,
                                      const std::vector<TimingPath>& other) {
  PathRankComparison cmp;
  std::unordered_map<std::string, std::size_t> other_index;
  for (std::size_t i = 0; i < other.size(); ++i) {
    other_index.emplace(other[i].signature(nl), i);
  }
  std::vector<double> arr_base, arr_other;
  std::vector<std::size_t> base_pos, other_pos;
  for (std::size_t i = 0; i < base.size(); ++i) {
    const auto it = other_index.find(base[i].signature(nl));
    if (it == other_index.end()) continue;
    arr_base.push_back(base[i].arrival);
    arr_other.push_back(other[it->second].arrival);
    base_pos.push_back(i);
    other_pos.push_back(it->second);
  }
  cmp.matched = arr_base.size();
  if (cmp.matched >= 2) {
    cmp.spearman = spearman(arr_base, arr_other);
    cmp.kendall = kendall_tau(arr_base, arr_other);
  }
  for (std::size_t k = 0; k < cmp.matched; ++k) {
    cmp.max_rank_shift =
        std::max(cmp.max_rank_shift,
                 std::abs(static_cast<double>(base_pos[k]) -
                          static_cast<double>(other_pos[k])));
  }
  // Top-10 displacement: of the baseline's 10 worst paths, how many are no
  // longer among the annotated run's 10 worst.
  const std::size_t top_n = std::min<std::size_t>(10, base.size());
  for (std::size_t i = 0; i < top_n; ++i) {
    const auto it = other_index.find(base[i].signature(nl));
    if (it == other_index.end() || it->second >= top_n) ++cmp.top10_displaced;
  }
  if (!base.empty() && !other.empty() &&
      base[0].signature(nl) != other[0].signature(nl)) {
    cmp.rank1_changed = 1;
  }
  return cmp;
}

std::string format_path(const Netlist& nl, const TimingPath& path,
                        std::size_t max_points) {
  std::ostringstream os;
  const std::size_t n = path.points.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (n > max_points && i == max_points / 2) {
      os << "... -> ";
      // Jump to the tail.
      const std::size_t skip = n - max_points;
      i += skip;
    }
    const PathPoint& p = path.points[i];
    os << nl.net(p.net).name << (p.rising ? "^" : "v");
    if (i + 1 < n) os << " -> ";
  }
  os << "  arrival=" << path.arrival << "ps slack=" << path.slack << "ps";
  return os.str();
}

}  // namespace poc
