// Speed-path comparison utilities for the path-reordering analysis
// (experiment F4): matches paths between two STA runs by signature and
// quantifies how much the criticality ranking reshuffles.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/sta/sta.h"

namespace poc {

struct PathRankComparison {
  std::size_t matched = 0;        ///< paths present in both runs
  double spearman = 1.0;          ///< rank correlation of arrivals
  double kendall = 1.0;
  std::size_t top10_displaced = 0;  ///< baseline top-10 paths outside the
                                    ///< annotated top-10
  std::size_t rank1_changed = 0;    ///< 1 if the most-critical path differs
  double max_rank_shift = 0.0;      ///< largest |rank_a - rank_b|
};

/// Compares two path lists (same design, different analyses).  Paths are
/// matched by full signature; unmatched paths are ignored for the rank
/// statistics but matched counts reveal coverage.
PathRankComparison compare_path_ranks(const Netlist& nl,
                                      const std::vector<TimingPath>& base,
                                      const std::vector<TimingPath>& other);

/// Human-readable one-line path description: PI -> ... -> endpoint.
std::string format_path(const Netlist& nl, const TimingPath& path,
                        std::size_t max_points = 8);

}  // namespace poc
