// Path enumeration and speed-path comparison utilities.
//
// top_paths() is the single enumerator both STA entry points share
// (StaEngine::run and TimingGraph); compare_path_ranks/format_path serve
// the path-reordering analysis (experiment F4).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/sta/sta.h"

namespace poc {

/// Top-K worst paths via backward DFS with arrival-bound pruning over
/// already-propagated arrivals.  All orderings break ties explicitly by
/// pin (net) id — worst-first by arrival, then lowest endpoint net, rise
/// before fall, then lexicographically by traversed net ids — so the
/// ranking is deterministic across levelization and traversal-order
/// changes.  `annotations` is empty (= all drawn) or per-gate;
/// `worst_arrival` sets the enumeration cutoff (path_window below it).
std::vector<TimingPath> top_paths(const Netlist& nl,
                                  const StdCellLibrary& lib,
                                  const std::vector<DelayAnnotation>& annotations,
                                  const std::vector<NetParasitics>& parasitics,
                                  const StaOptions& options,
                                  const std::vector<NodeTime>& rise,
                                  const std::vector<NodeTime>& fall,
                                  Ps worst_arrival);

struct PathRankComparison {
  std::size_t matched = 0;        ///< paths present in both runs
  double spearman = 1.0;          ///< rank correlation of arrivals
  double kendall = 1.0;
  std::size_t top10_displaced = 0;  ///< baseline top-10 paths outside the
                                    ///< annotated top-10
  std::size_t rank1_changed = 0;    ///< 1 if the most-critical path differs
  double max_rank_shift = 0.0;      ///< largest |rank_a - rank_b|
};

/// Compares two path lists (same design, different analyses).  Paths are
/// matched by full signature; unmatched paths are ignored for the rank
/// statistics but matched counts reveal coverage.
PathRankComparison compare_path_ranks(const Netlist& nl,
                                      const std::vector<TimingPath>& base,
                                      const std::vector<TimingPath>& other);

/// Human-readable one-line path description: PI -> ... -> endpoint.
std::string format_path(const Netlist& nl, const TimingPath& path,
                        std::size_t max_points = 8);

}  // namespace poc
