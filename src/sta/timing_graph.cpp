#include "src/sta/timing_graph.h"

#include <algorithm>
#include <cstring>

#include "src/common/check.h"
#include "src/par/thread_pool.h"
#include "src/sta/paths.h"

namespace poc {

namespace {

/// Levels below this evaluate serially — the parallel dispatch overhead
/// dwarfs a handful of table lookups.
constexpr std::size_t kParallelThreshold = 64;
constexpr std::size_t kParallelChunk = 16;

bool same_bits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

bool same_node(const NodeTime& a, const NodeTime& b) {
  return a.valid == b.valid && same_bits(a.at, b.at) &&
         same_bits(a.slew, b.slew);
}

bool same_annotation(const DelayAnnotation& a, const DelayAnnotation& b) {
  return same_bits(a.fall_scale, b.fall_scale) &&
         same_bits(a.rise_scale, b.rise_scale) &&
         same_bits(a.leak_scale, b.leak_scale);
}

const std::vector<NetParasitics>& empty_parasitics() {
  static const std::vector<NetParasitics> empty;
  return empty;
}

}  // namespace

TimingGraph::TimingGraph(const Netlist& nl, const StdCellLibrary& lib,
                         StaOptions options, std::size_t threads)
    : nl_(&nl), lib_(&lib), options_(options) {
  set_threads(threads);
  ann_.assign(nl_->num_gates(), DelayAnnotation{});
  build_static();
  mark_all_dirty();
}

const std::vector<NetParasitics>& TimingGraph::parasitics() const {
  if (owns_parasitics_) return owned_parasitics_;
  return borrowed_parasitics_ != nullptr ? *borrowed_parasitics_
                                         : empty_parasitics();
}

void TimingGraph::set_threads(std::size_t threads) {
  threads_ = resolve_threads(threads == 0 ? 0 : threads);
}

void TimingGraph::build_static() {
  const std::size_t num_gates = nl_->num_gates();
  const std::size_t num_nets = nl_->num_nets();
  topo_ = nl_->topological_order();

  // Levelize: a net's level is its driver's level (primary inputs at 0), a
  // gate sits one above its deepest fanin net.
  level_.assign(num_gates, 0);
  net_level_.assign(num_nets, 0);
  std::size_t max_gate_level = 0;
  for (GateIdx g : topo_) {
    const GateInst& gate = nl_->gate(g);
    std::size_t lvl = 0;
    for (NetIdx in : gate.inputs) lvl = std::max(lvl, net_level_[in]);
    level_[g] = lvl + 1;
    net_level_[gate.output] = lvl + 1;
    max_gate_level = std::max(max_gate_level, lvl + 1);
  }
  gate_levels_.assign(max_gate_level + 1, {});
  for (GateIdx g : topo_) gate_levels_[level_[g]].push_back(g);
  max_net_level_ = 0;
  for (NetIdx n = 0; n < num_nets; ++n) {
    max_net_level_ = std::max(max_net_level_, net_level_[n]);
  }

  // Arc wiring: sink ordinal per (gate, pin), fixed by the netlist.
  pin_offset_.assign(num_gates + 1, 0);
  for (GateIdx g = 0; g < num_gates; ++g) {
    pin_offset_[g + 1] = pin_offset_[g] + nl_->gate(g).inputs.size();
  }
  ordinal_.assign(pin_offset_[num_gates], 0);
  for (GateIdx g = 0; g < num_gates; ++g) {
    const GateInst& gate = nl_->gate(g);
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      ordinal_[pin_offset_[g] + pin] =
          sta_sink_ordinal(*nl_, gate.inputs[pin], g, pin);
    }
  }
  rebuild_parasitic_tables();

  rise_.assign(num_nets, {});
  fall_.assign(num_nets, {});
  req_rise_.assign(num_nets, options_.clock_period);
  req_fall_.assign(num_nets, options_.clock_period);

  gate_dirty_.assign(num_gates, 0);
  forward_pending_.assign(gate_levels_.size(), {});
  net_req_dirty_.assign(num_nets, 0);
  backward_pending_.assign(max_net_level_ + 1, {});
}

void TimingGraph::rebuild_parasitic_tables() {
  const std::vector<NetParasitics>& para = parasitics();
  wire_.assign(ordinal_.size(), 0.0);
  for (GateIdx g = 0; g < nl_->num_gates(); ++g) {
    const GateInst& gate = nl_->gate(g);
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      wire_[pin_offset_[g] + pin] = sta_sink_wire_delay(
          para, gate.inputs[pin], ordinal_[pin_offset_[g] + pin]);
    }
  }
  load_.assign(nl_->num_nets(), 0.0);
  for (NetIdx n = 0; n < nl_->num_nets(); ++n) {
    load_[n] = sta_net_load(*nl_, *lib_, para, n, options_);
  }
}

void TimingGraph::set_parasitics(std::vector<NetParasitics> parasitics) {
  POC_EXPECTS(parasitics.size() == nl_->num_nets());
  owned_parasitics_ = std::move(parasitics);
  owns_parasitics_ = true;
  borrowed_parasitics_ = nullptr;
  rebuild_parasitic_tables();
  mark_all_dirty();
}

void TimingGraph::borrow_parasitics(
    const std::vector<NetParasitics>* parasitics) {
  POC_EXPECTS(parasitics == nullptr || parasitics->empty() ||
              parasitics->size() == nl_->num_nets());
  owns_parasitics_ = false;
  owned_parasitics_.clear();
  borrowed_parasitics_ =
      (parasitics != nullptr && parasitics->empty()) ? nullptr : parasitics;
  rebuild_parasitic_tables();
  mark_all_dirty();
}

void TimingGraph::set_annotations(
    const std::vector<DelayAnnotation>& annotations) {
  POC_EXPECTS(annotations.empty() ||
              annotations.size() == nl_->num_gates());
  for (GateIdx g = 0; g < nl_->num_gates(); ++g) {
    const DelayAnnotation next =
        annotations.empty() ? DelayAnnotation{} : annotations[g];
    if (!same_annotation(ann_[g], next)) {
      ann_[g] = next;
      mark_dirty(g);
    }
  }
}

void TimingGraph::set_annotation(GateIdx gate,
                                 const DelayAnnotation& annotation) {
  POC_EXPECTS(gate < nl_->num_gates());
  if (same_annotation(ann_[gate], annotation)) return;
  ann_[gate] = annotation;
  mark_dirty(gate);
}

void TimingGraph::clear_annotations() { set_annotations({}); }

void TimingGraph::set_options(const StaOptions& options) {
  const bool delays_changed =
      !same_bits(options.input_slew, options_.input_slew) ||
      !same_bits(options.po_load_ff, options_.po_load_ff) ||
      !same_bits(options.late_derate, options_.late_derate);
  const bool clock_changed =
      !same_bits(options.clock_period, options_.clock_period);
  options_ = options;
  if (delays_changed) {
    // PO loads enter every driving gate's table lookups.
    rebuild_parasitic_tables();
    mark_all_dirty();
  } else if (clock_changed) {
    // Arrivals are untouched; only the required-time seed moved.
    req_full_ = true;
  }
}

void TimingGraph::enqueue_forward(GateIdx g) {
  if (gate_dirty_[g]) return;
  gate_dirty_[g] = 1;
  forward_pending_[level_[g]].push_back(g);
  any_forward_ = true;
}

void TimingGraph::enqueue_backward(NetIdx net) {
  if (net_req_dirty_[net]) return;
  net_req_dirty_[net] = 1;
  backward_pending_[net_level_[net]].push_back(net);
  any_backward_ = true;
}

void TimingGraph::mark_dirty(GateIdx gate) {
  POC_EXPECTS(gate < nl_->num_gates());
  enqueue_forward(gate);
  // The gate's own arc delays changed, so the required times of its input
  // nets are stale even if no arrival moves (e.g. an off-critical pin).
  for (NetIdx in : nl_->gate(gate).inputs) enqueue_backward(in);
}

void TimingGraph::mark_all_dirty() {
  for (GateIdx g = 0; g < nl_->num_gates(); ++g) enqueue_forward(g);
  seed_primary_inputs();
  req_full_ = true;
}

void TimingGraph::seed_primary_inputs() {
  for (NetIdx n : nl_->primary_inputs()) {
    const NodeTime seed{0.0, options_.input_slew, true};
    if (!same_node(rise_[n], seed) || !same_node(fall_[n], seed)) {
      rise_[n] = seed;
      fall_[n] = seed;
      for (const auto& [sink, pin] : nl_->net(n).sinks) enqueue_forward(sink);
      enqueue_backward(n);
    }
  }
}

void TimingGraph::update_delays(const std::vector<GateIdx>& changed) {
  for (GateIdx g : changed) mark_dirty(g);
  flush();
}

void TimingGraph::flush() { ensure_arrivals(); }

TimingGraph::GateArrival TimingGraph::eval_arrival(GateIdx g) const {
  const GateInst& gate = nl_->gate(g);
  const CellTiming& timing = lib_->timing(gate.cell);
  const DelayAnnotation& ann = ann_[g];
  const Ff load = load_[gate.output];
  GateArrival out;
  for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
    const NetIdx in = gate.inputs[pin];
    const TimingArc& arc = timing.arcs[pin];
    const Ps wire = wire_[pin_offset_[g] + pin];
    // Negative unate: input rise -> output fall.
    if (rise_[in].valid) {
      const Ps slew_in = StaEngine::degraded_slew(rise_[in].slew, wire);
      const Ps d = arc.delay_fall.lookup(slew_in, load) * ann.fall_scale *
                   options_.late_derate;
      const Ps at = rise_[in].at + wire + d;
      if (!out.fall.valid || at > out.fall.at) {
        out.fall = {at, arc.slew_fall.lookup(slew_in, load) * ann.fall_scale,
                    true};
      }
    }
    if (fall_[in].valid) {
      const Ps slew_in = StaEngine::degraded_slew(fall_[in].slew, wire);
      const Ps d = arc.delay_rise.lookup(slew_in, load) * ann.rise_scale *
                   options_.late_derate;
      const Ps at = fall_[in].at + wire + d;
      if (!out.rise.valid || at > out.rise.at) {
        out.rise = {at, arc.slew_rise.lookup(slew_in, load) * ann.rise_scale,
                    true};
      }
    }
  }
  return out;
}

void TimingGraph::ensure_arrivals() {
  if (!any_forward_) return;
  ++stats_.forward_flushes;
  std::vector<GateArrival> results;
  for (std::size_t lvl = 0; lvl < forward_pending_.size(); ++lvl) {
    std::vector<GateIdx>& work = forward_pending_[lvl];
    if (work.empty()) continue;
    stats_.arrival_evals += work.size();
    results.resize(work.size());
    // Gates within one level read only strictly lower levels and write
    // disjoint slots, so evaluation order is irrelevant — parallelize when
    // the level is big enough to pay for the dispatch.
    const auto eval = [&](std::size_t k) { results[k] = eval_arrival(work[k]); };
    if (threads_ > 1 && work.size() >= kParallelThreshold) {
      parallel_for(threads_, work.size(), kParallelChunk, eval);
    } else {
      for (std::size_t k = 0; k < work.size(); ++k) eval(k);
    }
    // Serial merge in worklist order: push fanout of bit-changed outputs.
    for (std::size_t k = 0; k < work.size(); ++k) {
      const GateIdx g = work[k];
      gate_dirty_[g] = 0;
      const NetIdx out = nl_->gate(g).output;
      if (same_node(rise_[out], results[k].rise) &&
          same_node(fall_[out], results[k].fall)) {
        continue;  // converged: the cone ends here
      }
      rise_[out] = results[k].rise;
      fall_[out] = results[k].fall;
      // The net's own outgoing arc delays depend on its slew.
      enqueue_backward(out);
      for (const auto& [sink, pin] : nl_->net(out).sinks) {
        enqueue_forward(sink);
      }
    }
    work.clear();
  }
  any_forward_ = false;
}

TimingGraph::RequiredPair TimingGraph::eval_required(NetIdx net) const {
  RequiredPair req{options_.clock_period, options_.clock_period};
  for (const auto& [g, pin] : nl_->net(net).sinks) {
    const GateInst& gate = nl_->gate(g);
    const CellTiming& timing = lib_->timing(gate.cell);
    const TimingArc& arc = timing.arcs[pin];
    const DelayAnnotation& ann = ann_[g];
    const Ff load = load_[gate.output];
    const Ps wire = wire_[pin_offset_[g] + pin];
    if (rise_[net].valid) {
      const Ps d =
          arc.delay_fall.lookup(StaEngine::degraded_slew(rise_[net].slew, wire),
                                load) *
          ann.fall_scale * options_.late_derate;
      req.rise = std::min(req.rise, req_fall_[gate.output] - d - wire);
    }
    if (fall_[net].valid) {
      const Ps d =
          arc.delay_rise.lookup(StaEngine::degraded_slew(fall_[net].slew, wire),
                                load) *
          ann.rise_scale * options_.late_derate;
      req.fall = std::min(req.fall, req_rise_[gate.output] - d - wire);
    }
  }
  return req;
}

void TimingGraph::ensure_required() {
  ensure_arrivals();
  if (req_full_) {
    // Full rebuild: seed every net and let the worklist machinery run the
    // from-scratch backward pass (descending levels, all nets).
    for (auto& bucket : backward_pending_) bucket.clear();
    std::fill(net_req_dirty_.begin(), net_req_dirty_.end(), 0);
    req_rise_.assign(nl_->num_nets(), options_.clock_period);
    req_fall_.assign(nl_->num_nets(), options_.clock_period);
    for (NetIdx n = 0; n < nl_->num_nets(); ++n) enqueue_backward(n);
    req_full_ = false;
  }
  if (!any_backward_) return;
  ++stats_.backward_flushes;
  std::vector<RequiredPair> results;
  for (std::size_t lvl = backward_pending_.size(); lvl-- > 0;) {
    std::vector<NetIdx>& work = backward_pending_[lvl];
    if (work.empty()) continue;
    stats_.required_evals += work.size();
    results.resize(work.size());
    // Nets within one level read requireds of strictly higher levels (every
    // sink gate's output sits above) and write disjoint slots.
    const auto eval = [&](std::size_t k) { results[k] = eval_required(work[k]); };
    if (threads_ > 1 && work.size() >= kParallelThreshold) {
      parallel_for(threads_, work.size(), kParallelChunk, eval);
    } else {
      for (std::size_t k = 0; k < work.size(); ++k) eval(k);
    }
    for (std::size_t k = 0; k < work.size(); ++k) {
      const NetIdx n = work[k];
      net_req_dirty_[n] = 0;
      if (same_bits(req_rise_[n], results[k].rise) &&
          same_bits(req_fall_[n], results[k].fall)) {
        continue;
      }
      req_rise_[n] = results[k].rise;
      req_fall_[n] = results[k].fall;
      const GateIdx driver = nl_->net(n).driver;
      if (driver == kNoIndex) continue;
      for (NetIdx in : nl_->gate(driver).inputs) enqueue_backward(in);
    }
    work.clear();
  }
  any_backward_ = false;
}

Ps TimingGraph::worst_arrival() {
  ensure_arrivals();
  Ps worst = 0.0;
  for (NetIdx e : nl_->primary_outputs()) {
    for (bool rising : {true, false}) {
      const NodeTime& node = rising ? rise_[e] : fall_[e];
      if (node.valid) worst = std::max(worst, node.at);
    }
  }
  return worst;
}

Ps TimingGraph::worst_slack() {
  return options_.clock_period - worst_arrival();
}

std::vector<EndpointTime> TimingGraph::endpoint_slacks() {
  ensure_arrivals();
  std::vector<EndpointTime> endpoints;
  for (NetIdx e : nl_->primary_outputs()) {
    for (bool rising : {true, false}) {
      const NodeTime& node = rising ? rise_[e] : fall_[e];
      if (!node.valid) continue;
      EndpointTime et;
      et.net = e;
      et.rising = rising;
      et.arrival = node.at;
      et.slack = options_.clock_period - node.at;
      endpoints.push_back(et);
    }
  }
  std::sort(endpoints.begin(), endpoints.end(),
            [](const EndpointTime& a, const EndpointTime& b) {
              if (a.arrival != b.arrival) return a.arrival > b.arrival;
              if (a.net != b.net) return a.net < b.net;
              return a.rising && !b.rising;
            });
  return endpoints;
}

NodeTime TimingGraph::arrival(NetIdx net, bool rising) {
  ensure_arrivals();
  return rising ? rise_[net] : fall_[net];
}

Ps TimingGraph::required(NetIdx net, bool rising) {
  ensure_required();
  return rising ? req_rise_[net] : req_fall_[net];
}

Ps TimingGraph::pin_slack(NetIdx net) {
  ensure_required();
  Ps slack = options_.clock_period;
  if (rise_[net].valid) {
    slack = std::min(slack, req_rise_[net] - rise_[net].at);
  }
  if (fall_[net].valid) {
    slack = std::min(slack, req_fall_[net] - fall_[net].at);
  }
  return slack;
}

std::vector<Ps> TimingGraph::gate_slacks() {
  ensure_required();
  std::vector<Ps> slacks(nl_->num_gates(), options_.clock_period);
  for (GateIdx g = 0; g < nl_->num_gates(); ++g) {
    slacks[g] = pin_slack(nl_->gate(g).output);
  }
  return slacks;
}

double TimingGraph::total_leakage_ua() const {
  double total = 0.0;
  for (GateIdx g = 0; g < nl_->num_gates(); ++g) {
    total += lib_->timing(nl_->gate(g).cell).leakage_ua * ann_[g].leak_scale;
  }
  return total;
}

std::vector<TimingPath> TimingGraph::top_paths(std::size_t k) {
  ensure_arrivals();
  StaOptions opts = options_;
  opts.max_paths = k;
  return poc::top_paths(*nl_, *lib_, ann_, parasitics(), opts, rise_, fall_,
                        worst_arrival());
}

StaReport TimingGraph::report() {
  ensure_arrivals();
  StaReport report;
  report.endpoints = endpoint_slacks();
  for (const EndpointTime& et : report.endpoints) {
    report.worst_arrival = std::max(report.worst_arrival, et.arrival);
  }
  report.worst_slack = options_.clock_period - report.worst_arrival;
  report.paths = poc::top_paths(*nl_, *lib_, ann_, parasitics(), options_,
                                rise_, fall_, report.worst_arrival);
  report.total_leakage_ua = total_leakage_ua();
  report.gate_slack = gate_slacks();
  return report;
}

std::vector<GateIdx> TimingGraph::fanout_cone(GateIdx gate) const {
  POC_EXPECTS(gate < nl_->num_gates());
  std::vector<char> seen(nl_->num_gates(), 0);
  std::vector<GateIdx> stack{gate};
  seen[gate] = 1;
  while (!stack.empty()) {
    const GateIdx g = stack.back();
    stack.pop_back();
    for (const auto& [sink, pin] : nl_->net(nl_->gate(g).output).sinks) {
      if (!seen[sink]) {
        seen[sink] = 1;
        stack.push_back(sink);
      }
    }
  }
  std::vector<GateIdx> cone;
  for (GateIdx g = 0; g < nl_->num_gates(); ++g) {
    if (seen[g]) cone.push_back(g);
  }
  return cone;
}

std::vector<GateIdx> TimingGraph::affected_region(GateIdx gate) const {
  std::vector<char> seen(nl_->num_gates(), 0);
  std::vector<GateIdx> stack;
  for (GateIdx g : fanout_cone(gate)) {
    seen[g] = 1;
    stack.push_back(g);
  }
  // Fanin closure: required times flow backward out of the re-timed cone.
  while (!stack.empty()) {
    const GateIdx g = stack.back();
    stack.pop_back();
    for (NetIdx in : nl_->gate(g).inputs) {
      const GateIdx driver = nl_->net(in).driver;
      if (driver != kNoIndex && !seen[driver]) {
        seen[driver] = 1;
        stack.push_back(driver);
      }
    }
  }
  std::vector<GateIdx> region;
  for (GateIdx g = 0; g < nl_->num_gates(); ++g) {
    if (seen[g]) region.push_back(g);
  }
  return region;
}

}  // namespace poc
