#include "src/sta/sta.h"

#include <algorithm>
#include <sstream>

#include "src/common/check.h"

namespace poc {

std::string TimingPath::signature(const Netlist& nl) const {
  std::ostringstream os;
  os << (endpoint_rising ? "R:" : "F:");
  for (const PathPoint& p : points) os << nl.net(p.net).name << "/";
  return os.str();
}

StaEngine::StaEngine(const Netlist& nl, const StdCellLibrary& lib)
    : nl_(&nl), lib_(&lib) {}

void StaEngine::set_parasitics(std::vector<NetParasitics> parasitics) {
  POC_EXPECTS(parasitics.size() == nl_->num_nets());
  parasitics_ = std::move(parasitics);
}

void StaEngine::set_annotations(std::vector<DelayAnnotation> annotations) {
  POC_EXPECTS(annotations.size() == nl_->num_gates());
  annotations_ = std::move(annotations);
}

void StaEngine::clear_annotations() { annotations_.clear(); }

Ff StaEngine::net_load(NetIdx net, const StaOptions& options) const {
  const Net& n = nl_->net(net);
  Ff load = 0.0;
  if (!parasitics_.empty()) load += parasitics_[net].wire_cap;
  for (const auto& [sink_gate, pin] : n.sinks) {
    load += lib_->timing(nl_->gate(sink_gate).cell).input_caps[pin];
  }
  if (n.is_primary_output) load += options.po_load_ff;
  if (n.driver != kNoIndex) {
    load += lib_->timing(nl_->gate(n.driver).cell).output_self_cap;
  }
  return load;
}

Ps StaEngine::sink_wire_delay(NetIdx net, std::size_t sink_ordinal) const {
  if (parasitics_.empty()) return 0.0;
  const NetParasitics& p = parasitics_[net];
  if (sink_ordinal >= p.sinks.size()) return 0.0;
  return p.sinks[sink_ordinal].elmore_ps;
}

void StaEngine::propagate(const StaOptions& options,
                          std::vector<NodeTime>& rise,
                          std::vector<NodeTime>& fall) const {
  rise.assign(nl_->num_nets(), {});
  fall.assign(nl_->num_nets(), {});
  for (NetIdx n : nl_->primary_inputs()) {
    rise[n] = {0.0, options.input_slew, true};
    fall[n] = {0.0, options.input_slew, true};
  }
  for (GateIdx g : nl_->topological_order()) {
    const GateInst& gate = nl_->gate(g);
    const CellTiming& timing = lib_->timing(gate.cell);
    const DelayAnnotation ann =
        annotations_.empty() ? DelayAnnotation{} : annotations_[g];
    const Ff load = net_load(gate.output, options);

    NodeTime out_rise{}, out_fall{};
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      const NetIdx in = gate.inputs[pin];
      const TimingArc& arc = timing.arcs[pin];
      // Which sink ordinal of the input net feeds this pin?
      std::size_t ordinal = 0;
      {
        const auto& sinks = nl_->net(in).sinks;
        for (std::size_t k = 0; k < sinks.size(); ++k) {
          if (sinks[k].first == g && sinks[k].second == pin) {
            ordinal = k;
            break;
          }
        }
      }
      const Ps wire = sink_wire_delay(in, ordinal);
      // Negative unate: input rise -> output fall.
      if (rise[in].valid) {
        const Ps slew_in = degraded_slew(rise[in].slew, wire);
        const Ps d = arc.delay_fall.lookup(slew_in, load) * ann.fall_scale *
                     options.late_derate;
        const Ps at = rise[in].at + wire + d;
        if (!out_fall.valid || at > out_fall.at) {
          out_fall = {at, arc.slew_fall.lookup(slew_in, load) * ann.fall_scale,
                      true};
        }
      }
      if (fall[in].valid) {
        const Ps slew_in = degraded_slew(fall[in].slew, wire);
        const Ps d = arc.delay_rise.lookup(slew_in, load) * ann.rise_scale *
                     options.late_derate;
        const Ps at = fall[in].at + wire + d;
        if (!out_rise.valid || at > out_rise.at) {
          out_rise = {at, arc.slew_rise.lookup(slew_in, load) * ann.rise_scale,
                      true};
        }
      }
    }
    rise[gate.output] = out_rise;
    fall[gate.output] = out_fall;
  }
}

namespace {

/// Backward DFS path enumeration with arrival-bound pruning.
class Enumerator {
 public:
  Enumerator(const StaEngine& eng, const Netlist& nl,
             const StdCellLibrary& lib,
             const std::vector<StaEngine::NodeTime>& rise,
             const std::vector<StaEngine::NodeTime>& fall,
             const StaOptions& options, Ps best_arrival)
      : eng_(eng), nl_(nl), lib_(lib), rise_(rise), fall_(fall),
        options_(options), cutoff_(best_arrival - options.path_window) {}

  std::vector<TimingPath> enumerate() {
    // Endpoints worst-first, so global budgets never drop the most critical
    // paths.
    struct End {
      NetIdx net;
      bool rising;
      Ps at;
    };
    std::vector<End> ends;
    for (NetIdx e : nl_.primary_outputs()) {
      for (bool rising : {true, false}) {
        const auto& node = rising ? rise_[e] : fall_[e];
        if (node.valid) ends.push_back({e, rising, node.at});
      }
    }
    std::sort(ends.begin(), ends.end(),
              [](const End& a, const End& b) { return a.at > b.at; });
    for (const End& end : ends) {
      chain_.clear();
      endpoint_emitted_ = 0;
      walk(end.net, end.rising, 0.0);
    }
    std::sort(paths_.begin(), paths_.end(),
              [](const TimingPath& a, const TimingPath& b) {
                return a.arrival > b.arrival;
              });
    if (paths_.size() > options_.max_paths) paths_.resize(options_.max_paths);
    for (TimingPath& p : paths_) {
      p.slack = options_.clock_period - p.arrival;
    }
    return std::move(paths_);
  }

 private:
  struct Hop {
    NetIdx net;
    bool rising;
    Ps edge_delay;  ///< delay from this net to the next hop toward endpoint
  };

  void walk(NetIdx net, bool rising, Ps suffix) {
    if (paths_.size() >= options_.max_paths * 4) return;  // global budget
    if (endpoint_emitted_ >= options_.max_paths) return;  // per endpoint
    const auto& node = rising ? rise_[net] : fall_[net];
    if (!node.valid || node.at + suffix < cutoff_) return;
    const Net& n = nl_.net(net);
    chain_.push_back({net, rising, 0.0});
    if (n.driver == kNoIndex) {
      emit(suffix);
      chain_.pop_back();
      return;
    }
    const GateInst& gate = nl_.gate(n.driver);
    const CellTiming& timing = lib_.timing(gate.cell);
    const DelayAnnotation ann = eng_.annotations().empty()
                                    ? DelayAnnotation{}
                                    : eng_.annotations()[n.driver];
    const Ff load = eng_.net_load(net, options_);
    // Expand fanins worst-first so the first completed path per endpoint is
    // its critical path (greedy max-contributor backtrace).
    struct Cand {
      NetIdx in;
      Ps edge;
      Ps through;  // in-arrival + edge delay
    };
    std::vector<Cand> cands;
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      const NetIdx in = gate.inputs[pin];
      const bool in_rising = !rising;  // negative unate
      const auto& in_node = in_rising ? rise_[in] : fall_[in];
      if (!in_node.valid) continue;
      const TimingArc& arc = timing.arcs[pin];
      std::size_t ordinal = 0;
      {
        const auto& sinks = nl_.net(in).sinks;
        for (std::size_t k = 0; k < sinks.size(); ++k) {
          if (sinks[k].first == n.driver && sinks[k].second == pin) {
            ordinal = k;
            break;
          }
        }
      }
      const Ps wire = eng_.sink_wire_delay(in, ordinal);
      const Ps slew_in = StaEngine::degraded_slew(in_node.slew, wire);
      const Ps d = (rising
                        ? arc.delay_rise.lookup(slew_in, load) * ann.rise_scale
                        : arc.delay_fall.lookup(slew_in, load) *
                              ann.fall_scale) *
                   options_.late_derate;
      cands.push_back({in, wire + d, in_node.at + wire + d});
    }
    std::sort(cands.begin(), cands.end(),
              [](const Cand& a, const Cand& b) { return a.through > b.through; });
    for (const Cand& c : cands) {
      chain_.back().edge_delay = c.edge;
      walk(c.in, !rising, suffix + c.edge);
    }
    chain_.pop_back();
  }

  void emit(Ps total_from_pi) {
    TimingPath path;
    // chain_ is endpoint-first; reverse into PI-first with cumulative
    // arrivals.
    Ps cum = 0.0;
    for (std::size_t i = chain_.size(); i-- > 0;) {
      PathPoint pt;
      pt.net = chain_[i].net;
      pt.rising = chain_[i].rising;
      pt.arrival = cum;
      path.points.push_back(pt);
      if (i > 0) cum += chain_[i - 1].edge_delay;
    }
    // The final cumulative value is the path arrival at the endpoint.
    path.points.back().arrival = cum;
    path.arrival = cum;
    path.endpoint = chain_.front().net;
    path.endpoint_rising = chain_.front().rising;
    (void)total_from_pi;
    ++endpoint_emitted_;
    paths_.push_back(std::move(path));
  }

  const StaEngine& eng_;
  const Netlist& nl_;
  const StdCellLibrary& lib_;
  const std::vector<StaEngine::NodeTime>& rise_;
  const std::vector<StaEngine::NodeTime>& fall_;
  const StaOptions& options_;
  Ps cutoff_;
  std::vector<Hop> chain_;
  std::vector<TimingPath> paths_;
  std::size_t endpoint_emitted_ = 0;
};

}  // namespace

StaReport StaEngine::run(const StaOptions& options) const {
  std::vector<NodeTime> rise, fall;
  propagate(options, rise, fall);

  StaReport report;
  report.worst_slack = options.clock_period;
  for (NetIdx e : nl_->primary_outputs()) {
    for (bool rising : {true, false}) {
      const NodeTime& node = rising ? rise[e] : fall[e];
      if (!node.valid) continue;
      EndpointTime et;
      et.net = e;
      et.rising = rising;
      et.arrival = node.at;
      et.slack = options.clock_period - node.at;
      report.endpoints.push_back(et);
      report.worst_arrival = std::max(report.worst_arrival, node.at);
    }
  }
  std::sort(report.endpoints.begin(), report.endpoints.end(),
            [](const EndpointTime& a, const EndpointTime& b) {
              return a.arrival > b.arrival;
            });
  report.worst_slack = options.clock_period - report.worst_arrival;

  Enumerator en(*this, *nl_, *lib_, rise, fall, options,
                report.worst_arrival);
  report.paths = en.enumerate();

  // Leakage.
  for (GateIdx g = 0; g < nl_->num_gates(); ++g) {
    const double leak = lib_->timing(nl_->gate(g).cell).leakage_ua;
    const double scale =
        annotations_.empty() ? 1.0 : annotations_[g].leak_scale;
    report.total_leakage_ua += leak * scale;
  }

  // Per-gate slack: backward required times.
  std::vector<Ps> req_rise(nl_->num_nets(), options.clock_period);
  std::vector<Ps> req_fall(nl_->num_nets(), options.clock_period);
  const auto order = nl_->topological_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const GateIdx g = *it;
    const GateInst& gate = nl_->gate(g);
    const CellTiming& timing = lib_->timing(gate.cell);
    const DelayAnnotation ann =
        annotations_.empty() ? DelayAnnotation{} : annotations_[g];
    const Ff load = net_load(gate.output, options);
    for (std::size_t pin = 0; pin < gate.inputs.size(); ++pin) {
      const NetIdx in = gate.inputs[pin];
      const TimingArc& arc = timing.arcs[pin];
      std::size_t ordinal = 0;
      {
        const auto& sinks = nl_->net(in).sinks;
        for (std::size_t k = 0; k < sinks.size(); ++k) {
          if (sinks[k].first == g && sinks[k].second == pin) {
            ordinal = k;
            break;
          }
        }
      }
      const Ps wire = sink_wire_delay(in, ordinal);
      if (rise[in].valid) {
        const Ps d = arc.delay_fall.lookup(
                         degraded_slew(rise[in].slew, wire), load) *
                     ann.fall_scale * options.late_derate;
        req_rise[in] = std::min(req_rise[in], req_fall[gate.output] - d - wire);
      }
      if (fall[in].valid) {
        const Ps d = arc.delay_rise.lookup(
                         degraded_slew(fall[in].slew, wire), load) *
                     ann.rise_scale * options.late_derate;
        req_fall[in] = std::min(req_fall[in], req_rise[gate.output] - d - wire);
      }
    }
  }
  report.gate_slack.assign(nl_->num_gates(), options.clock_period);
  for (GateIdx g = 0; g < nl_->num_gates(); ++g) {
    const NetIdx out = nl_->gate(g).output;
    Ps slack = options.clock_period;
    if (rise[out].valid) slack = std::min(slack, req_rise[out] - rise[out].at);
    if (fall[out].valid) slack = std::min(slack, req_fall[out] - fall[out].at);
    report.gate_slack[g] = slack;
  }
  return report;
}

std::vector<GateIdx> StaEngine::critical_gates(const StaOptions& options,
                                               Ps window) const {
  const StaReport report = run(options);
  std::vector<GateIdx> out;
  for (GateIdx g = 0; g < nl_->num_gates(); ++g) {
    if (report.gate_slack[g] <= report.worst_slack + window) out.push_back(g);
  }
  return out;
}

}  // namespace poc
