#include "src/sta/sta.h"

#include <sstream>

#include "src/common/check.h"
#include "src/sta/timing_graph.h"

namespace poc {

std::string TimingPath::signature(const Netlist& nl) const {
  std::ostringstream os;
  os << (endpoint_rising ? "R:" : "F:");
  for (const PathPoint& p : points) os << nl.net(p.net).name << "/";
  return os.str();
}

Ff sta_net_load(const Netlist& nl, const StdCellLibrary& lib,
                const std::vector<NetParasitics>& parasitics, NetIdx net,
                const StaOptions& options) {
  const Net& n = nl.net(net);
  Ff load = 0.0;
  if (!parasitics.empty()) load += parasitics[net].wire_cap;
  for (const auto& [sink_gate, pin] : n.sinks) {
    load += lib.timing(nl.gate(sink_gate).cell).input_caps[pin];
  }
  if (n.is_primary_output) load += options.po_load_ff;
  if (n.driver != kNoIndex) {
    load += lib.timing(nl.gate(n.driver).cell).output_self_cap;
  }
  return load;
}

Ps sta_sink_wire_delay(const std::vector<NetParasitics>& parasitics,
                       NetIdx net, std::size_t sink_ordinal) {
  if (parasitics.empty()) return 0.0;
  const NetParasitics& p = parasitics[net];
  if (sink_ordinal >= p.sinks.size()) return 0.0;
  return p.sinks[sink_ordinal].elmore_ps;
}

std::size_t sta_sink_ordinal(const Netlist& nl, NetIdx net, GateIdx gate,
                             std::size_t pin) {
  const auto& sinks = nl.net(net).sinks;
  for (std::size_t k = 0; k < sinks.size(); ++k) {
    if (sinks[k].first == gate && sinks[k].second == pin) return k;
  }
  return 0;
}

StaEngine::StaEngine(const Netlist& nl, const StdCellLibrary& lib)
    : nl_(&nl), lib_(&lib) {}

void StaEngine::set_parasitics(std::vector<NetParasitics> parasitics) {
  POC_EXPECTS(parasitics.size() == nl_->num_nets());
  parasitics_ = std::move(parasitics);
}

void StaEngine::set_annotations(std::vector<DelayAnnotation> annotations) {
  POC_EXPECTS(annotations.size() == nl_->num_gates());
  annotations_ = std::move(annotations);
}

void StaEngine::clear_annotations() { annotations_.clear(); }

Ff StaEngine::net_load(NetIdx net, const StaOptions& options) const {
  return sta_net_load(*nl_, *lib_, parasitics_, net, options);
}

Ps StaEngine::sink_wire_delay(NetIdx net, std::size_t sink_ordinal) const {
  return sta_sink_wire_delay(parasitics_, net, sink_ordinal);
}

StaReport StaEngine::run(const StaOptions& options) const {
  // A fresh graph per call keeps this entry point stateless (the
  // Monte-Carlo loop calls it concurrently); the warm incremental path is
  // TimingGraph itself.
  TimingGraph graph(*nl_, *lib_, options, /*threads=*/1);
  graph.borrow_parasitics(&parasitics_);
  graph.set_annotations(annotations_);
  return graph.report();
}

std::vector<GateIdx> StaEngine::critical_gates(const StaOptions& options,
                                               Ps window) const {
  const StaReport report = run(options);
  std::vector<GateIdx> out;
  for (GateIdx g = 0; g < nl_->num_gates(); ++g) {
    if (report.gate_slack[g] <= report.worst_slack + window) out.push_back(g);
  }
  return out;
}

}  // namespace poc
