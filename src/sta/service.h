// Long-lived timing-query service over a warm TimingGraph: load a design
// once, then answer a stream of retime / slack / paths / whatif commands
// without ever re-propagating more than the affected cone.  This is the
// interactive counterpart of the batch flow — the paper's selective-OPC
// loop (T4) re-times a handful of gates per iteration, and the
// timing-model-extraction line of work (PAPERS.md) wants exactly this
// "persistent timer" interface.
//
// The service is flow-agnostic (src/sta cannot depend on src/core): a
// whatif candidate is a set of per-gate annotations the caller obtained
// however it likes — examples/timing_service.cpp produces them by
// re-extracting layout windows through the cached/SOCS flow.
//
// Every query updates a per-command latency counter (QueryStats), so a
// driver can report service responsiveness alongside answers.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/sta/timing_graph.h"

namespace poc {

/// Latency aggregate for one command kind.
struct QueryStats {
  std::size_t count = 0;
  double total_us = 0.0;
  double max_us = 0.0;

  double mean_us() const { return count == 0 ? 0.0 : total_us / count; }
};

/// One gate's new delay annotation, as produced by a re-extraction.
struct GateRetime {
  GateIdx gate = kNoIndex;
  DelayAnnotation annotation;
};

/// Outcome of a retime: how the worst slack moved and how much work the
/// incremental engine actually did.
struct RetimeReport {
  Ps worst_slack_before = 0.0;
  Ps worst_slack_after = 0.0;
  std::size_t gates_changed = 0;   ///< gates whose annotation actually moved
  std::size_t arrival_evals = 0;   ///< cone size actually re-propagated
};

/// Outcome of a whatif: the candidate is applied, measured and reverted;
/// the graph answers queries exactly as before afterwards.
struct WhatIfReport {
  Ps worst_slack_before = 0.0;
  Ps worst_slack_after = 0.0;
  Ps delta_ps = 0.0;  ///< after - before (negative = candidate hurts slack)
  std::size_t gates_changed = 0;
};

class TimingService {
 public:
  TimingService(const Netlist& nl, const StdCellLibrary& lib,
                StaOptions options = {}, std::size_t threads = 1);

  /// Wire parasitics for the loaded design (full re-propagation).
  void set_parasitics(std::vector<NetParasitics> parasitics);

  /// Replaces the full annotation set (diffed — unchanged gates cost
  /// nothing).  The way a driver loads a fresh extraction result.
  void load_annotations(const std::vector<DelayAnnotation>& annotations);

  /// `retime <gate-set>`: commit new annotations for the given gates and
  /// re-propagate their cones.
  RetimeReport retime(const std::vector<GateRetime>& changes);

  /// `slack <pin>`: worst slack over the net's valid transitions.
  Ps slack(NetIdx net);
  Ps slack(const std::string& net_name);  ///< throws CheckError if unknown

  Ps worst_slack();

  /// `paths <K>`: top-K worst paths (deterministic tie-breaking).
  std::vector<TimingPath> paths(std::size_t k);

  /// `whatif <candidate>`: apply the candidate annotations, measure the
  /// worst slack, then revert — the graph is bit-identical to its
  /// pre-whatif state afterwards.
  WhatIfReport whatif(const std::vector<GateRetime>& candidate);

  TimingGraph& graph() { return graph_; }
  const TimingGraph& graph() const { return graph_; }

  const QueryStats& retime_stats() const { return retime_stats_; }
  const QueryStats& slack_stats() const { return slack_stats_; }
  const QueryStats& paths_stats() const { return paths_stats_; }
  const QueryStats& whatif_stats() const { return whatif_stats_; }
  /// One line per command kind: count / mean / max latency.
  std::string stats_summary() const;

 private:
  std::size_t apply(const std::vector<GateRetime>& changes);

  const Netlist* nl_;
  TimingGraph graph_;
  QueryStats retime_stats_, slack_stats_, paths_stats_, whatif_stats_;
};

}  // namespace poc
