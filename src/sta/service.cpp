#include "src/sta/service.h"

#include <chrono>
#include <sstream>

#include "src/common/check.h"

namespace poc {

namespace {

class ScopedTimer {
 public:
  explicit ScopedTimer(QueryStats& stats)
      : stats_(stats), start_(std::chrono::steady_clock::now()) {}
  ~ScopedTimer() {
    const double us =
        std::chrono::duration<double, std::micro>(
            std::chrono::steady_clock::now() - start_)
            .count();
    ++stats_.count;
    stats_.total_us += us;
    stats_.max_us = std::max(stats_.max_us, us);
  }

 private:
  QueryStats& stats_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace

TimingService::TimingService(const Netlist& nl, const StdCellLibrary& lib,
                             StaOptions options, std::size_t threads)
    : nl_(&nl), graph_(nl, lib, options, threads) {}

void TimingService::set_parasitics(std::vector<NetParasitics> parasitics) {
  graph_.set_parasitics(std::move(parasitics));
}

void TimingService::load_annotations(
    const std::vector<DelayAnnotation>& annotations) {
  graph_.set_annotations(annotations);
}

std::size_t TimingService::apply(const std::vector<GateRetime>& changes) {
  std::size_t changed = 0;
  for (const GateRetime& c : changes) {
    const DelayAnnotation before = graph_.annotations()[c.gate];
    graph_.set_annotation(c.gate, c.annotation);
    const DelayAnnotation& after = graph_.annotations()[c.gate];
    if (before.fall_scale != after.fall_scale ||
        before.rise_scale != after.rise_scale ||
        before.leak_scale != after.leak_scale) {
      ++changed;
    }
  }
  return changed;
}

RetimeReport TimingService::retime(const std::vector<GateRetime>& changes) {
  ScopedTimer timer(retime_stats_);
  RetimeReport report;
  report.worst_slack_before = graph_.worst_slack();
  const std::size_t evals_before = graph_.stats().arrival_evals;
  report.gates_changed = apply(changes);
  graph_.flush();
  report.arrival_evals = graph_.stats().arrival_evals - evals_before;
  report.worst_slack_after = graph_.worst_slack();
  return report;
}

Ps TimingService::slack(NetIdx net) {
  ScopedTimer timer(slack_stats_);
  POC_EXPECTS(net < nl_->num_nets());
  return graph_.pin_slack(net);
}

Ps TimingService::slack(const std::string& net_name) {
  POC_EXPECTS(nl_->has_net(net_name));
  return slack(nl_->net_index(net_name));
}

Ps TimingService::worst_slack() {
  ScopedTimer timer(slack_stats_);
  return graph_.worst_slack();
}

std::vector<TimingPath> TimingService::paths(std::size_t k) {
  ScopedTimer timer(paths_stats_);
  return graph_.top_paths(k);
}

WhatIfReport TimingService::whatif(const std::vector<GateRetime>& candidate) {
  ScopedTimer timer(whatif_stats_);
  WhatIfReport report;
  report.worst_slack_before = graph_.worst_slack();
  // Save the annotations we are about to overwrite, apply, measure, revert.
  std::vector<GateRetime> saved;
  saved.reserve(candidate.size());
  for (const GateRetime& c : candidate) {
    saved.push_back({c.gate, graph_.annotations()[c.gate]});
  }
  report.gates_changed = apply(candidate);
  report.worst_slack_after = graph_.worst_slack();
  report.delta_ps = report.worst_slack_after - report.worst_slack_before;
  apply(saved);
  graph_.flush();
  return report;
}

std::string TimingService::stats_summary() const {
  std::ostringstream os;
  const auto line = [&os](const char* name, const QueryStats& s) {
    os << name << ": count=" << s.count << " mean_us=" << s.mean_us()
       << " max_us=" << s.max_us << "\n";
  };
  line("retime", retime_stats_);
  line("slack", slack_stats_);
  line("paths", paths_stats_);
  line("whatif", whatif_stats_);
  return os.str();
}

}  // namespace poc
