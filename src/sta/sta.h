// Static timing analysis over the gate-level netlist with NLDM cell tables
// and Elmore wire delays.  Per-gate delay/leakage annotations carry the
// post-OPC extracted CDs into timing — the paper's "back-annotation"
// mechanism — so the same engine runs drawn-CD and silicon-calibrated
// analyses and everything between (corners, Monte Carlo).
//
// Two entry points share one propagation implementation (the levelized
// TimingGraph in timing_graph.h):
//   * StaEngine::run() — stateless from-scratch analysis: builds a fresh
//     graph, marks everything dirty, propagates, reports.  Safe to call
//     concurrently (the Monte-Carlo loop does).
//   * TimingGraph — the warm incremental engine: keeps arrivals/requireds
//     current across update_delays() calls that re-propagate only the
//     affected cone.  The equivalence fuzz harness
//     (tests/sta_incremental_test.cpp) proves both answer bit-identically.
#pragma once

#include <cmath>
#include <string>
#include <vector>

#include "src/netlist/netlist.h"
#include "src/pex/extractor.h"
#include "src/stdcell/library.h"

namespace poc {

/// Multiplicative delay/leakage factors per gate, derived from extracted
/// CDs via the equivalent-gate model (1.0 = drawn).  Falling output delay
/// is set by the NMOS pull-down drive, rising by the PMOS pull-up.
struct DelayAnnotation {
  double fall_scale = 1.0;
  double rise_scale = 1.0;
  double leak_scale = 1.0;
};

struct StaOptions {
  Ps clock_period = 800.0;
  Ps input_slew = 40.0;
  Ff po_load_ff = 4.0;        ///< external load on primary outputs
  std::size_t max_paths = 64;   ///< top-K worst paths to enumerate
  Ps path_window = 50.0;        ///< only paths within this of the worst
  /// OCV-style late derate applied to every cell delay (sign-off margin
  /// for on-chip variation not captured by the annotations).  1.0 = none.
  double late_derate = 1.0;
};

struct PathPoint {
  NetIdx net = kNoIndex;
  bool rising = false;
  Ps arrival = 0.0;  ///< cumulative along this path
};

struct TimingPath {
  std::vector<PathPoint> points;  ///< PI first, endpoint last
  NetIdx endpoint = kNoIndex;
  bool endpoint_rising = false;
  Ps arrival = 0.0;
  Ps slack = 0.0;

  /// Stable identity of the path (endpoint + traversed nets), used to match
  /// the same path across analyses when ranking reorders (experiment F4).
  std::string signature(const Netlist& nl) const;
};

struct EndpointTime {
  NetIdx net = kNoIndex;
  bool rising = false;
  Ps arrival = 0.0;
  Ps slack = 0.0;
};

struct StaReport {
  Ps worst_arrival = 0.0;
  Ps worst_slack = 0.0;
  std::vector<EndpointTime> endpoints;  ///< sorted worst-first
  std::vector<TimingPath> paths;        ///< top-K, worst-first
  double total_leakage_ua = 0.0;
  /// Per-gate slack (min over its output net transitions), for critical-
  /// gate tagging.
  std::vector<Ps> gate_slack;
};

/// Arrival time + transition slew of one (net, transition) timing node.
struct NodeTime {
  Ps at = 0.0;
  Ps slew = 0.0;
  bool valid = false;
};

/// Effective capacitive load on a net's driver (wire + pins + self + PO).
/// The one summation both engines and the path enumerator share — the
/// addition order is part of the bit-identity contract.
Ff sta_net_load(const Netlist& nl, const StdCellLibrary& lib,
                const std::vector<NetParasitics>& parasitics, NetIdx net,
                const StaOptions& options);

/// Elmore wire delay from a net's driver to its k-th sink (0 without
/// parasitics).
Ps sta_sink_wire_delay(const std::vector<NetParasitics>& parasitics,
                       NetIdx net, std::size_t sink_ordinal);

/// Ordinal of (gate, pin) within net's sink list.
std::size_t sta_sink_ordinal(const Netlist& nl, NetIdx net, GateIdx gate,
                             std::size_t pin);

class StaEngine {
 public:
  StaEngine(const Netlist& nl, const StdCellLibrary& lib);

  /// Optional wire parasitics (indexed by net, sink order matching
  /// Net::sinks).  Without them nets are ideal (zero RC).
  void set_parasitics(std::vector<NetParasitics> parasitics);

  /// Optional per-gate annotations (indexed by gate).
  void set_annotations(std::vector<DelayAnnotation> annotations);
  void clear_annotations();

  /// From-scratch analysis: builds a TimingGraph, marks everything dirty,
  /// propagates, reports.  Stateless — safe to call concurrently.
  StaReport run(const StaOptions& options = {}) const;

  /// Gates whose slack is within `window` of the worst (the paper's
  /// critical-gate tagging step).  Runs an STA internally.
  std::vector<GateIdx> critical_gates(const StaOptions& options,
                                      Ps window) const;

  /// Effective capacitive load on a net's driver (wire + pins + self + PO).
  Ff net_load(NetIdx net, const StaOptions& options) const;

  /// Elmore wire delay from a net's driver to its k-th sink.
  Ps sink_wire_delay(NetIdx net, std::size_t sink_ordinal) const;

  /// PERI-style slew degradation across a wire: the sink sees the driver's
  /// transition RMS-combined with the wire's own step response.
  static Ps degraded_slew(Ps driver_slew, Ps wire_elmore_ps) {
    const double wire_slew = 2.2 * wire_elmore_ps;
    return std::sqrt(driver_slew * driver_slew + wire_slew * wire_slew);
  }

  const std::vector<DelayAnnotation>& annotations() const {
    return annotations_;
  }
  const std::vector<NetParasitics>& parasitics() const { return parasitics_; }

  /// Deprecated nested alias; the node type now lives at namespace scope.
  using NodeTime = poc::NodeTime;

 private:
  const Netlist* nl_;
  const StdCellLibrary* lib_;
  std::vector<NetParasitics> parasitics_;
  std::vector<DelayAnnotation> annotations_;
};

}  // namespace poc
