// SPEF (IEEE 1481 Standard Parasitic Exchange Format) export of the
// extracted wire parasitics, so external sign-off tools can consume this
// repo's extraction.  Emits the reduced (R-only path + lumped C) form the
// internal Elmore model uses.
#pragma once

#include <iosfwd>
#include <string>

#include "src/pex/extractor.h"

namespace poc {

/// Writes a SPEF file for the design's routed nets using the given
/// extractor (which carries the litho-measured width scaling, if any).
/// Units: ps / fF / ohm as declared in the header.
void write_spef(std::ostream& os, const PlacedDesign& design,
                const Extractor& extractor);

std::string spef_to_string(const PlacedDesign& design,
                           const Extractor& extractor);

}  // namespace poc
