// Wire parasitic extraction from routed net geometry: per-sink path
// resistance and lumped capacitance from segment lengths, Elmore wire
// delays, with optional litho-measured linewidth scaling (the multi-layer
// extension of the paper's flow, experiment T5): narrower printed metal
// raises R roughly as drawn/printed and lowers lateral C.
#pragma once

#include <vector>

#include "src/pnr/design.h"

namespace poc {

/// Printed/drawn linewidth ratios per routing layer (1.0 = drawn).
struct MetalCdScale {
  double m1_width_ratio = 1.0;
  double m2_width_ratio = 1.0;
};

struct SinkParasitics {
  GateIdx sink_gate = kNoIndex;
  std::size_t sink_pin = 0;
  Ohm path_res = 0.0;
  Ps elmore_ps = 0.0;  ///< wire-only delay, before sink pin cap loading
};

struct NetParasitics {
  Ff wire_cap = 0.0;   ///< total net wire capacitance
  std::vector<SinkParasitics> sinks;
};

class Extractor {
 public:
  Extractor(const Tech& tech, MetalCdScale scale = {})
      : tech_(tech), scale_(scale) {}

  /// Extracts one routed net.  Elmore per sink uses the sink's own L-route
  /// (star approximation): R_path * (C_path/2).
  NetParasitics extract_net(const NetRoute& route) const;

  /// All nets of a design.
  std::vector<NetParasitics> extract_design(const PlacedDesign& design) const;

  Ohm m1_res_per_um() const;
  Ohm m2_res_per_um() const;
  Ff m1_cap_per_um() const;
  Ff m2_cap_per_um() const;

 private:
  Tech tech_;
  MetalCdScale scale_;
};

}  // namespace poc
