#include "src/pex/spef_writer.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/common/check.h"

namespace poc {
namespace {

const char* kPinNames[] = {"A", "B", "C", "D"};

/// SPEF pin reference: <instance>:<pin>.
std::string pin_ref(const Netlist& nl, GateIdx gate, std::size_t pin) {
  return nl.gate(gate).name + ":" + kPinNames[pin];
}

std::string out_ref(const Netlist& nl, GateIdx gate) {
  return nl.gate(gate).name + ":Y";
}

}  // namespace

void write_spef(std::ostream& os, const PlacedDesign& design,
                const Extractor& extractor) {
  const Netlist& nl = design.netlist;
  os << std::fixed << std::setprecision(6);
  os << "*SPEF \"IEEE 1481-1998\"\n";
  os << "*DESIGN \"" << nl.name() << "\"\n";
  os << "*VENDOR \"post-opc-timing\"\n";
  os << "*PROGRAM \"poc_pex\"\n";
  os << "*VERSION \"1.0\"\n";
  os << "*DESIGN_FLOW \"EXTRACTED\"\n";
  os << "*DIVIDER /\n*DELIMITER :\n*BUS_DELIMITER [ ]\n";
  os << "*T_UNIT 1 PS\n*C_UNIT 1 FF\n*R_UNIT 1 OHM\n*L_UNIT 1 HENRY\n\n";

  for (NetIdx n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(n);
    if (net.driver == kNoIndex || net.sinks.empty()) continue;
    if (design.routes.empty()) continue;
    const NetParasitics p = extractor.extract_net(design.routes[n]);
    os << "*D_NET " << net.name << " " << p.wire_cap << "\n";
    os << "*CONN\n";
    os << "*I " << out_ref(nl, net.driver) << " O\n";
    for (const auto& [sink_gate, pin] : net.sinks) {
      os << "*I " << pin_ref(nl, sink_gate, pin) << " I\n";
    }
    // Lumped cap at the driver, series resistance per sink (the reduced
    // star model the internal Elmore computation uses).
    os << "*CAP\n";
    os << "1 " << out_ref(nl, net.driver) << " " << p.wire_cap << "\n";
    os << "*RES\n";
    int res_id = 1;
    for (std::size_t k = 0; k < net.sinks.size(); ++k) {
      const auto& [sink_gate, pin] = net.sinks[k];
      const Ohm r =
          k < p.sinks.size() ? p.sinks[k].path_res : 0.0;
      os << res_id++ << " " << out_ref(nl, net.driver) << " "
         << pin_ref(nl, sink_gate, pin) << " " << r << "\n";
    }
    os << "*END\n\n";
  }
}

std::string spef_to_string(const PlacedDesign& design,
                           const Extractor& extractor) {
  std::ostringstream os;
  write_spef(os, design, extractor);
  return os.str();
}

}  // namespace poc
