#include "src/pex/extractor.h"

#include "src/common/check.h"

namespace poc {

Ohm Extractor::m1_res_per_um() const {
  const double width_um = nm_to_um(static_cast<Nm>(tech_.m1_width)) *
                          scale_.m1_width_ratio;
  POC_EXPECTS(width_um > 0.0);
  return tech_.m1_sheet_res_ohm_sq / width_um;
}

Ohm Extractor::m2_res_per_um() const {
  const double width_um = nm_to_um(static_cast<Nm>(tech_.m2_width)) *
                          scale_.m2_width_ratio;
  POC_EXPECTS(width_um > 0.0);
  return tech_.m2_sheet_res_ohm_sq / width_um;
}

Ff Extractor::m1_cap_per_um() const {
  // Lateral (same-layer) coupling dominates at these pitches; to first
  // order cap tracks linewidth.
  return tech_.m1_cap_per_um_ff * scale_.m1_width_ratio;
}

Ff Extractor::m2_cap_per_um() const {
  return tech_.m2_cap_per_um_ff * scale_.m2_width_ratio;
}

NetParasitics Extractor::extract_net(const NetRoute& route) const {
  NetParasitics out;
  for (const SinkRoute& sr : route.sinks) {
    SinkParasitics sp;
    sp.sink_gate = sr.sink_gate;
    sp.sink_pin = sr.sink_pin;
    const Ohm res = sr.length_m1 * m1_res_per_um() +
                    sr.length_m2 * m2_res_per_um();
    const Ff cap = sr.length_m1 * m1_cap_per_um() +
                   sr.length_m2 * m2_cap_per_um();
    sp.path_res = res + 2.0 * tech_.contact_res_ohm;  // two vias per route
    sp.elmore_ps = rc_to_ps(sp.path_res, cap / 2.0);
    out.wire_cap += cap;
    out.sinks.push_back(sp);
  }
  return out;
}

std::vector<NetParasitics> Extractor::extract_design(
    const PlacedDesign& design) const {
  std::vector<NetParasitics> out;
  out.reserve(design.routes.size());
  for (const NetRoute& r : design.routes) out.push_back(extract_net(r));
  return out;
}

}  // namespace poc
