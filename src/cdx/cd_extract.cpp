#include "src/cdx/cd_extract.h"

#include <algorithm>

#include "src/cdx/contour.h"
#include "src/common/check.h"

namespace poc {

bool GateCdProfile::printed() const {
  if (slice_cd_nm.empty()) return false;
  return std::all_of(slice_cd_nm.begin(), slice_cd_nm.end(),
                     [](double cd) { return cd > 0.0; });
}

double GateCdProfile::mean_cd() const {
  double sum = 0.0;
  std::size_t n = 0;
  for (double cd : slice_cd_nm) {
    if (cd > 0.0) {
      sum += cd;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

double GateCdProfile::min_cd() const {
  double m = 0.0;
  bool first = true;
  for (double cd : slice_cd_nm) {
    m = first ? cd : std::min(m, cd);
    first = false;
  }
  return m;
}

double GateCdProfile::max_cd() const {
  double m = 0.0;
  for (double cd : slice_cd_nm) m = std::max(m, cd);
  return m;
}

GateCdProfile extract_gate_cd(const Image2D& latent, double threshold,
                              const Rect& gate_region, bool vertical_poly,
                              const CdExtractOptions& opts) {
  POC_EXPECTS(!gate_region.empty());
  POC_EXPECTS(opts.num_slices >= 1);
  POC_EXPECTS(opts.edge_trim_fraction >= 0.0 && opts.edge_trim_fraction < 0.5);

  GateCdProfile profile;
  // For vertical poly the channel length (CD) spans x and the width spans y.
  const double cd_lo = static_cast<double>(vertical_poly ? gate_region.xlo
                                                         : gate_region.ylo);
  const double cd_hi = static_cast<double>(vertical_poly ? gate_region.xhi
                                                         : gate_region.yhi);
  const double w_lo = static_cast<double>(vertical_poly ? gate_region.ylo
                                                        : gate_region.xlo);
  const double w_hi = static_cast<double>(vertical_poly ? gate_region.yhi
                                                        : gate_region.xhi);
  profile.drawn_cd_nm = cd_hi - cd_lo;
  const double centre_cd = (cd_lo + cd_hi) / 2.0;

  const double usable = (w_hi - w_lo) * (1.0 - 2.0 * opts.edge_trim_fraction);
  const double start = w_lo + (w_hi - w_lo) * opts.edge_trim_fraction;
  profile.slice_width_nm = (w_hi - w_lo) / static_cast<double>(opts.num_slices);
  const double reach = profile.drawn_cd_nm * opts.reach_factor;

  for (std::size_t s = 0; s < opts.num_slices; ++s) {
    // Cut-line positions span the trimmed width evenly (midpoint sampling).
    const double t = (static_cast<double>(s) + 0.5) /
                     static_cast<double>(opts.num_slices);
    const double w_pos = start + usable * t;
    const ContourPoint centre = vertical_poly
                                    ? ContourPoint{centre_cd, w_pos}
                                    : ContourPoint{w_pos, centre_cd};
    const auto cd = printed_width(latent, threshold, centre,
                                  /*horizontal=*/vertical_poly, reach);
    profile.slice_cd_nm.push_back(cd.value_or(0.0));
  }
  return profile;
}

std::optional<double> extract_wire_cd(const Image2D& latent, double threshold,
                                      const Rect& wire_segment,
                                      bool horizontal_cd,
                                      double reach_factor) {
  POC_EXPECTS(!wire_segment.empty());
  const Point c = wire_segment.center();
  const double drawn = static_cast<double>(
      horizontal_cd ? wire_segment.width() : wire_segment.height());
  return printed_width(latent, threshold,
                       {static_cast<double>(c.x), static_cast<double>(c.y)},
                       horizontal_cd, drawn * reach_factor);
}

}  // namespace poc
