// Iso-contour utilities on latent images: sub-pixel threshold crossings
// along probe segments (the CD measurement primitive) and marching-squares
// contour tracing (used by ORC checks and layout dumps).
#pragma once

#include <optional>
#include <vector>

#include "src/litho/image.h"

namespace poc {

struct ContourPoint {
  double x = 0.0;
  double y = 0.0;
};

/// A traced iso-line; closed when the first and last points coincide.
struct ContourPath {
  std::vector<ContourPoint> points;
  bool closed = false;

  double length() const;
};

/// Finds the first threshold crossing of the (bilinear) field along the
/// segment p0 -> p1, refined by bisection to ~0.01 nm.  Returns the distance
/// from p0 in nm, or nullopt if the field never crosses.
std::optional<double> first_crossing(const Image2D& img, double threshold,
                                     ContourPoint p0, ContourPoint p1,
                                     double step_nm);

/// Width of the below-threshold interval containing `center` along the
/// horizontal (dx=1) or vertical (dx=0) direction: scans outward both ways
/// up to max_reach_nm.  Returns nullopt if `center` itself is not below
/// threshold (feature failed to print: pinched away).
std::optional<double> printed_width(const Image2D& img, double threshold,
                                    ContourPoint center, bool horizontal,
                                    double max_reach_nm);

/// Marching-squares contour extraction at `threshold` with linear
/// interpolation; segments are assembled into paths.
std::vector<ContourPath> trace_contours(const Image2D& img, double threshold);

}  // namespace poc
