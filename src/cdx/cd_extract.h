// Post-OPC extraction of critical dimensions — the step the paper's title
// names.  Given a latent image covering a transistor gate region, measures
// the printed poly linewidth on a ladder of cut-lines across the channel.
// The per-slice CDs feed the non-rectangular device model (src/device); the
// summary statistics feed reporting (experiments T1/F1).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/geom/rect.h"
#include "src/litho/image.h"

namespace poc {

/// Measured CDs across one transistor gate.
struct GateCdProfile {
  /// One printed-linewidth sample per cut-line, ordered along the channel
  /// width.  Slices where the line failed to print hold 0.
  std::vector<double> slice_cd_nm;
  /// Channel width represented by each slice (nm).
  double slice_width_nm = 0.0;
  double drawn_cd_nm = 0.0;

  bool printed() const;        ///< all slices printed
  double mean_cd() const;      ///< mean over printed slices (0 if none)
  double min_cd() const;
  double max_cd() const;
  /// Mean CD minus drawn CD: the residual the paper extracts.
  double residual_nm() const { return mean_cd() - drawn_cd_nm; }
};

struct CdExtractOptions {
  /// Fraction of the channel width trimmed at each end before placing
  /// cut-lines (avoids diffusion-edge rounding corrupting the CD).
  double edge_trim_fraction = 0.12;
  std::size_t num_slices = 7;
  /// Scan reach as a multiple of drawn CD when hunting the line edge.
  double reach_factor = 3.0;
};

/// Measures the gate whose drawn channel area is `gate_region` (top-level
/// layout coords, already inside the image).  `vertical_poly` true means the
/// poly line runs vertically, so CD (channel length) is measured along x and
/// the slice ladder steps along y.
GateCdProfile extract_gate_cd(const Image2D& latent, double threshold,
                              const Rect& gate_region, bool vertical_poly,
                              const CdExtractOptions& opts = {});

/// Printed linewidth of a straight wire segment at its midpoint (used for
/// the multi-layer metal extraction, experiment T5).  `horizontal_cd` true
/// measures across x.  Returns nullopt when the segment did not print.
std::optional<double> extract_wire_cd(const Image2D& latent, double threshold,
                                      const Rect& wire_segment,
                                      bool horizontal_cd,
                                      double reach_factor = 3.0);

}  // namespace poc
