#include "src/cdx/contour.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "src/common/check.h"

namespace poc {
namespace {

double dist(ContourPoint a, ContourPoint b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Bisection refinement of a crossing bracketed between t0 and t1 along
/// p0 + t * (p1 - p0), t in [0, 1].
double refine(const Image2D& img, double threshold, ContourPoint p0,
              ContourPoint p1, double t0, double t1) {
  const auto value = [&](double t) {
    return img.sample(p0.x + (p1.x - p0.x) * t, p0.y + (p1.y - p0.y) * t) -
           threshold;
  };
  double f0 = value(t0);
  for (int i = 0; i < 40; ++i) {
    const double tm = (t0 + t1) / 2.0;
    const double fm = value(tm);
    if ((f0 < 0) == (fm < 0)) {
      t0 = tm;
      f0 = fm;
    } else {
      t1 = tm;
    }
  }
  return (t0 + t1) / 2.0;
}

}  // namespace

double ContourPath::length() const {
  double total = 0.0;
  for (std::size_t i = 0; i + 1 < points.size(); ++i) {
    total += dist(points[i], points[i + 1]);
  }
  return total;
}

std::optional<double> first_crossing(const Image2D& img, double threshold,
                                     ContourPoint p0, ContourPoint p1,
                                     double step_nm) {
  POC_EXPECTS(step_nm > 0.0);
  const double total = dist(p0, p1);
  if (total <= 0.0) return std::nullopt;
  const auto n = static_cast<std::size_t>(std::ceil(total / step_nm));
  double prev_t = 0.0;
  double prev_v = img.sample(p0.x, p0.y) - threshold;
  for (std::size_t i = 1; i <= n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n);
    const double v =
        img.sample(p0.x + (p1.x - p0.x) * t, p0.y + (p1.y - p0.y) * t) -
        threshold;
    if ((prev_v < 0) != (v < 0)) {
      return refine(img, threshold, p0, p1, prev_t, t) * total;
    }
    prev_t = t;
    prev_v = v;
  }
  return std::nullopt;
}

std::optional<double> printed_width(const Image2D& img, double threshold,
                                    ContourPoint center, bool horizontal,
                                    double max_reach_nm) {
  POC_EXPECTS(max_reach_nm > 0.0);
  if (img.sample(center.x, center.y) >= threshold) return std::nullopt;
  const double dx = horizontal ? max_reach_nm : 0.0;
  const double dy = horizontal ? 0.0 : max_reach_nm;
  const double step = img.pixel() / 2.0;
  const auto right = first_crossing(img, threshold, center,
                                    {center.x + dx, center.y + dy}, step);
  const auto left = first_crossing(img, threshold, center,
                                   {center.x - dx, center.y - dy}, step);
  if (!right || !left) return std::nullopt;
  return *right + *left;
}

std::vector<ContourPath> trace_contours(const Image2D& img, double threshold) {
  // Marching squares: for every grid cell, emit the interpolated segment(s)
  // separating below- from above-threshold corners, then stitch segments
  // that share endpoints into paths.
  struct Seg {
    ContourPoint a, b;
  };
  std::vector<Seg> segs;
  const std::size_t nx = img.nx();
  const std::size_t ny = img.ny();

  const auto lerp_x = [&](std::size_t ix, std::size_t iy) {
    const double v0 = img.at(ix, iy) - threshold;
    const double v1 = img.at(ix + 1, iy) - threshold;
    const double t = v0 / (v0 - v1);
    return ContourPoint{img.x_of(ix) + t * img.pixel(), img.y_of(iy)};
  };
  const auto lerp_y = [&](std::size_t ix, std::size_t iy) {
    const double v0 = img.at(ix, iy) - threshold;
    const double v1 = img.at(ix, iy + 1) - threshold;
    const double t = v0 / (v0 - v1);
    return ContourPoint{img.x_of(ix), img.y_of(iy) + t * img.pixel()};
  };

  for (std::size_t iy = 0; iy + 1 < ny; ++iy) {
    for (std::size_t ix = 0; ix + 1 < nx; ++ix) {
      // Corner occupancy: bit set if below threshold (inside feature).
      const bool b00 = img.at(ix, iy) < threshold;
      const bool b10 = img.at(ix + 1, iy) < threshold;
      const bool b01 = img.at(ix, iy + 1) < threshold;
      const bool b11 = img.at(ix + 1, iy + 1) < threshold;
      const int code = (b00 ? 1 : 0) | (b10 ? 2 : 0) | (b11 ? 4 : 0) |
                       (b01 ? 8 : 0);
      if (code == 0 || code == 15) continue;
      const ContourPoint bottom = (b00 != b10) ? lerp_x(ix, iy) : ContourPoint{};
      const ContourPoint top = (b01 != b11) ? lerp_x(ix, iy + 1) : ContourPoint{};
      const ContourPoint left = (b00 != b01) ? lerp_y(ix, iy) : ContourPoint{};
      const ContourPoint right = (b10 != b11) ? lerp_y(ix + 1, iy) : ContourPoint{};
      switch (code) {
        case 1: case 14: segs.push_back({left, bottom}); break;
        case 2: case 13: segs.push_back({bottom, right}); break;
        case 3: case 12: segs.push_back({left, right}); break;
        case 4: case 11: segs.push_back({top, right}); break;
        case 6: case 9:  segs.push_back({bottom, top}); break;
        case 7: case 8:  segs.push_back({left, top}); break;
        case 5:  // saddle: resolve by centre sample
        case 10: {
          const double centre =
              (img.at(ix, iy) + img.at(ix + 1, iy) + img.at(ix, iy + 1) +
               img.at(ix + 1, iy + 1)) / 4.0;
          const bool centre_in = centre < threshold;
          if ((code == 5) == centre_in) {
            segs.push_back({left, top});
            segs.push_back({bottom, right});
          } else {
            segs.push_back({left, bottom});
            segs.push_back({top, right});
          }
          break;
        }
        default: break;
      }
    }
  }

  // Stitch segments into paths via endpoint hashing on a fine key grid.
  const double quant = img.pixel() * 1e-4;
  const auto key_of = [&](ContourPoint p) {
    return std::pair<long long, long long>(
        static_cast<long long>(std::llround(p.x / quant)),
        static_cast<long long>(std::llround(p.y / quant)));
  };
  // A contour passing exactly through a grid corner produces degenerate
  // zero-length segments; drop them before stitching.
  std::erase_if(segs, [&](const Seg& s) { return key_of(s.a) == key_of(s.b); });
  std::multimap<std::pair<long long, long long>, std::size_t> by_end;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    by_end.emplace(key_of(segs[i].a), i);
    by_end.emplace(key_of(segs[i].b), i);
  }
  std::vector<bool> used(segs.size(), false);
  std::vector<ContourPath> paths;
  for (std::size_t start = 0; start < segs.size(); ++start) {
    if (used[start]) continue;
    used[start] = true;
    ContourPath path;
    path.points = {segs[start].a, segs[start].b};
    // Extend forward from the tail, then (if open) backward from the head.
    for (int pass = 0; pass < 2; ++pass) {
      bool extended = true;
      while (extended) {
        extended = false;
        const ContourPoint tail = path.points.back();
        const auto range = by_end.equal_range(key_of(tail));
        for (auto it = range.first; it != range.second; ++it) {
          const std::size_t si = it->second;
          if (used[si]) continue;
          const bool tail_is_a =
              key_of(segs[si].a) == key_of(tail);
          path.points.push_back(tail_is_a ? segs[si].b : segs[si].a);
          used[si] = true;
          extended = true;
          break;
        }
        if (key_of(path.points.front()) == key_of(path.points.back()) &&
            path.points.size() > 2) {
          path.closed = true;
          break;
        }
      }
      if (path.closed) break;
      std::reverse(path.points.begin(), path.points.end());
    }
    paths.push_back(std::move(path));
  }
  return paths;
}

}  // namespace poc
