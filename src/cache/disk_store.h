// Disk-backed content-addressed store behind ShardedCache: the spill tier
// that lets N worker processes share one window cache.  Each entry is a
// file named by the 128-bit fingerprint, holding [magic, length, payload,
// crc64(payload)].  Publication is atomic and first-insert-wins — a writer
// fills an unlinked O_TMPFILE (or a private temp file) and links it under
// the final name, so concurrent writers of the same fingerprint race
// benignly: exactly one link succeeds, the loser discards its bits, and a
// reader never observes a partially written entry.  Because entries are
// keyed by a fingerprint covering every result-affecting input, the loser's
// bits equal the winner's anyway; first-insert-wins is the same policy the
// in-memory shards apply.
//
// Failure policy mirrors the run journal: an I/O error never perturbs
// results.  get() misses, put() drops the entry, and the counters record
// what happened — the store is a pure performance layer.  A *publish* I/O
// error (EIO, ENOSPC — not a lost race) additionally takes the whole disk
// tier down for the rest of the run: the disk is misbehaving, so every
// subsequent probe/publish short-circuits to a miss/no-op with counters
// frozen, and the in-memory tier keeps serving alone.  degraded() reports
// the tier-down so the flow can surface a phase-"cache" health entry.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/cache/fingerprint.h"

namespace poc {

class DiskCacheStore {
 public:
  struct Options {
    /// Size quota over the published entry files.  When a publish pushes
    /// the store past the quota, the oldest entries (mtime, then name) are
    /// pruned until it fits — first-insert-wins makes a pruned entry just
    /// a future recompute-and-republish.  0 = unbounded.
    std::uint64_t max_bytes = 0;
  };

  /// Opens (creating if needed) the store directory.  A directory that
  /// cannot be created parks the store inert: every probe misses, every
  /// publish is dropped, and ok() reports false.
  explicit DiskCacheStore(std::string dir);
  DiskCacheStore(std::string dir, const Options& options);

  DiskCacheStore(const DiskCacheStore&) = delete;
  DiskCacheStore& operator=(const DiskCacheStore&) = delete;

  bool ok() const { return ok_; }
  const std::string& dir() const { return dir_; }

  /// True once a publish I/O error has taken the disk tier down: the
  /// memory tier keeps serving, this store answers nothing.
  bool degraded() const {
    return tier_down_.load(std::memory_order_relaxed);
  }

  /// True when an entry for `fp` has been published (by any process).
  bool contains(const Fingerprint& fp) const;

  /// Loads and validates the entry for `fp`.  False on absence or on a
  /// corrupt file (bad magic/length/checksum) — corruption counts in
  /// load_failures and the caller recomputes.
  bool get(const Fingerprint& fp, std::vector<std::uint8_t>* out) const;

  /// Publishes `size` bytes under `fp` (first-insert-wins).  Returns true
  /// when this call created the entry; false when it already existed, lost
  /// the publish race, or I/O failed.
  bool put(const Fingerprint& fp, const std::uint8_t* data, std::size_t size);

  struct Counters {
    std::uint64_t probes = 0;         ///< contains() + get() calls
    std::uint64_t loads = 0;          ///< successful get()
    std::uint64_t load_failures = 0;  ///< corrupt/unreadable entries
    std::uint64_t publishes = 0;      ///< entries this process created
    std::uint64_t races_lost = 0;     ///< entry appeared first elsewhere
    std::uint64_t io_errors = 0;
    std::uint64_t pruned_entries = 0;  ///< entries evicted by the quota
    std::uint64_t pruned_bytes = 0;    ///< bytes evicted by the quota
  };
  Counters counters() const;

  /// Entry file path for `fp` (fingerprint hex under the store directory).
  std::string entry_path(const Fingerprint& fp) const;

 private:
  /// Takes the tier down after a publish I/O error.
  void publish_io_error();
  /// Evicts oldest entries (never `keep_path`) until the quota fits.
  void prune_locked(const std::string& keep_path);

  std::string dir_;
  Options options_;
  bool ok_ = false;
  std::atomic<bool> tier_down_{false};

  /// Quota bookkeeping (only maintained when max_bytes > 0).
  std::mutex quota_mutex_;
  std::uint64_t stored_bytes_ = 0;  ///< guarded by quota_mutex_

  mutable std::atomic<std::uint64_t> probes_{0};
  mutable std::atomic<std::uint64_t> loads_{0};
  mutable std::atomic<std::uint64_t> load_failures_{0};
  std::atomic<std::uint64_t> publishes_{0};
  std::atomic<std::uint64_t> races_lost_{0};
  mutable std::atomic<std::uint64_t> io_errors_{0};
  std::atomic<std::uint64_t> pruned_entries_{0};
  std::atomic<std::uint64_t> pruned_bytes_{0};
  std::atomic<std::uint64_t> op_seq_{0};  ///< fault::Scope index per publish
};

}  // namespace poc
