#include "src/cache/fingerprint.h"

#include <bit>

namespace poc {
namespace {

constexpr std::uint64_t kGamma = 0x9e3779b97f4a7c15ULL;

/// SplitMix64 finalizer (same mix as Rng's, duplicated here so poc_cache
/// stays a leaf over poc_common/poc_geom without pulling in <random>).
constexpr std::uint64_t mix64(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

FpHasher& FpHasher::u64(std::uint64_t v) {
  h1_ = mix64(h1_ + kGamma + v);
  h2_ = mix64(h2_ ^ (v + kGamma + (h2_ << 7) + (h2_ >> 9)));
  return *this;
}

FpHasher& FpHasher::f64(double v) { return u64(std::bit_cast<std::uint64_t>(v)); }

FpHasher& FpHasher::str(std::string_view s) {
  u64(s.size());
  std::uint64_t word = 0;
  std::size_t filled = 0;
  for (const char c : s) {
    word |= static_cast<std::uint64_t>(static_cast<unsigned char>(c))
            << (8 * filled);
    if (++filled == 8) {
      u64(word);
      word = 0;
      filled = 0;
    }
  }
  if (filled > 0) u64(word);
  return *this;
}

FpHasher& FpHasher::point(Point p, Point anchor) {
  return i64(p.x - anchor.x).i64(p.y - anchor.y);
}

FpHasher& FpHasher::rect(const Rect& r, Point anchor) {
  return i64(r.xlo - anchor.x)
      .i64(r.ylo - anchor.y)
      .i64(r.xhi - anchor.x)
      .i64(r.yhi - anchor.y);
}

FpHasher& FpHasher::rects(const std::vector<Rect>& rs, Point anchor) {
  u64(rs.size());
  for (const Rect& r : rs) rect(r, anchor);
  return *this;
}

FpHasher& FpHasher::poly(const Polygon& p, Point anchor) {
  u64(p.size());
  for (const Point& v : p.vertices()) point(v, anchor);
  return *this;
}

FpHasher& FpHasher::polys(const std::vector<Polygon>& ps, Point anchor) {
  u64(ps.size());
  for (const Polygon& p : ps) poly(p, anchor);
  return *this;
}

}  // namespace poc
