// Sharded, thread-safe, content-addressed result cache.  Values are keyed
// by a Fingerprint (see fingerprint.h) that covers everything affecting the
// computation, so a hit returns bits identical to what a recompute would
// produce — the cache is a pure performance layer and composes with the
// determinism contract in DESIGN.md: flow results are bit-identical with
// the cache on or off, at any thread count.
//
// Concurrency model: the fingerprint space is split across independent
// shards (key -> shard by fingerprint bits).  Lookups take a shard's
// *shared* (reader) lock — the hot peek/find path on large shards no longer
// serializes readers behind each other or behind writers on other keys —
// while inserts and evictions take the exclusive lock.  Recency is a
// per-entry atomic tick stamped from a cache-wide counter, so a shared-lock
// hit can refresh LRU order without writing any shard structure; eviction
// (under the exclusive lock) discards the minimum tick.  Single-threaded
// eviction order is exactly the classic LRU list's.  Counters stay exact:
// every find() increments exactly one of hits/disk_hits/misses (atomics),
// whatever the interleaving.  Two threads that miss on the same key both
// compute (the computation is pure, so the duplicate work is the only
// cost); the first insert wins and the loser's value is dropped.
//
// Disk tier (optional, see attach_disk): a DiskCacheStore shared by worker
// *processes*.  insert() writes entries through to disk (serialized by the
// attached codec, first-insert-wins publish), and a memory miss probes the
// store before reporting a miss — worker 3 hits on windows worker 0 already
// computed.  Spill never changes values: entries are decoded from the exact
// bits an in-process recompute would produce.
//
// Eviction is per-shard LRU over an approximate byte cost supplied by the
// caller at insert time.  Eviction only ever discards memoized results —
// it can change hit rates, never values.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/cache/disk_store.h"
#include "src/cache/fingerprint.h"
#include "src/common/check.h"
#include "src/common/fault.h"

namespace poc {

/// Monotonic counters, readable while the cache is in use.  hits +
/// disk_hits + misses counts find() calls; insertions/evictions/rejected
/// track the write side (rejected = entries whose cost exceeds a whole
/// shard's budget, e.g. any insert into a capacity-0 cache).
struct CacheCounters {
  std::uint64_t hits = 0;       ///< served from this process's memory
  std::uint64_t disk_hits = 0;  ///< served from the shared disk store
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;

  double hit_rate() const {
    const std::uint64_t lookups = hits + disk_hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits + disk_hits) /
                              static_cast<double>(lookups);
  }

  CacheCounters& operator+=(const CacheCounters& o) {
    hits += o.hits;
    disk_hits += o.disk_hits;
    misses += o.misses;
    insertions += o.insertions;
    evictions += o.evictions;
    rejected += o.rejected;
    entries += o.entries;
    bytes += o.bytes;
    return *this;
  }
};

template <typename Value>
class ShardedCache {
 public:
  /// Serializes a value into the exact bits decode() restores.  Codecs must
  /// round-trip bit-exactly (doubles as IEEE-754 patterns) — a disk hit is
  /// indistinguishable from a recompute downstream.
  using Encode = std::function<std::vector<std::uint8_t>(const Value&)>;
  /// Null on structurally invalid bytes; the caller then recomputes.
  using Decode =
      std::function<std::shared_ptr<Value>(const std::vector<std::uint8_t>&)>;

  /// `capacity_bytes` is the total LRU budget, split evenly across
  /// `shards` (>= 1).  A capacity of 0 disables storage: every find misses
  /// and every insert is rejected, which keeps the caller's code path
  /// identical to the enabled case.
  explicit ShardedCache(std::size_t capacity_bytes, std::size_t shards = 16)
      : shards_(std::max<std::size_t>(shards, 1)),
        shard_capacity_(capacity_bytes / std::max<std::size_t>(shards, 1)) {}

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  /// Attaches the shared spill-to-disk tier.  Both codecs are required.
  /// Call before the cache is in concurrent use (flow construction).
  void attach_disk(std::shared_ptr<DiskCacheStore> store, Encode encode,
                   Decode decode) {
    POC_EXPECTS(store != nullptr && encode != nullptr && decode != nullptr);
    disk_ = std::move(store);
    encode_ = std::move(encode);
    decode_ = std::move(decode);
  }

  const DiskCacheStore* disk_store() const { return disk_.get(); }

  /// Returns the cached value or null, refreshing LRU recency on a hit.
  /// The returned pointer stays valid after eviction (shared ownership).
  std::shared_ptr<const Value> find(const Fingerprint& fp) {
    if (auto hit = find_in_memory(fp, /*refresh=*/true)) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return hit;
    }
    if (auto hit = load_from_disk(fp)) {
      disk_hits_.fetch_add(1, std::memory_order_relaxed);
      return hit;
    }
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }

  /// find() without the bookkeeping: no hit/miss counters, no LRU recency
  /// refresh.  The batched hot loops probe with peek() while assembling a
  /// batch (deciding which windows still need computing) and leave the
  /// authoritative find() to the per-window consumption path, so observable
  /// cache statistics — and eviction order — match the unbatched loop
  /// exactly.  With a disk tier attached, a memory miss still consults the
  /// store (and promotes the entry) so staging skips windows another worker
  /// already published.
  std::shared_ptr<const Value> peek(const Fingerprint& fp) {
    if (auto hit = find_in_memory(fp, /*refresh=*/false)) return hit;
    return load_from_disk(fp);
  }

  /// Inserts `value` with the given approximate byte cost, evicting LRU
  /// entries as needed and (when a disk tier is attached) publishing the
  /// serialized entry write-through.  If the key is already present (a
  /// concurrent miss computed the same pure result), the existing entry is
  /// kept — first-insert-wins in memory and on disk alike.
  void insert(const Fingerprint& fp, std::shared_ptr<const Value> value,
              std::size_t cost_bytes) {
    POC_EXPECTS(value != nullptr);
    // Injection point for the fault harness (default-off): an insert that
    // throws bad_alloc exercises the callers' containment without touching
    // the shard state.
    fault::maybe_throw(fault::Kind::kCacheInsert);
    // Spill before taking any lock: encoding can be slow (latent images)
    // and the store publish is internally atomic.
    if (disk_ && !disk_->contains(fp)) {
      const std::vector<std::uint8_t> bytes = encode_(*value);
      disk_->put(fp, bytes.data(), bytes.size());
    }
    insert_in_memory(fp, std::move(value), cost_bytes);
  }

  CacheCounters counters() const {
    CacheCounters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.disk_hits = disk_hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.insertions = insertions_.load(std::memory_order_relaxed);
    c.evictions = evictions_.load(std::memory_order_relaxed);
    c.rejected = rejected_.load(std::memory_order_relaxed);
    for (const Shard& s : shards_) {
      std::shared_lock<std::shared_mutex> lock(s.mutex);
      c.entries += s.map.size();
      c.bytes += s.bytes;
    }
    return c;
  }

 private:
  struct Entry {
    Entry(std::shared_ptr<const Value> v, std::size_t c, std::uint64_t t)
        : value(std::move(v)), cost(c), tick(t) {}
    std::shared_ptr<const Value> value;
    std::size_t cost = 0;
    /// Last-use stamp from clock_; atomic so a shared-lock hit can refresh
    /// recency while other readers scan.  unordered_map nodes are stable,
    /// so the atomic is never moved after construction.
    std::atomic<std::uint64_t> tick;
  };

  struct Shard {
    mutable std::shared_mutex mutex;
    std::unordered_map<Fingerprint, Entry, FingerprintHash> map;
    std::size_t bytes = 0;  ///< mutated under the exclusive lock only
  };

  Shard& shard_of(const Fingerprint& fp) {
    return shards_[fp.hi % shards_.size()];
  }

  std::uint64_t next_tick() {
    return clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  }

  std::shared_ptr<const Value> find_in_memory(const Fingerprint& fp,
                                              bool refresh) {
    Shard& s = shard_of(fp);
    std::shared_lock<std::shared_mutex> lock(s.mutex);
    const auto it = s.map.find(fp);
    if (it == s.map.end()) return nullptr;
    if (refresh) {
      it->second.tick.store(next_tick(), std::memory_order_relaxed);
    }
    return it->second.value;
  }

  /// Probes the disk tier and promotes a present entry into memory (no
  /// write-back spill — it is already on disk).  Null on miss/corruption.
  std::shared_ptr<const Value> load_from_disk(const Fingerprint& fp) {
    if (!disk_) return nullptr;
    std::vector<std::uint8_t> bytes;
    if (!disk_->get(fp, &bytes)) return nullptr;
    std::shared_ptr<Value> value = decode_(bytes);
    if (value == nullptr) return nullptr;
    std::shared_ptr<const Value> shared = std::move(value);
    insert_in_memory(fp, shared, bytes.size() + sizeof(Value));
    return shared;
  }

  void insert_in_memory(const Fingerprint& fp,
                        std::shared_ptr<const Value> value,
                        std::size_t cost_bytes) {
    const std::size_t cost = std::max<std::size_t>(cost_bytes, 1);
    if (cost > shard_capacity_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Shard& s = shard_of(fp);
    std::lock_guard<std::shared_mutex> lock(s.mutex);
    if (s.map.contains(fp)) return;
    s.map.emplace(std::piecewise_construct, std::forward_as_tuple(fp),
                  std::forward_as_tuple(std::move(value), cost, next_tick()));
    s.bytes += cost;
    insertions_.fetch_add(1, std::memory_order_relaxed);
    while (s.bytes > shard_capacity_) {
      // Linear min-tick scan; shards keep maps small and eviction is the
      // cold path (insert over budget), so this beats maintaining a list
      // that every shared-lock reader would have to write.
      auto victim = s.map.begin();
      for (auto it = s.map.begin(); it != s.map.end(); ++it) {
        if (it->second.tick.load(std::memory_order_relaxed) <
            victim->second.tick.load(std::memory_order_relaxed)) {
          victim = it;
        }
      }
      s.bytes -= victim->second.cost;
      s.map.erase(victim);
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  std::vector<Shard> shards_;
  std::size_t shard_capacity_;

  std::shared_ptr<DiskCacheStore> disk_;
  Encode encode_;
  Decode decode_;

  std::atomic<std::uint64_t> clock_{0};
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> disk_hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace poc
