// Sharded, thread-safe, content-addressed result cache.  Values are keyed
// by a Fingerprint (see fingerprint.h) that covers everything affecting the
// computation, so a hit returns bits identical to what a recompute would
// produce — the cache is a pure performance layer and composes with the
// determinism contract in DESIGN.md: flow results are bit-identical with
// the cache on or off, at any thread count.
//
// Concurrency model: the fingerprint space is split across independent
// shards (key -> shard by fingerprint bits), each protected by one mutex
// around an LRU-ordered hash map.  Two threads that miss on the same key
// both compute (the computation is pure, so the duplicate work is the only
// cost); the first insert wins and the loser's value is dropped.  Nothing
// blocks across shards, so the window loops scale.
//
// Eviction is per-shard LRU over an approximate byte cost supplied by the
// caller at insert time.  Eviction only ever discards memoized results —
// it can change hit rates, never values.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/cache/fingerprint.h"
#include "src/common/check.h"
#include "src/common/fault.h"

namespace poc {

/// Monotonic counters, readable while the cache is in use.  hits + misses
/// counts find() calls; insertions/evictions/rejected track the write side
/// (rejected = entries whose cost exceeds a whole shard's budget, e.g. any
/// insert into a capacity-0 cache).
struct CacheCounters {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t evictions = 0;
  std::uint64_t rejected = 0;
  std::size_t entries = 0;
  std::size_t bytes = 0;

  double hit_rate() const {
    const std::uint64_t lookups = hits + misses;
    return lookups == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(lookups);
  }

  CacheCounters& operator+=(const CacheCounters& o) {
    hits += o.hits;
    misses += o.misses;
    insertions += o.insertions;
    evictions += o.evictions;
    rejected += o.rejected;
    entries += o.entries;
    bytes += o.bytes;
    return *this;
  }
};

template <typename Value>
class ShardedCache {
 public:
  /// `capacity_bytes` is the total LRU budget, split evenly across
  /// `shards` (>= 1).  A capacity of 0 disables storage: every find misses
  /// and every insert is rejected, which keeps the caller's code path
  /// identical to the enabled case.
  explicit ShardedCache(std::size_t capacity_bytes, std::size_t shards = 16)
      : shards_(std::max<std::size_t>(shards, 1)),
        shard_capacity_(capacity_bytes / std::max<std::size_t>(shards, 1)) {}

  ShardedCache(const ShardedCache&) = delete;
  ShardedCache& operator=(const ShardedCache&) = delete;

  /// Returns the cached value or null, refreshing LRU recency on a hit.
  /// The returned pointer stays valid after eviction (shared ownership).
  std::shared_ptr<const Value> find(const Fingerprint& fp) {
    Shard& s = shard_of(fp);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.map.find(fp);
    if (it == s.map.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return nullptr;
    }
    s.lru.splice(s.lru.begin(), s.lru, it->second.lru_pos);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second.value;
  }

  /// find() without the bookkeeping: no hit/miss counters, no LRU recency
  /// refresh.  The batched hot loops probe with peek() while assembling a
  /// batch (deciding which windows still need computing) and leave the
  /// authoritative find() to the per-window consumption path, so observable
  /// cache statistics — and eviction order — match the unbatched loop
  /// exactly.
  std::shared_ptr<const Value> peek(const Fingerprint& fp) {
    Shard& s = shard_of(fp);
    std::lock_guard<std::mutex> lock(s.mutex);
    const auto it = s.map.find(fp);
    return it == s.map.end() ? nullptr : it->second.value;
  }

  /// Inserts `value` with the given approximate byte cost, evicting LRU
  /// entries as needed.  If the key is already present (a concurrent miss
  /// computed the same pure result), the existing entry is kept.
  void insert(const Fingerprint& fp, std::shared_ptr<const Value> value,
              std::size_t cost_bytes) {
    POC_EXPECTS(value != nullptr);
    // Injection point for the fault harness (default-off): an insert that
    // throws bad_alloc exercises the callers' containment without touching
    // the shard state.
    fault::maybe_throw(fault::Kind::kCacheInsert);
    const std::size_t cost = std::max<std::size_t>(cost_bytes, 1);
    if (cost > shard_capacity_) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    Shard& s = shard_of(fp);
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.map.contains(fp)) return;
    s.lru.push_front(fp);
    s.map.emplace(fp, Entry{std::move(value), cost, s.lru.begin()});
    s.bytes += cost;
    insertions_.fetch_add(1, std::memory_order_relaxed);
    while (s.bytes > shard_capacity_) {
      const auto victim = s.map.find(s.lru.back());
      s.bytes -= victim->second.cost;
      s.map.erase(victim);
      s.lru.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  CacheCounters counters() const {
    CacheCounters c;
    c.hits = hits_.load(std::memory_order_relaxed);
    c.misses = misses_.load(std::memory_order_relaxed);
    c.insertions = insertions_.load(std::memory_order_relaxed);
    c.evictions = evictions_.load(std::memory_order_relaxed);
    c.rejected = rejected_.load(std::memory_order_relaxed);
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mutex);
      c.entries += s.map.size();
      c.bytes += s.bytes;
    }
    return c;
  }

 private:
  struct Entry {
    std::shared_ptr<const Value> value;
    std::size_t cost = 0;
    std::list<Fingerprint>::iterator lru_pos;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<Fingerprint, Entry, FingerprintHash> map;
    std::list<Fingerprint> lru;  ///< front = most recent
    std::size_t bytes = 0;
  };

  Shard& shard_of(const Fingerprint& fp) {
    return shards_[fp.hi % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::size_t shard_capacity_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> insertions_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

}  // namespace poc
