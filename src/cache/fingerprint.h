// Content-addressed fingerprints for litho/OPC window memoization.  A
// placed-and-routed design repeats the same standard cells (and the same
// local poly context) thousands of times, so most simulation windows are
// geometrically identical up to translation.  The fingerprint canonicalizes
// a window by translating its geometry to a local frame (anchor at the
// window origin) and hashing it together with every parameter that affects
// the result — two windows collide only if recomputing one would reproduce
// the other's bits exactly.  128 bits keep accidental collisions out of
// reach for any realistic window count (~2^-90 at a billion windows).
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/geom/point.h"
#include "src/geom/polygon.h"
#include "src/geom/rect.h"

namespace poc {

struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend constexpr bool operator==(const Fingerprint&,
                                   const Fingerprint&) = default;
};

/// Hash functor so Fingerprint can key unordered containers.  The
/// fingerprint is already uniformly mixed; folding the lanes is enough.
struct FingerprintHash {
  std::size_t operator()(const Fingerprint& fp) const {
    return static_cast<std::size_t>(fp.hi ^ (fp.lo * 0x9e3779b97f4a7c15ULL));
  }
};

/// Incremental two-lane hasher.  Each absorbed value passes through a
/// splitmix64-style finalizer on both lanes with different mixing paths, so
/// the two 64-bit halves are effectively independent.  Absorption order is
/// part of the key: callers must feed fields in a fixed order.
class FpHasher {
 public:
  FpHasher& u64(std::uint64_t v);
  FpHasher& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }
  /// Hashes the IEEE-754 bit pattern: keys distinguish -0.0 from 0.0, which
  /// is the safe direction for bit-exact memoization.
  FpHasher& f64(double v);
  FpHasher& str(std::string_view s);

  /// Geometry, translated to the local frame defined by `anchor` (the
  /// window origin): identical windows at different placements hash alike.
  FpHasher& point(Point p, Point anchor);
  FpHasher& rect(const Rect& r, Point anchor);
  FpHasher& rects(const std::vector<Rect>& rs, Point anchor);
  FpHasher& poly(const Polygon& p, Point anchor);
  FpHasher& polys(const std::vector<Polygon>& ps, Point anchor);

  Fingerprint digest() const { return {h1_, h2_}; }

 private:
  std::uint64_t h1_ = 0x243f6a8885a308d3ULL;  ///< pi fraction (lane seeds)
  std::uint64_t h2_ = 0x13198a2e03707344ULL;
};

}  // namespace poc
