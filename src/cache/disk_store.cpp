#include "src/cache/disk_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "src/common/fault.h"
#include "src/common/serialize.h"
#include "src/common/vfs.h"

namespace poc {
namespace {

namespace fs = std::filesystem;

// Entry layout: magic "POCDCHE1", payload length, payload, crc64(payload).
constexpr std::uint64_t kEntryMagic = 0x3145484344434F50ULL;  // "POCDCHE1"
constexpr std::size_t kEntryOverhead = 8 + 8 + 8;

std::string fp_hex(const Fingerprint& fp) {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(fp.hi),
                static_cast<unsigned long long>(fp.lo));
  return buf;
}

bool is_entry_name(const std::string& name) {
  return name.size() > 6 && name.rfind(".entry") == name.size() - 6;
}

}  // namespace

DiskCacheStore::DiskCacheStore(std::string dir)
    : DiskCacheStore(std::move(dir), Options{}) {}

DiskCacheStore::DiskCacheStore(std::string dir, const Options& options)
    : dir_(std::move(dir)), options_(options) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  ok_ = !ec;
  if (!ok_) {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (options_.max_bytes == 0) return;
  // Quota accounting starts from what previous runs left behind.
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    if (!is_entry_name(entry.path().filename().string())) continue;
    std::error_code size_ec;
    const std::uintmax_t size = entry.file_size(size_ec);
    if (!size_ec) stored_bytes_ += static_cast<std::uint64_t>(size);
  }
}

std::string DiskCacheStore::entry_path(const Fingerprint& fp) const {
  return dir_ + "/" + fp_hex(fp) + ".entry";
}

bool DiskCacheStore::contains(const Fingerprint& fp) const {
  if (!ok_ || degraded()) return false;
  probes_.fetch_add(1, std::memory_order_relaxed);
  return ::access(entry_path(fp).c_str(), F_OK) == 0;
}

bool DiskCacheStore::get(const Fingerprint& fp,
                         std::vector<std::uint8_t>* out) const {
  if (!ok_ || degraded()) return false;
  probes_.fetch_add(1, std::memory_order_relaxed);
  const std::string path = entry_path(fp);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;  // plain miss
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  ssize_t got;
  while ((got = ::read(fd, chunk, sizeof chunk)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  ::close(fd);
  if (got < 0 || bytes.size() < kEntryOverhead) {
    load_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  ByteReader r(bytes.data(), bytes.size());
  const std::uint64_t magic = r.u64();
  const std::uint64_t len = r.u64();
  if (magic != kEntryMagic || len != bytes.size() - kEntryOverhead) {
    load_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::uint8_t* payload = bytes.data() + 16;
  std::uint64_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + 16 + len, sizeof stored_crc);
  if (stored_crc != crc64(payload, static_cast<std::size_t>(len))) {
    load_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  out->assign(payload, payload + len);
  loads_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool DiskCacheStore::put(const Fingerprint& fp, const std::uint8_t* data,
                         std::size_t size) {
  if (!ok_ || degraded()) return false;
  const std::string final_path = entry_path(fp);
  if (::access(final_path.c_str(), F_OK) == 0) {
    races_lost_.fetch_add(1, std::memory_order_relaxed);
    return false;  // already published (possibly by another worker)
  }

  ByteWriter framed;
  framed.u64(kEntryMagic);
  framed.u64(size);
  framed.bytes(data, size);
  framed.u64(crc64(data, size));
  const std::vector<std::uint8_t>& bytes = framed.data();

  fault::Scope io_scope(fault::Domain::kDiskCacheIo,
                        op_seq_.fetch_add(1, std::memory_order_relaxed));
  bool published = false;

  // Preferred publish path: an unlinked O_TMPFILE linked under the final
  // name — the entry either appears whole or not at all, and a lost race
  // (linkat EEXIST) leaves no residue.
  int fd = ::open(dir_.c_str(), O_TMPFILE | O_WRONLY, 0644);
  if (fd >= 0) {
    if (!vfs::write_all(fd, bytes.data(), bytes.size()) ||
        vfs::fsync(fd) != 0) {
      ::close(fd);
      publish_io_error();
      return false;
    }
    char proc_path[64];
    std::snprintf(proc_path, sizeof proc_path, "/proc/self/fd/%d", fd);
    const int rc = vfs::linkat(AT_FDCWD, proc_path, AT_FDCWD,
                               final_path.c_str(), AT_SYMLINK_FOLLOW);
    ::close(fd);
    if (rc != 0) {
      if (errno == EEXIST) {
        races_lost_.fetch_add(1, std::memory_order_relaxed);
      } else {
        publish_io_error();
      }
      return false;
    }
    published = true;
  } else {
    // Fallback (filesystems without O_TMPFILE): private temp file +
    // link(2), which also refuses to replace an existing entry atomically.
    char tmp_name[64];
    std::snprintf(tmp_name, sizeof tmp_name, "/.tmp-%ld-%llx",
                  static_cast<long>(::getpid()),
                  static_cast<unsigned long long>(fp.lo));
    const std::string tmp_path = dir_ + tmp_name;
    fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
      publish_io_error();
      return false;
    }
    const bool wrote = vfs::write_all(fd, bytes.data(), bytes.size()) &&
                       vfs::fsync(fd) == 0;
    ::close(fd);
    if (!wrote) {
      ::unlink(tmp_path.c_str());
      publish_io_error();
      return false;
    }
    const int rc = vfs::link(tmp_path.c_str(), final_path.c_str());
    ::unlink(tmp_path.c_str());
    if (rc != 0) {
      if (errno == EEXIST) {
        races_lost_.fetch_add(1, std::memory_order_relaxed);
      } else {
        publish_io_error();
      }
      return false;
    }
    published = true;
  }

  if (published) {
    publishes_.fetch_add(1, std::memory_order_relaxed);
    if (options_.max_bytes > 0) {
      std::lock_guard<std::mutex> lock(quota_mutex_);
      stored_bytes_ += bytes.size();
      if (stored_bytes_ > options_.max_bytes) prune_locked(final_path);
    }
  }
  return published;
}

void DiskCacheStore::publish_io_error() {
  io_errors_.fetch_add(1, std::memory_order_relaxed);
  // The disk is misbehaving; stop touching it.  Counters freeze here so a
  // degraded run's cache accounting matches a run with no disk tier.
  tier_down_.store(true, std::memory_order_relaxed);
}

void DiskCacheStore::prune_locked(const std::string& keep_path) {
  // Oldest-first eviction: (mtime, name) ascending — the name tiebreak
  // keeps the order deterministic when a burst of publishes lands inside
  // one mtime granule.  The entry just published is never pruned.
  struct Victim {
    fs::file_time_type mtime;
    std::string path;
    std::uint64_t size;
  };
  std::vector<Victim> victims;
  std::error_code ec;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir_, ec)) {
    const std::string path = entry.path().string();
    if (!is_entry_name(entry.path().filename().string())) continue;
    if (path == keep_path) continue;
    std::error_code stat_ec;
    const fs::file_time_type mtime = entry.last_write_time(stat_ec);
    const std::uintmax_t size = entry.file_size(stat_ec);
    if (stat_ec) continue;
    victims.push_back({mtime, path, static_cast<std::uint64_t>(size)});
  }
  std::sort(victims.begin(), victims.end(), [](const Victim& a,
                                               const Victim& b) {
    if (a.mtime != b.mtime) return a.mtime < b.mtime;
    return a.path < b.path;
  });
  for (const Victim& v : victims) {
    if (stored_bytes_ <= options_.max_bytes) break;
    if (::unlink(v.path.c_str()) != 0) continue;
    stored_bytes_ -= std::min(stored_bytes_, v.size);
    pruned_entries_.fetch_add(1, std::memory_order_relaxed);
    pruned_bytes_.fetch_add(v.size, std::memory_order_relaxed);
  }
}

DiskCacheStore::Counters DiskCacheStore::counters() const {
  Counters c;
  c.probes = probes_.load(std::memory_order_relaxed);
  c.loads = loads_.load(std::memory_order_relaxed);
  c.load_failures = load_failures_.load(std::memory_order_relaxed);
  c.publishes = publishes_.load(std::memory_order_relaxed);
  c.races_lost = races_lost_.load(std::memory_order_relaxed);
  c.io_errors = io_errors_.load(std::memory_order_relaxed);
  c.pruned_entries = pruned_entries_.load(std::memory_order_relaxed);
  c.pruned_bytes = pruned_bytes_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace poc
