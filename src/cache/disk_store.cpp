#include "src/cache/disk_store.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "src/common/serialize.h"

namespace poc {
namespace {

// Entry layout: magic "POCDCHE1", payload length, payload, crc64(payload).
constexpr std::uint64_t kEntryMagic = 0x3145484344434F50ULL;  // "POCDCHE1"
constexpr std::size_t kEntryOverhead = 8 + 8 + 8;

std::string fp_hex(const Fingerprint& fp) {
  char buf[33];
  std::snprintf(buf, sizeof buf, "%016llx%016llx",
                static_cast<unsigned long long>(fp.hi),
                static_cast<unsigned long long>(fp.lo));
  return buf;
}

bool write_all(int fd, const std::uint8_t* p, std::size_t left) {
  while (left > 0) {
    const ssize_t wrote = ::write(fd, p, left);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += wrote;
    left -= static_cast<std::size_t>(wrote);
  }
  return true;
}

}  // namespace

DiskCacheStore::DiskCacheStore(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  ok_ = !ec;
  if (!ok_) io_errors_.fetch_add(1, std::memory_order_relaxed);
}

std::string DiskCacheStore::entry_path(const Fingerprint& fp) const {
  return dir_ + "/" + fp_hex(fp) + ".entry";
}

bool DiskCacheStore::contains(const Fingerprint& fp) const {
  if (!ok_) return false;
  probes_.fetch_add(1, std::memory_order_relaxed);
  return ::access(entry_path(fp).c_str(), F_OK) == 0;
}

bool DiskCacheStore::get(const Fingerprint& fp,
                         std::vector<std::uint8_t>* out) const {
  if (!ok_) return false;
  probes_.fetch_add(1, std::memory_order_relaxed);
  const std::string path = entry_path(fp);
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return false;  // plain miss
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[1 << 16];
  ssize_t got;
  while ((got = ::read(fd, chunk, sizeof chunk)) > 0) {
    bytes.insert(bytes.end(), chunk, chunk + got);
  }
  ::close(fd);
  if (got < 0 || bytes.size() < kEntryOverhead) {
    load_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  ByteReader r(bytes.data(), bytes.size());
  const std::uint64_t magic = r.u64();
  const std::uint64_t len = r.u64();
  if (magic != kEntryMagic || len != bytes.size() - kEntryOverhead) {
    load_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::uint8_t* payload = bytes.data() + 16;
  std::uint64_t stored_crc;
  std::memcpy(&stored_crc, bytes.data() + 16 + len, sizeof stored_crc);
  if (stored_crc != crc64(payload, static_cast<std::size_t>(len))) {
    load_failures_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  out->assign(payload, payload + len);
  loads_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool DiskCacheStore::put(const Fingerprint& fp, const std::uint8_t* data,
                         std::size_t size) {
  if (!ok_) return false;
  const std::string final_path = entry_path(fp);
  if (::access(final_path.c_str(), F_OK) == 0) {
    races_lost_.fetch_add(1, std::memory_order_relaxed);
    return false;  // already published (possibly by another worker)
  }

  ByteWriter framed;
  framed.u64(kEntryMagic);
  framed.u64(size);
  framed.bytes(data, size);
  framed.u64(crc64(data, size));
  const std::vector<std::uint8_t>& bytes = framed.data();

  // Preferred publish path: an unlinked O_TMPFILE linked under the final
  // name — the entry either appears whole or not at all, and a lost race
  // (linkat EEXIST) leaves no residue.
  int fd = ::open(dir_.c_str(), O_TMPFILE | O_WRONLY, 0644);
  if (fd >= 0) {
    if (!write_all(fd, bytes.data(), bytes.size()) || ::fsync(fd) != 0) {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      return false;
    }
    char proc_path[64];
    std::snprintf(proc_path, sizeof proc_path, "/proc/self/fd/%d", fd);
    const int rc = ::linkat(AT_FDCWD, proc_path, AT_FDCWD, final_path.c_str(),
                            AT_SYMLINK_FOLLOW);
    ::close(fd);
    if (rc != 0) {
      if (errno == EEXIST) {
        races_lost_.fetch_add(1, std::memory_order_relaxed);
      } else {
        io_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
    publishes_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }

  // Fallback (filesystems without O_TMPFILE): private temp file + link(2),
  // which also refuses to replace an existing entry atomically.
  char tmp_name[64];
  std::snprintf(tmp_name, sizeof tmp_name, "/.tmp-%ld-%llx",
                static_cast<long>(::getpid()),
                static_cast<unsigned long long>(fp.lo));
  const std::string tmp_path = dir_ + tmp_name;
  fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const bool wrote = write_all(fd, bytes.data(), bytes.size()) &&
                     ::fsync(fd) == 0;
  ::close(fd);
  if (!wrote) {
    io_errors_.fetch_add(1, std::memory_order_relaxed);
    ::unlink(tmp_path.c_str());
    return false;
  }
  const int rc = ::link(tmp_path.c_str(), final_path.c_str());
  ::unlink(tmp_path.c_str());
  if (rc != 0) {
    if (errno == EEXIST) {
      races_lost_.fetch_add(1, std::memory_order_relaxed);
    } else {
      io_errors_.fetch_add(1, std::memory_order_relaxed);
    }
    return false;
  }
  publishes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

DiskCacheStore::Counters DiskCacheStore::counters() const {
  Counters c;
  c.probes = probes_.load(std::memory_order_relaxed);
  c.loads = loads_.load(std::memory_order_relaxed);
  c.load_failures = load_failures_.load(std::memory_order_relaxed);
  c.publishes = publishes_.load(std::memory_order_relaxed);
  c.races_lost = races_lost_.load(std::memory_order_relaxed);
  c.io_errors = io_errors_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace poc
