#include "src/geom/polygon.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace poc {
namespace {

double shoelace(const std::vector<Point>& v) {
  double a = 0.0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    const Point& p = v[i];
    const Point& q = v[(i + 1) % v.size()];
    a += static_cast<double>(p.x) * static_cast<double>(q.y) -
         static_cast<double>(q.x) * static_cast<double>(p.y);
  }
  return a / 2.0;
}

/// Removes consecutive duplicates and merges collinear runs.
std::vector<Point> simplify(std::vector<Point> v) {
  // Drop exact duplicates.
  std::vector<Point> out;
  for (const Point& p : v) {
    if (out.empty() || !(out.back() == p)) out.push_back(p);
  }
  if (out.size() > 1 && out.front() == out.back()) out.pop_back();
  // Merge collinear triples (both segments horizontal or both vertical).
  bool changed = true;
  while (changed && out.size() > 4) {
    changed = false;
    for (std::size_t i = 0; i < out.size(); ++i) {
      const Point& prev = out[(i + out.size() - 1) % out.size()];
      const Point& cur = out[i];
      const Point& next = out[(i + 1) % out.size()];
      const bool h1 = prev.y == cur.y, h2 = cur.y == next.y;
      const bool v1 = prev.x == cur.x, v2 = cur.x == next.x;
      if ((h1 && h2) || (v1 && v2)) {
        out.erase(out.begin() + static_cast<std::ptrdiff_t>(i));
        changed = true;
        break;
      }
    }
  }
  return out;
}

}  // namespace

Polygon::Polygon(std::vector<Point> vertices) {
  verts_ = simplify(std::move(vertices));
  POC_EXPECTS(verts_.size() >= 4);
  POC_EXPECTS(verts_.size() % 2 == 0);
  if (shoelace(verts_) < 0) std::reverse(verts_.begin(), verts_.end());
  // Validate Manhattan alternation.
  for (std::size_t i = 0; i < verts_.size(); ++i) {
    const Point& p = verts_[i];
    const Point& q = verts_[(i + 1) % verts_.size()];
    POC_EXPECTS((p.x == q.x) != (p.y == q.y));
  }
  POC_ENSURES(shoelace(verts_) > 0);
}

Polygon Polygon::from_rect(const Rect& r) {
  POC_EXPECTS(!r.empty());
  return Polygon({{r.xlo, r.ylo}, {r.xhi, r.ylo}, {r.xhi, r.yhi}, {r.xlo, r.yhi}});
}

double Polygon::area() const { return verts_.empty() ? 0.0 : shoelace(verts_); }

double Polygon::perimeter() const {
  double p = 0.0;
  for (std::size_t i = 0; i < verts_.size(); ++i) {
    const Point& a = verts_[i];
    const Point& b = verts_[(i + 1) % verts_.size()];
    p += static_cast<double>(std::abs(a.x - b.x) + std::abs(a.y - b.y));
  }
  return p;
}

Rect Polygon::bbox() const {
  POC_EXPECTS(!verts_.empty());
  Rect r{verts_[0].x, verts_[0].y, verts_[0].x, verts_[0].y};
  for (const Point& p : verts_) {
    r.xlo = std::min(r.xlo, p.x);
    r.ylo = std::min(r.ylo, p.y);
    r.xhi = std::max(r.xhi, p.x);
    r.yhi = std::max(r.yhi, p.y);
  }
  return r;
}

PolyEdge Polygon::edge(std::size_t i) const {
  POC_EXPECTS(i < verts_.size());
  PolyEdge e;
  e.a = verts_[i];
  e.b = verts_[(i + 1) % verts_.size()];
  if (e.a.y == e.b.y) {
    e.axis = Axis::kHorizontal;
    // CCW: interior lies to the left of travel, so outward is to the right.
    e.outward = e.b.x > e.a.x ? Dir::kSouth : Dir::kNorth;
  } else {
    e.axis = Axis::kVertical;
    e.outward = e.b.y > e.a.y ? Dir::kEast : Dir::kWest;
  }
  return e;
}

std::vector<PolyEdge> Polygon::edges() const {
  std::vector<PolyEdge> out;
  out.reserve(verts_.size());
  for (std::size_t i = 0; i < verts_.size(); ++i) out.push_back(edge(i));
  return out;
}

bool Polygon::contains(Point p) const {
  // Boundary check first (ray casting is ambiguous on edges).
  for (std::size_t i = 0; i < verts_.size(); ++i) {
    const Point& a = verts_[i];
    const Point& b = verts_[(i + 1) % verts_.size()];
    if (a.y == b.y && p.y == a.y && p.x >= std::min(a.x, b.x) &&
        p.x <= std::max(a.x, b.x)) {
      return true;
    }
    if (a.x == b.x && p.x == a.x && p.y >= std::min(a.y, b.y) &&
        p.y <= std::max(a.y, b.y)) {
      return true;
    }
  }
  // Cast a ray in +x; count crossings of vertical edges.
  bool inside = false;
  for (std::size_t i = 0; i < verts_.size(); ++i) {
    const Point& a = verts_[i];
    const Point& b = verts_[(i + 1) % verts_.size()];
    if (a.x != b.x) continue;  // only vertical edges can cross the ray
    const DbUnit ylo = std::min(a.y, b.y);
    const DbUnit yhi = std::max(a.y, b.y);
    // Half-open rule avoids double-counting at vertices.
    if (p.y >= ylo && p.y < yhi && a.x > p.x) inside = !inside;
  }
  return inside;
}

Polygon Polygon::translated(Point v) const {
  std::vector<Point> out = verts_;
  for (Point& p : out) p = p + v;
  Polygon poly;
  poly.verts_ = std::move(out);
  return poly;
}

Polygon Polygon::with_edge_moves(const std::vector<DbUnit>& moves) const {
  POC_EXPECTS(moves.size() == verts_.size());
  const std::size_t n = verts_.size();
  // Each edge, displaced along its outward normal, stays axis-aligned at a
  // new coordinate.  Vertex i is the corner of edge (i-1) and edge i; its new
  // position takes x from whichever of the two edges is vertical and y from
  // the horizontal one.
  std::vector<DbUnit> coord(n);  // the fixed coordinate of each moved edge
  std::vector<bool> horiz(n);
  for (std::size_t i = 0; i < n; ++i) {
    const PolyEdge e = edge(i);
    const Point nvec = dir_vec(e.outward);
    horiz[i] = e.axis == Axis::kHorizontal;
    coord[i] = horiz[i] ? e.a.y + nvec.y * moves[i] : e.a.x + nvec.x * moves[i];
  }
  std::vector<Point> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t prev = (i + n - 1) % n;
    DbUnit x = 0, y = 0;
    if (horiz[prev]) {
      POC_EXPECTS(!horiz[i]);
      y = coord[prev];
      x = coord[i];
    } else {
      POC_EXPECTS(horiz[i]);
      x = coord[prev];
      y = coord[i];
    }
    out[i] = {x, y};
  }
  // Excessive moves make edges pass through each other; the result can
  // still be a well-formed ring, so detect inversion directly: every moved
  // edge must keep its original direction of travel (zero length allowed).
  for (std::size_t i = 0; i < n; ++i) {
    const PolyEdge orig = edge(i);
    const Point& a = out[i];
    const Point& b = out[(i + 1) % n];
    if (orig.axis == Axis::kHorizontal) {
      const bool fwd = orig.b.x > orig.a.x;
      POC_ENSURES(fwd ? b.x >= a.x : b.x <= a.x);
    } else {
      const bool fwd = orig.b.y > orig.a.y;
      POC_ENSURES(fwd ? b.y >= a.y : b.y <= a.y);
    }
  }
  Polygon result(std::move(out));
  return result;
}

}  // namespace poc
