// Integer-nanometre points and vectors.  All layout geometry is Manhattan
// and snapped to a 1 nm grid, which keeps Boolean-lite operations exact.
#pragma once

#include <compare>
#include <cstdint>

#include "src/common/units.h"

namespace poc {

struct Point {
  DbUnit x = 0;
  DbUnit y = 0;

  friend constexpr Point operator+(Point a, Point b) {
    return {a.x + b.x, a.y + b.y};
  }
  friend constexpr Point operator-(Point a, Point b) {
    return {a.x - b.x, a.y - b.y};
  }
  friend constexpr bool operator==(Point a, Point b) = default;
  friend constexpr auto operator<=>(Point a, Point b) = default;
};

/// Axis directions for Manhattan edges and normals.
enum class Axis { kHorizontal, kVertical };

/// One of the four Manhattan directions, used for edge normals.
enum class Dir { kEast, kNorth, kWest, kSouth };

constexpr Point dir_vec(Dir d) {
  switch (d) {
    case Dir::kEast: return {1, 0};
    case Dir::kNorth: return {0, 1};
    case Dir::kWest: return {-1, 0};
    case Dir::kSouth: return {0, -1};
  }
  return {0, 0};
}

constexpr Dir opposite(Dir d) {
  switch (d) {
    case Dir::kEast: return Dir::kWest;
    case Dir::kNorth: return Dir::kSouth;
    case Dir::kWest: return Dir::kEast;
    case Dir::kSouth: return Dir::kNorth;
  }
  return Dir::kEast;
}

}  // namespace poc
