// Axis-aligned integer rectangle.  Half-open semantics are NOT used: a Rect
// covers [xlo, xhi] x [ylo, yhi] as a closed region of the plane; width and
// height are xhi-xlo / yhi-ylo.  Degenerate (zero-area) rects are allowed as
// cut-lines and measurement probes.
#pragma once

#include <algorithm>

#include "src/common/check.h"
#include "src/geom/point.h"

namespace poc {

struct Rect {
  DbUnit xlo = 0, ylo = 0, xhi = 0, yhi = 0;

  static constexpr Rect from_corners(Point a, Point b) {
    return {std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
            std::max(a.y, b.y)};
  }
  static constexpr Rect from_center(Point c, DbUnit w, DbUnit h) {
    return {c.x - w / 2, c.y - h / 2, c.x - w / 2 + w, c.y - h / 2 + h};
  }

  constexpr DbUnit width() const { return xhi - xlo; }
  constexpr DbUnit height() const { return yhi - ylo; }
  constexpr double area() const {
    return static_cast<double>(width()) * static_cast<double>(height());
  }
  constexpr Point center() const { return {(xlo + xhi) / 2, (ylo + yhi) / 2}; }
  constexpr bool valid() const { return xhi >= xlo && yhi >= ylo; }
  constexpr bool empty() const { return xhi <= xlo || yhi <= ylo; }

  constexpr bool contains(Point p) const {
    return p.x >= xlo && p.x <= xhi && p.y >= ylo && p.y <= yhi;
  }
  constexpr bool contains(const Rect& r) const {
    return r.xlo >= xlo && r.xhi <= xhi && r.ylo >= ylo && r.yhi <= yhi;
  }
  /// Open-interior overlap: touching rects do not intersect.
  constexpr bool intersects(const Rect& r) const {
    return r.xlo < xhi && r.xhi > xlo && r.ylo < yhi && r.yhi > ylo;
  }

  constexpr Rect intersection(const Rect& r) const {
    return {std::max(xlo, r.xlo), std::max(ylo, r.ylo), std::min(xhi, r.xhi),
            std::min(yhi, r.yhi)};
  }
  constexpr Rect bounding_union(const Rect& r) const {
    return {std::min(xlo, r.xlo), std::min(ylo, r.ylo), std::max(xhi, r.xhi),
            std::max(yhi, r.yhi)};
  }
  constexpr Rect inflated(DbUnit d) const {
    return {xlo - d, ylo - d, xhi + d, yhi + d};
  }
  constexpr Rect translated(Point v) const {
    return {xlo + v.x, ylo + v.y, xhi + v.x, yhi + v.y};
  }

  friend constexpr bool operator==(const Rect&, const Rect&) = default;
};

}  // namespace poc
