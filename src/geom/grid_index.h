// Uniform-grid spatial index over rectangles.  Used to gather the litho
// context around a tagged gate (all shapes within the optical ambit) and for
// neighbour/spacing queries, without an O(n) scan per window.
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "src/geom/rect.h"

namespace poc {

class GridIndex {
 public:
  /// bin_size: grid pitch in database units; pick ~ the typical query size.
  explicit GridIndex(DbUnit bin_size = 2000);

  /// Inserts a rectangle with a caller-supplied id (e.g. shape index).
  void insert(const Rect& r, std::size_t id);

  /// Ids of all inserted rects whose closed bbox intersects the query
  /// window (deduplicated, unordered).
  std::vector<std::size_t> query(const Rect& window) const;

  std::size_t size() const { return count_; }

 private:
  struct BinKey {
    long long bx, by;
    bool operator==(const BinKey&) const = default;
  };
  struct BinHash {
    std::size_t operator()(const BinKey& k) const {
      return std::hash<long long>()(k.bx * 1000003LL + k.by);
    }
  };

  long long bin_of(DbUnit v) const;

  DbUnit bin_size_;
  std::size_t count_ = 0;
  std::unordered_map<BinKey, std::vector<std::pair<Rect, std::size_t>>, BinHash>
      bins_;
};

}  // namespace poc
