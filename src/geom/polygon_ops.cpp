#include "src/geom/polygon_ops.h"

#include <algorithm>
#include <map>

#include "src/common/check.h"

namespace poc {
namespace {

struct Interval {
  DbUnit lo, hi;
};

/// Merges overlapping/touching intervals in place; input must be sorted by lo.
std::vector<Interval> merge_intervals(std::vector<Interval> iv) {
  std::vector<Interval> out;
  for (const Interval& i : iv) {
    if (!out.empty() && i.lo <= out.back().hi) {
      out.back().hi = std::max(out.back().hi, i.hi);
    } else {
      out.push_back(i);
    }
  }
  return out;
}

/// Merge vertically adjacent slab rects that share the same x-interval.
std::vector<Rect> merge_slabs(std::vector<Rect> rects) {
  std::sort(rects.begin(), rects.end(), [](const Rect& a, const Rect& b) {
    if (a.xlo != b.xlo) return a.xlo < b.xlo;
    if (a.xhi != b.xhi) return a.xhi < b.xhi;
    return a.ylo < b.ylo;
  });
  std::vector<Rect> out;
  for (const Rect& r : rects) {
    if (!out.empty() && out.back().xlo == r.xlo && out.back().xhi == r.xhi &&
        out.back().yhi == r.ylo) {
      out.back().yhi = r.yhi;
    } else {
      out.push_back(r);
    }
  }
  return out;
}

}  // namespace

std::vector<Rect> decompose(const Polygon& poly) {
  if (poly.empty()) return {};
  // Distinct y coordinates define horizontal slabs.
  std::vector<DbUnit> ys;
  for (const Point& p : poly.vertices()) ys.push_back(p.y);
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  std::vector<Rect> out;
  for (std::size_t s = 0; s + 1 < ys.size(); ++s) {
    const DbUnit y1 = ys[s];
    const DbUnit y2 = ys[s + 1];
    const double ymid = (static_cast<double>(y1) + static_cast<double>(y2)) / 2.0;
    // Vertical edges crossing the slab midline, sorted by x, alternate
    // entering/leaving the interior.
    std::vector<DbUnit> xs;
    const auto& v = poly.vertices();
    for (std::size_t i = 0; i < v.size(); ++i) {
      const Point& a = v[i];
      const Point& b = v[(i + 1) % v.size()];
      if (a.x != b.x) continue;
      const double elo = static_cast<double>(std::min(a.y, b.y));
      const double ehi = static_cast<double>(std::max(a.y, b.y));
      if (ymid > elo && ymid < ehi) xs.push_back(a.x);
    }
    std::sort(xs.begin(), xs.end());
    POC_ENSURES(xs.size() % 2 == 0);
    for (std::size_t i = 0; i + 1 < xs.size(); i += 2) {
      out.push_back({xs[i], y1, xs[i + 1], y2});
    }
  }
  return merge_slabs(std::move(out));
}

std::vector<Rect> disjoint_union(const std::vector<Rect>& rects) {
  std::vector<DbUnit> ys;
  for (const Rect& r : rects) {
    if (r.empty()) continue;
    ys.push_back(r.ylo);
    ys.push_back(r.yhi);
  }
  if (ys.empty()) return {};
  std::sort(ys.begin(), ys.end());
  ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

  std::vector<Rect> out;
  for (std::size_t s = 0; s + 1 < ys.size(); ++s) {
    const DbUnit y1 = ys[s];
    const DbUnit y2 = ys[s + 1];
    std::vector<Interval> iv;
    for (const Rect& r : rects) {
      if (r.empty()) continue;
      if (r.ylo <= y1 && r.yhi >= y2) iv.push_back({r.xlo, r.xhi});
    }
    if (iv.empty()) continue;
    std::sort(iv.begin(), iv.end(),
              [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
    for (const Interval& i : merge_intervals(std::move(iv))) {
      out.push_back({i.lo, y1, i.hi, y2});
    }
  }
  return merge_slabs(std::move(out));
}

double union_area(const std::vector<Rect>& rects) {
  double a = 0.0;
  for (const Rect& r : disjoint_union(rects)) a += r.area();
  return a;
}

std::vector<Rect> clip_to_window(const std::vector<Rect>& rects,
                                 const Rect& window) {
  std::vector<Rect> out;
  out.reserve(rects.size());
  for (const Rect& r : rects) {
    const Rect c = r.intersection(window);
    if (!c.empty()) out.push_back(c);
  }
  return out;
}

bool regions_overlap(const std::vector<Rect>& a, const std::vector<Rect>& b) {
  for (const Rect& ra : a) {
    for (const Rect& rb : b) {
      if (ra.intersects(rb)) return true;
    }
  }
  return false;
}

}  // namespace poc
