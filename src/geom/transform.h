// Placement transform for cell instances: one of the eight Manhattan
// orientations followed by a translation.  Standard-cell rows use R0 and MX
// (mirrored about the x axis) like real row-based placement.
#pragma once

#include "src/geom/point.h"
#include "src/geom/rect.h"

namespace poc {

enum class Orient {
  kR0,    // identity
  kR90,   // 90 deg counter-clockwise
  kR180,
  kR270,
  kMX,    // mirror about x axis (y -> -y)
  kMY,    // mirror about y axis (x -> -x)
  kMXR90, // mirror about x then rotate 90
  kMYR90,
};

struct Transform {
  Orient orient = Orient::kR0;
  Point offset;

  constexpr Point apply(Point p) const {
    Point q = p;
    switch (orient) {
      case Orient::kR0: break;
      case Orient::kR90: q = {-p.y, p.x}; break;
      case Orient::kR180: q = {-p.x, -p.y}; break;
      case Orient::kR270: q = {p.y, -p.x}; break;
      case Orient::kMX: q = {p.x, -p.y}; break;
      case Orient::kMY: q = {-p.x, p.y}; break;
      case Orient::kMXR90: q = {p.y, p.x}; break;
      case Orient::kMYR90: q = {-p.y, -p.x}; break;
    }
    return q + offset;
  }

  constexpr Rect apply(const Rect& r) const {
    const Point a = apply(Point{r.xlo, r.ylo});
    const Point b = apply(Point{r.xhi, r.yhi});
    return Rect::from_corners(a, b);
  }
};

}  // namespace poc
