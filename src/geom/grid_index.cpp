#include "src/geom/grid_index.h"

#include <algorithm>

#include "src/common/check.h"

namespace poc {

GridIndex::GridIndex(DbUnit bin_size) : bin_size_(bin_size) {
  POC_EXPECTS(bin_size > 0);
}

long long GridIndex::bin_of(DbUnit v) const {
  // Floor division for negative coordinates.
  long long q = v / bin_size_;
  if (v % bin_size_ != 0 && v < 0) --q;
  return q;
}

void GridIndex::insert(const Rect& r, std::size_t id) {
  POC_EXPECTS(r.valid());
  const long long bx0 = bin_of(r.xlo), bx1 = bin_of(r.xhi);
  const long long by0 = bin_of(r.ylo), by1 = bin_of(r.yhi);
  for (long long bx = bx0; bx <= bx1; ++bx) {
    for (long long by = by0; by <= by1; ++by) {
      bins_[{bx, by}].emplace_back(r, id);
    }
  }
  ++count_;
}

std::vector<std::size_t> GridIndex::query(const Rect& window) const {
  std::vector<std::size_t> out;
  const long long bx0 = bin_of(window.xlo), bx1 = bin_of(window.xhi);
  const long long by0 = bin_of(window.ylo), by1 = bin_of(window.yhi);
  for (long long bx = bx0; bx <= bx1; ++bx) {
    for (long long by = by0; by <= by1; ++by) {
      const auto it = bins_.find({bx, by});
      if (it == bins_.end()) continue;
      for (const auto& [rect, id] : it->second) {
        // Closed-interval intersection: abutting shapes are context too.
        if (rect.xlo <= window.xhi && rect.xhi >= window.xlo &&
            rect.ylo <= window.yhi && rect.yhi >= window.ylo) {
          out.push_back(id);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace poc
