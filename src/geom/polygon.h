// Rectilinear (Manhattan) polygon with counter-clockwise vertex order.
// Adjacent edges alternate horizontal/vertical; this invariant is checked at
// construction and makes per-edge normal displacement (the OPC primitive)
// exact: every vertex is the corner of one horizontal and one vertical edge.
#pragma once

#include <cstddef>
#include <vector>

#include "src/geom/point.h"
#include "src/geom/rect.h"

namespace poc {

/// Directed polygon edge with its outward normal.
struct PolyEdge {
  Point a;
  Point b;
  Axis axis = Axis::kHorizontal;
  Dir outward = Dir::kSouth;

  DbUnit length() const {
    return axis == Axis::kHorizontal ? (b.x > a.x ? b.x - a.x : a.x - b.x)
                                     : (b.y > a.y ? b.y - a.y : a.y - b.y);
  }
  Point midpoint() const { return {(a.x + b.x) / 2, (a.y + b.y) / 2}; }
};

class Polygon {
 public:
  Polygon() = default;

  /// Vertices must be >= 4, closed implicitly (last connects to first),
  /// alternate H/V segments, and wind counter-clockwise.  Clockwise input is
  /// reversed; collinear duplicate vertices are merged.
  explicit Polygon(std::vector<Point> vertices);

  static Polygon from_rect(const Rect& r);

  const std::vector<Point>& vertices() const { return verts_; }
  std::size_t size() const { return verts_.size(); }
  bool empty() const { return verts_.empty(); }

  /// Signed shoelace area is positive after normalization.
  double area() const;
  double perimeter() const;
  Rect bbox() const;

  /// Edge i runs from vertex i to vertex (i+1) % size, with outward normal.
  PolyEdge edge(std::size_t i) const;
  std::vector<PolyEdge> edges() const;

  /// Point-in-polygon (boundary counts as inside).
  bool contains(Point p) const;

  Polygon translated(Point v) const;

  /// Rebuilds the polygon after moving each edge by moves[i] database units
  /// along its outward normal (negative = inward).  The caller is
  /// responsible for keeping moves small enough to avoid self-intersection;
  /// a degenerate result (area <= 0 or edge inversion) throws.
  Polygon with_edge_moves(const std::vector<DbUnit>& moves) const;

 private:
  std::vector<Point> verts_;
};

}  // namespace poc
