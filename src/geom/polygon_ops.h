// Boolean-lite operations on Manhattan geometry: polygon-to-rectangle
// decomposition, disjoint union of rectangles, clipping.  These are the only
// Boolean operations the flow needs (mask rasterization, window flattening,
// density/area accounting), so a full polygon-clipping library is not pulled
// in.
#pragma once

#include <vector>

#include "src/geom/polygon.h"
#include "src/geom/rect.h"

namespace poc {

/// Decomposes a simple rectilinear polygon into non-overlapping rectangles
/// whose union is exactly the polygon (horizontal-slab decomposition).
std::vector<Rect> decompose(const Polygon& poly);

/// Rewrites an arbitrary (possibly overlapping) rectangle set as a disjoint
/// set covering the same region.  Adjacent slabs with identical x-intervals
/// are merged vertically to keep the output small.
std::vector<Rect> disjoint_union(const std::vector<Rect>& rects);

/// Exact area of the union of a rectangle set.
double union_area(const std::vector<Rect>& rects);

/// Clips each rectangle to the window, dropping empty results.
std::vector<Rect> clip_to_window(const std::vector<Rect>& rects,
                                 const Rect& window);

/// True if the two rectangle sets cover any common area.
bool regions_overlap(const std::vector<Rect>& a, const std::vector<Rect>& b);

}  // namespace poc
