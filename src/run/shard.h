// Window-index sharding for multi-process full-chip runs.
//
// The coordinator (coordinator.h) partitions the design's window index
// space — instances, and through the gate->instance map, gates — into one
// shard per worker process.  Two policies:
//
//   * kContiguous: static split by index range.  Shard w owns the w-th
//     contiguous slice of [0, n); placement locality makes neighbouring
//     windows similar, which concentrates cache hits inside a worker.
//   * kInterleaved: round-robin by index (i % workers == w).  Repeated-
//     block designs lay identical tiles out contiguously, so interleaving
//     balances load when window cost varies along the chip.
//
// Either way every index belongs to exactly one shard, and the merged
// result is bit-identical to a 1-worker run: workers only produce journal
// records (keyed by content fingerprint, ordered by global window index at
// merge), never partial aggregates.
//
// Worker segments: each worker publishes its completed shard as one
// `run.wNN.seg` file — a shard-stamped header (magic "POCSHRD1", worker id,
// shard parameters, the flow config fingerprint) followed by standard
// journal record frames.  Publication is temp-file + atomic rename, and the
// reader tolerates a torn tail exactly like journal replay: the valid
// prefix is kept, the tear is reported, and the missing windows become
// residual work for the coordinator.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/fingerprint.h"
#include "src/run/journal.h"

namespace poc {

enum class ShardPolicy : std::uint32_t { kContiguous = 0, kInterleaved = 1 };

const char* shard_policy_name(ShardPolicy policy);

/// ShardSpec::residue sentinel: the shard's residue class is its own
/// worker id (the normal top-level partition).
inline constexpr std::uint32_t kShardResidueSelf = ~std::uint32_t{0};

/// One worker's slice of the window index space.  For kContiguous the
/// shard is [lo, hi); for kInterleaved it is {i in [lo, hi) : i % workers
/// == residue class} and lo/hi bound the range the stride walks.
///
/// `residue` decouples the stride's residue class from the worker id so a
/// dead shard's remaining range can be re-partitioned across *new* worker
/// ids that keep walking the dead worker's stride (see
/// partition_residual_range).  kShardResidueSelf (the default) means
/// "residue class == worker", which is every top-level shard.
struct ShardSpec {
  std::uint32_t worker = 0;
  std::uint32_t workers = 1;
  ShardPolicy policy = ShardPolicy::kContiguous;
  std::uint64_t lo = 0;  ///< first index covered (inclusive)
  std::uint64_t hi = 0;  ///< one past the last index covered
  std::uint32_t residue = kShardResidueSelf;  ///< interleave residue class
};

/// The interleave residue class `spec` walks: `residue` when set,
/// otherwise the worker id.
std::uint32_t shard_residue_class(const ShardSpec& spec);

/// Splits [0, n) into `workers` shards under `policy`.  Every index lands
/// in exactly one shard; contiguous shards differ in size by at most one.
std::vector<ShardSpec> partition_shards(std::size_t n, std::size_t workers,
                                        ShardPolicy policy);

/// Re-partitions the residual window range [res_lo, res_hi) of a dead
/// shard across `new_worker_ids`: the indices `dead` owns inside the range
/// are split into one sub-shard per new worker (even chunks, first chunks
/// get the remainder), each keeping the dead shard's policy, stride, and
/// residue class so the union of the sub-shards' owned indices is exactly
/// the dead shard's residual set.  Sub-shards that would own nothing are
/// dropped.
std::vector<ShardSpec> partition_residual_range(
    const ShardSpec& dead, std::uint64_t res_lo, std::uint64_t res_hi,
    const std::vector<std::uint32_t>& new_worker_ids);

/// The indices `spec` owns, ascending.
std::vector<std::size_t> shard_indices(const ShardSpec& spec);

/// True when `index` belongs to `spec`.
bool shard_owns(const ShardSpec& spec, std::size_t index);

/// Worker segment file name: "run.w00.seg" for worker 0.
std::string shard_segment_name(std::uint32_t worker);

/// Header stamped at the front of every worker segment.
struct ShardSegmentHeader {
  std::uint32_t worker = 0;
  std::uint32_t workers = 1;
  ShardPolicy policy = ShardPolicy::kContiguous;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  Fingerprint config_fp;
};

/// Outcome of reading one worker segment.
struct ShardReadResult {
  bool header_ok = false;   ///< magic/version/CRC valid
  bool config_ok = false;   ///< config fingerprint matched
  bool torn = false;        ///< valid prefix ended before the file did
  std::size_t valid_bytes = 0;  ///< truncate-and-seal point
  ShardSegmentHeader header;
  std::vector<ReplayIssue> issues;
};

/// Writes `records` as a sealed worker segment at `path` (temp + atomic
/// rename).  False (with `error` set) on I/O failure.
bool write_shard_segment(const std::string& path,
                         const ShardSegmentHeader& header,
                         const std::vector<JournalRecord>& records,
                         std::string* error);

/// Reads a worker segment, validating the header, the config fingerprint
/// against `expect_config`, and every record frame.  Valid records append
/// to `out`; a torn tail keeps the valid prefix and sets result.torn.  A
/// missing file reports header_ok=false with one kJournalIo issue.
ShardReadResult read_shard_segment(const std::string& path,
                                   const Fingerprint& expect_config,
                                   std::vector<JournalRecord>* out);

/// Truncates a torn worker segment to its valid prefix (the coordinator's
/// truncate-and-seal step, mirroring journal reopen).  No-op when the file
/// is already clean.  False on I/O failure.
bool seal_shard_segment(const std::string& path, const ShardReadResult& read);

}  // namespace poc
