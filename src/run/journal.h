// Durable-run subsystem: a write-ahead run journal for the post-OPC flow.
//
// A full-chip run is hours of window-shaped work (per-instance OPC,
// per-gate extraction, per-window ORC) that dies to preemption, OOM kills
// and Ctrl-C.  The journal makes the *process* restartable the way PR 4
// made windows fault-tolerant: every completed window appends one record —
// its content fingerprint (src/cache), its serialized result bits, and its
// containment outcome — to an append-only segment file.  On startup the
// journal replays existing segments, validates every record checksum and
// the flow-level config fingerprint, and hands matching results back to
// the flow so only the remainder is recomputed.  Because a record stores
// the exact bits a recompute would produce (doubles as IEEE-754 bit
// patterns) and outcomes are merged in window-index order, a resumed run's
// TimingComparison is bit-identical to an uninterrupted one at any thread
// count and any kill point — see "Durable runs & resume" in DESIGN.md.
//
// Durability mechanics:
//   * append-only records framed as [marker, length, body, crc64(body)];
//   * fsync batching: appends buffer in memory and hit disk every
//     flush_every_records records (and at phase boundaries via flush());
//   * segment rotation: a full active segment is fsynced, closed, and
//     atomically renamed from journal-NNNNNN.open to journal-NNNNNN.seg;
//   * on reopen, the previous active segment's valid prefix is kept, a
//     torn tail (SIGKILL mid-write) is truncated away and reported, and
//     the file is sealed by the same atomic rename.
//
// Failure policy: open-time I/O errors throw FlowException(kJournalIo) —
// the caller decides whether a run may proceed without durability.  Append
// -time I/O errors never perturb flow results: the journal goes inert,
// the error lands in issues(), and the run continues undurable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cache/fingerprint.h"
#include "src/common/error.h"

namespace poc {

struct JournalOptions {
  bool enabled = false;
  /// Segment directory, created on open.  One journal per flow config —
  /// records from a different config are rejected at replay.
  std::string path;
  /// fsync batching: records buffered between fsyncs on the fault-free
  /// path.  1 = every record durable immediately (slowest, safest).
  std::size_t flush_every_records = 16;
  /// Active-segment rotation threshold.
  std::size_t segment_bytes = std::size_t{64} << 20;
  /// Deterministic crash hook for the recovery tests and scripts: after
  /// this many appended records the journal flushes, fsyncs, and raises
  /// SIGKILL — a kill at an exact window boundary.  0 = off.  The
  /// POC_JOURNAL_KILL_AFTER environment variable overrides this value.
  std::size_t kill_after_appends = 0;
  /// Progress hook, invoked after each successful append with the total
  /// appended-record count — outside the journal mutex, so the callback
  /// may itself do I/O (shard workers emit heartbeats through it).
  std::function<void(std::size_t)> on_append;
};

/// Which hot loop a record belongs to.  Part of the record fingerprint, so
/// phases can never replay each other's payloads.
enum class JournalPhase : std::uint8_t { kOpc = 1, kExtract = 2, kScan = 3 };

const char* journal_phase_name(JournalPhase phase);

/// Containment outcome journaled with a window so a replayed window
/// reconstructs the same FlowHealth entries a recompute would produce.
struct JournalOutcome {
  bool faulted = false;
  FaultCode code = FaultCode::kUnknown;
  std::string origin;
  std::string message;
  std::uint32_t attempts = 1;
  bool recovered = false;
  bool degraded = false;
};

/// One journaled window: identity (phase, index, content fingerprint),
/// result bits, and containment outcome.
struct JournalRecord {
  JournalPhase phase = JournalPhase::kOpc;
  std::uint64_t index = 0;
  Fingerprint fp;
  JournalOutcome outcome;
  std::vector<std::uint8_t> payload;
};

/// One rejected record or segment observed during replay.  The flow
/// surfaces these through FlowHealth (code kJournalMismatch /
/// kJournalIo) instead of silently skipping.
struct ReplayIssue {
  FaultCode code = FaultCode::kJournalMismatch;
  std::string segment;       ///< file name the issue was found in
  std::uint64_t offset = 0;  ///< byte offset of the offending record
  std::string detail;
};

/// Segment-file primitives shared by RunJournal and the shard worker
/// segments (src/run/shard): the record frame codec, a tolerant frame
/// scanner, and a sealed-standard-segment writer for the coordinator's
/// merge step.  Framing is [marker "PRC1", body length, body, crc64(body)].
namespace journal_io {

/// Appends one framed record to `out` (a ByteWriter-compatible buffer).
void append_record_frame(std::vector<std::uint8_t>& out,
                         const JournalRecord& rec);

/// Scans record frames in data[start, size), appending every valid record
/// to `out` and one ReplayIssue per reject.  Returns the end offset of the
/// last fully valid record — the truncate-and-seal point for a torn tail.
/// Mid-stream checksum rejects skip the record and keep scanning (the
/// frame length still delimits it); a bad marker or partial frame stops.
std::size_t scan_record_frames(const std::uint8_t* data, std::size_t size,
                               std::size_t start,
                               const std::string& segment_name,
                               std::vector<JournalRecord>* out,
                               std::vector<ReplayIssue>* issues);

/// Writes `records` as one sealed standard journal segment
/// (journal-<seq>.seg with the standard config-stamped header) under
/// `dir`, via temp-file + atomic rename.  The coordinator uses this to
/// materialize the merged, global-window-index-ordered journal that the
/// final restore replays.  False (with `error` set) on I/O failure.
bool write_sealed_segment(const std::string& dir, std::uint64_t seq,
                          const Fingerprint& config_fp,
                          const std::vector<JournalRecord>& records,
                          std::string* error);

}  // namespace journal_io

class RunJournal {
 public:
  /// Opens `options.path` (creating it if needed), replays every segment
  /// against `config_fp`, seals the previous active segment, and starts a
  /// new one for this run's appends.  Throws FlowException(kJournalIo)
  /// when the directory or active segment cannot be created.
  RunJournal(const JournalOptions& options, Fingerprint config_fp);
  ~RunJournal();

  RunJournal(const RunJournal&) = delete;
  RunJournal& operator=(const RunJournal&) = delete;

  /// Replayed record for `fp`, or null.  Only records loaded at open are
  /// returned — results appended by this run are served by the window
  /// caches, not the journal.  The pointer stays valid for the journal's
  /// lifetime.
  const JournalRecord* find(const Fingerprint& fp);

  /// Appends one completed window.  Deduplicates against both the replayed
  /// set and this run's appends (a window recomputed at the same content
  /// fingerprint would write identical bits).  Returns true when the
  /// record was written.  Never throws: an I/O failure parks the journal
  /// inert and is reported through issues().
  bool append(JournalRecord record);

  /// Drains the append buffer to disk and fsyncs.  Called by the flow at
  /// phase boundaries and on cancellation, so a graceful shutdown leaves a
  /// fully durable resumable state.
  void flush();

  struct Stats {
    std::size_t loaded_records = 0;    ///< valid records replayed at open
    std::size_t rejected_records = 0;  ///< checksum/truncation/config rejects
    std::size_t replayed_hits = 0;     ///< find() hits this run
    std::size_t appended_records = 0;  ///< records written this run
    std::size_t segments = 0;          ///< segment files (sealed + active)
    std::size_t fsyncs = 0;
  };
  Stats stats() const;

  /// Replay problems (rejected records, I/O failures), in discovery order.
  const std::vector<ReplayIssue>& issues() const { return issues_; }

  /// Every record replayed at open, sorted by (phase, index).  The shard
  /// coordinator salvages a dead worker's private journal through this —
  /// constructing the journal already truncate-and-sealed any torn tail.
  std::vector<JournalRecord> loaded_records() const;

  const std::string& path() const { return options_.path; }

 private:
  void load_segment(const std::string& name, bool active);
  void open_active_segment();
  void seal_active_locked();
  void write_buffer_locked(bool sync);
  void io_failure_locked(const std::string& what);

  JournalOptions options_;
  Fingerprint config_fp_;

  mutable std::mutex mutex_;
  /// Replayed records keyed by content fingerprint; immutable after open
  /// (unordered_map never invalidates element pointers on insert).
  std::unordered_map<Fingerprint, JournalRecord, FingerprintHash> loaded_;
  /// Fingerprints appended this run (dedup only).
  std::unordered_map<Fingerprint, bool, FingerprintHash> appended_;

  std::vector<ReplayIssue> issues_;
  Stats stats_;

  int fd_ = -1;                     ///< active segment file descriptor
  std::string active_file_;         ///< ...open path of the active segment
  std::uint64_t next_seq_ = 1;
  std::size_t active_bytes_ = 0;    ///< bytes written to the active segment
  std::vector<std::uint8_t> buffer_;  ///< records awaiting the next fsync
  std::size_t buffered_records_ = 0;
  bool inert_ = false;              ///< append I/O failed; journaling off
  std::uint64_t io_ops_ = 0;        ///< fault::Scope index per I/O batch
};

}  // namespace poc
