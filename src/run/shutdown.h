// Graceful shutdown for journaled full-chip runs.  Installing a
// ScopedGracefulShutdown routes SIGINT/SIGTERM to the process-wide
// CancelToken (src/par): the parallel window loops stop claiming chunks,
// in-flight windows drain and journal their results, the flow flushes the
// journal, and the run exits with FlowException(kCancelled) — resumable
// from exactly where it stopped.  The handler is async-signal-safe: it
// performs one relaxed atomic store and records the signal number.
#pragma once

namespace poc {

class CancelToken;

/// RAII installer for the SIGINT/SIGTERM -> cancel-token bridge.  The
/// previous handlers are restored on destruction.  A second signal while
/// cancellation is already draining re-raises the default disposition, so
/// a double Ctrl-C still kills a wedged process the traditional way.
class ScopedGracefulShutdown {
 public:
  /// Routes signals to `token`, or to global_cancel_token() when null.
  explicit ScopedGracefulShutdown(CancelToken* token = nullptr);
  ~ScopedGracefulShutdown();

  ScopedGracefulShutdown(const ScopedGracefulShutdown&) = delete;
  ScopedGracefulShutdown& operator=(const ScopedGracefulShutdown&) = delete;

  /// Last signal observed by the handler since installation (0 = none).
  static int last_signal();
};

}  // namespace poc
