#include "src/run/shutdown.h"

#include <csignal>

#include "src/common/check.h"
#include "src/par/thread_pool.h"

namespace poc {
namespace {

// Handler state.  Plain (lock-free) atomics only: everything the handler
// touches must be async-signal-safe.
std::sig_atomic_t g_last_signal = 0;
CancelToken* g_token = nullptr;  ///< written before handlers are installed

struct sigaction g_old_int;
struct sigaction g_old_term;
bool g_installed = false;

extern "C" void on_shutdown_signal(int sig) {
  if (g_token != nullptr) {
    if (g_token->cancelled()) {
      // Second signal: the user is done waiting for the drain.  Restore
      // the default disposition and re-raise so the process dies with the
      // conventional signal exit status.
      std::signal(sig, SIG_DFL);
      std::raise(sig);
      return;
    }
    g_token->request_cancel();
  }
  g_last_signal = sig;
}

}  // namespace

ScopedGracefulShutdown::ScopedGracefulShutdown(CancelToken* token) {
  POC_EXPECTS(!g_installed);  // one bridge at a time; nesting is a bug
  g_token = token != nullptr ? token : &global_cancel_token();
  g_last_signal = 0;

  struct sigaction sa;
  sa.sa_handler = on_shutdown_signal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: let blocking syscalls see the signal
  sigaction(SIGINT, &sa, &g_old_int);
  sigaction(SIGTERM, &sa, &g_old_term);
  g_installed = true;
}

ScopedGracefulShutdown::~ScopedGracefulShutdown() {
  sigaction(SIGINT, &g_old_int, nullptr);
  sigaction(SIGTERM, &g_old_term, nullptr);
  g_installed = false;
  g_token = nullptr;
}

int ScopedGracefulShutdown::last_signal() {
  return static_cast<int>(g_last_signal);
}

}  // namespace poc
