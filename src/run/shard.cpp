#include "src/run/shard.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "src/common/check.h"
#include "src/common/fault.h"
#include "src/common/serialize.h"
#include "src/common/vfs.h"

namespace poc {
namespace {

// Shard segment header: magic "POCSHRD1", format version, worker id,
// worker count, policy, shard range, config fingerprint, crc64 over the
// preceding fields.  56 payload bytes + 8 CRC bytes.
constexpr std::uint64_t kShardMagic = 0x314452485343'4F50ULL;  // "POCSHRD1"
constexpr std::uint32_t kShardVersion = 1;
constexpr std::size_t kShardHeaderBytes = 64;

std::vector<std::uint8_t> encode_shard_header(const ShardSegmentHeader& h) {
  ByteWriter w;
  w.u64(kShardMagic);
  w.u32(kShardVersion);
  w.u32(h.worker);
  w.u32(h.workers);
  w.u32(static_cast<std::uint32_t>(h.policy));
  w.u64(h.lo);
  w.u64(h.hi);
  w.u64(h.config_fp.hi);
  w.u64(h.config_fp.lo);
  w.u64(crc64(w.data()));
  return w.take();
}

}  // namespace

const char* shard_policy_name(ShardPolicy policy) {
  switch (policy) {
    case ShardPolicy::kContiguous:
      return "contiguous";
    case ShardPolicy::kInterleaved:
      return "interleaved";
  }
  return "invalid";
}

std::vector<ShardSpec> partition_shards(std::size_t n, std::size_t workers,
                                        ShardPolicy policy) {
  POC_EXPECTS(workers >= 1);
  std::vector<ShardSpec> shards(workers);
  const std::size_t base = n / workers;
  const std::size_t extra = n % workers;  // first `extra` shards get +1
  std::size_t next = 0;
  for (std::size_t w = 0; w < workers; ++w) {
    ShardSpec& s = shards[w];
    s.worker = static_cast<std::uint32_t>(w);
    s.workers = static_cast<std::uint32_t>(workers);
    s.policy = policy;
    if (policy == ShardPolicy::kContiguous) {
      const std::size_t size = base + (w < extra ? 1 : 0);
      s.lo = next;
      s.hi = next + size;
      next += size;
    } else {
      // The stride walks the whole range; ownership is i % workers == w.
      s.lo = 0;
      s.hi = n;
    }
  }
  return shards;
}

std::uint32_t shard_residue_class(const ShardSpec& spec) {
  return spec.residue == kShardResidueSelf ? spec.worker : spec.residue;
}

std::vector<ShardSpec> partition_residual_range(
    const ShardSpec& dead, std::uint64_t res_lo, std::uint64_t res_hi,
    const std::vector<std::uint32_t>& new_worker_ids) {
  POC_EXPECTS(!new_worker_ids.empty());
  // The residual set: every index the dead shard owns inside the range.
  std::vector<std::uint64_t> owned;
  const std::uint64_t lo = std::max(res_lo, dead.lo);
  const std::uint64_t hi = std::min(res_hi, dead.hi);
  for (std::uint64_t i = lo; i < hi; ++i) {
    if (shard_owns(dead, static_cast<std::size_t>(i))) owned.push_back(i);
  }
  std::vector<ShardSpec> subs;
  if (owned.empty()) return subs;

  const std::size_t parts = new_worker_ids.size();
  const std::size_t base = owned.size() / parts;
  const std::size_t extra = owned.size() % parts;
  std::size_t next = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t size = base + (p < extra ? 1 : 0);
    if (size == 0) continue;
    ShardSpec s;
    s.worker = new_worker_ids[p];
    s.workers = dead.workers;
    s.policy = dead.policy;
    s.lo = owned[next];
    s.hi = owned[next + size - 1] + 1;
    s.residue = shard_residue_class(dead);
    subs.push_back(s);
    next += size;
  }
  return subs;
}

std::vector<std::size_t> shard_indices(const ShardSpec& spec) {
  std::vector<std::size_t> out;
  if (spec.policy == ShardPolicy::kContiguous) {
    out.reserve(static_cast<std::size_t>(spec.hi - spec.lo));
    for (std::uint64_t i = spec.lo; i < spec.hi; ++i) {
      out.push_back(static_cast<std::size_t>(i));
    }
  } else {
    // First owned index at or after lo in the shard's residue class.
    const std::uint64_t r = shard_residue_class(spec);
    std::uint64_t first = (spec.lo / spec.workers) * spec.workers + r;
    if (first < spec.lo) first += spec.workers;
    for (std::uint64_t i = first; i < spec.hi; i += spec.workers) {
      out.push_back(static_cast<std::size_t>(i));
    }
  }
  return out;
}

bool shard_owns(const ShardSpec& spec, std::size_t index) {
  if (index < spec.lo || index >= spec.hi) return false;
  if (spec.policy == ShardPolicy::kContiguous) return true;
  return index % spec.workers == shard_residue_class(spec);
}

std::string shard_segment_name(std::uint32_t worker) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "run.w%02u.seg", worker);
  return buf;
}

bool write_shard_segment(const std::string& path,
                         const ShardSegmentHeader& header,
                         const std::vector<JournalRecord>& records,
                         std::string* error) {
  std::vector<std::uint8_t> bytes = encode_shard_header(header);
  for (const JournalRecord& rec : records) {
    journal_io::append_record_frame(bytes, rec);
  }
  const std::string tmp_path = path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot create " + tmp_path + ": " + std::strerror(errno);
    }
    return false;
  }
  fault::Scope io_scope(fault::Domain::kSegmentIo, header.worker);
  const bool wrote = vfs::write_all(fd, bytes.data(), bytes.size()) &&
                     vfs::fsync(fd) == 0;
  ::close(fd);
  if (!wrote || vfs::rename(tmp_path.c_str(), path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "cannot publish " + path + ": " + std::strerror(errno);
    }
    ::unlink(tmp_path.c_str());
    return false;
  }
  return true;
}

ShardReadResult read_shard_segment(const std::string& path,
                                   const Fingerprint& expect_config,
                                   std::vector<JournalRecord>* out) {
  ShardReadResult result;
  const std::string name = path;

  std::vector<std::uint8_t> bytes;
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      result.issues.push_back({FaultCode::kJournalIo, name, 0,
                               std::string("cannot open worker segment: ") +
                                   std::strerror(errno)});
      return result;
    }
    std::uint8_t chunk[1 << 16];
    ssize_t got;
    while ((got = ::read(fd, chunk, sizeof chunk)) > 0) {
      bytes.insert(bytes.end(), chunk, chunk + got);
    }
    ::close(fd);
    if (got < 0) {
      result.issues.push_back({FaultCode::kJournalIo, name, 0,
                               std::string("cannot read worker segment: ") +
                                   std::strerror(errno)});
      return result;
    }
  }

  if (bytes.size() < kShardHeaderBytes) {
    result.issues.push_back({FaultCode::kJournalMismatch, name, 0,
                             "worker segment shorter than its header"});
    return result;
  }
  ByteReader h(bytes.data(), kShardHeaderBytes);
  const std::uint64_t magic = h.u64();
  const std::uint32_t version = h.u32();
  result.header.worker = h.u32();
  result.header.workers = h.u32();
  result.header.policy = static_cast<ShardPolicy>(h.u32());
  result.header.lo = h.u64();
  result.header.hi = h.u64();
  result.header.config_fp.hi = h.u64();
  result.header.config_fp.lo = h.u64();
  const std::uint64_t stored_crc = h.u64();
  if (magic != kShardMagic || version != kShardVersion ||
      stored_crc != crc64(bytes.data(), kShardHeaderBytes - 8)) {
    result.issues.push_back({FaultCode::kJournalMismatch, name, 0,
                             "bad worker segment header "
                             "(magic/version/checksum)"});
    return result;
  }
  result.header_ok = true;
  if (result.header.config_fp != expect_config) {
    result.issues.push_back(
        {FaultCode::kJournalMismatch, name, 0,
         "config fingerprint mismatch: worker segment was written under "
         "different flow options"});
    return result;
  }
  result.config_ok = true;

  result.valid_bytes = journal_io::scan_record_frames(
      bytes.data(), bytes.size(), kShardHeaderBytes, name, out,
      &result.issues);
  result.torn = result.valid_bytes < bytes.size();
  return result;
}

bool seal_shard_segment(const std::string& path,
                        const ShardReadResult& read) {
  if (!read.header_ok || !read.torn) return true;
  fault::Scope io_scope(fault::Domain::kSegmentIo, read.header.worker);
  return vfs::truncate(path.c_str(),
                       static_cast<off_t>(read.valid_bytes)) == 0;
}

}  // namespace poc
