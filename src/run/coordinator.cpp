#include "src/run/coordinator.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <unordered_set>

#include "src/common/log.h"

namespace poc {
namespace {

namespace fs = std::filesystem;

bool fp_less(const JournalRecord& a, const JournalRecord& b) {
  if (a.phase != b.phase) return a.phase < b.phase;
  if (a.index != b.index) return a.index < b.index;
  if (a.fp.hi != b.fp.hi) return a.fp.hi < b.fp.hi;
  return a.fp.lo < b.fp.lo;
}

}  // namespace

std::vector<WorkerExit> run_worker_processes(
    const std::vector<WorkerCommand>& commands) {
  std::vector<WorkerExit> exits(commands.size());
  for (std::size_t i = 0; i < commands.size(); ++i) {
    const WorkerCommand& cmd = commands[i];
    WorkerExit& ex = exits[i];
    ex.worker = cmd.worker;
    std::vector<char*> argv;
    argv.reserve(cmd.argv.size() + 1);
    for (const std::string& a : cmd.argv) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    const pid_t pid = ::fork();
    if (pid < 0) {
      log_warn("shard coordinator: fork failed for worker ", cmd.worker);
      continue;
    }
    if (pid == 0) {
      ::execv(argv[0], argv.data());
      // exec failed; exit without running atexit handlers of the parent
      // image's state.
      std::perror("shard worker execv");
      ::_exit(127);
    }
    ex.pid = pid;
    ex.spawned = true;
  }
  for (WorkerExit& ex : exits) {
    if (!ex.spawned) continue;
    int status = 0;
    while (::waitpid(ex.pid, &status, 0) < 0 && errno == EINTR) {
    }
    if (WIFEXITED(status)) {
      ex.exit_code = WEXITSTATUS(status);
    } else if (WIFSIGNALED(status)) {
      ex.signal = WTERMSIG(status);
    }
  }
  return exits;
}

MergeResult collect_and_merge_segments(
    const std::string& work_dir, std::size_t workers,
    const Fingerprint& config_fp,
    const std::vector<std::string>& salvage_journal_dirs) {
  MergeResult merged;
  std::unordered_set<Fingerprint, FingerprintHash> seen;

  for (std::size_t w = 0; w < workers; ++w) {
    WorkerSegmentOutcome outcome;
    outcome.worker = static_cast<std::uint32_t>(w);
    outcome.segment_path =
        work_dir + "/" + shard_segment_name(static_cast<std::uint32_t>(w));

    std::vector<JournalRecord> records;
    std::error_code ec;
    const bool exists = fs::exists(outcome.segment_path, ec) && !ec;
    if (exists) {
      const ShardReadResult read =
          read_shard_segment(outcome.segment_path, config_fp, &records);
      outcome.segment_found = read.header_ok && read.config_ok;
      outcome.torn = read.torn;
      outcome.issues = read.issues;
      if (read.torn) {
        // Truncate-and-seal the valid prefix (mirrors journal reopen);
        // replay above already skipped the tail either way.
        if (!seal_shard_segment(outcome.segment_path, read)) {
          outcome.issues.push_back(
              {FaultCode::kJournalIo, outcome.segment_path, read.valid_bytes,
               "cannot truncate torn worker segment"});
        }
      }
      if (!outcome.segment_found) records.clear();
    }

    // A worker that died before publishing its segment still left a
    // write-ahead journal: replaying it through RunJournal truncates any
    // torn tail and yields every durably completed window.
    if (!outcome.segment_found && w < salvage_journal_dirs.size() &&
        !salvage_journal_dirs[w].empty()) {
      std::error_code ec2;
      if (fs::exists(salvage_journal_dirs[w], ec2) && !ec2) {
        try {
          JournalOptions opts;
          opts.enabled = true;
          opts.path = salvage_journal_dirs[w];
          RunJournal salvage(opts, config_fp);
          records = salvage.loaded_records();
          outcome.salvaged = true;
          for (const ReplayIssue& issue : salvage.issues()) {
            outcome.issues.push_back(issue);
          }
        } catch (const FlowException& e) {
          outcome.issues.push_back({FaultCode::kJournalIo,
                                    salvage_journal_dirs[w], 0,
                                    e.error().to_string()});
        }
      }
    }

    for (JournalRecord& rec : records) {
      if (!seen.insert(rec.fp).second) {
        ++merged.duplicate_records;
        continue;
      }
      merged.records.push_back(std::move(rec));
    }
    outcome.records = records.size();
    merged.workers.push_back(std::move(outcome));
  }

  // Global window-index order: the merge contract that makes an N-worker
  // journal indistinguishable from a 1-worker one.
  std::sort(merged.records.begin(), merged.records.end(), fp_less);
  return merged;
}

bool write_merged_journal(const std::string& merge_dir,
                          const Fingerprint& config_fp,
                          const std::vector<JournalRecord>& records,
                          std::string* error) {
  return journal_io::write_sealed_segment(merge_dir, /*seq=*/1, config_fp,
                                          records, error);
}

}  // namespace poc
