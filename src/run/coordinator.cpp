#include "src/run/coordinator.h"

#include <csignal>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <thread>
#include <tuple>
#include <unordered_set>

#include "src/common/log.h"

namespace poc {
namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

bool fp_less(const JournalRecord& a, const JournalRecord& b) {
  if (a.phase != b.phase) return a.phase < b.phase;
  if (a.index != b.index) return a.index < b.index;
  if (a.fp.hi != b.fp.hi) return a.fp.hi < b.fp.hi;
  return a.fp.lo < b.fp.lo;
}

// -- Supervisor signal bridge -----------------------------------------------
// Installed only while a forward_signals supervision loop runs.  The
// handler just records; the loop (not the handler) forwards, so the
// handler stays async-signal-safe.
std::atomic<int> g_sup_signal{0};
std::atomic<int> g_sup_count{0};

void supervisor_signal_handler(int signo) {
  g_sup_signal.store(signo, std::memory_order_relaxed);
  g_sup_count.fetch_add(1, std::memory_order_relaxed);
}

/// RAII install/restore of the supervisor's SIGINT/SIGTERM handlers.
class ScopedSupervisorSignals {
 public:
  ScopedSupervisorSignals() {
    g_sup_signal.store(0, std::memory_order_relaxed);
    g_sup_count.store(0, std::memory_order_relaxed);
    struct sigaction sa = {};
    sa.sa_handler = supervisor_signal_handler;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGINT, &sa, &prev_int_);
    ::sigaction(SIGTERM, &sa, &prev_term_);
  }
  ~ScopedSupervisorSignals() {
    ::sigaction(SIGINT, &prev_int_, nullptr);
    ::sigaction(SIGTERM, &prev_term_, nullptr);
  }

 private:
  struct sigaction prev_int_ = {};
  struct sigaction prev_term_ = {};
};

}  // namespace

const char* worker_intervention_name(WorkerIntervention::Kind kind) {
  switch (kind) {
    case WorkerIntervention::Kind::kStallKilled:
      return "stall_killed";
    case WorkerIntervention::Kind::kRespawned:
      return "respawned";
    case WorkerIntervention::Kind::kRetriesExhausted:
      return "retries_exhausted";
    case WorkerIntervention::Kind::kSignalForwarded:
      return "signal_forwarded";
    case WorkerIntervention::Kind::kSignalEscalated:
      return "signal_escalated";
  }
  return "invalid";
}

SupervisionResult supervise_tasks(std::vector<SupervisedTask>& tasks,
                                  const SupervisorOptions& options) {
  SupervisionResult result;
  result.exits.resize(tasks.size());
  result.attempts.assign(tasks.size(), 0);

  enum class State : std::uint8_t { kRunning, kBackoff, kDone };
  struct TaskState {
    State state = State::kDone;
    std::uint32_t respawns = 0;      ///< respawns used so far
    std::uint64_t backoff_ms = 0;    ///< next backoff delay
    Clock::time_point respawn_at;
    Clock::time_point last_progress;
    std::uint64_t progress_value = 0;
    bool stall_killed = false;       ///< current attempt was watchdog-killed
  };
  std::vector<TaskState> states(tasks.size());

  const bool watchdog = options.watchdog && options.progress != nullptr;
  // Handlers are installed only when forwarding was asked for — otherwise
  // whatever bridge the host process runs (ScopedGracefulShutdown) keeps
  // receiving its signals untouched.
  std::unique_ptr<ScopedSupervisorSignals> signal_guard;
  if (options.forward_signals) {
    signal_guard = std::make_unique<ScopedSupervisorSignals>();
  }
  int signals_handled = 0;
  bool draining = false;  // a forwarded signal cancels respawns/watchdog

  auto spawn = [&](std::size_t i) {
    TaskState& st = states[i];
    ++result.attempts[i];
    if (!tasks[i].start(result.attempts[i])) {
      result.exits[i] = WorkerExit{tasks[i].worker, -1, false, -1, 0};
      st.state = State::kDone;
      return;
    }
    st.state = State::kRunning;
    st.stall_killed = false;
    st.last_progress = Clock::now();  // spawn counts as progress
    st.progress_value =
        watchdog ? options.progress(tasks[i].worker) : 0;
  };

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    states[i].backoff_ms = options.backoff_initial_ms;
    spawn(i);
  }

  auto finished = [&]() {
    for (const TaskState& st : states) {
      if (st.state != State::kDone) return false;
    }
    return true;
  };

  while (!finished()) {
    // Signal forwarding: first observed SIGINT/SIGTERM is delivered to
    // every live attempt and cancels pending respawns; a second signal
    // escalates to SIGKILL.
    // One signal consumed per tick, so back-to-back signals escalate in
    // steps (forward, then SIGKILL) instead of collapsing into one.
    if (options.forward_signals &&
        g_sup_count.load(std::memory_order_relaxed) > signals_handled) {
      ++signals_handled;
      const int signo = g_sup_signal.load(std::memory_order_relaxed);
      const bool escalate = draining;
      draining = true;
      if (result.forwarded_signal == 0) result.forwarded_signal = signo;
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        TaskState& st = states[i];
        if (st.state == State::kBackoff) {
          // Cancel the pending respawn: the last failed exit stands.
          st.state = State::kDone;
          continue;
        }
        if (st.state != State::kRunning) continue;
        if (escalate || tasks[i].deliver == nullptr) {
          tasks[i].kill();
          result.interventions.push_back(
              {WorkerIntervention::Kind::kSignalEscalated, tasks[i].worker,
               result.attempts[i], "SIGKILL after repeated shutdown signal"});
        } else {
          tasks[i].deliver(signo);
          result.interventions.push_back(
              {WorkerIntervention::Kind::kSignalForwarded, tasks[i].worker,
               result.attempts[i],
               std::string("forwarded signal ") + std::to_string(signo)});
        }
      }
    }

    const Clock::time_point now = Clock::now();
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      TaskState& st = states[i];
      if (st.state == State::kBackoff) {
        if (now >= st.respawn_at) {
          result.interventions.push_back(
              {WorkerIntervention::Kind::kRespawned, tasks[i].worker,
               result.attempts[i] + 1,
               "respawn " + std::to_string(st.respawns) + "/" +
                   std::to_string(options.max_respawns) + " after backoff " +
                   std::to_string(st.backoff_ms / 2) + "ms"});
          spawn(i);
        }
        continue;
      }
      if (st.state != State::kRunning) continue;

      WorkerExit exit;
      exit.worker = tasks[i].worker;
      if (tasks[i].poll(&exit)) {
        result.exits[i] = exit;
        if (exit.ok() || draining || !watchdog ||
            st.respawns >= options.max_respawns) {
          if (!exit.ok() && watchdog && !draining) {
            result.interventions.push_back(
                {WorkerIntervention::Kind::kRetriesExhausted, tasks[i].worker,
                 result.attempts[i],
                 "respawn budget " + std::to_string(options.max_respawns) +
                     " exhausted"});
          }
          st.state = State::kDone;
        } else {
          ++st.respawns;
          st.state = State::kBackoff;
          st.respawn_at = now + std::chrono::milliseconds(st.backoff_ms);
          st.backoff_ms = std::min(st.backoff_ms * 2, options.backoff_max_ms);
        }
        continue;
      }

      if (watchdog && !draining) {
        const std::uint64_t p = options.progress(tasks[i].worker);
        if (p != st.progress_value) {
          st.progress_value = p;
          st.last_progress = now;
        } else if (now - st.last_progress >
                   std::chrono::milliseconds(options.no_progress_timeout_ms)) {
          log_warn("shard supervisor: worker ", tasks[i].worker,
                   " made no progress within ",
                   options.no_progress_timeout_ms, "ms; killing");
          tasks[i].kill();
          st.stall_killed = true;
          st.last_progress = now;  // await the exit, don't re-kill every tick
          result.interventions.push_back(
              {WorkerIntervention::Kind::kStallKilled, tasks[i].worker,
               result.attempts[i],
               "no progress within " +
                   std::to_string(options.no_progress_timeout_ms) + "ms"});
        }
      }
    }

    if (!finished()) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options.poll_interval_ms));
    }
  }

  std::sort(result.interventions.begin(), result.interventions.end(),
            [](const WorkerIntervention& a, const WorkerIntervention& b) {
              return std::tie(a.worker, a.attempt, a.kind) <
                     std::tie(b.worker, b.attempt, b.kind);
            });
  return result;
}

SupervisionResult supervise_worker_processes(
    const std::vector<WorkerCommand>& commands,
    const SupervisorOptions& options) {
  struct Proc {
    pid_t pid = -1;
  };
  std::vector<Proc> procs(commands.size());
  std::vector<SupervisedTask> tasks(commands.size());
  for (std::size_t i = 0; i < commands.size(); ++i) {
    const WorkerCommand& cmd = commands[i];
    tasks[i].worker = cmd.worker;
    tasks[i].start = [&procs, &cmd, i](std::uint32_t) {
      std::vector<char*> argv;
      argv.reserve(cmd.argv.size() + 1);
      for (const std::string& a : cmd.argv) {
        argv.push_back(const_cast<char*>(a.c_str()));
      }
      argv.push_back(nullptr);
      const pid_t pid = ::fork();
      if (pid < 0) {
        log_warn("shard coordinator: fork failed for worker ", cmd.worker);
        return false;
      }
      if (pid == 0) {
        ::execv(argv[0], argv.data());
        // exec failed; exit without running atexit handlers of the parent
        // image's state.
        std::perror("shard worker execv");
        ::_exit(127);
      }
      procs[i].pid = pid;
      return true;
    };
    tasks[i].poll = [&procs, &cmd, i](WorkerExit* exit) {
      int status = 0;
      const pid_t got = ::waitpid(procs[i].pid, &status, WNOHANG);
      if (got <= 0) return false;
      exit->worker = cmd.worker;
      exit->pid = procs[i].pid;
      exit->spawned = true;
      if (WIFEXITED(status)) {
        exit->exit_code = WEXITSTATUS(status);
        exit->signal = 0;
      } else if (WIFSIGNALED(status)) {
        exit->exit_code = -1;
        exit->signal = WTERMSIG(status);
      }
      return true;
    };
    tasks[i].kill = [&procs, i] {
      if (procs[i].pid > 0) ::kill(procs[i].pid, SIGKILL);
    };
    tasks[i].deliver = [&procs, i](int signo) {
      if (procs[i].pid > 0) ::kill(procs[i].pid, signo);
    };
  }
  return supervise_tasks(tasks, options);
}

std::vector<WorkerExit> run_worker_processes(
    const std::vector<WorkerCommand>& commands) {
  SupervisorOptions options;  // defaults: no watchdog, no forwarding
  return supervise_worker_processes(commands, options).exits;
}

MergeResult collect_and_merge_segments(
    const std::string& work_dir, std::size_t workers,
    const Fingerprint& config_fp,
    const std::vector<std::string>& salvage_journal_dirs) {
  std::vector<std::uint32_t> ids(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    ids[w] = static_cast<std::uint32_t>(w);
  }
  return collect_and_merge_segments(work_dir, ids, config_fp,
                                    salvage_journal_dirs);
}

MergeResult collect_and_merge_segments(
    const std::string& work_dir, const std::vector<std::uint32_t>& worker_ids,
    const Fingerprint& config_fp,
    const std::vector<std::string>& salvage_journal_dirs) {
  MergeResult merged;
  std::unordered_set<Fingerprint, FingerprintHash> seen;

  for (std::size_t w = 0; w < worker_ids.size(); ++w) {
    WorkerSegmentOutcome outcome;
    outcome.worker = worker_ids[w];
    outcome.segment_path = work_dir + "/" + shard_segment_name(worker_ids[w]);

    std::vector<JournalRecord> records;
    std::error_code ec;
    const bool exists = fs::exists(outcome.segment_path, ec) && !ec;
    if (exists) {
      const ShardReadResult read =
          read_shard_segment(outcome.segment_path, config_fp, &records);
      outcome.segment_found = read.header_ok && read.config_ok;
      outcome.torn = read.torn;
      outcome.issues = read.issues;
      if (read.torn) {
        // Truncate-and-seal the valid prefix (mirrors journal reopen);
        // replay above already skipped the tail either way.
        if (!seal_shard_segment(outcome.segment_path, read)) {
          outcome.issues.push_back(
              {FaultCode::kJournalIo, outcome.segment_path, read.valid_bytes,
               "cannot truncate torn worker segment"});
        }
      }
      if (!outcome.segment_found) records.clear();
    }

    // A worker that died before publishing its segment still left a
    // write-ahead journal: replaying it through RunJournal truncates any
    // torn tail and yields every durably completed window.
    if (!outcome.segment_found && w < salvage_journal_dirs.size() &&
        !salvage_journal_dirs[w].empty()) {
      std::error_code ec2;
      if (fs::exists(salvage_journal_dirs[w], ec2) && !ec2) {
        try {
          JournalOptions opts;
          opts.enabled = true;
          opts.path = salvage_journal_dirs[w];
          RunJournal salvage(opts, config_fp);
          records = salvage.loaded_records();
          outcome.salvaged = true;
          for (const ReplayIssue& issue : salvage.issues()) {
            outcome.issues.push_back(issue);
          }
        } catch (const FlowException& e) {
          outcome.issues.push_back({FaultCode::kJournalIo,
                                    salvage_journal_dirs[w], 0,
                                    e.error().to_string()});
        }
      }
    }

    for (JournalRecord& rec : records) {
      if (!seen.insert(rec.fp).second) {
        ++merged.duplicate_records;
        continue;
      }
      merged.records.push_back(std::move(rec));
    }
    outcome.records = records.size();
    merged.workers.push_back(std::move(outcome));
  }

  // Global window-index order: the merge contract that makes an N-worker
  // journal indistinguishable from a 1-worker one.
  std::sort(merged.records.begin(), merged.records.end(), fp_less);
  return merged;
}

bool write_merged_journal(const std::string& merge_dir,
                          const Fingerprint& config_fp,
                          const std::vector<JournalRecord>& records,
                          std::string* error) {
  return journal_io::write_sealed_segment(merge_dir, /*seq=*/1, config_fp,
                                          records, error);
}

}  // namespace poc
