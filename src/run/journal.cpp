#include "src/run/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <utility>

#include "src/common/fault.h"
#include "src/common/serialize.h"
#include "src/common/vfs.h"

namespace poc {
namespace {

namespace fs = std::filesystem;

// Segment header: magic "POCJRNL1" (little-endian u64), format version,
// reserved word, the flow config fingerprint, and a CRC over the preceding
// fields.  32 payload bytes + 8 CRC bytes.
constexpr std::uint64_t kSegmentMagic = 0x314C4E524A434F50ULL;  // "POCJRNL1"
constexpr std::uint32_t kFormatVersion = 1;
constexpr std::size_t kHeaderBytes = 40;

// Record frame: marker "PRC1" (u32), body length (u32), body, crc64(body).
constexpr std::uint32_t kRecordMarker = 0x31435250U;  // "PRC1"
constexpr std::size_t kFrameBytes = 4 + 4 + 8;        // marker + len + crc

std::string segment_name(std::uint64_t seq, bool active) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "journal-%06llu.%s",
                static_cast<unsigned long long>(seq),
                active ? "open" : "seg");
  return buf;
}

/// Sequence number parsed from a journal file name, or 0 when the name is
/// not a journal segment.
std::uint64_t parse_seq(const std::string& name, bool* active) {
  const bool is_seg = name.size() == 18 && name.rfind(".seg") == 14;
  const bool is_open = name.size() == 19 && name.rfind(".open") == 14;
  if (name.rfind("journal-", 0) != 0 || (!is_seg && !is_open)) return 0;
  std::uint64_t seq = 0;
  for (std::size_t i = 8; i < 14; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  if (active != nullptr) *active = is_open;
  return seq;
}

void encode_record(const JournalRecord& rec, ByteWriter& out) {
  ByteWriter body;
  body.u8(static_cast<std::uint8_t>(rec.phase));
  body.u8(rec.outcome.faulted ? 1 : 0);
  body.u8(rec.outcome.recovered ? 1 : 0);
  body.u8(rec.outcome.degraded ? 1 : 0);
  body.u8(static_cast<std::uint8_t>(rec.outcome.code));
  body.u32(rec.outcome.attempts);
  body.u64(rec.index);
  body.u64(rec.fp.hi);
  body.u64(rec.fp.lo);
  body.str(rec.outcome.origin);
  body.str(rec.outcome.message);
  body.str(std::string_view(reinterpret_cast<const char*>(rec.payload.data()),
                            rec.payload.size()));
  out.u32(kRecordMarker);
  out.u32(static_cast<std::uint32_t>(body.size()));
  out.bytes(body.data().data(), body.size());
  out.u64(crc64(body.data()));
}

bool decode_record_body(const std::uint8_t* data, std::size_t size,
                        JournalRecord& rec) {
  ByteReader r(data, size);
  rec.phase = static_cast<JournalPhase>(r.u8());
  rec.outcome.faulted = r.u8() != 0;
  rec.outcome.recovered = r.u8() != 0;
  rec.outcome.degraded = r.u8() != 0;
  rec.outcome.code = static_cast<FaultCode>(r.u8());
  rec.outcome.attempts = r.u32();
  rec.index = r.u64();
  rec.fp.hi = r.u64();
  rec.fp.lo = r.u64();
  rec.outcome.origin = r.str();
  rec.outcome.message = r.str();
  const std::string payload = r.str();
  rec.payload.assign(payload.begin(), payload.end());
  return r.done();
}

/// Standard segment header bytes for `config_fp` (see kHeaderBytes).
std::vector<std::uint8_t> make_segment_header(const Fingerprint& config_fp) {
  ByteWriter header;
  header.u64(kSegmentMagic);
  header.u32(kFormatVersion);
  header.u32(0);  // reserved
  header.u64(config_fp.hi);
  header.u64(config_fp.lo);
  header.u64(crc64(header.data()));
  return header.take();
}

[[noreturn]] void throw_journal_io(const std::string& what) {
  throw FlowException(
      FlowError{FaultCode::kJournalIo, kNoWindowId, "journal.open", what});
}

/// Best-effort fsync of the directory containing `path`, so a rename or
/// file creation inside it survives a crash.  Failure is non-fatal: some
/// filesystems refuse directory fsync.
void sync_directory(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
}

}  // namespace

namespace journal_io {

void append_record_frame(std::vector<std::uint8_t>& out,
                         const JournalRecord& rec) {
  ByteWriter w;
  encode_record(rec, w);
  const std::vector<std::uint8_t>& encoded = w.data();
  out.insert(out.end(), encoded.begin(), encoded.end());
}

std::size_t scan_record_frames(const std::uint8_t* data, std::size_t size,
                               std::size_t start,
                               const std::string& segment_name,
                               std::vector<JournalRecord>* out,
                               std::vector<ReplayIssue>* issues) {
  std::size_t valid_end = start;
  std::size_t pos = start;
  while (pos < size) {
    if (size - pos < kFrameBytes) {
      issues->push_back({FaultCode::kJournalMismatch, segment_name, pos,
                         "truncated record tail (partial frame)"});
      break;
    }
    ByteReader frame(data + pos, size - pos);
    const std::uint32_t marker = frame.u32();
    const std::uint32_t body_len = frame.u32();
    if (marker != kRecordMarker) {
      issues->push_back({FaultCode::kJournalMismatch, segment_name, pos,
                         "bad record marker; stopping replay of segment"});
      break;
    }
    if (frame.remaining() < static_cast<std::size_t>(body_len) + 8) {
      issues->push_back({FaultCode::kJournalMismatch, segment_name, pos,
                         "truncated record tail (body cut short)"});
      break;
    }
    const std::uint8_t* body = data + pos + 8;
    const std::uint64_t actual_crc = crc64(body, body_len);
    std::uint64_t stored_crc;
    std::memcpy(&stored_crc, body + body_len, sizeof stored_crc);
    const std::size_t record_end = pos + kFrameBytes + body_len;
    if (stored_crc != actual_crc) {
      // A flipped bit inside one record: reject it, keep replaying the
      // rest — the frame length still delimits the record.
      issues->push_back({FaultCode::kJournalMismatch, segment_name, pos,
                         "record checksum mismatch"});
      pos = record_end;
      continue;
    }
    JournalRecord rec;
    if (!decode_record_body(body, body_len, rec)) {
      issues->push_back({FaultCode::kJournalMismatch, segment_name, pos,
                         "record body failed to decode"});
      pos = record_end;
      continue;
    }
    valid_end = record_end;
    pos = record_end;
    out->push_back(std::move(rec));
  }
  return valid_end;
}

bool write_sealed_segment(const std::string& dir, std::uint64_t seq,
                          const Fingerprint& config_fp,
                          const std::vector<JournalRecord>& records,
                          std::string* error) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) *error = "cannot create " + dir + ": " + ec.message();
    return false;
  }
  std::vector<std::uint8_t> bytes = make_segment_header(config_fp);
  for (const JournalRecord& rec : records) append_record_frame(bytes, rec);

  const std::string final_path = dir + "/" + segment_name(seq, /*active=*/false);
  const std::string tmp_path = final_path + ".tmp";
  const int fd = ::open(tmp_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    if (error != nullptr) {
      *error = "cannot create " + tmp_path + ": " + std::strerror(errno);
    }
    return false;
  }
  fault::Scope io_scope(fault::Domain::kJournalIo, seq);
  if (!vfs::write_all(fd, bytes.data(), bytes.size())) {
    if (error != nullptr) {
      *error = "write to " + tmp_path + " failed: " + std::strerror(errno);
    }
    ::close(fd);
    ::unlink(tmp_path.c_str());
    return false;
  }
  const bool synced = vfs::fsync(fd) == 0;
  ::close(fd);
  if (!synced || vfs::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    if (error != nullptr) {
      *error = "cannot publish " + final_path + ": " + std::strerror(errno);
    }
    ::unlink(tmp_path.c_str());
    return false;
  }
  sync_directory(dir);
  return true;
}

}  // namespace journal_io

const char* journal_phase_name(JournalPhase phase) {
  switch (phase) {
    case JournalPhase::kOpc:
      return "opc";
    case JournalPhase::kExtract:
      return "extract";
    case JournalPhase::kScan:
      return "scan";
  }
  return "invalid";
}

RunJournal::RunJournal(const JournalOptions& options, Fingerprint config_fp)
    : options_(options), config_fp_(config_fp) {
  if (options_.flush_every_records == 0) options_.flush_every_records = 1;
  if (const char* env = std::getenv("POC_JOURNAL_KILL_AFTER")) {
    options_.kill_after_appends =
        static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  }

  std::error_code ec;
  fs::create_directories(options_.path, ec);
  if (ec) {
    throw_journal_io("cannot create journal directory " + options_.path +
                     ": " + ec.message());
  }

  // Replay existing segments in sequence order; the previous run's active
  // segment (at most one) is replayed last and sealed afterwards.
  std::vector<std::pair<std::uint64_t, std::string>> sealed;
  std::string active;
  std::uint64_t active_seq = 0;
  for (const fs::directory_entry& entry : fs::directory_iterator(options_.path, ec)) {
    bool is_active = false;
    const std::string name = entry.path().filename().string();
    const std::uint64_t seq = parse_seq(name, &is_active);
    if (seq == 0) continue;
    next_seq_ = std::max(next_seq_, seq + 1);
    if (is_active) {
      // Two .open files would mean a previous seal was interrupted between
      // creating the new segment and renaming the old one; replay both,
      // seal both.
      if (!active.empty()) sealed.emplace_back(active_seq, active);
      active = name;
      active_seq = seq;
    } else {
      sealed.emplace_back(seq, name);
    }
  }
  std::sort(sealed.begin(), sealed.end());
  for (const auto& [seq, name] : sealed) {
    (void)seq;
    load_segment(name, /*active=*/false);
  }
  if (!active.empty()) load_segment(active, /*active=*/true);
  stats_.segments = sealed.size() + (active.empty() ? 0 : 1);

  open_active_segment();
}

RunJournal::~RunJournal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    write_buffer_locked(/*sync=*/true);
    ::close(fd_);
    fd_ = -1;
  }
}

void RunJournal::load_segment(const std::string& name, bool active) {
  const std::string path = options_.path + "/" + name;

  // Read the whole segment: journal segments are bounded by segment_bytes
  // and replay happens once per run.
  std::vector<std::uint8_t> bytes;
  {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      issues_.push_back({FaultCode::kJournalIo, name, 0,
                         std::string("cannot open segment: ") +
                             std::strerror(errno)});
      return;
    }
    std::uint8_t chunk[1 << 16];
    ssize_t got;
    while ((got = ::read(fd, chunk, sizeof chunk)) > 0) {
      bytes.insert(bytes.end(), chunk, chunk + got);
    }
    ::close(fd);
    if (got < 0) {
      issues_.push_back({FaultCode::kJournalIo, name, 0,
                         std::string("cannot read segment: ") +
                             std::strerror(errno)});
      return;
    }
  }

  // Header: reject the whole segment when the magic/version/CRC or the
  // config fingerprint does not match — records produced under different
  // flow options must never be replayed into this run.
  bool config_ok = false;
  std::size_t valid_end = 0;
  if (bytes.size() < kHeaderBytes) {
    issues_.push_back({FaultCode::kJournalMismatch, name, 0,
                       "segment shorter than its header"});
    ++stats_.rejected_records;
  } else {
    ByteReader h(bytes.data(), kHeaderBytes);
    const std::uint64_t magic = h.u64();
    const std::uint32_t version = h.u32();
    h.u32();  // reserved
    Fingerprint fp;
    fp.hi = h.u64();
    fp.lo = h.u64();
    const std::uint64_t stored_crc = h.u64();
    const std::uint64_t actual_crc = crc64(bytes.data(), kHeaderBytes - 8);
    if (magic != kSegmentMagic || version != kFormatVersion ||
        stored_crc != actual_crc) {
      issues_.push_back({FaultCode::kJournalMismatch, name, 0,
                         "bad segment header (magic/version/checksum)"});
      ++stats_.rejected_records;
    } else if (fp != config_fp_) {
      issues_.push_back(
          {FaultCode::kJournalMismatch, name, 0,
           "config fingerprint mismatch: segment was written under "
           "different flow options"});
      ++stats_.rejected_records;
    } else {
      config_ok = true;
      valid_end = kHeaderBytes;
    }
  }

  if (config_ok) {
    std::vector<JournalRecord> records;
    const std::size_t before = issues_.size();
    valid_end = journal_io::scan_record_frames(
        bytes.data(), bytes.size(), kHeaderBytes, name, &records, &issues_);
    stats_.rejected_records += issues_.size() - before;
    for (JournalRecord& rec : records) {
      const Fingerprint fp = rec.fp;
      if (loaded_.emplace(fp, std::move(rec)).second) {
        ++stats_.loaded_records;
      }
    }
  }

  if (!active) return;

  // Seal the previous run's active segment: drop any torn tail past the
  // last valid record, then atomically rename .open -> .seg.  A crash
  // between truncate and rename just repeats this step on the next open.
  fault::Scope io_scope(fault::Domain::kJournalIo, io_ops_++);
  if (config_ok && valid_end < bytes.size()) {
    if (vfs::truncate(path.c_str(), static_cast<off_t>(valid_end)) != 0) {
      issues_.push_back({FaultCode::kJournalIo, name, valid_end,
                         std::string("cannot truncate torn tail: ") +
                             std::strerror(errno)});
      return;  // keep the file as-is; replay already skipped the tail
    }
  }
  std::string sealed_name = name;
  sealed_name.replace(sealed_name.size() - 5, 5, ".seg");
  const std::string sealed_path = options_.path + "/" + sealed_name;
  if (vfs::rename(path.c_str(), sealed_path.c_str()) != 0) {
    issues_.push_back({FaultCode::kJournalIo, name, 0,
                       std::string("cannot seal segment: ") +
                           std::strerror(errno)});
    return;
  }
  sync_directory(options_.path);
}

void RunJournal::open_active_segment() {
  active_file_ = options_.path + "/" + segment_name(next_seq_, /*active=*/true);
  ++next_seq_;
  fd_ = ::open(active_file_.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd_ < 0) {
    throw_journal_io("cannot create active segment " + active_file_ + ": " +
                     std::strerror(errno));
  }
  buffer_ = make_segment_header(config_fp_);
  active_bytes_ = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    write_buffer_locked(/*sync=*/true);
    if (inert_) {
      throw_journal_io("cannot write segment header to " + active_file_);
    }
  }
  sync_directory(options_.path);
  ++stats_.segments;
}

const JournalRecord* RunJournal::find(const Fingerprint& fp) {
  const auto it = loaded_.find(fp);
  if (it == loaded_.end()) return nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.replayed_hits;
  }
  return &it->second;
}

bool RunJournal::append(JournalRecord record) {
  bool written = false;
  std::size_t total = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (inert_ || fd_ < 0) return false;
    if (loaded_.count(record.fp) != 0 ||
        !appended_.emplace(record.fp, true).second) {
      return false;  // already durable (replayed or appended this run)
    }

    ByteWriter out;
    encode_record(record, out);
    const std::vector<std::uint8_t>& encoded = out.data();
    buffer_.insert(buffer_.end(), encoded.begin(), encoded.end());
    ++buffered_records_;
    ++stats_.appended_records;
    total = stats_.appended_records;

    const bool kill_now = options_.kill_after_appends != 0 &&
                          stats_.appended_records >= options_.kill_after_appends;
    if (buffered_records_ >= options_.flush_every_records || kill_now) {
      write_buffer_locked(/*sync=*/true);
    }
    if (kill_now) {
      // Deterministic crash hook: every appended record is durable, the
      // process dies at an exact window boundary.  SIGKILL on purpose — no
      // unwinding, no flush-at-exit, exactly what a kill -9 or OOM does.
      ::raise(SIGKILL);
    }

    if (active_bytes_ >= options_.segment_bytes) seal_active_locked();
    written = !inert_;
  }
  // Progress callback outside the mutex: the callback may do its own I/O
  // (shard heartbeats) and must never deadlock against a concurrent
  // append.  Fires even if this batch's flush just went inert — the
  // window itself completed, which is what progress means.
  if (options_.on_append) options_.on_append(total);
  return written;
}

void RunJournal::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ < 0) return;
  write_buffer_locked(/*sync=*/true);
}

void RunJournal::seal_active_locked() {
  write_buffer_locked(/*sync=*/true);
  if (inert_) return;
  ::close(fd_);
  fd_ = -1;
  fault::Scope io_scope(fault::Domain::kJournalIo, io_ops_++);
  std::string sealed = active_file_;
  sealed.replace(sealed.size() - 5, 5, ".seg");
  if (vfs::rename(active_file_.c_str(), sealed.c_str()) != 0) {
    io_failure_locked(std::string("cannot seal full segment: ") +
                      std::strerror(errno));
    return;
  }
  sync_directory(options_.path);

  active_file_ = options_.path + "/" + segment_name(next_seq_, /*active=*/true);
  ++next_seq_;
  fd_ = ::open(active_file_.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd_ < 0) {
    io_failure_locked("cannot create next segment " + active_file_ + ": " +
                      std::strerror(errno));
    return;
  }
  buffer_ = make_segment_header(config_fp_);
  active_bytes_ = 0;
  write_buffer_locked(/*sync=*/true);
  sync_directory(options_.path);
  ++stats_.segments;
}

void RunJournal::write_buffer_locked(bool sync) {
  if (inert_ || fd_ < 0 || buffer_.empty()) {
    buffered_records_ = 0;
    return;
  }
  fault::Scope io_scope(fault::Domain::kJournalIo, io_ops_++);
  if (!vfs::write_all(fd_, buffer_.data(), buffer_.size())) {
    io_failure_locked(std::string("write failed: ") + std::strerror(errno));
    return;
  }
  active_bytes_ += buffer_.size();
  buffer_.clear();
  buffered_records_ = 0;
  if (sync) {
    if (vfs::fsync(fd_) != 0) {
      io_failure_locked(std::string("fsync failed: ") + std::strerror(errno));
      return;
    }
    ++stats_.fsyncs;
  }
}

void RunJournal::io_failure_locked(const std::string& what) {
  // Journaling must never corrupt a run: park the journal, surface the
  // failure through issues(), let the flow finish undurable.
  inert_ = true;
  issues_.push_back({FaultCode::kJournalIo, active_file_, active_bytes_, what});
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

RunJournal::Stats RunJournal::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::vector<JournalRecord> RunJournal::loaded_records() const {
  std::vector<JournalRecord> out;
  out.reserve(loaded_.size());
  for (const auto& [fp, rec] : loaded_) out.push_back(rec);
  std::sort(out.begin(), out.end(),
            [](const JournalRecord& a, const JournalRecord& b) {
              if (a.phase != b.phase) return a.phase < b.phase;
              if (a.index != b.index) return a.index < b.index;
              if (a.fp.hi != b.fp.hi) return a.fp.hi < b.fp.hi;
              return a.fp.lo < b.fp.lo;
            });
  return out;
}

}  // namespace poc
