// Coordinator side of sharded multi-process runs: spawn worker processes,
// wait for them, collect their shard segments (tolerating death and torn
// files), and merge every surviving record into one standard journal that
// the flow's existing restore path replays.
//
// The coordinator is deliberately flow-agnostic — it moves journal records
// and processes around, never window results — so it lives beside the
// journal in src/run.  The flow-level driver (src/core/flow_shard) owns
// what the windows *mean*: it partitions design indices, runs the merged
// restore, and re-times once.
//
// Failure model: a worker that dies (crash, kill -9, nonzero exit) is a
// contained fault, not a run abort.  Its published segment — or, when it
// never published, its private write-ahead journal — is read back through
// the same torn-tail-tolerant scanner journal replay uses; the valid
// prefix merges, the tear is truncate-and-sealed and reported, and every
// window the worker did not durably finish is recomputed in-process by the
// merged restore (the journal simply misses those fingerprints).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <sys/types.h>
#include <vector>

#include "src/cache/fingerprint.h"
#include "src/run/journal.h"
#include "src/run/shard.h"

namespace poc {

/// One worker process to launch: a full argv (argv[0] = binary path).
struct WorkerCommand {
  std::uint32_t worker = 0;
  std::vector<std::string> argv;
};

/// Exit status of one worker process.
struct WorkerExit {
  std::uint32_t worker = 0;
  pid_t pid = -1;
  bool spawned = false;
  int exit_code = -1;    ///< valid when signal == 0
  int signal = 0;        ///< terminating signal, 0 when exited normally
  bool ok() const { return spawned && signal == 0 && exit_code == 0; }
};

/// fork/execs every command and waits for all of them.  Workers run
/// concurrently; a spawn failure is reported in the result, never thrown.
/// Legacy wrapper over supervise_worker_processes with the watchdog and
/// signal forwarding off — fail-and-salvage semantics.
std::vector<WorkerExit> run_worker_processes(
    const std::vector<WorkerCommand>& commands);

// ---------------------------------------------------------------------------
// Supervision: watchdog, bounded respawn, signal forwarding.

/// Knobs of the supervision loop.  Defaults are fail-and-salvage (PR 8
/// semantics): no watchdog, no forwarding — a dead worker's windows become
/// residual work.
struct SupervisorOptions {
  /// Detect stalled workers via the progress callback and kill/respawn
  /// them.  Requires `progress`.
  bool watchdog = false;
  /// A worker whose progress value has not changed for this long is
  /// declared stalled and killed.  Spawn counts as progress.
  std::uint64_t no_progress_timeout_ms = 60000;
  /// Supervision tick: reap exits, probe progress, fire respawns.
  std::uint64_t poll_interval_ms = 20;
  /// Respawn budget per worker after a failed exit (stall kill, crash,
  /// nonzero exit).  0 = never respawn.
  std::uint32_t max_respawns = 1;
  /// Exponential backoff before each respawn: initial delay, doubling per
  /// attempt, capped.
  std::uint64_t backoff_initial_ms = 50;
  std::uint64_t backoff_max_ms = 1000;
  /// Forward SIGINT/SIGTERM to live workers (first signal) and escalate to
  /// SIGKILL (second signal).  Pending respawns are cancelled; the loop
  /// then just reaps exits.
  bool forward_signals = false;
  /// Progress counter per worker id — any change (not just increase)
  /// resets the stall timer.  The shard driver probes the worker's stats-
  /// file size, which grows with every heartbeat line.
  std::function<std::uint64_t(std::uint32_t)> progress;
};

/// One supervisable worker: callbacks let the same loop drive forked
/// processes and in-process threads.  All callbacks are invoked from the
/// supervision loop's thread only.
struct SupervisedTask {
  std::uint32_t worker = 0;
  /// Spawns attempt `attempt` (1-based).  False = spawn failure (the task
  /// is finished with spawned=false).
  std::function<bool(std::uint32_t)> start;
  /// Polls the current attempt; fills `*exit` and returns true when it
  /// finished.  Must not block.
  std::function<bool(WorkerExit*)> poll;
  /// Hard-stops the current attempt (SIGKILL / cancel token).  The exit
  /// still arrives through poll().
  std::function<void()> kill;
  /// Delivers a forwarded signal to the current attempt (null = kill() on
  /// escalation only).
  std::function<void(int)> deliver;
};

/// One coordinator intervention, reported deterministically (details are
/// built from configuration values, never wall-clock readings).
struct WorkerIntervention {
  enum class Kind : std::uint8_t {
    kStallKilled = 0,    ///< watchdog killed a no-progress worker
    kRespawned,          ///< worker respawned after backoff
    kRetriesExhausted,   ///< final attempt failed; residual redistribution
    kSignalForwarded,    ///< SIGINT/SIGTERM forwarded to the worker
    kSignalEscalated,    ///< second signal: SIGKILL
  };
  Kind kind = Kind::kStallKilled;
  std::uint32_t worker = 0;
  std::uint32_t attempt = 0;  ///< 1-based attempt the intervention hit
  std::string detail;
};

const char* worker_intervention_name(WorkerIntervention::Kind kind);

struct SupervisionResult {
  /// Final exit per task (same order as the task list).
  std::vector<WorkerExit> exits;
  /// Every intervention, sorted by (worker, attempt, kind).
  std::vector<WorkerIntervention> interventions;
  /// Total spawn attempts per task (same order as the task list).
  std::vector<std::uint32_t> attempts;
  /// Signal observed and forwarded (0 = none).
  int forwarded_signal = 0;
};

/// Runs every task to completion under the supervision loop: spawn all,
/// reap exits, detect stalls (watchdog), respawn with exponential backoff
/// up to max_respawns, forward/escalate signals.  A task whose final
/// attempt fails is left failed — redistribution is the caller's job.
SupervisionResult supervise_tasks(std::vector<SupervisedTask>& tasks,
                                  const SupervisorOptions& options);

/// Process adapter: fork/execs commands and supervises them (stall kill =
/// SIGKILL, deliver = kill(pid, sig)).
SupervisionResult supervise_worker_processes(
    const std::vector<WorkerCommand>& commands,
    const SupervisorOptions& options);

/// What the coordinator found for one worker while collecting segments.
struct WorkerSegmentOutcome {
  std::uint32_t worker = 0;
  std::string segment_path;
  bool segment_found = false;  ///< run.wNN.seg existed with a valid header
  bool torn = false;           ///< tail truncated-and-sealed
  bool salvaged = false;       ///< records came from the private journal
  std::size_t records = 0;     ///< records this worker contributed
  std::vector<ReplayIssue> issues;
};

struct MergeResult {
  /// Deduplicated records from every worker, sorted by (phase, global
  /// window index) — the same deterministic order the thread pool's merge
  /// step enforces in-process.
  std::vector<JournalRecord> records;
  std::vector<WorkerSegmentOutcome> workers;
  std::size_t duplicate_records = 0;  ///< same fingerprint from two sources
};

/// Collects all worker segments under `work_dir` (files named
/// shard_segment_name(w); workers that died may instead leave a private
/// journal at work_dir/w<NN>/journal — pass its path via
/// `salvage_journal_dirs[w]`, empty to skip salvage) and merges them.
/// Records whose config fingerprint does not match `config_fp` are
/// rejected segment-wholesale, exactly like journal replay.
MergeResult collect_and_merge_segments(
    const std::string& work_dir, std::size_t workers,
    const Fingerprint& config_fp,
    const std::vector<std::string>& salvage_journal_dirs);

/// Same, for an explicit worker-id list (not necessarily 0..N-1): the
/// self-healing driver re-merges after spawning redistribution sub-shards
/// whose ids continue past the original worker count.
/// `salvage_journal_dirs` is positional against `worker_ids`.
MergeResult collect_and_merge_segments(
    const std::string& work_dir, const std::vector<std::uint32_t>& worker_ids,
    const Fingerprint& config_fp,
    const std::vector<std::string>& salvage_journal_dirs);

/// Writes merged records as the single sealed segment of a fresh journal
/// directory at `merge_dir` (existing segments there are left alone; use a
/// clean directory per merge).  The flow then restores by pointing its
/// JournalOptions at `merge_dir`.
bool write_merged_journal(const std::string& merge_dir,
                          const Fingerprint& config_fp,
                          const std::vector<JournalRecord>& records,
                          std::string* error);

}  // namespace poc
