// Coordinator side of sharded multi-process runs: spawn worker processes,
// wait for them, collect their shard segments (tolerating death and torn
// files), and merge every surviving record into one standard journal that
// the flow's existing restore path replays.
//
// The coordinator is deliberately flow-agnostic — it moves journal records
// and processes around, never window results — so it lives beside the
// journal in src/run.  The flow-level driver (src/core/flow_shard) owns
// what the windows *mean*: it partitions design indices, runs the merged
// restore, and re-times once.
//
// Failure model: a worker that dies (crash, kill -9, nonzero exit) is a
// contained fault, not a run abort.  Its published segment — or, when it
// never published, its private write-ahead journal — is read back through
// the same torn-tail-tolerant scanner journal replay uses; the valid
// prefix merges, the tear is truncate-and-sealed and reported, and every
// window the worker did not durably finish is recomputed in-process by the
// merged restore (the journal simply misses those fingerprints).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <sys/types.h>
#include <vector>

#include "src/cache/fingerprint.h"
#include "src/run/journal.h"
#include "src/run/shard.h"

namespace poc {

/// One worker process to launch: a full argv (argv[0] = binary path).
struct WorkerCommand {
  std::uint32_t worker = 0;
  std::vector<std::string> argv;
};

/// Exit status of one worker process.
struct WorkerExit {
  std::uint32_t worker = 0;
  pid_t pid = -1;
  bool spawned = false;
  int exit_code = -1;    ///< valid when signal == 0
  int signal = 0;        ///< terminating signal, 0 when exited normally
  bool ok() const { return spawned && signal == 0 && exit_code == 0; }
};

/// fork/execs every command and waits for all of them.  Workers run
/// concurrently; a spawn failure is reported in the result, never thrown.
std::vector<WorkerExit> run_worker_processes(
    const std::vector<WorkerCommand>& commands);

/// What the coordinator found for one worker while collecting segments.
struct WorkerSegmentOutcome {
  std::uint32_t worker = 0;
  std::string segment_path;
  bool segment_found = false;  ///< run.wNN.seg existed with a valid header
  bool torn = false;           ///< tail truncated-and-sealed
  bool salvaged = false;       ///< records came from the private journal
  std::size_t records = 0;     ///< records this worker contributed
  std::vector<ReplayIssue> issues;
};

struct MergeResult {
  /// Deduplicated records from every worker, sorted by (phase, global
  /// window index) — the same deterministic order the thread pool's merge
  /// step enforces in-process.
  std::vector<JournalRecord> records;
  std::vector<WorkerSegmentOutcome> workers;
  std::size_t duplicate_records = 0;  ///< same fingerprint from two sources
};

/// Collects all worker segments under `work_dir` (files named
/// shard_segment_name(w); workers that died may instead leave a private
/// journal at work_dir/w<NN>/journal — pass its path via
/// `salvage_journal_dirs[w]`, empty to skip salvage) and merges them.
/// Records whose config fingerprint does not match `config_fp` are
/// rejected segment-wholesale, exactly like journal replay.
MergeResult collect_and_merge_segments(
    const std::string& work_dir, std::size_t workers,
    const Fingerprint& config_fp,
    const std::vector<std::string>& salvage_journal_dirs);

/// Writes merged records as the single sealed segment of a fresh journal
/// directory at `merge_dir` (existing segments there are left alone; use a
/// clean directory per merge).  The flow then restores by pointing its
/// JournalOptions at `merge_dir`.
bool write_merged_journal(const std::string& merge_dir,
                          const Fingerprint& config_fp,
                          const std::vector<JournalRecord>& records,
                          std::string* error);

}  // namespace poc
