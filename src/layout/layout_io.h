// Plain-text layout serialization (a GDS-like stream in readable form).
// Lets examples dump generated layouts and tests round-trip them.
//
// Format:
//   cell <name> <xlo> <ylo> <xhi> <yhi>
//   shape <layer> <n> x0 y0 x1 y1 ...
//   gate <device> <n|p> <xlo> <ylo> <xhi> <yhi> <drawn_l> <drawn_w>
//   endcell
//   inst <name> <cellname> <orient> <x> <y>
//   topshape <layer> <n> x0 y0 ...
#pragma once

#include <iosfwd>
#include <string>

#include "src/layout/layout_db.h"

namespace poc {

void write_layout(std::ostream& os, const LayoutDb& db);
std::string layout_to_string(const LayoutDb& db);

/// Parses a layout written by write_layout.  The returned database is not
/// frozen.  Throws CheckError on malformed input.
LayoutDb read_layout(std::istream& is);
LayoutDb layout_from_string(const std::string& text);

}  // namespace poc
