#include "src/layout/layout_db.h"

#include <algorithm>

#include "src/common/check.h"

namespace poc {

const char* layer_name(Layer layer) {
  switch (layer) {
    case Layer::kNwell: return "nwell";
    case Layer::kActive: return "active";
    case Layer::kPoly: return "poly";
    case Layer::kContact: return "contact";
    case Layer::kMetal1: return "metal1";
    case Layer::kVia1: return "via1";
    case Layer::kMetal2: return "metal2";
  }
  return "?";
}

std::optional<Layer> layer_from_name(const std::string& name) {
  for (std::size_t i = 0; i < kNumLayers; ++i) {
    const Layer layer = static_cast<Layer>(i);
    if (name == layer_name(layer)) return layer;
  }
  return std::nullopt;
}

std::size_t LayoutDb::add_cell(CellLayout cell) {
  POC_EXPECTS(!frozen_);
  POC_EXPECTS(!cell_names_.contains(cell.name));
  cell_names_[cell.name] = cells_.size();
  cells_.push_back(std::move(cell));
  return cells_.size() - 1;
}

std::size_t LayoutDb::cell_index(const std::string& name) const {
  const auto it = cell_names_.find(name);
  POC_EXPECTS(it != cell_names_.end());
  return it->second;
}

const CellLayout& LayoutDb::cell(std::size_t idx) const {
  POC_EXPECTS(idx < cells_.size());
  return cells_[idx];
}

std::size_t LayoutDb::add_instance(Instance inst) {
  POC_EXPECTS(!frozen_);
  POC_EXPECTS(inst.cell < cells_.size());
  POC_EXPECTS(!instance_names_.contains(inst.name));
  instance_names_[inst.name] = instances_.size();
  instances_.push_back(std::move(inst));
  return instances_.size() - 1;
}

const Instance& LayoutDb::instance(std::size_t idx) const {
  POC_EXPECTS(idx < instances_.size());
  return instances_[idx];
}

std::size_t LayoutDb::instance_index(const std::string& name) const {
  const auto it = instance_names_.find(name);
  POC_EXPECTS(it != instance_names_.end());
  return it->second;
}

void LayoutDb::add_top_shape(Shape s) {
  POC_EXPECTS(!frozen_);
  top_shapes_.push_back(std::move(s));
}

void LayoutDb::freeze() {
  POC_EXPECTS(!frozen_);
  for (std::size_t i = 0; i < instances_.size(); ++i) {
    const Instance& inst = instances_[i];
    const CellLayout& master = cells_[inst.cell];
    inst_index_.insert(inst.transform.apply(master.boundary), i);
    for (std::size_t g = 0; g < master.gates.size(); ++g) {
      const GateInfo& gi = master.gates[g];
      PlacedGate pg;
      pg.instance = i;
      pg.gate_in_cell = g;
      pg.region = inst.transform.apply(gi.region);
      // Cell masters draw poly vertically (channel length along x); R90/R270
      // orientations would rotate that.  Rows only use R0/MX/MY/R180, all of
      // which keep poly vertical.
      const Orient o = inst.transform.orient;
      pg.vertical_poly = (o == Orient::kR0 || o == Orient::kMX ||
                          o == Orient::kMY || o == Orient::kR180);
      placed_gates_.push_back(pg);
    }
  }
  for (std::size_t i = 0; i < top_shapes_.size(); ++i) {
    top_index_.insert(top_shapes_[i].poly.bbox(), i);
  }
  frozen_ = true;
}

std::vector<Rect> LayoutDb::flatten_layer(const Rect& window,
                                          Layer layer) const {
  POC_EXPECTS(frozen_);
  std::vector<Rect> rects;
  for (std::size_t i : inst_index_.query(window)) {
    const Instance& inst = instances_[i];
    const CellLayout& master = cells_[inst.cell];
    for (const Shape& s : master.shapes) {
      if (s.layer != layer) continue;
      // Transform then clip.  decompose() keeps this exact for polygons.
      for (const Rect& r : decompose(s.poly)) {
        const Rect placed = inst.transform.apply(r);
        const Rect clipped = placed.intersection(window);
        if (!clipped.empty()) rects.push_back(clipped);
      }
    }
  }
  for (std::size_t i : top_index_.query(window)) {
    const Shape& s = top_shapes_[i];
    if (s.layer != layer) continue;
    for (const Rect& r : decompose(s.poly)) {
      const Rect clipped = r.intersection(window);
      if (!clipped.empty()) rects.push_back(clipped);
    }
  }
  return disjoint_union(rects);
}

std::vector<Polygon> LayoutDb::flatten_layer_polys(const Rect& window,
                                                   Layer layer) const {
  POC_EXPECTS(frozen_);
  std::vector<Polygon> polys;
  const auto transform_poly = [](const Transform& t, const Polygon& p) {
    std::vector<Point> verts;
    verts.reserve(p.size());
    for (const Point& v : p.vertices()) verts.push_back(t.apply(v));
    return Polygon(std::move(verts));  // re-normalizes winding after mirrors
  };
  for (std::size_t i : inst_index_.query(window)) {
    const Instance& inst = instances_[i];
    for (const Shape& s : cells_[inst.cell].shapes) {
      if (s.layer != layer) continue;
      Polygon placed = transform_poly(inst.transform, s.poly);
      if (placed.bbox().intersects(window)) polys.push_back(std::move(placed));
    }
  }
  for (std::size_t i : top_index_.query(window)) {
    const Shape& s = top_shapes_[i];
    if (s.layer != layer) continue;
    if (s.poly.bbox().intersects(window)) polys.push_back(s.poly);
  }
  return polys;
}

const std::vector<PlacedGate>& LayoutDb::placed_gates() const {
  POC_EXPECTS(frozen_);
  return placed_gates_;
}

Rect LayoutDb::extent() const {
  Rect e{0, 0, 0, 0};
  bool first = true;
  for (const Instance& inst : instances_) {
    const Rect b = inst.transform.apply(cells_[inst.cell].boundary);
    e = first ? b : e.bounding_union(b);
    first = false;
  }
  for (const Shape& s : top_shapes_) {
    const Rect b = s.poly.bbox();
    e = first ? b : e.bounding_union(b);
    first = false;
  }
  return e;
}

}  // namespace poc
