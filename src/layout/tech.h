// Technology parameters for the synthetic ~90 nm process used throughout
// the reproduction.  Numbers are representative of the 2005-era node the
// paper targets: 193 nm lithography, drawn poly gate length 90 nm, contacted
// poly pitch ~350 nm, metal-1 half-pitch ~120 nm.
#pragma once

#include "src/common/units.h"

namespace poc {

struct Tech {
  // --- front end ---
  DbUnit gate_length = 90;        ///< drawn poly gate length (nm)
  DbUnit poly_width = 90;         ///< poly interconnect width off-gate
  DbUnit poly_space = 160;        ///< min poly-poly spacing
  DbUnit poly_pitch = 250;        ///< gate pitch inside multi-finger cells
  DbUnit active_to_poly = 100;    ///< poly endcap past active
  DbUnit active_space = 180;
  DbUnit contact_size = 110;
  DbUnit contact_to_gate = 90;

  // --- back end ---
  DbUnit m1_width = 120;
  DbUnit m1_space = 120;
  DbUnit m1_pitch = 240;
  DbUnit m2_width = 140;
  DbUnit m2_space = 140;
  DbUnit m2_pitch = 280;

  // --- standard-cell frame ---
  DbUnit cell_height = 2400;      ///< row height
  DbUnit rail_width = 240;        ///< VDD/VSS rail width
  DbUnit nmos_width = 600;        ///< default NMOS drawn width
  DbUnit pmos_width = 900;        ///< default PMOS drawn width

  // --- electrical (used by pex) ---
  double m1_sheet_res_ohm_sq = 0.08;   ///< ohm/square at drawn width
  double m1_cap_per_um_ff = 0.20;      ///< fF/um at drawn width/space
  double m2_sheet_res_ohm_sq = 0.05;
  double m2_cap_per_um_ff = 0.18;
  double contact_res_ohm = 8.0;

  static const Tech& default_tech() {
    static const Tech t{};
    return t;
  }
};

}  // namespace poc
