#include "src/layout/svg_dump.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/common/check.h"

namespace poc {
namespace {

/// Layout nm -> SVG user units, with the y axis flipped.
struct Mapper {
  const Rect& window;
  double scale;
  double x(double nm) const { return (nm - static_cast<double>(window.xlo)) * scale; }
  double y(double nm) const {
    return (static_cast<double>(window.yhi) - nm) * scale;
  }
};

}  // namespace

void write_svg(std::ostream& os, const Rect& window,
               const std::vector<SvgLayer>& layers,
               const std::vector<SvgContour>& contours, double scale) {
  POC_EXPECTS(!window.empty());
  POC_EXPECTS(scale > 0.0);
  const Mapper m{window, scale};
  os << std::fixed << std::setprecision(2);
  os << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
     << static_cast<double>(window.width()) * scale << "\" height=\""
     << static_cast<double>(window.height()) * scale << "\">\n";
  os << "  <rect width=\"100%\" height=\"100%\" fill=\"#fff\"/>\n";
  for (const SvgLayer& layer : layers) {
    os << "  <g id=\"" << layer.name << "\" fill=\"" << layer.fill
       << "\" stroke=\"" << layer.stroke << "\" fill-opacity=\""
       << layer.opacity << "\">\n";
    for (const Polygon& p : layer.polygons) {
      os << "    <polygon points=\"";
      for (const Point& v : p.vertices()) {
        os << m.x(static_cast<double>(v.x)) << ","
           << m.y(static_cast<double>(v.y)) << " ";
      }
      os << "\"/>\n";
    }
    os << "  </g>\n";
  }
  for (const SvgContour& c : contours) {
    os << "  <poly" << (c.closed ? "gon" : "line") << " points=\"";
    for (const auto& [px, py] : c.points) {
      os << m.x(px) << "," << m.y(py) << " ";
    }
    os << "\" fill=\"none\" stroke=\"" << c.stroke << "\" stroke-width=\""
       << c.width_nm * scale << "\"/>\n";
  }
  os << "</svg>\n";
}

std::string svg_to_string(const Rect& window,
                          const std::vector<SvgLayer>& layers,
                          const std::vector<SvgContour>& contours,
                          double scale) {
  std::ostringstream os;
  write_svg(os, window, layers, contours, scale);
  return os.str();
}

}  // namespace poc
