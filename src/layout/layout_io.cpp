#include "src/layout/layout_io.h"

#include <map>
#include <ostream>
#include <sstream>

#include "src/common/check.h"

namespace poc {
namespace {

const char* orient_name(Orient o) {
  switch (o) {
    case Orient::kR0: return "R0";
    case Orient::kR90: return "R90";
    case Orient::kR180: return "R180";
    case Orient::kR270: return "R270";
    case Orient::kMX: return "MX";
    case Orient::kMY: return "MY";
    case Orient::kMXR90: return "MXR90";
    case Orient::kMYR90: return "MYR90";
  }
  return "R0";
}

Orient orient_from_name(const std::string& s) {
  static const std::map<std::string, Orient> kMap = {
      {"R0", Orient::kR0},     {"R90", Orient::kR90},
      {"R180", Orient::kR180}, {"R270", Orient::kR270},
      {"MX", Orient::kMX},     {"MY", Orient::kMY},
      {"MXR90", Orient::kMXR90}, {"MYR90", Orient::kMYR90}};
  const auto it = kMap.find(s);
  POC_EXPECTS(it != kMap.end());
  return it->second;
}

void write_poly(std::ostream& os, const Shape& s, const char* tag) {
  os << tag << " " << layer_name(s.layer) << " " << s.poly.size();
  for (const Point& p : s.poly.vertices()) os << " " << p.x << " " << p.y;
  os << "\n";
}

Shape read_poly(std::istringstream& line) {
  std::string layer_str;
  std::size_t n = 0;
  line >> layer_str >> n;
  const auto layer = layer_from_name(layer_str);
  POC_EXPECTS(layer.has_value());
  POC_EXPECTS(n >= 4);
  std::vector<Point> pts(n);
  for (Point& p : pts) line >> p.x >> p.y;
  POC_EXPECTS(!line.fail());
  return Shape{*layer, Polygon(std::move(pts))};
}

}  // namespace

void write_layout(std::ostream& os, const LayoutDb& db) {
  for (std::size_t c = 0; c < db.num_cells(); ++c) {
    const CellLayout& cell = db.cell(c);
    os << "cell " << cell.name << " " << cell.boundary.xlo << " "
       << cell.boundary.ylo << " " << cell.boundary.xhi << " "
       << cell.boundary.yhi << "\n";
    for (const Shape& s : cell.shapes) write_poly(os, s, "shape");
    for (const GateInfo& g : cell.gates) {
      os << "gate " << g.device << " " << (g.is_nmos ? "n" : "p") << " "
         << g.region.xlo << " " << g.region.ylo << " " << g.region.xhi << " "
         << g.region.yhi << " " << g.drawn_l << " " << g.drawn_w << "\n";
    }
    os << "endcell\n";
  }
  for (std::size_t i = 0; i < db.num_instances(); ++i) {
    const Instance& inst = db.instance(i);
    os << "inst " << inst.name << " " << db.cell(inst.cell).name << " "
       << orient_name(inst.transform.orient) << " " << inst.transform.offset.x
       << " " << inst.transform.offset.y << "\n";
  }
  for (const Shape& s : db.top_shapes()) write_poly(os, s, "topshape");
}

std::string layout_to_string(const LayoutDb& db) {
  std::ostringstream os;
  write_layout(os, db);
  return os.str();
}

LayoutDb read_layout(std::istream& is) {
  LayoutDb db;
  CellLayout cur;
  bool in_cell = false;
  std::string raw;
  while (std::getline(is, raw)) {
    if (raw.empty()) continue;
    std::istringstream line(raw);
    std::string kw;
    line >> kw;
    if (kw == "cell") {
      POC_EXPECTS(!in_cell);
      cur = CellLayout{};
      line >> cur.name >> cur.boundary.xlo >> cur.boundary.ylo >>
          cur.boundary.xhi >> cur.boundary.yhi;
      POC_EXPECTS(!line.fail());
      in_cell = true;
    } else if (kw == "shape") {
      POC_EXPECTS(in_cell);
      cur.shapes.push_back(read_poly(line));
    } else if (kw == "gate") {
      POC_EXPECTS(in_cell);
      GateInfo g;
      std::string type;
      line >> g.device >> type >> g.region.xlo >> g.region.ylo >>
          g.region.xhi >> g.region.yhi >> g.drawn_l >> g.drawn_w;
      POC_EXPECTS(!line.fail());
      POC_EXPECTS(type == "n" || type == "p");
      g.is_nmos = type == "n";
      cur.gates.push_back(g);
    } else if (kw == "endcell") {
      POC_EXPECTS(in_cell);
      db.add_cell(std::move(cur));
      in_cell = false;
    } else if (kw == "inst") {
      POC_EXPECTS(!in_cell);
      Instance inst;
      std::string cell_name, orient_str;
      line >> inst.name >> cell_name >> orient_str >>
          inst.transform.offset.x >> inst.transform.offset.y;
      POC_EXPECTS(!line.fail());
      inst.cell = db.cell_index(cell_name);
      inst.transform.orient = orient_from_name(orient_str);
      db.add_instance(std::move(inst));
    } else if (kw == "topshape") {
      POC_EXPECTS(!in_cell);
      db.add_top_shape(read_poly(line));
    } else {
      check_fail("parse", raw.c_str(), __FILE__, __LINE__);
    }
  }
  POC_EXPECTS(!in_cell);
  return db;
}

LayoutDb layout_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_layout(is);
}

}  // namespace poc
