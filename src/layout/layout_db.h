// Hierarchical layout database: cells hold shapes per layer plus gate
// annotations; the top level holds placed instances and routed wires.
// A flattening query returns the Manhattan geometry inside an arbitrary
// window — the primitive the litho simulator's mask builder consumes.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/geom/grid_index.h"
#include "src/geom/polygon.h"
#include "src/geom/polygon_ops.h"
#include "src/geom/rect.h"
#include "src/geom/transform.h"

namespace poc {

enum class Layer {
  kNwell,
  kActive,
  kPoly,
  kContact,
  kMetal1,
  kVia1,
  kMetal2,
};

constexpr std::size_t kNumLayers = 7;
const char* layer_name(Layer layer);
std::optional<Layer> layer_from_name(const std::string& name);

/// A polygon on a layer.
struct Shape {
  Layer layer = Layer::kPoly;
  Polygon poly;

  static Shape rect(Layer layer, const Rect& r) {
    return Shape{layer, Polygon::from_rect(r)};
  }
};

/// Annotation on a transistor gate inside a cell: where poly crosses active.
/// CD extraction measures the printed poly width inside `region`.
struct GateInfo {
  std::string device;   ///< e.g. "MN0"
  bool is_nmos = true;
  Rect region;          ///< drawn gate area (poly ∩ active), cell coords
  DbUnit drawn_l = 0;   ///< drawn channel length (poly width across region)
  DbUnit drawn_w = 0;   ///< drawn channel width
};

/// Leaf cell: geometry + gate annotations, coordinates local to the cell.
struct CellLayout {
  std::string name;
  std::vector<Shape> shapes;
  std::vector<GateInfo> gates;
  Rect boundary;  ///< abutment box

  void add_rect(Layer layer, const Rect& r) { shapes.push_back(Shape::rect(layer, r)); }
};

/// Placed occurrence of a cell.
struct Instance {
  std::string name;       ///< instance name, matches the netlist gate name
  std::size_t cell = 0;   ///< index into LayoutDb::cells
  Transform transform;
};

/// A gate region resolved to top-level coordinates.
struct PlacedGate {
  std::size_t instance = 0;
  std::size_t gate_in_cell = 0;
  Rect region;            ///< top-level coords
  bool vertical_poly = true;  ///< true if the channel CD is measured along x
};

class LayoutDb {
 public:
  /// Registers a cell master; returns its index.  Name must be unique.
  std::size_t add_cell(CellLayout cell);
  std::size_t cell_index(const std::string& name) const;
  const CellLayout& cell(std::size_t idx) const;
  std::size_t num_cells() const { return cells_.size(); }

  /// Places an instance; returns its index.
  std::size_t add_instance(Instance inst);
  const Instance& instance(std::size_t idx) const;
  std::size_t num_instances() const { return instances_.size(); }
  std::size_t instance_index(const std::string& name) const;

  /// Top-level routed geometry (wires added by the router).
  void add_top_shape(Shape s);
  const std::vector<Shape>& top_shapes() const { return top_shapes_; }

  /// Must be called after all instances/shapes are added and before any
  /// spatial query; builds the grid indices.
  void freeze();
  bool frozen() const { return frozen_; }

  /// All geometry of `layer` intersecting `window`, flattened to top-level
  /// coordinates and clipped to the window, as disjoint rectangles.
  std::vector<Rect> flatten_layer(const Rect& window, Layer layer) const;

  /// Same query but returning whole transformed polygons (unclipped) — the
  /// form the OPC engine corrects, since clipping would cut shapes mid-edge.
  std::vector<Polygon> flatten_layer_polys(const Rect& window,
                                           Layer layer) const;

  /// All annotated transistor gates, resolved to top-level coordinates.
  const std::vector<PlacedGate>& placed_gates() const;

  /// Bounding box of everything placed.
  Rect extent() const;

 private:
  std::vector<CellLayout> cells_;
  std::unordered_map<std::string, std::size_t> cell_names_;
  std::vector<Instance> instances_;
  std::unordered_map<std::string, std::size_t> instance_names_;
  std::vector<Shape> top_shapes_;

  bool frozen_ = false;
  GridIndex inst_index_{5000};
  GridIndex top_index_{5000};
  std::vector<PlacedGate> placed_gates_;
};

}  // namespace poc
