// SVG rendering of layout windows and simulated print contours, so users
// can visually inspect OPC corrections and hotspots without an external
// layout viewer.  Output is plain SVG 1.1.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "src/geom/polygon.h"
#include "src/geom/rect.h"

namespace poc {

struct SvgLayer {
  std::string name;
  std::string fill;       ///< CSS color, e.g. "#d33" or "none"
  std::string stroke;
  double opacity = 0.6;
  std::vector<Polygon> polygons;
};

/// A polyline overlay (e.g. a traced print contour).
struct SvgContour {
  std::string stroke = "#000";
  double width_nm = 4.0;
  bool closed = false;
  std::vector<std::pair<double, double>> points;  ///< layout nm coordinates
};

/// Writes an SVG of `window` with the given layers and contour overlays.
/// The y axis is flipped so the image matches layout orientation.
void write_svg(std::ostream& os, const Rect& window,
               const std::vector<SvgLayer>& layers,
               const std::vector<SvgContour>& contours = {},
               double scale = 0.25);

std::string svg_to_string(const Rect& window,
                          const std::vector<SvgLayer>& layers,
                          const std::vector<SvgContour>& contours = {},
                          double scale = 0.25);

}  // namespace poc
