#include "src/netlist/netlist.h"

#include <algorithm>

namespace poc {

NetIdx Netlist::add_net(const std::string& name) {
  POC_EXPECTS(!net_names_.contains(name));
  net_names_[name] = nets_.size();
  Net n;
  n.name = name;
  nets_.push_back(std::move(n));
  return nets_.size() - 1;
}

NetIdx Netlist::net_index(const std::string& name) const {
  const auto it = net_names_.find(name);
  POC_EXPECTS(it != net_names_.end());
  return it->second;
}

bool Netlist::has_net(const std::string& name) const {
  return net_names_.contains(name);
}

void Netlist::mark_primary_input(NetIdx net) {
  POC_EXPECTS(net < nets_.size());
  POC_EXPECTS(nets_[net].driver == kNoIndex);
  nets_[net].is_primary_input = true;
}

void Netlist::mark_primary_output(NetIdx net) {
  POC_EXPECTS(net < nets_.size());
  nets_[net].is_primary_output = true;
}

GateIdx Netlist::add_gate(const std::string& name, const std::string& cell,
                          const std::vector<NetIdx>& inputs, NetIdx output) {
  POC_EXPECTS(!gate_names_.contains(name));
  POC_EXPECTS(output < nets_.size());
  POC_EXPECTS(nets_[output].driver == kNoIndex);
  POC_EXPECTS(!nets_[output].is_primary_input);
  const GateIdx g = gates_.size();
  gate_names_[name] = g;
  GateInst inst;
  inst.name = name;
  inst.cell = cell;
  inst.inputs = inputs;
  inst.output = output;
  for (std::size_t pin = 0; pin < inputs.size(); ++pin) {
    POC_EXPECTS(inputs[pin] < nets_.size());
    nets_[inputs[pin]].sinks.emplace_back(g, pin);
  }
  nets_[output].driver = g;
  gates_.push_back(std::move(inst));
  return g;
}

const Net& Netlist::net(NetIdx i) const {
  POC_EXPECTS(i < nets_.size());
  return nets_[i];
}

const GateInst& Netlist::gate(GateIdx i) const {
  POC_EXPECTS(i < gates_.size());
  return gates_[i];
}

GateIdx Netlist::gate_index(const std::string& name) const {
  const auto it = gate_names_.find(name);
  POC_EXPECTS(it != gate_names_.end());
  return it->second;
}

std::vector<NetIdx> Netlist::primary_inputs() const {
  std::vector<NetIdx> out;
  for (NetIdx i = 0; i < nets_.size(); ++i) {
    if (nets_[i].is_primary_input) out.push_back(i);
  }
  return out;
}

std::vector<NetIdx> Netlist::primary_outputs() const {
  std::vector<NetIdx> out;
  for (NetIdx i = 0; i < nets_.size(); ++i) {
    if (nets_[i].is_primary_output) out.push_back(i);
  }
  return out;
}

std::vector<GateIdx> Netlist::topological_order() const {
  std::vector<std::size_t> pending(gates_.size(), 0);
  std::vector<GateIdx> ready;
  for (GateIdx g = 0; g < gates_.size(); ++g) {
    std::size_t unresolved = 0;
    for (NetIdx in : gates_[g].inputs) {
      if (nets_[in].driver != kNoIndex) ++unresolved;
    }
    pending[g] = unresolved;
    if (unresolved == 0) ready.push_back(g);
  }
  std::vector<GateIdx> order;
  order.reserve(gates_.size());
  while (!ready.empty()) {
    const GateIdx g = ready.back();
    ready.pop_back();
    order.push_back(g);
    for (const auto& [sink, pin] : nets_[gates_[g].output].sinks) {
      (void)pin;
      POC_ENSURES(pending[sink] > 0);
      if (--pending[sink] == 0) ready.push_back(sink);
    }
  }
  POC_ENSURES(order.size() == gates_.size());  // else: combinational cycle
  return order;
}

std::size_t Netlist::logic_depth() const {
  std::vector<std::size_t> depth(gates_.size(), 0);
  std::size_t worst = 0;
  for (GateIdx g : topological_order()) {
    std::size_t d = 1;
    for (NetIdx in : gates_[g].inputs) {
      if (nets_[in].driver != kNoIndex) {
        d = std::max(d, depth[nets_[in].driver] + 1);
      }
    }
    depth[g] = d;
    worst = std::max(worst, d);
  }
  return worst;
}

}  // namespace poc
