#include "src/netlist/verilog.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <ostream>
#include <sstream>

#include "src/common/check.h"

namespace poc {
namespace {

const char* kPinNames[] = {"A", "B", "C", "D"};

/// Tokenizer: identifiers, and the punctuation ( ) . , ;
std::vector<std::string> tokenize(std::istream& is) {
  std::vector<std::string> tokens;
  std::string line;
  while (std::getline(is, line)) {
    // Strip // comments.
    const auto comment = line.find("//");
    if (comment != std::string::npos) line.erase(comment);
    std::string cur;
    for (char c : line) {
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '[' || c == ']') {
        cur += c;
      } else {
        if (!cur.empty()) {
          tokens.push_back(cur);
          cur.clear();
        }
        if (c == '(' || c == ')' || c == '.' || c == ',' || c == ';') {
          tokens.push_back(std::string(1, c));
        }
      }
    }
    if (!cur.empty()) tokens.push_back(cur);
  }
  return tokens;
}

}  // namespace

void write_verilog(std::ostream& os, const Netlist& nl) {
  os << "module " << nl.name() << " (";
  bool first = true;
  for (NetIdx i : nl.primary_inputs()) {
    os << (first ? "" : ", ") << nl.net(i).name;
    first = false;
  }
  for (NetIdx i : nl.primary_outputs()) {
    os << (first ? "" : ", ") << nl.net(i).name;
    first = false;
  }
  os << ");\n";
  for (NetIdx i : nl.primary_inputs()) {
    os << "  input " << nl.net(i).name << ";\n";
  }
  for (NetIdx i : nl.primary_outputs()) {
    os << "  output " << nl.net(i).name << ";\n";
  }
  for (NetIdx i = 0; i < nl.num_nets(); ++i) {
    const Net& n = nl.net(i);
    if (!n.is_primary_input && !n.is_primary_output) {
      os << "  wire " << n.name << ";\n";
    }
  }
  for (GateIdx g = 0; g < nl.num_gates(); ++g) {
    const GateInst& inst = nl.gate(g);
    os << "  " << inst.cell << " " << inst.name << " (";
    for (std::size_t pin = 0; pin < inst.inputs.size(); ++pin) {
      os << "." << kPinNames[pin] << "(" << nl.net(inst.inputs[pin]).name
         << "), ";
    }
    os << ".Y(" << nl.net(inst.output).name << "));\n";
  }
  os << "endmodule\n";
}

std::string verilog_to_string(const Netlist& nl) {
  std::ostringstream os;
  write_verilog(os, nl);
  return os.str();
}

Netlist read_verilog(std::istream& is) {
  const std::vector<std::string> tok = tokenize(is);
  std::size_t i = 0;
  const auto expect = [&](const std::string& s) {
    POC_EXPECTS(i < tok.size() && tok[i] == s);
    ++i;
  };
  const auto next = [&]() -> const std::string& {
    POC_EXPECTS(i < tok.size());
    return tok[i++];
  };

  expect("module");
  Netlist nl(next());
  expect("(");
  while (tok[i] != ")") {
    if (tok[i] == ",") { ++i; continue; }
    ++i;  // port name; direction declared below
  }
  expect(")");
  expect(";");

  const auto ensure_net = [&](const std::string& name) -> NetIdx {
    return nl.has_net(name) ? nl.net_index(name) : nl.add_net(name);
  };

  while (i < tok.size() && tok[i] != "endmodule") {
    const std::string kw = next();
    if (kw == "input" || kw == "output" || kw == "wire") {
      while (true) {
        const std::string name = next();
        const NetIdx n = ensure_net(name);
        if (kw == "input") nl.mark_primary_input(n);
        if (kw == "output") nl.mark_primary_output(n);
        const std::string& sep = next();
        if (sep == ";") break;
        POC_EXPECTS(sep == ",");
      }
    } else {
      // Cell instantiation: <cell> <inst> ( .PIN(net), ... ) ;
      const std::string cell = kw;
      const std::string inst = next();
      expect("(");
      std::map<std::string, std::string> conns;
      while (tok[i] != ")") {
        expect(".");
        const std::string pin = next();
        expect("(");
        const std::string net = next();
        expect(")");
        if (tok[i] == ",") ++i;
        conns[pin] = net;
      }
      expect(")");
      expect(";");
      POC_EXPECTS(conns.contains("Y"));
      std::vector<NetIdx> inputs;
      for (const char* pin : kPinNames) {
        const auto it = conns.find(pin);
        if (it == conns.end()) break;
        inputs.push_back(ensure_net(it->second));
      }
      POC_EXPECTS(inputs.size() + 1 == conns.size());
      nl.add_gate(inst, cell, inputs, ensure_net(conns.at("Y")));
    }
  }
  expect("endmodule");
  return nl;
}

Netlist verilog_from_string(const std::string& text) {
  std::istringstream is(text);
  return read_verilog(is);
}

}  // namespace poc
