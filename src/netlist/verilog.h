// Structural-Verilog-subset reader/writer for the gate-level netlist.
// Supported constructs: module/endmodule, input/output/wire declarations
// (scalar, comma lists), and cell instantiations with named port
// connections:  NAND2_X1 g12 (.A(n3), .B(n4), .Y(n9));
#pragma once

#include <iosfwd>
#include <string>

#include "src/netlist/netlist.h"

namespace poc {

void write_verilog(std::ostream& os, const Netlist& nl);
std::string verilog_to_string(const Netlist& nl);

/// Parses the subset written by write_verilog.  Pin names A/B/C map to
/// input ordinals 0/1/2; Y is the output.  Throws CheckError on input it
/// does not understand.
Netlist read_verilog(std::istream& is);
Netlist verilog_from_string(const std::string& text);

}  // namespace poc
