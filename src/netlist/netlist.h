// Gate-level structural netlist: cells from the standard-cell library wired
// by nets, with primary inputs/outputs at the boundary.  This is the "global
// circuit netlist" the paper's flow selectively re-extracts from.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/check.h"

namespace poc {

using NetIdx = std::size_t;
using GateIdx = std::size_t;
constexpr std::size_t kNoIndex = static_cast<std::size_t>(-1);

struct Net {
  std::string name;
  GateIdx driver = kNoIndex;  ///< kNoIndex for primary inputs
  /// (gate, input-pin-ordinal) pairs this net fans out to.
  std::vector<std::pair<GateIdx, std::size_t>> sinks;
  bool is_primary_input = false;
  bool is_primary_output = false;
};

struct GateInst {
  std::string name;
  std::string cell;              ///< library cell name, e.g. "NAND2_X1"
  std::vector<NetIdx> inputs;    ///< ordered to match the cell's pin list
  NetIdx output = kNoIndex;
};

class Netlist {
 public:
  explicit Netlist(std::string name = "top") : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  NetIdx add_net(const std::string& name);
  NetIdx net_index(const std::string& name) const;
  bool has_net(const std::string& name) const;

  void mark_primary_input(NetIdx net);
  void mark_primary_output(NetIdx net);

  /// Adds a gate; the driver/sink links are maintained automatically.
  GateIdx add_gate(const std::string& name, const std::string& cell,
                   const std::vector<NetIdx>& inputs, NetIdx output);

  std::size_t num_nets() const { return nets_.size(); }
  std::size_t num_gates() const { return gates_.size(); }
  const Net& net(NetIdx i) const;
  const GateInst& gate(GateIdx i) const;
  GateIdx gate_index(const std::string& name) const;

  std::vector<NetIdx> primary_inputs() const;
  std::vector<NetIdx> primary_outputs() const;

  /// Gates in topological order (inputs before outputs).  Throws on
  /// combinational cycles.
  std::vector<GateIdx> topological_order() const;

  /// Longest path depth (in gates) from any PI to any PO.
  std::size_t logic_depth() const;

 private:
  std::string name_;
  std::vector<Net> nets_;
  std::vector<GateInst> gates_;
  std::unordered_map<std::string, NetIdx> net_names_;
  std::unordered_map<std::string, GateIdx> gate_names_;
};

}  // namespace poc
