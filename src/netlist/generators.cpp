#include "src/netlist/generators.h"

#include <algorithm>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace poc {
namespace {

/// Emits gates with automatic naming and exposes NAND-composite helpers.
class Builder {
 public:
  explicit Builder(Netlist& nl) : nl_(nl) {}

  NetIdx pi(const std::string& name) {
    const NetIdx n = nl_.add_net(name);
    nl_.mark_primary_input(n);
    return n;
  }
  void po(NetIdx net) { nl_.mark_primary_output(net); }

  NetIdx fresh_net() { return nl_.add_net("n" + std::to_string(net_id_++)); }

  NetIdx emit(const std::string& cell, std::vector<NetIdx> inputs) {
    const NetIdx out = fresh_net();
    nl_.add_gate("g" + std::to_string(gate_id_++), cell, inputs, out);
    return out;
  }

  NetIdx inv(NetIdx a) { return emit("INV_X1", {a}); }
  NetIdx nand2(NetIdx a, NetIdx b) { return emit("NAND2_X1", {a, b}); }
  NetIdx nand3(NetIdx a, NetIdx b, NetIdx c) {
    return emit("NAND3_X1", {a, b, c});
  }
  NetIdx nor2(NetIdx a, NetIdx b) { return emit("NOR2_X1", {a, b}); }
  NetIdx and2(NetIdx a, NetIdx b) { return inv(nand2(a, b)); }
  NetIdx or2(NetIdx a, NetIdx b) { return inv(nor2(a, b)); }
  NetIdx xor2(NetIdx a, NetIdx b) {
    // Four-NAND XOR.
    const NetIdx nab = nand2(a, b);
    return nand2(nand2(a, nab), nand2(b, nab));
  }

  /// Full adder: sum = a ^ b ^ cin; cout = ab + cin(a ^ b).  Nine NAND2.
  std::pair<NetIdx, NetIdx> full_adder(NetIdx a, NetIdx b, NetIdx cin) {
    const NetIdx nab = nand2(a, b);
    const NetIdx axb = nand2(nand2(a, nab), nand2(b, nab));
    const NetIdx naxbc = nand2(axb, cin);
    const NetIdx sum = nand2(nand2(axb, naxbc), nand2(cin, naxbc));
    const NetIdx cout = nand2(nab, naxbc);
    return {sum, cout};
  }

  /// Half adder: sum = a ^ b; cout = ab.
  std::pair<NetIdx, NetIdx> half_adder(NetIdx a, NetIdx b) {
    const NetIdx nab = nand2(a, b);
    const NetIdx sum = nand2(nand2(a, nab), nand2(b, nab));
    return {sum, inv(nab)};
  }

 private:
  Netlist& nl_;
  std::size_t gate_id_ = 0;
  std::size_t net_id_ = 0;
};

}  // namespace

Netlist make_c17() {
  Netlist nl("c17");
  Builder b(nl);
  const NetIdx n1 = b.pi("N1"), n2 = b.pi("N2"), n3 = b.pi("N3"),
               n6 = b.pi("N6"), n7 = b.pi("N7");
  const NetIdx g10 = b.nand2(n1, n3);
  const NetIdx g11 = b.nand2(n3, n6);
  const NetIdx g16 = b.nand2(n2, g11);
  const NetIdx g19 = b.nand2(g11, n7);
  const NetIdx g22 = b.nand2(g10, g16);
  const NetIdx g23 = b.nand2(g16, g19);
  b.po(g22);
  b.po(g23);
  return nl;
}

Netlist make_ripple_adder(std::size_t bits) {
  POC_EXPECTS(bits >= 1);
  Netlist nl("adder" + std::to_string(bits));
  Builder b(nl);
  std::vector<NetIdx> a(bits), bb(bits);
  for (std::size_t i = 0; i < bits; ++i) a[i] = b.pi("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) bb[i] = b.pi("b" + std::to_string(i));
  NetIdx carry = b.pi("cin");
  for (std::size_t i = 0; i < bits; ++i) {
    const auto [sum, cout] = b.full_adder(a[i], bb[i], carry);
    b.po(sum);
    carry = cout;
  }
  b.po(carry);
  return nl;
}

Netlist make_array_multiplier(std::size_t bits) {
  POC_EXPECTS(bits >= 2);
  Netlist nl("mult" + std::to_string(bits));
  Builder b(nl);
  std::vector<NetIdx> a(bits), bb(bits);
  for (std::size_t i = 0; i < bits; ++i) a[i] = b.pi("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) bb[i] = b.pi("b" + std::to_string(i));
  // Partial products.
  std::vector<std::vector<NetIdx>> pp(bits, std::vector<NetIdx>(bits));
  for (std::size_t i = 0; i < bits; ++i) {
    for (std::size_t j = 0; j < bits; ++j) {
      pp[i][j] = b.and2(a[i], bb[j]);
    }
  }
  // Ripple-carry array reduction, row by row.  Invariant entering row i:
  // row[k] holds the accumulated bit of weight (i-1)+k (row[0] is the
  // already-emitted product bit and is not consumed again).
  std::vector<NetIdx> row = pp[0];     // weight j of a0*b_j
  b.po(row[0]);                        // product bit 0
  for (std::size_t i = 1; i < bits; ++i) {
    std::vector<NetIdx> next(bits);
    NetIdx carry = kNoIndex;
    for (std::size_t j = 0; j < bits; ++j) {
      const NetIdx x = pp[i][j];       // weight i+j
      const NetIdx y = j + 1 < row.size() ? row[j + 1] : kNoIndex;
      if (y == kNoIndex && carry == kNoIndex) {
        next[j] = x;
      } else if (carry == kNoIndex) {
        const auto [s, c] = b.half_adder(x, y);
        next[j] = s;
        carry = c;
      } else if (y == kNoIndex) {
        const auto [s, c] = b.half_adder(x, carry);
        next[j] = s;
        carry = c;
      } else {
        const auto [s, c] = b.full_adder(x, y, carry);
        next[j] = s;
        carry = c;
      }
    }
    b.po(next[0]);  // product bit i
    next.push_back(carry);
    row = std::move(next);
  }
  // High-order product bits: weights bits .. 2*bits-1 (row[0] was emitted).
  for (std::size_t k = 1; k < row.size(); ++k) {
    if (row[k] != kNoIndex) b.po(row[k]);
  }
  return nl;
}

Netlist make_random_logic(std::size_t num_gates, std::size_t num_inputs,
                          std::uint64_t seed) {
  POC_EXPECTS(num_inputs >= 3);
  Netlist nl("rand" + std::to_string(num_gates));
  Builder b(nl);
  Rng rng(seed);
  std::vector<NetIdx> pool;
  for (std::size_t i = 0; i < num_inputs; ++i) {
    pool.push_back(b.pi("in" + std::to_string(i)));
  }
  const char* kCells2[] = {"NAND2_X1", "NOR2_X1", "NAND2_X2", "NOR2_X2"};
  const char* kCells3[] = {"NAND3_X1", "NOR3_X1", "AOI21_X1", "OAI21_X1"};
  const auto pick = [&](std::size_t back_window) {
    // Bias toward recently created nets so depth grows (long speed paths).
    const std::size_t lo =
        pool.size() > back_window ? pool.size() - back_window : 0;
    return pool[static_cast<std::size_t>(
        rng.uniform_int(static_cast<std::int64_t>(lo),
                        static_cast<std::int64_t>(pool.size() - 1)))];
  };
  for (std::size_t g = 0; g < num_gates; ++g) {
    const double r = rng.uniform();
    NetIdx out;
    if (r < 0.18) {
      out = b.inv(pick(24));
    } else if (r < 0.66) {
      const char* cell = kCells2[rng.uniform_int(0, 3)];
      NetIdx x = pick(24);
      NetIdx y = pick(48);
      if (x == y) y = pool[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(pool.size() - 1)))];
      if (x == y) { out = b.inv(x); pool.push_back(out); continue; }
      out = b.emit(cell, {x, y});
    } else {
      const char* cell = kCells3[rng.uniform_int(0, 3)];
      NetIdx x = pick(16);
      NetIdx y = pick(32);
      NetIdx z = pick(64);
      if (x == y || y == z || x == z) { out = b.inv(x); pool.push_back(out); continue; }
      out = b.emit(cell, {x, y, z});
    }
    pool.push_back(out);
  }
  // Undriven-to-anything nets become primary outputs.
  for (NetIdx n = 0; n < nl.num_nets(); ++n) {
    if (nl.net(n).sinks.empty() && !nl.net(n).is_primary_input) {
      nl.mark_primary_output(n);
    }
  }
  return nl;
}

Netlist make_parity_tree(std::size_t bits) {
  POC_EXPECTS(bits >= 2);
  Netlist nl("parity" + std::to_string(bits));
  Builder b(nl);
  std::vector<NetIdx> level;
  for (std::size_t i = 0; i < bits; ++i) {
    level.push_back(b.pi("in" + std::to_string(i)));
  }
  while (level.size() > 1) {
    std::vector<NetIdx> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(b.xor2(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  b.po(level[0]);
  return nl;
}

Netlist make_decoder(std::size_t bits) {
  POC_EXPECTS(bits >= 2 && bits <= 6);
  Netlist nl("decoder" + std::to_string(bits));
  Builder b(nl);
  std::vector<NetIdx> in(bits), inv(bits);
  for (std::size_t i = 0; i < bits; ++i) in[i] = b.pi("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) inv[i] = b.inv(in[i]);
  for (std::size_t code = 0; code < (1u << bits); ++code) {
    // AND tree over the selected polarity of every input.
    std::vector<NetIdx> terms;
    for (std::size_t i = 0; i < bits; ++i) {
      terms.push_back((code >> i) & 1u ? in[i] : inv[i]);
    }
    NetIdx acc = terms[0];
    for (std::size_t i = 1; i < terms.size(); ++i) {
      acc = b.and2(acc, terms[i]);
    }
    b.po(acc);
  }
  return nl;
}

Netlist make_carry_select_adder(std::size_t bits, std::size_t block) {
  POC_EXPECTS(bits >= 2 && block >= 1 && block < bits);
  Netlist nl("csel" + std::to_string(bits));
  Builder b(nl);
  std::vector<NetIdx> a(bits), bb(bits);
  for (std::size_t i = 0; i < bits; ++i) a[i] = b.pi("a" + std::to_string(i));
  for (std::size_t i = 0; i < bits; ++i) bb[i] = b.pi("b" + std::to_string(i));
  const NetIdx cin = b.pi("cin");
  const NetIdx zero = b.nor2(cin, b.inv(cin));  // constant 0 = !(x + !x)
  const NetIdx one = b.inv(zero);

  // NAND-mapped 2:1 mux: y = s ? hi : lo.
  const auto mux = [&](NetIdx lo, NetIdx hi, NetIdx s) {
    const NetIdx t1 = b.nand2(lo, b.inv(s));
    const NetIdx t2 = b.nand2(hi, s);
    return b.nand2(t1, t2);
  };

  NetIdx carry = cin;
  for (std::size_t base = 0; base < bits; base += block) {
    const std::size_t end = std::min(base + block, bits);
    if (base == 0) {
      // First block ripples directly from cin.
      for (std::size_t i = base; i < end; ++i) {
        const auto [s, c] = b.full_adder(a[i], bb[i], carry);
        b.po(s);
        carry = c;
      }
      continue;
    }
    // Speculative blocks: compute for carry-in 0 and 1, select later.
    std::vector<NetIdx> sum0, sum1;
    NetIdx c0 = zero, c1 = one;
    for (std::size_t i = base; i < end; ++i) {
      const auto [s0, k0] = b.full_adder(a[i], bb[i], c0);
      sum0.push_back(s0);
      c0 = k0;
      const auto [s1, k1] = b.full_adder(a[i], bb[i], c1);
      sum1.push_back(s1);
      c1 = k1;
    }
    for (std::size_t k = 0; k < sum0.size(); ++k) {
      b.po(mux(sum0[k], sum1[k], carry));
    }
    carry = mux(c0, c1, carry);
  }
  b.po(carry);
  return nl;
}

Netlist make_tiled(std::size_t tiles) {
  POC_EXPECTS(tiles >= 1);
  Netlist nl("tiled" + std::to_string(tiles));
  Builder b(nl);
  // Shared inputs keep every tile's template byte-for-byte repeatable —
  // only the chain net differs — so the placed windows collapse in the
  // content-addressed caches.
  const NetIdx x0 = b.pi("x0"), x1 = b.pi("x1"), x2 = b.pi("x2"),
               x3 = b.pi("x3");
  NetIdx chain = b.pi("cin");
  for (std::size_t t = 0; t < tiles; ++t) {
    switch (t % 3) {
      case 0: {  // full-adder tile (9 NAND2)
        const auto [sum, cout] = b.full_adder(x0, x1, chain);
        if (t % 24 == 0) b.po(sum);
        chain = cout;
        break;
      }
      case 1:  // XOR tile (4 NAND2)
        chain = b.xor2(x2, chain);
        break;
      default:  // NAND3/NOR cluster tile (NAND3 + NOR2 + INV)
        chain = b.inv(b.nor2(b.nand3(x3, x0, chain), x1));
        break;
    }
  }
  b.po(chain);
  return nl;
}

Netlist make_benchmark(const std::string& name) {
  if (name == "c17") return make_c17();
  if (name == "adder4") return make_ripple_adder(4);
  if (name == "adder8") return make_ripple_adder(8);
  if (name == "adder16") return make_ripple_adder(16);
  if (name == "csel16") return make_carry_select_adder(16, 4);
  if (name == "mult4") return make_array_multiplier(4);
  if (name == "mult6") return make_array_multiplier(6);
  if (name == "parity16") return make_parity_tree(16);
  if (name == "decoder4") return make_decoder(4);
  if (name == "rand100") return make_random_logic(100, 12, 0xABCD01);
  if (name == "rand200") return make_random_logic(200, 16, 0xABCD02);
  if (name == "rand400") return make_random_logic(400, 24, 0xABCD03);
  if (name.rfind("tiled", 0) == 0 && name.size() > 5) {
    std::size_t tiles = 0;
    for (std::size_t i = 5; i < name.size(); ++i) {
      const char c = name[i];
      if (c < '0' || c > '9') {
        check_fail("make_benchmark", name.c_str(), __FILE__, __LINE__);
      }
      tiles = tiles * 10 + static_cast<std::size_t>(c - '0');
    }
    return make_tiled(tiles);
  }
  check_fail("make_benchmark", name.c_str(), __FILE__, __LINE__);
}

}  // namespace poc
