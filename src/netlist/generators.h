// Benchmark netlist generators mapped to the library cell set, standing in
// for the paper's industrial test design: ISCAS c17, ripple-carry adders,
// an array multiplier, and seeded random logic DAGs.
#pragma once

#include <cstdint>
#include <string>

#include "src/netlist/netlist.h"

namespace poc {

/// ISCAS-85 c17 (6 NAND2).
Netlist make_c17();

/// n-bit ripple-carry adder built from NAND-mapped full adders.
Netlist make_ripple_adder(std::size_t bits);

/// n x n array multiplier (AND partial products + adder array).
Netlist make_array_multiplier(std::size_t bits);

/// Random levelized DAG over the full cell set; deterministic in `seed`.
Netlist make_random_logic(std::size_t num_gates, std::size_t num_inputs,
                          std::uint64_t seed);

/// n-input XOR (parity) tree — deep, XOR-dominated paths.
Netlist make_parity_tree(std::size_t bits);

/// n-to-2^n decoder — shallow, wide fanout structure.
Netlist make_decoder(std::size_t bits);

/// Carry-select adder: ripple blocks computed for carry-in 0 and 1,
/// selected by the rippled block carry through NAND-mapped 2:1 muxes.
Netlist make_carry_select_adder(std::size_t bits, std::size_t block);

/// Repeated-block "tiled" design: `tiles` copies of three small cell
/// templates (full-adder / XOR / NAND-NOR cluster) cycled in order and
/// chained through one carry-like net — the window-cache stress shape,
/// where a placed row repeats the same local poly context thousands of
/// times.  ~16 gates per 3 tiles, so tiles=2000 is a ~10k-instance chip.
Netlist make_tiled(std::size_t tiles);

/// Named lookup used by benches/examples: "c17", "adder4", "adder8",
/// "adder16", "csel16", "mult4", "mult6", "parity16", "decoder4",
/// "rand100", "rand200", "rand400", and "tiledN" (N = tile count, e.g.
/// "tiled2000") for the repeated-block design.
Netlist make_benchmark(const std::string& name);

}  // namespace poc
