#include "src/opc/sraf.h"

#include <algorithm>

#include "src/geom/polygon_ops.h"

namespace poc {
namespace {

/// Free distance from `edge` along its outward normal before hitting any
/// rect of `solids`, capped at `limit`.
DbUnit free_space(const PolyEdge& edge, const std::vector<Rect>& solids,
                  DbUnit limit) {
  DbUnit best = limit;
  const Point mid = edge.midpoint();
  for (const Rect& r : solids) {
    if (edge.axis == Axis::kVertical) {
      // Outward east/west: rect must overlap the edge's y-span.
      const DbUnit ylo = std::min(edge.a.y, edge.b.y);
      const DbUnit yhi = std::max(edge.a.y, edge.b.y);
      if (r.yhi <= ylo || r.ylo >= yhi) continue;
      if (edge.outward == Dir::kEast && r.xlo >= mid.x) {
        best = std::min(best, r.xlo - mid.x);
      } else if (edge.outward == Dir::kWest && r.xhi <= mid.x) {
        best = std::min(best, mid.x - r.xhi);
      }
    } else {
      const DbUnit xlo = std::min(edge.a.x, edge.b.x);
      const DbUnit xhi = std::max(edge.a.x, edge.b.x);
      if (r.xhi <= xlo || r.xlo >= xhi) continue;
      if (edge.outward == Dir::kNorth && r.ylo >= mid.y) {
        best = std::min(best, r.ylo - mid.y);
      } else if (edge.outward == Dir::kSouth && r.yhi <= mid.y) {
        best = std::min(best, mid.y - r.yhi);
      }
    }
  }
  return best;
}

}  // namespace

std::vector<Rect> insert_srafs(const std::vector<Polygon>& targets,
                               const Rect& window, const SrafRules& rules) {
  std::vector<Rect> solids;
  for (const Polygon& p : targets) {
    for (const Rect& r : decompose(p)) solids.push_back(r);
  }
  std::vector<Rect> bars;
  for (const Polygon& p : targets) {
    for (const PolyEdge& edge : p.edges()) {
      const DbUnit len = edge.length();
      if (len < rules.min_bar_len + 2 * rules.end_margin) continue;
      const DbUnit space = free_space(edge, solids, rules.min_open_space);
      if (space < rules.min_open_space) continue;

      const Point n = dir_vec(edge.outward);
      Rect bar;
      if (edge.axis == Axis::kVertical) {
        const DbUnit x_near = edge.a.x + n.x * rules.bar_distance;
        const DbUnit x_far = x_near + n.x * rules.bar_width;
        bar = Rect{std::min(x_near, x_far),
                   std::min(edge.a.y, edge.b.y) + rules.end_margin,
                   std::max(x_near, x_far),
                   std::max(edge.a.y, edge.b.y) - rules.end_margin};
      } else {
        const DbUnit y_near = edge.a.y + n.y * rules.bar_distance;
        const DbUnit y_far = y_near + n.y * rules.bar_width;
        bar = Rect{std::min(edge.a.x, edge.b.x) + rules.end_margin,
                   std::min(y_near, y_far),
                   std::max(edge.a.x, edge.b.x) - rules.end_margin,
                   std::max(y_near, y_far)};
      }
      if (bar.empty() || !window.contains(bar)) continue;
      // Never overlap (or nearly touch) existing geometry or other bars.
      const Rect guard = bar.inflated(60);
      bool blocked = false;
      for (const Rect& s : solids) {
        if (guard.intersects(s)) {
          blocked = true;
          break;
        }
      }
      for (const Rect& b : bars) {
        if (blocked || guard.intersects(b)) {
          blocked = true;
          break;
        }
      }
      if (!blocked) bars.push_back(bar);
    }
  }
  return bars;
}

}  // namespace poc
