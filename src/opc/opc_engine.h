// Model-based OPC: iterative per-fragment edge-placement-error feedback.
// Each iteration simulates the current mask (draft litho quality), measures
// the printed contour position against the original target at every fragment
// control point, and moves the fragment by -damping * EPE.  Residual EPE
// after convergence is exactly the "residual OPC error" the paper extracts
// and propagates into timing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/geom/polygon.h"
#include "src/geom/rect.h"
#include "src/litho/simulator.h"
#include "src/opc/fragment.h"

namespace poc {

/// Imaging engine selection for one OPC phase.  kFollowSimulator defers to
/// the simulator's own ImagingOptions (the flow-level default); kAbbe/kSocs
/// force that engine for the phase regardless of the simulator setting —
/// the intended production schedule runs SOCS drafts with Abbe sign-off.
enum class OpcImaging : std::uint8_t { kFollowSimulator, kAbbe, kSocs };

struct OpcOptions {
  FragmentationOptions fragmentation;
  std::size_t max_iterations = 10;
  double damping = 0.5;          ///< feedback gain on measured EPE (the F3
                                 ///< ablation shows >0.6 oscillates near
                                 ///< landing-pad corners)
  double epe_tolerance_nm = 0.75;  ///< stop when max |EPE| falls below this
  DbUnit max_bias = 45;          ///< outward clamp (nm)
  DbUnit min_bias = -35;         ///< inward clamp (nm)
  double probe_inside_nm = 30.0;   ///< EPE probe start, inside the target
  double probe_outside_nm = 60.0;  ///< EPE probe reach outside the target
  /// Coarse-to-fine schedule: iterate at `sim_quality` until the EPE falls
  /// below `handoff_epe_nm` (or the iteration budget nears exhaustion),
  /// then finish at `final_quality` — the quality sign-off extraction uses.
  LithoQuality sim_quality = LithoQuality::kDraft;
  LithoQuality final_quality = LithoQuality::kStandard;
  double handoff_epe_nm = 2.5;
  std::size_t final_iterations = 3;  ///< budget reserved for fine iterations
  /// Imaging engine per phase of the coarse-to-fine schedule: draft
  /// iterations may run the SOCS fast path while sign-off iterations stay
  /// on the Abbe reference (or follow the simulator's flow-level setting).
  OpcImaging sim_imaging = OpcImaging::kFollowSimulator;
  OpcImaging final_imaging = OpcImaging::kFollowSimulator;
  bool insert_srafs = false;     ///< rule-based scattering bars (see sraf.h)
  /// Non-convergence abort threshold (0 = off, the default): when the body
  /// EPE still exceeds this after the full iteration budget, correct()
  /// raises a structured kNonConvergence fault instead of returning a
  /// silently-bad mask.  The flow's containment retries or degrades the
  /// window; without containment the failure is at least explicit.
  double abort_epe_nm = 0.0;
};

struct OpcResult {
  std::vector<Polygon> corrected;   ///< post-OPC mask polygons
  std::vector<Rect> srafs;          ///< non-printing assist features
  std::vector<Fragment> fragments;  ///< final biases and EPEs
  std::size_t iterations = 0;
  double max_abs_epe_nm = 0.0;      ///< residual after the last iteration
  double rms_epe_nm = 0.0;
  /// Same, excluding corner fragments: convex corners round no matter how
  /// large the serif, so convergence is judged — as in production ORC — on
  /// the edge bodies that set printed linewidth.
  double max_abs_epe_body_nm = 0.0;
  double rms_epe_body_nm = 0.0;
  std::vector<double> max_epe_history;  ///< per-iteration trace (body)
  std::vector<double> rms_epe_history;  ///< per-iteration trace (body)

  /// Mask rectangles (corrected polygons + SRAFs) ready for simulation.
  std::vector<Rect> mask_rects() const;
};

class ScratchArena;  // src/litho/batch.h

/// One window's inputs for OpcEngine::correct_batch.  `targets` must
/// outlive the call and be non-empty.
struct OpcBatchJob {
  const std::vector<Polygon>* targets = nullptr;
  Rect window;
};

class OpcEngine {
 public:
  OpcEngine(const LithoSimulator& sim, OpcOptions options = {})
      : sim_(&sim), options_(options) {}

  /// Corrects `targets` so their printed contours match the drawn shapes at
  /// the nominal exposure.  `window` must enclose the targets plus optical
  /// ambit; everything inside it is simulated together, so neighbouring
  /// shapes influence each other's correction (context-dependent OPC).
  OpcResult correct(const std::vector<Polygon>& targets, const Rect& window,
                    const Exposure& nominal = {}) const;

  /// correct() over a batch of windows, advanced in lockstep so each
  /// iteration's latent images run through the batched SoA engine (grouped
  /// by quality/imaging phase and raster shape; Abbe-phase windows fall back
  /// to scalar latents).  A window's correction trajectory depends only on
  /// its own latents, and each batched latent is bit-identical to the
  /// scalar one, so results[j] == correct(*jobs[j].targets, jobs[j].window,
  /// nominal) bit for bit — windows that converge early simply drop out of
  /// later batches.  Throws exactly like correct() (non-convergence abort,
  /// fault injection); callers that need per-window containment run windows
  /// individually.
  std::vector<OpcResult> correct_batch(const OpcBatchJob* jobs,
                                       std::size_t count,
                                       const Exposure& nominal,
                                       ScratchArena& arena) const;

  /// Measures EPE at each fragment of `fragments` for an arbitrary mask
  /// (used by ORC and by the convergence bench to score uncorrected masks).
  /// `mode` overrides the simulator's imaging engine for this measurement.
  void measure_epe(std::vector<Fragment>& fragments,
                   const std::vector<Rect>& mask_rects, const Rect& window,
                   const Exposure& exposure, LithoQuality quality,
                   std::optional<ImagingMode> mode = std::nullopt) const;

  /// The probe half of measure_epe over an already-computed latent image —
  /// the batched paths (correct_batch, staged ORC) reuse the scalar probe
  /// code verbatim against their batch-produced latents.
  void probe_epe_on(const Image2D& latent,
                    std::vector<Fragment>& fragments) const;

  const OpcOptions& options() const { return options_; }

 private:
  /// Initializes one window's OpcResult (fragmentation, boundary freeze,
  /// SRAFs) — the pre-iteration head shared by correct and correct_batch.
  OpcResult init_correction(const std::vector<Polygon>& targets,
                            const Rect& window) const;
  /// Post-measurement half of one correction iteration: EPE statistics,
  /// convergence / handoff bookkeeping (quality is advanced in place) and
  /// the fragment moves.  Returns true when the window is done iterating.
  /// Shared by correct and correct_batch so their trajectories cannot
  /// drift apart.
  bool update_after_measure(OpcResult& result, LithoQuality& quality,
                            std::size_t iter) const;
  /// Non-convergence abort check + completion log (tail of correct()).
  void finish_correction(const OpcResult& result) const;

  const LithoSimulator* sim_;
  OpcOptions options_;
};

}  // namespace poc
