// Model-based OPC: iterative per-fragment edge-placement-error feedback.
// Each iteration simulates the current mask (draft litho quality), measures
// the printed contour position against the original target at every fragment
// control point, and moves the fragment by -damping * EPE.  Residual EPE
// after convergence is exactly the "residual OPC error" the paper extracts
// and propagates into timing.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/geom/polygon.h"
#include "src/geom/rect.h"
#include "src/litho/simulator.h"
#include "src/opc/fragment.h"

namespace poc {

/// Imaging engine selection for one OPC phase.  kFollowSimulator defers to
/// the simulator's own ImagingOptions (the flow-level default); kAbbe/kSocs
/// force that engine for the phase regardless of the simulator setting —
/// the intended production schedule runs SOCS drafts with Abbe sign-off.
enum class OpcImaging : std::uint8_t { kFollowSimulator, kAbbe, kSocs };

struct OpcOptions {
  FragmentationOptions fragmentation;
  std::size_t max_iterations = 10;
  double damping = 0.5;          ///< feedback gain on measured EPE (the F3
                                 ///< ablation shows >0.6 oscillates near
                                 ///< landing-pad corners)
  double epe_tolerance_nm = 0.75;  ///< stop when max |EPE| falls below this
  DbUnit max_bias = 45;          ///< outward clamp (nm)
  DbUnit min_bias = -35;         ///< inward clamp (nm)
  double probe_inside_nm = 30.0;   ///< EPE probe start, inside the target
  double probe_outside_nm = 60.0;  ///< EPE probe reach outside the target
  /// Coarse-to-fine schedule: iterate at `sim_quality` until the EPE falls
  /// below `handoff_epe_nm` (or the iteration budget nears exhaustion),
  /// then finish at `final_quality` — the quality sign-off extraction uses.
  LithoQuality sim_quality = LithoQuality::kDraft;
  LithoQuality final_quality = LithoQuality::kStandard;
  double handoff_epe_nm = 2.5;
  std::size_t final_iterations = 3;  ///< budget reserved for fine iterations
  /// Imaging engine per phase of the coarse-to-fine schedule: draft
  /// iterations may run the SOCS fast path while sign-off iterations stay
  /// on the Abbe reference (or follow the simulator's flow-level setting).
  OpcImaging sim_imaging = OpcImaging::kFollowSimulator;
  OpcImaging final_imaging = OpcImaging::kFollowSimulator;
  bool insert_srafs = false;     ///< rule-based scattering bars (see sraf.h)
  /// Non-convergence abort threshold (0 = off, the default): when the body
  /// EPE still exceeds this after the full iteration budget, correct()
  /// raises a structured kNonConvergence fault instead of returning a
  /// silently-bad mask.  The flow's containment retries or degrades the
  /// window; without containment the failure is at least explicit.
  double abort_epe_nm = 0.0;
};

struct OpcResult {
  std::vector<Polygon> corrected;   ///< post-OPC mask polygons
  std::vector<Rect> srafs;          ///< non-printing assist features
  std::vector<Fragment> fragments;  ///< final biases and EPEs
  std::size_t iterations = 0;
  double max_abs_epe_nm = 0.0;      ///< residual after the last iteration
  double rms_epe_nm = 0.0;
  /// Same, excluding corner fragments: convex corners round no matter how
  /// large the serif, so convergence is judged — as in production ORC — on
  /// the edge bodies that set printed linewidth.
  double max_abs_epe_body_nm = 0.0;
  double rms_epe_body_nm = 0.0;
  std::vector<double> max_epe_history;  ///< per-iteration trace (body)
  std::vector<double> rms_epe_history;  ///< per-iteration trace (body)

  /// Mask rectangles (corrected polygons + SRAFs) ready for simulation.
  std::vector<Rect> mask_rects() const;
};

class OpcEngine {
 public:
  OpcEngine(const LithoSimulator& sim, OpcOptions options = {})
      : sim_(&sim), options_(options) {}

  /// Corrects `targets` so their printed contours match the drawn shapes at
  /// the nominal exposure.  `window` must enclose the targets plus optical
  /// ambit; everything inside it is simulated together, so neighbouring
  /// shapes influence each other's correction (context-dependent OPC).
  OpcResult correct(const std::vector<Polygon>& targets, const Rect& window,
                    const Exposure& nominal = {}) const;

  /// Measures EPE at each fragment of `fragments` for an arbitrary mask
  /// (used by ORC and by the convergence bench to score uncorrected masks).
  /// `mode` overrides the simulator's imaging engine for this measurement.
  void measure_epe(std::vector<Fragment>& fragments,
                   const std::vector<Rect>& mask_rects, const Rect& window,
                   const Exposure& exposure, LithoQuality quality,
                   std::optional<ImagingMode> mode = std::nullopt) const;

  const OpcOptions& options() const { return options_; }

 private:
  const LithoSimulator* sim_;
  OpcOptions options_;
};

}  // namespace poc
