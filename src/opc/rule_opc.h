// Rule-based OPC baseline: per-fragment bias from a spacing-dependent
// lookup table (the pre-model-based industry practice), plus fixed
// hammerhead bias on line-end fragments.  Used as the cheap alternative in
// the selective-OPC experiment (T4) and the convergence comparison (F3).
#pragma once

#include <vector>

#include "src/geom/polygon.h"
#include "src/geom/rect.h"
#include "src/opc/fragment.h"

namespace poc {

struct RuleOpcTable {
  /// (max spacing nm, bias nm) rows, ascending by spacing; spacings beyond
  /// the last row get `iso_bias`.  Calibrated as a compromise against the
  /// optics in src/litho: the printed-CD-per-nm-of-bias slope is itself
  /// context dependent (~3 nm/nm inside dense cell context, ~2 nm/nm on
  /// sparse test lines), so any single table misses somewhere — which is
  /// precisely the rule-based deficiency the model-based engine removes
  /// (bench F1/F3 quantify it).
  std::vector<std::pair<DbUnit, DbUnit>> rows = {
      {180, 12}, {320, 13}, {520, 16}, {800, 17}};
  DbUnit iso_bias = 17;
  DbUnit line_end_bias = 25;  ///< extra outward bias on line-end fragments
};

/// Spacing from a fragment's control point to the nearest facing solid,
/// capped at `limit`.
DbUnit fragment_spacing(const Fragment& fragment,
                        const std::vector<Rect>& solids, DbUnit limit);

/// Applies the table to every fragment and rebuilds the polygons.
/// `fragments` is updated in place with the chosen biases.
std::vector<Polygon> rule_based_opc(const std::vector<Polygon>& targets,
                                    std::vector<Fragment>& fragments,
                                    const RuleOpcTable& table = {});

}  // namespace poc
