#include "src/opc/fragment.h"

#include <algorithm>

#include "src/common/check.h"

namespace poc {
namespace {

/// Point at distance `d` from edge.a along the edge direction.
Point along(const PolyEdge& edge, DbUnit d) {
  const Point dir = {edge.b.x > edge.a.x ? 1 : (edge.b.x < edge.a.x ? -1 : 0),
                     edge.b.y > edge.a.y ? 1 : (edge.b.y < edge.a.y ? -1 : 0)};
  return {edge.a.x + dir.x * d, edge.a.y + dir.y * d};
}

void emit_fragment(std::vector<Fragment>& out, std::size_t poly,
                   std::size_t edge_idx, const PolyEdge& edge, DbUnit s,
                   DbUnit e, bool at_corner, bool at_line_end) {
  Fragment f;
  f.poly = poly;
  f.edge = edge_idx;
  f.s = s;
  f.e = e;
  f.ctrl = along(edge, (s + e) / 2);
  f.outward = edge.outward;
  f.at_corner = at_corner;
  f.at_line_end = at_line_end;
  out.push_back(f);
}

}  // namespace

std::vector<Fragment> fragment_polygons(const std::vector<Polygon>& targets,
                                        const FragmentationOptions& opts) {
  POC_EXPECTS(opts.max_fragment_len > 0);
  POC_EXPECTS(opts.corner_len > 0);
  std::vector<Fragment> out;
  for (std::size_t p = 0; p < targets.size(); ++p) {
    const Polygon& poly = targets[p];
    for (std::size_t ei = 0; ei < poly.size(); ++ei) {
      const PolyEdge edge = poly.edge(ei);
      const DbUnit len = edge.length();
      if (len < opts.min_edge_for_corners) {
        // Short edge: one fragment.  Serif-scale edges (jogs, landing-pad
        // bumps) are corner-class geometry — they round away and cannot
        // meet an EPE target; line-width-scale edges are true line ends.
        const bool is_corner_scale = len <= opts.corner_len;
        emit_fragment(out, p, ei, edge, 0, len,
                      /*at_corner=*/is_corner_scale,
                      /*at_line_end=*/!is_corner_scale &&
                          len <= opts.line_end_max_len);
        continue;
      }
      const DbUnit cz = opts.corner_len;
      emit_fragment(out, p, ei, edge, 0, cz, /*at_corner=*/true, false);
      const DbUnit interior = len - 2 * cz;
      const auto pieces = static_cast<DbUnit>(
          std::max<DbUnit>(1, (interior + opts.max_fragment_len - 1) /
                                  opts.max_fragment_len));
      for (DbUnit k = 0; k < pieces; ++k) {
        const DbUnit s = cz + interior * k / pieces;
        const DbUnit e = cz + interior * (k + 1) / pieces;
        emit_fragment(out, p, ei, edge, s, e, false, false);
      }
      emit_fragment(out, p, ei, edge, len - cz, len, /*at_corner=*/true,
                    false);
    }
  }
  return out;
}

void freeze_outside_window(std::vector<Fragment>& fragments,
                           const Rect& window, DbUnit margin) {
  const Rect inner = window.inflated(-margin);
  for (Fragment& f : fragments) {
    if (!inner.contains(f.ctrl)) f.frozen = true;
  }
}

std::vector<Polygon> apply_fragments(const std::vector<Polygon>& targets,
                                     const std::vector<Fragment>& fragments) {
  std::vector<Polygon> out;
  out.reserve(targets.size());
  std::size_t fi = 0;
  for (std::size_t p = 0; p < targets.size(); ++p) {
    const Polygon& poly = targets[p];
    std::vector<Point> verts;
    for (std::size_t ei = 0; ei < poly.size(); ++ei) {
      const PolyEdge edge = poly.edge(ei);
      const bool horiz = edge.axis == Axis::kHorizontal;
      while (fi < fragments.size() && fragments[fi].poly == p &&
             fragments[fi].edge == ei) {
        const Fragment& f = fragments[fi];
        const Point n = dir_vec(f.outward);
        const Point p1o = along(edge, f.s);
        const Point p2o = along(edge, f.e);
        const Point p1 = {p1o.x + n.x * f.bias, p1o.y + n.y * f.bias};
        const Point p2 = {p2o.x + n.x * f.bias, p2o.y + n.y * f.bias};
        if (!verts.empty()) {
          const Point& q = verts.back();
          // Insert a Manhattan connector when the displaced segments do not
          // already share a coordinate: jogs between fragments of one edge
          // and corner extensions between edges.
          // The corner is the intersection of the two displaced edge lines:
          // x comes from the vertical displaced segment, y from the
          // horizontal one (extends convex corners outward like real OPC).
          if (q.x != p1.x && q.y != p1.y) {
            verts.push_back(horiz ? Point{q.x, p1.y} : Point{p1.x, q.y});
          }
        }
        verts.push_back(p1);
        verts.push_back(p2);
        ++fi;
      }
    }
    POC_ENSURES(verts.size() >= 4);
    // Close the ring: connector between last and first vertex if needed.
    const Point& first = verts.front();
    const Point& last = verts.back();
    if (first.x != last.x && first.y != last.y) {
      // First edge of the polygon is edge 0; use its axis for the connector.
      const bool first_horiz = poly.edge(0).axis == Axis::kHorizontal;
      verts.push_back(first_horiz ? Point{last.x, first.y}
                                  : Point{first.x, last.y});
    }
    out.push_back(Polygon(std::move(verts)));
  }
  POC_ENSURES(fi == fragments.size());
  return out;
}

}  // namespace poc
