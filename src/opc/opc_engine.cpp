#include "src/opc/opc_engine.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/cdx/contour.h"
#include "src/common/check.h"
#include "src/common/error.h"
#include "src/common/fault.h"
#include "src/common/log.h"
#include "src/geom/polygon_ops.h"
#include "src/opc/sraf.h"

namespace poc {

std::vector<Rect> OpcResult::mask_rects() const {
  std::vector<Rect> rects;
  for (const Polygon& p : corrected) {
    for (const Rect& r : decompose(p)) rects.push_back(r);
  }
  rects.insert(rects.end(), srafs.begin(), srafs.end());
  return disjoint_union(rects);
}

void OpcEngine::measure_epe(std::vector<Fragment>& fragments,
                            const std::vector<Rect>& mask_rects,
                            const Rect& window, const Exposure& exposure,
                            LithoQuality quality,
                            std::optional<ImagingMode> mode) const {
  const Image2D latent =
      sim_->latent(mask_rects, window, exposure, quality, mode);
  probe_epe_on(latent, fragments);
}

void OpcEngine::probe_epe_on(const Image2D& latent,
                             std::vector<Fragment>& fragments) const {
  const double th = sim_->print_threshold();
  const double step = latent.pixel() / 2.0;
  for (Fragment& f : fragments) {
    if (f.frozen) {
      f.epe_nm = 0.0;
      continue;
    }
    const Point n = dir_vec(f.outward);
    const ContourPoint inside{
        static_cast<double>(f.ctrl.x) - n.x * options_.probe_inside_nm,
        static_cast<double>(f.ctrl.y) - n.y * options_.probe_inside_nm};
    const ContourPoint outside{
        static_cast<double>(f.ctrl.x) + n.x * options_.probe_outside_nm,
        static_cast<double>(f.ctrl.y) + n.y * options_.probe_outside_nm};
    // The feature prints where latent < threshold; walking inside -> outside
    // the first crossing is the printed edge.
    if (latent.sample(inside.x, inside.y) >= th) {
      // Feature missing under the probe: saturated negative EPE (the printed
      // edge has retreated past the probe start).
      f.epe_nm = -options_.probe_inside_nm;
      continue;
    }
    const auto hit = first_crossing(latent, th, inside, outside, step);
    if (!hit) {
      // No edge found before the probe end: printed far too wide.
      f.epe_nm = options_.probe_outside_nm;
      continue;
    }
    // Distance from probe start to the target edge is probe_inside_nm, so
    // the signed EPE (printed minus target, + = outside) is:
    f.epe_nm = *hit - options_.probe_inside_nm;
  }
}

namespace {

// Per-phase imaging engine: draft iterations may run the SOCS fast path
// while sign-off iterations stay on the reference engine.
std::optional<ImagingMode> imaging_override(OpcImaging oi) {
  switch (oi) {
    case OpcImaging::kAbbe: return ImagingMode::kAbbe;
    case OpcImaging::kSocs: return ImagingMode::kSocs;
    case OpcImaging::kFollowSimulator: break;
  }
  return std::nullopt;
}

}  // namespace

OpcResult OpcEngine::init_correction(const std::vector<Polygon>& targets,
                                     const Rect& window) const {
  POC_EXPECTS(!targets.empty());
  // Injection point for the fault harness (default-off): a window-level
  // convergence stall, raised before any iteration work.
  fault::maybe_throw(fault::Kind::kConvergenceStall);
  OpcResult result;
  result.fragments = fragment_polygons(targets, options_.fragmentation);
  // Halo: geometry near the tile boundary is context, not correction work.
  freeze_outside_window(result.fragments, window,
                        static_cast<DbUnit>(options_.probe_outside_nm) + 60);
  if (options_.insert_srafs) {
    result.srafs = insert_srafs(targets, window);
  }
  return result;
}

bool OpcEngine::update_after_measure(OpcResult& result, LithoQuality& quality,
                                     std::size_t iter) const {
  double max_abs = 0.0, sum_sq = 0.0;
  double body_max = 0.0, body_sum_sq = 0.0;
  std::size_t body_n = 0, live_n = 0;
  for (const Fragment& f : result.fragments) {
    if (f.frozen) continue;
    max_abs = std::max(max_abs, std::abs(f.epe_nm));
    sum_sq += f.epe_nm * f.epe_nm;
    ++live_n;
    if (!f.at_corner) {
      body_max = std::max(body_max, std::abs(f.epe_nm));
      body_sum_sq += f.epe_nm * f.epe_nm;
      ++body_n;
    }
  }
  result.max_abs_epe_nm = max_abs;
  result.rms_epe_nm =
      live_n ? std::sqrt(sum_sq / static_cast<double>(live_n)) : 0.0;
  result.max_abs_epe_body_nm = body_max;
  result.rms_epe_body_nm =
      body_n ? std::sqrt(body_sum_sq / static_cast<double>(body_n)) : 0.0;
  result.max_epe_history.push_back(body_max);
  result.rms_epe_history.push_back(result.rms_epe_body_nm);
  result.iterations = iter + 1;
  // Converged only counts at the sign-off quality, judged on edge bodies.
  if (quality == options_.final_quality &&
      body_max < options_.epe_tolerance_nm) {
    return true;
  }
  if (iter + 1 == options_.max_iterations) return true;
  // Coarse-to-fine handoff: once the draft model is nearly converged (or
  // the budget reserved for fine iterations is reached), switch to the
  // quality the sign-off extraction will use.
  if (quality != options_.final_quality &&
      (body_max < options_.handoff_epe_nm ||
       iter + options_.final_iterations + 1 >= options_.max_iterations)) {
    quality = options_.final_quality;
  }

  for (Fragment& f : result.fragments) {
    if (f.frozen) continue;
    const auto move = static_cast<DbUnit>(
        std::llround(-options_.damping * f.epe_nm));
    f.bias = std::clamp<DbUnit>(f.bias + move, options_.min_bias,
                                options_.max_bias);
  }
  return false;
}

void OpcEngine::finish_correction(const OpcResult& result) const {
  // Optional hard abort on non-convergence: a window whose residual EPE
  // still exceeds the threshold after the full budget raises a structured
  // fault rather than handing a silently-bad mask downstream.
  if (options_.abort_epe_nm > 0.0 &&
      result.max_abs_epe_body_nm >= options_.abort_epe_nm) {
    throw FlowException(FlowError{
        FaultCode::kNonConvergence, kNoWindowId, "opc.correct",
        "body EPE " + std::to_string(result.max_abs_epe_body_nm) +
            " nm above abort threshold after " +
            std::to_string(result.iterations) + " iterations"});
  }
  log_debug("OPC window converged: iters=", result.iterations,
            " maxEPE=", result.max_abs_epe_nm, "nm rms=", result.rms_epe_nm,
            "nm frags=", result.fragments.size());
}

OpcResult OpcEngine::correct(const std::vector<Polygon>& targets,
                             const Rect& window,
                             const Exposure& nominal) const {
  OpcResult result = init_correction(targets, window);
  LithoQuality quality = options_.sim_quality;
  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    result.corrected = apply_fragments(targets, result.fragments);
    const OpcImaging phase_imaging = quality == options_.final_quality
                                         ? options_.final_imaging
                                         : options_.sim_imaging;
    measure_epe(result.fragments, result.mask_rects(), window, nominal,
                quality, imaging_override(phase_imaging));
    if (update_after_measure(result, quality, iter)) break;
  }
  finish_correction(result);
  return result;
}

std::vector<OpcResult> OpcEngine::correct_batch(const OpcBatchJob* jobs,
                                                std::size_t count,
                                                const Exposure& nominal,
                                                ScratchArena& arena) const {
  POC_EXPECTS(jobs != nullptr && count >= 1);
  std::vector<OpcResult> results(count);
  std::vector<LithoQuality> quality(count, options_.sim_quality);
  std::vector<char> done(count, 0);
  for (std::size_t j = 0; j < count; ++j) {
    results[j] = init_correction(*jobs[j].targets, jobs[j].window);
  }

  // Lockstep ticks: every still-iterating window runs iteration `iter`
  // together; its latent images are grouped by (quality phase, resolved
  // imaging engine, raster shape) and each SOCS group goes through the
  // batched SoA engine in one pass.  The fragment moves each window makes
  // depend only on its own latents — batching shares transforms, never
  // state — so each window walks exactly its scalar trajectory.
  std::vector<Image2D> masks(count);
  std::vector<Image2D> latents(count);
  for (std::size_t iter = 0; iter < options_.max_iterations; ++iter) {
    struct GroupKey {
      LithoQuality q;
      bool socs;
      std::size_t nx, ny;
      bool operator==(const GroupKey& o) const {
        return q == o.q && socs == o.socs && nx == o.nx && ny == o.ny;
      }
    };
    std::vector<GroupKey> keys;
    std::vector<std::vector<std::size_t>> groups;  ///< ascending members
    bool any_active = false;
    for (std::size_t j = 0; j < count; ++j) {
      if (done[j]) continue;
      any_active = true;
      results[j].corrected =
          apply_fragments(*jobs[j].targets, results[j].fragments);
      const OpcImaging phase_imaging = quality[j] == options_.final_quality
                                           ? options_.final_imaging
                                           : options_.sim_imaging;
      const std::optional<ImagingMode> mode =
          imaging_override(phase_imaging);
      const ImagingMode resolved = mode ? *mode : sim_->imaging().mode;
      const bool socs = resolved == ImagingMode::kSocs;
      if (socs) {
        masks[j] = sim_->rasterize(results[j].mask_rects(), jobs[j].window,
                                   quality[j]);
      }
      const GroupKey key{quality[j], socs, socs ? masks[j].nx() : 0,
                         socs ? masks[j].ny() : 0};
      std::size_t g = 0;
      while (g < keys.size() && !(keys[g] == key)) ++g;
      if (g == keys.size()) {
        keys.push_back(key);
        groups.emplace_back();
      }
      groups[g].push_back(j);
    }
    if (!any_active) break;

    for (std::size_t g = 0; g < groups.size(); ++g) {
      const std::vector<std::size_t>& members = groups[g];
      if (keys[g].socs) {
        std::vector<const Image2D*> ptrs;
        ptrs.reserve(members.size());
        for (std::size_t j : members) ptrs.push_back(&masks[j]);
        std::vector<Image2D> batch =
            sim_->latent_batch(ptrs.data(), ptrs.size(), nominal, keys[g].q,
                               arena, ImagingMode::kSocs);
        for (std::size_t m = 0; m < members.size(); ++m) {
          latents[members[m]] = std::move(batch[m]);
        }
      } else {
        // Abbe phases stay on the untouched scalar reference path.
        for (std::size_t j : members) {
          latents[j] = sim_->latent(results[j].mask_rects(), jobs[j].window,
                                    nominal, keys[g].q, ImagingMode::kAbbe);
        }
      }
    }

    for (std::size_t j = 0; j < count; ++j) {
      if (done[j]) continue;
      probe_epe_on(latents[j], results[j].fragments);
      if (update_after_measure(results[j], quality[j], iter)) done[j] = 1;
    }
  }
  for (const OpcResult& r : results) finish_correction(r);
  return results;
}

}  // namespace poc
