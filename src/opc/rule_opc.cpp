#include "src/opc/rule_opc.h"

#include <algorithm>

#include "src/geom/polygon_ops.h"

namespace poc {

DbUnit fragment_spacing(const Fragment& fragment,
                        const std::vector<Rect>& solids, DbUnit limit) {
  DbUnit best = limit;
  const Point c = fragment.ctrl;
  for (const Rect& r : solids) {
    switch (fragment.outward) {
      case Dir::kEast:
        if (r.ylo <= c.y && r.yhi >= c.y && r.xlo >= c.x) {
          best = std::min(best, r.xlo - c.x);
        }
        break;
      case Dir::kWest:
        if (r.ylo <= c.y && r.yhi >= c.y && r.xhi <= c.x) {
          best = std::min(best, c.x - r.xhi);
        }
        break;
      case Dir::kNorth:
        if (r.xlo <= c.x && r.xhi >= c.x && r.ylo >= c.y) {
          best = std::min(best, r.ylo - c.y);
        }
        break;
      case Dir::kSouth:
        if (r.xlo <= c.x && r.xhi >= c.x && r.yhi <= c.y) {
          best = std::min(best, c.y - r.yhi);
        }
        break;
    }
  }
  return best;
}

std::vector<Polygon> rule_based_opc(const std::vector<Polygon>& targets,
                                    std::vector<Fragment>& fragments,
                                    const RuleOpcTable& table) {
  std::vector<Rect> solids;
  for (const Polygon& p : targets) {
    for (const Rect& r : decompose(p)) solids.push_back(r);
  }
  const DbUnit limit = table.rows.empty() ? 1000 : table.rows.back().first + 1;
  for (Fragment& f : fragments) {
    // Spacing is measured from just outside the fragment's own polygon; the
    // control point sits ON the edge, so facing solids exclude distance 0
    // hits from the owning shape by nudging the probe outward 1 nm.
    Fragment probe = f;
    const Point n = dir_vec(f.outward);
    probe.ctrl = {f.ctrl.x + n.x, f.ctrl.y + n.y};
    const DbUnit spacing = fragment_spacing(probe, solids, limit);
    DbUnit bias = table.iso_bias;
    for (const auto& [max_space, b] : table.rows) {
      if (spacing <= max_space) {
        bias = b;
        break;
      }
    }
    if (f.at_line_end) bias += table.line_end_bias;
    f.bias = bias;
  }
  return apply_fragments(targets, fragments);
}

}  // namespace poc
