// Edge fragmentation: splits each polygon edge into correction fragments
// (corner fragments plus interior fragments of bounded length).  Each
// fragment carries its own bias, applied along the edge's outward normal,
// and an EPE control point on the original target edge.
#pragma once

#include <cstddef>
#include <vector>

#include "src/geom/polygon.h"

namespace poc {

struct FragmentationOptions {
  DbUnit max_fragment_len = 70;   ///< interior fragment length (nm)
  DbUnit corner_len = 35;         ///< dedicated corner fragment length
  DbUnit min_edge_for_corners = 120;  ///< shorter edges get a single fragment
  DbUnit line_end_max_len = 100;  ///< short edges up to this are line ends
};

struct Fragment {
  std::size_t poly = 0;    ///< index into the target polygon list
  std::size_t edge = 0;    ///< edge index within the polygon
  DbUnit s = 0;            ///< fragment span along the edge, from edge.a
  DbUnit e = 0;
  Point ctrl;              ///< EPE control point on the ORIGINAL target edge
  Dir outward = Dir::kEast;
  bool at_corner = false;
  bool at_line_end = false;  ///< the whole edge is a short terminating edge
  /// Halo fragments outside the simulated tile are frozen: never measured,
  /// never moved, excluded from statistics (tile-based OPC halo handling).
  bool frozen = false;
  DbUnit bias = 0;         ///< current displacement (+ = outward)
  double epe_nm = 0.0;     ///< last measured edge placement error
};

/// Fragments every edge of every polygon.  Fragments are ordered
/// polygon-major, edge-major, along-edge — the order apply_fragments expects.
std::vector<Fragment> fragment_polygons(const std::vector<Polygon>& targets,
                                        const FragmentationOptions& opts = {});

/// Rebuilds the corrected polygons from per-fragment biases: each fragment's
/// segment is displaced along the outward normal; jogs and corner extensions
/// are inserted to keep the result Manhattan.
std::vector<Polygon> apply_fragments(const std::vector<Polygon>& targets,
                                     const std::vector<Fragment>& fragments);

/// Freezes every fragment whose control point lies outside `window`
/// deflated by `margin` (the EPE probes of such fragments would leave the
/// simulated tile).
void freeze_outside_window(std::vector<Fragment>& fragments,
                           const Rect& window, DbUnit margin);

}  // namespace poc
