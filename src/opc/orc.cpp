#include "src/opc/orc.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "src/cdx/contour.h"
#include "src/geom/polygon_ops.h"

namespace poc {

std::string OrcViolation::describe() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kPinch: os << "PINCH"; break;
    case Kind::kBridge: os << "BRIDGE"; break;
    case Kind::kEpe: os << "EPE"; break;
  }
  os << " at (" << where.x << ", " << where.y << ") value=" << value_nm;
  return os.str();
}

namespace {

/// Everything downstream of the two latent computations: EPE scoring over
/// already-measured fragments, pinch and bridge probes against the silicon
/// latent.  Shared by the scalar and staged overloads so they cannot drift.
OrcReport score_orc(const Image2D& latent, double th,
                    const std::vector<Polygon>& targets,
                    const std::vector<Fragment>& frags,
                    const OrcOptions& options);

}  // namespace

OrcReport run_orc(const LithoSimulator& sim, const OpcEngine& engine,
                  const std::vector<Polygon>& targets,
                  const std::vector<Rect>& mask_rects, const Rect& window,
                  const Exposure& exposure, const OrcOptions& options) {
  const Image2D latent =
      sim.latent(mask_rects, window, exposure, options.quality);

  // --- EPE at every target fragment ---
  std::vector<Fragment> frags =
      fragment_polygons(targets, engine.options().fragmentation);
  freeze_outside_window(
      frags, window,
      static_cast<DbUnit>(engine.options().probe_outside_nm) + 60);
  engine.measure_epe(frags, mask_rects, window, exposure, options.quality);
  return score_orc(latent, sim.print_threshold(), targets, frags, options);
}

OrcReport run_orc_staged(const LithoSimulator& sim, const OpcEngine& engine,
                         const std::vector<Polygon>& targets,
                         const Rect& window, const OrcLatents& latents,
                         const OrcOptions& options) {
  std::vector<Fragment> frags =
      fragment_polygons(targets, engine.options().fragmentation);
  freeze_outside_window(
      frags, window,
      static_cast<DbUnit>(engine.options().probe_outside_nm) + 60);
  engine.probe_epe_on(latents.model, frags);
  return score_orc(latents.silicon, sim.print_threshold(), targets, frags,
                   options);
}

namespace {

OrcReport score_orc(const Image2D& latent, const double th,
                    const std::vector<Polygon>& targets,
                    const std::vector<Fragment>& frags,
                    const OrcOptions& options) {
  OrcReport report;
  double sum_sq = 0.0;
  std::size_t counted = 0;
  for (const Fragment& f : frags) {
    if (f.frozen) continue;
    if (options.exclude_corner_fragments && f.at_corner) continue;
    report.max_abs_epe_nm = std::max(report.max_abs_epe_nm, std::abs(f.epe_nm));
    sum_sq += f.epe_nm * f.epe_nm;
    ++counted;
    if (std::abs(f.epe_nm) > options.epe_limit_nm) {
      report.violations.push_back(
          {OrcViolation::Kind::kEpe, f.ctrl, f.epe_nm});
    }
  }
  if (counted > 0) {
    report.rms_epe_nm = std::sqrt(sum_sq / static_cast<double>(counted));
  }

  // --- pinch: printed width at the centre of every target slab ---
  std::vector<Rect> slabs;
  for (const Polygon& p : targets) {
    for (const Rect& r : decompose(p)) slabs.push_back(r);
  }
  for (const Rect& r : slabs) {
    const bool horizontal_cd = r.width() <= r.height();
    const double drawn = static_cast<double>(
        horizontal_cd ? r.width() : r.height());
    const Point c = r.center();
    const auto width = printed_width(
        latent, th, {static_cast<double>(c.x), static_cast<double>(c.y)},
        horizontal_cd, drawn * 3.0);
    const double printed = width.value_or(0.0);
    if (printed < drawn * options.pinch_fraction) {
      report.violations.push_back({OrcViolation::Kind::kPinch, c, printed});
    }
  }

  // --- bridge: latent must clear threshold midway across narrow gaps ---
  for (std::size_t i = 0; i < slabs.size(); ++i) {
    for (std::size_t j = i + 1; j < slabs.size(); ++j) {
      const Rect& a = slabs[i];
      const Rect& b = slabs[j];
      // Horizontal gap with vertical overlap.
      const DbUnit ylo = std::max(a.ylo, b.ylo);
      const DbUnit yhi = std::min(a.yhi, b.yhi);
      const DbUnit gap_x = std::max(a.xlo, b.xlo) - std::min(a.xhi, b.xhi);
      if (yhi > ylo && gap_x > 0 && gap_x < options.bridge_check_space) {
        const Point mid{(std::min(a.xhi, b.xhi) + std::max(a.xlo, b.xlo)) / 2,
                        (ylo + yhi) / 2};
        const double v = latent.sample(static_cast<double>(mid.x),
                                       static_cast<double>(mid.y));
        if (v < th) {
          report.violations.push_back(
              {OrcViolation::Kind::kBridge, mid, v / th});
        }
      }
      // Vertical gap with horizontal overlap.
      const DbUnit xlo = std::max(a.xlo, b.xlo);
      const DbUnit xhi = std::min(a.xhi, b.xhi);
      const DbUnit gap_y = std::max(a.ylo, b.ylo) - std::min(a.yhi, b.yhi);
      if (xhi > xlo && gap_y > 0 && gap_y < options.bridge_check_space) {
        const Point mid{(xlo + xhi) / 2,
                        (std::min(a.yhi, b.yhi) + std::max(a.ylo, b.ylo)) / 2};
        const double v = latent.sample(static_cast<double>(mid.x),
                                       static_cast<double>(mid.y));
        if (v < th) {
          report.violations.push_back(
              {OrcViolation::Kind::kBridge, mid, v / th});
        }
      }
    }
  }
  return report;
}

}  // namespace

}  // namespace poc
