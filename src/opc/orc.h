// Optical rule check (post-OPC verification): scores a corrected mask
// against its targets — residual EPE statistics, pinching (printed width
// collapsing below a fraction of drawn) and bridging (resist clearing lost
// in the space between neighbouring features).
#pragma once

#include <string>
#include <vector>

#include "src/geom/polygon.h"
#include "src/geom/rect.h"
#include "src/litho/simulator.h"
#include "src/opc/opc_engine.h"

namespace poc {

struct OrcViolation {
  enum class Kind { kPinch, kBridge, kEpe } kind = Kind::kEpe;
  Point where;
  double value_nm = 0.0;  ///< printed width (pinch), gap latent margin
                          ///< (bridge, in threshold units), or EPE
  std::string describe() const;
};

struct OrcOptions {
  double pinch_fraction = 0.70;   ///< min printed/drawn width ratio
  double epe_limit_nm = 4.0;      ///< flag fragments beyond this residual
  DbUnit bridge_check_space = 320;  ///< probe gaps narrower than this
  /// Corner rounding is physical and uncorrectable; production ORC decks
  /// exclude corner fragments from EPE limits, as we do by default.
  bool exclude_corner_fragments = true;
  LithoQuality quality = LithoQuality::kStandard;
};

struct OrcReport {
  double max_abs_epe_nm = 0.0;
  double rms_epe_nm = 0.0;
  std::vector<OrcViolation> violations;
  bool clean() const { return violations.empty(); }
};

/// Verifies `mask_rects` (post-OPC mask incl. SRAFs) against the drawn
/// `targets` inside `window` at the given exposure.
OrcReport run_orc(const LithoSimulator& sim, const OpcEngine& engine,
                  const std::vector<Polygon>& targets,
                  const std::vector<Rect>& mask_rects, const Rect& window,
                  const Exposure& exposure, const OrcOptions& options = {});

/// The two latent images one run_orc call consumes: the silicon print
/// (`sim` above; pinch/bridge probes and the report's reference) and the
/// OPC model's latent (the engine's simulator; EPE measurement).  The
/// batched hotspot scan computes these through the SoA engine for a whole
/// chunk of windows and hands them in pre-staged.
struct OrcLatents {
  Image2D silicon;
  Image2D model;
};

/// run_orc over pre-computed latents.  Staged latents must equal what the
/// scalar calls would produce — the batched engine guarantees this bit for
/// bit — so both overloads return identical reports.
OrcReport run_orc_staged(const LithoSimulator& sim, const OpcEngine& engine,
                         const std::vector<Polygon>& targets,
                         const Rect& window, const OrcLatents& latents,
                         const OrcOptions& options = {});

}  // namespace poc
