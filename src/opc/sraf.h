// Rule-based sub-resolution assist feature (scattering bar) insertion.
// Isolated edges print with less aerial-image contrast and larger
// through-focus CD swing than dense ones; a narrow non-printing bar placed
// one "pseudo-pitch" away restores a dense-like diffraction environment.
#pragma once

#include <vector>

#include "src/geom/polygon.h"
#include "src/geom/rect.h"

namespace poc {

struct SrafRules {
  DbUnit bar_width = 40;        ///< below the resolution limit, never prints
  DbUnit bar_distance = 170;    ///< target edge to bar near edge
  DbUnit min_open_space = 450;  ///< only edges with at least this much free
                                ///< space get a bar
  DbUnit end_margin = 30;       ///< bar pullback from the edge's ends
  DbUnit min_bar_len = 80;
};

/// Places scattering bars next to sufficiently isolated edges of `targets`
/// inside `window`.  Bars never overlap targets or each other.
std::vector<Rect> insert_srafs(const std::vector<Polygon>& targets,
                               const Rect& window, const SrafRules& rules = {});

}  // namespace poc
