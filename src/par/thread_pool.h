// Deterministic parallel window engine.  The post-OPC flow's hot loops are
// embarrassingly parallel over independent windows (per-instance OPC, per-
// gate extraction, per-window ORC, per-sample Monte Carlo), so the pool's
// contract is built around that shape:
//
//   * work items are identified by a dense index in [0, n);
//   * results are written into pre-sized slots indexed by item id, never
//     into shared accumulators, so the answer is bit-identical regardless
//     of thread count or scheduling;
//   * reductions (parallel_map_reduce) materialize per-item values and
//     fold them on the calling thread in strict index order — double
//     addition is not associative, so the fold order is part of the
//     determinism contract;
//   * per-item randomness must come from counter-derived streams
//     (Rng::stream(seed, item)), never from a shared engine.
//
// Scheduling is work-stealing over per-thread chunk queues (the classic
// per-work-item scheduler shape): contiguous chunks of the index range are
// dealt round-robin into one queue per participant, each participant drains
// its own queue front-first and steals from the back of others when idle.
// Stealing balances load; determinism is unaffected because scheduling only
// decides *where* a chunk runs, never what it writes.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/common/error.h"

namespace poc {

/// Cooperative cancellation flag for the window loops.  Checked by
/// parallel_for / try_parallel_for at chunk boundaries only: a set token
/// stops new chunks from being claimed, every in-flight window finishes
/// (so its result can still be journaled), and the loop then raises
/// FlowException(kCancelled).  request_cancel() is a single relaxed atomic
/// store — async-signal-safe, so a SIGINT/SIGTERM handler may call it
/// directly (see ScopedGracefulShutdown in src/run/shutdown.h).
class CancelToken {
 public:
  void request_cancel() noexcept {
    cancelled_.store(true, std::memory_order_relaxed);
  }
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Process-wide token the signal handlers target.  Loops that pass no
/// explicit token are not affected by it — cancellation is opt-in per call.
CancelToken& global_cancel_token();

/// Work-stealing pool of `workers` persistent threads.  The thread calling
/// parallel_for always participates, so a pool with W workers runs batches
/// on up to W + 1 threads.  A pool with 0 workers degrades to serial
/// execution on the caller with identical results.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t workers() const { return threads_.size(); }

  /// Runs fn(i) for every i in [0, n), split into contiguous chunks of
  /// `chunk` items, on up to `max_threads` threads (caller included; 0
  /// means caller + every worker).  Blocks until all items ran.  Within a
  /// chunk, indices are visited in ascending order.  If any fn invocation
  /// throws, the remaining items of that chunk are skipped, every other
  /// chunk still runs, and the exception from the lowest-indexed throwing
  /// chunk is rethrown on the caller — deterministically, whatever the
  /// thread count.  A non-null `cancel` token is polled before each chunk
  /// claim: once set, unclaimed chunks are abandoned (in-flight chunks
  /// finish) and FlowException(kCancelled) is thrown after the drain, but
  /// only if work was actually skipped — a token set after the last chunk
  /// completed changes nothing.
  void parallel_for(std::size_t n, std::size_t chunk,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t max_threads = 0,
                    const CancelToken* cancel = nullptr);

  /// True when the current thread is a pool worker (any pool's).  Nested
  /// parallel_for calls from inside a worker run serially inline — see
  /// poc::parallel_for — so worker threads never block on a child batch.
  static bool on_worker_thread();

 private:
  struct Batch {
    std::size_t n = 0;
    std::size_t chunk = 1;
    std::size_t num_chunks = 0;
    const std::function<void(std::size_t)>* fn = nullptr;

    struct Queue {
      std::mutex mutex;
      std::deque<std::size_t> chunks;  ///< chunk indices
    };
    std::vector<Queue> queues;  ///< queue 0 = caller, 1..W = workers

    std::size_t max_extra_workers = 0;   ///< workers allowed to join
    std::atomic<std::size_t> joined{0};  ///< workers that tried to join

    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::size_t chunks_remaining = 0;

    /// First error by chunk index, so the rethrown exception does not
    /// depend on scheduling.
    std::mutex error_mutex;
    std::exception_ptr error;
    std::size_t error_chunk = 0;

    /// Cooperative cancellation: polled before each chunk claim; a claimed
    /// chunk after cancellation is discarded, not run.
    const CancelToken* cancel = nullptr;
    std::atomic<std::size_t> chunks_skipped{0};
  };

  void worker_loop(std::size_t queue_index);
  /// Drains `batch` from `home_queue`, stealing when the home queue runs
  /// dry.  Returns when no unclaimed chunks remain.
  static void run_chunks(Batch& batch, std::size_t home_queue);

  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable wake_cv_;
  std::shared_ptr<Batch> batch_;    ///< current batch, null when idle
  std::uint64_t generation_ = 0;    ///< bumped per batch so workers join once
  bool stop_ = false;
};

/// Number of threads `requested` resolves to: 0 = hardware concurrency,
/// otherwise the value itself (minimum 1).
std::size_t resolve_threads(std::size_t requested);

/// The contiguous chunk [lo, hi) that item `i` belongs to under
/// parallel_for's fixed partitioning (chunk c covers [c*chunk,
/// min((c+1)*chunk, n))).  Pure arithmetic on (n, chunk, i) — the batched
/// hot loops use it to recognize the first index of their chunk and stage
/// the whole chunk's work there (one worker owns a chunk end to end, so
/// per-chunk staging needs no synchronization).
struct ChunkSpan {
  std::size_t lo = 0;
  std::size_t hi = 0;
};
inline ChunkSpan chunk_span(std::size_t n, std::size_t chunk, std::size_t i) {
  POC_EXPECTS(chunk >= 1 && i < n);
  const std::size_t lo = (i / chunk) * chunk;
  return {lo, std::min(lo + chunk, n)};
}

/// Shared process-wide pool used by the free parallel_for below.  Lazily
/// constructed with enough workers that a `threads` request up to at least
/// 4 (or hardware concurrency, whichever is larger) is honoured even on
/// small machines — determinism tests deliberately oversubscribe 1-core
/// hosts.
ThreadPool& global_pool();

/// Deterministic parallel loop: fn(i) for i in [0, n) using up to `threads`
/// OS threads (after resolve_threads).  threads <= 1, n <= 1, or a call
/// from inside a pool worker (nested submission) runs serially inline on
/// the caller — bit-identical by construction, and deadlock-free under
/// nesting.  `chunk` must be >= 1.  A non-null `cancel` token makes the
/// loop cooperative: it is checked at chunk boundaries (in the serial path
/// too), in-flight chunks drain, and FlowException(kCancelled) is thrown
/// when any item was left unrun.
void parallel_for(std::size_t threads, std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t)>& fn,
                  const CancelToken* cancel = nullptr);

/// One captured per-item failure from try_parallel_for.
struct IndexedError {
  std::size_t index = 0;
  FlowError error;
};

/// Error-capturing variant of parallel_for: fn(i) still runs for every i
/// in [0, n), but a throwing item is captured as a FlowError (classified
/// via capture_flow_error, window = i, origin as given) instead of
/// unwinding — so a bad item never aborts the rest of its chunk, and
/// *every* failing index is reported, not just the lowest.  Returns the
/// failures sorted by index: bit-identical at any thread count.
/// Cancellation (see parallel_for) is NOT absorbed per item — a cancelled
/// loop still throws FlowException(kCancelled) after draining.
std::vector<IndexedError> try_parallel_for(
    std::size_t threads, std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t)>& fn, std::string_view origin = {},
    const CancelToken* cancel = nullptr);

/// Deterministic map/reduce: materializes map(i) into per-item slots in
/// parallel, then folds acc = reduce(move(acc), move(slot[i])) on the
/// calling thread in ascending index order.  T must be default- and
/// move-constructible.  Bit-identical for any thread count because the
/// fold order never changes.
template <typename T, typename Map, typename Reduce>
T parallel_map_reduce(std::size_t threads, std::size_t n, std::size_t chunk,
                      T init, Map&& map, Reduce&& reduce) {
  std::vector<T> slots(n);
  parallel_for(threads, n, chunk,
               [&](std::size_t i) { slots[i] = map(i); });
  T acc = std::move(init);
  for (std::size_t i = 0; i < n; ++i) {
    acc = reduce(std::move(acc), std::move(slots[i]));
  }
  return acc;
}

}  // namespace poc
