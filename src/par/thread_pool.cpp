#include "src/par/thread_pool.h"

#include <algorithm>

namespace poc {
namespace {

thread_local bool t_on_worker_thread = false;

/// The cancellation exception every cancelled loop raises — same code and
/// origin whatever the thread count or kill timing, so callers can match
/// on FaultCode::kCancelled alone.
[[noreturn]] void throw_cancelled() {
  throw FlowException(FlowError{FaultCode::kCancelled, kNoWindowId,
                                "par.cancel",
                                "cancelled at chunk boundary"});
}

}  // namespace

CancelToken& global_cancel_token() {
  static CancelToken token;
  return token;
}

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    // Queue 0 belongs to the submitting caller; worker w owns queue w + 1.
    threads_.emplace_back([this, w] { worker_loop(w + 1); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

bool ThreadPool::on_worker_thread() { return t_on_worker_thread; }

void ThreadPool::worker_loop(std::size_t queue_index) {
  t_on_worker_thread = true;
  std::uint64_t seen_generation = 0;
  while (true) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock, [&] {
        return stop_ || (batch_ != nullptr && generation_ != seen_generation);
      });
      if (stop_) return;
      seen_generation = generation_;
      batch = batch_;
    }
    // The join cap is what makes `threads` a real knob on machines with
    // more workers than the request: surplus workers skip the batch.
    if (batch->joined.fetch_add(1) < batch->max_extra_workers) {
      run_chunks(*batch, queue_index);
    }
  }
}

void ThreadPool::run_chunks(Batch& batch, std::size_t home_queue) {
  const std::size_t num_queues = batch.queues.size();
  std::size_t completed = 0;
  while (true) {
    // Cancellation is honoured at chunk boundaries only: chunks already
    // running elsewhere drain normally; chunks claimed from here on are
    // discarded (still counted, so the batch terminates promptly).
    const bool cancelled = batch.cancel != nullptr && batch.cancel->cancelled();
    std::size_t chunk_index = batch.num_chunks;  // sentinel: none found
    // Own queue first (front), then steal from the back of the others.
    for (std::size_t probe = 0; probe < num_queues; ++probe) {
      const std::size_t q = (home_queue + probe) % num_queues;
      Batch::Queue& queue = batch.queues[q];
      std::lock_guard<std::mutex> lock(queue.mutex);
      if (queue.chunks.empty()) continue;
      if (probe == 0) {
        chunk_index = queue.chunks.front();
        queue.chunks.pop_front();
      } else {
        chunk_index = queue.chunks.back();
        queue.chunks.pop_back();
      }
      break;
    }
    if (chunk_index == batch.num_chunks) break;  // nothing left to claim
    if (cancelled) {
      batch.chunks_skipped.fetch_add(1, std::memory_order_relaxed);
      ++completed;
      continue;
    }

    const std::size_t first = chunk_index * batch.chunk;
    const std::size_t last = std::min(first + batch.chunk, batch.n);
    try {
      for (std::size_t i = first; i < last; ++i) (*batch.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(batch.error_mutex);
      if (!batch.error || chunk_index < batch.error_chunk) {
        batch.error = std::current_exception();
        batch.error_chunk = chunk_index;
      }
    }
    ++completed;
  }
  if (completed > 0) {
    std::lock_guard<std::mutex> lock(batch.done_mutex);
    batch.chunks_remaining -= completed;
    if (batch.chunks_remaining == 0) batch.done_cv.notify_all();
  }
}

namespace {

/// Serial loop with the same chunk-boundary cancellation contract as the
/// pooled path: poll before each chunk, drain nothing (there is nothing in
/// flight), throw kCancelled when items were left unrun.
void serial_for_cancellable(std::size_t n, std::size_t chunk,
                            const std::function<void(std::size_t)>& fn,
                            const CancelToken* cancel) {
  if (cancel == nullptr) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  for (std::size_t first = 0; first < n; first += chunk) {
    if (cancel->cancelled()) throw_cancelled();
    const std::size_t last = std::min(first + chunk, n);
    for (std::size_t i = first; i < last; ++i) fn(i);
  }
}

}  // namespace

void ThreadPool::parallel_for(std::size_t n, std::size_t chunk,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t max_threads,
                              const CancelToken* cancel) {
  POC_EXPECTS(chunk >= 1);
  if (n == 0) return;
  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  std::size_t participants = workers() + 1;
  if (max_threads != 0) participants = std::min(participants, max_threads);
  participants = std::min(participants, num_chunks);
  if (participants <= 1) {
    // Serial fast path: same call sequence a 1-thread batch would make.
    serial_for_cancellable(n, chunk, fn, cancel);
    return;
  }

  auto batch = std::make_shared<Batch>();
  batch->n = n;
  batch->chunk = chunk;
  batch->num_chunks = num_chunks;
  batch->fn = &fn;
  batch->cancel = cancel;
  batch->queues = std::vector<Batch::Queue>(workers() + 1);
  batch->max_extra_workers = participants - 1;
  batch->chunks_remaining = num_chunks;
  // Deal chunks round-robin across the participating queues so each
  // thread starts with a contiguous-ish share; stealing evens out the
  // rest.  No lock needed: workers cannot see the batch yet.
  for (std::size_t c = 0; c < num_chunks; ++c) {
    batch->queues[c % participants].chunks.push_back(c);
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_ = batch;
    ++generation_;
  }
  wake_cv_.notify_all();

  run_chunks(*batch, /*home_queue=*/0);

  {
    std::unique_lock<std::mutex> lock(batch->done_mutex);
    batch->done_cv.wait(lock, [&] { return batch->chunks_remaining == 0; });
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    batch_.reset();
  }
  if (batch->error) std::rethrow_exception(batch->error);
  if (batch->chunks_skipped.load(std::memory_order_relaxed) > 0) {
    throw_cancelled();
  }
}

std::size_t resolve_threads(std::size_t requested) {
  if (requested != 0) return requested;
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

ThreadPool& global_pool() {
  static ThreadPool pool(
      std::max<std::size_t>(4, resolve_threads(0)) - 1);
  return pool;
}

void parallel_for(std::size_t threads, std::size_t n, std::size_t chunk,
                  const std::function<void(std::size_t)>& fn,
                  const CancelToken* cancel) {
  POC_EXPECTS(chunk >= 1);
  threads = resolve_threads(threads);
  if (threads <= 1 || n <= 1 || ThreadPool::on_worker_thread()) {
    serial_for_cancellable(n, chunk, fn, cancel);
    return;
  }
  global_pool().parallel_for(n, chunk, fn, threads, cancel);
}

std::vector<IndexedError> try_parallel_for(
    std::size_t threads, std::size_t n, std::size_t chunk,
    const std::function<void(std::size_t)>& fn, std::string_view origin,
    const CancelToken* cancel) {
  std::mutex mutex;
  std::vector<IndexedError> errors;
  // The wrapper absorbs every throw at item granularity, so from the
  // pool's point of view no chunk ever fails and all items run.
  // Cancellation is raised by the loop itself, never by an item, so it
  // passes through uncaptured.
  const std::function<void(std::size_t)> guarded = [&](std::size_t i) {
    try {
      fn(i);
    } catch (...) {
      FlowError err = capture_flow_error(i, origin);
      std::lock_guard<std::mutex> lock(mutex);
      errors.push_back({i, std::move(err)});
    }
  };
  parallel_for(threads, n, chunk, guarded, cancel);
  std::sort(errors.begin(), errors.end(),
            [](const IndexedError& a, const IndexedError& b) {
              return a.index < b.index;
            });
  return errors;
}

}  // namespace poc
