#include "src/common/serialize.h"

#include <array>

namespace poc {
namespace {

/// CRC-64/XZ: reflected ECMA-182 polynomial 0x42F0E1EBA9EA3693.
constexpr std::uint64_t kPolyReflected = 0xC96C5795D7870F42ULL;

std::array<std::uint64_t, 256> make_crc_table() {
  std::array<std::uint64_t, 256> table{};
  for (std::uint64_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1) ? (crc >> 1) ^ kPolyReflected : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

std::uint64_t crc64(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint64_t, 256> table = make_crc_table();
  std::uint64_t crc = ~std::uint64_t{0};
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace poc
