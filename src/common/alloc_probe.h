// Scoped heap-allocation probe: counts operator-new allocations made by the
// calling thread, used to prove the batched imaging inner loop is
// allocation-free once its ScratchArena is warm (see tests/batch_test.cpp).
//
// Instrumentation comes from the global operator new/delete overrides in
// alloc_probe.cpp, which forward to malloc/free and bump a thread-local
// counter.  The overrides live in the same translation unit as these
// functions, so any binary that uses the probe links them in; binaries that
// never reference the probe keep the default allocator.  The overrides are
// sanitizer-friendly (the underlying malloc/free is what ASan/TSan
// intercept), and the per-allocation cost is one thread-local increment.
#pragma once

#include <cstddef>

namespace poc::alloc_probe {

/// Monotone count of operator-new allocations on the calling thread since
/// thread start (only meaningful in binaries that link the probe).
std::size_t thread_allocation_count();

/// RAII window over thread_allocation_count().
class Scope {
 public:
  Scope() : start_(thread_allocation_count()) {}
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  /// Allocations on this thread since the Scope was constructed.
  std::size_t count() const { return thread_allocation_count() - start_; }

 private:
  std::size_t start_;
};

}  // namespace poc::alloc_probe
