// Structured error channel for the fault-contained full-chip flow.  The
// window-shaped hot loops (per-instance OPC, per-gate extraction, per-window
// ORC) must survive a bad window: instead of letting a raw CheckError /
// std::bad_alloc / numeric fault abort the whole run, faults are captured as
// a FlowError — error code + window id + origin string — at the containment
// boundary, so the flow can retry, degrade, and report (see FlowHealth in
// src/core/flow.h and the "Fault containment & degradation" section of
// DESIGN.md).
//
// Deep layers that detect a fault themselves (non-finite latent intensity,
// OPC non-convergence past the abort threshold, characterization
// non-convergence) throw FlowException carrying an already-structured
// FlowError; everything else (CheckError, bad_alloc, unknown exceptions) is
// classified by capture_flow_error() at the catch site.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

#include "src/common/check.h"

namespace poc {

/// Classification of a contained fault.  Codes, not exception types, are
/// what the recovery policy and FlowHealth report act on.
enum class FaultCode : std::uint8_t {
  kUnknown = 0,     ///< unclassified std::exception (or a foreign throw)
  kCheckFailed,     ///< a POC_EXPECTS / POC_ENSURES contract violation
  kNonFinite,       ///< NaN/Inf escaped a numeric kernel (image, CD, slack)
  kNonConvergence,  ///< an iteration failed to converge within its budget
  kAllocFailure,    ///< std::bad_alloc (real or injected)
  kMeasurement,     ///< a measurement produced no usable value
  kCancelled,       ///< cooperative cancellation (SIGINT/SIGTERM drain)
  kJournalIo,       ///< run-journal I/O failure (open/write/fsync/rename)
  kJournalMismatch, ///< journal record rejected: bad checksum, truncated
                    ///< tail, or config-fingerprint mismatch
  // Appended in PR 10 (codes are serialized in journal records as u8 —
  // this enum is append-only).
  kStalled,         ///< worker made no progress within the watchdog window
  kCacheIo,         ///< disk-cache tier failed and was taken down
};

const char* fault_code_name(FaultCode code);

/// Window id used when the fault is not attached to a window (library
/// characterization, direct API misuse).
inline constexpr std::uint64_t kNoWindowId = ~std::uint64_t{0};

/// One structured fault: what went wrong (code), where in the chip it went
/// wrong (window id — instance or gate index, kNoWindowId outside the window
/// loops), and where in the code it was raised or caught (origin).
struct FlowError {
  FaultCode code = FaultCode::kUnknown;
  std::uint64_t window = kNoWindowId;
  std::string origin;   ///< raising/catching site, e.g. "litho.latent"
  std::string message;  ///< human-readable detail

  std::string to_string() const;
};

/// Exception wrapper for a FlowError, thrown by layers that detect a fault
/// in structured form.  capture_flow_error() passes the payload through
/// unchanged, so the code/origin survive the unwind to the containment
/// boundary.
class FlowException : public std::runtime_error {
 public:
  explicit FlowException(FlowError error)
      : std::runtime_error(error.to_string()), error_(std::move(error)) {}

  const FlowError& error() const { return error_; }

 private:
  FlowError error_;
};

/// Classifies the in-flight exception (must be called from a catch block)
/// into a FlowError.  `window` and `origin` fill the corresponding fields
/// when the exception does not already carry them (a FlowException keeps its
/// own origin; a window id is only overwritten when unset).
FlowError capture_flow_error(std::uint64_t window = kNoWindowId,
                             std::string_view origin = {});

/// Minimal Expected<T>: either a value or a FlowError.  The deliberate
/// subset of std::expected (C++23) the flow needs — value access on an
/// error state is a contract violation, not UB.
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : v_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Expected(FlowError error) : v_(std::move(error)) {}    // NOLINT(google-explicit-constructor)

  bool has_value() const { return std::holds_alternative<T>(v_); }
  explicit operator bool() const { return has_value(); }

  T& value() {
    POC_EXPECTS(has_value());
    return std::get<T>(v_);
  }
  const T& value() const {
    POC_EXPECTS(has_value());
    return std::get<T>(v_);
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const {
    return has_value() ? std::get<T>(v_) : std::move(fallback);
  }

  const FlowError& error() const {
    POC_EXPECTS(!has_value());
    return std::get<FlowError>(v_);
  }

 private:
  std::variant<T, FlowError> v_;
};

}  // namespace poc
