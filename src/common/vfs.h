// Injectable VFS shim for the durability stack.  Every syscall that makes
// run state durable — journal appends and fsyncs, shard-segment and
// disk-cache publishes (write, fsync, rename, link/linkat, truncate) —
// goes through these wrappers instead of the raw syscalls, so ENOSPC,
// EIO and short writes are first-class injectable faults: a test breaks
// exactly one I/O domain (fault::Domain::{kJournalIo, kDiskCacheIo,
// kSegmentIo}) and asserts the degradation contract (journal goes inert
// and the run continues undurable; the disk cache tier goes down while
// the memory tier keeps serving; results stay bit-identical throughout).
//
// Fault-free cost is one relaxed atomic load per call (fault::enabled()),
// measured in BENCH_PR10.json.  With no fault plan installed — or outside
// an I/O fault::Scope — every wrapper is a transparent passthrough.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>

namespace poc::vfs {

/// write(2).  Injectable: kIoEnospc / kIoEio fail with the matching errno;
/// kIoShortWrite accepts only half the buffer (callers must loop — that
/// loop is exactly what the fault exercises).
ssize_t write(int fd, const void* buf, std::size_t count);

/// fsync(2).  Injectable: kIoEio.
int fsync(int fd);

/// rename(2).  Injectable: kIoEio.
int rename(const char* old_path, const char* new_path);

/// link(2).  Injectable: kIoEio.
int link(const char* old_path, const char* new_path);

/// linkat(2).  Injectable: kIoEio.
int linkat(int old_dirfd, const char* old_path, int new_dirfd,
           const char* new_path, int flags);

/// truncate(2).  Injectable: kIoEio.
int truncate(const char* path, off_t length);

/// EINTR- and short-write-tolerant full write through vfs::write.  False
/// on a real write failure (errno preserved).
bool write_all(int fd, const std::uint8_t* data, std::size_t size);

}  // namespace poc::vfs
