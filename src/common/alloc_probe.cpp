#include "src/common/alloc_probe.h"

#include <cstdlib>
#include <new>

namespace poc::alloc_probe {
namespace {

thread_local std::size_t g_count = 0;

void* allocate(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  for (;;) {
    void* p = nullptr;
    if (align <= alignof(std::max_align_t)) {
      p = std::malloc(size);
    } else if (posix_memalign(&p, align, size) != 0) {
      p = nullptr;
    }
    if (p != nullptr) {
      ++g_count;
      return p;
    }
    const std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) throw std::bad_alloc();
    handler();
  }
}

void* allocate_nothrow(std::size_t size, std::size_t align) noexcept {
  try {
    return allocate(size, align);
  } catch (...) {
    return nullptr;
  }
}

}  // namespace

std::size_t thread_allocation_count() { return g_count; }

}  // namespace poc::alloc_probe

// Global overrides: defined here, in the same translation unit as the probe
// accessors, so linking the probe pulls them in atomically.  All paths
// forward to malloc/free (which sanitizers intercept) and bump the
// thread-local counter.

void* operator new(std::size_t size) {
  return poc::alloc_probe::allocate(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size) {
  return poc::alloc_probe::allocate(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align) {
  return poc::alloc_probe::allocate(size, static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return poc::alloc_probe::allocate(size, static_cast<std::size_t>(align));
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return poc::alloc_probe::allocate_nothrow(size, alignof(std::max_align_t));
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return poc::alloc_probe::allocate_nothrow(size, alignof(std::max_align_t));
}
void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return poc::alloc_probe::allocate_nothrow(size,
                                            static_cast<std::size_t>(align));
}
void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return poc::alloc_probe::allocate_nothrow(size,
                                            static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
