#include "src/common/vfs.h"

#include <cerrno>
#include <unistd.h>

#include <cstdio>

#include "src/common/fault.h"

namespace poc::vfs {
namespace {

// True when an errno-style fault should fire at this call site.  All the
// fault bookkeeping lives behind fault::enabled(), so the fault-free path
// through every wrapper is one relaxed atomic load.
bool inject(fault::Kind kind, int err) {
  if (!fault::enabled()) return false;
  if (!fault::should(kind)) return false;
  errno = err;
  return true;
}

}  // namespace

ssize_t write(int fd, const void* buf, std::size_t count) {
  if (fault::enabled()) {
    if (fault::should(fault::Kind::kIoEnospc)) {
      errno = ENOSPC;
      return -1;
    }
    if (fault::should(fault::Kind::kIoEio)) {
      errno = EIO;
      return -1;
    }
    if (count > 1 && fault::should(fault::Kind::kIoShortWrite)) {
      // Accept half the buffer for real: the caller's resume loop must
      // finish the job, and each injected call still writes >= 1 byte so
      // even a sticky short-write plan terminates.
      return ::write(fd, buf, count / 2);
    }
  }
  return ::write(fd, buf, count);
}

int fsync(int fd) {
  if (inject(fault::Kind::kIoEio, EIO)) return -1;
  return ::fsync(fd);
}

int rename(const char* old_path, const char* new_path) {
  if (inject(fault::Kind::kIoEio, EIO)) return -1;
  return ::rename(old_path, new_path);
}

int link(const char* old_path, const char* new_path) {
  if (inject(fault::Kind::kIoEio, EIO)) return -1;
  return ::link(old_path, new_path);
}

int linkat(int old_dirfd, const char* old_path, int new_dirfd,
           const char* new_path, int flags) {
  if (inject(fault::Kind::kIoEio, EIO)) return -1;
  return ::linkat(old_dirfd, old_path, new_dirfd, new_path, flags);
}

int truncate(const char* path, off_t length) {
  if (inject(fault::Kind::kIoEio, EIO)) return -1;
  return ::truncate(path, length);
}

bool write_all(int fd, const std::uint8_t* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = vfs::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace poc::vfs
