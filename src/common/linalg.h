// Small dense linear algebra: Gaussian elimination with partial pivoting
// and least-squares via normal equations.  Systems here are tiny (circuit
// nodes, response-surface fits), so dense direct solves are appropriate.
#pragma once

#include <cstddef>
#include <vector>

namespace poc {

/// Solves A x = b in place (A row-major n*n, b length n; b becomes x).
/// Returns false if A is numerically singular.
bool solve_dense(std::vector<double>& a, std::vector<double>& b,
                 std::size_t n);

/// Least squares: minimizes |X beta - y| for row-major X (rows x cols).
/// Returns beta (length cols).  Throws CheckError if the normal equations
/// are singular.
std::vector<double> least_squares(const std::vector<double>& x,
                                  const std::vector<double>& y,
                                  std::size_t rows, std::size_t cols);

}  // namespace poc
