// Small dense linear algebra: Gaussian elimination with partial pivoting,
// least-squares via normal equations, and a cyclic Jacobi eigensolver for
// Hermitian matrices.  Systems here are tiny (circuit nodes, response-
// surface fits, TCC source-Gram matrices), so dense direct methods are
// appropriate.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/fft.h"  // Cplx

namespace poc {

/// Solves A x = b in place (A row-major n*n, b length n; b becomes x).
/// Returns false if A is numerically singular.
bool solve_dense(std::vector<double>& a, std::vector<double>& b,
                 std::size_t n);

/// Least squares: minimizes |X beta - y| for row-major X (rows x cols).
/// Returns beta (length cols).  Throws CheckError if the normal equations
/// are singular.
std::vector<double> least_squares(const std::vector<double>& x,
                                  const std::vector<double>& y,
                                  std::size_t rows, std::size_t cols);

/// Eigendecomposition of a Hermitian matrix.
struct HermitianEigen {
  /// Eigenvalues, sorted descending (all real for a Hermitian input).
  std::vector<double> values;
  /// Orthonormal eigenvectors stored contiguously: component i of the
  /// eigenvector paired with values[k] is vectors[k * n + i].
  std::vector<Cplx> vectors;
};

/// Cyclic Jacobi eigensolver for a Hermitian matrix (row-major n*n).  Only
/// the numerical Hermitian part of `a` is used (the strict lower triangle is
/// read as the conjugate of the upper one).  Deterministic: fixed sweep
/// order, no data-dependent pivoting, so identical inputs give bit-identical
/// results on every call.  Intended for the small matrices in this codebase
/// (source Gram matrices, S <= a few dozen).
HermitianEigen jacobi_hermitian(std::vector<Cplx> a, std::size_t n);

}  // namespace poc
