// Deterministic fault-injection harness.  Compiled in, default-off: the
// fast path is a single relaxed atomic load, so the fault-free flow pays
// noise-level overhead (measured in BENCH_PR4.json).
//
// Injection decisions are pure functions of (seed, kind, domain, index):
// a window is identified by the hot-loop domain it runs under (OPC /
// extract / scan) plus its stable item index, never by thread id or
// execution order — so the same seed faults the same windows at 1 and 4
// threads, which is what lets tests assert exact containment behavior.
//
// Usage (tests): fault::Config cfg; cfg.enabled = true;
//   cfg.targets.push_back({Kind::kNanPixel, Domain::kExtract, 3});
//   fault::configure(cfg);  ...run flow...  fault::reset();
// Probe sites call fault::maybe_throw(kind) (or fault::should(kind) when
// the fault is data corruption rather than a throw) inside a fault::Scope
// that names the current domain/index.
#pragma once

#include <cstdint>
#include <vector>

namespace poc::fault {

/// What to inject at a probe site.
enum class Kind : std::uint8_t {
  kConvergenceStall = 0,  ///< OPC iteration refuses to converge
  kNanPixel,              ///< a NaN written into a latent image
  kCacheInsert,           ///< result-cache insert fails (bad_alloc)
  kAlloc,                 ///< allocation failure inside a window body
  // I/O faults, probed by the vfs shim (src/common/vfs) inside the
  // durability stack's I/O domains below.  Never thrown: the shim returns
  // the matching errno failure, so the caller's real error path runs.
  kIoEnospc,      ///< write(2) fails with ENOSPC
  kIoEio,         ///< write/fsync/rename/link/truncate fails with EIO
  kIoShortWrite,  ///< write(2) accepts only part of the buffer
};

/// Which hot loop the probing code is running under.  kNone (no Scope on
/// this thread) never faults: probes outside a contained loop stay inert.
enum class Domain : std::uint8_t {
  kNone = 0,
  kOpc,      ///< per-instance OPC window
  kExtract,  ///< per-gate CD extraction
  kScan,     ///< per-window ORC scan
  // I/O domains: the durability stack wraps its syscalls in a Scope naming
  // which component is touching disk, so a test can break exactly one
  // layer (journal appends, disk-cache publishes, segment publishes).
  kJournalIo,    ///< run-journal appends/fsyncs/seals (src/run/journal)
  kDiskCacheIo,  ///< disk-cache entry publishes (src/cache/disk_store)
  kSegmentIo,    ///< shard segment publish/seal (src/run/shard)
};

/// Target index wildcard: fault every probe of the (kind, domain) pair
/// regardless of its index — "the disk is full", not "this one write
/// fails".  Sequence-numbered I/O probes are targeted this way.
inline constexpr std::uint64_t kAnyIndex = ~std::uint64_t{0};

/// An explicit injection target: fault `kind` when probed under
/// (`domain`, `index`).  `index` may be kAnyIndex to match every index.
struct Target {
  Kind kind;
  Domain domain;
  std::uint64_t index;
};

struct Config {
  bool enabled = false;
  std::uint64_t seed = 0;
  /// Random fault probability per (kind, domain, index) triple, on top of
  /// the explicit `targets` list.  Keyed off `seed`, not call order.
  double rate = 0.0;
  std::vector<Target> targets;
  /// Transient faults fire only the first time a given (kind, domain,
  /// index) triple is probed — a retry of the same window succeeds.
  /// Sticky (false) faults fire every time, forcing degradation.
  bool transient = false;
};

/// Installs a fault plan.  Not thread-safe against in-flight probes;
/// configure before running the flow and reset() after.
void configure(const Config& config);

/// Disables injection and clears all bookkeeping.
void reset();

/// Fast check: is any injection plan active?
bool enabled();

/// Names the (domain, index) the current thread is working on.  RAII,
/// nestable: restores the previous scope on destruction (a retry attempt
/// re-enters the same scope it left).
class Scope {
 public:
  Scope(Domain domain, std::uint64_t index);
  ~Scope();
  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Domain prev_domain_;
  std::uint64_t prev_index_;
};

/// Should this probe fault?  False when disabled, outside any Scope, or
/// when the (kind, domain, index) triple is not selected by the plan.
/// Records the trigger for triggered().
bool should(Kind kind);

/// should(kind) and, if selected, throws the matching exception:
/// kConvergenceStall → FlowException(kNonConvergence); kCacheInsert /
/// kAlloc → std::bad_alloc.  kNanPixel sites corrupt data instead, so
/// they use should() directly.
void maybe_throw(Kind kind);

/// A fault that actually fired, for test assertions.
struct Triggered {
  Kind kind;
  Domain domain;
  std::uint64_t index;
};

/// All faults fired since configure(), sorted by (domain, index, kind) —
/// deterministic regardless of thread interleaving.
std::vector<Triggered> triggered();

}  // namespace poc::fault
