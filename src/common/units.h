// Unit conventions used throughout the library.
//
// All layout geometry is held in integer nanometres (DbUnit).  Physical
// simulation (lithography, devices, circuits) uses double-precision values
// in the base units below.  Conversion helpers keep the boundary explicit.
#pragma once

#include <cstdint>

namespace poc {

/// Database unit: 1 DbUnit == 1 nm of layout.
using DbUnit = std::int64_t;

/// Lengths in physical code are double nanometres.
using Nm = double;
/// Micrometres (used for wire-length bookkeeping).
using Um = double;

/// Time in picoseconds.
using Ps = double;
/// Capacitance in femtofarads.
using Ff = double;
/// Resistance in ohms.
using Ohm = double;
/// Voltage in volts, current in microamperes.
using Volt = double;
using MicroAmp = double;

constexpr double kNmPerUm = 1000.0;

constexpr Nm to_nm(DbUnit u) { return static_cast<Nm>(u); }
constexpr DbUnit to_db(Nm nm) {
  return static_cast<DbUnit>(nm >= 0 ? nm + 0.5 : nm - 0.5);
}
constexpr Um nm_to_um(Nm nm) { return nm / kNmPerUm; }
constexpr Nm um_to_nm(Um um) { return um * kNmPerUm; }

/// RC product in ohm*fF is femtoseconds; convert to ps.
constexpr Ps rc_to_ps(Ohm r, Ff c) { return r * c * 1e-3; }

}  // namespace poc
