// Byte-exact serialization helpers for the durable-run journal (src/run).
// Values are encoded little-endian; doubles are encoded as their IEEE-754
// bit pattern, so a round trip reproduces every value bit for bit — the
// journal's replay-equals-recompute contract depends on it.
//
// ByteReader never throws on malformed input: every accessor checks the
// remaining length, and a failed read latches ok() == false and returns a
// zero value.  Callers validate the record checksum first and treat a
// !ok() reader as corruption, not a crash.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace poc {

/// CRC-64/XZ (ECMA-182 polynomial, reflected) over a byte range.  Used as
/// the per-record journal checksum: strong enough to catch truncation and
/// bit flips, cheap enough to run on every append.
std::uint64_t crc64(const std::uint8_t* data, std::size_t size);
inline std::uint64_t crc64(const std::vector<std::uint8_t>& bytes) {
  return crc64(bytes.data(), bytes.size());
}

/// Append-only little-endian encoder.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v) { append(&v, sizeof v); }
  void u64(std::uint64_t v) { append(&v, sizeof v); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  /// Length-prefixed (u32) byte string.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    append(s.data(), s.size());
  }
  void bytes(const std::uint8_t* data, std::size_t size) {
    append(data, size);
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void append(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over a borrowed byte range.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  std::uint8_t u8() {
    std::uint8_t v = 0;
    read(&v, sizeof v);
    return v;
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    read(&v, sizeof v);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    read(&v, sizeof v);
    return v;
  }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64() {
    const std::uint64_t bits = u64();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  std::string str() {
    const std::uint32_t n = u32();
    if (n > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }

  std::size_t remaining() const { return size_ - pos_; }
  /// False once any read ran past the end; all later reads return zeros.
  bool ok() const { return ok_; }
  /// ok() and fully consumed — the strict success test for a payload.
  bool done() const { return ok_ && pos_ == size_; }

 private:
  void read(void* out, std::size_t n) {
    if (!ok_ || n > remaining()) {
      ok_ = false;
      return;
    }
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace poc
