// Deterministic random number generation.  Every stochastic stage takes an
// explicit Rng so experiments are reproducible and independently seedable.
#pragma once

#include <cstdint>
#include <random>

namespace poc {

/// Thin wrapper around a fixed-algorithm engine (mt19937_64) so results are
/// identical across standard libraries and platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled to (mean, sigma).
  double normal(double mean = 0.0, double sigma = 1.0) {
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child stream (useful for per-gate noise).
  Rng fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace poc
