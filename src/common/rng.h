// Deterministic random number generation.  Every stochastic stage takes an
// explicit Rng so experiments are reproducible and independently seedable.
#pragma once

#include <cstdint>
#include <random>

namespace poc {

/// SplitMix64 finalizer: a bijective 64-bit mix with full avalanche, the
/// standard way to turn correlated inputs (sequential draws, counters)
/// into decorrelated seeds.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Thin wrapper around a fixed-algorithm engine (mt19937_64) so results are
/// identical across standard libraries and platforms.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eedULL) : engine_(seed) {}

  /// Uniform double in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Standard normal scaled to (mean, sigma).
  double normal(double mean = 0.0, double sigma = 1.0) {
    return std::normal_distribution<double>(mean, sigma)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

  /// Derive an independent child stream (useful for per-gate noise).  The
  /// child seed is a draw passed through splitmix64: XOR-ing a constant
  /// into sequential draws leaves repeated forks from one parent with
  /// near-identical seeds, and mt19937_64 streams from close seeds are
  /// correlated for many draws.
  Rng fork() { return Rng(splitmix64(engine_())); }

  /// Counter-derived independent stream: the same (seed, index) pair gives
  /// the same stream no matter which thread asks or in what order — the
  /// parallel engine's per-work-item seeding (see src/par/thread_pool.h).
  static Rng stream(std::uint64_t seed, std::uint64_t index) {
    return Rng(splitmix64(seed + 0x9e3779b97f4a7c15ULL * (index + 1)));
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace poc
