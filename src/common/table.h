// Plain-text table printer shared by the bench harnesses so every
// reproduced table/figure prints with consistent, aligned formatting.
#pragma once

#include <string>
#include <vector>

namespace poc {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Adds one row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Convenience: formats doubles with the given precision.
  static std::string num(double v, int precision = 3);

  /// Renders with column alignment and a separator under the header.
  std::string render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace poc
