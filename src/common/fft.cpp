#include "src/common/fft.h"

#include <cmath>
#include <numbers>

#include "src/common/check.h"

namespace poc {

bool is_pow2(std::size_t n) { return n > 0 && (n & (n - 1)) == 0; }

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

void fft_1d(std::vector<Cplx>& data, bool inverse) {
  const std::size_t n = data.size();
  POC_EXPECTS(is_pow2(n));
  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        2.0 * std::numbers::pi / static_cast<double>(len) * (inverse ? 1 : -1);
    const Cplx wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      Cplx w(1.0, 0.0);
      for (std::size_t k = 0; k < len / 2; ++k) {
        const Cplx u = data[i + k];
        const Cplx v = data[i + k + len / 2] * w;
        data[i + k] = u + v;
        data[i + k + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const double inv_n = 1.0 / static_cast<double>(n);
    for (auto& x : data) x *= inv_n;
  }
}

void fft_2d(std::vector<Cplx>& data, std::size_t nx, std::size_t ny,
            bool inverse) {
  POC_EXPECTS(data.size() == nx * ny);
  POC_EXPECTS(is_pow2(nx) && is_pow2(ny));
  // Rows.
  std::vector<Cplx> row(nx);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) row[x] = data[y * nx + x];
    fft_1d(row, inverse);
    for (std::size_t x = 0; x < nx; ++x) data[y * nx + x] = row[x];
  }
  // Columns.
  std::vector<Cplx> col(ny);
  for (std::size_t x = 0; x < nx; ++x) {
    for (std::size_t y = 0; y < ny; ++y) col[y] = data[y * nx + x];
    fft_1d(col, inverse);
    for (std::size_t y = 0; y < ny; ++y) data[y * nx + x] = col[y];
  }
}

long long fft_freq_index(std::size_t k, std::size_t n) {
  const long long kk = static_cast<long long>(k);
  const long long nn = static_cast<long long>(n);
  return kk < nn / 2 ? kk : kk - nn;
}

}  // namespace poc
