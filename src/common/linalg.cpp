#include "src/common/linalg.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace poc {

bool solve_dense(std::vector<double>& a, std::vector<double>& b,
                 std::size_t n) {
  POC_EXPECTS(a.size() == n * n && b.size() == n);
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r * n + col]) > std::abs(a[pivot * n + col])) pivot = r;
    }
    if (std::abs(a[pivot * n + col]) < 1e-18) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a[col * n + c], a[pivot * n + c]);
      }
      std::swap(b[col], b[pivot]);
    }
    const double d = a[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / d;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a[i * n + c] * b[c];
    b[i] = s / a[i * n + i];
  }
  return true;
}

std::vector<double> least_squares(const std::vector<double>& x,
                                  const std::vector<double>& y,
                                  std::size_t rows, std::size_t cols) {
  POC_EXPECTS(x.size() == rows * cols && y.size() == rows);
  POC_EXPECTS(rows >= cols);
  std::vector<double> ata(cols * cols, 0.0);
  std::vector<double> aty(cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < cols; ++i) {
      aty[i] += x[r * cols + i] * y[r];
      for (std::size_t j = 0; j < cols; ++j) {
        ata[i * cols + j] += x[r * cols + i] * x[r * cols + j];
      }
    }
  }
  const bool ok = solve_dense(ata, aty, cols);
  POC_ENSURES(ok);
  return aty;
}

HermitianEigen jacobi_hermitian(std::vector<Cplx> a, std::size_t n) {
  POC_EXPECTS(a.size() == n * n);
  POC_EXPECTS(n > 0);

  // Symmetrize: trust the upper triangle, mirror its conjugate below, and
  // drop any imaginary dust on the diagonal.  This makes the sweeps below
  // exact regardless of how carefully the caller rounded the two halves.
  for (std::size_t p = 0; p < n; ++p) {
    a[p * n + p] = Cplx(a[p * n + p].real(), 0.0);
    for (std::size_t q = p + 1; q < n; ++q) {
      a[q * n + p] = std::conj(a[p * n + q]);
    }
  }

  // Eigenvector accumulator V, starts as identity; columns become the
  // eigenvectors as V <- V * R for every rotation R applied to A.
  std::vector<Cplx> v(n * n, Cplx(0.0, 0.0));
  for (std::size_t i = 0; i < n; ++i) v[i * n + i] = Cplx(1.0, 0.0);

  double scale = 0.0;
  for (std::size_t i = 0; i < n * n; ++i) scale += std::norm(a[i]);
  scale = std::sqrt(scale);
  const double off_tol = 1e-14 * (scale > 0.0 ? scale : 1.0);
  const double skip_tol = 1e-18 * (scale > 0.0 ? scale : 1.0);

  constexpr std::size_t kMaxSweeps = 64;
  for (std::size_t sweep = 0; sweep < kMaxSweeps && n > 1; ++sweep) {
    double off = 0.0;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) off += std::norm(a[p * n + q]);
    }
    if (std::sqrt(2.0 * off) <= off_tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const Cplx apq = a[p * n + q];
        const double beta = std::abs(apq);
        if (beta <= skip_tol) continue;

        // Complex Jacobi rotation zeroing a[p][q]: with the pivot's phase
        // split off (apq = beta * phase), the tangent solves
        // t^2 - 2*tau*t - 1 = 0 for tau = (a_pp - a_qq) / (2*beta); the
        // smaller root keeps the rotation angle under 45 degrees, which is
        // what guarantees monotone off-diagonal decay.
        const Cplx phase = apq / beta;
        const double app = a[p * n + p].real();
        const double aqq = a[q * n + q].real();
        const double tau = (app - aqq) / (2.0 * beta);
        const double t =
            (tau >= 0.0 ? -1.0 : 1.0) / (std::abs(tau) + std::hypot(1.0, tau));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const Cplx s = (t * c) * phase;
        const Cplx sc = std::conj(s);

        // A <- R^H A (rows p and q).
        for (std::size_t k = 0; k < n; ++k) {
          const Cplx rp = a[p * n + k];
          const Cplx rq = a[q * n + k];
          a[p * n + k] = c * rp - s * rq;
          a[q * n + k] = sc * rp + c * rq;
        }
        // A <- A R (columns p and q).
        for (std::size_t k = 0; k < n; ++k) {
          const Cplx cp = a[k * n + p];
          const Cplx cq = a[k * n + q];
          a[k * n + p] = cp * c - cq * sc;
          a[k * n + q] = cp * s + cq * c;
        }
        // The pivot is now zero up to rounding; pin it (and keep the
        // diagonal real) so residue cannot accumulate across sweeps.
        a[p * n + q] = Cplx(0.0, 0.0);
        a[q * n + p] = Cplx(0.0, 0.0);
        a[p * n + p] = Cplx(a[p * n + p].real(), 0.0);
        a[q * n + q] = Cplx(a[q * n + q].real(), 0.0);

        // V <- V R.
        for (std::size_t k = 0; k < n; ++k) {
          const Cplx vp = v[k * n + p];
          const Cplx vq = v[k * n + q];
          v[k * n + p] = vp * c - vq * sc;
          v[k * n + q] = vp * s + vq * c;
        }
      }
    }
  }

  // Sort eigenpairs descending by value; index-based tie-break keeps the
  // ordering (and therefore downstream summation order) deterministic.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    const double dx = a[x * n + x].real();
    const double dy = a[y * n + y].real();
    if (dx != dy) return dx > dy;
    return x < y;
  });

  HermitianEigen out;
  out.values.resize(n);
  out.vectors.resize(n * n);
  for (std::size_t k = 0; k < n; ++k) {
    const std::size_t col = order[k];
    out.values[k] = a[col * n + col].real();
    for (std::size_t i = 0; i < n; ++i) {
      out.vectors[k * n + i] = v[i * n + col];
    }
  }
  return out;
}

}  // namespace poc
