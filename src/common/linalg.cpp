#include "src/common/linalg.h"

#include <cmath>

#include "src/common/check.h"

namespace poc {

bool solve_dense(std::vector<double>& a, std::vector<double>& b,
                 std::size_t n) {
  POC_EXPECTS(a.size() == n * n && b.size() == n);
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a[r * n + col]) > std::abs(a[pivot * n + col])) pivot = r;
    }
    if (std::abs(a[pivot * n + col]) < 1e-18) return false;
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a[col * n + c], a[pivot * n + c]);
      }
      std::swap(b[col], b[pivot]);
    }
    const double d = a[col * n + col];
    for (std::size_t r = col + 1; r < n; ++r) {
      const double f = a[r * n + col] / d;
      if (f == 0.0) continue;
      for (std::size_t c = col; c < n; ++c) a[r * n + c] -= f * a[col * n + c];
      b[r] -= f * b[col];
    }
  }
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t c = i + 1; c < n; ++c) s -= a[i * n + c] * b[c];
    b[i] = s / a[i * n + i];
  }
  return true;
}

std::vector<double> least_squares(const std::vector<double>& x,
                                  const std::vector<double>& y,
                                  std::size_t rows, std::size_t cols) {
  POC_EXPECTS(x.size() == rows * cols && y.size() == rows);
  POC_EXPECTS(rows >= cols);
  std::vector<double> ata(cols * cols, 0.0);
  std::vector<double> aty(cols, 0.0);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t i = 0; i < cols; ++i) {
      aty[i] += x[r * cols + i] * y[r];
      for (std::size_t j = 0; j < cols; ++j) {
        ata[i * cols + j] += x[r * cols + i] * x[r * cols + j];
      }
    }
  }
  const bool ok = solve_dense(ata, aty, cols);
  POC_ENSURES(ok);
  return aty;
}

}  // namespace poc
