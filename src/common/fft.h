// Radix-2 FFT used by the lithography simulator (mask spectrum, coherent
// imaging, resist diffusion convolution).  Sizes must be powers of two;
// Image2D in src/litho pads accordingly.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace poc {

using Cplx = std::complex<double>;

/// True if n is a power of two (and > 0).
bool is_pow2(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

/// In-place iterative radix-2 FFT.  inverse=true applies the conjugate
/// transform and divides by n (so fft(fft(x), inverse) == x).
void fft_1d(std::vector<Cplx>& data, bool inverse);

/// 2-D FFT over a row-major nx*ny grid (nx columns, ny rows); both
/// dimensions must be powers of two.
void fft_2d(std::vector<Cplx>& data, std::size_t nx, std::size_t ny,
            bool inverse);

/// fftshift-style index mapping: converts a spatial-frequency index
/// k in [0, n) to the signed frequency it represents, in cycles per
/// (n * dx) when multiplied by the caller's 1/(n*dx).
long long fft_freq_index(std::size_t k, std::size_t n);

// --- Band-limited 2-D transforms -----------------------------------------
//
// The imaging code only ever consumes (or populates) the |kx| <= kx_max
// corner of a spectrum — the pupil cuts everything beyond the coherent
// band.  These variants skip the column transforms outside that band:
// the forward pass runs every row but only the 2*kx_max+1 needed columns,
// the inverse pass transforms only the nonzero columns before running the
// rows.  Requires 2*kx_max + 1 <= nx.

/// Forward 2-D FFT whose output is only guaranteed at storage columns with
/// signed frequency |kx| <= kx_max (all ky); entries in other columns are
/// left in an unspecified intermediate state.  The band entries are
/// bit-identical to a full fft_2d of the same data (same per-span
/// operation order), so callers that read only the band may switch freely.
void fft_2d_band_forward(std::vector<Cplx>& data, std::size_t nx,
                         std::size_t ny, std::size_t kx_max);

/// Inverse 2-D FFT of a spectrum that is zero outside the |kx| <= kx_max
/// columns.  Runs the column pass first (only the nonzero columns), then
/// every row; mathematically equal to fft_2d(..., inverse=true) but with a
/// different operation order, so results differ in the last bits.
void fft_2d_band_inverse(std::vector<Cplx>& data, std::size_t nx,
                         std::size_t ny, std::size_t kx_max);

/// Forward 2-D FFT of real data, rows packed two-per-complex-transform;
/// output is valid only at the |kx| <= kx_max columns (zero elsewhere).
/// Requires even ny.  Not bit-identical to fft_2d on the widened input.
std::vector<Cplx> rfft_2d_band(const std::vector<double>& in, std::size_t nx,
                               std::size_t ny, std::size_t kx_max);

/// Inverse 2-D FFT of a Hermitian spectrum (spec[-k] == conj(spec[k]) in
/// both axes) that is zero outside the |kx| <= kx_max columns, returning
/// the real result directly with rows packed two-per-complex-transform.
/// Requires even ny.  Not bit-identical to fft_2d on the same input.
std::vector<double> irfft_2d_band(const std::vector<Cplx>& spec,
                                  std::size_t nx, std::size_t ny,
                                  std::size_t kx_max);

// --- Batched structure-of-arrays transforms ------------------------------
//
// The batched window engine (src/litho/batch.h) advances W independent
// same-size transforms in lockstep.  Data lives in split real/imaginary
// double planes, lane-innermost: element e of lane (window) w sits at
// re[e * stride + w], with `stride` >= lanes so elements never overlap.
// Each lane executes exactly the scalar fft_span operation sequence — the
// same butterflies against the same shared twiddle tables, in the same
// order — so lane w's values are bit-identical to running the scalar
// transform on window w alone.  Batching only widens each scalar operation
// across lanes; it never reorders or fuses floating-point work.

#if defined(__GNUC__) || defined(__clang__)
#define POC_RESTRICT __restrict__
#else
#define POC_RESTRICT
#endif

/// In-place lane-parallel radix-2 FFT over n elements x `lanes` lanes.
/// Element e of lane w at re[e * stride + w] / im[e * stride + w].
void fft_soa(double* re, double* im, std::size_t n, bool inverse,
             std::size_t lanes, std::size_t stride);

/// Storage column index (in [0, nx)) of compact band column c, following
/// the fixed for_band_columns order: c = 0..kx_max covers kx = 0..kx_max,
/// c = kx_max+1..2*kx_max covers kx = -kx_max..-1.
std::size_t band_column_storage(std::size_t c, std::size_t nx,
                                std::size_t kx_max);

/// Batched rfft_2d_band: forward transform of `lanes` real images (lane w's
/// nx*ny row-major data at in[w]) into compact band spectra stored
/// column-major: band column c (for_band_columns order), spectral row y,
/// lane w at spec_re[(c * ny + y) * lanes + w].  row_re/row_im are caller
/// scratch of nx * lanes doubles each.  Per lane bit-identical to the
/// scalar rfft_2d_band restricted to the band columns.
void rfft_2d_band_soa(const double* const* in, std::size_t lanes,
                      std::size_t nx, std::size_t ny, std::size_t kx_max,
                      double* spec_re, double* spec_im, double* row_re,
                      double* row_im);

/// Batched fft_2d_band_inverse over full-grid SoA fields (element (x, y) of
/// lane w at re[(y * nx + x) * lanes + w]): band columns first, then every
/// row — the scalar band-inverse operation order, per lane.
void fft_2d_band_inverse_soa(double* re, double* im, std::size_t nx,
                             std::size_t ny, std::size_t kx_max,
                             std::size_t lanes);

/// Batched fft_2d over full-grid SoA data: rows then columns, mirroring the
/// scalar transform (whose transpose trick changes layout, not operation
/// order) — per lane bit-identical to fft_2d.
void fft_2d_soa(double* re, double* im, std::size_t nx, std::size_t ny,
                bool inverse, std::size_t lanes);

/// Batched irfft_2d_band of compact band spectra (layout as produced by
/// rfft_2d_band_soa, band of nb = 2*kx_max+1 columns) into real images: lane
/// w's nx*ny result written to out[w].  The spectra are left untouched (the
/// column pass gathers into work_re/work_im, nb * ny * lanes doubles each),
/// so persistent spectra buffers survive across calls exactly like the
/// scalar path's.  row_re/row_im are caller scratch of nx * lanes doubles
/// each.  Per lane bit-identical to the scalar irfft_2d_band.
void irfft_2d_band_soa(const double* spec_re, const double* spec_im,
                       std::size_t lanes, std::size_t nx, std::size_t ny,
                       std::size_t kx_max, double* work_re, double* work_im,
                       double* row_re, double* row_im, double* const* out);

/// Destructive variant: the band spectrum arrives directly in
/// work_re/work_im (nb * ny * lanes doubles each) and is consumed in place,
/// skipping irfft_2d_band_soa's defensive copy — at fine quality that copy
/// streams several MiB per call through L2 for nothing when the caller
/// rebuilds every spectrum entry before each call anyway.  Same operation
/// order as irfft_2d_band_soa, so per lane bit-identical.
void irfft_2d_band_soa_inplace(double* work_re, double* work_im,
                               std::size_t lanes, std::size_t nx,
                               std::size_t ny, std::size_t kx_max,
                               double* row_re, double* row_im,
                               double* const* out);

}  // namespace poc
