// Radix-2 FFT used by the lithography simulator (mask spectrum, coherent
// imaging, resist diffusion convolution).  Sizes must be powers of two;
// Image2D in src/litho pads accordingly.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace poc {

using Cplx = std::complex<double>;

/// True if n is a power of two (and > 0).
bool is_pow2(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

/// In-place iterative radix-2 FFT.  inverse=true applies the conjugate
/// transform and divides by n (so fft(fft(x), inverse) == x).
void fft_1d(std::vector<Cplx>& data, bool inverse);

/// 2-D FFT over a row-major nx*ny grid (nx columns, ny rows); both
/// dimensions must be powers of two.
void fft_2d(std::vector<Cplx>& data, std::size_t nx, std::size_t ny,
            bool inverse);

/// fftshift-style index mapping: converts a spatial-frequency index
/// k in [0, n) to the signed frequency it represents, in cycles per
/// (n * dx) when multiplied by the caller's 1/(n*dx).
long long fft_freq_index(std::size_t k, std::size_t n);

}  // namespace poc
