// Radix-2 FFT used by the lithography simulator (mask spectrum, coherent
// imaging, resist diffusion convolution).  Sizes must be powers of two;
// Image2D in src/litho pads accordingly.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

namespace poc {

using Cplx = std::complex<double>;

/// True if n is a power of two (and > 0).
bool is_pow2(std::size_t n);

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

/// In-place iterative radix-2 FFT.  inverse=true applies the conjugate
/// transform and divides by n (so fft(fft(x), inverse) == x).
void fft_1d(std::vector<Cplx>& data, bool inverse);

/// 2-D FFT over a row-major nx*ny grid (nx columns, ny rows); both
/// dimensions must be powers of two.
void fft_2d(std::vector<Cplx>& data, std::size_t nx, std::size_t ny,
            bool inverse);

/// fftshift-style index mapping: converts a spatial-frequency index
/// k in [0, n) to the signed frequency it represents, in cycles per
/// (n * dx) when multiplied by the caller's 1/(n*dx).
long long fft_freq_index(std::size_t k, std::size_t n);

// --- Band-limited 2-D transforms -----------------------------------------
//
// The imaging code only ever consumes (or populates) the |kx| <= kx_max
// corner of a spectrum — the pupil cuts everything beyond the coherent
// band.  These variants skip the column transforms outside that band:
// the forward pass runs every row but only the 2*kx_max+1 needed columns,
// the inverse pass transforms only the nonzero columns before running the
// rows.  Requires 2*kx_max + 1 <= nx.

/// Forward 2-D FFT whose output is only guaranteed at storage columns with
/// signed frequency |kx| <= kx_max (all ky); entries in other columns are
/// left in an unspecified intermediate state.  The band entries are
/// bit-identical to a full fft_2d of the same data (same per-span
/// operation order), so callers that read only the band may switch freely.
void fft_2d_band_forward(std::vector<Cplx>& data, std::size_t nx,
                         std::size_t ny, std::size_t kx_max);

/// Inverse 2-D FFT of a spectrum that is zero outside the |kx| <= kx_max
/// columns.  Runs the column pass first (only the nonzero columns), then
/// every row; mathematically equal to fft_2d(..., inverse=true) but with a
/// different operation order, so results differ in the last bits.
void fft_2d_band_inverse(std::vector<Cplx>& data, std::size_t nx,
                         std::size_t ny, std::size_t kx_max);

/// Forward 2-D FFT of real data, rows packed two-per-complex-transform;
/// output is valid only at the |kx| <= kx_max columns (zero elsewhere).
/// Requires even ny.  Not bit-identical to fft_2d on the widened input.
std::vector<Cplx> rfft_2d_band(const std::vector<double>& in, std::size_t nx,
                               std::size_t ny, std::size_t kx_max);

/// Inverse 2-D FFT of a Hermitian spectrum (spec[-k] == conj(spec[k]) in
/// both axes) that is zero outside the |kx| <= kx_max columns, returning
/// the real result directly with rows packed two-per-complex-transform.
/// Requires even ny.  Not bit-identical to fft_2d on the same input.
std::vector<double> irfft_2d_band(const std::vector<Cplx>& spec,
                                  std::size_t nx, std::size_t ny,
                                  std::size_t kx_max);

}  // namespace poc
