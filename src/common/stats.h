// Descriptive statistics and rank-correlation helpers used by the CD
// extraction reports and the path-reordering analysis (experiment F4).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace poc {

/// Streaming accumulator for mean / sigma / min / max.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const;
  /// Population variance and standard deviation (n, not n-1).
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// p in [0,1]; linear interpolation between order statistics.
double percentile(std::vector<double> values, double p);

/// Ranks with average tie-handling (1-based average ranks).
std::vector<double> ranks_of(std::span<const double> values);

/// Spearman rank correlation of two equal-length samples.
double spearman(std::span<const double> a, std::span<const double> b);

/// Kendall tau-a rank correlation (O(n^2), fine for path lists).
double kendall_tau(std::span<const double> a, std::span<const double> b);

/// Pearson linear correlation.
double pearson(std::span<const double> a, std::span<const double> b);

/// Histogram with fixed bin count over [lo, hi]; values outside are clamped
/// into the end bins.  Used to print CD distributions (experiment F1).
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> bins;

  static Histogram build(std::span<const double> values, double lo, double hi,
                         std::size_t n_bins);
  /// ASCII rendering, one line per bin: "[lo, hi) count ####".
  std::string render(std::size_t max_width = 50) const;
};

}  // namespace poc
