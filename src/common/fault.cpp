#include "src/common/fault.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <new>
#include <set>
#include <tuple>

#include "src/common/error.h"
#include "src/common/rng.h"

namespace poc::fault {
namespace {

// Fast-path gate: probes load this with relaxed ordering and bail when
// false, so the default-off harness costs one atomic load per probe site.
std::atomic<bool> g_enabled{false};

std::mutex g_mutex;
Config g_config;  // guarded by g_mutex (mutated only while disabled)

using TripleKey = std::tuple<std::uint8_t, std::uint8_t, std::uint64_t>;
std::set<TripleKey> g_fired;          // guarded by g_mutex
std::vector<Triggered> g_triggered;   // guarded by g_mutex

thread_local Domain t_domain = Domain::kNone;
thread_local std::uint64_t t_index = 0;

TripleKey key(Kind kind, Domain domain, std::uint64_t index) {
  return {static_cast<std::uint8_t>(kind), static_cast<std::uint8_t>(domain),
          index};
}

// Deterministic rate draw: a pure hash of (seed, kind, domain, index)
// mapped to [0, 1).  No state, so thread interleaving cannot change it.
double rate_draw(std::uint64_t seed, Kind kind, Domain domain,
                 std::uint64_t index) {
  std::uint64_t h = splitmix64(seed ^ (std::uint64_t{0xfa17} << 48));
  h = splitmix64(h ^ (static_cast<std::uint64_t>(kind) << 8) ^
                 static_cast<std::uint64_t>(domain));
  h = splitmix64(h ^ index);
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

void configure(const Config& config) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_config = config;
  g_fired.clear();
  g_triggered.clear();
  g_enabled.store(config.enabled, std::memory_order_release);
}

void reset() {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_enabled.store(false, std::memory_order_release);
  g_config = Config{};
  g_fired.clear();
  g_triggered.clear();
}

bool enabled() { return g_enabled.load(std::memory_order_relaxed); }

Scope::Scope(Domain domain, std::uint64_t index)
    : prev_domain_(t_domain), prev_index_(t_index) {
  t_domain = domain;
  t_index = index;
}

Scope::~Scope() {
  t_domain = prev_domain_;
  t_index = prev_index_;
}

bool should(Kind kind) {
  if (!g_enabled.load(std::memory_order_relaxed)) return false;
  const Domain domain = t_domain;
  const std::uint64_t index = t_index;
  if (domain == Domain::kNone) return false;

  std::lock_guard<std::mutex> lock(g_mutex);
  if (!g_config.enabled) return false;

  bool selected = false;
  for (const Target& t : g_config.targets) {
    if (t.kind == kind && t.domain == domain &&
        (t.index == index || t.index == kAnyIndex)) {
      selected = true;
      break;
    }
  }
  if (!selected && g_config.rate > 0.0) {
    selected = rate_draw(g_config.seed, kind, domain, index) < g_config.rate;
  }
  if (!selected) return false;

  const auto k = key(kind, domain, index);
  const bool first = g_fired.insert(k).second;
  if (g_config.transient && !first) return false;  // retry probes succeed
  g_triggered.push_back({kind, domain, index});
  return true;
}

void maybe_throw(Kind kind) {
  if (!should(kind)) return;
  switch (kind) {
    case Kind::kConvergenceStall:
      throw FlowException(FlowError{FaultCode::kNonConvergence, kNoWindowId,
                                    "fault.injected",
                                    "injected convergence stall"});
    case Kind::kCacheInsert:
    case Kind::kAlloc:
      throw std::bad_alloc();
    case Kind::kNanPixel:
      // Data-corruption kind: sites use should() and poison the image
      // themselves so the isfinite guard is what raises the fault.
      break;
    case Kind::kIoEnospc:
    case Kind::kIoEio:
    case Kind::kIoShortWrite:
      // Errno kinds: the vfs shim uses should() and returns the matching
      // syscall failure itself — injection must exercise the caller's
      // real error path, not an exception path it does not have.
      break;
  }
}

std::vector<Triggered> triggered() {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::vector<Triggered> out = g_triggered;
  std::sort(out.begin(), out.end(), [](const Triggered& a, const Triggered& b) {
    return std::tie(a.domain, a.index, a.kind) <
           std::tie(b.domain, b.index, b.kind);
  });
  return out;
}

}  // namespace poc::fault
