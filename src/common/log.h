// Minimal leveled logger.  Flow code reports progress at Info; inner loops
// stay silent.  Output goes to stderr so bench tables on stdout stay clean.
#pragma once

#include <sstream>
#include <string>

namespace poc {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

void log_message(LogLevel level, const std::string& msg);

namespace detail {
template <typename... Args>
void log_fmt(LogLevel level, const Args&... args) {
  if (level < log_level()) return;
  std::ostringstream os;
  (os << ... << args);
  log_message(level, os.str());
}
}  // namespace detail

template <typename... Args>
void log_debug(const Args&... args) {
  detail::log_fmt(LogLevel::kDebug, args...);
}
template <typename... Args>
void log_info(const Args&... args) {
  detail::log_fmt(LogLevel::kInfo, args...);
}
template <typename... Args>
void log_warn(const Args&... args) {
  detail::log_fmt(LogLevel::kWarn, args...);
}
template <typename... Args>
void log_error(const Args&... args) {
  detail::log_fmt(LogLevel::kError, args...);
}

}  // namespace poc
