#include "src/common/error.h"

#include <exception>
#include <ios>
#include <new>
#include <system_error>

namespace poc {

const char* fault_code_name(FaultCode code) {
  switch (code) {
    case FaultCode::kUnknown:
      return "unknown";
    case FaultCode::kCheckFailed:
      return "check_failed";
    case FaultCode::kNonFinite:
      return "non_finite";
    case FaultCode::kNonConvergence:
      return "non_convergence";
    case FaultCode::kAllocFailure:
      return "alloc_failure";
    case FaultCode::kMeasurement:
      return "measurement";
    case FaultCode::kCancelled:
      return "cancelled";
    case FaultCode::kJournalIo:
      return "journal_io";
    case FaultCode::kJournalMismatch:
      return "journal_mismatch";
    case FaultCode::kStalled:
      return "stalled";
    case FaultCode::kCacheIo:
      return "cache_io";
  }
  return "invalid";
}

std::string FlowError::to_string() const {
  std::string s = "[";
  s += fault_code_name(code);
  if (window != kNoWindowId) {
    s += " window=";
    s += std::to_string(window);
  }
  if (!origin.empty()) {
    s += " at ";
    s += origin;
  }
  s += "]";
  if (!message.empty()) {
    s += " ";
    s += message;
  }
  return s;
}

FlowError capture_flow_error(std::uint64_t window, std::string_view origin) {
  try {
    throw;  // rethrow the exception in flight; callers invoke us from catch
  } catch (const FlowException& e) {
    FlowError err = e.error();
    if (err.window == kNoWindowId) err.window = window;
    return err;
  } catch (const CheckError& e) {
    return FlowError{FaultCode::kCheckFailed, window, std::string(origin),
                     e.what()};
  } catch (const std::bad_alloc& e) {
    return FlowError{FaultCode::kAllocFailure, window, std::string(origin),
                     e.what()};
  } catch (const std::ios_base::failure& e) {
    // Stream-based journal I/O reports through iostream failure states.
    return FlowError{FaultCode::kJournalIo, window, std::string(origin),
                     e.what()};
  } catch (const std::system_error& e) {
    // OS-level I/O faults (open/write/fsync/rename on the journal path)
    // surface as system_error; classify them as journal I/O so the flow's
    // health report separates durability faults from compute faults.
    return FlowError{FaultCode::kJournalIo, window, std::string(origin),
                     e.what()};
  } catch (const std::exception& e) {
    return FlowError{FaultCode::kUnknown, window, std::string(origin),
                     e.what()};
  } catch (...) {
    return FlowError{FaultCode::kUnknown, window, std::string(origin),
                     "non-std exception"};
  }
}

}  // namespace poc
