// Lightweight precondition / invariant checking in the spirit of the
// Core Guidelines' Expects/Ensures.  Violations throw, so tests can assert
// on misuse, and release builds keep the checks (they are cheap relative to
// the simulation work this library does).
#pragma once

#include <stdexcept>
#include <string>

namespace poc {

class CheckError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

[[noreturn]] inline void check_fail(const char* kind, const char* expr,
                                    const char* file, int line) {
  throw CheckError(std::string(kind) + " failed: " + expr + " at " + file +
                   ":" + std::to_string(line));
}

}  // namespace poc

#define POC_EXPECTS(cond)                                      \
  do {                                                         \
    if (!(cond)) ::poc::check_fail("Expects", #cond, __FILE__, __LINE__); \
  } while (0)

#define POC_ENSURES(cond)                                      \
  do {                                                         \
    if (!(cond)) ::poc::check_fail("Ensures", #cond, __FILE__, __LINE__); \
  } while (0)
