#include "src/common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "src/common/check.h"

namespace poc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  sum_sq_ += x * x;
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
  sum_ += other.sum_;
  sum_sq_ += other.sum_sq_;
}

double RunningStats::mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }

double RunningStats::variance() const {
  if (n_ == 0) return 0.0;
  const double m = mean();
  const double v = sum_sq_ / static_cast<double>(n_) - m * m;
  return v > 0.0 ? v : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }
double RunningStats::min() const { return min_; }
double RunningStats::max() const { return max_; }

double percentile(std::vector<double> values, double p) {
  POC_EXPECTS(!values.empty());
  POC_EXPECTS(p >= 0.0 && p <= 1.0);
  std::sort(values.begin(), values.end());
  const double idx = p * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

std::vector<double> ranks_of(std::span<const double> values) {
  const std::size_t n = values.size();
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return values[a] < values[b]; });
  std::vector<double> ranks(n, 0.0);
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j + 1 < n && values[order[j + 1]] == values[order[i]]) ++j;
    // Average rank for the tie group [i, j].
    const double avg = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (std::size_t k = i; k <= j; ++k) ranks[order[k]] = avg;
    i = j + 1;
  }
  return ranks;
}

double pearson(std::span<const double> a, std::span<const double> b) {
  POC_EXPECTS(a.size() == b.size());
  POC_EXPECTS(a.size() >= 2);
  const double n = static_cast<double>(a.size());
  double ma = 0.0, mb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= n;
  mb /= n;
  double cov = 0.0, va = 0.0, vb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    cov += (a[i] - ma) * (b[i] - mb);
    va += (a[i] - ma) * (a[i] - ma);
    vb += (b[i] - mb) * (b[i] - mb);
  }
  if (va <= 0.0 || vb <= 0.0) return 0.0;
  return cov / std::sqrt(va * vb);
}

double spearman(std::span<const double> a, std::span<const double> b) {
  const auto ra = ranks_of(a);
  const auto rb = ranks_of(b);
  return pearson(ra, rb);
}

double kendall_tau(std::span<const double> a, std::span<const double> b) {
  POC_EXPECTS(a.size() == b.size());
  const std::size_t n = a.size();
  POC_EXPECTS(n >= 2);
  long long concordant = 0, discordant = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      const double prod = da * db;
      if (prod > 0) ++concordant;
      else if (prod < 0) ++discordant;
    }
  }
  const double pairs = static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  return static_cast<double>(concordant - discordant) / pairs;
}

Histogram Histogram::build(std::span<const double> values, double lo, double hi,
                           std::size_t n_bins) {
  POC_EXPECTS(hi > lo);
  POC_EXPECTS(n_bins > 0);
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.bins.assign(n_bins, 0);
  const double width = (hi - lo) / static_cast<double>(n_bins);
  for (double v : values) {
    auto idx = static_cast<long long>((v - lo) / width);
    idx = std::clamp<long long>(idx, 0, static_cast<long long>(n_bins) - 1);
    ++h.bins[static_cast<std::size_t>(idx)];
  }
  return h;
}

std::string Histogram::render(std::size_t max_width) const {
  std::size_t peak = 1;
  for (auto c : bins) peak = std::max(peak, c);
  const double width = (hi - lo) / static_cast<double>(bins.size());
  std::ostringstream os;
  for (std::size_t i = 0; i < bins.size(); ++i) {
    const double b_lo = lo + width * static_cast<double>(i);
    const double b_hi = b_lo + width;
    const std::size_t bar =
        bins[i] == 0 ? 0
                     : std::max<std::size_t>(1, bins[i] * max_width / peak);
    os.setf(std::ios::fixed);
    os.precision(2);
    os << "[" << b_lo << ", " << b_hi << ")\t" << bins[i] << "\t"
       << std::string(bar, '#') << "\n";
  }
  return os.str();
}

}  // namespace poc
