#include "src/device/nonrect.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace poc {
namespace {

/// Generic monotone-decreasing bisection solve of f(L) == target.
template <typename F>
double solve_decreasing(F f, double target, double lo, double hi) {
  POC_EXPECTS(hi > lo);
  // f decreases with L; clamp targets outside the bracket.
  if (target >= f(lo)) return lo;
  if (target <= f(hi)) return hi;
  for (int i = 0; i < 60; ++i) {
    const double mid = (lo + hi) / 2.0;
    if (f(mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return (lo + hi) / 2.0;
}

}  // namespace

double solve_length_for_ion(const MosfetParams& params, double ion_per_um,
                            double lo_nm, double hi_nm) {
  return solve_decreasing(
      [&](double l) { return params.ion_per_um(l); }, ion_per_um, lo_nm,
      hi_nm);
}

double solve_length_for_ioff(const MosfetParams& params, double ioff_per_um,
                             double lo_nm, double hi_nm) {
  return solve_decreasing(
      [&](double l) { return params.ioff_per_um(l); }, ioff_per_um, lo_nm,
      hi_nm);
}

EquivalentGate equivalent_gate(const GateCdProfile& profile, double width_nm,
                               const MosfetParams& params) {
  POC_EXPECTS(!profile.slice_cd_nm.empty());
  POC_EXPECTS(width_nm > 0.0);
  EquivalentGate eq;
  eq.width_um = nm_to_um(width_nm);
  const double slice_w_um =
      eq.width_um / static_cast<double>(profile.slice_cd_nm.size());

  double cd_sum = 0.0;
  for (double cd : profile.slice_cd_nm) {
    if (cd <= 0.0) {
      // A pinched slice conducts no drive current and adds no leakage; it
      // also marks the device as electrically suspect.
      eq.functional = false;
      continue;
    }
    eq.ion_ua += slice_w_um * params.ion_per_um(cd);
    eq.ioff_ua += slice_w_um * params.ioff_per_um(cd);
    cd_sum += cd;
  }
  const std::size_t printed =
      static_cast<std::size_t>(std::count_if(profile.slice_cd_nm.begin(),
                                             profile.slice_cd_nm.end(),
                                             [](double c) { return c > 0.0; }));
  eq.l_mean_nm = printed ? cd_sum / static_cast<double>(printed) : 0.0;
  if (eq.ion_ua > 0.0) {
    eq.l_eff_drive_nm = solve_length_for_ion(params, eq.ion_ua / eq.width_um);
  }
  if (eq.ioff_ua > 0.0) {
    eq.l_eff_leak_nm = solve_length_for_ioff(params, eq.ioff_ua / eq.width_um);
  }
  return eq;
}

double EquivalentGate::drive_ratio_vs(double drawn_l_nm,
                                      const MosfetParams& p) const {
  const double base = p.ion_per_um(drawn_l_nm) * width_um;
  return base > 0.0 ? ion_ua / base : 0.0;
}

double EquivalentGate::leak_ratio_vs(double drawn_l_nm,
                                     const MosfetParams& p) const {
  const double base = p.ioff_per_um(drawn_l_nm) * width_um;
  return base > 0.0 ? ioff_ua / base : 0.0;
}

}  // namespace poc
