// Non-rectangular transistor model (after Poppe, Wu, Neureuther, Capodieci,
// "From poly line to transistor", SPIE 2006, referenced by the paper's
// flow): the litho-printed gate is decomposed into slices along the channel
// width, each slice conducting as a rectangular device of its measured CD.
// Summed slice currents define TWO equivalent rectangular lengths — one
// matching total drive current (delay analysis) and one matching total
// leakage (power/noise analysis).  They differ because leakage weights
// short-CD slices exponentially.
#pragma once

#include "src/cdx/cd_extract.h"
#include "src/device/mosfet.h"

namespace poc {

struct EquivalentGate {
  double width_um = 0.0;        ///< total channel width
  double ion_ua = 0.0;          ///< summed slice drive current
  double ioff_ua = 0.0;         ///< summed slice leakage
  double l_eff_drive_nm = 0.0;  ///< rectangular L matching ion_ua
  double l_eff_leak_nm = 0.0;   ///< rectangular L matching ioff_ua
  double l_mean_nm = 0.0;       ///< naive average CD (the model the paper's
                                ///< approach replaces)
  bool functional = true;       ///< false if any slice failed to print

  /// Drive ratio vs the drawn-device baseline (>1 = faster than drawn).
  double drive_ratio_vs(double drawn_l_nm, const MosfetParams& p) const;
  /// Leakage ratio vs the drawn-device baseline.
  double leak_ratio_vs(double drawn_l_nm, const MosfetParams& p) const;
};

/// Builds the equivalent gate from a measured CD profile.
/// `width_nm` is the drawn channel width the profile spans.
EquivalentGate equivalent_gate(const GateCdProfile& profile, double width_nm,
                               const MosfetParams& params);

/// Solves Ion(L) == target for L by bisection over [lo, hi] nm.
double solve_length_for_ion(const MosfetParams& params, double ion_per_um,
                            double lo_nm = 40.0, double hi_nm = 250.0);

/// Solves Ioff(L) == target for L by bisection over [lo, hi] nm.
double solve_length_for_ioff(const MosfetParams& params, double ioff_per_um,
                             double lo_nm = 40.0, double hi_nm = 250.0);

}  // namespace poc
