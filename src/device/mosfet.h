// Alpha-power-law MOSFET model (Sakurai-Newton) with channel-length
// dependent threshold (Vth roll-off).  This is the repo's BSIM substitute:
// it reproduces the two behaviours the paper's timing flow depends on —
// drive current rising roughly as 1/L (delay) and leakage rising
// exponentially as L shrinks (power) — without a proprietary model card.
#pragma once

#include "src/common/units.h"

namespace poc {

struct MosfetParams {
  bool is_nmos = true;
  double vdd = 1.2;           ///< supply (V)
  double vth_long = 0.40;     ///< long-channel threshold magnitude (V)
  double dvt_rolloff = 1.0;   ///< roll-off amplitude (V)
  double rolloff_lc_nm = 30.0;  ///< roll-off decay length
  double alpha = 1.30;        ///< velocity-saturation exponent
  double k_ua_per_um = 740.0;  ///< drive factor: Ion at L_ref, (Vdd-Vth)=1V
  double l_ref_nm = 90.0;     ///< reference channel length
  double kv_sat = 0.9;        ///< Vdsat = kv_sat * (Vgs-Vth)^(alpha/2)
  double subthreshold_n = 1.5;  ///< subthreshold slope factor
  double i0_leak_ua_per_um = 82.0;  ///< Ioff prefactor (uA/um)
  double temp_vt = 0.0259;    ///< kT/q at 300 K

  static MosfetParams nmos();
  static MosfetParams pmos();

  /// Threshold magnitude at channel length L (nm); shorter L -> lower Vth.
  double vth(double l_nm) const;

  /// Saturation drive current per um of width at |Vgs| = Vdd (uA/um).
  double ion_per_um(double l_nm) const;

  /// Subthreshold leakage per um of width at |Vgs| = 0 (uA/um).
  double ioff_per_um(double l_nm) const;

  /// Full I-V surface (uA/um): terminal voltages are magnitudes for the
  /// carrier type (for PMOS pass |Vgs|, |Vds|).  Continuous across the
  /// linear/saturation boundary; smooth subthreshold floor below Vth.
  double id_per_um(double vgs, double vds, double l_nm) const;
};

}  // namespace poc
