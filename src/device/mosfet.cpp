#include "src/device/mosfet.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace poc {

MosfetParams MosfetParams::nmos() { return MosfetParams{}; }

MosfetParams MosfetParams::pmos() {
  MosfetParams p;
  p.is_nmos = false;
  p.vth_long = 0.42;
  p.k_ua_per_um = 370.0;  // ~2x mobility penalty vs NMOS
  p.i0_leak_ua_per_um = 41.0;
  return p;
}

double MosfetParams::vth(double l_nm) const {
  POC_EXPECTS(l_nm > 0.0);
  return vth_long - dvt_rolloff * std::exp(-l_nm / rolloff_lc_nm);
}

double MosfetParams::ion_per_um(double l_nm) const {
  return id_per_um(vdd, vdd, l_nm);
}

double MosfetParams::ioff_per_um(double l_nm) const {
  return i0_leak_ua_per_um * (l_ref_nm / l_nm) *
         std::exp(-vth(l_nm) / (subthreshold_n * temp_vt));
}

double MosfetParams::id_per_um(double vgs, double vds, double l_nm) const {
  POC_EXPECTS(l_nm > 0.0);
  if (vds <= 0.0) return 0.0;
  const double vt_l = vth(l_nm);
  const double nvt = subthreshold_n * temp_vt;
  const double vds_factor = 1.0 - std::exp(-vds / temp_vt);
  if (vgs <= vt_l) {
    // Subthreshold: exponential in Vgs, saturating in Vds.
    return i0_leak_ua_per_um * (l_ref_nm / l_nm) *
           std::exp((vgs - vt_l) / nvt) * vds_factor;
  }
  // Strong inversion, with the subthreshold current pinned at its Vth value
  // added so the surface is continuous across the threshold.
  const double vov = vgs - vt_l;
  const double idsat = k_ua_per_um * (l_ref_nm / l_nm) * std::pow(vov, alpha);
  const double vdsat = kv_sat * std::pow(vov, alpha / 2.0);
  const double x = vds / vdsat;
  const double strong = vds >= vdsat ? idsat : idsat * x * (2.0 - x);
  return strong + i0_leak_ua_per_um * (l_ref_nm / l_nm) * vds_factor;
}

}  // namespace poc
