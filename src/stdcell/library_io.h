// Text cache for characterized cell timing (a minimal Liberty stand-in).
// The cache records the slew/load axes and every table; loading validates
// that the cell set and characterization axes match the current build.
#pragma once

#include <optional>
#include <string>

#include "src/stdcell/library.h"

namespace poc {

void save_library(const StdCellLibrary& lib, const std::string& path);

/// Returns nullopt when the file is missing, malformed, or characterized
/// with different cells/axes than `params` expects.
std::optional<StdCellLibrary> try_load_library(const std::string& path,
                                               const CharParams& params);

}  // namespace poc
