// Non-linear delay model tables: delay and output slew as functions of
// (input slew, output load), the same two-axis lookup the Liberty NLDM
// format uses.  Lookup is bilinear inside the grid and clamped-linear
// outside it.
#pragma once

#include <string>
#include <vector>

#include "src/common/units.h"

namespace poc {

class NldmTable {
 public:
  NldmTable() = default;
  NldmTable(std::vector<Ps> slew_axis, std::vector<Ff> load_axis);

  void set(std::size_t slew_idx, std::size_t load_idx, double value);
  double get(std::size_t slew_idx, std::size_t load_idx) const;

  /// Bilinear interpolation; axes are clamped at the grid edge (a standard
  /// sign-off-tool behaviour that avoids wild extrapolation).
  double lookup(Ps slew, Ff load) const;

  const std::vector<Ps>& slew_axis() const { return slews_; }
  const std::vector<Ff>& load_axis() const { return loads_; }
  bool empty() const { return values_.empty(); }

  /// Multiplies every entry (used by CD back-annotation scaling).
  NldmTable scaled(double factor) const;

 private:
  std::vector<Ps> slews_;
  std::vector<Ff> loads_;
  std::vector<double> values_;  // row-major [slew][load]
};

/// One characterized input->output arc of a cell.  All library cells are
/// single-stage negative-unate static CMOS: input rise causes output fall
/// and vice versa.
struct TimingArc {
  std::string input;
  /// Output-fall tables (triggered by input rise): pull-down network.
  NldmTable delay_fall;
  NldmTable slew_fall;
  /// Output-rise tables (triggered by input fall): pull-up network.
  NldmTable delay_rise;
  NldmTable slew_rise;
};

struct CellTiming {
  std::string cell;
  std::vector<TimingArc> arcs;
  std::vector<Ff> input_caps;   ///< per input pin, same order as arcs
  double leakage_ua = 0.0;      ///< state-averaged cell leakage
  Ff output_self_cap = 0.0;     ///< drain junction cap seen at the output

  const TimingArc& arc_for(const std::string& input) const;
};

}  // namespace poc
