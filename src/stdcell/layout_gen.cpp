#include "src/stdcell/layout_gen.h"

#include "src/common/check.h"

namespace poc {
namespace {

// Vertical frame of the cell (nm), derived from Tech but fixed here for the
// default 2400 nm row:
struct Frame {
  DbUnit nact_lo, nact_hi;  ///< NMOS active strip
  DbUnit pact_lo, pact_hi;  ///< PMOS active strip
  DbUnit pad_lo, pad_hi;    ///< poly landing pad band (between actives)
  DbUnit poly_lo, poly_hi;  ///< poly finger vertical extent
  DbUnit finger_pitch;
  DbUnit edge_margin;       ///< cell edge to first finger
  DbUnit pad_overhang;      ///< pad extension past the finger each side

  static Frame from_tech(const Tech& t) {
    Frame f;
    f.nact_lo = 300;
    f.nact_hi = f.nact_lo + t.nmos_width;          // 900
    f.pact_hi = t.cell_height - 200;               // 2200
    f.pact_lo = f.pact_hi - t.pmos_width;          // 1300
    f.pad_lo = f.nact_hi + 100;                    // 1000
    f.pad_hi = f.pad_lo + 140;                     // 1140
    f.poly_lo = f.nact_lo - t.active_to_poly;      // 200
    f.poly_hi = f.pact_hi + t.active_to_poly;      // 2300
    f.finger_pitch = 300;
    f.edge_margin = 105;
    f.pad_overhang = 25;
    return f;
  }
};

/// A poly finger with its landing pad as one plus-shaped polygon.
Polygon finger_polygon(DbUnit x, const Tech& tech, const Frame& f) {
  const DbUnit xl = x;
  const DbUnit xr = x + tech.gate_length;
  const DbUnit pxl = xl - f.pad_overhang;
  const DbUnit pxr = xr + f.pad_overhang;
  return Polygon({{xl, f.poly_lo},
                  {xr, f.poly_lo},
                  {xr, f.pad_lo},
                  {pxr, f.pad_lo},
                  {pxr, f.pad_hi},
                  {xr, f.pad_hi},
                  {xr, f.poly_hi},
                  {xl, f.poly_hi},
                  {xl, f.pad_hi},
                  {pxl, f.pad_hi},
                  {pxl, f.pad_lo},
                  {xl, f.pad_lo}});
}

}  // namespace

std::size_t finger_count(const CellSpec& spec) {
  return spec.inputs.size() * static_cast<std::size_t>(spec.drive);
}

DbUnit cell_width(const CellSpec& spec, const Tech& tech) {
  (void)tech;
  const Frame f = Frame::from_tech(tech);
  return static_cast<DbUnit>(finger_count(spec)) * f.finger_pitch;
}

CellLayout generate_cell_layout(const CellSpec& spec, const Tech& tech) {
  const Frame f = Frame::from_tech(tech);
  const DbUnit width = cell_width(spec, tech);
  CellLayout cell;
  cell.name = spec.name;
  cell.boundary = {0, 0, width, tech.cell_height};

  // Wells and actives.
  cell.add_rect(Layer::kNwell, {0, (f.pad_lo + f.pad_hi) / 2, width,
                                tech.cell_height});
  cell.add_rect(Layer::kActive, {40, f.nact_lo, width - 40, f.nact_hi});
  cell.add_rect(Layer::kActive, {40, f.pact_lo, width - 40, f.pact_hi});

  // Poly fingers; finger k belongs to input (k / drive) so parallel fingers
  // of one input sit adjacent (sharing source/drain like real multi-finger
  // devices).  The spec's drawn L (not the tech default) sets the finger
  // width, so long-gate "_LL" variants draw wider poly in the same frame.
  const auto drawn_l = static_cast<DbUnit>(spec.drawn_l_nm);
  Tech finger_tech = tech;
  finger_tech.gate_length = drawn_l;
  const std::size_t nf = finger_count(spec);
  for (std::size_t k = 0; k < nf; ++k) {
    const DbUnit x = f.edge_margin + static_cast<DbUnit>(k) * f.finger_pitch -
                     (drawn_l - tech.gate_length) / 2;
    cell.shapes.push_back(Shape{Layer::kPoly,
                                finger_polygon(x, finger_tech, f)});
    const std::size_t pin = k / static_cast<std::size_t>(spec.drive);
    const std::string suffix =
        spec.inputs[pin] + "_" + std::to_string(k % spec.drive);
    GateInfo ng;
    ng.device = "MN_" + suffix;
    ng.is_nmos = true;
    ng.region = {x, f.nact_lo, x + drawn_l, f.nact_hi};
    ng.drawn_l = drawn_l;
    ng.drawn_w = tech.nmos_width;
    cell.gates.push_back(ng);
    GateInfo pg;
    pg.device = "MP_" + suffix;
    pg.is_nmos = false;
    pg.region = {x, f.pact_lo, x + drawn_l, f.pact_hi};
    pg.drawn_l = drawn_l;
    pg.drawn_w = tech.pmos_width;
    cell.gates.push_back(pg);
  }

  // Source/drain contacts in every gap between fingers (and the two ends).
  for (std::size_t k = 0; k <= nf; ++k) {
    const DbUnit gap_centre =
        f.edge_margin + static_cast<DbUnit>(k) * f.finger_pitch -
        (f.finger_pitch - tech.gate_length) / 2;
    const DbUnit cx = k == 0 ? f.edge_margin - 60 : gap_centre;
    const Rect c_n = Rect::from_center({cx, (f.nact_lo + f.nact_hi) / 2},
                                       tech.contact_size, tech.contact_size);
    const Rect c_p = Rect::from_center({cx, (f.pact_lo + f.pact_hi) / 2},
                                       tech.contact_size, tech.contact_size);
    if (c_n.xlo >= 0 && c_n.xhi <= width) {
      cell.add_rect(Layer::kContact, c_n);
      cell.add_rect(Layer::kContact, c_p);
    }
  }

  // Metal1: power rails and an output strap in the last finger gap.
  cell.add_rect(Layer::kMetal1, {0, 0, width, tech.rail_width});
  cell.add_rect(Layer::kMetal1,
                {0, tech.cell_height - tech.rail_width, width,
                 tech.cell_height});
  const DbUnit strap_x = width - f.finger_pitch / 2;
  cell.add_rect(Layer::kMetal1,
                {strap_x - tech.m1_width / 2, tech.rail_width + 60,
                 strap_x + tech.m1_width / 2,
                 tech.cell_height - tech.rail_width - 60});
  return cell;
}

Point pin_position(const CellSpec& spec, const Tech& tech,
                   const std::string& pin) {
  const Frame f = Frame::from_tech(tech);
  if (pin == spec.output) {
    const DbUnit strap_x = cell_width(spec, tech) - f.finger_pitch / 2;
    return {strap_x, tech.cell_height / 2};
  }
  for (std::size_t i = 0; i < spec.inputs.size(); ++i) {
    if (spec.inputs[i] != pin) continue;
    const DbUnit x = f.edge_margin +
                     static_cast<DbUnit>(i) * spec.drive * f.finger_pitch +
                     tech.gate_length / 2;
    return {x, (f.pad_lo + f.pad_hi) / 2};
  }
  check_fail("pin_position", pin.c_str(), __FILE__, __LINE__);
}

}  // namespace poc
