#include "src/stdcell/liberty_writer.h"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "src/common/check.h"

namespace poc {
namespace {

constexpr double kPsToNs = 1e-3;
constexpr double kFfToPf = 1e-3;

void write_axis(std::ostream& os, const char* name,
                const std::vector<double>& values, double scale) {
  os << "      " << name << " (\"";
  for (std::size_t i = 0; i < values.size(); ++i) {
    os << (i ? ", " : "") << values[i] * scale;
  }
  os << "\");\n";
}

void write_values(std::ostream& os, const NldmTable& t, double scale) {
  os << "        values ( \\\n";
  for (std::size_t s = 0; s < t.slew_axis().size(); ++s) {
    os << "          \"";
    for (std::size_t l = 0; l < t.load_axis().size(); ++l) {
      os << (l ? ", " : "") << t.get(s, l) * scale;
    }
    os << "\"" << (s + 1 < t.slew_axis().size() ? ", \\" : " \\") << "\n";
  }
  os << "        );\n";
}

void write_table(std::ostream& os, const char* group, const NldmTable& t) {
  os << "      " << group << " (poc_delay_template) {\n";
  write_values(os, t, kPsToNs);
  os << "      }\n";
}

/// Boolean function string for the Liberty `function` attribute.
std::string function_string(const NetExpr& pulldown,
                            const std::vector<std::string>& inputs) {
  // Output = !(pulldown conducts).
  std::ostringstream os;
  const auto emit = [&](const NetExpr& e, auto&& self) -> void {
    switch (e.kind) {
      case NetExpr::Kind::kLeaf:
        os << inputs[e.input];
        break;
      case NetExpr::Kind::kSeries: {
        os << "(";
        for (std::size_t i = 0; i < e.children.size(); ++i) {
          if (i) os << "*";
          self(e.children[i], self);
        }
        os << ")";
        break;
      }
      case NetExpr::Kind::kParallel: {
        os << "(";
        for (std::size_t i = 0; i < e.children.size(); ++i) {
          if (i) os << "+";
          self(e.children[i], self);
        }
        os << ")";
        break;
      }
    }
  };
  os << "!";
  emit(pulldown, emit);
  return os.str();
}

}  // namespace

void write_liberty(std::ostream& os, const StdCellLibrary& lib,
                   const std::string& library_name) {
  const CharParams& params = lib.char_params();
  os << std::setprecision(6);
  os << "library (" << library_name << ") {\n";
  os << "  delay_model : table_lookup;\n";
  os << "  time_unit : \"1ns\";\n";
  os << "  capacitive_load_unit (1, pf);\n";
  os << "  voltage_unit : \"1V\";\n";
  os << "  current_unit : \"1uA\";\n";
  os << "  leakage_power_unit : \"1uW\";\n";
  os << "  nom_voltage : " << params.nmos.vdd << ";\n";
  os << "  nom_temperature : 25;\n";
  os << "  nom_process : 1;\n";
  os << "  slew_lower_threshold_pct_rise : 20;\n";
  os << "  slew_upper_threshold_pct_rise : 80;\n";
  os << "  input_threshold_pct_rise : 50;\n";
  os << "  output_threshold_pct_rise : 50;\n";
  os << "  lu_table_template (poc_delay_template) {\n";
  os << "    variable_1 : input_net_transition;\n";
  os << "    variable_2 : total_output_net_capacitance;\n";
  write_axis(os, "index_1", params.slew_axis, kPsToNs);
  write_axis(os, "index_2", params.load_axis, kFfToPf);
  os << "  }\n";

  for (const CellSpec& spec : lib.specs()) {
    const CellTiming& timing = lib.timing(spec.name);
    os << "  cell (" << spec.name << ") {\n";
    os << "    cell_leakage_power : "
       << timing.leakage_ua * params.nmos.vdd << ";\n";
    for (std::size_t i = 0; i < spec.inputs.size(); ++i) {
      os << "    pin (" << spec.inputs[i] << ") {\n";
      os << "      direction : input;\n";
      os << "      capacitance : " << timing.input_caps[i] * kFfToPf << ";\n";
      os << "    }\n";
    }
    os << "    pin (" << spec.output << ") {\n";
    os << "      direction : output;\n";
    os << "      function : \"" << function_string(spec.pulldown, spec.inputs)
       << "\";\n";
    os << "      max_capacitance : "
       << params.load_axis.back() * kFfToPf << ";\n";
    for (const TimingArc& arc : timing.arcs) {
      os << "      timing () {\n";
      os << "        related_pin : \"" << arc.input << "\";\n";
      os << "        timing_sense : negative_unate;\n";
      write_table(os, "cell_rise", arc.delay_rise);
      write_table(os, "rise_transition", arc.slew_rise);
      write_table(os, "cell_fall", arc.delay_fall);
      write_table(os, "fall_transition", arc.slew_fall);
      os << "      }\n";
    }
    os << "    }\n";
    os << "  }\n";
  }
  os << "}\n";
}

std::string liberty_to_string(const StdCellLibrary& lib,
                              const std::string& library_name) {
  std::ostringstream os;
  write_liberty(os, lib, library_name);
  return os.str();
}

}  // namespace poc
