// Liberty (.lib) export of the characterized library, so the cells this
// repo characterizes can be consumed by external tools (OpenSTA, yosys).
// Emits a minimal but syntactically standard NLDM library: lu_table
// templates, pin capacitances, leakage, and negative-unate timing arcs
// with delay/transition tables.
#pragma once

#include <iosfwd>
#include <string>

#include "src/stdcell/library.h"

namespace poc {

/// Writes the whole library as Liberty text.  Units: ns, pF, kohm (values
/// are converted from the library's internal ps/fF).
void write_liberty(std::ostream& os, const StdCellLibrary& lib,
                   const std::string& library_name = "poc90");

std::string liberty_to_string(const StdCellLibrary& lib,
                              const std::string& library_name = "poc90");

}  // namespace poc
