#include "src/stdcell/cell_spec.h"

#include <algorithm>

#include "src/common/check.h"

namespace poc {

NetExpr NetExpr::leaf(std::size_t input) {
  NetExpr e;
  e.kind = Kind::kLeaf;
  e.input = input;
  return e;
}

NetExpr NetExpr::series(std::vector<NetExpr> children) {
  POC_EXPECTS(children.size() >= 2);
  NetExpr e;
  e.kind = Kind::kSeries;
  e.children = std::move(children);
  return e;
}

NetExpr NetExpr::parallel(std::vector<NetExpr> children) {
  POC_EXPECTS(children.size() >= 2);
  NetExpr e;
  e.kind = Kind::kParallel;
  e.children = std::move(children);
  return e;
}

NetExpr NetExpr::dual() const {
  if (kind == Kind::kLeaf) return *this;
  NetExpr e;
  e.kind = kind == Kind::kSeries ? Kind::kParallel : Kind::kSeries;
  for (const NetExpr& c : children) e.children.push_back(c.dual());
  return e;
}

bool NetExpr::conducts(const std::vector<bool>& values) const {
  switch (kind) {
    case Kind::kLeaf:
      POC_EXPECTS(input < values.size());
      return values[input];
    case Kind::kSeries:
      return std::all_of(children.begin(), children.end(),
                         [&](const NetExpr& c) { return c.conducts(values); });
    case Kind::kParallel:
      return std::any_of(children.begin(), children.end(),
                         [&](const NetExpr& c) { return c.conducts(values); });
  }
  return false;
}

std::size_t NetExpr::num_devices() const {
  if (kind == Kind::kLeaf) return 1;
  std::size_t n = 0;
  for (const NetExpr& c : children) n += c.num_devices();
  return n;
}

std::size_t NetExpr::stack_depth() const {
  switch (kind) {
    case Kind::kLeaf:
      return 1;
    case Kind::kSeries: {
      std::size_t d = 0;
      for (const NetExpr& c : children) d += c.stack_depth();
      return d;
    }
    case Kind::kParallel: {
      std::size_t d = 0;
      for (const NetExpr& c : children) d = std::max(d, c.stack_depth());
      return d;
    }
  }
  return 1;
}

bool CellSpec::eval(const std::vector<bool>& values) const {
  // Static CMOS: output is low exactly when the pull-down conducts.
  return !pulldown.conducts(values);
}

std::vector<bool> CellSpec::noncontrolling_for(std::size_t arc_input) const {
  POC_EXPECTS(arc_input < inputs.size());
  const std::size_t n = inputs.size();
  for (std::size_t mask = 0; mask < (1u << n); ++mask) {
    std::vector<bool> values(n);
    for (std::size_t i = 0; i < n; ++i) values[i] = (mask >> i) & 1u;
    values[arc_input] = true;
    const bool out_hi = pulldown.conducts(values);
    values[arc_input] = false;
    const bool out_lo = pulldown.conducts(values);
    if (out_hi && !out_lo) return values;  // input controls the output
  }
  check_fail("noncontrolling_for", inputs[arc_input].c_str(), __FILE__,
             __LINE__);
}

std::vector<CellSpec> standard_cell_specs() {
  std::vector<CellSpec> specs;
  const auto a = NetExpr::leaf(0);
  const auto b = NetExpr::leaf(1);
  const auto c = NetExpr::leaf(2);

  const auto add = [&](std::string name, std::vector<std::string> inputs,
                       NetExpr pd, int drive) {
    CellSpec s;
    s.name = std::move(name);
    s.inputs = std::move(inputs);
    s.pulldown = std::move(pd);
    s.drive = drive;
    specs.push_back(std::move(s));
  };

  add("INV_X1", {"A"}, a, 1);
  add("INV_X2", {"A"}, a, 2);
  add("INV_X4", {"A"}, a, 4);
  add("NAND2_X1", {"A", "B"}, NetExpr::series({a, b}), 1);
  add("NAND2_X2", {"A", "B"}, NetExpr::series({a, b}), 2);
  add("NAND3_X1", {"A", "B", "C"}, NetExpr::series({a, b, c}), 1);
  add("NOR2_X1", {"A", "B"}, NetExpr::parallel({a, b}), 1);
  add("NOR2_X2", {"A", "B"}, NetExpr::parallel({a, b}), 2);
  add("NOR3_X1", {"A", "B", "C"}, NetExpr::parallel({a, b, c}), 1);
  add("AOI21_X1", {"A", "B", "C"},
      NetExpr::parallel({NetExpr::series({a, b}), c}), 1);
  add("OAI21_X1", {"A", "B", "C"},
      NetExpr::series({NetExpr::parallel({a, b}), c}), 1);

  // Long-channel "_LL" variants for gate-length-biasing leakage recovery
  // (selective L-biasing, a design-intent DFM technique the paper's flow
  // enables): same footprint and pin placement, drawn L stretched 8 nm —
  // slightly slower, exponentially less leaky.
  const std::size_t base_count = specs.size();
  for (std::size_t i = 0; i < base_count; ++i) {
    CellSpec ll = specs[i];
    ll.name += "_LL";
    ll.drawn_l_nm = kLongGateLengthNm;
    specs.push_back(std::move(ll));
  }
  return specs;
}

std::string long_gate_variant(const std::string& cell_name) {
  return cell_name + "_LL";
}

const CellSpec& find_spec(const std::vector<CellSpec>& specs,
                          const std::string& name) {
  for (const CellSpec& s : specs) {
    if (s.name == name) return s;
  }
  check_fail("find_spec", name.c_str(), __FILE__, __LINE__);
}

}  // namespace poc
