// Procedural standard-cell layout generation: vertical poly fingers with
// gate-landing pads crossing NMOS/PMOS active strips, power rails, output
// strap and contacts, inside a fixed-height abutment frame.  Gate regions
// are annotated so post-OPC CD extraction knows exactly where every channel
// is.
#pragma once

#include "src/layout/layout_db.h"
#include "src/layout/tech.h"
#include "src/stdcell/cell_spec.h"

namespace poc {

/// Number of poly fingers the cell draws (inputs x drive).
std::size_t finger_count(const CellSpec& spec);

/// Cell width in nm for row placement (multiple of the placement site).
DbUnit cell_width(const CellSpec& spec, const Tech& tech);

/// Generates the full cell layout with gate annotations.  Device names are
/// "MN_<pin>_<finger>" / "MP_<pin>_<finger>".
CellLayout generate_cell_layout(const CellSpec& spec, const Tech& tech);

/// Connection point (cell coordinates) for an input pin (the poly landing
/// pad of the pin's first finger) or the output pin (the M1 strap centre).
Point pin_position(const CellSpec& spec, const Tech& tech,
                   const std::string& pin);

}  // namespace poc
