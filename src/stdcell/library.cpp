#include "src/stdcell/library.h"

#include <filesystem>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/stdcell/layout_gen.h"
#include "src/stdcell/library_io.h"

namespace poc {

StdCellLibrary StdCellLibrary::characterize_all(const CharParams& params) {
  StdCellLibrary lib;
  lib.params_ = params;
  lib.specs_ = standard_cell_specs();
  for (const CellSpec& spec : lib.specs_) {
    log_info("characterizing ", spec.name);
    lib.timings_.push_back(characterize_cell(spec, params));
  }
  return lib;
}

StdCellLibrary StdCellLibrary::load_or_characterize(const std::string& path,
                                                    const CharParams& params) {
  if (std::filesystem::exists(path)) {
    auto loaded = try_load_library(path, params);
    if (loaded) {
      log_info("loaded cell library cache from ", path);
      return std::move(*loaded);
    }
    log_warn("cell library cache at ", path, " is stale; re-characterizing");
  }
  StdCellLibrary lib = characterize_all(params);
  save_library(lib, path);
  log_info("wrote cell library cache to ", path);
  return lib;
}

const CellSpec& StdCellLibrary::spec(const std::string& name) const {
  return find_spec(specs_, name);
}

const CellTiming& StdCellLibrary::timing(const std::string& name) const {
  for (std::size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) return timings_[i];
  }
  check_fail("timing", name.c_str(), __FILE__, __LINE__);
}

bool StdCellLibrary::has_cell(const std::string& name) const {
  for (const CellSpec& s : specs_) {
    if (s.name == name) return true;
  }
  return false;
}

CellLayout StdCellLibrary::layout(const std::string& name,
                                  const Tech& tech) const {
  return generate_cell_layout(spec(name), tech);
}

StdCellLibrary library_from_parts(std::vector<CellSpec> specs,
                                  std::vector<CellTiming> timings,
                                  CharParams params) {
  POC_EXPECTS(specs.size() == timings.size());
  StdCellLibrary lib;
  lib.specs_ = std::move(specs);
  lib.timings_ = std::move(timings);
  lib.params_ = std::move(params);
  return lib;
}

}  // namespace poc
