// Logical/electrical specification of library cells: a series/parallel
// switch network for the NMOS pull-down; the PMOS pull-up is its dual.
// All cells are single-stage negative-unate static CMOS.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace poc {

/// Series/parallel switch-network expression over cell inputs.
struct NetExpr {
  enum class Kind { kLeaf, kSeries, kParallel };
  Kind kind = Kind::kLeaf;
  std::size_t input = 0;          ///< leaf: controlling input index
  std::vector<NetExpr> children;  ///< series/parallel operands

  static NetExpr leaf(std::size_t input);
  static NetExpr series(std::vector<NetExpr> children);
  static NetExpr parallel(std::vector<NetExpr> children);

  /// Dual network (series <-> parallel): the complementary PMOS pull-up.
  NetExpr dual() const;

  /// Conduction under the given input assignment.
  bool conducts(const std::vector<bool>& values) const;

  /// Number of switches (transistors) in the network.
  std::size_t num_devices() const;

  /// Maximum series stack depth (used to scale stack device widths).
  std::size_t stack_depth() const;
};

struct CellSpec {
  std::string name;
  std::vector<std::string> inputs;
  std::string output = "Y";
  NetExpr pulldown;            ///< between output and ground
  double nmos_w_um = 0.6;      ///< per-device width before drive scaling
  double pmos_w_um = 0.9;
  int drive = 1;               ///< parallel-finger multiplier (X1, X2, ...)
  double drawn_l_nm = 90.0;

  NetExpr pullup() const { return pulldown.dual(); }

  /// Logic value of the output for an input assignment.
  bool eval(const std::vector<bool>& values) const;

  /// Finds side-input values that make input `arc_input` control the
  /// output (non-controlling assignment).  Throws if none exists (the cell
  /// would have no timing arc from that pin).
  std::vector<bool> noncontrolling_for(std::size_t arc_input) const;
};

/// Drawn channel length of the "_LL" long-gate cell variants (nm).
constexpr double kLongGateLengthNm = 98.0;

/// The library cell set: INV_X1/X2/X4, NAND2_X1/X2, NAND3_X1, NOR2_X1/X2,
/// NOR3_X1, AOI21_X1, OAI21_X1, plus an "_LL" long-gate (98 nm) variant of
/// each for selective gate-length biasing.
std::vector<CellSpec> standard_cell_specs();

/// Name of a cell's long-gate variant ("NAND2_X1" -> "NAND2_X1_LL").
std::string long_gate_variant(const std::string& cell_name);

/// Lookup by name within a spec list.
const CellSpec& find_spec(const std::vector<CellSpec>& specs,
                          const std::string& name);

}  // namespace poc
