#include "src/stdcell/nldm.h"

#include <algorithm>

#include "src/common/check.h"

namespace poc {
namespace {

/// Finds the interpolation cell and fraction for `x` on `axis` (clamped).
std::pair<std::size_t, double> locate(const std::vector<double>& axis,
                                      double x) {
  POC_EXPECTS(axis.size() >= 2);
  if (x <= axis.front()) return {0, 0.0};
  if (x >= axis.back()) return {axis.size() - 2, 1.0};
  std::size_t i = 0;
  while (i + 2 < axis.size() && x > axis[i + 1]) ++i;
  const double f = (x - axis[i]) / (axis[i + 1] - axis[i]);
  return {i, f};
}

}  // namespace

NldmTable::NldmTable(std::vector<Ps> slew_axis, std::vector<Ff> load_axis)
    : slews_(std::move(slew_axis)), loads_(std::move(load_axis)),
      values_(slews_.size() * loads_.size(), 0.0) {
  POC_EXPECTS(slews_.size() >= 2 && loads_.size() >= 2);
  POC_EXPECTS(std::is_sorted(slews_.begin(), slews_.end()));
  POC_EXPECTS(std::is_sorted(loads_.begin(), loads_.end()));
}

void NldmTable::set(std::size_t slew_idx, std::size_t load_idx, double value) {
  POC_EXPECTS(slew_idx < slews_.size() && load_idx < loads_.size());
  values_[slew_idx * loads_.size() + load_idx] = value;
}

double NldmTable::get(std::size_t slew_idx, std::size_t load_idx) const {
  POC_EXPECTS(slew_idx < slews_.size() && load_idx < loads_.size());
  return values_[slew_idx * loads_.size() + load_idx];
}

double NldmTable::lookup(Ps slew, Ff load) const {
  POC_EXPECTS(!values_.empty());
  const auto [si, sf] = locate(slews_, slew);
  const auto [li, lf] = locate(loads_, load);
  const double v00 = get(si, li);
  const double v01 = get(si, li + 1);
  const double v10 = get(si + 1, li);
  const double v11 = get(si + 1, li + 1);
  return v00 * (1 - sf) * (1 - lf) + v01 * (1 - sf) * lf +
         v10 * sf * (1 - lf) + v11 * sf * lf;
}

NldmTable NldmTable::scaled(double factor) const {
  NldmTable out = *this;
  for (double& v : out.values_) v *= factor;
  return out;
}

const TimingArc& CellTiming::arc_for(const std::string& input) const {
  for (const TimingArc& a : arcs) {
    if (a.input == input) return a;
  }
  check_fail("arc_for", input.c_str(), __FILE__, __LINE__);
}

}  // namespace poc
