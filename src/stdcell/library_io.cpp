#include "src/stdcell/library_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "src/common/check.h"
#include "src/common/log.h"

namespace poc {
namespace {

constexpr const char* kMagic = "poclib v1";

/// Characterization fingerprint: a cache built with different device or
/// extraction parameters must be rejected.
std::string params_fingerprint(const CharParams& p) {
  std::ostringstream os;
  os << std::setprecision(10) << p.nmos.vdd << " " << p.nmos.vth_long << " "
     << p.nmos.k_ua_per_um << " " << p.nmos.alpha << " "
     << p.nmos.i0_leak_ua_per_um << " " << p.nmos.dvt_rolloff << " "
     << p.pmos.vth_long << " " << p.pmos.k_ua_per_um << " "
     << p.pmos.i0_leak_ua_per_um << " " << p.cgate_ff_per_um << " "
     << p.cdiff_ff_per_um << " " << p.settle_ps;
  return os.str();
}

void write_table(std::ostream& os, const char* tag, const NldmTable& t) {
  os << tag;
  for (std::size_t s = 0; s < t.slew_axis().size(); ++s) {
    for (std::size_t l = 0; l < t.load_axis().size(); ++l) {
      os << " " << t.get(s, l);
    }
  }
  os << "\n";
}

bool read_table(std::istream& is, const char* tag, NldmTable& t) {
  std::string kw;
  is >> kw;
  if (kw != tag) return false;
  for (std::size_t s = 0; s < t.slew_axis().size(); ++s) {
    for (std::size_t l = 0; l < t.load_axis().size(); ++l) {
      double v = 0.0;
      is >> v;
      t.set(s, l, v);
    }
  }
  return !is.fail();
}

}  // namespace

void save_library(const StdCellLibrary& lib, const std::string& path) {
  std::ofstream os(path);
  POC_EXPECTS(os.good());
  os << std::setprecision(12);
  os << kMagic << "\n";
  const CharParams& p = lib.char_params();
  os << "model " << params_fingerprint(p) << "\n";
  os << "axes " << p.slew_axis.size();
  for (Ps s : p.slew_axis) os << " " << s;
  os << " " << p.load_axis.size();
  for (Ff l : p.load_axis) os << " " << l;
  os << "\n";
  for (const CellSpec& spec : lib.specs()) {
    const CellTiming& t = lib.timing(spec.name);
    os << "cell " << spec.name << " " << t.arcs.size() << " "
       << t.leakage_ua << " " << t.output_self_cap << "\n";
    os << "incap";
    for (Ff c : t.input_caps) os << " " << c;
    os << "\n";
    for (const TimingArc& arc : t.arcs) {
      os << "arc " << arc.input << "\n";
      write_table(os, "delay_fall", arc.delay_fall);
      write_table(os, "slew_fall", arc.slew_fall);
      write_table(os, "delay_rise", arc.delay_rise);
      write_table(os, "slew_rise", arc.slew_rise);
    }
    os << "endcell\n";
  }
}

std::optional<StdCellLibrary> try_load_library(const std::string& path,
                                               const CharParams& params) {
  std::ifstream is(path);
  if (!is.good()) return std::nullopt;
  std::string line;
  if (!std::getline(is, line) || line != kMagic) return std::nullopt;
  if (!std::getline(is, line) ||
      line != "model " + params_fingerprint(params)) {
    return std::nullopt;
  }

  std::string kw;
  is >> kw;
  if (kw != "axes") return std::nullopt;
  std::size_t ns = 0, nl = 0;
  is >> ns;
  std::vector<Ps> slews(ns);
  for (Ps& s : slews) is >> s;
  is >> nl;
  std::vector<Ff> loads(nl);
  for (Ff& l : loads) is >> l;
  if (is.fail() || slews != params.slew_axis || loads != params.load_axis) {
    return std::nullopt;
  }

  std::vector<CellSpec> specs = standard_cell_specs();
  std::vector<CellTiming> timings;
  for (const CellSpec& spec : specs) {
    std::size_t n_arcs = 0;
    CellTiming t;
    is >> kw;
    if (kw != "cell") return std::nullopt;
    is >> t.cell >> n_arcs >> t.leakage_ua >> t.output_self_cap;
    if (is.fail() || t.cell != spec.name || n_arcs != spec.inputs.size()) {
      return std::nullopt;
    }
    is >> kw;
    if (kw != "incap") return std::nullopt;
    t.input_caps.resize(n_arcs);
    for (Ff& c : t.input_caps) is >> c;
    for (std::size_t a = 0; a < n_arcs; ++a) {
      TimingArc arc;
      is >> kw >> arc.input;
      if (kw != "arc" || arc.input != spec.inputs[a]) return std::nullopt;
      arc.delay_fall = NldmTable(slews, loads);
      arc.slew_fall = NldmTable(slews, loads);
      arc.delay_rise = NldmTable(slews, loads);
      arc.slew_rise = NldmTable(slews, loads);
      if (!read_table(is, "delay_fall", arc.delay_fall) ||
          !read_table(is, "slew_fall", arc.slew_fall) ||
          !read_table(is, "delay_rise", arc.delay_rise) ||
          !read_table(is, "slew_rise", arc.slew_rise)) {
        return std::nullopt;
      }
      t.arcs.push_back(std::move(arc));
    }
    is >> kw;
    if (kw != "endcell") return std::nullopt;
    timings.push_back(std::move(t));
  }
  return library_from_parts(std::move(specs), std::move(timings), params);
}

}  // namespace poc
