// The standard-cell library: specs, characterized timing, and layout
// masters.  Characterization runs thousands of transients, so a text cache
// (library_io.h) makes it a one-time cost per machine.
#pragma once

#include <string>
#include <vector>

#include "src/layout/layout_db.h"
#include "src/layout/tech.h"
#include "src/stdcell/cell_spec.h"
#include "src/stdcell/characterize.h"
#include "src/stdcell/nldm.h"

namespace poc {

class StdCellLibrary {
 public:
  /// Characterizes every standard cell from scratch (seconds of CPU).
  static StdCellLibrary characterize_all(const CharParams& params = {});

  /// Loads the cache at `path` if present and matching the current cell
  /// set, otherwise characterizes and writes the cache.
  static StdCellLibrary load_or_characterize(const std::string& path,
                                             const CharParams& params = {});

  const std::vector<CellSpec>& specs() const { return specs_; }
  const CellSpec& spec(const std::string& name) const;
  const CellTiming& timing(const std::string& name) const;
  bool has_cell(const std::string& name) const;

  const CharParams& char_params() const { return params_; }

  /// Layout master for a cell (generated on demand, deterministic).
  CellLayout layout(const std::string& name, const Tech& tech) const;

 private:
  friend StdCellLibrary library_from_parts(std::vector<CellSpec>,
                                           std::vector<CellTiming>,
                                           CharParams);
  std::vector<CellSpec> specs_;
  std::vector<CellTiming> timings_;
  CharParams params_;
};

/// Internal: assembles a library from already-built parts (used by the
/// cache loader).
StdCellLibrary library_from_parts(std::vector<CellSpec> specs,
                                  std::vector<CellTiming> timings,
                                  CharParams params);

}  // namespace poc
