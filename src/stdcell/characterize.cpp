#include "src/stdcell/characterize.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/ckt/transient.h"
#include "src/common/check.h"
#include "src/common/log.h"

namespace poc {
namespace {

/// Recursively instantiates a switch network between `top` and `bottom`.
/// For NMOS networks `top` is the output side; for PMOS, the VDD side —
/// either way intermediate nodes receive diffusion capacitance.
void build_network(Circuit& ckt, const NetExpr& expr, NodeId top,
                   NodeId bottom, bool is_nmos,
                   const std::vector<NodeId>& gates, double w_um, double l_nm,
                   const MosfetParams& params, double cdiff_ff_per_um) {
  switch (expr.kind) {
    case NetExpr::Kind::kLeaf: {
      MosfetInst m;
      m.params = params;
      m.width_um = w_um;
      m.l_nm = l_nm;
      m.gate = gates[expr.input];
      if (is_nmos) {
        m.drain = top;
        m.source = bottom;
      } else {
        m.source = top;
        m.drain = bottom;
      }
      ckt.add_mosfet(m);
      break;
    }
    case NetExpr::Kind::kSeries: {
      NodeId upper = top;
      for (std::size_t i = 0; i < expr.children.size(); ++i) {
        NodeId lower = bottom;
        if (i + 1 < expr.children.size()) {
          lower = ckt.add_node();
          ckt.add_cap(lower, cdiff_ff_per_um * w_um);
        }
        build_network(ckt, expr.children[i], upper, lower, is_nmos, gates,
                      w_um, l_nm, params, cdiff_ff_per_um);
        upper = lower;
      }
      break;
    }
    case NetExpr::Kind::kParallel: {
      for (const NetExpr& c : expr.children) {
        build_network(ckt, c, top, bottom, is_nmos, gates, w_um, l_nm, params,
                      cdiff_ff_per_um);
      }
      break;
    }
  }
}

}  // namespace

CellDeck build_cell_deck(const CellSpec& spec, const CharParams& params,
                         double l_nmos_nm, double l_pmos_nm) {
  CellDeck deck;
  Circuit& ckt = deck.circuit;
  deck.vdd = ckt.add_node();
  deck.out = ckt.add_node();
  for (std::size_t i = 0; i < spec.inputs.size(); ++i) {
    deck.input_nodes.push_back(ckt.add_node());
  }
  // Stacked devices are widened by the stack depth (standard library
  // sizing) so all cells have comparable drive per finger.
  const NetExpr pd = spec.pulldown;
  const NetExpr pu = spec.pullup();
  const double wn =
      spec.nmos_w_um * spec.drive * static_cast<double>(pd.stack_depth());
  const double wp =
      spec.pmos_w_um * spec.drive * static_cast<double>(pu.stack_depth());
  build_network(ckt, pd, deck.out, kGround, /*is_nmos=*/true,
                deck.input_nodes, wn, l_nmos_nm, params.nmos,
                params.cdiff_ff_per_um);
  build_network(ckt, pu, deck.vdd, deck.out, /*is_nmos=*/false,
                deck.input_nodes, wp, l_pmos_nm, params.pmos,
                params.cdiff_ff_per_um);
  ckt.add_cap(deck.out, params.cdiff_ff_per_um * (wn + wp));
  return deck;
}

namespace {

/// Context string for characterization faults: which cell, arc and sweep
/// point failed.
std::string arc_context(const CellSpec& spec, std::size_t arc_input,
                        bool input_rising, Ps input_slew, Ff load) {
  return "cell " + spec.name + " input " + std::to_string(arc_input) +
         (input_rising ? " rising" : " falling") + " slew " +
         std::to_string(input_slew) + " ps load " + std::to_string(load) +
         " fF";
}

}  // namespace

Expected<ArcMeasurement> measure_arc(const CellSpec& spec,
                                     const CharParams& params,
                                     std::size_t arc_input, bool input_rising,
                                     Ps input_slew, Ff load, double l_nmos_nm,
                                     double l_pmos_nm) {
  POC_EXPECTS(arc_input < spec.inputs.size());
  POC_EXPECTS(input_slew > 0.0 && load >= 0.0);
  CellDeck deck = build_cell_deck(spec, params, l_nmos_nm, l_pmos_nm);
  Circuit& ckt = deck.circuit;
  const double vdd = params.nmos.vdd;

  ckt.add_vsource(deck.vdd, Pwl::constant(vdd));
  const std::vector<bool> side = spec.noncontrolling_for(arc_input);
  for (std::size_t i = 0; i < spec.inputs.size(); ++i) {
    if (i == arc_input) continue;
    ckt.add_vsource(deck.input_nodes[i],
                    Pwl::constant(side[i] ? vdd : 0.0));
  }
  const Ps t0 = params.settle_ps;
  ckt.add_vsource(deck.input_nodes[arc_input],
                  input_rising ? Pwl::ramp(t0, input_slew, 0.0, vdd)
                               : Pwl::ramp(t0, input_slew, vdd, 0.0));
  ckt.add_cap(deck.out, load);

  TransientOptions topt;
  topt.dt = std::clamp(input_slew / 40.0, 0.5, 2.0);
  topt.t_end = t0 + input_slew + 1400.0;
  const TransientResult sim = simulate(ckt, topt);

  if (!sim.converged) {
    // This used to return a silent empty measurement; characterization
    // failures now surface through the structured error channel.
    FlowError err{FaultCode::kNonConvergence, kNoWindowId,
                  "stdcell.measure_arc",
                  "transient did not converge: " +
                      arc_context(spec, arc_input, input_rising, input_slew,
                                  load)};
    log_warn("characterization fault ", err.to_string());
    return err;
  }
  const Trace& out = sim.traces[deck.out];
  // Negative-unate single stage: input rise -> output fall.
  const bool out_rising = !input_rising;
  const Ps t_in_50 = t0 + input_slew / 2.0;
  const auto t_out_50 = out.cross_time(vdd / 2.0, out_rising, t0);
  const auto out_slew = out.slew(vdd, out_rising, t0);
  if (!t_out_50 || !out_slew) {
    FlowError err{FaultCode::kMeasurement, kNoWindowId,
                  "stdcell.measure_arc",
                  "output never crossed the measurement levels: " +
                      arc_context(spec, arc_input, input_rising, input_slew,
                                  load)};
    log_warn("characterization fault ", err.to_string());
    return err;
  }
  ArcMeasurement m;
  m.delay = *t_out_50 - t_in_50;
  m.out_slew = *out_slew;
  m.valid = true;
  return m;
}

Ff input_cap_ff(const CellSpec& spec, const CharParams& params) {
  const double stack_n = static_cast<double>(spec.pulldown.stack_depth());
  const double stack_p = static_cast<double>(spec.pullup().stack_depth());
  const double w_total = spec.nmos_w_um * spec.drive * stack_n +
                         spec.pmos_w_um * spec.drive * stack_p;
  return params.cgate_ff_per_um * w_total * (spec.drawn_l_nm / 90.0);
}

double cell_leakage_ua(const CellSpec& spec, const CharParams& params,
                       double l_nmos_nm, double l_pmos_nm) {
  const NetExpr pd = spec.pulldown;
  const NetExpr pu = spec.pullup();
  const double wn =
      spec.nmos_w_um * spec.drive * static_cast<double>(pd.stack_depth());
  const double wp =
      spec.pmos_w_um * spec.drive * static_cast<double>(pu.stack_depth());
  // State-averaged proxy: half the devices block at any time; series stacks
  // divide the subthreshold current.
  const double n_leak = params.nmos.ioff_per_um(l_nmos_nm) * wn *
                        static_cast<double>(pd.num_devices()) /
                        (2.0 * static_cast<double>(pd.stack_depth()));
  const double p_leak = params.pmos.ioff_per_um(l_pmos_nm) * wp *
                        static_cast<double>(pu.num_devices()) /
                        (2.0 * static_cast<double>(pu.stack_depth()));
  return n_leak + p_leak;
}

CellTiming characterize_cell_with_l(const CellSpec& spec,
                                    const CharParams& params,
                                    double l_nmos_nm, double l_pmos_nm) {
  CellTiming timing;
  timing.cell = spec.name;
  const double stack_n = static_cast<double>(spec.pulldown.stack_depth());
  const double stack_p = static_cast<double>(spec.pullup().stack_depth());
  timing.output_self_cap =
      params.cdiff_ff_per_um * (spec.nmos_w_um * spec.drive * stack_n +
                                spec.pmos_w_um * spec.drive * stack_p);
  timing.leakage_ua = cell_leakage_ua(spec, params, l_nmos_nm, l_pmos_nm);

  for (std::size_t i = 0; i < spec.inputs.size(); ++i) {
    TimingArc arc;
    arc.input = spec.inputs[i];
    arc.delay_fall = NldmTable(params.slew_axis, params.load_axis);
    arc.slew_fall = NldmTable(params.slew_axis, params.load_axis);
    arc.delay_rise = NldmTable(params.slew_axis, params.load_axis);
    arc.slew_rise = NldmTable(params.slew_axis, params.load_axis);
    for (std::size_t si = 0; si < params.slew_axis.size(); ++si) {
      for (std::size_t li = 0; li < params.load_axis.size(); ++li) {
        const Expected<ArcMeasurement> fall =
            measure_arc(spec, params, i, /*input_rising=*/true,
                        params.slew_axis[si], params.load_axis[li],
                        l_nmos_nm, l_pmos_nm);
        if (!fall) throw FlowException(fall.error());
        arc.delay_fall.set(si, li, fall->delay);
        arc.slew_fall.set(si, li, fall->out_slew);
        const Expected<ArcMeasurement> rise =
            measure_arc(spec, params, i, /*input_rising=*/false,
                        params.slew_axis[si], params.load_axis[li],
                        l_nmos_nm, l_pmos_nm);
        if (!rise) throw FlowException(rise.error());
        arc.delay_rise.set(si, li, rise->delay);
        arc.slew_rise.set(si, li, rise->out_slew);
      }
    }
    timing.arcs.push_back(std::move(arc));
    timing.input_caps.push_back(input_cap_ff(spec, params));
  }
  return timing;
}

CellTiming characterize_cell(const CellSpec& spec, const CharParams& params) {
  return characterize_cell_with_l(spec, params, spec.drawn_l_nm,
                                  spec.drawn_l_nm);
}

}  // namespace poc
