// Cell characterization: builds the transistor-level circuit for each cell
// spec and sweeps (input slew x output load) with the transient simulator to
// fill NLDM delay/slew tables — the role a SPICE-based characterizer plays
// in a production library flow.
#pragma once

#include "src/ckt/circuit.h"
#include "src/common/error.h"
#include "src/stdcell/cell_spec.h"
#include "src/stdcell/nldm.h"

namespace poc {

struct CharParams {
  MosfetParams nmos = MosfetParams::nmos();
  MosfetParams pmos = MosfetParams::pmos();
  double cgate_ff_per_um = 1.0;  ///< input pin cap per um of gate width
  double cdiff_ff_per_um = 0.8;  ///< junction cap per um at diffusion nodes
  std::vector<Ps> slew_axis = {10.0, 30.0, 75.0, 150.0, 300.0};
  std::vector<Ff> load_axis = {1.0, 3.0, 7.0, 15.0, 30.0};
  Ps settle_ps = 150.0;  ///< input hold before the ramp (settles the deck)
};

/// Transistor-level deck for one cell: devices plus diffusion caps, with
/// handles to the rails and pins.  Channel lengths can be overridden per
/// device type (used to validate CD back-annotation against re-simulation).
struct CellDeck {
  Circuit circuit;
  NodeId vdd = 0;
  NodeId out = 0;
  std::vector<NodeId> input_nodes;
};

CellDeck build_cell_deck(const CellSpec& spec, const CharParams& params,
                         double l_nmos_nm, double l_pmos_nm);

/// One transient measurement of an arc at a single (slew, load) point.
struct ArcMeasurement {
  Ps delay = 0.0;     ///< input 50% to output 50%
  Ps out_slew = 0.0;  ///< 20-80 scaled
  bool valid = false;
};

/// Measures one arc, or reports a structured error: kNonConvergence when
/// the transient simulation fails to converge, kMeasurement when the output
/// never crosses the measurement levels.  Both used to come back as a
/// silent invalid measurement; now the failure carries the cell/arc context
/// and is logged at the source.
Expected<ArcMeasurement> measure_arc(const CellSpec& spec,
                                     const CharParams& params,
                                     std::size_t arc_input, bool input_rising,
                                     Ps input_slew, Ff load, double l_nmos_nm,
                                     double l_pmos_nm);

/// Full characterization at the drawn channel length.
CellTiming characterize_cell(const CellSpec& spec, const CharParams& params);

/// Characterization with overridden channel lengths (validation/ablation).
CellTiming characterize_cell_with_l(const CellSpec& spec,
                                    const CharParams& params, double l_nmos_nm,
                                    double l_pmos_nm);

/// Input pin capacitance from gate geometry (fF).
Ff input_cap_ff(const CellSpec& spec, const CharParams& params);

/// Analytic state-averaged leakage proxy (uA); per-instance leakage under
/// extracted CDs is recomputed device-by-device in the core flow.
double cell_leakage_ua(const CellSpec& spec, const CharParams& params,
                       double l_nmos_nm, double l_pmos_nm);

}  // namespace poc
