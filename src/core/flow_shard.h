// Flow-level driver for sharded multi-process full-chip runs.
//
// A full-chip run is window-shaped (per-instance OPC, per-gate extraction),
// and windows only communicate through the journal and the content-
// addressed caches — so the run splits across *processes* the same way it
// splits across threads.  The coordinator partitions the instance index
// space into one shard per worker (src/run/shard), each worker runs the
// existing flow over its shard — private write-ahead journal, shared
// spill-to-disk window cache — and publishes its completed records as one
// shard segment.  The coordinator merges surviving segments into a single
// standard journal in global window-index order and replays it through the
// unmodified restore path: residual windows (worker died, segment torn)
// are simply journal misses and recompute in-process, then STA runs once.
//
// Determinism: the merged restore is bit-identical to an uninterrupted
// 1-worker run — same TimingComparison (worst slack, annotations, health)
// for any worker count, any thread count, and any kill point.  Worker
// failures are reported out-of-band in ShardFlowResult::shard_health
// (phase "shard"), never folded into the comparison's health, precisely so
// the comparison stays bit-identical across legs.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/core/flow.h"
#include "src/run/coordinator.h"
#include "src/run/shard.h"

namespace poc {

/// Per-worker directory under the run's work dir ("<work_dir>/w00").  The
/// worker's private journal lives at "<dir>/journal".
std::string shard_worker_dir(const std::string& work_dir,
                             std::uint32_t worker);

/// Worker-side stats published next to the segment ("run.w00.stats"), one
/// "key value" line each — the bench harness and smoke scripts parse them.
std::string shard_stats_name(std::uint32_t worker);

struct ShardWorkerOptions {
  ShardSpec spec;
  std::string work_dir;  ///< shared run directory (segments, cache, w<NN>/)
  OpcMode opc_mode = OpcMode::kModelBased;
  Exposure exposure;  ///< the exposure the coordinator will compare at
  /// Crash hook passed to the worker's journal (see JournalOptions): after
  /// this many appends the worker flushes and SIGKILLs itself.  Used by
  /// the failure-injection tests/CI; 0 = off.
  std::size_t kill_after_appends = 0;
};

/// Runs one worker's share of the flow: OPC over the shard's instance
/// windows, extraction over the gates those instances carry, every
/// completed window journaled to the worker's private write-ahead journal,
/// then the journal's records published as "<work_dir>/run.wNN.seg" (temp
/// + atomic rename) with per-worker stats beside it.  Returns false when
/// the segment could not be published (the run itself is already durable
/// in the private journal, which the coordinator salvages).
bool run_shard_worker(const PlacedDesign& design, const StdCellLibrary& lib,
                      const LithoSimulator& sim, FlowOptions base,
                      const ShardWorkerOptions& options);

struct ShardFlowOptions {
  std::size_t workers = 1;
  ShardPolicy policy = ShardPolicy::kContiguous;
  /// Run directory: worker segments + stats, per-worker journal dirs, the
  /// shared disk cache ("cache/"), and the merged journal ("merged/").
  /// Use a fresh directory per run.
  std::string work_dir;
  OpcMode opc_mode = OpcMode::kModelBased;
  Exposure exposure;
  /// Share the spill-to-disk window cache across workers and the final
  /// residual pass (CacheOptions::disk_path = "<work_dir>/cache").
  bool share_disk_cache = true;
  /// Builds the argv for one worker process (fork/exec path — see
  /// examples/shard_worker.cpp, which re-execs itself in worker mode).
  /// Null runs every worker in-process on its own thread instead: same
  /// shard/segment/merge machinery, no process isolation — the mode the
  /// unit tests and the TSan leg use.
  std::function<std::vector<std::string>(const ShardSpec&)> worker_command;
};

struct ShardFlowResult {
  /// The headline result, replayed from the merged journal + residual
  /// recompute.  Bit-identical across worker counts.
  TimingComparison comparison;
  /// Out-of-band shard faults (phase "shard", index = worker id): worker
  /// died, segment missing/torn, records salvaged from a private journal.
  /// Deliberately NOT merged into comparison.health.
  FlowHealth shard_health;
  /// Per-worker segment collection detail (torn/salvaged/record counts).
  MergeResult merge;
  /// Exit status per worker (fork/exec path; empty for in-process).
  std::vector<WorkerExit> exits;
  /// Windows the final pass recomputed because no worker durably finished
  /// them (journal appends of the merged restore).
  std::size_t residual_windows = 0;
  /// Journal replay stats of the final pass (replayed vs appended).
  RunJournal::Stats merged_stats;
  /// Final-pass window-cache counters; disk_hits counts cross-process
  /// reuse from the shared cache.
  PostOpcFlow::FlowCacheCounters cache;
};

/// Full sharded run: partition -> spawn workers -> collect/merge segments
/// (tolerating dead workers and torn tails) -> merged replay + residual
/// recompute -> one final STA.  `base` carries the flow config (the same
/// options a 1-worker PostOpcFlow run would use); its journal/cache paths
/// are overridden per the work-dir layout above.
ShardFlowResult run_sharded_flow(const PlacedDesign& design,
                                 const StdCellLibrary& lib,
                                 const LithoSimulator& sim, FlowOptions base,
                                 const ShardFlowOptions& options);

}  // namespace poc
