// Flow-level driver for sharded multi-process full-chip runs.
//
// A full-chip run is window-shaped (per-instance OPC, per-gate extraction),
// and windows only communicate through the journal and the content-
// addressed caches — so the run splits across *processes* the same way it
// splits across threads.  The coordinator partitions the instance index
// space into one shard per worker (src/run/shard), each worker runs the
// existing flow over its shard — private write-ahead journal, shared
// spill-to-disk window cache — and publishes its completed records as one
// shard segment.  The coordinator merges surviving segments into a single
// standard journal in global window-index order and replays it through the
// unmodified restore path: residual windows (worker died, segment torn)
// are simply journal misses and recompute in-process, then STA runs once.
//
// Determinism: the merged restore is bit-identical to an uninterrupted
// 1-worker run — same TimingComparison (worst slack, annotations, health)
// for any worker count, any thread count, and any kill point.  Worker
// failures are reported out-of-band in ShardFlowResult::shard_health
// (phase "shard"), never folded into the comparison's health, precisely so
// the comparison stays bit-identical across legs.
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "src/core/flow.h"
#include "src/run/coordinator.h"
#include "src/run/shard.h"

namespace poc {

/// Per-worker directory under the run's work dir ("<work_dir>/w00").  The
/// worker's private journal lives at "<dir>/journal".
std::string shard_worker_dir(const std::string& work_dir,
                             std::uint32_t worker);

/// Worker-side stats published next to the segment ("run.w00.stats"), one
/// "key value" line each — the bench harness and smoke scripts parse them.
std::string shard_stats_name(std::uint32_t worker);

struct ShardWorkerOptions {
  ShardSpec spec;
  std::string work_dir;  ///< shared run directory (segments, cache, w<NN>/)
  OpcMode opc_mode = OpcMode::kModelBased;
  Exposure exposure;  ///< the exposure the coordinator will compare at
  /// Crash hook passed to the worker's journal (see JournalOptions): after
  /// this many appends the worker flushes and SIGKILLs itself.  Used by
  /// the failure-injection tests/CI; 0 = off.
  std::size_t kill_after_appends = 0;
  /// Heartbeat cadence: after every N journal appends the worker appends
  /// one "hb <count>" line to its stats file — the progress channel the
  /// coordinator watchdog reads (file size).  0 = no heartbeats.
  std::size_t heartbeat_every_appends = 1;
  /// Deterministic hang hook: after this many appends the worker stops
  /// making progress (spins, still alive) — the stall the watchdog must
  /// detect.  0 = off.
  std::size_t stall_after_appends = 0;
  /// Stall only once across attempts (a "stall.done" marker in the worker
  /// dir): the respawned worker resumes and completes.  False re-stalls
  /// every attempt, forcing the retries-exhausted path.
  bool stall_once = true;
  /// Cancellation for the in-process worker mode: the stall loop and the
  /// flow's chunk boundaries poll it, so a supervisor "kill" is a prompt
  /// cooperative cancel.  Null = the flow's global token.
  const CancelToken* cancel = nullptr;
};

/// Worker stats parsed back from "run.wNN.stats".  The file is written in
/// two regimes — heartbeat lines while the worker runs, one final
/// key-value block on completion — and a killed worker leaves anything
/// from nothing to a torn final block.  Parsing therefore *classifies*
/// rather than fails: `present` = the file existed, `complete` = a full
/// final block was read (an un-newline-terminated tail line is ignored,
/// unknown or torn lines are skipped).
struct ShardWorkerStats {
  bool present = false;
  bool complete = false;
  std::uint32_t worker = 0;
  std::uint64_t windows = 0;
  std::uint64_t gates = 0;
  std::uint64_t records = 0;
  double wall_ms = 0.0;
  std::uint64_t maxrss_kb = 0;
  std::uint64_t mem_hits = 0;
  std::uint64_t disk_hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t insertions = 0;
  std::uint64_t last_heartbeat = 0;  ///< highest "hb N" seen
};

/// Parses a worker stats file (tolerant, see ShardWorkerStats).
ShardWorkerStats parse_shard_stats(const std::string& path);

/// Runs one worker's share of the flow: OPC over the shard's instance
/// windows, extraction over the gates those instances carry, every
/// completed window journaled to the worker's private write-ahead journal,
/// then the journal's records published as "<work_dir>/run.wNN.seg" (temp
/// + atomic rename) with per-worker stats beside it.  Returns false when
/// the segment could not be published (the run itself is already durable
/// in the private journal, which the coordinator salvages).
bool run_shard_worker(const PlacedDesign& design, const StdCellLibrary& lib,
                      const LithoSimulator& sim, FlowOptions base,
                      const ShardWorkerOptions& options);

/// Watchdog knobs of the self-healing driver — a thin rename of the
/// supervision knobs (SupervisorOptions) the shard driver forwards.
struct ShardWatchdogOptions {
  bool enabled = false;
  std::uint64_t no_progress_timeout_ms = 60000;
  std::uint64_t poll_interval_ms = 20;
  std::uint32_t max_respawns = 1;
  std::uint64_t backoff_initial_ms = 50;
  std::uint64_t backoff_max_ms = 1000;
};

/// Sentinel for ShardFlowOptions::stall_worker: no stall injection.
inline constexpr std::uint32_t kNoStallWorker = ~std::uint32_t{0};

struct ShardFlowOptions {
  std::size_t workers = 1;
  ShardPolicy policy = ShardPolicy::kContiguous;
  /// Run directory: worker segments + stats, per-worker journal dirs, the
  /// shared disk cache ("cache/"), and the merged journal ("merged/").
  /// Use a fresh directory per run.
  std::string work_dir;
  OpcMode opc_mode = OpcMode::kModelBased;
  Exposure exposure;
  /// Share the spill-to-disk window cache across workers and the final
  /// residual pass (CacheOptions::disk_path = "<work_dir>/cache").
  bool share_disk_cache = true;
  /// Builds the argv for one worker process (fork/exec path — see
  /// examples/shard_worker.cpp, which re-execs itself in worker mode).
  /// Null runs every worker in-process on its own thread instead: same
  /// shard/segment/merge machinery, no process isolation — the mode the
  /// unit tests and the TSan leg use.
  std::function<std::vector<std::string>(const ShardSpec&)> worker_command;
  /// Self-healing: heartbeat-driven stall detection, kill + bounded
  /// backoff respawn (workers resume from their sealed journal), then
  /// residual redistribution across fresh sub-shards when retries run out.
  ShardWatchdogOptions watchdog;
  /// Heartbeat cadence forwarded to every worker (in-process mode; the
  /// fork/exec path carries it on the worker argv).
  std::size_t heartbeat_every_appends = 1;
  /// Deterministic stall injection, in-process mode only: the worker with
  /// this id hangs after `stall_after_appends` journal appends.  The
  /// fork/exec path injects via worker argv instead (--stall-after).
  std::uint32_t stall_worker = kNoStallWorker;
  std::size_t stall_after_appends = 0;
  bool stall_once = true;  ///< see ShardWorkerOptions::stall_once
};

struct ShardFlowResult {
  /// The headline result, replayed from the merged journal + residual
  /// recompute.  Bit-identical across worker counts.
  TimingComparison comparison;
  /// Out-of-band shard faults (phase "shard", index = worker id): worker
  /// died, segment missing/torn, records salvaged from a private journal.
  /// Deliberately NOT merged into comparison.health.
  FlowHealth shard_health;
  /// Per-worker segment collection detail (torn/salvaged/record counts).
  MergeResult merge;
  /// Final exit status per worker attempt-chain, both modes (in-process
  /// workers report exit_code 0/1 for ok/failed).  Redistribution
  /// sub-shards append after the original workers.
  std::vector<WorkerExit> exits;
  /// Every coordinator intervention (stall kills, respawns, signal
  /// forwarding), sorted by (worker, attempt, kind) — deterministic.
  std::vector<WorkerIntervention> interventions;
  /// Parsed per-worker stats files (positional: original workers then
  /// redistribution sub-shards).  Torn/missing files classify, not fail.
  std::vector<ShardWorkerStats> worker_stats;
  /// Windows re-run on fresh sub-shards after a worker exhausted its
  /// respawn budget (the redistributed residual range's window count).
  std::size_t redistributed_windows = 0;
  /// Windows the final pass recomputed because no worker durably finished
  /// them (journal appends of the merged restore).
  std::size_t residual_windows = 0;
  /// Journal replay stats of the final pass (replayed vs appended).
  RunJournal::Stats merged_stats;
  /// Final-pass window-cache counters; disk_hits counts cross-process
  /// reuse from the shared cache.
  PostOpcFlow::FlowCacheCounters cache;
};

/// Full sharded run: partition -> spawn workers -> collect/merge segments
/// (tolerating dead workers and torn tails) -> merged replay + residual
/// recompute -> one final STA.  `base` carries the flow config (the same
/// options a 1-worker PostOpcFlow run would use); its journal/cache paths
/// are overridden per the work-dir layout above.
ShardFlowResult run_sharded_flow(const PlacedDesign& design,
                                 const StdCellLibrary& lib,
                                 const LithoSimulator& sim, FlowOptions base,
                                 const ShardFlowOptions& options);

}  // namespace poc
