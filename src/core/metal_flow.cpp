#include "src/core/metal_flow.h"

#include <algorithm>

#include "src/cdx/cd_extract.h"
#include "src/common/check.h"
#include "src/common/log.h"

namespace poc {
namespace {

struct SegmentSample {
  Rect rect;
  bool horizontal_cd = true;  ///< CD measured across x (vertical wire)
};

/// Picks up to n long segments of `layer`, spread across the route list.
std::vector<SegmentSample> pick_segments(const PlacedDesign& design,
                                         Layer layer, std::size_t n) {
  std::vector<SegmentSample> all;
  for (const NetRoute& route : design.routes) {
    for (const SinkRoute& sr : route.sinks) {
      for (const RouteSegment& seg : sr.segments) {
        if (seg.layer != layer) continue;
        const bool vertical_wire = seg.rect.height() >= seg.rect.width();
        const DbUnit len =
            vertical_wire ? seg.rect.height() : seg.rect.width();
        if (len < 800) continue;  // need a straight run to measure mid-wire
        all.push_back({seg.rect, vertical_wire});
      }
    }
  }
  if (all.size() <= n) return all;
  std::vector<SegmentSample> picked;
  for (std::size_t i = 0; i < n; ++i) {
    picked.push_back(all[i * all.size() / n]);
  }
  return picked;
}

}  // namespace

MetalCdReport extract_metal_cds(const PlacedDesign& design,
                                const LithoSimulator& sim,
                                const Exposure& exposure,
                                std::size_t max_samples,
                                LithoQuality quality) {
  MetalCdReport report;
  for (Layer layer : {Layer::kMetal1, Layer::kMetal2}) {
    const DbUnit drawn = layer == Layer::kMetal1 ? design.tech.m1_width
                                                 : design.tech.m2_width;
    double sum_printed = 0.0;
    std::size_t count = 0;
    for (const SegmentSample& s : pick_segments(design, layer, max_samples)) {
      const Point mid = s.rect.center();
      const Rect window = Rect::from_center(mid, 1600, 1600);
      const std::vector<Rect> features =
          design.layout.flatten_layer(window, layer);
      const Image2D latent = sim.latent(features, window, exposure, quality);
      const auto cd = extract_wire_cd(latent, sim.print_threshold(),
                                      s.rect.intersection(window),
                                      s.horizontal_cd);
      if (cd) {
        sum_printed += *cd;
        ++count;
      }
    }
    if (count > 0) {
      const double mean = sum_printed / static_cast<double>(count);
      const double ratio = mean / static_cast<double>(drawn);
      if (layer == Layer::kMetal1) {
        report.m1_samples = count;
        report.m1_mean_printed_nm = mean;
        report.scale.m1_width_ratio = ratio;
      } else {
        report.m2_samples = count;
        report.m2_mean_printed_nm = mean;
        report.scale.m2_width_ratio = ratio;
      }
    }
  }
  log_info("metal CD extraction: m1 ", report.m1_mean_printed_nm, " nm (",
           report.m1_samples, " samples), m2 ", report.m2_mean_printed_nm,
           " nm (", report.m2_samples, " samples)");
  return report;
}

}  // namespace poc
