// Multi-layer extension of the extraction flow (experiment T5): measure
// printed metal linewidths over a sample of routed wire segments and fold
// them into the parasitic extractor as width ratios, shifting wire RC and
// therefore stage delays.
#pragma once

#include <cstddef>

#include "src/litho/simulator.h"
#include "src/pex/extractor.h"
#include "src/pnr/design.h"

namespace poc {

struct MetalCdReport {
  MetalCdScale scale;
  std::size_t m1_samples = 0;
  std::size_t m2_samples = 0;
  double m1_mean_printed_nm = 0.0;
  double m2_mean_printed_nm = 0.0;
};

/// Simulates printing of sampled M1/M2 segments (no metal OPC — the flow
/// measures the uncorrected systematic bias, the worst case the paper's
/// multi-layer extension guards against) and returns mean printed/drawn
/// width ratios.  `max_samples` caps litho cost per layer.
MetalCdReport extract_metal_cds(const PlacedDesign& design,
                                const LithoSimulator& sim,
                                const Exposure& exposure,
                                std::size_t max_samples = 12,
                                LithoQuality quality = LithoQuality::kStandard);

}  // namespace poc
