#include "src/core/mc_timing.h"

#include "src/par/thread_pool.h"

namespace poc {

std::vector<double> McTimingResult::slacks() const {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const McTimingSample& s : samples) out.push_back(s.worst_slack);
  return out;
}

McTimingResult run_mc_timing(
    const PostOpcFlow& flow,
    const std::vector<PostOpcFlow::DeviceResponse>& responses,
    const VariationModel& model, std::size_t num_samples,
    std::uint64_t seed) {
  McTimingResult result;
  result.samples.resize(num_samples);
  parallel_for(flow.threads(), num_samples, /*chunk=*/1, [&](std::size_t s) {
    Rng rng = Rng::stream(seed, s);
    McTimingSample& sample = result.samples[s];
    sample.exposure = model.sample_exposure(rng);
    const std::vector<GateExtraction> ext =
        flow.mc_extraction(responses, sample.exposure, model.aclv_sigma_nm,
                           rng);
    const std::vector<DelayAnnotation> ann = flow.annotate(ext);
    const StaReport report = flow.run_sta(&ann);
    sample.worst_slack = report.worst_slack;
    sample.leakage_ua = report.total_leakage_ua;
  });
  for (const McTimingSample& s : result.samples) {
    result.slack_stats.add(s.worst_slack);
    result.leak_stats.add(s.leakage_ua);
  }
  return result;
}

}  // namespace poc
