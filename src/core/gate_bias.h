// Selective gate-length biasing: a design-intent DFM optimization the
// paper's flow enables.  Gates with timing slack to spare are swapped to
// their long-channel "_LL" library variants (drawn L 90 -> 98 nm), trading
// a small delay increase for an exponential subthreshold-leakage saving;
// timing-critical gates keep the fast drawn length.  Because the swap
// changes drawn geometry, the full litho/OPC/extraction flow re-verifies
// the result — no model shortcut.
#pragma once

#include <vector>

#include "src/netlist/netlist.h"

namespace poc {

/// Returns a copy of `nl` in which every gate NOT listed in `keep_fast` is
/// replaced by its "_LL" long-gate variant.  Connectivity and names are
/// preserved.
Netlist with_long_gate_bias(const Netlist& nl,
                            const std::vector<GateIdx>& keep_fast);

}  // namespace poc
