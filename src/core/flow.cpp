#include "src/core/flow.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <limits>
#include <memory>
#include <unordered_map>

#include "src/cache/disk_store.h"
#include "src/cache/fingerprint.h"
#include "src/common/check.h"
#include "src/common/fault.h"
#include "src/common/log.h"
#include "src/common/serialize.h"
#include "src/geom/polygon_ops.h"
#include "src/litho/batch.h"
#include "src/opc/rule_opc.h"
#include "src/par/thread_pool.h"

namespace poc {
namespace {

/// Drive ratios below this are treated as broken devices (pinched gates)
/// rather than fed to the delay scaler as near-zero divisors.
constexpr double kMinDriveRatio = 0.05;

double safe_ratio(double r) { return std::max(r, kMinDriveRatio); }

/// Deterministic OpcStats merge; addition order is fixed by the caller
/// (instance order), which keeps the double sums bit-identical across
/// thread counts.
OpcStats merge_stats(OpcStats acc, const OpcStats& w) {
  acc.windows += w.windows;
  acc.model_based_windows += w.model_based_windows;
  acc.fragments += w.fragments;
  acc.iterations += w.iterations;
  acc.max_abs_epe_nm = std::max(acc.max_abs_epe_nm, w.max_abs_epe_nm);
  acc.rms_epe_sum += w.rms_epe_sum;
  return acc;
}

// Fingerprint feeders for every parameter block that can change a window
// result.  Field order is fixed — it is part of the key.

void hash_optics(FpHasher& h, const OpticalSettings& o) {
  h.f64(o.wavelength_nm)
      .f64(o.na)
      .f64(o.sigma_inner)
      .f64(o.sigma_outer)
      .u64(o.source_rings)
      .u64(o.source_spokes)
      .f64(o.z9_spherical_waves)
      .f64(o.z7_coma_x_waves);
}

void hash_imaging(FpHasher& h, const ImagingOptions& im) {
  h.u64(static_cast<std::uint64_t>(im.mode))
      .u64(im.socs.max_kernels)
      .f64(im.socs.energy_fraction);
}

void hash_sim(FpHasher& h, const LithoSimulator& sim) {
  hash_optics(h, sim.optics());
  hash_imaging(h, sim.imaging());
  h.f64(sim.resist().diffusion_nm).f64(sim.resist().threshold);
}

void hash_exposure(FpHasher& h, const Exposure& e) {
  h.f64(e.focus_nm).f64(e.dose);
}

void hash_opc_options(FpHasher& h, const OpcOptions& o) {
  const FragmentationOptions& f = o.fragmentation;
  h.i64(f.max_fragment_len)
      .i64(f.corner_len)
      .i64(f.min_edge_for_corners)
      .i64(f.line_end_max_len);
  h.u64(o.max_iterations)
      .f64(o.damping)
      .f64(o.epe_tolerance_nm)
      .i64(o.max_bias)
      .i64(o.min_bias)
      .f64(o.probe_inside_nm)
      .f64(o.probe_outside_nm)
      .u64(static_cast<std::uint64_t>(o.sim_quality))
      .u64(static_cast<std::uint64_t>(o.final_quality))
      .f64(o.handoff_epe_nm)
      .u64(o.final_iterations)
      .u64(static_cast<std::uint64_t>(o.sim_imaging))
      .u64(static_cast<std::uint64_t>(o.final_imaging))
      .u64(o.insert_srafs ? 1 : 0)
      .f64(o.abort_epe_nm);
}

void hash_orc_options(FpHasher& h, const OrcOptions& o) {
  h.f64(o.pinch_fraction)
      .f64(o.epe_limit_nm)
      .i64(o.bridge_check_space)
      .u64(o.exclude_corner_fragments ? 1 : 0)
      .u64(static_cast<std::uint64_t>(o.quality));
}

void log_cache(const char* what, const CacheCounters& c) {
  log_info(what, " cache: ", c.hits, " hits / ", c.misses, " misses (",
           c.hit_rate() * 100.0, "% hit rate), ", c.entries, " entries, ",
           c.evictions, " evictions");
}

// Retry-escalation helpers (see RecoveryOptions): sign-off quality instead
// of the nominal setting, and the Abbe reference engine instead of SOCS.

// Escalated retries always jump to the sign-off quality tier.
constexpr LithoQuality kEscalatedQuality = LithoQuality::kFine;

LithoSimulator with_abbe(const LithoSimulator& sim) {
  ImagingOptions im = sim.imaging();
  im.mode = ImagingMode::kAbbe;
  LithoSimulator out = sim;
  out.set_imaging(im);
  return out;
}

// ---- Batched window staging (see "Batched window execution", DESIGN.md) ----
//
// The hot loops hand parallel_for a chunk equal to the SoA batch width, and
// the worker that owns a chunk stages it whole at the chunk's first index:
// probe journal and cache, batch-image only the windows that would actually
// compute, park the results in per-index slots, then let the unchanged
// per-index body consume them.  Staged results are bit-identical to the
// scalar computations they replace, so everything downstream — cache
// insertion order within the chunk, journal payloads, containment — is
// exactly the unbatched loop's.  Staging is best-effort: any staging
// failure just clears the slots and the per-index body recomputes scalar,
// under its own fault scope.

/// What batch_windows = kBatchWindowsAuto resolves to — and therefore the
/// parallel chunk size of a batching hot loop ("auto = par chunk size").
/// Two full kTileLanes vectors wide: enough to amortize pack/unpack and
/// keep the work-stealing granularity reasonable on small designs.
constexpr std::size_t kAutoBatchWindows = 8;

std::size_t resolved_batch(const ImagingOptions& im) {
  if (im.batch_windows == kBatchWindowsAuto) return kAutoBatchWindows;
  return std::max<std::size_t>(im.batch_windows, 1);
}

/// Batching engages only for the SOCS engine (the Abbe reference never
/// batches) and only without an active fault plan: injected faults are
/// attributed to one (domain, index), which a joint batch computation
/// cannot honor, so the fault harness always sees the scalar loop.
bool batching_enabled(const LithoSimulator& sim) {
  return sim.imaging().batch_windows != 0 &&
         sim.imaging().mode == ImagingMode::kSocs && !fault::enabled();
}

/// Hot-loop chunk size: the batch width when batching, else today's 1.
std::size_t loop_chunk(const LithoSimulator& sim) {
  return batching_enabled(sim) ? resolved_batch(sim.imaging()) : 1;
}

/// OPC window cache key (see opc_window_impl) — factored out so the batch
/// staging pass can probe without running the window.
Fingerprint opc_cache_fp(OpcMode mode, const Rect& window,
                         const std::vector<Polygon>& targets,
                         const Point& anchor, const LithoSimulator& sim,
                         const OpcOptions& opc_options) {
  FpHasher h;
  h.str("opc").u64(static_cast<std::uint64_t>(mode));
  h.i64(window.width()).i64(window.height());
  hash_sim(h, sim);
  hash_opc_options(h, opc_options);
  h.polys(targets, anchor);
  return h.digest();
}

/// Latent-image cache key (see latent_for_window) — ditto.
Fingerprint latent_window_fp(const LithoSimulator& sim,
                             const std::vector<Rect>& mask,
                             const Rect& window, const Exposure& exposure,
                             LithoQuality quality) {
  const Point anchor{window.xlo, window.ylo};
  FpHasher h;
  h.str("latent");
  hash_optics(h, sim.optics());
  hash_imaging(h, sim.imaging());
  h.f64(sim.resist().diffusion_nm);
  hash_exposure(h, exposure);
  h.u64(static_cast<std::uint64_t>(quality));
  h.i64(window.width()).i64(window.height());
  h.rects(mask, anchor);
  return h.digest();
}

// ---- Run-journal payload codecs --------------------------------------------
//
// Payloads store exactly the bits the hot loops would recompute (integers
// verbatim, doubles as IEEE-754 bit patterns), so a replay is
// indistinguishable from a recompute downstream.  Decoders return false on
// any structural mismatch; the caller then recomputes the window.

void encode_rects(ByteWriter& w, const std::vector<Rect>& rects) {
  w.u32(static_cast<std::uint32_t>(rects.size()));
  for (const Rect& r : rects) {
    w.i64(r.xlo);
    w.i64(r.ylo);
    w.i64(r.xhi);
    w.i64(r.yhi);
  }
}

bool decode_rects(ByteReader& r, std::vector<Rect>& rects) {
  const std::uint32_t n = r.u32();
  rects.clear();
  rects.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    Rect rect;
    rect.xlo = r.i64();
    rect.ylo = r.i64();
    rect.xhi = r.i64();
    rect.yhi = r.i64();
    rects.push_back(rect);
  }
  return r.ok();
}

std::vector<std::uint8_t> encode_opc_payload(const std::vector<Rect>& mask,
                                             const OpcStats& s,
                                             bool degraded) {
  ByteWriter w;
  encode_rects(w, mask);
  w.u64(s.windows);
  w.u64(s.model_based_windows);
  w.u64(s.fragments);
  w.u64(s.iterations);
  w.f64(s.max_abs_epe_nm);
  w.f64(s.rms_epe_sum);
  w.u8(degraded ? 1 : 0);
  return w.take();
}

bool decode_opc_payload(const std::vector<std::uint8_t>& bytes,
                        std::vector<Rect>& mask, OpcStats& s,
                        bool& degraded) {
  ByteReader r(bytes);
  if (!decode_rects(r, mask)) return false;
  s.windows = r.u64();
  s.model_based_windows = r.u64();
  s.fragments = r.u64();
  s.iterations = r.u64();
  s.max_abs_epe_nm = r.f64();
  s.rms_epe_sum = r.f64();
  degraded = r.u8() != 0;
  return r.done();
}

std::vector<std::uint8_t> encode_extract_payload(const GateExtraction& ext) {
  ByteWriter w;
  w.u64(ext.gate);
  w.u32(static_cast<std::uint32_t>(ext.devices.size()));
  for (const DeviceCd& d : ext.devices) {
    w.str(d.device);
    w.u8(d.is_nmos ? 1 : 0);
    w.f64(d.drawn_l_nm);
    w.f64(d.drawn_w_nm);
    w.u32(static_cast<std::uint32_t>(d.profile.slice_cd_nm.size()));
    for (double cd : d.profile.slice_cd_nm) w.f64(cd);
    w.f64(d.profile.slice_width_nm);
    w.f64(d.profile.drawn_cd_nm);
    w.f64(d.eq.width_um);
    w.f64(d.eq.ion_ua);
    w.f64(d.eq.ioff_ua);
    w.f64(d.eq.l_eff_drive_nm);
    w.f64(d.eq.l_eff_leak_nm);
    w.f64(d.eq.l_mean_nm);
    w.u8(d.eq.functional ? 1 : 0);
  }
  return w.take();
}

bool decode_extract_payload(const std::vector<std::uint8_t>& bytes,
                            GateExtraction& ext) {
  ByteReader r(bytes);
  ext.gate = r.u64();
  const std::uint32_t ndev = r.u32();
  ext.devices.clear();
  for (std::uint32_t i = 0; i < ndev && r.ok(); ++i) {
    DeviceCd d;
    d.device = r.str();
    d.is_nmos = r.u8() != 0;
    d.drawn_l_nm = r.f64();
    d.drawn_w_nm = r.f64();
    const std::uint32_t nslices = r.u32();
    for (std::uint32_t s = 0; s < nslices && r.ok(); ++s) {
      d.profile.slice_cd_nm.push_back(r.f64());
    }
    d.profile.slice_width_nm = r.f64();
    d.profile.drawn_cd_nm = r.f64();
    d.eq.width_um = r.f64();
    d.eq.ion_ua = r.f64();
    d.eq.ioff_ua = r.f64();
    d.eq.l_eff_drive_nm = r.f64();
    d.eq.l_eff_leak_nm = r.f64();
    d.eq.l_mean_nm = r.f64();
    d.eq.functional = r.u8() != 0;
    ext.devices.push_back(std::move(d));
  }
  return r.done();
}

std::vector<std::uint8_t> encode_scan_payload(
    const PostOpcFlow::HotspotReport& rep) {
  ByteWriter w;
  w.u64(rep.windows_checked);
  w.u64(rep.pinches);
  w.u64(rep.bridges);
  w.u64(rep.epe_violations);
  w.u32(static_cast<std::uint32_t>(rep.hotspots.size()));
  for (const PostOpcFlow::Hotspot& h : rep.hotspots) {
    w.u64(h.instance);
    w.str(h.exposure_name);
    w.u8(static_cast<std::uint8_t>(h.violation.kind));
    w.i64(h.violation.where.x);
    w.i64(h.violation.where.y);
    w.f64(h.violation.value_nm);
  }
  return w.take();
}

bool decode_scan_payload(const std::vector<std::uint8_t>& bytes,
                         PostOpcFlow::HotspotReport& rep) {
  ByteReader r(bytes);
  rep = {};
  rep.windows_checked = r.u64();
  rep.pinches = r.u64();
  rep.bridges = r.u64();
  rep.epe_violations = r.u64();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    PostOpcFlow::Hotspot h;
    h.instance = r.u64();
    h.exposure_name = r.str();
    h.violation.kind = static_cast<OrcViolation::Kind>(r.u8());
    h.violation.where.x = r.i64();
    h.violation.where.y = r.i64();
    h.violation.value_nm = r.f64();
    rep.hotspots.push_back(std::move(h));
  }
  return r.done();
}

void hash_mosfet(FpHasher& h, const MosfetParams& p) {
  h.u64(p.is_nmos ? 1 : 0)
      .f64(p.vdd)
      .f64(p.vth_long)
      .f64(p.dvt_rolloff)
      .f64(p.rolloff_lc_nm)
      .f64(p.alpha)
      .f64(p.k_ua_per_um)
      .f64(p.l_ref_nm)
      .f64(p.kv_sat)
      .f64(p.subthreshold_n)
      .f64(p.i0_leak_ua_per_um)
      .f64(p.temp_vt);
}

}  // namespace

/// The three flow-level result caches.  Values are stored in the window's
/// local frame (anchor = window origin subtracted from all coordinates) and
/// translated back on a hit, so one entry serves every placement of the
/// same cell context.  Translation of integer geometry and of half-integer
/// image origins is exact, which keeps hits bit-identical to recomputes.
/// Containment bookkeeping.  Worker threads only ever touch the sorted
/// degraded-gate set (order-independent); fault entries are appended by the
/// calling thread in window-index order via record_outcomes, so health() is
/// bit-identical at any thread count.
struct PostOpcFlow::HealthState {
  std::mutex mutex;
  std::vector<FlowHealth::WindowFault> faults;
  std::vector<GateIdx> degraded_gates;  ///< sorted, unique
};

struct PostOpcFlow::TimingState {
  std::mutex mutex;
  std::unique_ptr<TimingGraph> graph;  ///< null until first warm re-time
};

struct PostOpcFlow::WindowCaches {
  /// Corrected mask + per-window OPC stats, local frame.
  struct OpcEntry {
    std::vector<Rect> mask;
    OpcStats stats;
  };
  /// ORC report with violation coordinates in the local frame.
  struct OrcEntry {
    OrcReport report;
  };

  ShardedCache<OpcEntry> opc;
  ShardedCache<Image2D> latent;
  ShardedCache<OrcEntry> orc;

  WindowCaches(std::size_t bytes_each, std::size_t shards)
      : opc(bytes_each, shards),
        latent(bytes_each, shards),
        orc(bytes_each, shards) {}
};

namespace {

// ---- Disk-tier codecs ------------------------------------------------------
//
// Same discipline as the journal payload codecs above: integers verbatim,
// doubles as IEEE-754 bit patterns, decoders return null on any structural
// mismatch (the cache then reports a miss and the window recomputes).

std::vector<std::uint8_t> encode_opc_entry(
    const PostOpcFlow::WindowCaches::OpcEntry& e) {
  ByteWriter w;
  encode_rects(w, e.mask);
  w.u64(e.stats.windows);
  w.u64(e.stats.model_based_windows);
  w.u64(e.stats.fragments);
  w.u64(e.stats.iterations);
  w.f64(e.stats.max_abs_epe_nm);
  w.f64(e.stats.rms_epe_sum);
  return w.take();
}

std::shared_ptr<PostOpcFlow::WindowCaches::OpcEntry> decode_opc_entry(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  auto e = std::make_shared<PostOpcFlow::WindowCaches::OpcEntry>();
  if (!decode_rects(r, e->mask)) return nullptr;
  e->stats.windows = r.u64();
  e->stats.model_based_windows = r.u64();
  e->stats.fragments = r.u64();
  e->stats.iterations = r.u64();
  e->stats.max_abs_epe_nm = r.f64();
  e->stats.rms_epe_sum = r.f64();
  return r.done() ? e : nullptr;
}

std::vector<std::uint8_t> encode_latent_entry(const Image2D& img) {
  ByteWriter w;
  w.u64(img.nx());
  w.u64(img.ny());
  w.f64(img.pixel());
  w.f64(img.origin_x());
  w.f64(img.origin_y());
  for (double v : img.data()) w.f64(v);
  return w.take();
}

std::shared_ptr<Image2D> decode_latent_entry(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  const std::uint64_t nx = r.u64();
  const std::uint64_t ny = r.u64();
  const double pixel = r.f64();
  const double ox = r.f64();
  const double oy = r.f64();
  if (!r.ok() || nx * ny != r.remaining() / sizeof(double)) return nullptr;
  auto img = std::make_shared<Image2D>(static_cast<std::size_t>(nx),
                                       static_cast<std::size_t>(ny), pixel, ox,
                                       oy);
  for (double& v : img->data()) v = r.f64();
  return r.done() ? img : nullptr;
}

std::vector<std::uint8_t> encode_orc_entry(
    const PostOpcFlow::WindowCaches::OrcEntry& e) {
  ByteWriter w;
  w.f64(e.report.max_abs_epe_nm);
  w.f64(e.report.rms_epe_nm);
  w.u32(static_cast<std::uint32_t>(e.report.violations.size()));
  for (const OrcViolation& v : e.report.violations) {
    w.u8(static_cast<std::uint8_t>(v.kind));
    w.i64(v.where.x);
    w.i64(v.where.y);
    w.f64(v.value_nm);
  }
  return w.take();
}

std::shared_ptr<PostOpcFlow::WindowCaches::OrcEntry> decode_orc_entry(
    const std::vector<std::uint8_t>& bytes) {
  ByteReader r(bytes);
  auto e = std::make_shared<PostOpcFlow::WindowCaches::OrcEntry>();
  e->report.max_abs_epe_nm = r.f64();
  e->report.rms_epe_nm = r.f64();
  const std::uint32_t n = r.u32();
  e->report.violations.reserve(r.ok() ? n : 0);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    OrcViolation v;
    v.kind = static_cast<OrcViolation::Kind>(r.u8());
    v.where.x = r.i64();
    v.where.y = r.i64();
    v.value_nm = r.f64();
    e->report.violations.push_back(v);
  }
  return r.done() ? e : nullptr;
}

}  // namespace

PostOpcFlow::PostOpcFlow(const PlacedDesign& design, const StdCellLibrary& lib,
                         LithoSimulator sim, FlowOptions options)
    : design_(&design), lib_(&lib), sim_(sim), options_(options) {
  POC_EXPECTS(design.layout.frozen());
  timing_ = std::make_shared<TimingState>();
  // The silicon reference is the OPC model perturbed by the calibration
  // mismatch; with the mismatch disabled they are identical.
  ResistModel silicon_resist = sim.resist();
  if (options_.silicon.enabled) {
    silicon_resist.diffusion_nm += options_.silicon.diffusion_delta_nm;
    silicon_resist.threshold += options_.silicon.threshold_delta;
  }
  // One imaging engine for the whole flow: the OPC model and the silicon
  // reference both honour FlowOptions::imaging (per-phase OpcImaging knobs
  // may still override inside the OPC loop).
  sim_.set_imaging(options_.imaging);
  silicon_sim_ = LithoSimulator(sim.optics(), silicon_resist, options_.imaging);
  if (options_.cache.enabled) {
    caches_ = std::make_shared<WindowCaches>(
        options_.cache.capacity_mb << 20, options_.cache.shards);
    if (!options_.cache.disk_path.empty()) {
      // One store per cache kind, shared across worker processes.  Spill is
      // a pure performance layer: entries round-trip bit-exactly, so a
      // cross-worker hit is indistinguishable from an in-process recompute.
      const std::string& root = options_.cache.disk_path;
      const DiskCacheStore::Options store_options{
          options_.cache.disk_max_bytes};
      caches_->opc.attach_disk(
          std::make_shared<DiskCacheStore>(root + "/opc", store_options),
          encode_opc_entry, decode_opc_entry);
      caches_->latent.attach_disk(
          std::make_shared<DiskCacheStore>(root + "/latent", store_options),
          encode_latent_entry, decode_latent_entry);
      caches_->orc.attach_disk(
          std::make_shared<DiskCacheStore>(root + "/orc", store_options),
          encode_orc_entry, decode_orc_entry);
    }
  }
  health_state_ = std::make_shared<HealthState>();
  if (options_.journal.enabled) {
    try {
      journal_ =
          std::make_shared<RunJournal>(options_.journal, config_fingerprint());
    } catch (...) {
      // A run that cannot journal still runs — undurable, but reported.
      const FlowError err = capture_flow_error(kNoWindowId, "journal.open");
      log_warn("run journal disabled: ", err.to_string());
      FlowHealth::WindowFault f;
      f.phase = "journal";
      f.index = kNoWindowId;
      f.code = err.code;
      f.origin = err.origin;
      f.attempts = 1;
      // Same rule health() applies to append-time issues: losing the
      // journal means losing durability — a degraded mode.
      f.degraded = err.code == FaultCode::kJournalIo;
      health_state_->faults.push_back(std::move(f));
    }
    if (journal_) {
      const RunJournal::Stats js = journal_->stats();
      if (js.loaded_records > 0 || !journal_->issues().empty()) {
        log_info("run journal: replayed ", js.loaded_records,
                 " records from ", options_.journal.path, ", rejected ",
                 js.rejected_records);
      }
      // Replay and append-time issues are surfaced by health(), which reads
      // journal_->issues() live — so an append failure mid-run (ENOSPC)
      // shows up without a second mirroring pass here.
    }
  }
}

const CancelToken* PostOpcFlow::cancel_token() const {
  return options_.cancel != nullptr ? options_.cancel : &global_cancel_token();
}

Fingerprint PostOpcFlow::config_fingerprint() const {
  FpHasher h;
  h.str("poc-run-config-v1");
  hash_sim(h, sim_);
  hash_sim(h, silicon_sim_);
  hash_opc_options(h, options_.opc);
  h.f64(options_.cdx.edge_trim_fraction)
      .u64(options_.cdx.num_slices)
      .f64(options_.cdx.reach_factor);
  h.u64(static_cast<std::uint64_t>(options_.extract_quality));
  h.i64(options_.ambit_nm);
  h.u64(options_.seed);
  h.u64(options_.silicon.enabled ? 1 : 0)
      .f64(options_.silicon.diffusion_delta_nm)
      .f64(options_.silicon.threshold_delta)
      .f64(options_.silicon.focus_bias_nm)
      .f64(options_.silicon.dose_scale)
      .f64(options_.silicon.aclv_sigma_nm);
  // Recovery shapes outcomes (retry counts, degradations), so records from
  // a differently-contained run must not replay.  threads and cache/journal
  // knobs are deliberately absent: results are bit-identical across them.
  h.u64(options_.recovery.enabled ? 1 : 0)
      .u64(options_.recovery.max_retries)
      .u64(options_.recovery.escalate_quality ? 1 : 0)
      .u64(options_.recovery.fallback_to_abbe ? 1 : 0);
  // Design identity: placement (cell + transform per instance) and the
  // gate map.  Window geometry itself is hashed per record; this coarse
  // gate catches a swapped design wholesale.
  const LayoutDb& layout = design_->layout;
  h.u64(layout.num_instances());
  for (std::size_t i = 0; i < layout.num_instances(); ++i) {
    const Instance& inst = layout.instance(i);
    h.u64(inst.cell);
    h.u64(static_cast<std::uint64_t>(inst.transform.orient));
    h.i64(inst.transform.offset.x).i64(inst.transform.offset.y);
  }
  h.u64(design_->netlist.num_gates());
  for (const std::size_t inst : design_->gate_to_instance) h.u64(inst);
  // Library characterization feeds the equivalent-gate records.
  const CharParams& cp = lib_->char_params();
  hash_mosfet(h, cp.nmos);
  hash_mosfet(h, cp.pmos);
  h.f64(cp.cgate_ff_per_um).f64(cp.cdiff_ff_per_um);
  return h.digest();
}

RunJournal::Stats PostOpcFlow::journal_stats() const {
  return journal_ ? journal_->stats() : RunJournal::Stats{};
}

std::vector<ReplayIssue> PostOpcFlow::journal_issues() const {
  return journal_ ? journal_->issues() : std::vector<ReplayIssue>{};
}

Fingerprint PostOpcFlow::opc_record_fp(std::size_t instance,
                                       OpcMode mode) const {
  const Instance& inst = design_->layout.instance(instance);
  const Rect window =
      inst.transform.apply(design_->layout.cell(inst.cell).boundary)
          .inflated(options_.ambit_nm);
  const std::vector<Polygon> targets =
      design_->layout.flatten_layer_polys(window, Layer::kPoly);
  FpHasher h;
  h.str("jopc").u64(instance).u64(static_cast<std::uint64_t>(mode));
  h.i64(window.xlo).i64(window.ylo).i64(window.xhi).i64(window.yhi);
  hash_sim(h, sim_);
  hash_opc_options(h, options_.opc);
  h.polys(targets, Point{0, 0});
  return h.digest();
}

Fingerprint PostOpcFlow::extract_record_fp(const LithoSimulator& sim,
                                           const Exposure& exposure,
                                           GateIdx gate) const {
  const std::size_t instance = design_->gate_to_instance[gate];
  const Rect window = design_->litho_window(gate, options_.ambit_nm);
  FpHasher h;
  h.str("jext").u64(gate).u64(instance);
  h.i64(window.xlo).i64(window.ylo).i64(window.xhi).i64(window.yhi);
  hash_sim(h, sim);
  hash_exposure(h, exposure);
  h.u64(static_cast<std::uint64_t>(options_.extract_quality));
  h.f64(options_.cdx.edge_trim_fraction)
      .u64(options_.cdx.num_slices)
      .f64(options_.cdx.reach_factor);
  // The extraction reads the post-OPC mask, so the record dies with it: a
  // resumed run whose OPC degraded differently can never replay a stale CD.
  h.rects(mask_for_instance(instance), Point{0, 0});
  for (const PlacedGate* pg : design_->gates_of(gate)) {
    h.rect(pg->region, Point{0, 0});
    h.u64(pg->vertical_poly ? 1 : 0);
  }
  return h.digest();
}

Fingerprint PostOpcFlow::scan_record_fp(
    std::size_t instance, const std::vector<ProcessCorner>& conditions,
    const OrcOptions& orc_options) const {
  const Instance& inst = design_->layout.instance(instance);
  const Rect window =
      inst.transform.apply(design_->layout.cell(inst.cell).boundary)
          .inflated(options_.ambit_nm);
  const std::vector<Polygon> targets =
      design_->layout.flatten_layer_polys(window, Layer::kPoly);
  FpHasher h;
  h.str("jscan").u64(instance);
  h.i64(window.xlo).i64(window.ylo).i64(window.xhi).i64(window.yhi);
  hash_sim(h, silicon_sim_);
  hash_sim(h, sim_);
  hash_opc_options(h, options_.opc);
  hash_orc_options(h, orc_options);
  h.polys(targets, Point{0, 0});
  h.rects(mask_for_instance(instance), Point{0, 0});
  h.u64(conditions.size());
  for (const ProcessCorner& c : conditions) {
    h.str(c.name);
    hash_exposure(h, c.exposure);
  }
  return h.digest();
}

FlowHealth PostOpcFlow::health() const {
  FlowHealth h;
  {
    std::lock_guard<std::mutex> lock(health_state_->mutex);
    h.faults = health_state_->faults;
    h.degraded_gates = health_state_->degraded_gates;
  }
  // Journal issues are read live, so an append-time failure (ENOSPC mid-
  // run parking the journal inert) surfaces the same way a replay reject
  // does: one phase-"journal" fault per issue.  kJournalIo means the run
  // lost durability — a degraded mode; kJournalMismatch records were
  // recomputed, which is containment working as designed.
  if (journal_) {
    for (const ReplayIssue& issue : journal_->issues()) {
      FlowHealth::WindowFault f;
      f.phase = "journal";
      f.index = issue.offset;
      f.code = issue.code;
      f.origin = issue.segment;
      f.attempts = 1;
      f.degraded = issue.code == FaultCode::kJournalIo;
      h.faults.push_back(std::move(f));
    }
  }
  // A disk-cache tier that went down after a publish I/O error keeps the
  // run bit-identical (the memory tier serves alone) but is a degraded
  // mode worth one phase-"cache" entry per store, in fixed order.
  if (caches_) {
    const DiskCacheStore* stores[] = {caches_->opc.disk_store(),
                                      caches_->latent.disk_store(),
                                      caches_->orc.disk_store()};
    for (const DiskCacheStore* store : stores) {
      if (store == nullptr || !store->degraded()) continue;
      FlowHealth::WindowFault f;
      f.phase = "cache";
      f.index = kNoWindowId;
      f.code = FaultCode::kCacheIo;
      f.origin = store->dir();
      f.attempts = 1;
      f.degraded = true;
      h.faults.push_back(std::move(f));
    }
  }
  for (const FlowHealth::WindowFault& f : h.faults) {
    if (f.attempts > 1) h.retries += f.attempts - 1;
    if (f.recovered) ++h.recovered_windows;
    if (f.degraded) ++h.degraded_windows;
  }
  return h;
}

void PostOpcFlow::reset_health() const {
  std::lock_guard<std::mutex> lock(health_state_->mutex);
  health_state_->faults.clear();
  health_state_->degraded_gates.clear();
}

void PostOpcFlow::record_outcomes(
    const char* phase, const std::vector<ItemOutcome>& outcomes,
    const std::vector<std::uint64_t>& indices) const {
  std::lock_guard<std::mutex> lock(health_state_->mutex);
  for (std::size_t k = 0; k < outcomes.size(); ++k) {
    const ItemOutcome& oc = outcomes[k];
    if (!oc.faulted) continue;
    FlowHealth::WindowFault f;
    f.phase = phase;
    f.index = indices[k];
    f.code = oc.first_error.code;
    f.origin = oc.first_error.origin;
    f.attempts = oc.attempts;
    f.recovered = oc.recovered;
    f.degraded = oc.degraded;
    log_warn("flow ", phase, " window ", f.index, " fault ",
             oc.first_error.to_string(),
             oc.degraded ? " -> degraded"
                         : (oc.recovered ? " -> recovered" : ""));
    health_state_->faults.push_back(std::move(f));
  }
}

void PostOpcFlow::record_degraded_gate(GateIdx gate) const {
  std::lock_guard<std::mutex> lock(health_state_->mutex);
  std::vector<GateIdx>& v = health_state_->degraded_gates;
  const auto it = std::lower_bound(v.begin(), v.end(), gate);
  if (it == v.end() || *it != gate) v.insert(it, gate);
}

PostOpcFlow::FlowCacheCounters PostOpcFlow::cache_counters() const {
  FlowCacheCounters c;
  if (caches_) {
    c.opc = caches_->opc.counters();
    c.latent = caches_->latent.counters();
    c.orc = caches_->orc.counters();
  }
  return c;
}

Exposure PostOpcFlow::silicon_exposure(const Exposure& e) const {
  if (!options_.silicon.enabled) return e;
  return {e.focus_nm + options_.silicon.focus_bias_nm,
          e.dose * options_.silicon.dose_scale};
}

StaEngine PostOpcFlow::make_sta() const {
  StaEngine engine(design_->netlist, *lib_);
  if (options_.use_parasitics && !design_->routes.empty()) {
    Extractor ex(design_->tech);
    engine.set_parasitics(ex.extract_design(*design_));
  }
  return engine;
}

StaReport PostOpcFlow::run_sta(
    const std::vector<DelayAnnotation>* annotations) const {
  StaEngine engine = make_sta();
  if (annotations != nullptr) engine.set_annotations(*annotations);
  return engine.run(options_.sta);
}

StaReport PostOpcFlow::run_sta_incremental(
    const std::vector<DelayAnnotation>* annotations) const {
  std::lock_guard<std::mutex> lock(timing_->mutex);
  if (timing_->graph == nullptr) {
    timing_->graph = std::make_unique<TimingGraph>(
        design_->netlist, *lib_, options_.sta, /*threads=*/threads());
    if (options_.use_parasitics && !design_->routes.empty()) {
      Extractor ex(design_->tech);
      timing_->graph->set_parasitics(ex.extract_design(*design_));
    }
  }
  // set_annotations diffs against the graph's current state, so only the
  // gates this re-time actually moved re-propagate.
  if (annotations != nullptr) {
    timing_->graph->set_annotations(*annotations);
  } else {
    timing_->graph->clear_annotations();
  }
  return timing_->graph->report();
}

TimingService PostOpcFlow::make_timing_service() const {
  TimingService service(design_->netlist, *lib_, options_.sta, threads());
  if (options_.use_parasitics && !design_->routes.empty()) {
    Extractor ex(design_->tech);
    service.set_parasitics(ex.extract_design(*design_));
  }
  return service;
}

std::vector<GateIdx> PostOpcFlow::tag_critical_gates(Ps slack_window) const {
  // Warm-graph re-time with drawn CDs; bit-identical to the old
  // StaEngine::critical_gates since both share TimingGraph's propagation.
  const StaReport report = run_sta_incremental(nullptr);
  std::vector<GateIdx> out;
  for (GateIdx g = 0; g < design_->netlist.num_gates(); ++g) {
    if (report.gate_slack[g] <= report.worst_slack + slack_window) {
      out.push_back(g);
    }
  }
  return out;
}

std::size_t PostOpcFlow::threads() const {
  return resolve_threads(options_.threads);
}

PostOpcFlow::OpcWindowResult PostOpcFlow::opc_window(std::size_t instance,
                                                     OpcMode mode,
                                                     OpcResult* staged) const {
  return opc_window_impl(instance, mode, sim_, options_.opc,
                         /*use_cache=*/true, staged);
}

PostOpcFlow::OpcWindowResult PostOpcFlow::opc_window_impl(
    std::size_t instance, OpcMode mode, const LithoSimulator& sim,
    const OpcOptions& opc_options, bool use_cache, OpcResult* staged) const {
  OpcWindowResult out;
  const Instance& inst = design_->layout.instance(instance);
  const Rect boundary =
      inst.transform.apply(design_->layout.cell(inst.cell).boundary);
  const Rect window = boundary.inflated(options_.ambit_nm);
  const std::vector<Polygon> targets =
      design_->layout.flatten_layer_polys(window, Layer::kPoly);
  if (targets.empty()) return out;

  // Cache key: window shape + targets in the local frame, plus everything
  // the correction depends on (mode, OPC options, the model simulator).
  // Retry attempts pass use_cache=false and skip both find and insert:
  // their escalated settings must never populate the nominal key.
  const bool cache = use_cache && caches_ != nullptr;
  const Point anchor{window.xlo, window.ylo};
  Fingerprint fp;
  if (cache) {
    fp = opc_cache_fp(mode, window, targets, anchor, sim, opc_options);
    if (const auto hit = caches_->opc.find(fp)) {
      out.mask.reserve(hit->mask.size());
      for (const Rect& r : hit->mask) out.mask.push_back(r.translated(anchor));
      out.stats = hit->stats;
      return out;
    }
  }

  ++out.stats.windows;
  switch (mode) {
    case OpcMode::kNone: {
      std::vector<Rect> rects;
      for (const Polygon& p : targets) {
        for (const Rect& r : decompose(p)) rects.push_back(r);
      }
      out.mask = disjoint_union(rects);
      break;
    }
    case OpcMode::kRuleBased: {
      std::vector<Fragment> frags =
          fragment_polygons(targets, opc_options.fragmentation);
      const std::vector<Polygon> corrected =
          rule_based_opc(targets, frags, RuleOpcTable{});
      std::vector<Rect> rects;
      for (const Polygon& p : corrected) {
        for (const Rect& r : decompose(p)) rects.push_back(r);
      }
      out.mask = disjoint_union(rects);
      out.stats.fragments += frags.size();
      break;
    }
    case OpcMode::kModelBased: {
      // A staged result comes from the batched pass and is bit-identical to
      // what correct() would return here; consume it instead of re-running
      // the engine.
      OpcEngine engine(sim, opc_options);
      const OpcResult result =
          staged != nullptr ? std::move(*staged)
                            : engine.correct(targets, window);
      out.mask = result.mask_rects();
      ++out.stats.model_based_windows;
      out.stats.fragments += result.fragments.size();
      out.stats.iterations += result.iterations;
      out.stats.max_abs_epe_nm = result.max_abs_epe_body_nm;
      out.stats.rms_epe_sum += result.rms_epe_body_nm;
      break;
    }
  }

  if (cache) {
    auto entry = std::make_shared<WindowCaches::OpcEntry>();
    const Point to_local{-anchor.x, -anchor.y};
    entry->mask.reserve(out.mask.size());
    for (const Rect& r : out.mask) entry->mask.push_back(r.translated(to_local));
    entry->stats = out.stats;
    const std::size_t cost =
        out.mask.size() * sizeof(Rect) + sizeof(WindowCaches::OpcEntry);
    caches_->opc.insert(fp, std::move(entry), cost);
  }
  return out;
}

std::vector<Rect> PostOpcFlow::drawn_mask_for_instance(
    std::size_t instance) const {
  const Instance& inst = design_->layout.instance(instance);
  const Rect window =
      inst.transform.apply(design_->layout.cell(inst.cell).boundary)
          .inflated(options_.ambit_nm);
  const std::vector<Polygon> targets =
      design_->layout.flatten_layer_polys(window, Layer::kPoly);
  std::vector<Rect> rects;
  for (const Polygon& p : targets) {
    for (const Rect& r : decompose(p)) rects.push_back(r);
  }
  return disjoint_union(rects);
}

void PostOpcFlow::run_opc_windows(
    const std::function<OpcMode(std::size_t)>& mode_for_instance,
    const std::vector<std::size_t>* subset) {
  const std::size_t n = design_->layout.num_instances();
  masks_.assign(n, {});
  opc_degraded_.assign(n, 0);
  // Loop space: all instances, or a shard's subset of them.  Slots stay
  // design-sized (indexed by instance); the loop index k maps through
  // inst_of so the shard path shares every line below.
  const std::size_t m = subset != nullptr ? subset->size() : n;
  const auto inst_of = [subset](std::size_t k) {
    return subset != nullptr ? (*subset)[k] : k;
  };
  // Each window writes its own mask slot; the per-window stats are merged
  // on the calling thread in instance order, so the aggregate is
  // bit-identical whatever the thread count.
  std::vector<OpcStats> per_window(n);
  const CancelToken* cancel = cancel_token();
  // Flush on every exit path — including the kCancelled unwind — so a
  // graceful shutdown leaves each drained window durable on disk.
  struct JournalFlusher {
    RunJournal* j;
    ~JournalFlusher() {
      if (j != nullptr) j->flush();
    }
  } flusher{journal_.get()};
  // Journal replay/append around the compute: a hit restores the window's
  // mask/stats/degradation bits; a computed window appends them.  Returns
  // true when the record replayed cleanly.
  const auto replay_window = [&](const JournalRecord& rec, std::size_t i) {
    bool degraded = false;
    if (!decode_opc_payload(rec.payload, masks_[i], per_window[i], degraded)) {
      return false;
    }
    opc_degraded_[i] = degraded ? 1 : 0;
    return true;
  };
  const auto journal_window = [&](const Fingerprint& fp, std::size_t i,
                                  const JournalOutcome& outcome) {
    JournalRecord rec;
    rec.phase = JournalPhase::kOpc;
    rec.index = i;
    rec.fp = fp;
    rec.outcome = outcome;
    rec.payload =
        encode_opc_payload(masks_[i], per_window[i], opc_degraded_[i] != 0);
    journal_->append(std::move(rec));
  };

  // Batched staging: the worker owning a chunk runs the model-based windows
  // that would actually compute (journal and cache misses) through the
  // lockstep correct_batch, then the unchanged per-instance bodies consume
  // the parked, bit-identical results.  Best-effort: any staging failure
  // falls back to the scalar engine under the window's own fault scope.
  const std::size_t chunk = loop_chunk(sim_);
  const bool batching = batching_enabled(sim_);
  std::vector<std::unique_ptr<OpcResult>> staged(n);
  const auto stage_chunk = [&](std::size_t first) {
    const ChunkSpan span = chunk_span(m, chunk, first);
    struct Pending {
      std::size_t i = 0;
      Rect window;
      std::vector<Polygon> targets;
    };
    std::vector<Pending> pending;
    for (std::size_t k = span.lo; k < span.hi; ++k) {
      const std::size_t i = inst_of(k);
      if (mode_for_instance(i) != OpcMode::kModelBased) continue;
      if (journal_ &&
          journal_->find(opc_record_fp(i, OpcMode::kModelBased)) != nullptr) {
        continue;  // will replay from the journal, not compute
      }
      const Instance& inst = design_->layout.instance(i);
      const Rect window =
          inst.transform.apply(design_->layout.cell(inst.cell).boundary)
              .inflated(options_.ambit_nm);
      std::vector<Polygon> targets =
          design_->layout.flatten_layer_polys(window, Layer::kPoly);
      if (targets.empty()) continue;
      if (caches_ != nullptr &&
          caches_->opc.peek(opc_cache_fp(
              OpcMode::kModelBased, window, targets,
              Point{window.xlo, window.ylo}, sim_, options_.opc)) != nullptr) {
        continue;  // the consumption path will hit the cache
      }
      pending.push_back({i, window, std::move(targets)});
    }
    if (pending.empty()) return;
    try {
      std::vector<OpcBatchJob> jobs;
      jobs.reserve(pending.size());
      for (const Pending& p : pending) jobs.push_back({&p.targets, p.window});
      const OpcEngine engine(sim_, options_.opc);
      std::vector<OpcResult> results = engine.correct_batch(
          jobs.data(), jobs.size(), Exposure{}, tls_scratch_arena());
      for (std::size_t b = 0; b < pending.size(); ++b) {
        staged[pending[b].i] =
            std::make_unique<OpcResult>(std::move(results[b]));
      }
    } catch (...) {
      for (std::size_t k = span.lo; k < span.hi; ++k) staged[inst_of(k)].reset();
    }
  };

  const RecoveryOptions& rec = options_.recovery;
  if (!rec.enabled) {
    // Fail-fast mode still names its windows for the fault harness, so an
    // injected fault aborts the run instead of being silently skipped —
    // containment is what changes the outcome, not the injection.
    parallel_for(threads(), m, chunk, [&](std::size_t k) {
      if (batching && chunk_span(m, chunk, k).lo == k) stage_chunk(k);
      const std::size_t i = inst_of(k);
      const OpcMode mode = mode_for_instance(i);
      Fingerprint jfp;
      if (journal_) {
        jfp = opc_record_fp(i, mode);
        if (const JournalRecord* hit = journal_->find(jfp)) {
          if (replay_window(*hit, i)) return;
        }
      }
      fault::Scope scope(fault::Domain::kOpc, i);
      fault::maybe_throw(fault::Kind::kAlloc);
      std::unique_ptr<OpcResult> mine = std::move(staged[i]);
      OpcWindowResult r = opc_window(i, mode, mine.get());
      masks_[i] = std::move(r.mask);
      per_window[i] = r.stats;
      if (journal_) journal_window(jfp, i, JournalOutcome{});
    }, cancel);
  } else {
    // Escalated settings shared by every retry attempt: sign-off quality
    // for the draft iterations and the Abbe reference engine when the
    // nominal path runs SOCS.
    OpcOptions retry_opts = options_.opc;
    if (rec.escalate_quality) retry_opts.sim_quality = retry_opts.final_quality;
    LithoSimulator retry_sim = sim_;
    if (rec.fallback_to_abbe && sim_.imaging().mode == ImagingMode::kSocs) {
      retry_sim = with_abbe(sim_);
      retry_opts.sim_imaging = OpcImaging::kAbbe;
      retry_opts.final_imaging = OpcImaging::kAbbe;
    }
    std::vector<ItemOutcome> outcomes(m);
    std::vector<std::uint64_t> indices(m);
    for (std::size_t k = 0; k < m; ++k) indices[k] = inst_of(k);
    const std::vector<IndexedError> escaped = try_parallel_for(
        threads(), m, chunk,
        [&](std::size_t k) {
          if (batching && chunk_span(m, chunk, k).lo == k) stage_chunk(k);
          const std::size_t i = inst_of(k);
          ItemOutcome& oc = outcomes[k];
          const OpcMode mode = mode_for_instance(i);
          Fingerprint jfp;
          if (journal_) {
            jfp = opc_record_fp(i, mode);
            if (const JournalRecord* hit = journal_->find(jfp)) {
              if (replay_window(*hit, i)) {
                // Reconstruct the containment outcome so health() matches
                // the uninterrupted run entry for entry.
                oc.faulted = hit->outcome.faulted;
                oc.first_error = FlowError{hit->outcome.code, i,
                                           hit->outcome.origin,
                                           hit->outcome.message};
                oc.attempts = hit->outcome.attempts;
                oc.recovered = hit->outcome.recovered;
                oc.degraded = hit->outcome.degraded;
                return;
              }
            }
          }
          fault::Scope scope(fault::Domain::kOpc, i);
          std::unique_ptr<OpcResult> mine = std::move(staged[i]);
          const std::size_t max_attempts = 1 + rec.max_retries;
          for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
            try {
              fault::maybe_throw(fault::Kind::kAlloc);
              // Staged corrections ran under nominal settings; retries use
              // the escalated engine and never consume them.
              OpcWindowResult r =
                  attempt == 0
                      ? opc_window(i, mode, mine.get())
                      : opc_window_impl(i, mode, retry_sim,
                                        retry_opts, /*use_cache=*/false);
              masks_[i] = std::move(r.mask);
              per_window[i] = r.stats;
              oc.attempts = attempt + 1;
              oc.recovered = attempt > 0;
              if (journal_) {
                journal_window(jfp, i,
                               JournalOutcome{oc.faulted, oc.first_error.code,
                                              oc.first_error.origin,
                                              oc.first_error.message,
                                              static_cast<std::uint32_t>(
                                                  oc.attempts),
                                              oc.recovered, false});
              }
              return;
            } catch (...) {
              if (!oc.faulted) {
                oc.faulted = true;
                oc.first_error = capture_flow_error(i, "flow.opc");
              }
              oc.attempts = attempt + 1;
            }
          }
          // Degrade: keep the run alive on the drawn (uncorrected) mask and
          // flag the instance so its gates fall back to drawn-CD timing
          // instead of extracting CDs from a silently-uncorrected mask.
          oc.degraded = true;
          try {
            masks_[i] = drawn_mask_for_instance(i);
          } catch (...) {
            masks_[i].clear();
          }
          per_window[i] = {};
          per_window[i].windows = 1;
          opc_degraded_[i] = 1;
          if (journal_) {
            journal_window(jfp, i,
                           JournalOutcome{oc.faulted, oc.first_error.code,
                                          oc.first_error.origin,
                                          oc.first_error.message,
                                          static_cast<std::uint32_t>(
                                              oc.attempts),
                                          false, true});
          }
        },
        "flow.opc", cancel);
    // The containment above absorbs everything, so try_parallel_for only
    // reports bugs in the degrade path itself — still fold them in rather
    // than lose them.
    for (const IndexedError& e : escaped) {
      outcomes[e.index].faulted = true;
      outcomes[e.index].degraded = true;
      outcomes[e.index].first_error = e.error;
      opc_degraded_[inst_of(e.index)] = 1;
    }
    record_outcomes("opc", outcomes, indices);
  }
  opc_stats_ = {};
  for (const OpcStats& w : per_window) opc_stats_ = merge_stats(opc_stats_, w);
  if (caches_) log_cache("OPC window", caches_->opc.counters());
}

void PostOpcFlow::run_opc(OpcMode mode) {
  run_opc_windows([mode](std::size_t) { return mode; });
  log_info("OPC done: ", opc_stats_.windows, " windows, ",
           opc_stats_.fragments, " fragments, max EPE ",
           opc_stats_.max_abs_epe_nm, " nm");
}

void PostOpcFlow::run_opc_subset(OpcMode mode,
                                 const std::vector<std::size_t>& instances) {
  run_opc_windows([mode](std::size_t) { return mode; }, &instances);
  log_info("OPC shard done: ", instances.size(), "/",
           design_->layout.num_instances(), " windows, ",
           opc_stats_.fragments, " fragments, max EPE ",
           opc_stats_.max_abs_epe_nm, " nm");
}

void PostOpcFlow::run_opc_selective(
    const std::vector<GateIdx>& critical_gates) {
  std::vector<bool> is_critical_instance(design_->layout.num_instances(),
                                         false);
  for (GateIdx g : critical_gates) {
    is_critical_instance[design_->gate_to_instance[g]] = true;
  }
  run_opc_windows([&is_critical_instance](std::size_t i) {
    return is_critical_instance[i] ? OpcMode::kModelBased
                                   : OpcMode::kRuleBased;
  });
  log_info("selective OPC done: ", opc_stats_.model_based_windows, "/",
           opc_stats_.windows, " windows model-based");
}

const std::vector<Rect>& PostOpcFlow::mask_for_instance(
    std::size_t instance) const {
  POC_EXPECTS(instance < masks_.size());
  return masks_[instance];
}

GateExtraction PostOpcFlow::extract_gate(GateIdx gate, const Image2D& latent,
                                         double threshold) const {
  GateExtraction ext;
  ext.gate = gate;
  const CharParams& cp = lib_->char_params();
  for (const PlacedGate* pg : design_->gates_of(gate)) {
    const Instance& inst = design_->layout.instance(pg->instance);
    const GateInfo& info =
        design_->layout.cell(inst.cell).gates[pg->gate_in_cell];
    DeviceCd dev;
    dev.device = info.device;
    dev.is_nmos = info.is_nmos;
    dev.drawn_l_nm = static_cast<double>(info.drawn_l);
    dev.drawn_w_nm = static_cast<double>(info.drawn_w);
    dev.profile = extract_gate_cd(latent, threshold, pg->region,
                                  pg->vertical_poly, options_.cdx);
    dev.eq = equivalent_gate(dev.profile, dev.drawn_w_nm,
                             dev.is_nmos ? cp.nmos : cp.pmos);
    ext.devices.push_back(std::move(dev));
  }
  return ext;
}

namespace {

std::vector<GateIdx> all_or_subset(
    const Netlist& nl, const std::optional<std::vector<GateIdx>>& subset) {
  if (subset) return *subset;
  std::vector<GateIdx> gates(nl.num_gates());
  for (GateIdx g = 0; g < gates.size(); ++g) gates[g] = g;
  return gates;
}

}  // namespace

std::vector<GateExtraction> PostOpcFlow::extract_impl(
    const LithoSimulator& sim, const Exposure& exposure,
    const std::optional<std::vector<GateIdx>>& subset) const {
  POC_EXPECTS(!masks_.empty());  // run_opc first
  const std::vector<GateIdx> gates = all_or_subset(design_->netlist, subset);
  // Per-gate silicon/model litho simulation + CD extraction is the flow's
  // dominant cost; every gate is independent and writes its own slot.
  std::vector<GateExtraction> out(gates.size());
  const CancelToken* cancel = cancel_token();

  // Batched staging (see "Batched window execution" in DESIGN.md): the
  // parallel chunk equals the SoA batch width, and the worker that owns a
  // chunk stages it whole at the chunk's first index — probe journal and
  // latent cache, batch-image only the windows that would actually compute,
  // park each latent in its per-index slot for the unchanged per-gate body
  // to consume.  Staged latents are bit-identical to scalar sim.latent
  // calls, and cache insertion still happens per index in chunk order, so
  // results, counters and insertion order match the unbatched loop exactly.
  const std::size_t chunk = loop_chunk(sim);
  const bool batching = batching_enabled(sim);
  std::vector<std::unique_ptr<Image2D>> staged(gates.size());
  const auto stage_chunk = [&](std::size_t first) {
    const ChunkSpan span = chunk_span(gates.size(), chunk, first);
    struct Pending {
      std::size_t k = 0;
      Rect window;
    };
    std::vector<Pending> pending;
    for (std::size_t k = span.lo; k < span.hi; ++k) {
      const GateIdx g = gates[k];
      const std::size_t instance = design_->gate_to_instance[g];
      if (!opc_degraded_.empty() && opc_degraded_[instance]) continue;
      if (journal_ &&
          journal_->find(extract_record_fp(sim, exposure, g)) != nullptr) {
        continue;  // will replay from the journal, not compute
      }
      const Rect window = design_->litho_window(g, options_.ambit_nm);
      if (caches_ != nullptr &&
          caches_->latent.peek(latent_window_fp(
              sim, mask_for_instance(instance), window, exposure,
              options_.extract_quality)) != nullptr) {
        continue;  // the consumption path will hit the cache
      }
      pending.push_back({k, window});
    }
    if (pending.empty()) return;
    try {
      ScratchArena& arena = tls_scratch_arena();
      std::vector<Image2D> masks(pending.size());
      for (std::size_t m = 0; m < pending.size(); ++m) {
        const GateIdx g = gates[pending[m].k];
        masks[m] =
            sim.rasterize(mask_for_instance(design_->gate_to_instance[g]),
                          pending[m].window, options_.extract_quality);
      }
      // Same-shape groups in first-appearance order; each is one SoA batch.
      std::vector<char> grouped(pending.size(), 0);
      for (std::size_t m = 0; m < pending.size(); ++m) {
        if (grouped[m]) continue;
        std::vector<std::size_t> members;
        for (std::size_t j = m; j < pending.size(); ++j) {
          if (!grouped[j] && masks[j].nx() == masks[m].nx() &&
              masks[j].ny() == masks[m].ny()) {
            members.push_back(j);
            grouped[j] = 1;
          }
        }
        std::vector<const Image2D*> ptrs;
        ptrs.reserve(members.size());
        for (std::size_t j : members) ptrs.push_back(&masks[j]);
        std::vector<Image2D> latents =
            sim.latent_batch(ptrs.data(), ptrs.size(), exposure,
                             options_.extract_quality, arena);
        for (std::size_t j = 0; j < members.size(); ++j) {
          staged[pending[members[j]].k] =
              std::make_unique<Image2D>(std::move(latents[j]));
        }
      }
    } catch (...) {
      // Best-effort: cleared slots make the per-gate bodies recompute
      // scalar, under their own fault scope and containment.
      for (std::size_t k = span.lo; k < span.hi; ++k) staged[k].reset();
    }
  };
  struct JournalFlusher {
    RunJournal* j;
    ~JournalFlusher() {
      if (j != nullptr) j->flush();
    }
  } flusher{journal_.get()};
  const auto journal_gate = [&](const Fingerprint& fp, GateIdx g,
                                const GateExtraction& ext,
                                const JournalOutcome& outcome) {
    JournalRecord rec;
    rec.phase = JournalPhase::kExtract;
    rec.index = g;
    rec.fp = fp;
    rec.outcome = outcome;
    rec.payload = encode_extract_payload(ext);
    journal_->append(std::move(rec));
  };
  const RecoveryOptions& rec = options_.recovery;
  if (!rec.enabled) {
    parallel_for(threads(), gates.size(), chunk, [&](std::size_t k) {
      if (batching && chunk_span(gates.size(), chunk, k).lo == k) {
        stage_chunk(k);
      }
      const GateIdx g = gates[k];
      Fingerprint jfp;
      if (journal_) {
        jfp = extract_record_fp(sim, exposure, g);
        if (const JournalRecord* hit = journal_->find(jfp)) {
          if (decode_extract_payload(hit->payload, out[k])) return;
        }
      }
      fault::Scope scope(fault::Domain::kExtract, g);
      fault::maybe_throw(fault::Kind::kAlloc);
      const std::size_t instance = design_->gate_to_instance[g];
      const Rect window = design_->litho_window(g, options_.ambit_nm);
      std::unique_ptr<Image2D> mine = std::move(staged[k]);
      const Image2D latent = latent_for_window(
          sim, mask_for_instance(instance), window, exposure,
          options_.extract_quality, /*use_cache=*/true, mine.get());
      out[k] = extract_gate(g, latent, sim.print_threshold());
      if (journal_) journal_gate(jfp, g, out[k], JournalOutcome{});
    }, cancel);
  } else {
    const LithoSimulator retry_sim =
        rec.fallback_to_abbe && sim.imaging().mode == ImagingMode::kSocs
            ? with_abbe(sim)
            : sim;
    const LithoQuality retry_quality =
        rec.escalate_quality ? kEscalatedQuality : options_.extract_quality;
    std::vector<ItemOutcome> outcomes(gates.size());
    std::vector<std::uint64_t> indices(gates.size());
    for (std::size_t k = 0; k < gates.size(); ++k) indices[k] = gates[k];
    const std::vector<IndexedError> escaped = try_parallel_for(
        threads(), gates.size(), chunk,
        [&](std::size_t k) {
          if (batching && chunk_span(gates.size(), chunk, k).lo == k) {
            stage_chunk(k);
          }
          const GateIdx g = gates[k];
          // The slot keeps its gate id whatever happens below: an empty-
          // device record is exactly the existing "gate without extraction"
          // path in annotate (drawn-CD timing), and it still consumes its
          // ACLV noise draw so every other gate's offset is unchanged.
          out[k].gate = g;
          const std::size_t instance = design_->gate_to_instance[g];
          if (opc_degraded_[instance]) {
            // The instance's OPC window already degraded; its drawn-mask
            // fallback must not feed CDs into STA.  Cheap enough that it is
            // recomputed on resume rather than journaled.
            record_degraded_gate(g);
            return;
          }
          ItemOutcome& oc = outcomes[k];
          Fingerprint jfp;
          if (journal_) {
            jfp = extract_record_fp(sim, exposure, g);
            if (const JournalRecord* hit = journal_->find(jfp)) {
              if (decode_extract_payload(hit->payload, out[k])) {
                oc.faulted = hit->outcome.faulted;
                oc.first_error = FlowError{hit->outcome.code, g,
                                           hit->outcome.origin,
                                           hit->outcome.message};
                oc.attempts = hit->outcome.attempts;
                oc.recovered = hit->outcome.recovered;
                oc.degraded = hit->outcome.degraded;
                if (oc.degraded) record_degraded_gate(g);
                return;
              }
            }
          }
          fault::Scope scope(fault::Domain::kExtract, g);
          const Rect window = design_->litho_window(g, options_.ambit_nm);
          std::unique_ptr<Image2D> mine = std::move(staged[k]);
          const std::size_t max_attempts = 1 + rec.max_retries;
          for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
            const LithoSimulator& s = attempt == 0 ? sim : retry_sim;
            const LithoQuality q =
                attempt == 0 ? options_.extract_quality : retry_quality;
            try {
              fault::maybe_throw(fault::Kind::kAlloc);
              // Staged latents were computed under nominal settings, so
              // retries (fallback sim / escalated quality) never consume
              // them.
              const Image2D latent = latent_for_window(
                  s, mask_for_instance(instance), window, exposure, q,
                  /*use_cache=*/attempt == 0,
                  attempt == 0 ? mine.get() : nullptr);
              out[k] = extract_gate(g, latent, s.print_threshold());
              oc.attempts = attempt + 1;
              oc.recovered = attempt > 0;
              if (journal_) {
                journal_gate(jfp, g, out[k],
                             JournalOutcome{oc.faulted, oc.first_error.code,
                                            oc.first_error.origin,
                                            oc.first_error.message,
                                            static_cast<std::uint32_t>(
                                                oc.attempts),
                                            oc.recovered, false});
              }
              return;
            } catch (...) {
              if (!oc.faulted) {
                oc.faulted = true;
                oc.first_error = capture_flow_error(g, "flow.extract");
              }
              oc.attempts = attempt + 1;
            }
          }
          oc.degraded = true;
          out[k].devices.clear();
          record_degraded_gate(g);
          if (journal_) {
            journal_gate(jfp, g, out[k],
                         JournalOutcome{oc.faulted, oc.first_error.code,
                                        oc.first_error.origin,
                                        oc.first_error.message,
                                        static_cast<std::uint32_t>(
                                            oc.attempts),
                                        false, true});
          }
        },
        "flow.extract", cancel);
    for (const IndexedError& e : escaped) {
      outcomes[e.index].faulted = true;
      outcomes[e.index].degraded = true;
      outcomes[e.index].first_error = e.error;
      record_degraded_gate(gates[e.index]);
    }
    record_outcomes("extract", outcomes, indices);
  }
  if (caches_) {
    const CacheCounters c = caches_->latent.counters();
    log_debug("latent cache: ", c.hits, " hits / ", c.misses, " misses (",
              c.hit_rate() * 100.0, "% hit rate)");
  }
  return out;
}

Image2D PostOpcFlow::latent_for_window(const LithoSimulator& sim,
                                       const std::vector<Rect>& mask,
                                       const Rect& window,
                                       const Exposure& exposure,
                                       LithoQuality quality,
                                       bool use_cache,
                                       Image2D* staged) const {
  if (!caches_ || !use_cache) {
    if (staged != nullptr) return std::move(*staged);
    return sim.latent(mask, window, exposure, quality);
  }
  // The latent image depends on optics, resist diffusion (the threshold
  // only applies downstream, at contour extraction), exposure, quality and
  // the mask in the local frame.  Image origins are window.xlo/ylo minus a
  // half-integer centering offset, so rebasing them between frames is exact
  // in doubles: a translated replay equals a recompute bit for bit.
  const Point anchor{window.xlo, window.ylo};
  const Fingerprint fp = latent_window_fp(sim, mask, window, exposure, quality);

  const double ax = static_cast<double>(anchor.x);
  const double ay = static_cast<double>(anchor.y);
  if (const auto hit = caches_->latent.find(fp)) {
    Image2D img(hit->nx(), hit->ny(), hit->pixel(), hit->origin_x() + ax,
                hit->origin_y() + ay);
    img.data() = hit->data();
    return img;
  }

  Image2D latent = staged != nullptr
                       ? std::move(*staged)
                       : sim.latent(mask, window, exposure, quality);
  auto entry = std::make_shared<Image2D>(latent.nx(), latent.ny(),
                                         latent.pixel(), latent.origin_x() - ax,
                                         latent.origin_y() - ay);
  entry->data() = latent.data();
  const std::size_t cost =
      latent.nx() * latent.ny() * sizeof(double) + sizeof(Image2D);
  caches_->latent.insert(fp, std::move(entry), cost);
  return latent;
}

std::vector<GateExtraction> PostOpcFlow::extract(
    const Exposure& exposure,
    const std::optional<std::vector<GateIdx>>& subset) const {
  return extract_impl(silicon_sim_, silicon_exposure(exposure), subset);
}

std::vector<GateExtraction> PostOpcFlow::extract_with_model(
    const Exposure& exposure,
    const std::optional<std::vector<GateIdx>>& subset) const {
  return extract_impl(sim_, exposure, subset);
}

namespace {

/// Recomputes the equivalent gate with a uniform CD offset (ACLV noise).
EquivalentGate eq_with_offset(const DeviceCd& dev, double offset_nm,
                              const MosfetParams& params) {
  GateCdProfile shifted = dev.profile;
  for (double& cd : shifted.slice_cd_nm) {
    if (cd > 0.0) cd = std::max(1.0, cd + offset_nm);
  }
  return equivalent_gate(shifted, dev.drawn_w_nm, params);
}

}  // namespace

std::vector<DelayAnnotation> PostOpcFlow::annotate(
    const std::vector<GateExtraction>& extractions) const {
  Rng no_noise(0);
  return annotate_with_aclv(extractions, 0.0, no_noise);
}

std::vector<DelayAnnotation> PostOpcFlow::annotate_with_aclv(
    const std::vector<GateExtraction>& extractions, double aclv_sigma_nm,
    Rng& rng) const {
  const Netlist& nl = design_->netlist;
  const CharParams& cp = lib_->char_params();
  std::vector<DelayAnnotation> ann(nl.num_gates());
  for (const GateExtraction& ext : extractions) {
    POC_EXPECTS(ext.gate < ann.size());
    const double offset =
        aclv_sigma_nm > 0.0 ? rng.normal(0.0, aclv_sigma_nm) : 0.0;
    double n_drive = 0.0, p_drive = 0.0, leak_num = 0.0, leak_den = 0.0;
    std::size_t n_count = 0, p_count = 0;
    for (const DeviceCd& dev : ext.devices) {
      const MosfetParams& mp = dev.is_nmos ? cp.nmos : cp.pmos;
      const EquivalentGate eq =
          offset == 0.0 ? dev.eq : eq_with_offset(dev, offset, mp);
      const double drive = eq.drive_ratio_vs(dev.drawn_l_nm, mp);
      const double leak = eq.leak_ratio_vs(dev.drawn_l_nm, mp);
      if (dev.is_nmos) {
        n_drive += drive;
        ++n_count;
      } else {
        p_drive += drive;
        ++p_count;
      }
      // Weight leakage ratios by the device's drawn leakage contribution.
      const double base = mp.ioff_per_um(dev.drawn_l_nm) * eq.width_um;
      leak_num += leak * base;
      leak_den += base;
    }
    DelayAnnotation& a = ann[ext.gate];
    if (n_count > 0) {
      a.fall_scale = 1.0 / safe_ratio(n_drive / static_cast<double>(n_count));
    }
    if (p_count > 0) {
      a.rise_scale = 1.0 / safe_ratio(p_drive / static_cast<double>(p_count));
    }
    if (leak_den > 0.0) a.leak_scale = leak_num / leak_den;
  }
  return ann;
}

TimingComparison PostOpcFlow::compare_timing(const Exposure& exposure) {
  TimingComparison cmp;
  // Both re-times go through the warm graph: the drawn run marks whatever
  // the previous state left dirty, the annotated run re-propagates only the
  // gates whose extracted CDs moved off drawn.  Reports stay bit-identical
  // to stateless run_sta (GoldenT2 pins this).
  cmp.drawn = run_sta_incremental(nullptr);
  const std::vector<GateExtraction> ext = extract(exposure);
  // Silicon CDs carry the across-chip random component on top of the
  // systematic residual; deterministic in the flow seed.
  Rng rng(options_.seed);
  const std::vector<DelayAnnotation> ann = annotate_with_aclv(
      ext, options_.silicon.enabled ? options_.silicon.aclv_sigma_nm : 0.0,
      rng);
  cmp.annotated = run_sta_incremental(&ann);
  cmp.ranks =
      compare_path_ranks(design_->netlist, cmp.drawn.paths,
                         cmp.annotated.paths);
  if (cmp.drawn.worst_slack != 0.0) {
    cmp.worst_slack_change_pct =
        (cmp.annotated.worst_slack - cmp.drawn.worst_slack) /
        std::abs(cmp.drawn.worst_slack) * 100.0;
  }
  if (cmp.drawn.total_leakage_ua > 0.0) {
    cmp.leakage_change_pct = (cmp.annotated.total_leakage_ua -
                              cmp.drawn.total_leakage_ua) /
                             cmp.drawn.total_leakage_ua * 100.0;
  }
  cmp.health = health();
  if (!cmp.health.clean()) {
    log_warn("flow health: ", cmp.health.faults.size(), " faulted windows, ",
             cmp.health.recovered_windows, " recovered, ",
             cmp.health.degraded_windows, " degraded (",
             cmp.health.degraded_gates.size(), " gates on drawn-CD timing)");
  }
  return cmp;
}

PostOpcFlow::HotspotReport PostOpcFlow::scan_hotspots(
    const std::vector<ProcessCorner>& conditions,
    const OrcOptions& orc_options) const {
  POC_EXPECTS(!masks_.empty());  // run_opc first
  const OpcEngine engine(sim_, options_.opc);
  const std::size_t n = design_->layout.num_instances();
  // Batched staging: per (window, corner) the scan consumes two latent
  // images — the silicon print and the OPC model's view (EPE probes).  The
  // worker owning a chunk images both through the SoA engine for every
  // journal/cache-missing pair and parks them as OrcLatents; rasterization
  // is sim-independent, so one raster per window feeds both batches.
  // Corners cannot share a batch (defocus changes the TCC kernels), so
  // batching runs across the chunk's windows within each corner.
  const std::size_t chunk = loop_chunk(silicon_sim_);
  const bool batching = batching_enabled(silicon_sim_);
  std::vector<std::vector<std::unique_ptr<OrcLatents>>> staged(n);

  // Per-window ORC across all corners; partial reports land in per-window
  // slots and merge in instance order, so violation order and counts match
  // the serial scan exactly.  Retries (`use_cache` false) bypass the ORC
  // cache so nothing computed on the recovery path lands under the nominal
  // key.
  const auto scan_window = [&](std::size_t i, bool use_cache) {
    HotspotReport partial;
    const bool cache_window = caches_ != nullptr && use_cache;
    const Instance& inst = design_->layout.instance(i);
    const Rect window =
        inst.transform.apply(design_->layout.cell(inst.cell).boundary)
            .inflated(options_.ambit_nm);
    const std::vector<Polygon> targets =
        design_->layout.flatten_layer_polys(window, Layer::kPoly);
    if (targets.empty()) return partial;
    ++partial.windows_checked;
    const Point anchor{window.xlo, window.ylo};
    // Everything but the exposure is corner-invariant, so the window
    // geometry is hashed once and the hasher forked per corner.  The
    // key covers both simulators: run_orc probes pinch/bridge with the
    // silicon latent and measures EPE through the engine's model sim.
    FpHasher base;
    if (cache_window) {
      base.str("orc");
      hash_sim(base, silicon_sim_);
      hash_sim(base, sim_);
      hash_opc_options(base, options_.opc);
      hash_orc_options(base, orc_options);
      base.i64(window.width()).i64(window.height());
      base.polys(targets, anchor);
      base.rects(mask_for_instance(i), anchor);
    }
    for (std::size_t c = 0; c < conditions.size(); ++c) {
      const ProcessCorner& corner = conditions[c];
      // Hotspots are judged against the silicon reference, not the
      // model.
      const Exposure exposure = silicon_exposure(corner.exposure);
      OrcReport orc;
      bool cached = false;
      Fingerprint fp;
      if (cache_window) {
        FpHasher h = base;
        hash_exposure(h, exposure);
        fp = h.digest();
        if (const auto hit = caches_->orc.find(fp)) {
          orc = hit->report;
          for (OrcViolation& v : orc.violations) {
            v.where = v.where + anchor;
          }
          cached = true;
        }
      }
      if (!cached) {
        // Staged latents come from the batched pass at nominal settings;
        // retries (use_cache false) never consume them.
        std::unique_ptr<OrcLatents> mine;
        if (use_cache && staged[i].size() == conditions.size()) {
          mine = std::move(staged[i][c]);
        }
        orc = mine != nullptr
                  ? run_orc_staged(silicon_sim_, engine, targets, window,
                                   *mine, orc_options)
                  : run_orc(silicon_sim_, engine, targets,
                            mask_for_instance(i), window, exposure,
                            orc_options);
        if (cache_window) {
          auto entry = std::make_shared<WindowCaches::OrcEntry>();
          entry->report = orc;
          const Point to_local{-anchor.x, -anchor.y};
          for (OrcViolation& v : entry->report.violations) {
            v.where = v.where + to_local;
          }
          const std::size_t cost =
              orc.violations.size() * sizeof(OrcViolation) +
              sizeof(WindowCaches::OrcEntry);
          caches_->orc.insert(fp, std::move(entry), cost);
        }
      }
      for (const OrcViolation& v : orc.violations) {
        switch (v.kind) {
          case OrcViolation::Kind::kPinch: ++partial.pinches; break;
          case OrcViolation::Kind::kBridge: ++partial.bridges; break;
          case OrcViolation::Kind::kEpe: ++partial.epe_violations; break;
        }
        partial.hotspots.push_back({i, corner.name, v});
      }
    }
    return partial;
  };

  const auto stage_chunk = [&](std::size_t first) {
    const ChunkSpan span = chunk_span(n, chunk, first);
    struct Win {
      std::size_t i = 0;
      Rect window;
      Image2D raster;
      FpHasher base;  ///< corner-invariant key prefix; forked per corner
      bool has_base = false;
    };
    std::vector<Win> wins;
    for (std::size_t i = span.lo; i < span.hi; ++i) {
      if (journal_ &&
          journal_->find(scan_record_fp(i, conditions, orc_options)) !=
              nullptr) {
        continue;  // will replay from the journal, not compute
      }
      const Instance& inst = design_->layout.instance(i);
      const Rect window =
          inst.transform.apply(design_->layout.cell(inst.cell).boundary)
              .inflated(options_.ambit_nm);
      const std::vector<Polygon> targets =
          design_->layout.flatten_layer_polys(window, Layer::kPoly);
      if (targets.empty()) continue;
      Win w;
      w.i = i;
      w.window = window;
      if (caches_ != nullptr) {
        // Mirrors the key scan_window builds, so peeks hit iff find will.
        w.base.str("orc");
        hash_sim(w.base, silicon_sim_);
        hash_sim(w.base, sim_);
        hash_opc_options(w.base, options_.opc);
        hash_orc_options(w.base, orc_options);
        w.base.i64(window.width()).i64(window.height());
        w.base.polys(targets, Point{window.xlo, window.ylo});
        w.base.rects(mask_for_instance(i), Point{window.xlo, window.ylo});
        w.has_base = true;
      }
      wins.push_back(std::move(w));
    }
    if (wins.empty()) return;
    try {
      ScratchArena& arena = tls_scratch_arena();
      for (Win& w : wins) {
        w.raster = silicon_sim_.rasterize(mask_for_instance(w.i), w.window,
                                          orc_options.quality);
        staged[w.i].resize(conditions.size());
      }
      for (std::size_t c = 0; c < conditions.size(); ++c) {
        const Exposure exposure = silicon_exposure(conditions[c].exposure);
        std::vector<std::size_t> members;
        for (std::size_t m = 0; m < wins.size(); ++m) {
          if (wins[m].has_base) {
            FpHasher h = wins[m].base;
            hash_exposure(h, exposure);
            if (caches_->orc.peek(h.digest()) != nullptr) continue;
          }
          members.push_back(m);
        }
        // Same-shape groups in first-appearance order; one raster per
        // window serves both the silicon and the model batch.
        std::vector<char> grouped(members.size(), 0);
        for (std::size_t a = 0; a < members.size(); ++a) {
          if (grouped[a]) continue;
          const Image2D& ref = wins[members[a]].raster;
          std::vector<std::size_t> shape;
          for (std::size_t b = a; b < members.size(); ++b) {
            const Image2D& rb = wins[members[b]].raster;
            if (!grouped[b] && rb.nx() == ref.nx() && rb.ny() == ref.ny()) {
              shape.push_back(b);
              grouped[b] = 1;
            }
          }
          std::vector<const Image2D*> ptrs;
          ptrs.reserve(shape.size());
          for (std::size_t s : shape) {
            ptrs.push_back(&wins[members[s]].raster);
          }
          std::vector<Image2D> silicon = silicon_sim_.latent_batch(
              ptrs.data(), ptrs.size(), exposure, orc_options.quality, arena);
          std::vector<Image2D> model = sim_.latent_batch(
              ptrs.data(), ptrs.size(), exposure, orc_options.quality, arena);
          for (std::size_t s = 0; s < shape.size(); ++s) {
            staged[wins[members[shape[s]]].i][c] =
                std::make_unique<OrcLatents>(OrcLatents{
                    std::move(silicon[s]), std::move(model[s])});
          }
        }
      }
    } catch (...) {
      for (std::size_t i = span.lo; i < span.hi; ++i) staged[i].clear();
    }
  };

  std::vector<HotspotReport> slots(n);
  const CancelToken* cancel = cancel_token();
  struct JournalFlusher {
    RunJournal* j;
    ~JournalFlusher() {
      if (j != nullptr) j->flush();
    }
  } flusher{journal_.get()};
  const auto journal_scan = [&](const Fingerprint& fp, std::size_t i,
                                const JournalOutcome& outcome) {
    JournalRecord rec;
    rec.phase = JournalPhase::kScan;
    rec.index = i;
    rec.fp = fp;
    rec.outcome = outcome;
    rec.payload = encode_scan_payload(slots[i]);
    journal_->append(std::move(rec));
  };
  const RecoveryOptions& rec = options_.recovery;
  if (!rec.enabled) {
    parallel_for(threads(), n, chunk, [&](std::size_t i) {
      if (batching && chunk_span(n, chunk, i).lo == i) stage_chunk(i);
      Fingerprint jfp;
      if (journal_) {
        jfp = scan_record_fp(i, conditions, orc_options);
        if (const JournalRecord* hit = journal_->find(jfp)) {
          if (decode_scan_payload(hit->payload, slots[i])) return;
        }
      }
      fault::Scope scope(fault::Domain::kScan, i);
      fault::maybe_throw(fault::Kind::kAlloc);
      slots[i] = scan_window(i, true);
      if (journal_) journal_scan(jfp, i, JournalOutcome{});
    }, cancel);
  } else {
    std::vector<ItemOutcome> outcomes(n);
    std::vector<std::uint64_t> indices(n);
    for (std::size_t i = 0; i < n; ++i) indices[i] = i;
    const std::vector<IndexedError> escaped = try_parallel_for(
        threads(), n, chunk,
        [&](std::size_t i) {
          if (batching && chunk_span(n, chunk, i).lo == i) stage_chunk(i);
          ItemOutcome& oc = outcomes[i];
          Fingerprint jfp;
          if (journal_) {
            jfp = scan_record_fp(i, conditions, orc_options);
            if (const JournalRecord* hit = journal_->find(jfp)) {
              if (decode_scan_payload(hit->payload, slots[i])) {
                oc.faulted = hit->outcome.faulted;
                oc.first_error = FlowError{hit->outcome.code, i,
                                           hit->outcome.origin,
                                           hit->outcome.message};
                oc.attempts = hit->outcome.attempts;
                oc.recovered = hit->outcome.recovered;
                oc.degraded = hit->outcome.degraded;
                return;
              }
            }
          }
          fault::Scope scope(fault::Domain::kScan, i);
          const std::size_t max_attempts = 1 + rec.max_retries;
          for (std::size_t attempt = 0; attempt < max_attempts; ++attempt) {
            try {
              fault::maybe_throw(fault::Kind::kAlloc);
              slots[i] = scan_window(i, /*use_cache=*/attempt == 0);
              oc.attempts = attempt + 1;
              oc.recovered = attempt > 0;
              if (journal_) {
                journal_scan(jfp, i,
                             JournalOutcome{oc.faulted, oc.first_error.code,
                                            oc.first_error.origin,
                                            oc.first_error.message,
                                            static_cast<std::uint32_t>(
                                                oc.attempts),
                                            oc.recovered, false});
              }
              return;
            } catch (...) {
              if (!oc.faulted) {
                oc.faulted = true;
                oc.first_error = capture_flow_error(i, "flow.scan");
              }
              oc.attempts = attempt + 1;
            }
          }
          // Degrade: the window's violations are dropped (conservative for
          // timing, not for ORC — the fault record is the signal).
          oc.degraded = true;
          slots[i] = {};
          if (journal_) {
            journal_scan(jfp, i,
                         JournalOutcome{oc.faulted, oc.first_error.code,
                                        oc.first_error.origin,
                                        oc.first_error.message,
                                        static_cast<std::uint32_t>(
                                            oc.attempts),
                                        false, true});
          }
        },
        "flow.scan", cancel);
    for (const IndexedError& e : escaped) {
      outcomes[e.index].faulted = true;
      outcomes[e.index].degraded = true;
      outcomes[e.index].first_error = e.error;
      slots[e.index] = {};
    }
    record_outcomes("scan", outcomes, indices);
  }

  HotspotReport report;
  for (HotspotReport& w : slots) {
    report.windows_checked += w.windows_checked;
    report.pinches += w.pinches;
    report.bridges += w.bridges;
    report.epe_violations += w.epe_violations;
    report.hotspots.insert(report.hotspots.end(),
                           std::make_move_iterator(w.hotspots.begin()),
                           std::make_move_iterator(w.hotspots.end()));
  }
  log_info("hotspot scan: ", report.hotspots.size(), " violations over ",
           report.windows_checked, " windows x ", conditions.size(),
           " conditions");
  if (caches_) log_cache("ORC", caches_->orc.counters());
  return report;
}

std::vector<PostOpcFlow::DeviceResponse> PostOpcFlow::fit_responses(
    const std::optional<std::vector<GateIdx>>& subset) const {
  const std::vector<Exposure> grid = response_fit_grid();
  POC_EXPECTS(!grid.empty());
  // Extraction per grid point; the grid point closest to nominal (focus 0,
  // dose 1) provides the slice shape.  Nearest-point selection (distances
  // normalized by typical process-window half-widths: 150 nm focus, 10 %
  // dose) keeps this correct for grids that do not sample nominal exactly
  // — the old exact-match scan silently fell back to grid[0], the extreme
  // negative-focus/low-dose corner.
  std::vector<std::vector<GateExtraction>> per_exposure;
  per_exposure.reserve(grid.size());
  for (const Exposure& e : grid) {
    per_exposure.push_back(extract(e, subset));
  }
  std::size_t nominal_idx = 0;
  double nominal_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const double df = grid[i].focus_nm / 150.0;
    const double dd = (grid[i].dose - 1.0) / 0.10;
    const double dist = df * df + dd * dd;
    if (dist < nominal_dist) {
      nominal_dist = dist;
      nominal_idx = i;
    }
  }
  std::vector<DeviceResponse> out;
  const std::size_t num_gates = per_exposure.front().size();
  for (std::size_t gi = 0; gi < num_gates; ++gi) {
    const GateExtraction& nominal = per_exposure[nominal_idx][gi];
    for (std::size_t di = 0; di < nominal.devices.size(); ++di) {
      DeviceResponse resp;
      resp.gate = nominal.gate;
      resp.device = nominal.devices[di].device;
      resp.is_nmos = nominal.devices[di].is_nmos;
      resp.drawn_l_nm = nominal.devices[di].drawn_l_nm;
      resp.drawn_w_nm = nominal.devices[di].drawn_w_nm;
      std::vector<std::pair<Exposure, double>> samples;
      for (std::size_t e = 0; e < grid.size(); ++e) {
        samples.emplace_back(grid[e],
                             per_exposure[e][gi].devices[di].profile.mean_cd());
      }
      resp.mean_cd = fit_cd_response(samples);
      const GateCdProfile& prof = nominal.devices[di].profile;
      const double mean = prof.mean_cd();
      for (double cd : prof.slice_cd_nm) {
        resp.slice_offsets_nm.push_back(cd > 0.0 ? cd - mean : 0.0);
      }
      resp.slice_width_nm = prof.slice_width_nm;
      out.push_back(std::move(resp));
    }
  }
  return out;
}

std::vector<GateExtraction> PostOpcFlow::mc_extraction(
    const std::vector<DeviceResponse>& responses, const Exposure& exposure,
    double aclv_sigma_nm, Rng& rng) const {
  const CharParams& cp = lib_->char_params();
  std::vector<GateExtraction> out;
  std::unordered_map<std::size_t, std::size_t> gate_slot;
  std::unordered_map<std::size_t, double> gate_aclv;
  for (const DeviceResponse& r : responses) {
    if (!gate_slot.contains(r.gate)) {
      gate_slot[r.gate] = out.size();
      gate_aclv[r.gate] =
          aclv_sigma_nm > 0.0 ? rng.normal(0.0, aclv_sigma_nm) : 0.0;
      GateExtraction ext;
      ext.gate = r.gate;
      out.push_back(std::move(ext));
    }
    DeviceCd dev;
    dev.device = r.device;
    dev.is_nmos = r.is_nmos;
    dev.drawn_l_nm = r.drawn_l_nm;
    dev.drawn_w_nm = r.drawn_w_nm;
    const double mean = r.mean_cd.eval(exposure) + gate_aclv[r.gate];
    dev.profile.drawn_cd_nm = r.drawn_l_nm;
    dev.profile.slice_width_nm = r.slice_width_nm;
    for (double off : r.slice_offsets_nm) {
      dev.profile.slice_cd_nm.push_back(std::max(1.0, mean + off));
    }
    dev.eq = equivalent_gate(dev.profile, dev.drawn_w_nm,
                             dev.is_nmos ? cp.nmos : cp.pmos);
    out[gate_slot[r.gate]].devices.push_back(std::move(dev));
  }
  return out;
}

}  // namespace poc
