// Monte-Carlo timing over the joint (focus, dose, ACLV) process model —
// the sampling loop behind experiment T3, hoisted out of the bench into
// the library so it runs on the deterministic parallel engine.  Each
// sample evaluates the fitted per-gate CD response surfaces at a drawn
// exposure, back-annotates, and re-runs STA; samples are independent, so
// the loop parallelizes over sample index with a counter-derived RNG
// stream per sample (Rng::stream(seed, s)).  Results are bit-identical
// for every thread count.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/stats.h"
#include "src/core/flow.h"
#include "src/var/variation.h"

namespace poc {

struct McTimingSample {
  Exposure exposure;
  Ps worst_slack = 0.0;
  double leakage_ua = 0.0;
};

struct McTimingResult {
  std::vector<McTimingSample> samples;  ///< indexed by sample id
  RunningStats slack_stats;
  RunningStats leak_stats;

  /// Worst slacks in sample order (percentile() input).
  std::vector<double> slacks() const;
};

/// Runs `num_samples` process-window draws through annotate + STA using
/// `flow.options().threads` threads.  Sample s draws its exposure and all
/// per-gate ACLV noise from Rng::stream(seed, s), so the result does not
/// depend on scheduling; the stats fold in sample order.
McTimingResult run_mc_timing(
    const PostOpcFlow& flow,
    const std::vector<PostOpcFlow::DeviceResponse>& responses,
    const VariationModel& model, std::size_t num_samples, std::uint64_t seed);

}  // namespace poc
