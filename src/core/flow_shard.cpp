#include "src/core/flow_shard.h"

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "src/common/log.h"

namespace poc {
namespace {

namespace fs = std::filesystem;

/// One phase-"shard" fault for the out-of-band health report.
FlowHealth::WindowFault shard_fault(std::uint64_t worker, FaultCode code,
                                    std::string origin, bool recovered,
                                    bool degraded) {
  FlowHealth::WindowFault f;
  f.phase = "shard";
  f.index = worker;
  f.code = code;
  f.origin = std::move(origin);
  f.attempts = 1;
  f.recovered = recovered;
  f.degraded = degraded;
  return f;
}

/// Gates whose instances the shard owns — the extraction half of the
/// shard's window space.  The gate->instance map is many-to-one, so this
/// partitions gates exactly like partition_shards partitions instances.
std::vector<GateIdx> shard_gates(const PlacedDesign& design,
                                 const ShardSpec& spec) {
  std::vector<GateIdx> gates;
  for (GateIdx g = 0; g < design.gate_to_instance.size(); ++g) {
    if (shard_owns(spec, design.gate_to_instance[g])) gates.push_back(g);
  }
  return gates;
}

}  // namespace

std::string shard_worker_dir(const std::string& work_dir,
                             std::uint32_t worker) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "w%02u", worker);
  return work_dir + "/" + buf;
}

std::string shard_stats_name(std::uint32_t worker) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "run.w%02u.stats", worker);
  return buf;
}

bool run_shard_worker(const PlacedDesign& design, const StdCellLibrary& lib,
                      const LithoSimulator& sim, FlowOptions base,
                      const ShardWorkerOptions& options) {
  const ShardSpec& spec = options.spec;
  const std::string worker_dir = shard_worker_dir(options.work_dir, spec.worker);
  const auto t0 = std::chrono::steady_clock::now();

  // The worker's durability story is its private write-ahead journal: every
  // completed window lands there first, so even a SIGKILL mid-run leaves a
  // salvageable record of everything durably finished.
  FlowOptions opts = std::move(base);
  opts.journal.enabled = true;
  opts.journal.path = worker_dir + "/journal";
  opts.journal.kill_after_appends = options.kill_after_appends;

  const std::vector<std::size_t> instances = shard_indices(spec);
  const std::vector<GateIdx> gates = shard_gates(design, spec);

  Fingerprint config_fp;
  PostOpcFlow::FlowCacheCounters counters;
  {
    PostOpcFlow flow(design, lib, sim, opts);
    config_fp = flow.config_fingerprint();
    flow.run_opc_subset(options.opc_mode, instances);
    (void)flow.extract(options.exposure, gates);
    counters = flow.cache_counters();
    // Flow destruction seals the journal's active segment.
  }

  // Publish: re-read the sealed journal (replay validates every record and
  // truncates any torn tail) and write its records as this worker's shard
  // segment, temp-file + atomic rename.
  JournalOptions reopen;
  reopen.enabled = true;
  reopen.path = worker_dir + "/journal";
  std::vector<JournalRecord> records;
  try {
    RunJournal journal(reopen, config_fp);
    records = journal.loaded_records();
  } catch (const FlowException& e) {
    log_warn("shard worker ", spec.worker,
             ": cannot re-read journal for publish: ", e.error().to_string());
    return false;
  }

  ShardSegmentHeader header;
  header.worker = spec.worker;
  header.workers = spec.workers;
  header.policy = spec.policy;
  header.lo = spec.lo;
  header.hi = spec.hi;
  header.config_fp = config_fp;
  std::string error;
  const std::string segment_path =
      options.work_dir + "/" + shard_segment_name(spec.worker);
  if (!write_shard_segment(segment_path, header, records, &error)) {
    log_warn("shard worker ", spec.worker, ": publish failed: ", error);
    return false;
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  struct rusage ru = {};
  ::getrusage(RUSAGE_SELF, &ru);
  const CacheCounters total = counters.total();
  std::ofstream stats(options.work_dir + "/" + shard_stats_name(spec.worker),
                      std::ios::trunc);
  stats << "worker " << spec.worker << "\n"
        << "windows " << instances.size() << "\n"
        << "gates " << gates.size() << "\n"
        << "records " << records.size() << "\n"
        << "wall_ms " << wall_ms << "\n"
        << "maxrss_kb " << ru.ru_maxrss << "\n"
        << "mem_hits " << total.hits << "\n"
        << "disk_hits " << total.disk_hits << "\n"
        << "misses " << total.misses << "\n"
        << "insertions " << total.insertions << "\n";
  log_info("SHARD_WORKER worker=", spec.worker, " windows=", instances.size(),
           " gates=", gates.size(), " records=", records.size(),
           " disk_hits=", total.disk_hits, " maxrss_kb=", ru.ru_maxrss);
  return stats.good();
}

ShardFlowResult run_sharded_flow(const PlacedDesign& design,
                                 const StdCellLibrary& lib,
                                 const LithoSimulator& sim, FlowOptions base,
                                 const ShardFlowOptions& options) {
  POC_EXPECTS(options.workers >= 1);
  POC_EXPECTS(!options.work_dir.empty());
  ShardFlowResult result;
  std::error_code ec;
  fs::create_directories(options.work_dir, ec);

  if (options.share_disk_cache && base.cache.enabled) {
    base.cache.disk_path = options.work_dir + "/cache";
  }

  // Config fingerprint for segment validation/merge — from a journal-less
  // flow over the same config (the fingerprint covers neither journal nor
  // cache knobs, so this matches every worker's stamp).
  Fingerprint config_fp;
  {
    FlowOptions probe = base;
    probe.journal.enabled = false;
    config_fp = PostOpcFlow(design, lib, sim, probe).config_fingerprint();
  }

  const std::vector<ShardSpec> specs = partition_shards(
      design.layout.num_instances(), options.workers, options.policy);

  if (options.worker_command != nullptr) {
    std::vector<WorkerCommand> commands;
    commands.reserve(specs.size());
    for (const ShardSpec& spec : specs) {
      commands.push_back({spec.worker, options.worker_command(spec)});
    }
    result.exits = run_worker_processes(commands);
    for (const WorkerExit& ex : result.exits) {
      if (ex.ok()) continue;
      const std::string detail =
          !ex.spawned ? "spawn failed"
          : ex.signal != 0
              ? "killed by signal " + std::to_string(ex.signal)
              : "exit code " + std::to_string(ex.exit_code);
      log_warn("shard worker ", ex.worker, ": ", detail);
      result.shard_health.faults.push_back(
          shard_fault(ex.worker, FaultCode::kUnknown, detail,
                      /*recovered=*/false, /*degraded=*/false));
    }
  } else {
    // In-process mode: one thread per worker, same shard/segment/merge
    // machinery minus process isolation.  Workers share nothing in memory
    // (each thread builds its own flow); the disk cache is the only
    // cross-worker channel, exactly as in the multi-process case.
    std::vector<char> ok(specs.size(), 0);
    std::vector<std::thread> threads;
    threads.reserve(specs.size());
    for (std::size_t w = 0; w < specs.size(); ++w) {
      threads.emplace_back([&, w] {
        ShardWorkerOptions wo;
        wo.spec = specs[w];
        wo.work_dir = options.work_dir;
        wo.opc_mode = options.opc_mode;
        wo.exposure = options.exposure;
        try {
          ok[w] = run_shard_worker(design, lib, sim, base, wo) ? 1 : 0;
        } catch (const std::exception& e) {
          log_warn("shard worker ", w, " (in-process): ", e.what());
        }
      });
    }
    for (std::thread& t : threads) t.join();
    for (std::size_t w = 0; w < specs.size(); ++w) {
      if (!ok[w]) {
        result.shard_health.faults.push_back(shard_fault(
            static_cast<std::uint32_t>(w), FaultCode::kUnknown,
            "in-process worker failed", /*recovered=*/false,
            /*degraded=*/false));
      }
    }
  }

  // Collect + merge, salvaging dead workers' private journals.
  std::vector<std::string> salvage_dirs;
  salvage_dirs.reserve(specs.size());
  for (const ShardSpec& spec : specs) {
    salvage_dirs.push_back(shard_worker_dir(options.work_dir, spec.worker) +
                           "/journal");
  }
  result.merge = collect_and_merge_segments(options.work_dir, options.workers,
                                            config_fp, salvage_dirs);
  for (const WorkerSegmentOutcome& wo : result.merge.workers) {
    if (wo.torn) {
      result.shard_health.faults.push_back(
          shard_fault(wo.worker, FaultCode::kJournalMismatch,
                      wo.segment_path + " (torn tail sealed)",
                      /*recovered=*/wo.records > 0, /*degraded=*/false));
    }
    if (wo.salvaged) {
      result.shard_health.faults.push_back(shard_fault(
          wo.worker, FaultCode::kJournalIo,
          wo.segment_path + " (missing; salvaged private journal)",
          /*recovered=*/wo.records > 0, /*degraded=*/wo.records == 0));
    } else if (!wo.segment_found && !wo.torn) {
      result.shard_health.faults.push_back(shard_fault(
          wo.worker, FaultCode::kJournalIo,
          wo.segment_path + " (missing)", /*recovered=*/false,
          /*degraded=*/true));
    }
    for (const ReplayIssue& issue : wo.issues) {
      result.shard_health.faults.push_back(
          shard_fault(wo.worker, issue.code,
                      issue.segment + ": " + issue.detail,
                      /*recovered=*/false, /*degraded=*/false));
    }
  }

  // Merged restore + residual recompute + one final STA.  A failed merge
  // write degrades to a full recompute (journal off) — slower, same bits.
  FlowOptions fin = base;
  fin.journal.enabled = true;
  fin.journal.path = options.work_dir + "/merged";
  fin.journal.kill_after_appends = 0;
  std::string error;
  if (!write_merged_journal(fin.journal.path, config_fp, result.merge.records,
                            &error)) {
    log_warn("shard coordinator: merged journal write failed: ", error);
    result.shard_health.faults.push_back(
        shard_fault(kNoWindowId, FaultCode::kJournalIo, error,
                    /*recovered=*/false, /*degraded=*/true));
    fin.journal.enabled = false;
  }

  PostOpcFlow flow(design, lib, sim, fin);
  flow.run_opc(options.opc_mode);
  result.comparison = flow.compare_timing(options.exposure);
  result.merged_stats = flow.journal_stats();
  result.residual_windows = result.merged_stats.appended_records;
  result.cache = flow.cache_counters();
  log_info("SHARD_RUN workers=", options.workers, " policy=",
           shard_policy_name(options.policy), " merged_records=",
           result.merge.records.size(), " residual_windows=",
           result.residual_windows, " shard_faults=",
           result.shard_health.faults.size());
  return result;
}

}  // namespace poc
