#include "src/core/flow_shard.h"

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <thread>

#include "src/common/log.h"
#include "src/par/thread_pool.h"

namespace poc {
namespace {

namespace fs = std::filesystem;

/// One phase-"shard" fault for the out-of-band health report.
FlowHealth::WindowFault shard_fault(std::uint64_t worker, FaultCode code,
                                    std::string origin, bool recovered,
                                    bool degraded) {
  FlowHealth::WindowFault f;
  f.phase = "shard";
  f.index = worker;
  f.code = code;
  f.origin = std::move(origin);
  f.attempts = 1;
  f.recovered = recovered;
  f.degraded = degraded;
  return f;
}

/// Gates whose instances the shard owns — the extraction half of the
/// shard's window space.  The gate->instance map is many-to-one, so this
/// partitions gates exactly like partition_shards partitions instances.
std::vector<GateIdx> shard_gates(const PlacedDesign& design,
                                 const ShardSpec& spec) {
  std::vector<GateIdx> gates;
  for (GateIdx g = 0; g < design.gate_to_instance.size(); ++g) {
    if (shard_owns(spec, design.gate_to_instance[g])) gates.push_back(g);
  }
  return gates;
}

/// Appends one line to the worker's stats file (heartbeat channel).  Plain
/// syscalls on purpose: heartbeats are a liveness signal, not durable
/// state, so they stay outside the injectable vfs fault domains.
void append_stats_line(const std::string& path, const char* line,
                       std::size_t len) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return;
  (void)!::write(fd, line, len);
  ::close(fd);
}

/// Watchdog progress probe: the worker's stats-file size.  Heartbeat lines
/// grow it monotonically; the completion rewrite changes it once more.
std::uint64_t stats_file_size(const std::string& work_dir,
                              std::uint32_t worker) {
  struct stat st = {};
  const std::string path = work_dir + "/" + shard_stats_name(worker);
  if (::stat(path.c_str(), &st) != 0) return 0;
  return static_cast<std::uint64_t>(st.st_size);
}

/// One in-process worker attempt-chain for the supervision loop.  "kill"
/// is a cooperative cancel (threads cannot be SIGKILLed): the stall loop
/// and the flow's chunk boundaries poll the per-attempt token, so a
/// killed attempt drains, seals its journal, and reports a failed exit.
struct InprocTask {
  ShardSpec spec;
  std::unique_ptr<CancelToken> token;
  std::thread thread;
  std::atomic<bool> done{false};
  std::atomic<bool> ok{false};

  ~InprocTask() {
    if (thread.joinable()) {
      if (token) token->request_cancel();
      thread.join();
    }
  }
};

}  // namespace

std::string shard_worker_dir(const std::string& work_dir,
                             std::uint32_t worker) {
  char buf[8];
  std::snprintf(buf, sizeof buf, "w%02u", worker);
  return work_dir + "/" + buf;
}

std::string shard_stats_name(std::uint32_t worker) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "run.w%02u.stats", worker);
  return buf;
}

ShardWorkerStats parse_shard_stats(const std::string& path) {
  ShardWorkerStats s;
  std::ifstream in(path, std::ios::binary);
  if (!in) return s;
  s.present = true;
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  // A torn tail line (no trailing newline — the writer died mid-write) is
  // dropped; everything before it still parses.
  const std::size_t last_newline = content.rfind('\n');
  if (last_newline == std::string::npos) return s;
  content.resize(last_newline + 1);

  std::istringstream lines(content);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream ls(line);
    std::string key;
    if (!(ls >> key)) continue;
    if (key == "wall_ms") {
      double v = 0.0;
      if (ls >> v) s.wall_ms = v;
      continue;
    }
    std::uint64_t v = 0;
    if (!(ls >> v)) continue;  // torn or foreign line: classify, not fail
    if (key == "hb") {
      s.last_heartbeat = std::max(s.last_heartbeat, v);
    } else if (key == "worker") {
      s.worker = static_cast<std::uint32_t>(v);
    } else if (key == "windows") {
      s.windows = v;
    } else if (key == "gates") {
      s.gates = v;
    } else if (key == "records") {
      s.records = v;
    } else if (key == "maxrss_kb") {
      s.maxrss_kb = v;
    } else if (key == "mem_hits") {
      s.mem_hits = v;
    } else if (key == "disk_hits") {
      s.disk_hits = v;
    } else if (key == "misses") {
      s.misses = v;
    } else if (key == "insertions") {
      s.insertions = v;
      s.complete = true;  // final key of the completion block
    }
  }
  return s;
}

bool run_shard_worker(const PlacedDesign& design, const StdCellLibrary& lib,
                      const LithoSimulator& sim, FlowOptions base,
                      const ShardWorkerOptions& options) {
  const ShardSpec& spec = options.spec;
  const std::string worker_dir = shard_worker_dir(options.work_dir, spec.worker);
  const std::string stats_path =
      options.work_dir + "/" + shard_stats_name(spec.worker);
  const auto t0 = std::chrono::steady_clock::now();

  // The worker's durability story is its private write-ahead journal: every
  // completed window lands there first, so even a SIGKILL mid-run leaves a
  // salvageable record of everything durably finished.
  FlowOptions opts = std::move(base);
  opts.journal.enabled = true;
  opts.journal.path = worker_dir + "/journal";
  opts.journal.kill_after_appends = options.kill_after_appends;
  if (options.cancel != nullptr) opts.cancel = options.cancel;

  const std::size_t hb_every = options.heartbeat_every_appends;
  const std::size_t stall_after = options.stall_after_appends;
  if (hb_every > 0 || stall_after > 0) {
    if (hb_every > 0) {
      // Spawn leaves a visible mark: the truncating rewrite changes the
      // file size, which is the watchdog's progress signal.
      std::ofstream(stats_path, std::ios::trunc) << "hb 0\n";
    }
    const std::string stall_marker = worker_dir + "/stall.done";
    const bool stall_once = options.stall_once;
    const CancelToken* cancel = options.cancel;
    opts.journal.on_append = [=](std::size_t total) {
      if (hb_every > 0 && total % hb_every == 0) {
        char line[32];
        const int n = std::snprintf(line, sizeof line, "hb %zu\n", total);
        if (n > 0) append_stats_line(stats_path, line, static_cast<std::size_t>(n));
      }
      if (stall_after > 0 && total == stall_after) {
        if (stall_once) {
          if (::access(stall_marker.c_str(), F_OK) == 0) return;
          const int fd =
              ::open(stall_marker.c_str(), O_WRONLY | O_CREAT, 0644);
          if (fd >= 0) ::close(fd);
        }
        log_warn("SHARD_STALL worker=", spec.worker, " after=", total,
                 " appends");
        // Spin without progress.  Never throw from here: this hook runs
        // inside the recovery loop's containment try, so an exception
        // would be recorded as a window fault and poison the bit-identity
        // contract.  The in-process supervisor "kills" via the cancel
        // token — we return normally and the pool raises
        // FlowException(kCancelled) at the next chunk boundary, the
        // sanctioned drain path.  A forked worker spins until SIGKILL.
        for (;;) {
          if (cancel != nullptr && cancel->cancelled()) return;
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      }
    };
  }

  const std::vector<std::size_t> instances = shard_indices(spec);
  const std::vector<GateIdx> gates = shard_gates(design, spec);

  Fingerprint config_fp;
  PostOpcFlow::FlowCacheCounters counters;
  {
    PostOpcFlow flow(design, lib, sim, opts);
    config_fp = flow.config_fingerprint();
    flow.run_opc_subset(options.opc_mode, instances);
    (void)flow.extract(options.exposure, gates);
    counters = flow.cache_counters();
    // Flow destruction seals the journal's active segment.
  }

  // Publish: re-read the sealed journal (replay validates every record and
  // truncates any torn tail) and write its records as this worker's shard
  // segment, temp-file + atomic rename.
  JournalOptions reopen;
  reopen.enabled = true;
  reopen.path = worker_dir + "/journal";
  std::vector<JournalRecord> records;
  try {
    RunJournal journal(reopen, config_fp);
    records = journal.loaded_records();
  } catch (const FlowException& e) {
    log_warn("shard worker ", spec.worker,
             ": cannot re-read journal for publish: ", e.error().to_string());
    return false;
  }

  ShardSegmentHeader header;
  header.worker = spec.worker;
  header.workers = spec.workers;
  header.policy = spec.policy;
  header.lo = spec.lo;
  header.hi = spec.hi;
  header.config_fp = config_fp;
  std::string error;
  const std::string segment_path =
      options.work_dir + "/" + shard_segment_name(spec.worker);
  if (!write_shard_segment(segment_path, header, records, &error)) {
    log_warn("shard worker ", spec.worker, ": publish failed: ", error);
    return false;
  }

  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                t0)
          .count();
  struct rusage ru = {};
  ::getrusage(RUSAGE_SELF, &ru);
  const CacheCounters total = counters.total();
  std::ofstream stats(stats_path, std::ios::trunc);
  stats << "worker " << spec.worker << "\n"
        << "windows " << instances.size() << "\n"
        << "gates " << gates.size() << "\n"
        << "records " << records.size() << "\n"
        << "wall_ms " << wall_ms << "\n"
        << "maxrss_kb " << ru.ru_maxrss << "\n"
        << "mem_hits " << total.hits << "\n"
        << "disk_hits " << total.disk_hits << "\n"
        << "misses " << total.misses << "\n"
        << "insertions " << total.insertions << "\n";
  log_info("SHARD_WORKER worker=", spec.worker, " windows=", instances.size(),
           " gates=", gates.size(), " records=", records.size(),
           " disk_hits=", total.disk_hits, " maxrss_kb=", ru.ru_maxrss);
  return stats.good();
}

ShardFlowResult run_sharded_flow(const PlacedDesign& design,
                                 const StdCellLibrary& lib,
                                 const LithoSimulator& sim, FlowOptions base,
                                 const ShardFlowOptions& options) {
  POC_EXPECTS(options.workers >= 1);
  POC_EXPECTS(!options.work_dir.empty());
  ShardFlowResult result;
  std::error_code ec;
  fs::create_directories(options.work_dir, ec);

  if (options.share_disk_cache && base.cache.enabled) {
    base.cache.disk_path = options.work_dir + "/cache";
  }

  // Config fingerprint for segment validation/merge — from a journal-less
  // flow over the same config (the fingerprint covers neither journal nor
  // cache knobs, so this matches every worker's stamp).
  Fingerprint config_fp;
  {
    FlowOptions probe = base;
    probe.journal.enabled = false;
    config_fp = PostOpcFlow(design, lib, sim, probe).config_fingerprint();
  }

  const std::vector<ShardSpec> specs = partition_shards(
      design.layout.num_instances(), options.workers, options.policy);

  SupervisorOptions sup;
  sup.watchdog = options.watchdog.enabled;
  sup.no_progress_timeout_ms = options.watchdog.no_progress_timeout_ms;
  sup.poll_interval_ms = options.watchdog.poll_interval_ms;
  sup.max_respawns = options.watchdog.max_respawns;
  sup.backoff_initial_ms = options.watchdog.backoff_initial_ms;
  sup.backoff_max_ms = options.watchdog.backoff_max_ms;
  // The coordinator always forwards SIGINT/SIGTERM to forked workers; the
  // in-process mode has nowhere to deliver a signal (one process).
  sup.forward_signals = options.worker_command != nullptr;
  sup.progress = [&options](std::uint32_t worker) {
    return stats_file_size(options.work_dir, worker);
  };

  // In-process worker state must outlive both supervision waves.
  std::vector<std::unique_ptr<InprocTask>> inproc;

  auto run_wave = [&](const std::vector<ShardSpec>& wave) -> SupervisionResult {
    if (options.worker_command != nullptr) {
      std::vector<WorkerCommand> commands;
      commands.reserve(wave.size());
      for (const ShardSpec& spec : wave) {
        commands.push_back({spec.worker, options.worker_command(spec)});
      }
      return supervise_worker_processes(commands, sup);
    }
    // In-process mode: one thread per worker, same shard/segment/merge
    // machinery minus process isolation.  Workers share nothing in memory
    // (each thread builds its own flow); the disk cache is the only
    // cross-worker channel, exactly as in the multi-process case.
    std::vector<SupervisedTask> tasks;
    tasks.reserve(wave.size());
    const std::size_t first = inproc.size();
    for (const ShardSpec& spec : wave) {
      inproc.push_back(std::make_unique<InprocTask>());
      inproc.back()->spec = spec;
    }
    for (std::size_t i = 0; i < wave.size(); ++i) {
      InprocTask* t = inproc[first + i].get();
      SupervisedTask task;
      task.worker = t->spec.worker;
      task.start = [&, t](std::uint32_t) {
        if (t->thread.joinable()) t->thread.join();
        t->token = std::make_unique<CancelToken>();
        t->done.store(false, std::memory_order_relaxed);
        t->ok.store(false, std::memory_order_relaxed);
        t->thread = std::thread([&, t] {
          ShardWorkerOptions wo;
          wo.spec = t->spec;
          wo.work_dir = options.work_dir;
          wo.opc_mode = options.opc_mode;
          wo.exposure = options.exposure;
          wo.heartbeat_every_appends = options.heartbeat_every_appends;
          if (t->spec.worker == options.stall_worker) {
            wo.stall_after_appends = options.stall_after_appends;
            wo.stall_once = options.stall_once;
          }
          wo.cancel = t->token.get();
          bool worker_ok = false;
          try {
            worker_ok = run_shard_worker(design, lib, sim, base, wo);
          } catch (const std::exception& e) {
            log_warn("shard worker ", t->spec.worker, " (in-process): ",
                     e.what());
          }
          t->ok.store(worker_ok, std::memory_order_relaxed);
          t->done.store(true, std::memory_order_release);
        });
        return true;
      };
      task.poll = [t](WorkerExit* ex) {
        if (!t->done.load(std::memory_order_acquire)) return false;
        if (t->thread.joinable()) t->thread.join();
        ex->worker = t->spec.worker;
        ex->pid = -1;
        ex->spawned = true;
        ex->exit_code = t->ok.load(std::memory_order_relaxed) ? 0 : 1;
        ex->signal = 0;
        return true;
      };
      task.kill = [t] {
        if (t->token) t->token->request_cancel();
      };
      task.deliver = nullptr;
      tasks.push_back(std::move(task));
    }
    return supervise_tasks(tasks, sup);
  };

  const SupervisionResult wave1 = run_wave(specs);
  result.exits = wave1.exits;
  result.interventions = wave1.interventions;

  auto final_exit_ok = [&result](std::uint32_t worker) {
    for (const WorkerExit& ex : result.exits) {
      if (ex.worker == worker) return ex.ok();
    }
    return false;
  };

  // Collect + merge, salvaging dead workers' private journals.
  std::vector<std::uint32_t> all_ids;
  std::vector<std::string> salvage_dirs;
  all_ids.reserve(specs.size());
  salvage_dirs.reserve(specs.size());
  for (const ShardSpec& spec : specs) {
    all_ids.push_back(spec.worker);
    salvage_dirs.push_back(shard_worker_dir(options.work_dir, spec.worker) +
                           "/journal");
  }
  result.merge =
      collect_and_merge_segments(options.work_dir, all_ids, config_fp,
                                 salvage_dirs);

  // Residual redistribution: a worker whose respawn budget ran out leaves
  // a residual window range; re-partition it across fresh sub-shards (ids
  // continuing past the original worker count) so surviving capacity —
  // not the coordinator's final pass — recomputes it.  One level only:
  // a failed sub-shard's windows fall through to the residual recompute.
  std::vector<FlowHealth::WindowFault> redistribution_faults;
  if (options.watchdog.enabled &&
      !std::all_of(specs.begin(), specs.end(), [&](const ShardSpec& s) {
        return final_exit_ok(s.worker);
      })) {
    std::size_t survivors = 0;
    for (const ShardSpec& spec : specs) {
      if (final_exit_ok(spec.worker)) ++survivors;
    }
    std::set<std::uint64_t> merged_opc;
    for (const JournalRecord& rec : result.merge.records) {
      if (rec.phase == JournalPhase::kOpc) merged_opc.insert(rec.index);
    }
    std::vector<ShardSpec> wave2;
    std::uint32_t next_id = static_cast<std::uint32_t>(options.workers);
    for (const ShardSpec& spec : specs) {
      if (final_exit_ok(spec.worker) || survivors == 0) continue;
      std::vector<std::size_t> missing;
      for (std::size_t idx : shard_indices(spec)) {
        if (merged_opc.count(idx) == 0) missing.push_back(idx);
      }
      if (missing.empty()) continue;
      const std::uint64_t res_lo = missing.front();
      const std::uint64_t res_hi = missing.back() + 1;
      std::vector<std::uint32_t> sub_ids;
      const std::size_t k = std::min(survivors, missing.size());
      for (std::size_t i = 0; i < k; ++i) sub_ids.push_back(next_id++);
      std::vector<ShardSpec> subs =
          partition_residual_range(spec, res_lo, res_hi, sub_ids);
      std::size_t windows = 0;
      for (const ShardSpec& sub : subs) windows += shard_indices(sub).size();
      result.redistributed_windows += windows;
      redistribution_faults.push_back(shard_fault(
          spec.worker, FaultCode::kStalled,
          "residual range [" + std::to_string(res_lo) + "," +
              std::to_string(res_hi) + ") redistributed across " +
              std::to_string(subs.size()) + " sub-shards (" +
              std::to_string(windows) + " windows)",
          /*recovered=*/true, /*degraded=*/false));
      wave2.insert(wave2.end(), subs.begin(), subs.end());
      log_warn("SHARD_REDISTRIBUTE worker=", spec.worker, " range=[", res_lo,
               ",", res_hi, ") sub_shards=", subs.size(),
               " windows=", windows);
    }
    if (!wave2.empty()) {
      const SupervisionResult w2 = run_wave(wave2);
      result.exits.insert(result.exits.end(), w2.exits.begin(),
                          w2.exits.end());
      // Sub-shard ids continue past the originals, so concatenation keeps
      // the (worker, attempt, kind) sort.
      result.interventions.insert(result.interventions.end(),
                                  w2.interventions.begin(),
                                  w2.interventions.end());
      for (const ShardSpec& sub : wave2) {
        all_ids.push_back(sub.worker);
        salvage_dirs.push_back(
            shard_worker_dir(options.work_dir, sub.worker) + "/journal");
      }
      result.merge =
          collect_and_merge_segments(options.work_dir, all_ids, config_fp,
                                     salvage_dirs);
    }
  }

  // Out-of-band health, in deterministic order: failed final exits, then
  // coordinator interventions (already sorted), then redistributions, then
  // per-worker segment-collection outcomes.
  for (const WorkerExit& ex : result.exits) {
    if (ex.ok()) continue;
    const std::string detail =
        !ex.spawned ? "spawn failed"
        : ex.signal != 0 ? "killed by signal " + std::to_string(ex.signal)
                         : "exit code " + std::to_string(ex.exit_code);
    log_warn("shard worker ", ex.worker, ": ", detail);
    result.shard_health.faults.push_back(
        shard_fault(ex.worker, FaultCode::kUnknown, detail,
                    /*recovered=*/false, /*degraded=*/false));
  }
  std::set<std::uint32_t> stall_killed;
  for (const WorkerIntervention& iv : result.interventions) {
    if (iv.kind == WorkerIntervention::Kind::kStallKilled) {
      stall_killed.insert(iv.worker);
    }
  }
  for (const WorkerIntervention& iv : result.interventions) {
    FaultCode code = FaultCode::kUnknown;
    bool recovered = false;
    switch (iv.kind) {
      case WorkerIntervention::Kind::kStallKilled:
        code = FaultCode::kStalled;
        recovered = final_exit_ok(iv.worker);
        break;
      case WorkerIntervention::Kind::kRespawned:
      case WorkerIntervention::Kind::kRetriesExhausted:
        code = stall_killed.count(iv.worker) ? FaultCode::kStalled
                                             : FaultCode::kUnknown;
        recovered = iv.kind == WorkerIntervention::Kind::kRespawned &&
                    final_exit_ok(iv.worker);
        break;
      case WorkerIntervention::Kind::kSignalForwarded:
      case WorkerIntervention::Kind::kSignalEscalated:
        code = FaultCode::kCancelled;
        break;
    }
    result.shard_health.faults.push_back(shard_fault(
        iv.worker, code,
        std::string(worker_intervention_name(iv.kind)) + ": " + iv.detail,
        recovered, /*degraded=*/false));
  }
  result.shard_health.faults.insert(result.shard_health.faults.end(),
                                    redistribution_faults.begin(),
                                    redistribution_faults.end());
  for (const WorkerSegmentOutcome& wo : result.merge.workers) {
    if (wo.torn) {
      result.shard_health.faults.push_back(
          shard_fault(wo.worker, FaultCode::kJournalMismatch,
                      wo.segment_path + " (torn tail sealed)",
                      /*recovered=*/wo.records > 0, /*degraded=*/false));
    }
    if (wo.salvaged) {
      result.shard_health.faults.push_back(shard_fault(
          wo.worker, FaultCode::kJournalIo,
          wo.segment_path + " (missing; salvaged private journal)",
          /*recovered=*/wo.records > 0, /*degraded=*/wo.records == 0));
    } else if (!wo.segment_found && !wo.torn) {
      result.shard_health.faults.push_back(shard_fault(
          wo.worker, FaultCode::kJournalIo,
          wo.segment_path + " (missing)", /*recovered=*/false,
          /*degraded=*/true));
    }
    for (const ReplayIssue& issue : wo.issues) {
      result.shard_health.faults.push_back(
          shard_fault(wo.worker, issue.code,
                      issue.segment + ": " + issue.detail,
                      /*recovered=*/false, /*degraded=*/false));
    }
  }

  // Per-worker stats, parsed tolerantly (a killed worker's file may be
  // absent, heartbeat-only, or torn — that classifies, never fails).
  result.worker_stats.reserve(all_ids.size());
  for (std::uint32_t id : all_ids) {
    result.worker_stats.push_back(
        parse_shard_stats(options.work_dir + "/" + shard_stats_name(id)));
  }

  // Merged restore + residual recompute + one final STA.  A failed merge
  // write degrades to a full recompute (journal off) — slower, same bits.
  FlowOptions fin = base;
  fin.journal.enabled = true;
  fin.journal.path = options.work_dir + "/merged";
  fin.journal.kill_after_appends = 0;
  std::string error;
  if (!write_merged_journal(fin.journal.path, config_fp, result.merge.records,
                            &error)) {
    log_warn("shard coordinator: merged journal write failed: ", error);
    result.shard_health.faults.push_back(
        shard_fault(kNoWindowId, FaultCode::kJournalIo, error,
                    /*recovered=*/false, /*degraded=*/true));
    fin.journal.enabled = false;
  }

  // A forwarded signal means the user wants out: the durable state (worker
  // journals, merged journal) is already on disk for a future run, so
  // surface the cancellation instead of paying the final recompute.
  if (wave1.forwarded_signal != 0) {
    FlowError err;
    err.code = FaultCode::kCancelled;
    err.origin = "shard.coordinator";
    err.message = "signal " + std::to_string(wave1.forwarded_signal) +
                  " forwarded to workers; merged journal preserved at " +
                  fin.journal.path;
    throw FlowException(std::move(err));
  }

  PostOpcFlow flow(design, lib, sim, fin);
  flow.run_opc(options.opc_mode);
  result.comparison = flow.compare_timing(options.exposure);
  result.merged_stats = flow.journal_stats();
  result.residual_windows = result.merged_stats.appended_records;
  result.cache = flow.cache_counters();
  log_info("SHARD_RUN workers=", options.workers, " policy=",
           shard_policy_name(options.policy), " merged_records=",
           result.merge.records.size(), " residual_windows=",
           result.residual_windows, " redistributed_windows=",
           result.redistributed_windows, " interventions=",
           result.interventions.size(), " shard_faults=",
           result.shard_health.faults.size());
  return result;
}

}  // namespace poc
