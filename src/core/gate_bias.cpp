#include "src/core/gate_bias.h"

#include <algorithm>

#include "src/stdcell/cell_spec.h"

namespace poc {

Netlist with_long_gate_bias(const Netlist& nl,
                            const std::vector<GateIdx>& keep_fast) {
  std::vector<bool> fast(nl.num_gates(), false);
  for (GateIdx g : keep_fast) {
    if (g < fast.size()) fast[g] = true;
  }
  Netlist out(nl.name() + "_lbias");
  for (NetIdx n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(n);
    out.add_net(net.name);
    if (net.is_primary_input) out.mark_primary_input(n);
    if (net.is_primary_output) out.mark_primary_output(n);
  }
  for (GateIdx g = 0; g < nl.num_gates(); ++g) {
    const GateInst& inst = nl.gate(g);
    const std::string cell =
        fast[g] ? inst.cell : long_gate_variant(inst.cell);
    out.add_gate(inst.name, cell, inst.inputs, inst.output);
  }
  return out;
}

}  // namespace poc
