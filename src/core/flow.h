// The paper's contribution: an automated flow that (1) tags critical gates
// from a baseline STA, (2) runs OPC and patterning simulation over each
// placed instance's layout window, (3) extracts per-gate post-OPC critical
// dimensions, (4) back-annotates silicon-calibrated device strengths into
// the netlist through the equivalent-gate model, and (5) re-runs timing to
// expose the drawn-vs-printed discrepancy (speed-path reordering, worst-
// slack shift).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "src/cache/result_cache.h"
#include "src/common/error.h"
#include "src/cdx/cd_extract.h"
#include "src/device/nonrect.h"
#include "src/litho/simulator.h"
#include "src/opc/opc_engine.h"
#include "src/opc/orc.h"
#include "src/pnr/design.h"
#include "src/run/journal.h"
#include "src/sta/paths.h"
#include "src/sta/service.h"
#include "src/sta/sta.h"
#include "src/sta/timing_graph.h"
#include "src/var/variation.h"

namespace poc {

class CancelToken;

enum class OpcMode { kNone, kRuleBased, kModelBased };

/// OPC-model-to-silicon calibration mismatch.  The paper's flow exists
/// because the mask is corrected against an (imperfect) OPC model while the
/// silicon prints with the real process: the residual CD error it extracts
/// is dominated by exactly this gap.  The defaults are a representative
/// 2005-era model-accuracy budget: a couple of nm of resist-diffusion
/// mis-calibration, a fraction of a percent on the development threshold,
/// tens of nm of uncorrected focus offset and ~1 % dose calibration error.
/// Setting enabled=false makes the extraction simulator identical to the
/// OPC model (residuals collapse to the sub-nm convergence floor — see the
/// ablation in bench_t2).
struct SiliconMismatch {
  bool enabled = true;
  double diffusion_delta_nm = 1.5;
  double threshold_delta = -0.002;
  double focus_bias_nm = 30.0;
  double dose_scale = 1.006;
  /// Across-chip linewidth variation of the silicon (random per-gate CD
  /// component measured on top of the systematic residual); applied by
  /// compare_timing and the Monte-Carlo mode.
  double aclv_sigma_nm = 1.8;
};

/// Content-addressed window-result cache (src/cache).  A placed design
/// repeats the same cells — and the same local poly context — thousands of
/// times, so the flow memoizes per-window results (OPC masks, latent
/// images, ORC reports) under a fingerprint of the window's translated-to-
/// local-frame geometry plus every parameter that affects the result.  A
/// hit replays bits a recompute would produce, so flow outputs are
/// bit-identical with the cache on or off, at any thread count (see the
/// determinism contract in DESIGN.md).  Purely a performance knob.
struct CacheOptions {
  bool enabled = true;
  /// LRU budget per cache (there are three: OPC windows, latent images,
  /// ORC reports).  0 keeps the cache code path live but stores nothing —
  /// every insert is rejected (the capacity-0 path of the tests).
  std::size_t capacity_mb = 256;
  std::size_t shards = 16;  ///< concurrency granularity of each cache
  /// Shared spill-to-disk tier (sharded multi-process runs): when set,
  /// every cache entry is also published — serialized, content-addressed
  /// by its fingerprint, first-insert-wins — under this directory, and a
  /// memory miss probes the directory before computing.  Point every
  /// worker of a sharded run at the same path so repeated cells hit across
  /// processes.  Purely a performance knob: a disk hit restores the exact
  /// bits a recompute would produce.  Empty = no disk tier.
  std::string disk_path;
  /// Size quota per disk store (there are three under disk_path).  When a
  /// publish pushes a store past the quota, its oldest entries are pruned
  /// — a pruned window is just a future recompute.  0 = unbounded.
  std::uint64_t disk_max_bytes = 0;
};

/// Per-window fault containment policy for the hot loops.  When enabled
/// (the default), a window that throws — CheckError, bad_alloc, non-finite
/// intensity, OPC non-convergence — is retried up to `max_retries` times
/// with escalated settings, then degraded instead of aborting the run:
/// an OPC window falls back to the drawn (uncorrected) mask, an extraction
/// window falls back to the drawn-CD annotation for its gate, and a scan
/// window is skipped.  Every fault, retry and degradation is recorded in
/// FlowHealth.  Fault-free results are bit-identical with containment on
/// or off; disabling restores fail-fast semantics (first error by window
/// index is rethrown).
struct RecoveryOptions {
  bool enabled = true;
  std::size_t max_retries = 1;
  /// Retry with sign-off litho quality instead of the nominal (draft /
  /// standard) setting.  Retries always bypass the window caches, so an
  /// escalated result can never be served under the nominal fingerprint.
  bool escalate_quality = true;
  /// Retry with the Abbe reference imaging engine when the faulting window
  /// was running the SOCS fast path.
  bool fallback_to_abbe = true;
};

/// Containment outcome of one run: which windows faulted, what happened to
/// them, and which gates lost their extraction to the drawn-CD fallback.
/// Deterministic — entries are merged in window-index order, so the report
/// is bit-identical at any thread count.
struct FlowHealth {
  struct WindowFault {
    std::string phase;            ///< "opc" | "extract" | "scan"
    std::uint64_t index = 0;      ///< instance (opc/scan) or gate (extract)
    FaultCode code = FaultCode::kUnknown;
    std::string origin;
    std::size_t attempts = 0;     ///< total tries, including the first
    bool recovered = false;       ///< a retry eventually succeeded
    bool degraded = false;        ///< all retries failed; fallback applied
  };
  std::vector<WindowFault> faults;
  std::size_t retries = 0;            ///< extra attempts across all windows
  std::size_t recovered_windows = 0;
  std::size_t degraded_windows = 0;
  /// Gates annotated with drawn-CD timing because their own extraction
  /// degraded or their instance's OPC window degraded.  Sorted, unique.
  std::vector<GateIdx> degraded_gates;

  bool clean() const { return faults.empty(); }
};

struct FlowOptions {
  OpcOptions opc;
  CdExtractOptions cdx;
  LithoQuality extract_quality = LithoQuality::kStandard;
  /// Imaging engine for BOTH flow simulators (the OPC model and the silicon
  /// extraction): kAbbe (reference, the default) or kSocs (fast TCC-kernel
  /// path) plus the SOCS truncation knobs.  Applied at construction; the
  /// per-phase OpcImaging knobs in `opc` can still override the engine for
  /// OPC draft/sign-off iterations.  Hashed into every window fingerprint.
  ImagingOptions imaging;
  DbUnit ambit_nm = 600;        ///< optical context around each instance
  StaOptions sta;
  bool use_parasitics = true;
  std::uint64_t seed = 42;      ///< ACLV noise stream
  SiliconMismatch silicon;
  CacheOptions cache;
  RecoveryOptions recovery;
  /// Write-ahead run journal (src/run): when enabled, every completed
  /// window of the three hot loops is appended — content fingerprint,
  /// serialized result bits, containment outcome — and a restarted flow
  /// with the same config replays completed windows instead of recomputing
  /// them.  Records from a different flow config (imaging mode, OPC knobs,
  /// seed, ...) are rejected at replay via the config fingerprint; the
  /// thread count is deliberately NOT part of that fingerprint, so a run
  /// may resume at any thread count.  See "Durable runs & resume" in
  /// DESIGN.md.
  JournalOptions journal;
  /// Cooperative cancellation token polled by the hot loops at chunk
  /// boundaries.  Null routes to global_cancel_token() — the one the
  /// SIGINT/SIGTERM bridge (ScopedGracefulShutdown) trips.  On
  /// cancellation, in-flight windows drain and are journaled, the journal
  /// is flushed, and the loop raises FlowException(kCancelled).
  const CancelToken* cancel = nullptr;
  /// Threads for the window-shaped hot loops (OPC, extraction, hotspot
  /// scan, Monte Carlo).  0 = hardware concurrency; 1 = serial.  Results
  /// are bit-identical for every value — see the determinism contract in
  /// DESIGN.md.
  std::size_t threads = 0;
};

/// Aggregate OPC cost/quality over all instance windows.
struct OpcStats {
  std::size_t windows = 0;
  std::size_t model_based_windows = 0;
  std::size_t fragments = 0;
  std::size_t iterations = 0;   ///< summed litho-simulated iterations
  double max_abs_epe_nm = 0.0;
  double rms_epe_sum = 0.0;     ///< sum over windows (divide by windows)
};

/// Extracted CDs and equivalent-gate model for one transistor.
struct DeviceCd {
  std::string device;
  bool is_nmos = true;
  double drawn_l_nm = 0.0;
  double drawn_w_nm = 0.0;
  GateCdProfile profile;
  EquivalentGate eq;
};

/// All devices of one netlist gate instance.
struct GateExtraction {
  GateIdx gate = kNoIndex;
  std::vector<DeviceCd> devices;
};

/// Drawn-vs-annotated STA comparison (the headline result, T2/F4).
struct TimingComparison {
  StaReport drawn;
  StaReport annotated;
  PathRankComparison ranks;
  /// Relative growth of the worst-case slack magnitude: the paper reports
  /// +36.4 % on its test design.
  double worst_slack_change_pct = 0.0;
  double leakage_change_pct = 0.0;
  /// Containment outcome of the run that produced this comparison (empty
  /// when every window completed nominally).
  FlowHealth health;
};

class PostOpcFlow {
 public:
  PostOpcFlow(const PlacedDesign& design, const StdCellLibrary& lib,
              LithoSimulator sim = {}, FlowOptions options = {});

  const FlowOptions& options() const { return options_; }
  const OpcStats& opc_stats() const { return opc_stats_; }
  const PlacedDesign& design() const { return *design_; }

  /// The "silicon truth" simulator extraction verifies against (the OPC
  /// model plus the configured calibration mismatch).
  const LithoSimulator& silicon_sim() const { return silicon_sim_; }
  /// Maps a requested scanner condition onto the silicon simulator's frame
  /// (adds the mismatch's focus/dose calibration error).
  Exposure silicon_exposure(const Exposure& e) const;

  /// Step 1 (paper): tag critical gates from the drawn-CD baseline STA.
  std::vector<GateIdx> tag_critical_gates(Ps slack_window) const;

  /// Step 2: OPC the poly layer window-by-window.  `mode` applies to all
  /// instances; the selective variant uses model-based OPC only on windows
  /// containing tagged gates and rule-based elsewhere (experiment T4).
  void run_opc(OpcMode mode);
  void run_opc_selective(const std::vector<GateIdx>& critical_gates);

  /// Shard-range execution (sharded multi-process runs, see
  /// src/core/flow_shard): OPC only the given instance windows, in `mode`.
  /// Untouched instances keep empty masks and must not be extracted in
  /// this process — a shard worker extracts only the gates whose instances
  /// it owns.  Journal records carry the same fingerprints run_opc(mode)
  /// would produce, so a coordinator replaying the merged journal restores
  /// every shard's windows bit-identically.
  void run_opc_subset(OpcMode mode, const std::vector<std::size_t>& instances);

  /// Step 3: post-OPC patterning simulation + CD extraction at `exposure`
  /// for all gates, or only `subset` (the paper's selective extraction).
  std::vector<GateExtraction> extract(
      const Exposure& exposure,
      const std::optional<std::vector<GateIdx>>& subset = std::nullopt) const;

  /// Same extraction but through the OPC model's own simulator (no silicon
  /// mismatch, no exposure remapping) — what the model *predicts* will
  /// print.  Metrology-driven calibration compares this against measured
  /// silicon (src/metro).
  std::vector<GateExtraction> extract_with_model(
      const Exposure& exposure,
      const std::optional<std::vector<GateIdx>>& subset = std::nullopt) const;

  /// Step 4: equivalent-gate back-annotation.  Gates without extraction
  /// keep drawn-CD timing (scale 1.0).  `aclv_nm` adds a per-gate random CD
  /// offset before the device model (Monte-Carlo mode).
  std::vector<DelayAnnotation> annotate(
      const std::vector<GateExtraction>& extractions) const;
  std::vector<DelayAnnotation> annotate_with_aclv(
      const std::vector<GateExtraction>& extractions, double aclv_sigma_nm,
      Rng& rng) const;

  /// Step 5: drawn vs post-OPC timing (runs steps 3-4 at the exposure).
  TimingComparison compare_timing(const Exposure& exposure = {});

  /// STA engine preloaded with this design's parasitics.
  StaEngine make_sta() const;
  /// From-scratch STA (fresh graph per call) — stateless, safe to call
  /// concurrently; the Monte-Carlo loop depends on that.
  StaReport run_sta(const std::vector<DelayAnnotation>* annotations) const;

  /// Re-times through the flow's warm incremental TimingGraph: only gates
  /// whose annotations differ from the graph's current state re-propagate
  /// (full re-time = everything differs = mark everything dirty).  Reports
  /// are bit-identical to run_sta over the same annotations.  Serialized
  /// internally — compare_timing and tag_critical_gates use it; the
  /// concurrent Monte-Carlo loop must keep using run_sta.
  StaReport run_sta_incremental(
      const std::vector<DelayAnnotation>* annotations) const;

  /// Long-lived timing-query service over this design (own warm graph,
  /// parasitics preloaded): retime / slack / paths / whatif against it,
  /// feeding whatif candidates from extract() + annotate().
  TimingService make_timing_service() const;

  /// Process-window response surfaces: fits cd(focus, dose) per device from
  /// a 3x3 exposure grid so Monte-Carlo timing needs no further litho
  /// simulation.  Returns per-gate fitted extractions evaluable via
  /// mc_extraction().
  struct DeviceResponse {
    GateIdx gate = kNoIndex;
    std::string device;
    bool is_nmos = true;
    double drawn_l_nm = 0.0;
    double drawn_w_nm = 0.0;
    CdResponse mean_cd;
    std::vector<double> slice_offsets_nm;  ///< nominal slice - mean shape
    double slice_width_nm = 0.0;
  };
  std::vector<DeviceResponse> fit_responses(
      const std::optional<std::vector<GateIdx>>& subset = std::nullopt) const;

  /// Evaluates fitted responses at an exposure (+ per-gate ACLV noise) into
  /// extraction records suitable for annotate().
  std::vector<GateExtraction> mc_extraction(
      const std::vector<DeviceResponse>& responses, const Exposure& exposure,
      double aclv_sigma_nm, Rng& rng) const;

  /// Post-OPC mask rectangles for one instance's window (after run_opc).
  const std::vector<Rect>& mask_for_instance(std::size_t instance) const;

  /// Full-chip litho hotspot scan: verifies every instance window (post-OPC
  /// mask vs drawn targets) at each exposure and collects ORC violations —
  /// the physical-verification side of the paper's methodology.
  struct Hotspot {
    std::size_t instance = 0;
    std::string exposure_name;
    OrcViolation violation;
  };
  struct HotspotReport {
    std::vector<Hotspot> hotspots;
    std::size_t windows_checked = 0;
    std::size_t pinches = 0;
    std::size_t bridges = 0;
    std::size_t epe_violations = 0;
  };
  HotspotReport scan_hotspots(const std::vector<ProcessCorner>& conditions,
                              const OrcOptions& orc_options = {}) const;

  /// Threads the hot loops actually use (options().threads resolved).
  std::size_t threads() const;

  /// Containment record accumulated since construction (or the last
  /// reset_health()): faults, retries, recoveries, degraded gates.  Empty
  /// on a fault-free run.
  FlowHealth health() const;
  void reset_health() const;

  /// Window-cache counters per hot path (all zero when the cache is
  /// disabled).  Hit rates climb with instance repetition: a row of
  /// identical cells collapses to one computed window each for OPC,
  /// latent-image and ORC work.
  struct FlowCacheCounters {
    CacheCounters opc;     ///< corrected masks + per-window OpcStats
    CacheCounters latent;  ///< extraction latent images
    CacheCounters orc;     ///< per-corner ORC reports
    CacheCounters total() const {
      CacheCounters t = opc;
      t += latent;
      t += orc;
      return t;
    }
  };
  FlowCacheCounters cache_counters() const;

  /// Fingerprint of everything that makes journal records replayable into
  /// this flow: both simulators, OPC/CD-extraction/recovery knobs, seed,
  /// silicon mismatch, design placement and library characterization —
  /// but NOT the thread count (resume is thread-independent) and NOT the
  /// cache/journal knobs (pure performance).  Stamped into every journal
  /// segment header and validated at replay.
  Fingerprint config_fingerprint() const;

  /// Journal counters for this run (all zero when journaling is off):
  /// records replayed vs appended, rejects, fsyncs.
  RunJournal::Stats journal_stats() const;
  /// Records/segments rejected during journal replay (empty when the
  /// journal is off or replay was clean).  Mirrored into health() as
  /// phase "journal" faults.
  std::vector<ReplayIssue> journal_issues() const;

  /// Content-addressed window caches (see CacheOptions).  Defined in
  /// flow.cpp; declared public only so the file-local disk-tier codecs
  /// there can name the entry types — the caches_ handle stays private.
  struct WindowCaches;

 private:
  /// One instance's OPC window, computed without touching shared state so
  /// windows can run concurrently; run_opc merges the stats in instance
  /// order.
  struct OpcWindowResult {
    std::vector<Rect> mask;
    OpcStats stats;
  };
  /// `staged`, when non-null, is a correction result the batched staging
  /// pass already computed for this window (bit-identical to what
  /// engine.correct would produce — see OpcEngine::correct_batch); the
  /// window consumes it instead of re-running the engine.  Cache probing
  /// and insertion are unchanged either way.
  OpcWindowResult opc_window(std::size_t instance, OpcMode mode,
                             OpcResult* staged = nullptr) const;
  /// opc_window with explicit simulator/options (the escalated-retry path)
  /// and cache control — retries must bypass the cache so a result produced
  /// under non-nominal settings is never stored under the nominal key.
  OpcWindowResult opc_window_impl(std::size_t instance, OpcMode mode,
                                  const LithoSimulator& sim,
                                  const OpcOptions& opc_options,
                                  bool use_cache,
                                  OpcResult* staged = nullptr) const;
  /// Drawn (uncorrected) mask for one instance window: the degradation
  /// fallback when every OPC attempt faulted.
  std::vector<Rect> drawn_mask_for_instance(std::size_t instance) const;
  /// `subset`, when non-null, restricts the loop to those instance indices
  /// (ascending); masks_/opc_degraded_ stay design-sized either way.
  void run_opc_windows(
      const std::function<OpcMode(std::size_t)>& mode_for_instance,
      const std::vector<std::size_t>* subset = nullptr);
  GateExtraction extract_gate(GateIdx gate, const Image2D& latent,
                              double threshold) const;
  std::vector<GateExtraction> extract_impl(
      const LithoSimulator& sim, const Exposure& exposure,
      const std::optional<std::vector<GateIdx>>& subset) const;
  /// sim.latent() memoized through the window cache (bit-identical either
  /// way); falls through to a plain call when the cache is disabled or
  /// `use_cache` is false (retry attempts).  `staged`, when non-null, is
  /// the window's latent as computed by the batched staging pass (bit-
  /// identical to the scalar sim.latent) and is consumed — moved from — in
  /// place of the scalar call on a cache miss.
  Image2D latent_for_window(const LithoSimulator& sim,
                            const std::vector<Rect>& mask, const Rect& window,
                            const Exposure& exposure, LithoQuality quality,
                            bool use_cache, Image2D* staged = nullptr) const;

  /// Per-window containment bookkeeping shared by the three hot loops.
  /// Outcomes land in pre-sized slots and are merged into health_ in window
  /// index order by record_outcomes() on the calling thread.
  struct ItemOutcome {
    bool faulted = false;    ///< at least one attempt threw
    FlowError first_error;   ///< the first attempt's failure
    std::size_t attempts = 1;
    bool recovered = false;
    bool degraded = false;
  };
  void record_outcomes(const char* phase,
                       const std::vector<ItemOutcome>& outcomes,
                       const std::vector<std::uint64_t>& indices) const;
  void record_degraded_gate(GateIdx gate) const;

  /// Effective cancellation token for the hot loops (options().cancel, or
  /// the process-global token when unset and journaling wants one).
  const CancelToken* cancel_token() const;
  /// Per-window journal record identities.  Each covers everything the
  /// window's result depends on (and its index), so a replayed record is
  /// bit-equal to a recompute or it does not match at all.
  Fingerprint opc_record_fp(std::size_t instance, OpcMode mode) const;
  Fingerprint extract_record_fp(const LithoSimulator& sim,
                                const Exposure& exposure, GateIdx gate) const;
  Fingerprint scan_record_fp(std::size_t instance,
                             const std::vector<ProcessCorner>& conditions,
                             const OrcOptions& orc_options) const;

  const PlacedDesign* design_;
  const StdCellLibrary* lib_;
  LithoSimulator sim_;          ///< the model OPC converges against
  LithoSimulator silicon_sim_;  ///< the process extraction measures
  FlowOptions options_;

  /// Per layout instance: corrected poly mask for its window (pre-sized
  /// slots — the parallel engine's write targets).  Empty until run_opc.
  std::vector<std::vector<Rect>> masks_;
  OpcStats opc_stats_;

  /// Instances whose OPC window degraded to the drawn mask; their gates
  /// skip extraction (drawn-CD annotation) so a silently-uncorrected mask
  /// never feeds CDs into STA.  Sized with masks_ by run_opc.
  std::vector<char> opc_degraded_;

  /// Containment record (see health()).  Behind a shared_ptr — like
  /// caches_ — so the flow stays movable/copyable despite the mutex;
  /// extraction and the scan are const, but a faulted window still has to
  /// be reported.
  struct HealthState;
  std::shared_ptr<HealthState> health_state_;

  /// Window-cache storage (see WindowCaches above); null when disabled.
  /// shared_ptr so flow copies share one cache — the memoized values are
  /// pure functions of the fingerprinted inputs, so sharing is always
  /// sound.
  std::shared_ptr<WindowCaches> caches_;

  /// Write-ahead run journal (see JournalOptions); null when disabled or
  /// when opening it failed (the failure is recorded in health, and the
  /// run proceeds undurable).  shared_ptr for the same copyability reason
  /// as the caches; appends are internally synchronized.
  std::shared_ptr<RunJournal> journal_;

  /// Warm incremental timing graph, built lazily on the first
  /// run_sta_incremental call (parasitics extraction included) and reused
  /// across re-times so only changed-annotation cones re-propagate.
  /// Mutex-guarded behind a shared_ptr (copyability, const re-times).
  struct TimingState;
  std::shared_ptr<TimingState> timing_;
};

}  // namespace poc
