// Mask rasterization: converts Manhattan rectangles (chrome features on a
// clear-field reticle) into a transmission grid.  Pixel coverage is exact
// (separable area overlap), which keeps CD quantization error well below the
// optical blur scale.
#pragma once

#include <vector>

#include "src/geom/rect.h"
#include "src/litho/image.h"

namespace poc {

/// Builds a transmission image over `window`: 1.0 where clear, 0.0 under
/// chrome (feature rects), partial on feature boundaries.  `pixel_nm` sets
/// the grid pitch; the grid is padded up to power-of-two dimensions and
/// covers at least the window (plus symmetric slack from padding).
/// Rects are expected disjoint (LayoutDb::flatten_layer guarantees this);
/// overlap would be clamped rather than double-counted.
Image2D rasterize_mask(const std::vector<Rect>& features, const Rect& window,
                       double pixel_nm);

}  // namespace poc
