#include "src/litho/resist.h"

#include <cmath>
#include <numbers>

#include "src/common/check.h"
#include "src/common/error.h"
#include "src/common/fft.h"

namespace poc {

void gaussian_blur(Image2D& img, double sigma_nm) {
  POC_EXPECTS(sigma_nm >= 0.0);
  if (sigma_nm == 0.0) return;
  const std::size_t nx = img.nx();
  const std::size_t ny = img.ny();
  POC_EXPECTS(is_pow2(nx) && is_pow2(ny));
  std::vector<Cplx> freq(nx * ny);
  for (std::size_t i = 0; i < nx * ny; ++i) freq[i] = img.data()[i];
  fft_2d(freq, nx, ny, /*inverse=*/false);
  const double dfx = 1.0 / (static_cast<double>(nx) * img.pixel());
  const double dfy = 1.0 / (static_cast<double>(ny) * img.pixel());
  const double two_pi2_s2 =
      2.0 * std::numbers::pi * std::numbers::pi * sigma_nm * sigma_nm;
  for (std::size_t iy = 0; iy < ny; ++iy) {
    const double fy = static_cast<double>(fft_freq_index(iy, ny)) * dfy;
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double fx = static_cast<double>(fft_freq_index(ix, nx)) * dfx;
      // Fourier transform of a unit-integral Gaussian: exp(-2 pi^2 s^2 f^2).
      freq[iy * nx + ix] *= std::exp(-two_pi2_s2 * (fx * fx + fy * fy));
    }
  }
  fft_2d(freq, nx, ny, /*inverse=*/true);
  for (std::size_t i = 0; i < nx * ny; ++i) img.data()[i] = freq[i].real();
}

Image2D ResistModel::latent_image(const Image2D& aerial, double dose) const {
  POC_EXPECTS(dose > 0.0);
  Image2D latent = aerial;
  gaussian_blur(latent, diffusion_nm);
  for (double& v : latent.data()) v *= dose;
  // Same boundary guard as LithoSimulator::latent: a non-finite resist
  // signal (blown-up FFT, corrupt aerial input) must surface as a
  // structured fault, not as NaN CDs downstream.
  if (!latent.all_finite()) {
    throw FlowException(FlowError{FaultCode::kNonFinite, kNoWindowId,
                                  "resist.latent_image",
                                  "non-finite intensity after resist blur"});
  }
  return latent;
}

}  // namespace poc
