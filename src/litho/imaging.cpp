#include "src/litho/imaging.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>
#include <type_traits>

#include "src/common/check.h"
#include "src/common/fft.h"
#include "src/litho/batch.h"
#include "src/litho/pupil_cache.h"

namespace poc {
namespace {

/// Frequency-domain accessor for a row-major spectrum: signed index ->
/// storage index.
std::size_t spec_index(long long kx, long long ky, std::size_t nx,
                       std::size_t ny) {
  const std::size_t ix =
      kx >= 0 ? static_cast<std::size_t>(kx) : nx - static_cast<std::size_t>(-kx);
  const std::size_t iy =
      ky >= 0 ? static_cast<std::size_t>(ky) : ny - static_cast<std::size_t>(-ky);
  return iy * nx + ix;
}

/// Accumulates one coherent system: scatter the band-limited filtered
/// spectrum onto the cropped grid, inverse-transform, add weight * |E|^2.
/// `band_inverse` selects the column-first band transform (SOCS only; the
/// Abbe path keeps the full-grid order to stay bit-identical to the
/// goldens).
void accumulate_coherent(const std::vector<Cplx>& spectrum,
                         const std::vector<Cplx>& table, double weight,
                         const SpectralGrid& grid, std::size_t nx,
                         std::size_t ny, std::size_t ncx, std::size_t ncy,
                         double crop_scale, bool band_inverse,
                         std::vector<Cplx>& field,
                         std::vector<double>& intensity) {
  std::fill(field.begin(), field.end(), Cplx(0.0, 0.0));
  std::size_t idx = 0;
  for (long long ky = -grid.ky_max; ky <= grid.ky_max; ++ky) {
    for (long long kx = -grid.kx_max; kx <= grid.kx_max; ++kx) {
      const Cplx p = table[idx++];
      if (p == Cplx(0.0, 0.0)) continue;
      field[spec_index(kx, ky, ncx, ncy)] =
          spectrum[spec_index(kx, ky, nx, ny)] * p * crop_scale;
    }
  }
  if (band_inverse) {
    fft_2d_band_inverse(field, ncx, ncy,
                        static_cast<std::size_t>(grid.kx_max));
  } else {
    fft_2d(field, ncx, ncy, /*inverse=*/true);
  }
  for (std::size_t i = 0; i < ncx * ncy; ++i) {
    intensity[i] += weight * std::norm(field[i]);
  }
}

}  // namespace

Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm,
                             const std::vector<SourcePoint>& source,
                             const ImagingOptions& imaging) {
  const std::size_t nx = mask.nx();
  const std::size_t ny = mask.ny();
  POC_EXPECTS(is_pow2(nx) && is_pow2(ny));

  const double dfx = 1.0 / (static_cast<double>(nx) * mask.pixel());
  const double dfy = 1.0 / (static_cast<double>(ny) * mask.pixel());
  const double fc = opt.cutoff_freq();

  // The coherent field only carries frequencies |f + fs| <= fc, i.e.
  // |f| <= fc (1 + sigma_outer).  Everything downstream therefore lives on
  // a cropped spectral grid; intensity (|E|^2) doubles the bandwidth, so
  // the coarse grid must span twice the field band.
  const double reach = fc * (1.0 + opt.sigma_outer) * 1.001;
  const long long kx_max = std::min<long long>(
      static_cast<long long>(nx) / 2 - 1,
      static_cast<long long>(reach / dfx) + 1);
  const long long ky_max = std::min<long long>(
      static_cast<long long>(ny) / 2 - 1,
      static_cast<long long>(reach / dfy) + 1);
  const std::size_t ncx = std::min(
      nx, next_pow2(static_cast<std::size_t>(4 * kx_max + 2)));
  const std::size_t ncy = std::min(
      ny, next_pow2(static_cast<std::size_t>(4 * ky_max + 2)));
  const SpectralGrid grid{dfx, dfy, kx_max, ky_max};

  const bool socs = imaging.mode == ImagingMode::kSocs;

  // Mask spectrum on the full grid (mask edges are not band-limited, so the
  // forward transform needs full resolution).  Only the |kx| <= kx_max
  // columns are consumed below: the Abbe path runs the band-limited forward
  // pass, which is bit-identical to the full transform on those columns;
  // the SOCS path additionally packs the real rows two per transform.
  std::vector<Cplx> spectrum;
  if (socs) {
    spectrum = rfft_2d_band(mask.data(), nx, ny,
                            static_cast<std::size_t>(kx_max));
  } else {
    spectrum.resize(nx * ny);
    for (std::size_t i = 0; i < nx * ny; ++i) spectrum[i] = mask.data()[i];
    fft_2d_band_forward(spectrum, nx, ny, static_cast<std::size_t>(kx_max));
  }

  // Coherent systems on the coarse grid: one per source point (Abbe) or one
  // per retained TCC kernel (SOCS); intensities accumulate there in fixed
  // index order either way, so each path is deterministic.
  std::vector<double> intensity(ncx * ncy, 0.0);
  std::vector<Cplx> field(ncx * ncy);
  const double crop_scale = static_cast<double>(ncx) *
                            static_cast<double>(ncy) /
                            (static_cast<double>(nx) * static_cast<double>(ny));

  if (socs) {
    const std::shared_ptr<const SocsKernels> kernels =
        socs_kernels(opt, source, defocus_nm, grid, imaging.socs);
    if (kernels->parity_packable()) {
      // Parity-pure real kernels (nominal focus, no aberrations): each
      // kernel's filtered spectrum M*phi is Hermitian — directly for even
      // kernels, after an -i twist for odd ones (whose fields are purely
      // imaginary, so the twist rotates them onto the real axis without
      // changing |E|^2).  Two Hermitian spectra ride one complex inverse
      // transform as its real and imaginary parts, halving the per-kernel
      // transform count with no truncation error.
      const std::size_t nk = kernels->kernels.size();
      for (std::size_t k = 0; k < nk; k += 2) {
        const bool pair = k + 1 < nk;
        std::fill(field.begin(), field.end(), Cplx(0.0, 0.0));
        const std::vector<Cplx>& phi1 = kernels->kernels[k];
        const std::vector<Cplx>* phi2 = pair ? &kernels->kernels[k + 1] : nullptr;
        const bool odd1 = kernels->parity[k] == 2;
        const bool odd2 = pair && kernels->parity[k + 1] == 2;
        std::size_t idx = 0;
        for (long long ky = -grid.ky_max; ky <= grid.ky_max; ++ky) {
          for (long long kx = -grid.kx_max; kx <= grid.kx_max; ++kx, ++idx) {
            const Cplx m =
                spectrum[spec_index(kx, ky, nx, ny)] * crop_scale;
            Cplx h1 = m * phi1[idx].real();
            if (odd1) h1 = Cplx(h1.imag(), -h1.real());
            Cplx h2(0.0, 0.0);
            if (pair) {
              h2 = m * (*phi2)[idx].real();
              if (odd2) h2 = Cplx(h2.imag(), -h2.real());
            }
            field[spec_index(kx, ky, ncx, ncy)] =
                Cplx(h1.real() - h2.imag(), h1.imag() + h2.real());
          }
        }
        fft_2d_band_inverse(field, ncx, ncy,
                            static_cast<std::size_t>(grid.kx_max));
        const double w1 = kernels->weights[k];
        if (pair) {
          const double w2 = kernels->weights[k + 1];
          for (std::size_t i = 0; i < ncx * ncy; ++i) {
            const double re = field[i].real();
            const double im = field[i].imag();
            intensity[i] += w1 * re * re + w2 * im * im;
          }
        } else {
          for (std::size_t i = 0; i < ncx * ncy; ++i) {
            const double re = field[i].real();
            intensity[i] += w1 * re * re;
          }
        }
      }
    } else {
      for (std::size_t k = 0; k < kernels->kernels.size(); ++k) {
        accumulate_coherent(spectrum, kernels->kernels[k],
                            kernels->weights[k], grid, nx, ny, ncx, ncy,
                            crop_scale, /*band_inverse=*/true, field,
                            intensity);
      }
    }
  } else {
    const std::shared_ptr<const PupilTables> pupils =
        pupil_tables(opt, source, defocus_nm, grid);
    for (std::size_t s = 0; s < source.size(); ++s) {
      accumulate_coherent(spectrum, pupils->tables[s], source[s].weight, grid,
                          nx, ny, ncx, ncy, crop_scale,
                          /*band_inverse=*/false, field, intensity);
    }
  }

  // Upsample the band-limited intensity to the mask grid through the
  // frequency domain (exact), applying the resist diffusion blur in the
  // same pass.
  std::vector<Cplx> coarse_spec(ncx * ncy);
  for (std::size_t i = 0; i < ncx * ncy; ++i) coarse_spec[i] = intensity[i];
  fft_2d(coarse_spec, ncx, ncy, /*inverse=*/false);

  const double up_scale = static_cast<double>(nx) * static_cast<double>(ny) /
                          (static_cast<double>(ncx) * static_cast<double>(ncy));
  const double two_pi2_s2 = 2.0 * std::numbers::pi * std::numbers::pi *
                            blur_sigma_nm * blur_sigma_nm;
  const long long cx = static_cast<long long>(ncx) / 2 - 1;
  const long long cy = static_cast<long long>(ncy) / 2 - 1;

  Image2D result(nx, ny, mask.pixel(), mask.origin_x(), mask.origin_y());
  if (socs) {
    // The irfft below only reads the band columns, and every band entry is
    // rewritten each call, so the full-grid spectrum can live in a
    // persistent per-worker buffer (the thread's ScratchArena): only a
    // geometry change pays the full-size zeroing again.
    ScratchArena::UpsampleSpec& scratch = tls_scratch_arena().upsample_spec();
    if (scratch.nx != nx || scratch.ny != ny || scratch.cx != cx ||
        scratch.cy != cy) {
      scratch.nx = nx;
      scratch.ny = ny;
      scratch.cx = cx;
      scratch.cy = cy;
      scratch.spec.assign(nx * ny, Cplx(0.0, 0.0));
    }
    // Separable blur factors keep exp() out of the inner loop (SOCS only:
    // the Abbe loop below keeps the fused exponent so its rounding stays
    // exactly as the reference path has always computed it).
    std::vector<double> bx(static_cast<std::size_t>(2 * cx + 1));
    std::vector<double> by(static_cast<std::size_t>(2 * cy + 1));
    for (long long kx = -cx; kx <= cx; ++kx) {
      const double fx = static_cast<double>(kx) * dfx;
      bx[static_cast<std::size_t>(kx + cx)] =
          blur_sigma_nm > 0.0 ? std::exp(-two_pi2_s2 * fx * fx) : 1.0;
    }
    for (long long ky = -cy; ky <= cy; ++ky) {
      const double fy = static_cast<double>(ky) * dfy;
      by[static_cast<std::size_t>(ky + cy)] =
          blur_sigma_nm > 0.0 ? std::exp(-two_pi2_s2 * fy * fy) : 1.0;
    }
    for (long long ky = -cy; ky <= cy; ++ky) {
      const double wy = up_scale * by[static_cast<std::size_t>(ky + cy)];
      for (long long kx = -cx; kx <= cx; ++kx) {
        scratch.spec[spec_index(kx, ky, nx, ny)] =
            coarse_spec[spec_index(kx, ky, ncx, ncy)] *
            (wy * bx[static_cast<std::size_t>(kx + cx)]);
      }
    }
    // The intensity spectrum is Hermitian (intensity is real), so the
    // upsampling inverse can pack two real output rows per transform.
    const std::vector<double> real_img = irfft_2d_band(
        scratch.spec, nx, ny, static_cast<std::size_t>(cx < 0 ? 0 : cx));
    for (std::size_t i = 0; i < nx * ny; ++i) result.data()[i] = real_img[i];
  } else {
    std::vector<Cplx> full_spec(nx * ny, Cplx(0.0, 0.0));
    for (long long ky = -cy; ky <= cy; ++ky) {
      const double fy = static_cast<double>(ky) * dfy;
      for (long long kx = -cx; kx <= cx; ++kx) {
        const double fx = static_cast<double>(kx) * dfx;
        const double blur =
            blur_sigma_nm > 0.0
                ? std::exp(-two_pi2_s2 * (fx * fx + fy * fy))
                : 1.0;
        full_spec[spec_index(kx, ky, nx, ny)] =
            coarse_spec[spec_index(kx, ky, ncx, ncy)] * (up_scale * blur);
      }
    }
    fft_2d(full_spec, nx, ny, /*inverse=*/true);
    for (std::size_t i = 0; i < nx * ny; ++i) {
      result.data()[i] = full_spec[i].real();
    }
  }
  return result;
}

// --- Batched SOCS engine -------------------------------------------------
//
// Lane-parallel mirror of the scalar kSocs branch above.  Each helper
// transcribes the scalar complex arithmetic as the compiler's naive
// expansion (4-multiply products, componentwise real scaling) so every
// lane's floating-point sequence — including signed zeros — matches the
// scalar path bit for bit; see the determinism notes in src/common/fft.h.

namespace {

/// One parity-packed kernel pair applied to the batch: the scalar loop body
/// (m = M * crop_scale; h = m * phi.real(); odd twist; Hermitian packing)
/// widened across lanes.  pair/odd flags are uniform per kernel, so they
/// template-dispatch out of the lane loop.
template <bool kHasPair, bool kOdd1, bool kOdd2>
void socs_apply_pair_lanes(const double* spec_re, const double* spec_im,
                           std::size_t lanes, std::size_t nx, std::size_t ny,
                           const SpectralGrid& grid, std::size_t ncx,
                           std::size_t ncy, double crop_scale,
                           const Cplx* phi1, const Cplx* phi2,
                           double* field_re, double* field_im) {
  const std::size_t nb = 2 * static_cast<std::size_t>(grid.kx_max) + 1;
  (void)nx;
  std::size_t idx = 0;
  for (long long ky = -grid.ky_max; ky <= grid.ky_max; ++ky) {
    const std::size_t ys =
        ky >= 0 ? static_cast<std::size_t>(ky) : ny - static_cast<std::size_t>(-ky);
    for (long long kx = -grid.kx_max; kx <= grid.kx_max; ++kx, ++idx) {
      const double p1 = phi1[idx].real();
      const double p2 = kHasPair ? phi2[idx].real() : 0.0;
      const std::size_t c = kx >= 0 ? static_cast<std::size_t>(kx)
                                    : static_cast<std::size_t>(kx) + nb;
      const double* POC_RESTRICT sr = spec_re + (c * ny + ys) * lanes;
      const double* POC_RESTRICT si = spec_im + (c * ny + ys) * lanes;
      const std::size_t fidx = spec_index(kx, ky, ncx, ncy);
      double* POC_RESTRICT fr = field_re + fidx * lanes;
      double* POC_RESTRICT fi = field_im + fidx * lanes;
      // VEC-LOOP(socs-kernel-apply): independent window lanes of the scalar
      // kernel-application body.
      for (std::size_t w = 0; w < lanes; ++w) {
        const double mr = sr[w] * crop_scale;
        const double mi = si[w] * crop_scale;
        const double t1r = mr * p1;
        const double t1i = mi * p1;
        const double h1r = kOdd1 ? t1i : t1r;
        const double h1i = kOdd1 ? -t1r : t1i;
        if constexpr (kHasPair) {
          const double t2r = mr * p2;
          const double t2i = mi * p2;
          const double h2r = kOdd2 ? t2i : t2r;
          const double h2i = kOdd2 ? -t2r : t2i;
          fr[w] = h1r - h2i;
          fi[w] = h1i + h2r;
        } else {
          // Scalar path: h2 stays Cplx(0.0, 0.0) — keep the literal +0.0
          // operations so signed zeros round-trip identically.
          fr[w] = h1r - 0.0;
          fi[w] = h1i + 0.0;
        }
      }
    }
  }
}

void socs_apply_pair_lanes_dispatch(const double* spec_re,
                                    const double* spec_im, std::size_t lanes,
                                    std::size_t nx, std::size_t ny,
                                    const SpectralGrid& grid, std::size_t ncx,
                                    std::size_t ncy, double crop_scale,
                                    bool pair, bool odd1, bool odd2,
                                    const Cplx* phi1, const Cplx* phi2,
                                    double* field_re, double* field_im) {
  const auto call = [&](auto has_pair, auto o1, auto o2) {
    socs_apply_pair_lanes<decltype(has_pair)::value, decltype(o1)::value,
                          decltype(o2)::value>(spec_re, spec_im, lanes, nx, ny,
                                               grid, ncx, ncy, crop_scale,
                                               phi1, phi2, field_re, field_im);
  };
  using T = std::true_type;
  using F = std::false_type;
  if (pair) {
    if (odd1) {
      odd2 ? call(T{}, T{}, T{}) : call(T{}, T{}, F{});
    } else {
      odd2 ? call(T{}, F{}, T{}) : call(T{}, F{}, F{});
    }
  } else {
    odd1 ? call(F{}, T{}, F{}) : call(F{}, F{}, F{});
  }
}

/// Generic (non-parity-packed) kernel application: the accumulate_coherent
/// scatter loop widened across lanes.  The p == 0 skip is uniform per
/// spectral sample, so skipped entries stay at the batch-wide zero fill.
void socs_apply_generic_lanes(const double* spec_re, const double* spec_im,
                              std::size_t lanes, std::size_t ny,
                              const SpectralGrid& grid, std::size_t ncx,
                              std::size_t ncy, double crop_scale,
                              const Cplx* table, double* field_re,
                              double* field_im) {
  const std::size_t nb = 2 * static_cast<std::size_t>(grid.kx_max) + 1;
  std::size_t idx = 0;
  for (long long ky = -grid.ky_max; ky <= grid.ky_max; ++ky) {
    const std::size_t ys =
        ky >= 0 ? static_cast<std::size_t>(ky) : ny - static_cast<std::size_t>(-ky);
    for (long long kx = -grid.kx_max; kx <= grid.kx_max; ++kx) {
      const Cplx p = table[idx++];
      if (p == Cplx(0.0, 0.0)) continue;
      const double pr = p.real();
      const double pi = p.imag();
      const std::size_t c = kx >= 0 ? static_cast<std::size_t>(kx)
                                    : static_cast<std::size_t>(kx) + nb;
      const double* POC_RESTRICT sr = spec_re + (c * ny + ys) * lanes;
      const double* POC_RESTRICT si = spec_im + (c * ny + ys) * lanes;
      const std::size_t fidx = spec_index(kx, ky, ncx, ncy);
      double* POC_RESTRICT fr = field_re + fidx * lanes;
      double* POC_RESTRICT fi = field_im + fidx * lanes;
      for (std::size_t w = 0; w < lanes; ++w) {
        // spectrum * p (naive complex product), then * crop_scale.
        const double vr = sr[w] * pr - si[w] * pi;
        const double vi = sr[w] * pi + si[w] * pr;
        fr[w] = vr * crop_scale;
        fi[w] = vi * crop_scale;
      }
    }
  }
}

}  // namespace

void aerial_image_blurred_socs_batch(const Image2D* const* masks,
                                     std::size_t count,
                                     const OpticalSettings& opt,
                                     double defocus_nm, double blur_sigma_nm,
                                     const std::vector<SourcePoint>& source,
                                     const SocsOptions& socs,
                                     ScratchArena& arena, Image2D* out) {
  POC_EXPECTS(count > 0);
  const std::size_t lanes = count;
  const std::size_t nx = masks[0]->nx();
  const std::size_t ny = masks[0]->ny();
  const double pixel = masks[0]->pixel();
  POC_EXPECTS(is_pow2(nx) && is_pow2(ny));
  for (std::size_t w = 1; w < count; ++w) {
    POC_EXPECTS(masks[w]->nx() == nx && masks[w]->ny() == ny &&
                masks[w]->pixel() == pixel);
  }

  // Spectral layout: the same arithmetic on the same inputs as the scalar
  // path, so every derived quantity (and the memoized kernel set) matches.
  const double dfx = 1.0 / (static_cast<double>(nx) * pixel);
  const double dfy = 1.0 / (static_cast<double>(ny) * pixel);
  const double fc = opt.cutoff_freq();
  const double reach = fc * (1.0 + opt.sigma_outer) * 1.001;
  const long long kx_max = std::min<long long>(
      static_cast<long long>(nx) / 2 - 1,
      static_cast<long long>(reach / dfx) + 1);
  const long long ky_max = std::min<long long>(
      static_cast<long long>(ny) / 2 - 1,
      static_cast<long long>(reach / dfy) + 1);
  const std::size_t ncx = std::min(
      nx, next_pow2(static_cast<std::size_t>(4 * kx_max + 2)));
  const std::size_t ncy = std::min(
      ny, next_pow2(static_cast<std::size_t>(4 * ky_max + 2)));
  const SpectralGrid grid{dfx, dfy, kx_max, ky_max};

  const std::shared_ptr<const SocsKernels> kernels =
      socs_kernels(opt, source, defocus_nm, grid, socs);

  // Shared per-call setup: blur factor tables and the persistent upsample
  // spectrum (sized for the whole batch; each tile below owns a contiguous
  // nbu*ny*nw slice of it).
  const std::size_t nb = 2 * static_cast<std::size_t>(kx_max) + 1;
  const std::size_t nc = ncx * ncy;
  const double crop_scale = static_cast<double>(ncx) *
                            static_cast<double>(ncy) /
                            (static_cast<double>(nx) * static_cast<double>(ny));
  const double up_scale = static_cast<double>(nx) * static_cast<double>(ny) /
                          (static_cast<double>(ncx) * static_cast<double>(ncy));
  const double two_pi2_s2 = 2.0 * std::numbers::pi * std::numbers::pi *
                            blur_sigma_nm * blur_sigma_nm;
  const long long cx = static_cast<long long>(ncx) / 2 - 1;
  const long long cy = static_cast<long long>(ncy) / 2 - 1;
  std::vector<double>& bx = arena.blur_x();
  std::vector<double>& by = arena.blur_y();
  bx.resize(static_cast<std::size_t>(2 * cx + 1));
  by.resize(static_cast<std::size_t>(2 * cy + 1));
  for (long long kx = -cx; kx <= cx; ++kx) {
    const double fx = static_cast<double>(kx) * dfx;
    bx[static_cast<std::size_t>(kx + cx)] =
        blur_sigma_nm > 0.0 ? std::exp(-two_pi2_s2 * fx * fx) : 1.0;
  }
  for (long long ky = -cy; ky <= cy; ++ky) {
    const double fy = static_cast<double>(ky) * dfy;
    by[static_cast<std::size_t>(ky + cy)] =
        blur_sigma_nm > 0.0 ? std::exp(-two_pi2_s2 * fy * fy) : 1.0;
  }
  const std::size_t kxu = static_cast<std::size_t>(cx < 0 ? 0 : cx);
  const std::size_t nbu = 2 * kxu + 1;

  // The batch runs in fixed-width lane tiles: kTileLanes doubles is one
  // AVX2 vector, so every inner lane loop fills a SIMD register, while the
  // per-tile working set (field + intensity + the touched band rows of the
  // tile spectrum, ~1.6 MiB at fine quality) stays cache-resident the way
  // the scalar path's per-window buffers do — full-batch-wide buffers
  // would stream through L2 on every butterfly stage instead.  Tiling only
  // partitions the independent lane dimension, so results stay
  // bit-identical for every tile width.
  constexpr std::size_t kTileLanes = 4;
  for (std::size_t w0 = 0; w0 < lanes; w0 += kTileLanes) {
    const std::size_t nw = std::min(kTileLanes, lanes - w0);

    // Pack: batched real-input band transform of the tile's masks.
    double* row_re = arena.buf(ScratchArena::kRowRe, nx * nw);
    double* row_im = arena.buf(ScratchArena::kRowIm, nx * nw);
    double* spec_re = arena.buf(ScratchArena::kSpecRe, nb * ny * nw);
    double* spec_im = arena.buf(ScratchArena::kSpecIm, nb * ny * nw);
    std::vector<const double*>& src = arena.src_ptrs();
    src.resize(nw);
    for (std::size_t w = 0; w < nw; ++w) src[w] = masks[w0 + w]->data().data();
    rfft_2d_band_soa(src.data(), nw, nx, ny, static_cast<std::size_t>(kx_max),
                     spec_re, spec_im, row_re, row_im);

    // Compute: coherent systems accumulate on the coarse grid in fixed
    // kernel order, each one a tile-wide zero fill + scatter + band inverse
    // + add.
    double* intensity = arena.buf(ScratchArena::kIntensity, nc * nw);
    double* field_re = arena.buf(ScratchArena::kFieldRe, nc * nw);
    double* field_im = arena.buf(ScratchArena::kFieldIm, nc * nw);
    std::fill(intensity, intensity + nc * nw, 0.0);

    if (kernels->parity_packable()) {
      const std::size_t nk = kernels->kernels.size();
      for (std::size_t k = 0; k < nk; k += 2) {
        const bool pair = k + 1 < nk;
        std::fill(field_re, field_re + nc * nw, 0.0);
        std::fill(field_im, field_im + nc * nw, 0.0);
        const bool odd1 = kernels->parity[k] == 2;
        const bool odd2 = pair && kernels->parity[k + 1] == 2;
        socs_apply_pair_lanes_dispatch(
            spec_re, spec_im, nw, nx, ny, grid, ncx, ncy, crop_scale, pair,
            odd1, odd2, kernels->kernels[k].data(),
            pair ? kernels->kernels[k + 1].data() : nullptr, field_re,
            field_im);
        fft_2d_band_inverse_soa(field_re, field_im, ncx, ncy,
                                static_cast<std::size_t>(grid.kx_max), nw);
        const double w1 = kernels->weights[k];
        double* POC_RESTRICT acc = intensity;
        const double* POC_RESTRICT fr = field_re;
        const double* POC_RESTRICT fi = field_im;
        if (pair) {
          const double w2 = kernels->weights[k + 1];
          for (std::size_t j = 0; j < nc * nw; ++j) {
            acc[j] += w1 * fr[j] * fr[j] + w2 * fi[j] * fi[j];
          }
        } else {
          for (std::size_t j = 0; j < nc * nw; ++j) {
            acc[j] += w1 * fr[j] * fr[j];
          }
        }
      }
    } else {
      for (std::size_t k = 0; k < kernels->kernels.size(); ++k) {
        std::fill(field_re, field_re + nc * nw, 0.0);
        std::fill(field_im, field_im + nc * nw, 0.0);
        socs_apply_generic_lanes(spec_re, spec_im, nw, ny, grid, ncx, ncy,
                                 crop_scale, kernels->kernels[k].data(),
                                 field_re, field_im);
        fft_2d_band_inverse_soa(field_re, field_im, ncx, ncy,
                                static_cast<std::size_t>(grid.kx_max), nw);
        const double weight = kernels->weights[k];
        double* POC_RESTRICT acc = intensity;
        const double* POC_RESTRICT fr = field_re;
        const double* POC_RESTRICT fi = field_im;
        for (std::size_t j = 0; j < nc * nw; ++j) {
          acc[j] += weight * (fr[j] * fr[j] + fi[j] * fi[j]);
        }
      }
    }

    // Upsample + blur: forward transform of the coarse intensity, then a
    // separable-blur scatter straight into the compact band spectrum the
    // inverse below consumes in place.  The scatter rewrites every band
    // entry within blur reach (rows 0..cy and ny-cy..ny-1 of each band
    // column) and the fill covers the rows beyond reach, so the whole
    // spectrum is rebuilt each call — no persistent zero-padded buffer,
    // and none of the multi-MiB defensive copy irfft_2d_band_soa would
    // make of one.
    double* coarse_re = arena.buf(ScratchArena::kCoarseRe, nc * nw);
    double* coarse_im = arena.buf(ScratchArena::kCoarseIm, nc * nw);
    for (std::size_t j = 0; j < nc * nw; ++j) {
      coarse_re[j] = intensity[j];
      coarse_im[j] = 0.0;
    }
    fft_2d_soa(coarse_re, coarse_im, ncx, ncy, /*inverse=*/false, nw);

    double* const up_re = arena.buf(ScratchArena::kUpWorkRe, nbu * ny * nw);
    double* const up_im = arena.buf(ScratchArena::kUpWorkIm, nbu * ny * nw);
    const std::size_t mid_lo = static_cast<std::size_t>(cy) + 1;
    const std::size_t mid_rows = ny - (2 * static_cast<std::size_t>(cy) + 1);
    for (std::size_t c = 0; c < nbu; ++c) {
      double* mr = up_re + (c * ny + mid_lo) * nw;
      double* mi = up_im + (c * ny + mid_lo) * nw;
      std::fill(mr, mr + mid_rows * nw, 0.0);
      std::fill(mi, mi + mid_rows * nw, 0.0);
    }
    for (long long ky = -cy; ky <= cy; ++ky) {
      const double wy = up_scale * by[static_cast<std::size_t>(ky + cy)];
      const std::size_t ys = ky >= 0 ? static_cast<std::size_t>(ky)
                                     : ny - static_cast<std::size_t>(-ky);
      for (long long kx = -cx; kx <= cx; ++kx) {
        const double f = wy * bx[static_cast<std::size_t>(kx + cx)];
        const std::size_t c = kx >= 0 ? static_cast<std::size_t>(kx)
                                      : static_cast<std::size_t>(kx) + nbu;
        const std::size_t sidx = spec_index(kx, ky, ncx, ncy);
        const double* POC_RESTRICT cr = coarse_re + sidx * nw;
        const double* POC_RESTRICT ci = coarse_im + sidx * nw;
        double* POC_RESTRICT ur = up_re + (c * ny + ys) * nw;
        double* POC_RESTRICT ui = up_im + (c * ny + ys) * nw;
        // VEC-LOOP(blur-scatter): componentwise coarse * (wy * bx) per lane.
        for (std::size_t w = 0; w < nw; ++w) {
          ur[w] = cr[w] * f;
          ui[w] = ci[w] * f;
        }
      }
    }

    // Unpack: batched Hermitian inverse straight into the tile's output
    // images, in window-index order.
    std::vector<double*>& dst = arena.dst_ptrs();
    dst.resize(nw);
    for (std::size_t w = 0; w < nw; ++w) {
      const Image2D& mk = *masks[w0 + w];
      Image2D& o = out[w0 + w];
      if (o.nx() != nx || o.ny() != ny || o.pixel() != mk.pixel() ||
          o.origin_x() != mk.origin_x() || o.origin_y() != mk.origin_y()) {
        o = Image2D(nx, ny, mk.pixel(), mk.origin_x(), mk.origin_y());
      }
      dst[w] = o.data().data();
    }
    irfft_2d_band_soa_inplace(up_re, up_im, nw, nx, ny, kxu, row_re, row_im,
                              dst.data());
  }
}

Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm,
                             const std::vector<SourcePoint>& source) {
  return aerial_image_blurred(mask, opt, defocus_nm, blur_sigma_nm, source,
                              ImagingOptions{});
}

Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm) {
  return aerial_image_blurred(mask, opt, defocus_nm, blur_sigma_nm,
                              sample_source(opt));
}

Image2D aerial_image(const Image2D& mask, const OpticalSettings& opt,
                     double defocus_nm,
                     const std::vector<SourcePoint>& source) {
  return aerial_image_blurred(mask, opt, defocus_nm, 0.0, source);
}

Image2D aerial_image(const Image2D& mask, const OpticalSettings& opt,
                     double defocus_nm) {
  return aerial_image_blurred(mask, opt, defocus_nm, 0.0);
}

}  // namespace poc
