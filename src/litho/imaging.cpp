#include "src/litho/imaging.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>

#include "src/cache/fingerprint.h"
#include "src/cache/result_cache.h"
#include "src/common/check.h"
#include "src/common/fft.h"

namespace poc {
namespace {

/// Frequency-domain accessor for a row-major spectrum: signed index ->
/// storage index.
std::size_t spec_index(long long kx, long long ky, std::size_t nx,
                       std::size_t ny) {
  const std::size_t ix =
      kx >= 0 ? static_cast<std::size_t>(kx) : nx - static_cast<std::size_t>(-kx);
  const std::size_t iy =
      ky >= 0 ? static_cast<std::size_t>(ky) : ny - static_cast<std::size_t>(-ky);
  return iy * nx + ix;
}

/// Memoized per-source-point pupil values over the cropped spectral grid.
/// Every window of the same pixel size and padded dimensions shares one
/// spectral layout, so across a full-chip run the (optics, quality,
/// defocus) combinations collapse to a handful of tables and the per-window
/// pupil evaluation (sqrt + sin/cos per grid point per source point)
/// disappears from the hot loop.  Values are the verbatim pupil_value
/// results, so cached and uncached imaging are bit-identical.
struct PupilTables {
  /// tables[s][(ky + ky_max) * (2*kx_max + 1) + (kx + kx_max)] for source
  /// point s.
  std::vector<std::vector<Cplx>> tables;
};

std::shared_ptr<const PupilTables> pupil_tables(
    const OpticalSettings& opt, const std::vector<SourcePoint>& source,
    double defocus_nm, double dfx, double dfy, long long kx_max,
    long long ky_max) {
  // ~100 windows' worth of fine-quality tables; enough that a full flow
  // never thrashes, bounded in case a sweep walks through many defocus
  // values.
  static ShardedCache<PupilTables> cache(128ull << 20, /*shards=*/8);

  FpHasher h;
  h.str("pupil")
      .f64(opt.wavelength_nm)
      .f64(opt.na)
      .f64(opt.z9_spherical_waves)
      .f64(opt.z7_coma_x_waves)
      .f64(defocus_nm)
      .f64(dfx)
      .f64(dfy)
      .i64(kx_max)
      .i64(ky_max)
      .u64(source.size());
  for (const SourcePoint& sp : source) h.f64(sp.sx).f64(sp.sy);
  const Fingerprint fp = h.digest();

  if (auto hit = cache.find(fp)) return hit;

  const double tilt_scale = opt.na / opt.wavelength_nm;
  auto built = std::make_shared<PupilTables>();
  built->tables.reserve(source.size());
  const std::size_t row = static_cast<std::size_t>(2 * kx_max + 1);
  const std::size_t rows = static_cast<std::size_t>(2 * ky_max + 1);
  for (const SourcePoint& sp : source) {
    const double fsx = sp.sx * tilt_scale;
    const double fsy = sp.sy * tilt_scale;
    std::vector<Cplx> table(row * rows);
    std::size_t idx = 0;
    for (long long ky = -ky_max; ky <= ky_max; ++ky) {
      const double fy = static_cast<double>(ky) * dfy;
      for (long long kx = -kx_max; kx <= kx_max; ++kx) {
        const double fx = static_cast<double>(kx) * dfx;
        table[idx++] = pupil_value(opt, fx + fsx, fy + fsy, defocus_nm);
      }
    }
    built->tables.push_back(std::move(table));
  }
  cache.insert(fp, built,
               source.size() * row * rows * sizeof(Cplx) + sizeof(PupilTables));
  return built;
}

}  // namespace

Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm,
                             const std::vector<SourcePoint>& source) {
  const std::size_t nx = mask.nx();
  const std::size_t ny = mask.ny();
  POC_EXPECTS(is_pow2(nx) && is_pow2(ny));

  // Mask spectrum on the full grid (mask edges are not band-limited, so the
  // forward transform needs full resolution).
  std::vector<Cplx> spectrum(nx * ny);
  for (std::size_t i = 0; i < nx * ny; ++i) spectrum[i] = mask.data()[i];
  fft_2d(spectrum, nx, ny, /*inverse=*/false);

  const double dfx = 1.0 / (static_cast<double>(nx) * mask.pixel());
  const double dfy = 1.0 / (static_cast<double>(ny) * mask.pixel());
  const double fc = opt.cutoff_freq();

  // The coherent field only carries frequencies |f + fs| <= fc, i.e.
  // |f| <= fc (1 + sigma_outer).  Everything downstream therefore lives on
  // a cropped spectral grid; intensity (|E|^2) doubles the bandwidth, so
  // the coarse grid must span twice the field band.
  const double reach = fc * (1.0 + opt.sigma_outer) * 1.001;
  const long long kx_max = std::min<long long>(
      static_cast<long long>(nx) / 2 - 1,
      static_cast<long long>(reach / dfx) + 1);
  const long long ky_max = std::min<long long>(
      static_cast<long long>(ny) / 2 - 1,
      static_cast<long long>(reach / dfy) + 1);
  const std::size_t ncx = std::min(
      nx, next_pow2(static_cast<std::size_t>(4 * kx_max + 2)));
  const std::size_t ncy = std::min(
      ny, next_pow2(static_cast<std::size_t>(4 * ky_max + 2)));

  const std::shared_ptr<const PupilTables> pupils =
      pupil_tables(opt, source, defocus_nm, dfx, dfy, kx_max, ky_max);

  // Per-source-point coherent image on the coarse grid; intensities
  // accumulate there.
  std::vector<double> intensity(ncx * ncy, 0.0);
  std::vector<Cplx> field(ncx * ncy);
  const double crop_scale = static_cast<double>(ncx) *
                            static_cast<double>(ncy) /
                            (static_cast<double>(nx) * static_cast<double>(ny));

  for (std::size_t s = 0; s < source.size(); ++s) {
    const SourcePoint& sp = source[s];
    const std::vector<Cplx>& table = pupils->tables[s];
    std::fill(field.begin(), field.end(), Cplx(0.0, 0.0));
    std::size_t idx = 0;
    for (long long ky = -ky_max; ky <= ky_max; ++ky) {
      for (long long kx = -kx_max; kx <= kx_max; ++kx) {
        const Cplx p = table[idx++];
        if (p == Cplx(0.0, 0.0)) continue;
        field[spec_index(kx, ky, ncx, ncy)] =
            spectrum[spec_index(kx, ky, nx, ny)] * p * crop_scale;
      }
    }
    fft_2d(field, ncx, ncy, /*inverse=*/true);
    for (std::size_t i = 0; i < ncx * ncy; ++i) {
      intensity[i] += sp.weight * std::norm(field[i]);
    }
  }

  // Upsample the band-limited intensity to the mask grid through the
  // frequency domain (exact), applying the resist diffusion blur in the
  // same pass.
  std::vector<Cplx> coarse_spec(ncx * ncy);
  for (std::size_t i = 0; i < ncx * ncy; ++i) coarse_spec[i] = intensity[i];
  fft_2d(coarse_spec, ncx, ncy, /*inverse=*/false);

  std::vector<Cplx> full_spec(nx * ny, Cplx(0.0, 0.0));
  const double up_scale = static_cast<double>(nx) * static_cast<double>(ny) /
                          (static_cast<double>(ncx) * static_cast<double>(ncy));
  const double two_pi2_s2 = 2.0 * std::numbers::pi * std::numbers::pi *
                            blur_sigma_nm * blur_sigma_nm;
  const long long cx = static_cast<long long>(ncx) / 2 - 1;
  const long long cy = static_cast<long long>(ncy) / 2 - 1;
  for (long long ky = -cy; ky <= cy; ++ky) {
    const double fy = static_cast<double>(ky) * dfy;
    for (long long kx = -cx; kx <= cx; ++kx) {
      const double fx = static_cast<double>(kx) * dfx;
      const double blur =
          blur_sigma_nm > 0.0
              ? std::exp(-two_pi2_s2 * (fx * fx + fy * fy))
              : 1.0;
      full_spec[spec_index(kx, ky, nx, ny)] =
          coarse_spec[spec_index(kx, ky, ncx, ncy)] * (up_scale * blur);
    }
  }
  fft_2d(full_spec, nx, ny, /*inverse=*/true);

  Image2D result(nx, ny, mask.pixel(), mask.origin_x(), mask.origin_y());
  for (std::size_t i = 0; i < nx * ny; ++i) {
    result.data()[i] = full_spec[i].real();
  }
  return result;
}

Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm) {
  return aerial_image_blurred(mask, opt, defocus_nm, blur_sigma_nm,
                              sample_source(opt));
}

Image2D aerial_image(const Image2D& mask, const OpticalSettings& opt,
                     double defocus_nm,
                     const std::vector<SourcePoint>& source) {
  return aerial_image_blurred(mask, opt, defocus_nm, 0.0, source);
}

Image2D aerial_image(const Image2D& mask, const OpticalSettings& opt,
                     double defocus_nm) {
  return aerial_image_blurred(mask, opt, defocus_nm, 0.0);
}

}  // namespace poc
