#include "src/litho/imaging.h"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "src/common/check.h"
#include "src/common/fft.h"

namespace poc {
namespace {

/// Frequency-domain accessor for a row-major spectrum: signed index ->
/// storage index.
std::size_t spec_index(long long kx, long long ky, std::size_t nx,
                       std::size_t ny) {
  const std::size_t ix =
      kx >= 0 ? static_cast<std::size_t>(kx) : nx - static_cast<std::size_t>(-kx);
  const std::size_t iy =
      ky >= 0 ? static_cast<std::size_t>(ky) : ny - static_cast<std::size_t>(-ky);
  return iy * nx + ix;
}

}  // namespace

Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm) {
  const std::size_t nx = mask.nx();
  const std::size_t ny = mask.ny();
  POC_EXPECTS(is_pow2(nx) && is_pow2(ny));

  // Mask spectrum on the full grid (mask edges are not band-limited, so the
  // forward transform needs full resolution).
  std::vector<Cplx> spectrum(nx * ny);
  for (std::size_t i = 0; i < nx * ny; ++i) spectrum[i] = mask.data()[i];
  fft_2d(spectrum, nx, ny, /*inverse=*/false);

  const double dfx = 1.0 / (static_cast<double>(nx) * mask.pixel());
  const double dfy = 1.0 / (static_cast<double>(ny) * mask.pixel());
  const double fc = opt.cutoff_freq();
  const double tilt_scale = opt.na / opt.wavelength_nm;  // sigma -> frequency

  // The coherent field only carries frequencies |f + fs| <= fc, i.e.
  // |f| <= fc (1 + sigma_outer).  Everything downstream therefore lives on
  // a cropped spectral grid; intensity (|E|^2) doubles the bandwidth, so
  // the coarse grid must span twice the field band.
  const double reach = fc * (1.0 + opt.sigma_outer) * 1.001;
  const long long kx_max = std::min<long long>(
      static_cast<long long>(nx) / 2 - 1,
      static_cast<long long>(reach / dfx) + 1);
  const long long ky_max = std::min<long long>(
      static_cast<long long>(ny) / 2 - 1,
      static_cast<long long>(reach / dfy) + 1);
  const std::size_t ncx = std::min(
      nx, next_pow2(static_cast<std::size_t>(4 * kx_max + 2)));
  const std::size_t ncy = std::min(
      ny, next_pow2(static_cast<std::size_t>(4 * ky_max + 2)));

  // Per-source-point coherent image on the coarse grid; intensities
  // accumulate there.
  std::vector<double> intensity(ncx * ncy, 0.0);
  std::vector<Cplx> field(ncx * ncy);
  const double crop_scale = static_cast<double>(ncx) *
                            static_cast<double>(ncy) /
                            (static_cast<double>(nx) * static_cast<double>(ny));

  for (const SourcePoint& sp : sample_source(opt)) {
    const double fsx = sp.sx * tilt_scale;
    const double fsy = sp.sy * tilt_scale;
    std::fill(field.begin(), field.end(), Cplx(0.0, 0.0));
    for (long long ky = -ky_max; ky <= ky_max; ++ky) {
      const double fy = static_cast<double>(ky) * dfy;
      for (long long kx = -kx_max; kx <= kx_max; ++kx) {
        const double fx = static_cast<double>(kx) * dfx;
        const Cplx p = pupil_value(opt, fx + fsx, fy + fsy, defocus_nm);
        if (p == Cplx(0.0, 0.0)) continue;
        field[spec_index(kx, ky, ncx, ncy)] =
            spectrum[spec_index(kx, ky, nx, ny)] * p * crop_scale;
      }
    }
    fft_2d(field, ncx, ncy, /*inverse=*/true);
    for (std::size_t i = 0; i < ncx * ncy; ++i) {
      intensity[i] += sp.weight * std::norm(field[i]);
    }
  }

  // Upsample the band-limited intensity to the mask grid through the
  // frequency domain (exact), applying the resist diffusion blur in the
  // same pass.
  std::vector<Cplx> coarse_spec(ncx * ncy);
  for (std::size_t i = 0; i < ncx * ncy; ++i) coarse_spec[i] = intensity[i];
  fft_2d(coarse_spec, ncx, ncy, /*inverse=*/false);

  std::vector<Cplx> full_spec(nx * ny, Cplx(0.0, 0.0));
  const double up_scale = static_cast<double>(nx) * static_cast<double>(ny) /
                          (static_cast<double>(ncx) * static_cast<double>(ncy));
  const double two_pi2_s2 = 2.0 * std::numbers::pi * std::numbers::pi *
                            blur_sigma_nm * blur_sigma_nm;
  const long long cx = static_cast<long long>(ncx) / 2 - 1;
  const long long cy = static_cast<long long>(ncy) / 2 - 1;
  for (long long ky = -cy; ky <= cy; ++ky) {
    const double fy = static_cast<double>(ky) * dfy;
    for (long long kx = -cx; kx <= cx; ++kx) {
      const double fx = static_cast<double>(kx) * dfx;
      const double blur =
          blur_sigma_nm > 0.0
              ? std::exp(-two_pi2_s2 * (fx * fx + fy * fy))
              : 1.0;
      full_spec[spec_index(kx, ky, nx, ny)] =
          coarse_spec[spec_index(kx, ky, ncx, ncy)] * (up_scale * blur);
    }
  }
  fft_2d(full_spec, nx, ny, /*inverse=*/true);

  Image2D result(nx, ny, mask.pixel(), mask.origin_x(), mask.origin_y());
  for (std::size_t i = 0; i < nx * ny; ++i) {
    result.data()[i] = full_spec[i].real();
  }
  return result;
}

Image2D aerial_image(const Image2D& mask, const OpticalSettings& opt,
                     double defocus_nm) {
  return aerial_image_blurred(mask, opt, defocus_nm, 0.0);
}

}  // namespace poc
