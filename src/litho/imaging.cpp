#include "src/litho/imaging.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <numbers>

#include "src/common/check.h"
#include "src/common/fft.h"
#include "src/litho/pupil_cache.h"

namespace poc {
namespace {

/// Frequency-domain accessor for a row-major spectrum: signed index ->
/// storage index.
std::size_t spec_index(long long kx, long long ky, std::size_t nx,
                       std::size_t ny) {
  const std::size_t ix =
      kx >= 0 ? static_cast<std::size_t>(kx) : nx - static_cast<std::size_t>(-kx);
  const std::size_t iy =
      ky >= 0 ? static_cast<std::size_t>(ky) : ny - static_cast<std::size_t>(-ky);
  return iy * nx + ix;
}

/// Accumulates one coherent system: scatter the band-limited filtered
/// spectrum onto the cropped grid, inverse-transform, add weight * |E|^2.
/// `band_inverse` selects the column-first band transform (SOCS only; the
/// Abbe path keeps the full-grid order to stay bit-identical to the
/// goldens).
void accumulate_coherent(const std::vector<Cplx>& spectrum,
                         const std::vector<Cplx>& table, double weight,
                         const SpectralGrid& grid, std::size_t nx,
                         std::size_t ny, std::size_t ncx, std::size_t ncy,
                         double crop_scale, bool band_inverse,
                         std::vector<Cplx>& field,
                         std::vector<double>& intensity) {
  std::fill(field.begin(), field.end(), Cplx(0.0, 0.0));
  std::size_t idx = 0;
  for (long long ky = -grid.ky_max; ky <= grid.ky_max; ++ky) {
    for (long long kx = -grid.kx_max; kx <= grid.kx_max; ++kx) {
      const Cplx p = table[idx++];
      if (p == Cplx(0.0, 0.0)) continue;
      field[spec_index(kx, ky, ncx, ncy)] =
          spectrum[spec_index(kx, ky, nx, ny)] * p * crop_scale;
    }
  }
  if (band_inverse) {
    fft_2d_band_inverse(field, ncx, ncy,
                        static_cast<std::size_t>(grid.kx_max));
  } else {
    fft_2d(field, ncx, ncy, /*inverse=*/true);
  }
  for (std::size_t i = 0; i < ncx * ncy; ++i) {
    intensity[i] += weight * std::norm(field[i]);
  }
}

}  // namespace

Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm,
                             const std::vector<SourcePoint>& source,
                             const ImagingOptions& imaging) {
  const std::size_t nx = mask.nx();
  const std::size_t ny = mask.ny();
  POC_EXPECTS(is_pow2(nx) && is_pow2(ny));

  const double dfx = 1.0 / (static_cast<double>(nx) * mask.pixel());
  const double dfy = 1.0 / (static_cast<double>(ny) * mask.pixel());
  const double fc = opt.cutoff_freq();

  // The coherent field only carries frequencies |f + fs| <= fc, i.e.
  // |f| <= fc (1 + sigma_outer).  Everything downstream therefore lives on
  // a cropped spectral grid; intensity (|E|^2) doubles the bandwidth, so
  // the coarse grid must span twice the field band.
  const double reach = fc * (1.0 + opt.sigma_outer) * 1.001;
  const long long kx_max = std::min<long long>(
      static_cast<long long>(nx) / 2 - 1,
      static_cast<long long>(reach / dfx) + 1);
  const long long ky_max = std::min<long long>(
      static_cast<long long>(ny) / 2 - 1,
      static_cast<long long>(reach / dfy) + 1);
  const std::size_t ncx = std::min(
      nx, next_pow2(static_cast<std::size_t>(4 * kx_max + 2)));
  const std::size_t ncy = std::min(
      ny, next_pow2(static_cast<std::size_t>(4 * ky_max + 2)));
  const SpectralGrid grid{dfx, dfy, kx_max, ky_max};

  const bool socs = imaging.mode == ImagingMode::kSocs;

  // Mask spectrum on the full grid (mask edges are not band-limited, so the
  // forward transform needs full resolution).  Only the |kx| <= kx_max
  // columns are consumed below: the Abbe path runs the band-limited forward
  // pass, which is bit-identical to the full transform on those columns;
  // the SOCS path additionally packs the real rows two per transform.
  std::vector<Cplx> spectrum;
  if (socs) {
    spectrum = rfft_2d_band(mask.data(), nx, ny,
                            static_cast<std::size_t>(kx_max));
  } else {
    spectrum.resize(nx * ny);
    for (std::size_t i = 0; i < nx * ny; ++i) spectrum[i] = mask.data()[i];
    fft_2d_band_forward(spectrum, nx, ny, static_cast<std::size_t>(kx_max));
  }

  // Coherent systems on the coarse grid: one per source point (Abbe) or one
  // per retained TCC kernel (SOCS); intensities accumulate there in fixed
  // index order either way, so each path is deterministic.
  std::vector<double> intensity(ncx * ncy, 0.0);
  std::vector<Cplx> field(ncx * ncy);
  const double crop_scale = static_cast<double>(ncx) *
                            static_cast<double>(ncy) /
                            (static_cast<double>(nx) * static_cast<double>(ny));

  if (socs) {
    const std::shared_ptr<const SocsKernels> kernels =
        socs_kernels(opt, source, defocus_nm, grid, imaging.socs);
    if (kernels->parity_packable()) {
      // Parity-pure real kernels (nominal focus, no aberrations): each
      // kernel's filtered spectrum M*phi is Hermitian — directly for even
      // kernels, after an -i twist for odd ones (whose fields are purely
      // imaginary, so the twist rotates them onto the real axis without
      // changing |E|^2).  Two Hermitian spectra ride one complex inverse
      // transform as its real and imaginary parts, halving the per-kernel
      // transform count with no truncation error.
      const std::size_t nk = kernels->kernels.size();
      for (std::size_t k = 0; k < nk; k += 2) {
        const bool pair = k + 1 < nk;
        std::fill(field.begin(), field.end(), Cplx(0.0, 0.0));
        const std::vector<Cplx>& phi1 = kernels->kernels[k];
        const std::vector<Cplx>* phi2 = pair ? &kernels->kernels[k + 1] : nullptr;
        const bool odd1 = kernels->parity[k] == 2;
        const bool odd2 = pair && kernels->parity[k + 1] == 2;
        std::size_t idx = 0;
        for (long long ky = -grid.ky_max; ky <= grid.ky_max; ++ky) {
          for (long long kx = -grid.kx_max; kx <= grid.kx_max; ++kx, ++idx) {
            const Cplx m =
                spectrum[spec_index(kx, ky, nx, ny)] * crop_scale;
            Cplx h1 = m * phi1[idx].real();
            if (odd1) h1 = Cplx(h1.imag(), -h1.real());
            Cplx h2(0.0, 0.0);
            if (pair) {
              h2 = m * (*phi2)[idx].real();
              if (odd2) h2 = Cplx(h2.imag(), -h2.real());
            }
            field[spec_index(kx, ky, ncx, ncy)] =
                Cplx(h1.real() - h2.imag(), h1.imag() + h2.real());
          }
        }
        fft_2d_band_inverse(field, ncx, ncy,
                            static_cast<std::size_t>(grid.kx_max));
        const double w1 = kernels->weights[k];
        if (pair) {
          const double w2 = kernels->weights[k + 1];
          for (std::size_t i = 0; i < ncx * ncy; ++i) {
            const double re = field[i].real();
            const double im = field[i].imag();
            intensity[i] += w1 * re * re + w2 * im * im;
          }
        } else {
          for (std::size_t i = 0; i < ncx * ncy; ++i) {
            const double re = field[i].real();
            intensity[i] += w1 * re * re;
          }
        }
      }
    } else {
      for (std::size_t k = 0; k < kernels->kernels.size(); ++k) {
        accumulate_coherent(spectrum, kernels->kernels[k],
                            kernels->weights[k], grid, nx, ny, ncx, ncy,
                            crop_scale, /*band_inverse=*/true, field,
                            intensity);
      }
    }
  } else {
    const std::shared_ptr<const PupilTables> pupils =
        pupil_tables(opt, source, defocus_nm, grid);
    for (std::size_t s = 0; s < source.size(); ++s) {
      accumulate_coherent(spectrum, pupils->tables[s], source[s].weight, grid,
                          nx, ny, ncx, ncy, crop_scale,
                          /*band_inverse=*/false, field, intensity);
    }
  }

  // Upsample the band-limited intensity to the mask grid through the
  // frequency domain (exact), applying the resist diffusion blur in the
  // same pass.
  std::vector<Cplx> coarse_spec(ncx * ncy);
  for (std::size_t i = 0; i < ncx * ncy; ++i) coarse_spec[i] = intensity[i];
  fft_2d(coarse_spec, ncx, ncy, /*inverse=*/false);

  const double up_scale = static_cast<double>(nx) * static_cast<double>(ny) /
                          (static_cast<double>(ncx) * static_cast<double>(ncy));
  const double two_pi2_s2 = 2.0 * std::numbers::pi * std::numbers::pi *
                            blur_sigma_nm * blur_sigma_nm;
  const long long cx = static_cast<long long>(ncx) / 2 - 1;
  const long long cy = static_cast<long long>(ncy) / 2 - 1;

  Image2D result(nx, ny, mask.pixel(), mask.origin_x(), mask.origin_y());
  if (socs) {
    // The irfft below only reads the band columns, and every band entry is
    // rewritten each call, so the full-grid spectrum can live in a
    // persistent per-thread buffer: only a geometry change pays the
    // full-size zeroing again.
    struct UpsampleScratch {
      std::size_t nx = 0, ny = 0;
      long long cx = -1, cy = -1;
      std::vector<Cplx> spec;
    };
    thread_local UpsampleScratch scratch;
    if (scratch.nx != nx || scratch.ny != ny || scratch.cx != cx ||
        scratch.cy != cy) {
      scratch.nx = nx;
      scratch.ny = ny;
      scratch.cx = cx;
      scratch.cy = cy;
      scratch.spec.assign(nx * ny, Cplx(0.0, 0.0));
    }
    // Separable blur factors keep exp() out of the inner loop (SOCS only:
    // the Abbe loop below keeps the fused exponent so its rounding stays
    // exactly as the reference path has always computed it).
    std::vector<double> bx(static_cast<std::size_t>(2 * cx + 1));
    std::vector<double> by(static_cast<std::size_t>(2 * cy + 1));
    for (long long kx = -cx; kx <= cx; ++kx) {
      const double fx = static_cast<double>(kx) * dfx;
      bx[static_cast<std::size_t>(kx + cx)] =
          blur_sigma_nm > 0.0 ? std::exp(-two_pi2_s2 * fx * fx) : 1.0;
    }
    for (long long ky = -cy; ky <= cy; ++ky) {
      const double fy = static_cast<double>(ky) * dfy;
      by[static_cast<std::size_t>(ky + cy)] =
          blur_sigma_nm > 0.0 ? std::exp(-two_pi2_s2 * fy * fy) : 1.0;
    }
    for (long long ky = -cy; ky <= cy; ++ky) {
      const double wy = up_scale * by[static_cast<std::size_t>(ky + cy)];
      for (long long kx = -cx; kx <= cx; ++kx) {
        scratch.spec[spec_index(kx, ky, nx, ny)] =
            coarse_spec[spec_index(kx, ky, ncx, ncy)] *
            (wy * bx[static_cast<std::size_t>(kx + cx)]);
      }
    }
    // The intensity spectrum is Hermitian (intensity is real), so the
    // upsampling inverse can pack two real output rows per transform.
    const std::vector<double> real_img = irfft_2d_band(
        scratch.spec, nx, ny, static_cast<std::size_t>(cx < 0 ? 0 : cx));
    for (std::size_t i = 0; i < nx * ny; ++i) result.data()[i] = real_img[i];
  } else {
    std::vector<Cplx> full_spec(nx * ny, Cplx(0.0, 0.0));
    for (long long ky = -cy; ky <= cy; ++ky) {
      const double fy = static_cast<double>(ky) * dfy;
      for (long long kx = -cx; kx <= cx; ++kx) {
        const double fx = static_cast<double>(kx) * dfx;
        const double blur =
            blur_sigma_nm > 0.0
                ? std::exp(-two_pi2_s2 * (fx * fx + fy * fy))
                : 1.0;
        full_spec[spec_index(kx, ky, nx, ny)] =
            coarse_spec[spec_index(kx, ky, ncx, ncy)] * (up_scale * blur);
      }
    }
    fft_2d(full_spec, nx, ny, /*inverse=*/true);
    for (std::size_t i = 0; i < nx * ny; ++i) {
      result.data()[i] = full_spec[i].real();
    }
  }
  return result;
}

Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm,
                             const std::vector<SourcePoint>& source) {
  return aerial_image_blurred(mask, opt, defocus_nm, blur_sigma_nm, source,
                              ImagingOptions{});
}

Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm) {
  return aerial_image_blurred(mask, opt, defocus_nm, blur_sigma_nm,
                              sample_source(opt));
}

Image2D aerial_image(const Image2D& mask, const OpticalSettings& opt,
                     double defocus_nm,
                     const std::vector<SourcePoint>& source) {
  return aerial_image_blurred(mask, opt, defocus_nm, 0.0, source);
}

Image2D aerial_image(const Image2D& mask, const OpticalSettings& opt,
                     double defocus_nm) {
  return aerial_image_blurred(mask, opt, defocus_nm, 0.0);
}

}  // namespace poc
