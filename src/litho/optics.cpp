#include "src/litho/optics.h"

#include <cmath>
#include <numbers>

#include "src/common/check.h"

namespace poc {

std::vector<SourcePoint> sample_source(const OpticalSettings& opt) {
  POC_EXPECTS(opt.sigma_outer >= opt.sigma_inner);
  POC_EXPECTS(opt.sigma_outer < 1.0);
  std::vector<SourcePoint> pts;
  if (opt.sigma_outer <= 1e-12) {
    pts.push_back({0.0, 0.0, 1.0});
    return pts;
  }
  POC_EXPECTS(opt.source_rings >= 1 && opt.source_spokes >= 1);
  // Ring radii at the centres of equal-width radial bins; each ring's weight
  // is proportional to the annular area of its bin, so the discrete source
  // integrates the annulus uniformly.
  const double dr =
      (opt.sigma_outer - opt.sigma_inner) / static_cast<double>(opt.source_rings);
  double total = 0.0;
  for (std::size_t r = 0; r < opt.source_rings; ++r) {
    const double r_lo = opt.sigma_inner + dr * static_cast<double>(r);
    const double r_hi = r_lo + dr;
    const double radius = (r_lo + r_hi) / 2.0;
    const double ring_weight = r_hi * r_hi - r_lo * r_lo;  // ∝ annular area
    for (std::size_t s = 0; s < opt.source_spokes; ++s) {
      // Stagger alternate rings by half a spoke for better angular coverage.
      const double phase = (static_cast<double>(s) +
                            (r % 2 == 0 ? 0.0 : 0.5)) /
                           static_cast<double>(opt.source_spokes);
      const double theta = 2.0 * std::numbers::pi * phase;
      pts.push_back({radius * std::cos(theta), radius * std::sin(theta),
                     ring_weight});
      total += ring_weight;
    }
  }
  for (SourcePoint& p : pts) p.weight /= total;
  return pts;
}

Cplx pupil_value(const OpticalSettings& opt, double fx, double fy,
                 double defocus_nm) {
  const double f2 = fx * fx + fy * fy;
  const double cutoff = opt.cutoff_freq();
  if (f2 > cutoff * cutoff) return {0.0, 0.0};
  if (defocus_nm == 0.0 && !opt.has_aberrations()) return {1.0, 0.0};
  double phase = 0.0;
  if (defocus_nm != 0.0) {
    const double lf2 = opt.wavelength_nm * opt.wavelength_nm * f2;
    POC_ENSURES(lf2 <= 1.0);
    phase += 2.0 * std::numbers::pi / opt.wavelength_nm * defocus_nm *
             (std::sqrt(1.0 - lf2) - 1.0);
  }
  if (opt.has_aberrations()) {
    // Normalized pupil radius rho in [0, 1].
    const double rho2 = f2 / (cutoff * cutoff);
    const double rho = std::sqrt(rho2);
    double waves = 0.0;
    if (opt.z9_spherical_waves != 0.0) {
      waves += opt.z9_spherical_waves * (6.0 * rho2 * rho2 - 6.0 * rho2 + 1.0);
    }
    if (opt.z7_coma_x_waves != 0.0 && rho > 0.0) {
      const double cos_theta = fx / (rho * cutoff);
      waves += opt.z7_coma_x_waves * (3.0 * rho2 * rho - 2.0 * rho) * cos_theta;
    }
    phase += 2.0 * std::numbers::pi * waves;
  }
  return {std::cos(phase), std::sin(phase)};
}

}  // namespace poc
