#include "src/litho/pupil_cache.h"

#include <utility>

#include "src/cache/fingerprint.h"
#include "src/cache/result_cache.h"

namespace poc {

std::shared_ptr<const PupilTables> pupil_tables(
    const OpticalSettings& opt, const std::vector<SourcePoint>& source,
    double defocus_nm, const SpectralGrid& grid) {
  // ~100 windows' worth of fine-quality tables; enough that a full flow
  // never thrashes, bounded in case a sweep walks through many defocus
  // values.
  static ShardedCache<PupilTables> cache(128ull << 20, /*shards=*/8);

  FpHasher h;
  h.str("pupil")
      .f64(opt.wavelength_nm)
      .f64(opt.na)
      .f64(opt.z9_spherical_waves)
      .f64(opt.z7_coma_x_waves)
      .f64(defocus_nm)
      .f64(grid.dfx)
      .f64(grid.dfy)
      .i64(grid.kx_max)
      .i64(grid.ky_max)
      .u64(source.size());
  for (const SourcePoint& sp : source) h.f64(sp.sx).f64(sp.sy).f64(sp.weight);
  const Fingerprint fp = h.digest();

  if (auto hit = cache.find(fp)) return hit;

  const double tilt_scale = opt.na / opt.wavelength_nm;
  auto built = std::make_shared<PupilTables>();
  built->tables.reserve(source.size());
  for (const SourcePoint& sp : source) {
    const double fsx = sp.sx * tilt_scale;
    const double fsy = sp.sy * tilt_scale;
    std::vector<Cplx> table(grid.size());
    std::size_t idx = 0;
    for (long long ky = -grid.ky_max; ky <= grid.ky_max; ++ky) {
      const double fy = static_cast<double>(ky) * grid.dfy;
      for (long long kx = -grid.kx_max; kx <= grid.kx_max; ++kx) {
        const double fx = static_cast<double>(kx) * grid.dfx;
        table[idx++] = pupil_value(opt, fx + fsx, fy + fsy, defocus_nm);
      }
    }
    built->tables.push_back(std::move(table));
  }
  cache.insert(fp, built,
               source.size() * grid.size() * sizeof(Cplx) +
                   sizeof(PupilTables));
  return built;
}

}  // namespace poc
