// Process-wide memoized pupil tables over the cropped spectral grid.
// Shared by the Abbe imaging loop (per-source-point filters) and the TCC
// builder in src/litho/tcc.h (which assembles the Hopkins operator from the
// same tables).  Every window of the same pixel size and padded dimensions
// shares one spectral layout, so across a full-chip run the (optics, source,
// defocus) combinations collapse to a handful of tables.
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "src/common/fft.h"
#include "src/litho/optics.h"

namespace poc {

/// Spectral layout of a cropped imaging grid: frequency steps and the
/// signed band half-widths retained by the pupil cutoff.  Tables indexed by
/// `index` are row-major over ky in [-ky_max, ky_max], kx in [-kx_max,
/// kx_max].
struct SpectralGrid {
  double dfx = 0.0;
  double dfy = 0.0;
  long long kx_max = 0;
  long long ky_max = 0;

  std::size_t row() const { return static_cast<std::size_t>(2 * kx_max + 1); }
  std::size_t rows() const { return static_cast<std::size_t>(2 * ky_max + 1); }
  std::size_t size() const { return row() * rows(); }
  std::size_t index(long long kx, long long ky) const {
    return static_cast<std::size_t>(ky + ky_max) * row() +
           static_cast<std::size_t>(kx + kx_max);
  }
};

/// Per-source-point pupil values over the cropped spectral grid.
/// tables[s][grid.index(kx, ky)] holds pupil_value(opt, kx*dfx + fsx,
/// ky*dfy + fsy, defocus) for source point s.  Values are the verbatim
/// pupil_value results, so cached and uncached imaging are bit-identical.
struct PupilTables {
  std::vector<std::vector<Cplx>> tables;
};

/// Memoized builder.  Keyed on the optics fields the pupil reads, defocus,
/// the spectral layout, and the full source discretization including
/// per-point weights (two sources with equal positions but different
/// weights must not collide: the weight is part of every downstream
/// intensity sum and of the TCC assembled from these tables).
std::shared_ptr<const PupilTables> pupil_tables(
    const OpticalSettings& opt, const std::vector<SourcePoint>& source,
    double defocus_nm, const SpectralGrid& grid);

}  // namespace poc
