#include "src/litho/image.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"

namespace poc {

Image2D::Image2D(std::size_t nx, std::size_t ny, double pixel_nm, double ox,
                 double oy)
    : nx_(nx), ny_(ny), pixel_(pixel_nm), ox_(ox), oy_(oy),
      data_(nx * ny, 0.0) {
  POC_EXPECTS(nx > 0 && ny > 0);
  POC_EXPECTS(pixel_nm > 0.0);
}

double& Image2D::at(std::size_t ix, std::size_t iy) {
  POC_EXPECTS(ix < nx_ && iy < ny_);
  return data_[iy * nx_ + ix];
}

double Image2D::at(std::size_t ix, std::size_t iy) const {
  POC_EXPECTS(ix < nx_ && iy < ny_);
  return data_[iy * nx_ + ix];
}

bool Image2D::in_bounds(double x, double y) const {
  return x >= ox_ && y >= oy_ &&
         x <= ox_ + pixel_ * static_cast<double>(nx_ - 1) &&
         y <= oy_ + pixel_ * static_cast<double>(ny_ - 1);
}

double Image2D::sample(double x, double y) const {
  POC_EXPECTS(nx_ > 1 && ny_ > 1);
  double fx = (x - ox_) / pixel_;
  double fy = (y - oy_) / pixel_;
  fx = std::clamp(fx, 0.0, static_cast<double>(nx_ - 1));
  fy = std::clamp(fy, 0.0, static_cast<double>(ny_ - 1));
  const auto ix = std::min(static_cast<std::size_t>(fx), nx_ - 2);
  const auto iy = std::min(static_cast<std::size_t>(fy), ny_ - 2);
  const double tx = fx - static_cast<double>(ix);
  const double ty = fy - static_cast<double>(iy);
  const double v00 = data_[iy * nx_ + ix];
  const double v10 = data_[iy * nx_ + ix + 1];
  const double v01 = data_[(iy + 1) * nx_ + ix];
  const double v11 = data_[(iy + 1) * nx_ + ix + 1];
  return v00 * (1 - tx) * (1 - ty) + v10 * tx * (1 - ty) +
         v01 * (1 - tx) * ty + v11 * tx * ty;
}

double Image2D::min_value() const {
  return *std::min_element(data_.begin(), data_.end());
}

double Image2D::max_value() const {
  return *std::max_element(data_.begin(), data_.end());
}

bool Image2D::all_finite() const {
  for (const double v : data_) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

std::vector<double> Image2D::cross_section_x(double y, double x0, double x1,
                                             std::size_t n) const {
  POC_EXPECTS(n >= 2);
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(n - 1);
    out[i] = sample(x0 + (x1 - x0) * t, y);
  }
  return out;
}

}  // namespace poc
