#include "src/litho/tcc.h"

#include <cmath>
#include <utility>

#include "src/cache/fingerprint.h"
#include "src/cache/result_cache.h"
#include "src/common/check.h"
#include "src/common/linalg.h"

namespace poc {
namespace {

constexpr std::size_t kNoPair = static_cast<std::size_t>(-1);

/// sigma[s] = index of the source point at (-sx, -sy) with matching weight,
/// as an involution over the whole source, or empty when the source lacks
/// 180-degree symmetry.  The tolerance absorbs the cos/sin rounding of
/// sampled ring sources.
std::vector<std::size_t> parity_pairing(
    const std::vector<SourcePoint>& source) {
  const double tol = 1e-9;
  const std::size_t ns = source.size();
  std::vector<std::size_t> sigma(ns, kNoPair);
  for (std::size_t s = 0; s < ns; ++s) {
    for (std::size_t t = 0; t < ns; ++t) {
      if (std::abs(source[t].sx + source[s].sx) <= tol &&
          std::abs(source[t].sy + source[s].sy) <= tol &&
          std::abs(source[t].weight - source[s].weight) <=
              tol * std::abs(source[s].weight)) {
        sigma[s] = t;
        break;
      }
    }
    if (sigma[s] == kNoPair) return {};
  }
  for (std::size_t s = 0; s < ns; ++s) {
    if (sigma[sigma[s]] != s) return {};
  }
  return sigma;
}

/// True when the pupil tables are exactly real and exactly parity-matched:
/// P_sigma(s)[-f] == P_s[f] bit-for-bit.  Holds at zero defocus with no
/// aberrations (pupil_value returns {1,0}/{0,0}); any phase term breaks it.
/// The bit-exact check is what lets the imaging loop treat the lifted
/// kernels' filtered spectra as Hermitian without an error budget.
bool tables_parity_exact(const PupilTables& pupils, const SpectralGrid& grid,
                         const std::vector<std::size_t>& sigma) {
  const long long kxm = grid.kx_max;
  const long long kym = grid.ky_max;
  for (std::size_t s = 0; s < pupils.tables.size(); ++s) {
    const std::vector<Cplx>& ps = pupils.tables[s];
    const std::vector<Cplx>& pm = pupils.tables[sigma[s]];
    for (long long ky = -kym; ky <= kym; ++ky) {
      for (long long kx = -kxm; kx <= kxm; ++kx) {
        const Cplx a = ps[grid.index(kx, ky)];
        if (a.imag() != 0.0) return false;
        if (a.real() != pm[grid.index(-kx, -ky)].real()) return false;
      }
    }
  }
  return true;
}

/// One symmetric/antisymmetric source combination: coefficient ca on point
/// a plus cb on point b (b == a with cb == 0 for on-axis fixed points).
struct ParityCombo {
  std::size_t a = 0;
  std::size_t b = 0;
  double ca = 1.0;
  double cb = 0.0;
};

}  // namespace

std::vector<Cplx> tcc_matrix(const OpticalSettings& opt,
                             const std::vector<SourcePoint>& source,
                             double defocus_nm, const SpectralGrid& grid) {
  const std::size_t n = grid.size();
  const std::shared_ptr<const PupilTables> pupils =
      pupil_tables(opt, source, defocus_nm, grid);
  std::vector<Cplx> t(n * n, Cplx(0.0, 0.0));
  for (std::size_t s = 0; s < source.size(); ++s) {
    const std::vector<Cplx>& p = pupils->tables[s];
    const double w = source[s].weight;
    for (std::size_t i = 0; i < n; ++i) {
      if (p[i] == Cplx(0.0, 0.0)) continue;
      const Cplx wi = w * p[i];
      for (std::size_t j = 0; j < n; ++j) {
        t[i * n + j] += wi * std::conj(p[j]);
      }
    }
  }
  return t;
}

std::shared_ptr<const SocsKernels> socs_kernels(
    const OpticalSettings& opt, const std::vector<SourcePoint>& source,
    double defocus_nm, const SpectralGrid& grid, const SocsOptions& socs) {
  POC_EXPECTS(!source.empty());
  POC_EXPECTS(socs.max_kernels > 0);
  // A few dozen (layout, defocus) combinations of K kernels each; far
  // smaller than the pupil-table cache it derives from.
  static ShardedCache<SocsKernels> cache(64ull << 20, /*shards=*/8);

  FpHasher h;
  h.str("socs")
      .f64(opt.wavelength_nm)
      .f64(opt.na)
      .f64(opt.z9_spherical_waves)
      .f64(opt.z7_coma_x_waves)
      .f64(defocus_nm)
      .f64(grid.dfx)
      .f64(grid.dfy)
      .i64(grid.kx_max)
      .i64(grid.ky_max)
      .u64(socs.max_kernels)
      .f64(socs.energy_fraction)
      .u64(source.size());
  for (const SourcePoint& sp : source) h.f64(sp.sx).f64(sp.sy).f64(sp.weight);
  const Fingerprint fp = h.digest();

  if (auto hit = cache.find(fp)) return hit;

  const std::shared_ptr<const PupilTables> pupils =
      pupil_tables(opt, source, defocus_nm, grid);
  const std::size_t n = grid.size();
  const std::size_t ns = source.size();

  // Gram matrix of the weighted pupil snapshots b_s = sqrt(w_s) P_s:
  // G[s][t] = b_s^H b_t.  Its eigenpairs give the TCC's nonzero spectrum
  // without ever forming the N x N operator (method of snapshots; the TCC
  // has rank <= S by construction).
  std::vector<double> sqw(ns);
  for (std::size_t s = 0; s < ns; ++s) sqw[s] = std::sqrt(source[s].weight);
  std::vector<Cplx> gram(ns * ns, Cplx(0.0, 0.0));
  for (std::size_t s = 0; s < ns; ++s) {
    const std::vector<Cplx>& ps = pupils->tables[s];
    for (std::size_t t = s; t < ns; ++t) {
      const std::vector<Cplx>& pt = pupils->tables[t];
      Cplx acc(0.0, 0.0);
      for (std::size_t i = 0; i < n; ++i) acc += std::conj(ps[i]) * pt[i];
      acc *= sqw[s] * sqw[t];
      gram[s * ns + t] = acc;
      gram[t * ns + s] = std::conj(acc);
    }
  }
  double trace = 0.0;
  for (std::size_t s = 0; s < ns; ++s) trace += gram[s * ns + s].real();

  // Full-rank eigen data before truncation: eigenvalue, per-source lift
  // coefficients (the Gram eigenvector, possibly expressed through parity
  // combinations), and the parity tag — in descending-eigenvalue order.
  std::vector<double> lambdas;
  std::vector<std::vector<Cplx>> lift_coefs;
  std::vector<std::uint8_t> parities;
  lambdas.reserve(ns);
  lift_coefs.reserve(ns);
  parities.reserve(ns);

  const std::vector<std::size_t> sigma = parity_pairing(source);
  const bool parity_ok =
      !sigma.empty() && tables_parity_exact(*pupils, grid, sigma);

  if (parity_ok) {
    // The TCC commutes with parity (real pupils over a symmetric source),
    // so the Gram problem block-diagonalizes over the symmetric (+) and
    // antisymmetric (-) source combinations.  Eigenvectors of each block
    // lift to kernels that are exactly real with pure parity — which is
    // what lets the imaging loop run them two per inverse transform.
    std::vector<ParityCombo> even;
    std::vector<ParityCombo> odd;
    const double r = 1.0 / std::sqrt(2.0);
    for (std::size_t s = 0; s < ns; ++s) {
      if (sigma[s] == s) {
        even.push_back({s, s, 1.0, 0.0});
      } else if (s < sigma[s]) {
        even.push_back({s, sigma[s], r, r});
        odd.push_back({s, sigma[s], r, -r});
      }
    }
    auto eigen_block = [&](const std::vector<ParityCombo>& combos) {
      const std::size_t m = combos.size();
      std::vector<Cplx> g(m * m);
      for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < m; ++j) {
          const ParityCombo& x = combos[i];
          const ParityCombo& y = combos[j];
          g[i * m + j] = x.ca * y.ca * gram[x.a * ns + y.a].real() +
                         x.ca * y.cb * gram[x.a * ns + y.b].real() +
                         x.cb * y.ca * gram[x.b * ns + y.a].real() +
                         x.cb * y.cb * gram[x.b * ns + y.b].real();
        }
      }
      return jacobi_hermitian(std::move(g), m);
    };
    const HermitianEigen ee = eigen_block(even);
    const HermitianEigen eo =
        odd.empty() ? HermitianEigen{} : eigen_block(odd);
    // Merge the two descending eigenvalue lists; even wins ties so the
    // order is deterministic.
    std::size_t ie = 0;
    std::size_t io = 0;
    while (ie < even.size() || io < odd.size()) {
      const bool take_even =
          io >= odd.size() ||
          (ie < even.size() && ee.values[ie] >= eo.values[io]);
      const std::vector<ParityCombo>& combos = take_even ? even : odd;
      const HermitianEigen& e = take_even ? ee : eo;
      const std::size_t k = take_even ? ie++ : io++;
      std::vector<Cplx> lift(ns, Cplx(0.0, 0.0));
      for (std::size_t i = 0; i < combos.size(); ++i) {
        const double u = e.vectors[k * combos.size() + i].real();
        lift[combos[i].a] += u * combos[i].ca;
        lift[combos[i].b] += u * combos[i].cb;
      }
      lambdas.push_back(e.values[k]);
      lift_coefs.push_back(std::move(lift));
      parities.push_back(take_even ? std::uint8_t{1} : std::uint8_t{2});
    }
  } else {
    const HermitianEigen eig = jacobi_hermitian(std::move(gram), ns);
    for (std::size_t k = 0; k < ns; ++k) {
      lambdas.push_back(eig.values[k]);
      lift_coefs.push_back(std::vector<Cplx>(
          eig.vectors.begin() + static_cast<std::ptrdiff_t>(k * ns),
          eig.vectors.begin() + static_cast<std::ptrdiff_t>((k + 1) * ns)));
      parities.push_back(0);
    }
  }

  auto built = std::make_shared<SocsKernels>();
  built->grid = grid;
  built->trace = trace;
  built->source_points = ns;
  const double target = socs.energy_fraction * trace;
  const double floor = 1e-12 * (trace > 0.0 ? trace : 1.0);
  for (std::size_t k = 0; k < lambdas.size(); ++k) {
    if (k >= socs.max_kernels) break;
    const double lambda = lambdas[k];
    if (lambda <= floor && k > 0) break;
    if (built->captured >= target && k > 0) break;
    // phi_k = B u_k / sqrt(lambda_k): the eigenvector of G lifted back to
    // the spectral grid, normalized so ||phi_k|| = 1.
    const double inv_sq = 1.0 / std::sqrt(lambda > 0.0 ? lambda : 1.0);
    std::vector<Cplx> phi(n, Cplx(0.0, 0.0));
    for (std::size_t s = 0; s < ns; ++s) {
      const Cplx coef = lift_coefs[k][s] * (sqw[s] * inv_sq);
      if (coef == Cplx(0.0, 0.0)) continue;
      const std::vector<Cplx>& ps = pupils->tables[s];
      for (std::size_t i = 0; i < n; ++i) phi[i] += coef * ps[i];
    }
    built->weights.push_back(lambda);
    built->kernels.push_back(std::move(phi));
    built->parity.push_back(parities[k]);
    built->captured += lambda;
  }
  POC_ENSURES(!built->kernels.empty());

  cache.insert(fp, built,
               built->kernels.size() * n * sizeof(Cplx) + sizeof(SocsKernels));
  return built;
}

}  // namespace poc
