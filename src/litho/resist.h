// Resist model: Gaussian acid-diffusion blur of the aerial image followed by
// a constant development threshold.  With a positive resist on a clear-field
// mask, the pattern (chrome feature) survives where the blurred, dose-scaled
// intensity stays BELOW the threshold.
#pragma once

#include "src/litho/image.h"
#include "src/litho/optics.h"

namespace poc {

struct ResistModel {
  double diffusion_nm = 25.0;  ///< Gaussian blur sigma (acid diffusion)
  double threshold = 0.30;     ///< development threshold on normalized dose

  /// The latent image: blur(aerial) * dose.  Resist remains (feature prints)
  /// where latent < threshold.
  Image2D latent_image(const Image2D& aerial, double dose) const;
};

/// In-place periodic Gaussian blur via FFT (grid must be power-of-two;
/// rasterize_mask's padding keeps wraparound away from the region of
/// interest).  sigma_nm == 0 is a no-op.
void gaussian_blur(Image2D& img, double sigma_nm);

}  // namespace poc
