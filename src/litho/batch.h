// Batched window imaging: the pack/compute/unpack seam.
//
// The flow hot loops (run_opc / extract / scan_hotspots) image many windows
// whose masks share one shape and one optical configuration.  This layer
// packs a batch of such windows into structure-of-arrays planes (element
// innermost-indexed by window lane, see src/common/fft.h), runs the SOCS
// band-FFT / coherent-convolution / separable-blur chain once over the
// whole batch, and unpacks per-window images in window-index order.  Every
// lane replays the exact scalar floating-point operation sequence, so the
// batch is bit-identical to imaging each window alone — batch size is a
// pure performance knob (ImagingOptions::batch_windows).
//
// The seam is deliberately explicit: pack (mask pointers in), compute
// (aerial_image_blurred_socs_batch over SoA planes), unpack (per-window
// Image2D out).  A future GPU/offload backend replaces the compute stage
// behind the same boundary.
//
// Scratch ownership: one ScratchArena per worker thread.  The arena owns
// every buffer the batched chain touches (grow-only, so steady-state
// batches perform zero heap allocations) plus the persistent upsample
// spectrum for the scalar SOCS path — the former thread_local
// UpsampleScratch in imaging.cpp now lives here.  Workers
// reach their arena via tls_scratch_arena(); the engine entry points take
// the arena as an explicit parameter so tests (and future backends) can
// supply their own.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "src/litho/image.h"
#include "src/litho/imaging.h"
#include "src/litho/optics.h"

namespace poc {

/// Per-worker scratch for the batched imaging chain.  All buffers grow and
/// never shrink; the scalar path's persistent upsample spectrum additionally
/// keeps its contents between calls (only a geometry change re-zeroes it,
/// exactly like the old thread_local scratch it replaced).
class ScratchArena {
 public:
  enum Slot : std::size_t {
    kRowRe,     ///< Row-pair pack scratch, nx * lanes.
    kRowIm,     ///< Row-pair pack scratch, nx * lanes.
    kSpecRe,    ///< Compact band mask spectra, nb * ny * lanes.
    kSpecIm,    ///< Compact band mask spectra, nb * ny * lanes.
    kFieldRe,   ///< Coherent field on the coarse grid, ncx * ncy * lanes.
    kFieldIm,   ///< Coherent field on the coarse grid, ncx * ncy * lanes.
    kIntensity, ///< Accumulated intensity, ncx * ncy * lanes.
    kCoarseRe,  ///< Coarse intensity spectrum, ncx * ncy * lanes.
    kCoarseIm,  ///< Coarse intensity spectrum, ncx * ncy * lanes.
    kUpWorkRe,  ///< Upsample band spectrum, consumed in place, nbu*ny*lanes.
    kUpWorkIm,  ///< Upsample band spectrum, consumed in place, nbu*ny*lanes.
    kSlotCount
  };

  /// Slot buffer with room for at least n doubles (grow-only).
  double* buf(Slot s, std::size_t n) {
    std::vector<double>& b = bufs_[static_cast<std::size_t>(s)];
    if (b.size() < n) b.resize(n);
    return b.data();
  }

  /// Persistent full-grid upsample spectrum for the scalar SOCS path (the
  /// former thread_local UpsampleScratch in imaging.cpp).
  struct UpsampleSpec {
    std::size_t nx = 0, ny = 0;
    long long cx = -1, cy = -1;
    std::vector<Cplx> spec;
  };
  UpsampleSpec& upsample_spec() { return up_spec_; }

  /// Grow-only pointer scratch for the pack/unpack stages.
  std::vector<const double*>& src_ptrs() { return src_ptrs_; }
  std::vector<double*>& dst_ptrs() { return dst_ptrs_; }

  /// Grow-only separable blur factor tables.
  std::vector<double>& blur_x() { return blur_x_; }
  std::vector<double>& blur_y() { return blur_y_; }

 private:
  std::array<std::vector<double>, kSlotCount> bufs_;
  UpsampleSpec up_spec_;
  std::vector<const double*> src_ptrs_;
  std::vector<double*> dst_ptrs_;
  std::vector<double> blur_x_;
  std::vector<double> blur_y_;
};

/// The calling thread's arena (one per OS thread, created on first use).
/// Pool worker threads persist across a run, so their arenas reach steady
/// state after the first batch of each shape.
ScratchArena& tls_scratch_arena();

/// Images a batch of same-shape, same-pixel masks under one configuration,
/// returning per-mask blurred aerial images in batch order.  kSocs runs the
/// SoA batched chain (bit-identical per lane to the scalar path); kAbbe
/// falls back to per-mask scalar calls in ascending order (the reference
/// path stays untouched).  Masks may have different origins; each output
/// inherits its mask's origin.
std::vector<Image2D> aerial_image_blurred_batch(
    const Image2D* const* masks, std::size_t count, const OpticalSettings& opt,
    double defocus_nm, double blur_sigma_nm,
    const std::vector<SourcePoint>& source, const ImagingOptions& imaging,
    ScratchArena& arena);

}  // namespace poc
