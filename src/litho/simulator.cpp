#include "src/litho/simulator.h"

#include "src/litho/imaging.h"
#include "src/litho/mask.h"

namespace poc {

QualityParams quality_params(LithoQuality q) {
  switch (q) {
    case LithoQuality::kDraft: return {10.0, 1, 6};
    case LithoQuality::kStandard: return {8.0, 2, 8};
    case LithoQuality::kFine: return {5.0, 3, 12};
  }
  return {8.0, 2, 8};
}

Image2D LithoSimulator::aerial(const std::vector<Rect>& features,
                               const Rect& window, double defocus_nm,
                               LithoQuality quality) const {
  const QualityParams qp = quality_params(quality);
  OpticalSettings opt = optics_;
  opt.source_rings = qp.source_rings;
  opt.source_spokes = qp.source_spokes;
  const Image2D mask = rasterize_mask(features, window, qp.pixel_nm);
  return aerial_image(mask, opt, defocus_nm);
}

Image2D LithoSimulator::latent(const std::vector<Rect>& features,
                               const Rect& window, const Exposure& exposure,
                               LithoQuality quality) const {
  const QualityParams qp = quality_params(quality);
  OpticalSettings opt = optics_;
  opt.source_rings = qp.source_rings;
  opt.source_spokes = qp.source_spokes;
  const Image2D mask = rasterize_mask(features, window, qp.pixel_nm);
  // Blur applied in the imaging upsample pass; only the dose scale remains.
  Image2D latent = aerial_image_blurred(mask, opt, exposure.focus_nm,
                                        resist_.diffusion_nm);
  for (double& v : latent.data()) v *= exposure.dose;
  return latent;
}

}  // namespace poc
