#include "src/litho/simulator.h"

#include <limits>

#include "src/common/error.h"
#include "src/common/fault.h"
#include "src/litho/batch.h"
#include "src/litho/imaging.h"
#include "src/litho/mask.h"

namespace poc {

QualityParams quality_params(LithoQuality q) {
  switch (q) {
    case LithoQuality::kDraft: return {10.0, 1, 6};
    case LithoQuality::kStandard: return {8.0, 2, 8};
    case LithoQuality::kFine: return {5.0, 3, 12};
  }
  return {8.0, 2, 8};
}

void LithoSimulator::init_quality_contexts() {
  for (const LithoQuality q : {LithoQuality::kDraft, LithoQuality::kStandard,
                               LithoQuality::kFine}) {
    const QualityParams qp = quality_params(q);
    QualityContext& ctx = quality_[static_cast<std::size_t>(q)];
    ctx.optics = optics_;
    ctx.optics.source_rings = qp.source_rings;
    ctx.optics.source_spokes = qp.source_spokes;
    ctx.source = sample_source(ctx.optics);
  }
}

Image2D LithoSimulator::aerial(const std::vector<Rect>& features,
                               const Rect& window, double defocus_nm,
                               LithoQuality quality,
                               std::optional<ImagingMode> mode) const {
  const QualityContext& ctx = quality_context(quality);
  const Image2D mask =
      rasterize_mask(features, window, quality_params(quality).pixel_nm);
  ImagingOptions imaging = imaging_;
  if (mode) imaging.mode = *mode;
  return aerial_image_blurred(mask, ctx.optics, defocus_nm, 0.0, ctx.source,
                              imaging);
}

Image2D LithoSimulator::latent(const std::vector<Rect>& features,
                               const Rect& window, const Exposure& exposure,
                               LithoQuality quality,
                               std::optional<ImagingMode> mode) const {
  const QualityContext& ctx = quality_context(quality);
  const Image2D mask =
      rasterize_mask(features, window, quality_params(quality).pixel_nm);
  ImagingOptions imaging = imaging_;
  if (mode) imaging.mode = *mode;
  // Blur applied in the imaging upsample pass; only the dose scale remains.
  Image2D latent = aerial_image_blurred(mask, ctx.optics, exposure.focus_nm,
                                        resist_.diffusion_nm, ctx.source,
                                        imaging);
  finish_latent(latent, exposure);
  return latent;
}

Image2D LithoSimulator::rasterize(const std::vector<Rect>& features,
                                  const Rect& window,
                                  LithoQuality quality) const {
  return rasterize_mask(features, window, quality_params(quality).pixel_nm);
}

std::vector<Image2D> LithoSimulator::latent_batch(
    const Image2D* const* masks, std::size_t count, const Exposure& exposure,
    LithoQuality quality, ScratchArena& arena,
    std::optional<ImagingMode> mode) const {
  const QualityContext& ctx = quality_context(quality);
  ImagingOptions imaging = imaging_;
  if (mode) imaging.mode = *mode;
  std::vector<Image2D> out = aerial_image_blurred_batch(
      masks, count, ctx.optics, exposure.focus_nm, resist_.diffusion_nm,
      ctx.source, imaging, arena);
  for (Image2D& latent : out) finish_latent(latent, exposure);
  return out;
}

void LithoSimulator::finish_latent(Image2D& latent,
                                   const Exposure& exposure) const {
  for (double& v : latent.data()) v *= exposure.dose;
  if (fault::enabled() && fault::should(fault::Kind::kNanPixel)) {
    latent.data()[0] = std::numeric_limits<double>::quiet_NaN();
  }
  // Boundary guard: contour extraction bisects this image for CDs, and a
  // NaN CD would flow silently into the device model and STA.  Raise the
  // structured fault here, where the window loops can contain it.
  if (!latent.all_finite()) {
    throw FlowException(FlowError{FaultCode::kNonFinite, kNoWindowId,
                                  "litho.latent",
                                  "non-finite intensity in latent image"});
  }
}

}  // namespace poc
