// Facade tying mask rasterization, Abbe imaging and the resist model into
// one call: layout rectangles in a window -> latent image ready for contour
// extraction.  Quality presets trade accuracy for speed: OPC inner loops run
// kDraft; sign-off extraction runs kStandard or kFine.
#pragma once

#include <vector>

#include "src/geom/rect.h"
#include "src/litho/image.h"
#include "src/litho/optics.h"
#include "src/litho/resist.h"

namespace poc {

enum class LithoQuality { kDraft, kStandard, kFine };

struct QualityParams {
  double pixel_nm;
  std::size_t source_rings;
  std::size_t source_spokes;
};

QualityParams quality_params(LithoQuality q);

class LithoSimulator {
 public:
  LithoSimulator() = default;
  LithoSimulator(OpticalSettings optics, ResistModel resist)
      : optics_(optics), resist_(resist) {}

  const OpticalSettings& optics() const { return optics_; }
  const ResistModel& resist() const { return resist_; }

  /// Aerial intensity for chrome features in `window` at the given defocus.
  Image2D aerial(const std::vector<Rect>& features, const Rect& window,
                 double defocus_nm,
                 LithoQuality quality = LithoQuality::kStandard) const;

  /// Latent (blurred, dose-scaled) image; features print where the value is
  /// below resist().threshold.
  Image2D latent(const std::vector<Rect>& features, const Rect& window,
                 const Exposure& exposure,
                 LithoQuality quality = LithoQuality::kStandard) const;

  /// The print threshold contour level in the latent image.
  double print_threshold() const { return resist_.threshold; }

 private:
  OpticalSettings optics_;
  ResistModel resist_;
};

}  // namespace poc
