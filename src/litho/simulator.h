// Facade tying mask rasterization, Abbe imaging and the resist model into
// one call: layout rectangles in a window -> latent image ready for contour
// extraction.  Quality presets trade accuracy for speed: OPC inner loops run
// kDraft; sign-off extraction runs kStandard or kFine.
#pragma once

#include <array>
#include <optional>
#include <vector>

#include "src/geom/rect.h"
#include "src/litho/image.h"
#include "src/litho/imaging.h"
#include "src/litho/optics.h"
#include "src/litho/resist.h"

namespace poc {

class ScratchArena;  // src/litho/batch.h

enum class LithoQuality { kDraft, kStandard, kFine };

struct QualityParams {
  double pixel_nm;
  std::size_t source_rings;
  std::size_t source_spokes;
};

QualityParams quality_params(LithoQuality q);

class LithoSimulator {
 public:
  LithoSimulator() { init_quality_contexts(); }
  LithoSimulator(OpticalSettings optics, ResistModel resist,
                 ImagingOptions imaging = {})
      : optics_(optics), resist_(resist), imaging_(imaging) {
    init_quality_contexts();
  }

  const OpticalSettings& optics() const { return optics_; }
  const ResistModel& resist() const { return resist_; }

  /// Imaging engine (Abbe reference or SOCS fast path) used by aerial and
  /// latent unless a per-call mode override is given.  Part of the window
  /// fingerprints downstream, so flipping it can never alias cached images.
  const ImagingOptions& imaging() const { return imaging_; }
  void set_imaging(const ImagingOptions& imaging) { imaging_ = imaging; }

  /// Aerial intensity for chrome features in `window` at the given defocus.
  /// `mode` overrides the simulator-level imaging mode for this call (the
  /// SOCS truncation knobs still come from imaging()).
  Image2D aerial(const std::vector<Rect>& features, const Rect& window,
                 double defocus_nm,
                 LithoQuality quality = LithoQuality::kStandard,
                 std::optional<ImagingMode> mode = std::nullopt) const;

  /// Latent (blurred, dose-scaled) image; features print where the value is
  /// below resist().threshold.
  Image2D latent(const std::vector<Rect>& features, const Rect& window,
                 const Exposure& exposure,
                 LithoQuality quality = LithoQuality::kStandard,
                 std::optional<ImagingMode> mode = std::nullopt) const;

  /// The mask transmission grid latent() images: rasterized at the quality
  /// preset's pixel pitch.  The batched hot loops rasterize per window and
  /// hand same-shape groups to latent_batch below.
  Image2D rasterize(const std::vector<Rect>& features, const Rect& window,
                    LithoQuality quality = LithoQuality::kStandard) const;

  /// latent() for a batch of same-shape pre-rasterized masks: images all
  /// `count` masks through the batched SoA engine (SOCS; the Abbe reference
  /// falls back to per-mask scalar calls inside the batch layer) and
  /// finishes each in ascending batch order.  Element w is bit-identical to
  /// latent() over the features that rasterized masks[w] — batching never
  /// changes values, only amortizes the transforms.  Scratch comes from
  /// `arena` (per worker; see tls_scratch_arena).
  std::vector<Image2D> latent_batch(const Image2D* const* masks,
                                    std::size_t count,
                                    const Exposure& exposure,
                                    LithoQuality quality, ScratchArena& arena,
                                    std::optional<ImagingMode> mode =
                                        std::nullopt) const;

  /// The resist-side tail of latent(): dose scaling plus the non-finite
  /// guard (and its fault-injection probe).  latent() and latent_batch()
  /// share it so a batched window finishes through exactly the scalar code.
  void finish_latent(Image2D& latent, const Exposure& exposure) const;

  /// The print threshold contour level in the latent image.
  double print_threshold() const { return resist_.threshold; }

 private:
  /// Per-quality imaging resources, built once at construction: the
  /// quality-adjusted optical settings and the discretized source.  The
  /// window loops call aerial/latent millions of times; recomputing the
  /// source sampling (and copying OpticalSettings) per call was pure waste
  /// since both depend only on (optics, quality).
  struct QualityContext {
    OpticalSettings optics;
    std::vector<SourcePoint> source;
  };
  void init_quality_contexts();
  const QualityContext& quality_context(LithoQuality q) const {
    return quality_[static_cast<std::size_t>(q)];
  }

  OpticalSettings optics_;
  ResistModel resist_;
  ImagingOptions imaging_;
  std::array<QualityContext, 3> quality_;
};

}  // namespace poc
