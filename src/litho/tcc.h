// Hopkins transmission-cross-coefficient (TCC) formulation and its SOCS
// (sum of coherent systems) decomposition.
//
// For a discretized source {(s, w_s)} and defocused pupil P, the TCC over
// the cropped spectral grid is
//
//   T(f, f') = sum_s w_s P(f + f_s) conj(P(f' + f_s)),
//
// a Hermitian positive-semidefinite operator of rank <= S (number of source
// points).  Writing b_s(f) = sqrt(w_s) P(f + f_s), T = sum_s b_s b_s^H, so
// its nonzero spectrum equals that of the S x S Gram matrix
// G[s][t] = b_s^H b_t ("method of snapshots").  Eigendecomposing G with the
// Jacobi solver in src/common/linalg and mapping eigenvectors back through
// B = [b_1 ... b_S] yields orthonormal coherent kernels phi_k with
//
//   T = sum_k lambda_k phi_k phi_k^H,   I(x) = sum_k lambda_k |phi_k * m|^2,
//
// exactly (all S kernels) or to any energy fraction of trace(T) when
// truncated to K << S kernels — that truncation is the SOCS fast imaging
// path: O(K) inverse transforms per window instead of O(S).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/fft.h"
#include "src/litho/optics.h"
#include "src/litho/pupil_cache.h"

namespace poc {

/// SOCS truncation knobs.  Kernels are kept in descending-eigenvalue order
/// until they capture `energy_fraction` of the TCC trace, up to
/// `max_kernels`; at least one kernel is always kept.  The defaults retain
/// every non-negligible kernel (discretized-source TCC spectra have a flat
/// tail, so aggressive truncation costs nm-scale CD error): default SOCS is
/// numerically exchangeable with Abbe, and its speed comes from the packed
/// band transforms and the parity kernel pairing, not from truncation.
/// Tighter budgets remain available for draft-mode imaging where sub-nm CD
/// fidelity is not needed.
struct SocsOptions {
  std::size_t max_kernels = 64;
  double energy_fraction = 1.0;
};

/// A truncated SOCS decomposition over one spectral layout.
struct SocsKernels {
  SpectralGrid grid;
  /// Eigenvalues lambda_k, descending; weights of the coherent systems.
  std::vector<double> weights;
  /// kernels[k][grid.index(kx, ky)]: orthonormal coherent kernels phi_k.
  std::vector<std::vector<Cplx>> kernels;
  /// trace(T) = sum_s w_s ||P_s||^2 — total partially-coherent energy.
  double trace = 0.0;
  /// sum of the retained eigenvalues (captured <= trace).
  double captured = 0.0;
  /// Number of source points the TCC was assembled from.
  std::size_t source_points = 0;
  /// Per-kernel parity under f -> -f, populated when the decomposition ran
  /// the parity-blocked build (pupils exactly real and parity-matched, i.e.
  /// zero defocus and no aberrations over a 180-degree-symmetric source):
  /// 1 = even (phi(-f) = phi(f)), 2 = odd (phi(-f) = -phi(f)); such kernels
  /// are exactly real.  0 = generic complex kernel.  When every kernel is
  /// parity-pure the imaging loop packs two kernels per inverse transform
  /// (their filtered spectra are Hermitian after an -i twist on odd
  /// kernels), halving the per-kernel cost with no truncation error.
  std::vector<std::uint8_t> parity;
  bool parity_packable() const {
    if (kernels.empty() || parity.size() != kernels.size()) return false;
    for (std::uint8_t p : parity) {
      if (p == 0) return false;
    }
    return true;
  }
};

/// Explicit dense TCC matrix, row-major N x N with N = grid.size() and
/// T[i * N + j] = T(f_i, f_j) over the grid's row-major frequency order.
/// Quadratic in the grid size — intended for property tests and small
/// grids, not for the imaging hot path (which goes through the Gram
/// factorization in socs_kernels).
std::vector<Cplx> tcc_matrix(const OpticalSettings& opt,
                             const std::vector<SourcePoint>& source,
                             double defocus_nm, const SpectralGrid& grid);

/// Memoized SOCS decomposition, keyed like the pupil tables (optics fields,
/// source positions AND weights, defocus, spectral layout) plus the
/// truncation knobs, so distinct kernel budgets never alias.  Deterministic:
/// the build is a fixed-order single-threaded computation and the cache
/// stores the first inserted value, so every caller in the process sees
/// bit-identical kernels.
std::shared_ptr<const SocsKernels> socs_kernels(
    const OpticalSettings& opt, const std::vector<SourcePoint>& source,
    double defocus_nm, const SpectralGrid& grid, const SocsOptions& socs);

}  // namespace poc
