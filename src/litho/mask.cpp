#include "src/litho/mask.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/fft.h"

namespace poc {
namespace {

/// Coverage of the 1-D pixel [c - 0.5, c + 0.5] (pixel units) by [lo, hi].
double overlap_1d(double c, double lo, double hi) {
  const double a = std::max(c - 0.5, lo);
  const double b = std::min(c + 0.5, hi);
  return std::max(0.0, b - a);
}

}  // namespace

Image2D rasterize_mask(const std::vector<Rect>& features, const Rect& window,
                       double pixel_nm) {
  POC_EXPECTS(!window.empty());
  POC_EXPECTS(pixel_nm > 0.0);
  const double w = static_cast<double>(window.width());
  const double h = static_cast<double>(window.height());
  const std::size_t nx = next_pow2(static_cast<std::size_t>(std::ceil(w / pixel_nm)) + 1);
  const std::size_t ny = next_pow2(static_cast<std::size_t>(std::ceil(h / pixel_nm)) + 1);
  // Centre the window within the (possibly larger) padded grid.
  const double span_x = pixel_nm * static_cast<double>(nx - 1);
  const double span_y = pixel_nm * static_cast<double>(ny - 1);
  const double ox = static_cast<double>(window.xlo) - (span_x - w) / 2.0;
  const double oy = static_cast<double>(window.ylo) - (span_y - h) / 2.0;

  Image2D img(nx, ny, pixel_nm, ox, oy);
  std::fill(img.data().begin(), img.data().end(), 1.0);

  for (const Rect& r : features) {
    if (r.empty()) continue;
    // Feature bounds in pixel coordinates (pixel centres at integers).
    const double px0 = (static_cast<double>(r.xlo) - ox) / pixel_nm;
    const double px1 = (static_cast<double>(r.xhi) - ox) / pixel_nm;
    const double py0 = (static_cast<double>(r.ylo) - oy) / pixel_nm;
    const double py1 = (static_cast<double>(r.yhi) - oy) / pixel_nm;
    const auto ix0 = static_cast<long long>(std::floor(px0 - 0.5));
    const auto ix1 = static_cast<long long>(std::ceil(px1 + 0.5));
    const auto iy0 = static_cast<long long>(std::floor(py0 - 0.5));
    const auto iy1 = static_cast<long long>(std::ceil(py1 + 0.5));
    for (long long iy = std::max(0LL, iy0);
         iy <= std::min<long long>(static_cast<long long>(ny) - 1, iy1); ++iy) {
      const double cy = overlap_1d(static_cast<double>(iy), py0, py1);
      if (cy <= 0.0) continue;
      for (long long ix = std::max(0LL, ix0);
           ix <= std::min<long long>(static_cast<long long>(nx) - 1, ix1); ++ix) {
        const double cx = overlap_1d(static_cast<double>(ix), px0, px1);
        if (cx <= 0.0) continue;
        double& t = img.at(static_cast<std::size_t>(ix), static_cast<std::size_t>(iy));
        t = std::max(0.0, t - cx * cy);
      }
    }
  }
  return img;
}

}  // namespace poc
