#include "src/litho/batch.h"

#include "src/common/check.h"

namespace poc {

ScratchArena& tls_scratch_arena() {
  thread_local ScratchArena arena;
  return arena;
}

std::vector<Image2D> aerial_image_blurred_batch(
    const Image2D* const* masks, std::size_t count, const OpticalSettings& opt,
    double defocus_nm, double blur_sigma_nm,
    const std::vector<SourcePoint>& source, const ImagingOptions& imaging,
    ScratchArena& arena) {
  std::vector<Image2D> out(count);
  if (count == 0) return out;
  if (imaging.mode != ImagingMode::kSocs) {
    // The Abbe reference path never batches: scalar calls in batch order.
    for (std::size_t w = 0; w < count; ++w) {
      out[w] = aerial_image_blurred(*masks[w], opt, defocus_nm, blur_sigma_nm,
                                    source, imaging);
    }
    return out;
  }
  aerial_image_blurred_socs_batch(masks, count, opt, defocus_nm,
                                  blur_sigma_nm, source, imaging.socs, arena,
                                  out.data());
  return out;
}

}  // namespace poc
