// Scalar field on a uniform grid over a layout window: mask transmission,
// aerial-image intensity, or blurred resist signal.  Coordinates are layout
// nanometres; (ox, oy) is the *centre* of pixel (0, 0).
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/units.h"
#include "src/geom/rect.h"

namespace poc {

class Image2D {
 public:
  Image2D() = default;
  Image2D(std::size_t nx, std::size_t ny, double pixel_nm, double ox, double oy);

  std::size_t nx() const { return nx_; }
  std::size_t ny() const { return ny_; }
  double pixel() const { return pixel_; }
  double origin_x() const { return ox_; }
  double origin_y() const { return oy_; }

  double& at(std::size_t ix, std::size_t iy);
  double at(std::size_t ix, std::size_t iy) const;

  /// Centre coordinate of pixel column ix / row iy.
  double x_of(std::size_t ix) const { return ox_ + pixel_ * static_cast<double>(ix); }
  double y_of(std::size_t iy) const { return oy_ + pixel_ * static_cast<double>(iy); }

  /// Bilinear interpolation at layout coordinates; clamps to the grid edge.
  double sample(double x, double y) const;

  /// True if (x, y) lies within the sampled area (pixel centres hull).
  bool in_bounds(double x, double y) const;

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  double min_value() const;
  double max_value() const;

  /// True when every pixel is a finite number — the boundary guard between
  /// the imaging stack and CD extraction (a NaN CD must raise a structured
  /// fault, never propagate into STA).
  bool all_finite() const;

  /// Horizontal cross-section I(x) at fixed y (bilinear sampled), n points
  /// from x0 to x1 inclusive.
  std::vector<double> cross_section_x(double y, double x0, double x1,
                                      std::size_t n) const;

 private:
  std::size_t nx_ = 0, ny_ = 0;
  double pixel_ = 1.0;
  double ox_ = 0.0, oy_ = 0.0;
  std::vector<double> data_;
};

}  // namespace poc
