// Partially-coherent aerial image formation, two interchangeable paths:
//
//  - Abbe (source-point summation, the reference path): for each discrete
//    source point the mask spectrum is filtered by the defocused pupil
//    shifted to that illumination angle and inverse-transformed;
//    intensities accumulate with the source weights.  This retains true
//    partial coherence (iso/dense bias, line-end pullback, forbidden
//    pitches) that a single-kernel convolution model cannot reproduce —
//    see DESIGN.md ablation 1.
//
//  - SOCS (sum of coherent systems, the fast path): the Hopkins TCC built
//    from the same source and pupil is eigendecomposed once per (optics,
//    source, defocus, spectral layout) into K orthonormal coherent kernels
//    (src/litho/tcc.h); each window is then imaged as an index-ordered sum
//    of lambda_k |kernel_k * mask|^2 with K << S transforms, plus packed
//    real-input/real-output band transforms the reference path cannot use
//    (it must stay bit-identical to the goldens).  See DESIGN.md ablation 8
//    for the K vs CD-error vs speed trade.
#pragma once

#include <cstdint>
#include <vector>

#include "src/litho/image.h"
#include "src/litho/optics.h"
#include "src/litho/tcc.h"

namespace poc {

/// Which imaging engine synthesizes the aerial image.
enum class ImagingMode : std::uint8_t {
  kAbbe,  ///< Source-point summation; the reference/golden path.
  kSocs,  ///< Truncated coherent-kernel summation; the fast path.
};

/// batch_windows value meaning "follow the parallel chunk size" (the flow
/// hands each worker chunk to the batched engine whole).
inline constexpr std::size_t kBatchWindowsAuto = static_cast<std::size_t>(-1);

/// Imaging engine selection plus the SOCS truncation knobs (ignored under
/// kAbbe).  Part of every window fingerprint downstream: Abbe and SOCS
/// results, or SOCS results at different kernel budgets, never alias.
struct ImagingOptions {
  ImagingMode mode = ImagingMode::kAbbe;
  SocsOptions socs;
  /// Windows per SoA batch in the flow hot loops (SOCS windows only; the
  /// Abbe reference path never batches).  0 disables batching entirely;
  /// kBatchWindowsAuto follows the parallel chunk size.  Purely a
  /// performance knob: every batch size produces bit-identical results, so
  /// this field is deliberately EXCLUDED from cache and journal
  /// fingerprints (flow.cpp hash_imaging; enforced by test).
  std::size_t batch_windows = kBatchWindowsAuto;
};

/// Computes aerial intensity on the same grid as `mask` (transmission in
/// [0,1]).  An all-clear mask yields intensity 1.0 everywhere (dose applied
/// later by the resist model).  The grid dimensions must be powers of two
/// (rasterize_mask guarantees this).
///
/// Implementation note: per-source-point (or per-kernel) coherent fields
/// are band-limited to NA(1+sigma)/lambda, so they are synthesized on a
/// cropped spectral grid and the accumulated intensity is Fourier-upsampled
/// once — exact, and several times faster than full-grid transforms per
/// term.
Image2D aerial_image(const Image2D& mask, const OpticalSettings& opt,
                     double defocus_nm);

/// Same, with a Gaussian resist-diffusion blur folded into the upsampling
/// pass (equivalent to gaussian_blur(aerial_image(...), sigma) but free).
Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm);

/// Explicit-source overloads: callers that image many windows at the same
/// (optics, quality) pass the discretized source once instead of having
/// every call re-run sample_source (LithoSimulator holds one per quality
/// level).  `source` must be consistent with `opt` — the per-source-point
/// pupil grids are memoized process-wide on (optics, source geometry and
/// weights, defocus, grid spectral layout), so repeated same-shape windows
/// skip the pupil evaluation entirely.
Image2D aerial_image(const Image2D& mask, const OpticalSettings& opt,
                     double defocus_nm,
                     const std::vector<SourcePoint>& source);
Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm,
                             const std::vector<SourcePoint>& source);

/// Mode-selecting overload: kAbbe reproduces the overloads above bit for
/// bit; kSocs swaps the source loop for the truncated coherent-kernel sum
/// (kernels memoized process-wide, see src/litho/tcc.h).
Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm,
                             const std::vector<SourcePoint>& source,
                             const ImagingOptions& imaging);

class ScratchArena;  // src/litho/batch.h

/// Batched SOCS engine: images `count` same-shape (nx, ny, pixel) masks in
/// one structure-of-arrays pass through the band FFT / coherent-kernel /
/// separable-blur chain, writing blurred aerial images to out[0..count).
/// Lane w is bit-identical to the scalar kSocs aerial_image_blurred of
/// masks[w] alone — batching widens each scalar floating-point operation
/// across window lanes without reordering or fusing any of them.  All
/// scratch comes from `arena`; when the arena is warm and out[w] already
/// has the right geometry, the call performs no heap allocation.  Most
/// callers want the aerial_image_blurred_batch wrapper in batch.h.
void aerial_image_blurred_socs_batch(const Image2D* const* masks,
                                     std::size_t count,
                                     const OpticalSettings& opt,
                                     double defocus_nm, double blur_sigma_nm,
                                     const std::vector<SourcePoint>& source,
                                     const SocsOptions& socs,
                                     ScratchArena& arena, Image2D* out);

}  // namespace poc
