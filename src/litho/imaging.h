// Partially-coherent aerial image formation, two interchangeable paths:
//
//  - Abbe (source-point summation, the reference path): for each discrete
//    source point the mask spectrum is filtered by the defocused pupil
//    shifted to that illumination angle and inverse-transformed;
//    intensities accumulate with the source weights.  This retains true
//    partial coherence (iso/dense bias, line-end pullback, forbidden
//    pitches) that a single-kernel convolution model cannot reproduce —
//    see DESIGN.md ablation 1.
//
//  - SOCS (sum of coherent systems, the fast path): the Hopkins TCC built
//    from the same source and pupil is eigendecomposed once per (optics,
//    source, defocus, spectral layout) into K orthonormal coherent kernels
//    (src/litho/tcc.h); each window is then imaged as an index-ordered sum
//    of lambda_k |kernel_k * mask|^2 with K << S transforms, plus packed
//    real-input/real-output band transforms the reference path cannot use
//    (it must stay bit-identical to the goldens).  See DESIGN.md ablation 8
//    for the K vs CD-error vs speed trade.
#pragma once

#include <cstdint>
#include <vector>

#include "src/litho/image.h"
#include "src/litho/optics.h"
#include "src/litho/tcc.h"

namespace poc {

/// Which imaging engine synthesizes the aerial image.
enum class ImagingMode : std::uint8_t {
  kAbbe,  ///< Source-point summation; the reference/golden path.
  kSocs,  ///< Truncated coherent-kernel summation; the fast path.
};

/// Imaging engine selection plus the SOCS truncation knobs (ignored under
/// kAbbe).  Part of every window fingerprint downstream: Abbe and SOCS
/// results, or SOCS results at different kernel budgets, never alias.
struct ImagingOptions {
  ImagingMode mode = ImagingMode::kAbbe;
  SocsOptions socs;
};

/// Computes aerial intensity on the same grid as `mask` (transmission in
/// [0,1]).  An all-clear mask yields intensity 1.0 everywhere (dose applied
/// later by the resist model).  The grid dimensions must be powers of two
/// (rasterize_mask guarantees this).
///
/// Implementation note: per-source-point (or per-kernel) coherent fields
/// are band-limited to NA(1+sigma)/lambda, so they are synthesized on a
/// cropped spectral grid and the accumulated intensity is Fourier-upsampled
/// once — exact, and several times faster than full-grid transforms per
/// term.
Image2D aerial_image(const Image2D& mask, const OpticalSettings& opt,
                     double defocus_nm);

/// Same, with a Gaussian resist-diffusion blur folded into the upsampling
/// pass (equivalent to gaussian_blur(aerial_image(...), sigma) but free).
Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm);

/// Explicit-source overloads: callers that image many windows at the same
/// (optics, quality) pass the discretized source once instead of having
/// every call re-run sample_source (LithoSimulator holds one per quality
/// level).  `source` must be consistent with `opt` — the per-source-point
/// pupil grids are memoized process-wide on (optics, source geometry and
/// weights, defocus, grid spectral layout), so repeated same-shape windows
/// skip the pupil evaluation entirely.
Image2D aerial_image(const Image2D& mask, const OpticalSettings& opt,
                     double defocus_nm,
                     const std::vector<SourcePoint>& source);
Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm,
                             const std::vector<SourcePoint>& source);

/// Mode-selecting overload: kAbbe reproduces the overloads above bit for
/// bit; kSocs swaps the source loop for the truncated coherent-kernel sum
/// (kernels memoized process-wide, see src/litho/tcc.h).
Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm,
                             const std::vector<SourcePoint>& source,
                             const ImagingOptions& imaging);

}  // namespace poc
