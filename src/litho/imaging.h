// Abbe (source-point summation) partially-coherent aerial image formation.
// For each discrete source point the mask spectrum is filtered by the
// defocused pupil shifted to that illumination angle and inverse-transformed;
// intensities accumulate with the source weights.  This retains true partial
// coherence (iso/dense bias, line-end pullback, forbidden pitches) that a
// single-kernel convolution model cannot reproduce — see DESIGN.md ablation 1.
#pragma once

#include <vector>

#include "src/litho/image.h"
#include "src/litho/optics.h"

namespace poc {

/// Computes aerial intensity on the same grid as `mask` (transmission in
/// [0,1]).  An all-clear mask yields intensity 1.0 everywhere (dose applied
/// later by the resist model).  The grid dimensions must be powers of two
/// (rasterize_mask guarantees this).
///
/// Implementation note: per-source-point coherent fields are band-limited
/// to NA(1+sigma)/lambda, so they are synthesized on a cropped spectral
/// grid and the accumulated intensity is Fourier-upsampled once — exact,
/// and several times faster than full-grid transforms per source point.
Image2D aerial_image(const Image2D& mask, const OpticalSettings& opt,
                     double defocus_nm);

/// Same, with a Gaussian resist-diffusion blur folded into the upsampling
/// pass (equivalent to gaussian_blur(aerial_image(...), sigma) but free).
Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm);

/// Explicit-source overloads: callers that image many windows at the same
/// (optics, quality) pass the discretized source once instead of having
/// every call re-run sample_source (LithoSimulator holds one per quality
/// level).  `source` must be consistent with `opt` — the per-source-point
/// pupil grids are memoized process-wide on (optics, source geometry,
/// defocus, grid spectral layout), so repeated same-shape windows skip the
/// pupil evaluation entirely.
Image2D aerial_image(const Image2D& mask, const OpticalSettings& opt,
                     double defocus_nm,
                     const std::vector<SourcePoint>& source);
Image2D aerial_image_blurred(const Image2D& mask, const OpticalSettings& opt,
                             double defocus_nm, double blur_sigma_nm,
                             const std::vector<SourcePoint>& source);

}  // namespace poc
