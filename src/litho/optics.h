// Optical configuration for the scanner model: wavelength, numerical
// aperture, annular partially-coherent source, and the defocus pupil phase.
// Defaults model a 2005-era 193 nm dry scanner printing a 90 nm poly level.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "src/common/fft.h"

namespace poc {

/// Exposure condition for one simulation: defocus in nm and relative dose
/// (1.0 = nominal).  The joint (focus, dose) distribution lives in src/var.
struct Exposure {
  double focus_nm = 0.0;
  double dose = 1.0;
};

/// A point of the discretized illumination source, in sigma coordinates
/// (fraction of NA), with an integration weight.
struct SourcePoint {
  double sx = 0.0;
  double sy = 0.0;
  double weight = 1.0;
};

struct OpticalSettings {
  double wavelength_nm = 193.0;
  double na = 0.75;
  double sigma_inner = 0.5;   ///< annular source inner radius (0 = disk)
  double sigma_outer = 0.8;
  std::size_t source_rings = 2;     ///< radial sampling of the annulus
  std::size_t source_spokes = 8;    ///< azimuthal sampling per ring

  /// Residual lens aberrations as Zernike coefficients in waves (RMS
  /// convention-free, simple polynomial weights).  Well-corrected 2005-era
  /// scanners held these to a few milli-waves; nonzero spherical couples
  /// into focus (asymmetric Bossung), coma shifts pattern placement.
  double z9_spherical_waves = 0.0;   ///< Z9: 6 rho^4 - 6 rho^2 + 1
  double z7_coma_x_waves = 0.0;      ///< Z7: (3 rho^3 - 2 rho) cos(theta)

  /// Cutoff spatial frequency |f| <= na / wavelength (cycles/nm).
  double cutoff_freq() const { return na / wavelength_nm; }

  bool has_aberrations() const {
    return z9_spherical_waves != 0.0 || z7_coma_x_waves != 0.0;
  }
};

/// Discretizes the source into weighted points (polar sampling; weights
/// normalized to sum to 1).  sigma_inner == sigma_outer == 0 yields a single
/// on-axis point (coherent illumination).
std::vector<SourcePoint> sample_source(const OpticalSettings& opt);

/// Complex pupil value at spatial frequency (fx, fy) in cycles/nm for the
/// given defocus; zero outside the NA cutoff.  The defocus phase uses the
/// standard high-NA form 2*pi/lambda * z * (sqrt(1 - (lambda f)^2) - 1).
Cplx pupil_value(const OpticalSettings& opt, double fx, double fy,
                 double defocus_nm);

}  // namespace poc
