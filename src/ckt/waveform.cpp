#include "src/ckt/waveform.h"

#include <algorithm>

#include "src/common/check.h"

namespace poc {

Pwl::Pwl(std::vector<std::pair<Ps, Volt>> points) : pts_(std::move(points)) {
  POC_EXPECTS(!pts_.empty());
  POC_EXPECTS(std::is_sorted(
      pts_.begin(), pts_.end(),
      [](const auto& a, const auto& b) { return a.first < b.first; }));
}

Pwl Pwl::constant(Volt v) { return Pwl({{0.0, v}}); }

Pwl Pwl::ramp(Ps t0, Ps transition, Volt v0, Volt v1) {
  POC_EXPECTS(transition > 0.0);
  return Pwl({{t0, v0}, {t0 + transition, v1}});
}

Volt Pwl::at(Ps t) const {
  POC_EXPECTS(!pts_.empty());
  if (t <= pts_.front().first) return pts_.front().second;
  if (t >= pts_.back().first) return pts_.back().second;
  for (std::size_t i = 0; i + 1 < pts_.size(); ++i) {
    if (t <= pts_[i + 1].first) {
      const auto& [t0, v0] = pts_[i];
      const auto& [t1, v1] = pts_[i + 1];
      const double f = (t - t0) / (t1 - t0);
      return v0 + (v1 - v0) * f;
    }
  }
  return pts_.back().second;
}

Ps Pwl::last_time() const {
  POC_EXPECTS(!pts_.empty());
  return pts_.back().first;
}

std::optional<Ps> Trace::cross_time(Volt level, bool rising, Ps t_from) const {
  const auto start = static_cast<std::size_t>(std::max(0.0, t_from / dt));
  for (std::size_t i = start; i + 1 < v.size(); ++i) {
    const Volt a = v[i];
    const Volt b = v[i + 1];
    const bool crossed = rising ? (a < level && b >= level)
                                : (a > level && b <= level);
    if (crossed) {
      const double f = (level - a) / (b - a);
      return dt * (static_cast<double>(i) + f);
    }
  }
  return std::nullopt;
}

std::optional<Ps> Trace::slew(Volt vdd, bool rising, Ps t_from) const {
  const Volt lo = 0.2 * vdd;
  const Volt hi = 0.8 * vdd;
  const auto t_first = cross_time(rising ? lo : hi, rising, t_from);
  if (!t_first) return std::nullopt;
  const auto t_second = cross_time(rising ? hi : lo, rising, *t_first);
  if (!t_second) return std::nullopt;
  return (*t_second - *t_first) / 0.6;
}

}  // namespace poc
