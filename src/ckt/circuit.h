// Circuit netlist for the transient simulator: grounded capacitors,
// two-terminal resistors, ideal voltage sources (PWL to ground) and
// alpha-power MOSFETs.  Node 0 is ground.
#pragma once

#include <cstddef>
#include <vector>

#include "src/ckt/waveform.h"
#include "src/device/mosfet.h"

namespace poc {

using NodeId = std::size_t;
constexpr NodeId kGround = 0;

struct Capacitor {
  NodeId node = kGround;
  Ff value = 0.0;
};

struct Resistor {
  NodeId a = kGround, b = kGround;
  Ohm value = 0.0;
};

struct VSource {
  NodeId node = kGround;
  Pwl waveform;
};

struct MosfetInst {
  MosfetParams params;
  double width_um = 1.0;
  double l_nm = 90.0;
  NodeId drain = kGround, gate = kGround, source = kGround;
};

class Circuit {
 public:
  Circuit();  ///< creates ground

  NodeId add_node();
  std::size_t num_nodes() const { return num_nodes_; }

  void add_cap(NodeId node, Ff value);
  void add_res(NodeId a, NodeId b, Ohm value);
  void add_vsource(NodeId node, Pwl waveform);
  void add_mosfet(const MosfetInst& m);

  const std::vector<Capacitor>& caps() const { return caps_; }
  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<VSource>& vsources() const { return vsources_; }
  const std::vector<MosfetInst>& mosfets() const { return mosfets_; }

  /// Total grounded capacitance on a node (fF).
  Ff node_cap(NodeId node) const;

  /// True if the node is pinned by a voltage source.
  bool is_driven(NodeId node) const;

 private:
  std::size_t num_nodes_ = 0;
  std::vector<Capacitor> caps_;
  std::vector<Resistor> resistors_;
  std::vector<VSource> vsources_;
  std::vector<MosfetInst> mosfets_;
};

}  // namespace poc
