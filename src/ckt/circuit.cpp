#include "src/ckt/circuit.h"

#include "src/common/check.h"

namespace poc {

Circuit::Circuit() : num_nodes_(1) {}

NodeId Circuit::add_node() { return num_nodes_++; }

void Circuit::add_cap(NodeId node, Ff value) {
  POC_EXPECTS(node < num_nodes_);
  POC_EXPECTS(value >= 0.0);
  caps_.push_back({node, value});
}

void Circuit::add_res(NodeId a, NodeId b, Ohm value) {
  POC_EXPECTS(a < num_nodes_ && b < num_nodes_);
  POC_EXPECTS(value > 0.0);
  resistors_.push_back({a, b, value});
}

void Circuit::add_vsource(NodeId node, Pwl waveform) {
  POC_EXPECTS(node < num_nodes_);
  POC_EXPECTS(node != kGround);
  vsources_.push_back({node, std::move(waveform)});
}

void Circuit::add_mosfet(const MosfetInst& m) {
  POC_EXPECTS(m.drain < num_nodes_ && m.gate < num_nodes_ &&
              m.source < num_nodes_);
  POC_EXPECTS(m.width_um > 0.0 && m.l_nm > 0.0);
  mosfets_.push_back(m);
}

Ff Circuit::node_cap(NodeId node) const {
  Ff total = 0.0;
  for (const Capacitor& c : caps_) {
    if (c.node == node) total += c.value;
  }
  return total;
}

bool Circuit::is_driven(NodeId node) const {
  for (const VSource& v : vsources_) {
    if (v.node == node) return true;
  }
  return false;
}

}  // namespace poc
