// Piecewise-linear waveforms and trace measurements (threshold crossing
// times, 20-80 % slew) used by cell characterization.
#pragma once

#include <optional>
#include <vector>

#include "src/common/units.h"

namespace poc {

/// Piecewise-linear voltage source waveform; flat before the first and
/// after the last breakpoint.
class Pwl {
 public:
  Pwl() = default;
  Pwl(std::vector<std::pair<Ps, Volt>> points);

  static Pwl constant(Volt v);
  /// Step-like ramp from v0 to v1 starting at t0, with the given 0-100 %
  /// transition time.
  static Pwl ramp(Ps t0, Ps transition, Volt v0, Volt v1);

  Volt at(Ps t) const;
  Ps last_time() const;

 private:
  std::vector<std::pair<Ps, Volt>> pts_;
};

/// A simulated node voltage trace on a uniform time grid.
struct Trace {
  Ps dt = 1.0;
  std::vector<Volt> v;

  Ps time_of(std::size_t i) const { return dt * static_cast<double>(i); }

  /// First time the trace crosses `level` in the given direction after
  /// t_from, linearly interpolated; nullopt if it never does.
  std::optional<Ps> cross_time(Volt level, bool rising, Ps t_from = 0.0) const;

  /// 20-80 % transition time scaled to a full-swing equivalent (x 1/0.6),
  /// the convention NLDM slew tables use here.
  std::optional<Ps> slew(Volt vdd, bool rising, Ps t_from = 0.0) const;

  Volt final_value() const { return v.empty() ? 0.0 : v.back(); }
};

}  // namespace poc
