// Backward-Euler transient analysis with Newton iteration and numeric
// Jacobian.  Circuits here are standard-cell sized (a handful of nodes), so
// dense Gaussian elimination is the right tool.  Units: ps / fF / ohm / V;
// branch currents in microamperes.
#pragma once

#include <vector>

#include "src/ckt/circuit.h"

namespace poc {

struct TransientOptions {
  Ps dt = 0.5;
  Ps t_end = 2000.0;
  Ff cmin = 0.05;            ///< floor capacitance added to every node
  double gmin_ua_per_v = 1e-3;  ///< leak to ground keeping nodes defined
  int max_newton = 60;
  double vtol = 1e-5;
};

struct TransientResult {
  std::vector<Trace> traces;  ///< one per node (index = NodeId)
  bool converged = true;      ///< false if any step failed Newton
};

TransientResult simulate(const Circuit& circuit,
                         const TransientOptions& options);

}  // namespace poc
