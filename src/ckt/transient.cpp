#include "src/ckt/transient.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/linalg.h"

namespace poc {
namespace {

class Solver {
 public:
  Solver(const Circuit& ckt, const TransientOptions& opts)
      : ckt_(ckt), opts_(opts) {
    const std::size_t n = ckt.num_nodes();
    node_cap_.assign(n, opts.cmin);
    for (const Capacitor& c : ckt.caps()) node_cap_[c.node] += c.value;
    for (std::size_t i = 1; i < n; ++i) {
      if (!ckt.is_driven(i)) unknowns_.push_back(i);
    }
  }

  const std::vector<NodeId>& unknowns() const { return unknowns_; }

  /// Residual (net current leaving each unknown node, uA) for candidate
  /// voltages `v` at time t, given previous-step voltages `v_prev`.
  void residual(const std::vector<double>& v, const std::vector<double>& v_prev,
                std::vector<double>& f_out) const {
    f_out.assign(unknowns_.size(), 0.0);
    // Map from node to unknown slot (-1 if pinned).
    // (Built once lazily would be fine; circuit sizes make this cheap.)
    for (std::size_t u = 0; u < unknowns_.size(); ++u) {
      const NodeId node = unknowns_[u];
      // Capacitor displacement current: 1000 converts fF*V/ps to uA.
      f_out[u] += 1000.0 * node_cap_[node] * (v[node] - v_prev[node]) /
                  opts_.dt;
      // gmin keeps floating nodes numerically defined.
      f_out[u] += opts_.gmin_ua_per_v * v[node];
    }
    for (const Resistor& r : ckt_.resistors()) {
      const double i_ab = 1e6 * (v[r.a] - v[r.b]) / r.value;  // uA
      add_current(f_out, r.a, i_ab);
      add_current(f_out, r.b, -i_ab);
    }
    for (const MosfetInst& m : ckt_.mosfets()) {
      double i = 0.0;  // conventional current into the "high" terminal
      NodeId from = m.drain, to = m.source;
      if (m.params.is_nmos) {
        if (v[m.drain] >= v[m.source]) {
          i = m.params.id_per_um(v[m.gate] - v[m.source],
                                 v[m.drain] - v[m.source], m.l_nm) *
              m.width_um;
        } else {  // symmetric device: terminals swap roles
          from = m.source;
          to = m.drain;
          i = m.params.id_per_um(v[m.gate] - v[m.drain],
                                 v[m.source] - v[m.drain], m.l_nm) *
              m.width_um;
        }
      } else {
        if (v[m.source] >= v[m.drain]) {
          from = m.source;
          to = m.drain;
          i = m.params.id_per_um(v[m.source] - v[m.gate],
                                 v[m.source] - v[m.drain], m.l_nm) *
              m.width_um;
        } else {
          from = m.drain;
          to = m.source;
          i = m.params.id_per_um(v[m.drain] - v[m.gate],
                                 v[m.drain] - v[m.source], m.l_nm) *
              m.width_um;
        }
      }
      // Current flows from `from` to `to`: it leaves `from`, enters `to`.
      add_current(f_out, from, i);
      add_current(f_out, to, -i);
    }
  }

  /// One backward-Euler step; v is updated in place.  Returns Newton
  /// convergence.
  bool step(std::vector<double>& v, const std::vector<double>& v_prev) const {
    const std::size_t n = unknowns_.size();
    if (n == 0) return true;
    std::vector<double> f(n), f2(n), jac(n * n), delta(n);
    std::vector<double> v_try = v;
    for (int it = 0; it < opts_.max_newton; ++it) {
      residual(v_try, v_prev, f);
      double worst = 0.0;
      for (double x : f) worst = std::max(worst, std::abs(x));
      // Numeric Jacobian, column per unknown.
      const double dv = 1e-4;
      for (std::size_t c = 0; c < n; ++c) {
        const NodeId node = unknowns_[c];
        const double saved = v_try[node];
        v_try[node] = saved + dv;
        residual(v_try, v_prev, f2);
        v_try[node] = saved;
        for (std::size_t r = 0; r < n; ++r) {
          jac[r * n + c] = (f2[r] - f[r]) / dv;
        }
      }
      delta = f;
      std::vector<double> jac_copy = jac;
      if (!solve_dense(jac_copy, delta, n)) return false;
      double max_step = 0.0;
      for (std::size_t u = 0; u < n; ++u) {
        // Damped Newton: cap per-iteration voltage moves.
        const double d = std::clamp(delta[u], -0.3, 0.3);
        v_try[unknowns_[u]] -= d;
        max_step = std::max(max_step, std::abs(d));
      }
      if (max_step < opts_.vtol) {
        v = v_try;
        return true;
      }
    }
    v = v_try;  // accept best effort; caller records non-convergence
    return false;
  }

 private:
  void add_current(std::vector<double>& f, NodeId node, double i_ua) const {
    for (std::size_t u = 0; u < unknowns_.size(); ++u) {
      if (unknowns_[u] == node) {
        f[u] += i_ua;
        return;
      }
    }
  }

  const Circuit& ckt_;
  const TransientOptions& opts_;
  std::vector<Ff> node_cap_;
  std::vector<NodeId> unknowns_;
};

}  // namespace

TransientResult simulate(const Circuit& circuit,
                         const TransientOptions& options) {
  POC_EXPECTS(options.dt > 0.0);
  POC_EXPECTS(options.t_end > options.dt);
  const std::size_t n = circuit.num_nodes();
  const auto steps = static_cast<std::size_t>(options.t_end / options.dt);

  Solver solver(circuit, options);
  TransientResult result;
  result.traces.assign(n, Trace{options.dt, {}});
  for (Trace& t : result.traces) t.v.reserve(steps + 1);

  std::vector<double> v(n, 0.0);
  // Initial condition: sources at t=0; characterization decks hold inputs
  // steady long enough for internal nodes to settle from 0 V.
  for (const VSource& s : circuit.vsources()) v[s.node] = s.waveform.at(0.0);
  for (std::size_t node = 0; node < n; ++node) result.traces[node].v.push_back(v[node]);

  std::vector<double> v_prev = v;
  for (std::size_t k = 1; k <= steps; ++k) {
    const Ps t = options.dt * static_cast<double>(k);
    for (const VSource& s : circuit.vsources()) v[s.node] = s.waveform.at(t);
    if (!solver.step(v, v_prev)) result.converged = false;
    v_prev = v;
    for (std::size_t node = 0; node < n; ++node) {
      result.traces[node].v.push_back(v[node]);
    }
  }
  return result;
}

}  // namespace poc
