// Google-benchmark micro-benchmarks for the compute kernels that dominate
// the flow's runtime: 2-D FFT, mask rasterization, aerial-image formation,
// one model-based OPC window, per-gate CD extraction, and a full-design STA
// pass.  These quantify the scalability claims in DESIGN.md (selective
// extraction exists because litho windows are ~1e6 x an STA pass).
#include <benchmark/benchmark.h>

#include <cmath>
#include <string>

#include "bench/bench_util.h"
#include "src/cdx/cd_extract.h"
#include "src/common/fft.h"
#include "src/geom/polygon_ops.h"
#include "src/litho/batch.h"
#include "src/litho/imaging.h"
#include "src/litho/mask.h"
#include "src/opc/opc_engine.h"

namespace poc {
namespace {

void BM_Fft2D(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::vector<Cplx> data(n * n);
  Rng rng(1);
  for (auto& c : data) c = {rng.uniform(), 0.0};
  for (auto _ : state) {
    fft_2d(data, n, n, false);
    fft_2d(data, n, n, true);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_Fft2D)->Arg(128)->Arg(256)->Arg(512);

void BM_RasterizeMask(benchmark::State& state) {
  std::vector<Rect> lines;
  for (int k = -8; k <= 8; ++k) lines.push_back({k * 250, -1000, k * 250 + 90, 1000});
  const Rect window{-2200, -1200, 2290, 1200};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rasterize_mask(lines, window, 8.0));
  }
}
BENCHMARK(BM_RasterizeMask);

void BM_AerialImage(benchmark::State& state) {
  std::vector<Rect> lines;
  for (int k = -3; k <= 3; ++k) lines.push_back({k * 250, -600, k * 250 + 90, 600});
  const Image2D mask = rasterize_mask(lines, {-900, -700, 990, 700}, 8.0);
  OpticalSettings opt;
  opt.source_rings = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(aerial_image_blurred(mask, opt, 0.0, 25.0));
  }
}
BENCHMARK(BM_AerialImage)->Arg(1)->Arg(2)->Arg(3);

void BM_AerialImageSocs(benchmark::State& state) {
  // Same mask/window/conditions as BM_AerialImage, through the SOCS fast
  // path at default (exact, untruncated) knobs — the per-window speedup the
  // Hopkins decomposition buys at each quality.
  std::vector<Rect> lines;
  for (int k = -3; k <= 3; ++k) lines.push_back({k * 250, -600, k * 250 + 90, 600});
  const Image2D mask = rasterize_mask(lines, {-900, -700, 990, 700}, 8.0);
  OpticalSettings opt;
  opt.source_rings = static_cast<std::size_t>(state.range(0));
  const std::vector<SourcePoint> source = sample_source(opt);
  const ImagingOptions imaging{ImagingMode::kSocs, SocsOptions{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        aerial_image_blurred(mask, opt, 0.0, 25.0, source, imaging));
  }
}
BENCHMARK(BM_AerialImageSocs)->Arg(1)->Arg(2)->Arg(3);

void BM_AerialImageSocsKernels(benchmark::State& state) {
  // Kernel-budget sweep at quality 3 (S = 24 source points): wall time vs
  // max_kernels, with the CD deviation from Abbe recorded in the label so
  // BENCH_PR3.json carries the speed/accuracy trade explicitly.
  std::vector<Rect> lines;
  for (int k = -3; k <= 3; ++k) lines.push_back({k * 250, -600, k * 250 + 90, 600});
  const Image2D mask = rasterize_mask(lines, {-900, -700, 990, 700}, 8.0);
  OpticalSettings opt;
  opt.source_rings = 3;
  const std::vector<SourcePoint> source = sample_source(opt);
  ImagingOptions imaging{ImagingMode::kSocs, SocsOptions{}};
  imaging.socs.max_kernels = static_cast<std::size_t>(state.range(0));
  imaging.socs.energy_fraction = 1.0;
  // CD at the central feature, Abbe vs truncated SOCS, measured on the
  // blurred aerial image at the 0.3 iso-level.
  const Image2D ref = aerial_image_blurred(mask, opt, 0.0, 25.0);
  const Image2D fast =
      aerial_image_blurred(mask, opt, 0.0, 25.0, source, imaging);
  auto cd_at = [](const Image2D& img, double level) {
    // Sub-sample the iso-level crossings of the central line by linear
    // interpolation so the label resolves CD deltas well below the step.
    const double y = 0.0, step = 0.25;
    bool found = false;
    double left = 0.0, right = 0.0;
    double prev = img.sample(-120.0, y);
    for (double x = -120.0 + step; x <= 120.0; x += step) {
      const double cur = img.sample(x, y);
      if (prev >= level && cur < level) {
        const double t = (prev - level) / (prev - cur);
        if (!found) left = x - step + t * step;
        found = true;
      }
      if (prev < level && cur >= level) {
        const double t = (level - prev) / (cur - prev);
        right = x - step + t * step;
      }
      prev = cur;
    }
    return found ? right - left : 0.0;
  };
  const double delta =
      std::abs(cd_at(fast, 0.3) - cd_at(ref, 0.3));
  state.SetLabel("cd_delta_nm=" + std::to_string(delta));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        aerial_image_blurred(mask, opt, 0.0, 25.0, source, imaging));
  }
}
BENCHMARK(BM_AerialImageSocsKernels)
    ->Arg(4)->Arg(8)->Arg(12)->Arg(16)->Arg(24);

void BM_Fft2DBatched(benchmark::State& state) {
  // Lane-batched SoA transform vs BM_Fft2D: same 256x256 size, 8 lanes per
  // pass; per-transform time is time / lanes.
  const std::size_t n = 256;
  const std::size_t lanes = 8;
  std::vector<double> re(n * n * lanes), im(n * n * lanes);
  Rng rng(1);
  for (auto& v : re) v = rng.uniform();
  for (auto _ : state) {
    fft_2d_soa(re.data(), im.data(), n, n, false, lanes);
    fft_2d_soa(re.data(), im.data(), n, n, true, lanes);
    benchmark::DoNotOptimize(re.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(lanes));
}
BENCHMARK(BM_Fft2DBatched);

/// Fine-quality SOCS conditions shared by the scalar/batched pair below:
/// kFine pixel (5 nm) and source sampling (3 rings x 12 spokes).
struct FineSocsFixture {
  std::vector<Image2D> masks;
  OpticalSettings opt;
  std::vector<SourcePoint> source;
  ImagingOptions imaging{ImagingMode::kSocs, SocsOptions{}};

  explicit FineSocsFixture(std::size_t count) {
    opt.source_rings = 3;
    opt.source_spokes = 12;
    source = sample_source(opt);
    for (std::size_t i = 0; i < count; ++i) {
      std::vector<Rect> lines;
      const DbUnit w = 80 + 10 * static_cast<DbUnit>(i % 5);
      for (int k = -3; k <= 3; ++k) {
        lines.push_back({k * 250, -600, k * 250 + w, 600});
      }
      masks.push_back(rasterize_mask(lines, {-900, -700, 990, 700}, 5.0));
    }
  }
};

void BM_AerialImageSocsFine(benchmark::State& state) {
  // Scalar SOCS per-window baseline at fine quality (the PR6 path).
  const FineSocsFixture fx(4);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(aerial_image_blurred(
        fx.masks[i % fx.masks.size()], fx.opt, 0.0, 25.0, fx.source,
        fx.imaging));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AerialImageSocsFine);

void BM_AerialImageSocsBatched(benchmark::State& state) {
  // Batched SoA engine at the same fine-quality conditions; Arg is the
  // batch size (window lanes per pass).  Per-window time is time / batch;
  // the label asserts lane 0 of the batch stayed bit-identical to scalar.
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  const FineSocsFixture fx(batch);
  std::vector<const Image2D*> ptrs;
  for (const Image2D& m : fx.masks) ptrs.push_back(&m);
  ScratchArena arena;
  std::vector<Image2D> out(batch);
  aerial_image_blurred_socs_batch(ptrs.data(), batch, fx.opt, 0.0, 25.0,
                                  fx.source, fx.imaging.socs, arena,
                                  out.data());
  const Image2D ref = aerial_image_blurred(fx.masks[0], fx.opt, 0.0, 25.0,
                                           fx.source, fx.imaging);
  const bool identical =
      ref.data() == out[0].data() && ref.nx() == out[0].nx();
  state.SetLabel(identical ? "batched_identical=1" : "batched_identical=0");
  for (auto _ : state) {
    aerial_image_blurred_socs_batch(ptrs.data(), batch, fx.opt, 0.0, 25.0,
                                    fx.source, fx.imaging.socs, arena,
                                    out.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_AerialImageSocsBatched)->Arg(1)->Arg(4)->Arg(16);

void BM_OpcWindow(benchmark::State& state) {
  const LithoSimulator sim;
  const poc::StdCellLibrary& lib = bench::library();
  const CellLayout cell = lib.layout("NAND2_X1", Tech::default_tech());
  std::vector<Polygon> targets;
  for (const Shape& s : cell.shapes) {
    if (s.layer == Layer::kPoly) targets.push_back(s.poly);
  }
  const Rect window = cell.boundary.inflated(600);
  const OpcEngine engine(sim, OpcOptions{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.correct(targets, window));
  }
}
BENCHMARK(BM_OpcWindow)->Unit(benchmark::kMillisecond);

void BM_GateCdExtraction(benchmark::State& state) {
  const LithoSimulator sim;
  const poc::StdCellLibrary& lib = bench::library();
  const CellLayout cell = lib.layout("NAND2_X1", Tech::default_tech());
  std::vector<Rect> mask;
  for (const Shape& s : cell.shapes) {
    if (s.layer == Layer::kPoly) {
      for (const Rect& r : decompose(s.poly)) mask.push_back(r);
    }
  }
  const Rect window = cell.boundary.inflated(600);
  const Image2D latent = sim.latent(mask, window, {}, LithoQuality::kStandard);
  for (auto _ : state) {
    for (const GateInfo& g : cell.gates) {
      benchmark::DoNotOptimize(
          extract_gate_cd(latent, sim.print_threshold(), g.region, true));
    }
  }
}
BENCHMARK(BM_GateCdExtraction);

void BM_ExtractFullDesign(benchmark::State& state) {
  // Full-design post-OPC extraction — the flow's hot loop — across thread
  // counts.  Output is bit-identical for every Arg; only wall-clock moves.
  static PlacedDesign design = bench::make_design("c17");
  FlowOptions fopt;
  fopt.threads = static_cast<std::size_t>(state.range(0));
  PostOpcFlow flow = bench::make_flow(design, 0.12, fopt);
  flow.run_opc(OpcMode::kModelBased);
  for (auto _ : state) {
    benchmark::DoNotOptimize(flow.extract({}));
  }
}
BENCHMARK(BM_ExtractFullDesign)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_StaFullDesign(benchmark::State& state) {
  static PlacedDesign design = bench::make_design("rand200");
  static PostOpcFlow flow = bench::make_flow(design);
  StaEngine engine = flow.make_sta();
  const StaOptions opts = flow.options().sta;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(opts));
  }
}
BENCHMARK(BM_StaFullDesign)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace poc

BENCHMARK_MAIN();
