// Experiment T2 — the headline result: drawn-CD STA vs post-OPC-CD STA.
//
// The paper reports "substantial differences in the silicon-based timing
// simulations, both in terms of a significant reordering of speed path
// criticality and a 36.4 % increase in worst-case slack".  This bench runs
// the full flow (OPC -> extraction -> equivalent-gate back-annotation ->
// STA) on three designs and prints the same comparison: worst arrival,
// worst slack, slack change %, leakage change %, and the rank-correlation
// summary of the top speed paths.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <random>
#include <string>

#include "bench/bench_util.h"
#include "src/sta/paths.h"
#include "src/sta/timing_graph.h"

using namespace poc;

namespace {

/// An inverter chain places as rows of one identical cell: nearly every
/// litho window repeats up to translation — the structure the cache bench
/// exploits, and a uniform workload for the SOCS / containment overhead
/// sections.
PlacedDesign make_inv_chain64() {
  Netlist chain("inv_chain64");
  NetIdx prev = chain.add_net("in");
  chain.mark_primary_input(prev);
  for (int i = 0; i < 64; ++i) {
    const NetIdx out = chain.add_net("c" + std::to_string(i));
    chain.add_gate("inv" + std::to_string(i), "INV_X1", {prev}, out);
    prev = out;
  }
  chain.mark_primary_output(prev);
  return place_and_route(chain, bench::library());
}

}  // namespace

int main() {
  bench::section("T2: drawn-CD vs post-OPC-CD timing");
  Table table({"design", "gates", "clock (ps)", "drawn WNS arr", "drawn WS",
               "annot WS", "WS change %", "leak change %", "spearman",
               "top10 displaced"});

  for (const char* name : {"adder8", "mult4", "rand200"}) {
    PlacedDesign design = bench::make_design(name);
    FlowOptions fopt;
    fopt.sta.max_paths = 64;
    fopt.sta.path_window = 60.0;
    PostOpcFlow flow = bench::make_flow(design, 0.12, fopt);
    flow.run_opc(OpcMode::kModelBased);
    const TimingComparison cmp = flow.compare_timing();

    table.add_row({name, std::to_string(design.netlist.num_gates()),
                   Table::num(flow.options().sta.clock_period, 1),
                   Table::num(cmp.drawn.worst_arrival, 1),
                   Table::num(cmp.drawn.worst_slack, 1),
                   Table::num(cmp.annotated.worst_slack, 1),
                   Table::num(cmp.worst_slack_change_pct, 1),
                   Table::num(cmp.leakage_change_pct, 1),
                   Table::num(cmp.ranks.spearman, 3),
                   std::to_string(cmp.ranks.top10_displaced)});

    std::printf("[%s] worst drawn path:     %s\n", name,
                format_path(design.netlist, cmp.drawn.paths[0]).c_str());
    std::printf("[%s] worst annotated path: %s\n", name,
                format_path(design.netlist, cmp.annotated.paths[0]).c_str());
  }
  std::printf("%s", table.render().c_str());

  bench::section("T2: full-flow threads scaling (adder8)");
  {
    PlacedDesign design = bench::make_design("adder8");
    Table scale({"threads", "flow wall (ms)", "speedup", "annot WS (ps)"});
    double base_ms = 0.0;
    for (std::size_t th : {1u, 2u, 4u}) {
      FlowOptions fopt;
      fopt.sta.max_paths = 64;
      fopt.sta.path_window = 60.0;
      fopt.threads = th;
      // Cache off: this table measures engine scaling.  With the cache on,
      // a serial run replays repeated windows from it while a parallel run
      // computes identical windows concurrently (first insert wins), which
      // understates the engine and muddles both measurements.
      fopt.cache.enabled = false;
      PostOpcFlow flow = bench::make_flow(design, 0.12, fopt);
      double annot_ws = 0.0;
      const double ms = bench::wall_ms([&] {
        flow.run_opc(OpcMode::kModelBased);
        annot_ws = flow.compare_timing().annotated.worst_slack;
      });
      if (th == 1) base_ms = ms;
      // The WS column prints enough digits to show the runs agree exactly.
      scale.add_row({std::to_string(th), Table::num(ms, 1),
                     Table::num(base_ms / ms, 2), Table::num(annot_ws, 9)});
    }
    std::printf("%s", scale.render().c_str());
  }

  bench::section("T2: window cache on/off (repeated-instance design)");
  {
    PlacedDesign design = make_inv_chain64();

    Table cache_table(
        {"cache", "opc+extract wall (ms)", "speedup", "hit rate %", "annot WS"});
    double off_ms = 0.0;
    for (const bool enabled : {false, true}) {
      FlowOptions fopt;
      fopt.sta.max_paths = 16;
      fopt.cache.enabled = enabled;
      PostOpcFlow flow = bench::make_flow(design, 0.12, fopt);
      double annot_ws = 0.0;
      const double ms = bench::wall_ms([&] {
        flow.run_opc(OpcMode::kModelBased);
        const auto ext = flow.extract({});
        const auto ann = flow.annotate(ext);
        annot_ws = flow.run_sta(&ann).worst_slack;
      });
      if (!enabled) off_ms = ms;
      const double hit_rate =
          flow.cache_counters().total().hit_rate() * 100.0;
      cache_table.add_row({enabled ? "on" : "off", Table::num(ms, 1),
                           Table::num(off_ms / ms, 2),
                           Table::num(hit_rate, 1), Table::num(annot_ws, 9)});
      // Greppable proof line consumed by scripts/bench.sh.
      std::printf("CACHE_BENCH name=opc_extract_%s cache=%s wall_ms=%.3f "
                  "hit_rate=%.4f\n",
                  design.netlist.name().c_str(), enabled ? "on" : "off", ms,
                  flow.cache_counters().total().hit_rate());
    }
    std::printf("%s", cache_table.render().c_str());
  }

  bench::section("SOCS fast imaging: e2e opc+extract (inv_chain64, cache off)");
  {
    PlacedDesign design = make_inv_chain64();

    struct Config {
      const char* mode;
      ImagingMode flow_mode;
      OpcImaging opc_draft;
    };
    // abbe: the reference engine everywhere.  socs_draft: OPC iterations
    // draft with SOCS, sign-off iteration and extraction stay Abbe.
    // socs_full: both flow simulators run SOCS end to end.
    const Config configs[] = {
        {"abbe", ImagingMode::kAbbe, OpcImaging::kFollowSimulator},
        {"socs_draft", ImagingMode::kAbbe, OpcImaging::kSocs},
        {"socs_full", ImagingMode::kSocs, OpcImaging::kFollowSimulator},
    };
    Table socs_table({"mode", "opc+extract wall (ms)", "speedup", "annot WS"});
    double abbe_ms = 0.0;
    for (const Config& c : configs) {
      FlowOptions fopt;
      fopt.sta.max_paths = 16;
      fopt.cache.enabled = false;
      fopt.imaging.mode = c.flow_mode;
      fopt.opc.sim_imaging = c.opc_draft;
      PostOpcFlow flow = bench::make_flow(design, 0.12, fopt);
      double annot_ws = 0.0;
      const double ms = bench::wall_ms([&] {
        flow.run_opc(OpcMode::kModelBased);
        const auto ext = flow.extract({});
        const auto ann = flow.annotate(ext);
        annot_ws = flow.run_sta(&ann).worst_slack;
      });
      if (c.flow_mode == ImagingMode::kAbbe &&
          c.opc_draft == OpcImaging::kFollowSimulator) {
        abbe_ms = ms;
      }
      socs_table.add_row({c.mode, Table::num(ms, 1),
                          Table::num(abbe_ms / ms, 2),
                          Table::num(annot_ws, 9)});
      // Greppable proof line consumed by scripts/bench.sh.
      std::printf("SOCS_BENCH name=%s mode=%s wall_ms=%.3f ws=%.9f\n",
                  design.netlist.name().c_str(), c.mode, ms, annot_ws);
    }
    std::printf("%s", socs_table.render().c_str());
  }

  bench::section(
      "Batched SoA imaging: e2e opc+extract (inv_chain64, SOCS, cache off)");
  {
    // The batched engine's e2e dividend: the same full-SOCS flow with the
    // hot loops handing each worker chunk to the SoA engine whole
    // (batch=auto) vs the scalar per-window loop (batch=0).  The annotated
    // WS must agree exactly — batch width is a pure performance knob.
    PlacedDesign design = make_inv_chain64();
    Table batch_table(
        {"batch", "opc+extract wall (ms)", "speedup", "annot WS"});
    double scalar_ms = 0.0;
    for (const bool batched : {false, true}) {
      FlowOptions fopt;
      fopt.sta.max_paths = 16;
      fopt.cache.enabled = false;
      fopt.imaging.mode = ImagingMode::kSocs;
      fopt.imaging.batch_windows = batched ? kBatchWindowsAuto : 0;
      PostOpcFlow flow = bench::make_flow(design, 0.12, fopt);
      double annot_ws = 0.0;
      const double ms = bench::wall_ms([&] {
        flow.run_opc(OpcMode::kModelBased);
        const auto ext = flow.extract({});
        const auto ann = flow.annotate(ext);
        annot_ws = flow.run_sta(&ann).worst_slack;
      });
      if (!batched) scalar_ms = ms;
      batch_table.add_row({batched ? "auto" : "off", Table::num(ms, 1),
                           Table::num(scalar_ms / ms, 2),
                           Table::num(annot_ws, 9)});
      // Greppable proof line consumed by scripts/bench.sh.
      std::printf("BATCH_BENCH name=%s batch=%s wall_ms=%.3f ws=%.9f\n",
                  design.netlist.name().c_str(), batched ? "auto" : "off",
                  ms, annot_ws);
    }
    std::printf("%s", batch_table.render().c_str());
  }

  bench::section("Fault containment: fault-free overhead (inv_chain64, cache off)");
  {
    // Containment wraps every hot-loop window in a retry scope and a few
    // injection probes (one relaxed atomic load each when the harness is
    // off).  This section measures that fault-free tax: wall time with
    // recovery on vs off over the same design must agree within noise, and
    // the annotated WS must agree exactly (containment is not allowed to
    // perturb a clean run).
    PlacedDesign design = make_inv_chain64();
    Table fault_table(
        {"containment", "opc+extract wall (ms)", "overhead %", "annot WS"});
    double off_ms = 0.0;
    for (const bool enabled : {false, true}) {
      FlowOptions fopt;
      fopt.sta.max_paths = 16;
      fopt.cache.enabled = false;
      fopt.recovery.enabled = enabled;
      PostOpcFlow flow = bench::make_flow(design, 0.12, fopt);
      double annot_ws = 0.0;
      const double ms = bench::wall_ms([&] {
        flow.run_opc(OpcMode::kModelBased);
        const auto ext = flow.extract({});
        const auto ann = flow.annotate(ext);
        annot_ws = flow.run_sta(&ann).worst_slack;
      });
      if (!enabled) off_ms = ms;
      fault_table.add_row(
          {enabled ? "on" : "off", Table::num(ms, 1),
           Table::num(enabled ? (ms / off_ms - 1.0) * 100.0 : 0.0, 2),
           Table::num(annot_ws, 9)});
      // Greppable proof line consumed by scripts/bench.sh.
      std::printf("FAULT_BENCH name=%s containment=%s wall_ms=%.3f ws=%.9f\n",
                  design.netlist.name().c_str(), enabled ? "on" : "off", ms,
                  annot_ws);
    }
    std::printf("%s", fault_table.render().c_str());
  }

  bench::section("Run journal: fault-free overhead + replay (inv_chain64, cache off)");
  {
    // The write-ahead journal serializes every completed window and fsyncs
    // in batches.  This section measures that durability tax on the
    // fault-free path — wall time with the journal on vs off over the same
    // design (acceptance: < 2 % overhead) with an exactly-equal annotated
    // WS — plus a third run that resumes from the full journal, where
    // every window replays instead of recomputing.
    PlacedDesign design = make_inv_chain64();
    const std::string journal_dir =
        (std::filesystem::temp_directory_path() / "poc_bench_journal")
            .string();
    std::filesystem::remove_all(journal_dir);
    Table journal_table(
        {"journal", "opc+extract wall (ms)", "overhead %", "annot WS"});
    double off_ms = 0.0;
    for (const char* mode : {"off", "on", "resume"}) {
      FlowOptions fopt;
      fopt.sta.max_paths = 16;
      fopt.cache.enabled = false;
      fopt.journal.enabled = mode != std::string("off");
      fopt.journal.path = journal_dir;
      PostOpcFlow flow = bench::make_flow(design, 0.12, fopt);
      double annot_ws = 0.0;
      const double ms = bench::wall_ms([&] {
        flow.run_opc(OpcMode::kModelBased);
        const auto ext = flow.extract({});
        const auto ann = flow.annotate(ext);
        annot_ws = flow.run_sta(&ann).worst_slack;
      });
      if (mode == std::string("off")) off_ms = ms;
      journal_table.add_row(
          {mode, Table::num(ms, 1),
           Table::num(off_ms > 0.0 ? (ms / off_ms - 1.0) * 100.0 : 0.0, 2),
           Table::num(annot_ws, 9)});
      // Greppable proof line consumed by scripts/bench.sh.
      std::printf("JOURNAL_BENCH name=%s journal=%s wall_ms=%.3f ws=%.9f "
                  "replayed=%zu\n",
                  design.netlist.name().c_str(), mode, ms, annot_ws,
                  flow.journal_stats().replayed_hits);
    }
    std::printf("%s", journal_table.render().c_str());
    std::filesystem::remove_all(journal_dir);
  }

  bench::section("Incremental STA: full re-time vs worklist update");
  {
    // The T4 selective loop re-times after perturbing a handful of gates.
    // Pre-PR cost: a full stateless re-time (StaEngine::run — graph build,
    // full forward+backward propagation, path enumeration).  Post-PR cost:
    // a worklist update of the warm TimingGraph followed by the worst-slack
    // query.  Both sides process the identical perturbation sequence and
    // must agree on the worst slack bit-for-bit at every step.
    Table incr_table({"design", "k gates", "full (us/step)", "incr (us/step)",
                      "speedup", "ws (ps)"});
    for (const char* name : {"inv_chain64", "adder8"}) {
      PlacedDesign design = name == std::string("inv_chain64")
                                ? make_inv_chain64()
                                : bench::make_design(name);
      const Netlist& nl = design.netlist;
      const std::vector<NetParasitics> parasitics =
          Extractor(design.tech).extract_design(design);
      StaOptions sopt;
      sopt.max_paths = 16;

      for (const std::size_t k : {std::size_t{1}, std::size_t{8},
                                  std::size_t{64}}) {
        if (k > nl.num_gates()) continue;
        std::mt19937_64 rng(42);
        std::uniform_int_distribution<std::size_t> gate_pick(
            0, nl.num_gates() - 1);
        std::uniform_real_distribution<double> scale(0.85, 1.25);
        std::vector<DelayAnnotation> current(nl.num_gates());

        StaEngine engine(nl, bench::library());
        engine.set_parasitics(parasitics);
        TimingGraph warm(nl, bench::library(), sopt, /*threads=*/1);
        warm.set_parasitics(parasitics);
        warm.worst_slack();  // settle the warm graph before timing it

        const std::size_t steps = 50;
        double full_ns = 0.0, incr_ns = 0.0;
        double ws_full = 0.0, ws_incr = 0.0;
        for (std::size_t step = 0; step < steps; ++step) {
          std::vector<GateIdx> changed;
          for (std::size_t i = 0; i < k; ++i) {
            const GateIdx g = gate_pick(rng);
            current[g] = {scale(rng), scale(rng), 1.0};
            changed.push_back(g);
          }
          const auto t0 = std::chrono::steady_clock::now();
          for (GateIdx g : changed) warm.set_annotation(g, current[g]);
          warm.update_delays(changed);
          ws_incr = warm.worst_slack();
          const auto t1 = std::chrono::steady_clock::now();
          engine.set_annotations(current);
          ws_full = engine.run(sopt).worst_slack;
          const auto t2 = std::chrono::steady_clock::now();
          incr_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
          full_ns += std::chrono::duration<double, std::nano>(t2 - t1).count();
          if (std::memcmp(&ws_full, &ws_incr, sizeof(double)) != 0) {
            std::fprintf(stderr,
                         "INCR_BENCH MISMATCH %s k=%zu step=%zu: %.17g vs "
                         "%.17g\n",
                         name, k, step, ws_full, ws_incr);
            return 1;
          }
        }
        const double full_us = full_ns / 1e3 / steps;
        const double incr_us = incr_ns / 1e3 / steps;
        incr_table.add_row({name, std::to_string(k), Table::num(full_us, 1),
                            Table::num(incr_us, 1),
                            Table::num(full_us / incr_us, 2),
                            Table::num(ws_incr, 9)});
        // Greppable proof lines consumed by scripts/bench.sh.
        std::printf("INCR_BENCH name=%s k=%zu mode=full wall_us=%.3f "
                    "ws=%.9f\n",
                    name, k, full_us, ws_full);
        std::printf("INCR_BENCH name=%s k=%zu mode=incr wall_us=%.3f "
                    "ws=%.9f\n",
                    name, k, incr_us, ws_incr);
      }
    }
    std::printf("%s", incr_table.render().c_str());
  }

  bench::section("SOCS fast imaging: T2 headline under full SOCS (adder8)");
  {
    PlacedDesign design = bench::make_design("adder8");
    FlowOptions fopt;
    fopt.sta.max_paths = 64;
    fopt.sta.path_window = 60.0;
    fopt.imaging.mode = ImagingMode::kSocs;
    PostOpcFlow flow = bench::make_flow(design, 0.12, fopt);
    flow.run_opc(OpcMode::kModelBased);
    const TimingComparison cmp = flow.compare_timing();
    std::printf("drawn WS %.3f  annot WS %.3f  WS change %.1f%%  "
                "spearman %.3f  top10 displaced %zu\n",
                cmp.drawn.worst_slack, cmp.annotated.worst_slack,
                cmp.worst_slack_change_pct, cmp.ranks.spearman,
                cmp.ranks.top10_displaced);
    // Greppable proof line consumed by scripts/bench.sh.
    std::printf("SOCS_T2 design=adder8 ws_change_pct=%.3f spearman=%.4f "
                "top10_displaced=%zu\n",
                cmp.worst_slack_change_pct, cmp.ranks.spearman,
                cmp.ranks.top10_displaced);
  }

  std::printf(
      "\nShape check (paper): worst-case slack magnitude shifts by tens of\n"
      "percent (paper: 36.4%% on its industrial design) because the slack is\n"
      "a small difference of large arrival numbers; path ranking visibly\n"
      "reshuffles (spearman < 1, top-10 membership changes).\n");
  return 0;
}
