// Experiment F2 — Bossung curves / process window.
//
// Printed CD of a 90 nm line vs focus at three doses, for dense through
// isolated pitches.  This is the standard process-window figure behind the
// paper's variational analysis: CD is parabolic through focus (curvature
// grows toward iso pitch) and near-linear in dose.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cdx/contour.h"

using namespace poc;

int main() {
  const LithoSimulator sim;
  const Rect window{-900, -700, 990, 700};
  const double th = sim.print_threshold();

  const struct {
    const char* name;
    DbUnit pitch;  // 0 = isolated
  } kPitches[] = {{"dense 250", 250}, {"semi 400", 400}, {"loose 800", 800},
                  {"isolated", 0}};
  const double kFocus[] = {-150, -100, -50, 0, 50, 100, 150};
  const double kDose[] = {0.94, 1.00, 1.06};

  for (const auto& p : kPitches) {
    const auto lines_with_bias = [&](DbUnit bias) {
      std::vector<Rect> lines;
      if (p.pitch == 0) {
        lines.push_back({-bias, -600, 90 + bias, 600});
      } else {
        for (int k = -3; k <= 3; ++k) {
          lines.push_back(
              {k * p.pitch - bias, -600, k * p.pitch + 90 + bias, 600});
        }
      }
      return lines;
    };
    // Pre-bias the mask (per pitch) so the line prints on target at the
    // nominal condition — Bossung curves are plotted for corrected
    // features, as in any process-window report.
    DbUnit lo = 0, hi = 40;
    while (hi - lo > 1) {
      const DbUnit mid = (lo + hi) / 2;
      const Image2D latent = sim.latent(lines_with_bias(mid), window, {},
                                        LithoQuality::kStandard);
      const auto cd = printed_width(latent, th, {45.0, 0.0}, true, 300.0);
      (cd.value_or(0.0) < 90.0 ? lo : hi) = mid;
    }
    const std::vector<Rect> lines = lines_with_bias(hi);
    bench::section(std::string("F2: Bossung, pitch ") + p.name +
                   " (drawn 90 nm, mask pre-bias +" + std::to_string(hi) +
                   " nm/side)");
    Table table({"focus (nm)", "CD @ dose 0.94", "CD @ dose 1.00",
                 "CD @ dose 1.06"});
    double cd_best = 0.0, cd_edge = 0.0;
    for (double focus : kFocus) {
      std::vector<std::string> row{Table::num(focus, 0)};
      for (double dose : kDose) {
        const Image2D latent = sim.latent(lines, window, {focus, dose},
                                          LithoQuality::kStandard);
        const auto cd = printed_width(latent, th, {45.0, 0.0}, true, 300.0);
        row.push_back(Table::num(cd.value_or(0.0), 2));
        if (dose == 1.00 && focus == 0.0) cd_best = cd.value_or(0.0);
        if (dose == 1.00 && focus == 150.0) cd_edge = cd.value_or(0.0);
      }
      table.add_row(std::move(row));
    }
    std::printf("%s", table.render().c_str());
    std::printf("through-focus CD swing at nominal dose: %.2f nm\n",
                cd_edge - cd_best);
  }
  std::printf(
      "\nShape check: CD(focus) is symmetric and parabolic; dose shifts the\n"
      "curves vertically (higher dose = thinner line); iso lines show the\n"
      "largest through-focus swing (smallest process window).\n");
  return 0;
}
