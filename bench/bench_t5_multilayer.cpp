// Experiment T5 — multi-layer extraction (the paper's proposed extension).
//
// Gate poly is not the only litho-distorted layer: routed metal prints off
// its drawn width too, shifting wire RC.  This bench measures printed M1/M2
// linewidths over the routed design at nominal and defocused conditions,
// folds the width ratios into parasitic extraction, and reports the timing
// movement from wires alone and combined with the poly back-annotation.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/core/metal_flow.h"
#include "src/sta/paths.h"

using namespace poc;

int main() {
  PlacedDesign design = bench::make_design("adder8");
  PostOpcFlow flow = bench::make_flow(design, 0.12);
  flow.run_opc(OpcMode::kModelBased);
  const LithoSimulator sim;
  const StaOptions sta_opts = flow.options().sta;

  const auto sta_with_metal = [&](const MetalCdScale& scale,
                                  const std::vector<DelayAnnotation>* ann) {
    StaEngine engine(design.netlist, bench::library());
    const Extractor ex(design.tech, scale);
    engine.set_parasitics(ex.extract_design(design));
    if (ann != nullptr) engine.set_annotations(*ann);
    return engine.run(sta_opts);
  };

  bench::section("T5: printed metal linewidths (no metal OPC)");
  Table cd_table({"condition", "M1 printed (nm / drawn 120)",
                  "M2 printed (nm / drawn 140)", "M1 ratio", "M2 ratio"});
  MetalCdScale nominal_scale, defocus_scale;
  for (const auto& [name, exposure] :
       std::vector<std::pair<std::string, Exposure>>{
           {"nominal", {0.0, 1.0}}, {"defocus 120nm", {120.0, 1.0}}}) {
    const MetalCdReport rep = extract_metal_cds(design, sim, exposure, 10);
    cd_table.add_row({name, Table::num(rep.m1_mean_printed_nm, 1),
                      Table::num(rep.m2_mean_printed_nm, 1),
                      Table::num(rep.scale.m1_width_ratio, 3),
                      Table::num(rep.scale.m2_width_ratio, 3)});
    if (name == "nominal") nominal_scale = rep.scale;
    else defocus_scale = rep.scale;
  }
  std::printf("%s", cd_table.render().c_str());

  bench::section("T5: timing impact of metal CD extraction");
  const StaReport drawn = sta_with_metal(MetalCdScale{}, nullptr);
  const StaReport metal_nom = sta_with_metal(nominal_scale, nullptr);
  const StaReport metal_def = sta_with_metal(defocus_scale, nullptr);
  const auto poly_ann = flow.annotate(flow.extract({}));
  const StaReport both = sta_with_metal(nominal_scale, &poly_ann);
  const StaReport poly_only = sta_with_metal(MetalCdScale{}, &poly_ann);

  Table t({"analysis", "worst arrival (ps)", "worst slack (ps)",
           "WS shift vs drawn (ps)"});
  const auto row = [&](const char* name, const StaReport& r) {
    t.add_row({name, Table::num(r.worst_arrival, 2),
               Table::num(r.worst_slack, 2),
               Table::num(r.worst_slack - drawn.worst_slack, 2)});
  };
  row("drawn everything", drawn);
  row("metal CDs @ nominal", metal_nom);
  row("metal CDs @ defocus", metal_def);
  row("poly CDs only", poly_only);
  row("poly + metal CDs (full multi-layer)", both);
  std::printf("%s", t.render().c_str());
  std::printf(
      "\nShape check (paper extension): metal linewidth extraction adds a\n"
      "second, independent timing shift on top of the poly CDs; the full\n"
      "multi-layer analysis differs from poly-only, motivating extraction\n"
      "on every patterned layer of the critical paths.\n");
  return 0;
}
