// Experiment F1 — distribution of extracted gate CDs, pre- vs post-OPC.
//
// Reproduces the paper's CD-population figure: without OPC the printed gate
// CDs sit far from drawn with a wide context-driven spread; model-based OPC
// recentres the population at the drawn target and tightens it, leaving the
// residual distribution the timing flow consumes.
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"

using namespace poc;

namespace {

std::vector<double> gate_cds(PostOpcFlow& flow) {
  std::vector<double> cds;
  for (const GateExtraction& ge : flow.extract({})) {
    for (const DeviceCd& dev : ge.devices) {
      cds.push_back(dev.profile.mean_cd());
    }
  }
  return cds;
}

}  // namespace

int main() {
  PlacedDesign design = bench::make_design("adder4");
  PostOpcFlow flow = bench::make_flow(design);

  bench::section("F1: gate CD distribution without OPC (drawn = 90 nm)");
  flow.run_opc(OpcMode::kNone);
  const auto raw = gate_cds(flow);
  std::printf("%s", Histogram::build(raw, 55.0, 105.0, 25).render().c_str());
  RunningStats raw_stats;
  for (double v : raw) raw_stats.add(v);
  std::printf("n=%zu mean=%.2f sigma=%.2f\n", raw_stats.count(),
              raw_stats.mean(), raw_stats.stddev());

  bench::section("F1: gate CD distribution after rule-based OPC");
  flow.run_opc(OpcMode::kRuleBased);
  const auto ruled = gate_cds(flow);
  std::printf("%s", Histogram::build(ruled, 55.0, 105.0, 25).render().c_str());
  RunningStats rule_stats;
  for (double v : ruled) rule_stats.add(v);
  std::printf("n=%zu mean=%.2f sigma=%.2f\n", rule_stats.count(),
              rule_stats.mean(), rule_stats.stddev());

  bench::section("F1: gate CD distribution after model-based OPC");
  flow.run_opc(OpcMode::kModelBased);
  const auto corrected = gate_cds(flow);
  std::printf("%s",
              Histogram::build(corrected, 55.0, 105.0, 25).render().c_str());
  RunningStats opc_stats;
  for (double v : corrected) opc_stats.add(v);
  std::printf("n=%zu mean=%.2f sigma=%.2f\n", opc_stats.count(),
              opc_stats.mean(), opc_stats.stddev());

  std::printf(
      "\nShape check (paper): no-OPC population is far off target; OPC\n"
      "recentres near 90 nm; model-based beats rule-based on both centring\n"
      "(|mean-90|: %.2f vs %.2f) and spread (%.2f vs %.2f).\n",
      std::abs(opc_stats.mean() - 90.0), std::abs(rule_stats.mean() - 90.0),
      opc_stats.stddev(), rule_stats.stddev());
  return 0;
}
