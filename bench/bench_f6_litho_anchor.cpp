// Experiment F6 — lithography simulator anchors (enables T1..T5) and the
// Abbe-vs-Gaussian model ablation (DESIGN.md ablation 1).
//
// Aerial-image cross-sections, iso-dense bias, line-end pullback with and
// without correction, and a comparison against a single-Gaussian-kernel
// "litho" model showing what partial coherence buys.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cdx/contour.h"
#include "src/litho/imaging.h"
#include "src/litho/mask.h"
#include "src/litho/resist.h"
#include "src/opc/opc_engine.h"

using namespace poc;

namespace {

/// The ablation strawman: mask convolved with one Gaussian (no coherence).
Image2D gaussian_model(const std::vector<Rect>& features, const Rect& window,
                       double sigma_nm) {
  Image2D img = rasterize_mask(features, window, 8.0);
  gaussian_blur(img, sigma_nm);
  return img;
}

double cd_of(const Image2D& img, double th, double x, double reach = 300.0) {
  return printed_width(img, th, {x, 0.0}, true, reach).value_or(0.0);
}

}  // namespace

int main() {
  const LithoSimulator sim;
  const double th = sim.print_threshold();
  const Rect window{-900, -700, 990, 700};

  bench::section("F6: aerial-image cross-section, 250 nm pitch 90 nm lines");
  {
    std::vector<Rect> lines;
    for (int k = -3; k <= 3; ++k) lines.push_back({k * 250, -600, k * 250 + 90, 600});
    const Image2D aerial = sim.aerial(lines, window, 0.0);
    std::printf("x(nm)  I(x)\n");
    for (double x = -250.0; x <= 350.0; x += 25.0) {
      const double v = aerial.sample(x, 0.0);
      std::printf("%6.0f %6.3f %s\n", x, v,
                  std::string(static_cast<std::size_t>(v * 40), '*').c_str());
    }
    std::printf("image contrast (min %.3f / max %.3f)\n", aerial.min_value(),
                aerial.max_value());
  }

  bench::section("F6: iso-dense bias through pitch (drawn 90 nm)");
  {
    Table table({"pitch (nm)", "printed CD (nm)", "bias vs dense (nm)"});
    double dense_cd = 0.0;
    for (DbUnit pitch : {250, 300, 400, 550, 800, 0}) {
      std::vector<Rect> lines;
      if (pitch == 0) {
        lines.push_back({0, -600, 90, 600});
      } else {
        for (int k = -3; k <= 3; ++k) {
          lines.push_back({k * pitch, -600, k * pitch + 90, 600});
        }
      }
      const Image2D latent =
          sim.latent(lines, window, {}, LithoQuality::kFine);
      const double cd = cd_of(latent, th, 45.0);
      if (pitch == 250) dense_cd = cd;
      table.add_row({pitch == 0 ? "iso" : std::to_string(pitch),
                     Table::num(cd, 2), Table::num(cd - dense_cd, 2)});
    }
    std::printf("%s", table.render().c_str());
  }

  bench::section("F6: line-end pullback, uncorrected vs OPC");
  {
    const Polygon line = Polygon::from_rect({0, -800, 90, 0});
    const Rect le_window{-700, -1400, 790, 600};
    const auto end_of = [&](const std::vector<Rect>& mask) {
      const Image2D latent =
          sim.latent(mask, le_window, {}, LithoQuality::kStandard);
      const auto hit =
          first_crossing(latent, th, {45.0, -400.0}, {45.0, 400.0}, 4.0);
      return hit ? -400.0 + *hit : -400.0;
    };
    const double raw_end = end_of(decompose(line));
    OpcEngine engine(sim, OpcOptions{});
    const OpcResult r = engine.correct({line}, le_window);
    const double opc_end = end_of(r.mask_rects());
    std::printf("drawn line end:      y = 0\n");
    std::printf("printed, no OPC:     y = %.2f  (pullback %.2f nm)\n",
                raw_end, -raw_end);
    std::printf("printed, model OPC:  y = %.2f  (pullback %.2f nm)\n",
                opc_end, -opc_end);
  }

  bench::section("F6 ablation: Abbe partial coherence vs single-Gaussian");
  {
    Table table({"pitch", "Abbe CD (nm)", "Gaussian CD (nm)"});
    // Calibrate the Gaussian model to match the dense CD, then watch it
    // miss everywhere else.
    std::vector<Rect> dense;
    for (int k = -3; k <= 3; ++k) dense.push_back({k * 250, -600, k * 250 + 90, 600});
    double best_sigma = 30.0, best_err = 1e9;
    const Image2D abbe_dense = sim.latent(dense, window, {}, LithoQuality::kFine);
    const double abbe_dense_cd = cd_of(abbe_dense, th, 45.0);
    for (double sigma = 20.0; sigma <= 60.0; sigma += 2.0) {
      const double cd = cd_of(gaussian_model(dense, window, sigma), th, 45.0);
      if (std::abs(cd - abbe_dense_cd) < best_err) {
        best_err = std::abs(cd - abbe_dense_cd);
        best_sigma = sigma;
      }
    }
    std::printf("Gaussian kernel calibrated on dense pitch: sigma = %.0f nm\n",
                best_sigma);
    for (DbUnit pitch : {250, 400, 800, 0}) {
      std::vector<Rect> lines;
      if (pitch == 0) {
        lines.push_back({0, -600, 90, 600});
      } else {
        for (int k = -3; k <= 3; ++k) {
          lines.push_back({k * pitch, -600, k * pitch + 90, 600});
        }
      }
      const double abbe_cd =
          cd_of(sim.latent(lines, window, {}, LithoQuality::kFine), th, 45.0);
      const double gauss_cd =
          cd_of(gaussian_model(lines, window, best_sigma), th, 45.0);
      table.add_row({pitch == 0 ? "iso" : std::to_string(pitch),
                     Table::num(abbe_cd, 2), Table::num(gauss_cd, 2)});
    }
    std::printf("%s", table.render().c_str());
    std::printf(
        "\nShape check: the Gaussian model, once calibrated at one pitch,\n"
        "cannot reproduce the through-pitch bias curve (no interference),\n"
        "and it has no focus axis at all — the systematic context effects\n"
        "the paper extracts require the partially coherent imaging model.\n");
  }
  return 0;
}
