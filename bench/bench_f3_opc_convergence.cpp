// Experiment F3 — OPC convergence and correction-style comparison.
//
// Per-iteration max/RMS edge-placement error of the model-based engine on a
// representative cell window, the effect of the feedback damping factor
// (DESIGN.md ablation 4), and the final residual of no-OPC / rule-based /
// model-based / model+SRAF corrections on an isolated line.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/geom/polygon_ops.h"
#include "src/opc/opc_engine.h"
#include "src/opc/orc.h"
#include "src/opc/rule_opc.h"

using namespace poc;

int main() {
  const LithoSimulator sim;

  // A NAND3-like window: three fingers with landing pads plus an isolated
  // neighbour line.
  std::vector<Polygon> targets;
  const StdCellLibrary& lib = bench::library();
  const CellLayout cell = lib.layout("NAND3_X1", Tech::default_tech());
  for (const Shape& s : cell.shapes) {
    if (s.layer == Layer::kPoly) targets.push_back(s.poly);
  }
  targets.push_back(Polygon::from_rect({-500, 200, -410, 2300}));
  const Rect window = cell.boundary.inflated(650);

  bench::section("F3: model-based OPC convergence (NAND3 window)");
  {
    Table table({"iteration", "max |EPE| body (nm)", "rms EPE body (nm)"});
    OpcEngine engine(sim, OpcOptions{});
    const OpcResult r = engine.correct(targets, window);
    for (std::size_t i = 0; i < r.max_epe_history.size(); ++i) {
      table.add_row({std::to_string(i + 1),
                     Table::num(r.max_epe_history[i], 2),
                     Table::num(r.rms_epe_history[i], 2)});
    }
    std::printf("%s", table.render().c_str());
    std::printf("fragments: %zu (corner fragments excluded from body EPE)\n",
                r.fragments.size());
  }

  bench::section("F3: damping-factor ablation (final body EPE)");
  {
    Table table({"damping", "iterations", "max |EPE| (nm)", "rms (nm)"});
    for (double damping : {0.3, 0.5, 0.6, 0.8, 1.0}) {
      OpcOptions opts;
      opts.damping = damping;
      OpcEngine engine(sim, opts);
      const OpcResult r = engine.correct(targets, window);
      table.add_row({Table::num(damping, 1), std::to_string(r.iterations),
                     Table::num(r.max_abs_epe_body_nm, 2),
                     Table::num(r.rms_epe_body_nm, 2)});
    }
    std::printf("%s", table.render().c_str());
  }

  bench::section("F3: correction styles on an isolated line (ORC at nominal)");
  {
    const Polygon line = Polygon::from_rect({0, -500, 90, 500});
    const Rect iso_window{-800, -1150, 890, 1150};
    OpcEngine engine(sim, OpcOptions{});
    Table table({"style", "max |EPE| (nm)", "rms (nm)", "violations"});

    const auto report_style = [&](const char* name,
                                  const std::vector<Rect>& mask) {
      const OrcReport orc =
          run_orc(sim, engine, {line}, mask, iso_window, {});
      table.add_row({name, Table::num(orc.max_abs_epe_nm, 2),
                     Table::num(orc.rms_epe_nm, 2),
                     std::to_string(orc.violations.size())});
    };

    report_style("no OPC", decompose(line));
    {
      std::vector<Fragment> frags = fragment_polygons({line});
      const auto ruled = rule_based_opc({line}, frags, RuleOpcTable{});
      std::vector<Rect> mask;
      for (const Polygon& p : ruled) {
        for (const Rect& r : decompose(p)) mask.push_back(r);
      }
      report_style("rule-based", mask);
    }
    {
      const OpcResult r = engine.correct({line}, iso_window);
      report_style("model-based", r.mask_rects());
    }
    {
      OpcOptions opts;
      opts.insert_srafs = true;
      OpcEngine with_sraf(sim, opts);
      const OpcResult r = with_sraf.correct({line}, iso_window);
      report_style("model + SRAF", r.mask_rects());
      std::printf("SRAFs inserted: %zu\n", r.srafs.size());
    }
    std::printf("%s", table.render().c_str());
  }
  std::printf(
      "\nShape check: EPE drops monotonically and converges within the\n"
      "iteration budget; over-damped (1.0) feedback oscillates or overshoots\n"
      "relative to ~0.6; model-based < rule-based < no OPC on residual.\n");
  return 0;
}
