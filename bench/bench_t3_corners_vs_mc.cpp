// Experiment T3 — corner-based worst-case guardbands vs realistic
// process-window distributions.
//
// The paper argues that "worst-case scenario" corner modelling yields
// overly pessimistic results, and that realistic systematic + random CD
// distributions should replace it.  This bench fits per-gate CD response
// surfaces over the (focus, dose) window — using the paper's selective
// extraction on tagged critical gates to keep litho cost bounded — then
// compares 4-corner analysis against a 300-sample Monte Carlo with per-gate
// ACLV noise.
#include <algorithm>
#include <cstdint>
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/core/mc_timing.h"
#include "src/var/variation.h"

using namespace poc;

int main() {
  PlacedDesign design = bench::make_design("adder8");
  PostOpcFlow flow = bench::make_flow(design, 0.15);
  flow.run_opc(OpcMode::kModelBased);

  // Paper step 1: tag critical gates; only they get process-window litho.
  const std::vector<GateIdx> critical = flow.tag_critical_gates(40.0);
  std::printf("tagged %zu / %zu gates as timing-critical\n", critical.size(),
              design.netlist.num_gates());
  const auto responses = flow.fit_responses(critical);

  bench::section("T3: corner analysis (extraction at litho corners)");
  Table corner_table({"corner", "worst slack (ps)", "leakage (uA)"});
  double corner_wns = 1e9;
  double four_corner_wns = 1e9;  // the naive two-axis (+/-f, +/-d) stack
  double corner_leak = 0.0;
  for (const ProcessCorner& corner : standard_corners()) {
    const auto ext = flow.extract(corner.exposure, critical);
    const auto ann = flow.annotate(ext);
    const StaReport r = flow.run_sta(&ann);
    corner_table.add_row({corner.name, Table::num(r.worst_slack, 2),
                          Table::num(r.total_leakage_ua, 3)});
    corner_wns = std::min(corner_wns, r.worst_slack);
    if (corner.exposure.focus_nm != 0.0 && corner.exposure.dose != 1.0) {
      four_corner_wns = std::min(four_corner_wns, r.worst_slack);
    }
    corner_leak = std::max(corner_leak, r.total_leakage_ua);
  }
  std::printf("%s", corner_table.render().c_str());
  std::printf(
      "note: the classic 4-corner (+/-focus x +/-dose) stack reports %.2f ps\n"
      "while the true worst condition is a single-axis dose corner at %.2f ps\n"
      "— through-focus CD is non-monotonic, so 2-axis stacks can be unsafe,\n"
      "another argument for distribution-based analysis.\n",
      four_corner_wns, corner_wns);

  bench::section("T3: Monte Carlo over the joint (focus, dose, ACLV) model");
  const VariationModel model;
  const std::size_t kSamples = 300;
  const std::uint64_t kSeed = 20260705;
  // The sampling loop lives in run_mc_timing on the deterministic parallel
  // engine: per-sample counter-derived RNG streams, stats folded in sample
  // order, so every thread count reproduces the same distribution bit for
  // bit.  The scaling table doubles as the determinism demo.
  McTimingResult mc;
  Table mc_scale({"threads", "wall (ms)", "speedup", "mean WS (ps)"});
  double mc1_ms = 0.0;
  for (std::size_t th : {1u, 2u, 4u}) {
    FlowOptions fopt = flow.options();
    fopt.threads = th;
    const PostOpcFlow mc_flow(design, bench::library(), LithoSimulator{},
                              fopt);
    McTimingResult r;
    const double ms = bench::wall_ms(
        [&] { r = run_mc_timing(mc_flow, responses, model, kSamples, kSeed); });
    if (th == 1) mc1_ms = ms;
    mc_scale.add_row({std::to_string(th), Table::num(ms, 1),
                      Table::num(mc1_ms / ms, 2),
                      Table::num(r.slack_stats.mean(), 9)});
    mc = std::move(r);
  }
  std::printf("%s", mc_scale.render().c_str());

  const RunningStats& slack_stats = mc.slack_stats;
  const RunningStats& leak_stats = mc.leak_stats;
  const std::vector<double> slacks = mc.slacks();
  Table mc_table({"statistic", "worst slack (ps)"});
  mc_table.add_row({"mean", Table::num(slack_stats.mean(), 2)});
  mc_table.add_row({"sigma", Table::num(slack_stats.stddev(), 2)});
  mc_table.add_row({"median (p50)", Table::num(percentile(slacks, 0.50), 2)});
  mc_table.add_row({"p10", Table::num(percentile(slacks, 0.10), 2)});
  mc_table.add_row({"p1", Table::num(percentile(slacks, 0.01), 2)});
  mc_table.add_row({"p0.1", Table::num(percentile(slacks, 0.001), 2)});
  std::printf("%s", mc_table.render().c_str());
  std::printf("leakage: mean %.3f uA, sigma %.3f uA, max observed %.3f uA\n",
              leak_stats.mean(), leak_stats.stddev(), leak_stats.max());

  bench::section("T3: guardband pessimism");
  std::printf(
      "corner-based worst slack:   %8.2f ps   (design must be signed off here)\n"
      "MC median die:              %8.2f ps\n"
      "MC 1%%-ile die:              %8.2f ps\n"
      "MC 0.1%%-ile die:            %8.2f ps\n"
      "=> the corner sits at the extreme tail of the realistic distribution:\n"
      "   the median die has %.1fx the corner's slack, i.e. %.2f ps of\n"
      "   performance is guardbanded away from essentially every part.\n"
      "corner max leakage: %.3f uA vs MC mean %.3f uA (x%.2f guardband)\n",
      corner_wns, percentile(slacks, 0.50), percentile(slacks, 0.01),
      percentile(slacks, 0.001), percentile(slacks, 0.50) / corner_wns,
      percentile(slacks, 0.50) - corner_wns, corner_leak, leak_stats.mean(),
      corner_leak / leak_stats.mean());
  std::printf(
      "\nShape check (paper): worst-case corner modelling is overly\n"
      "pessimistic against the realistic systematic+random CD distribution;\n"
      "the flow's per-gate extraction enables the distribution-based\n"
      "analysis the paper advocates.\n");
  return 0;
}
