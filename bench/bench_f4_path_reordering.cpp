// Experiment F4 — speed-path criticality reordering.
//
// The rank-vs-rank picture behind T2: for the top-N speed paths of the
// drawn-CD analysis, where does each land in the post-OPC ranking?  The
// paper's flow exists precisely because this mapping is not the identity:
// silicon-calibrated CDs promote and demote paths, so optimizing the drawn
// list tunes the wrong paths.
#include <algorithm>
#include <cstdio>
#include <unordered_map>

#include "bench/bench_util.h"
#include "src/sta/paths.h"

using namespace poc;

int main() {
  PlacedDesign design = bench::make_design("rand200");
  FlowOptions fopt;
  fopt.sta.max_paths = 50;
  fopt.sta.path_window = 80.0;
  PostOpcFlow flow = bench::make_flow(design, 0.12, fopt);
  flow.run_opc(OpcMode::kModelBased);

  const StaReport drawn = flow.run_sta(nullptr);
  // Silicon annotations: systematic residual plus measured ACLV, same
  // model compare_timing uses.
  Rng rng(flow.options().seed);
  const auto ann = flow.annotate_with_aclv(
      flow.extract({}), flow.options().silicon.aclv_sigma_nm, rng);
  const StaReport annotated = flow.run_sta(&ann);

  const Netlist& nl = design.netlist;
  std::unordered_map<std::string, std::size_t> annotated_rank;
  for (std::size_t i = 0; i < annotated.paths.size(); ++i) {
    annotated_rank.emplace(annotated.paths[i].signature(nl), i);
  }

  bench::section("F4: drawn rank -> post-OPC rank, top 25 speed paths");
  Table table({"drawn rank", "post-OPC rank", "shift", "drawn arr (ps)",
               "post-OPC arr (ps)", "endpoint"});
  for (std::size_t i = 0; i < std::min<std::size_t>(25, drawn.paths.size());
       ++i) {
    const TimingPath& p = drawn.paths[i];
    const auto it = annotated_rank.find(p.signature(nl));
    std::string new_rank = "-";
    std::string shift = "-";
    std::string new_arr = "-";
    if (it != annotated_rank.end()) {
      new_rank = std::to_string(it->second + 1);
      shift = std::to_string(static_cast<long long>(it->second) -
                             static_cast<long long>(i));
      new_arr = Table::num(annotated.paths[it->second].arrival, 1);
    }
    table.add_row({std::to_string(i + 1), new_rank, shift,
                   Table::num(p.arrival, 1), new_arr,
                   nl.net(p.endpoint).name + (p.endpoint_rising ? "^" : "v")});
  }
  std::printf("%s", table.render().c_str());

  const PathRankComparison cmp =
      compare_path_ranks(nl, drawn.paths, annotated.paths);
  std::printf(
      "\nmatched paths: %zu  spearman: %.3f  kendall: %.3f\n"
      "top-10 displaced: %zu  rank-1 changed: %zu  max rank shift: %.0f\n",
      cmp.matched, cmp.spearman, cmp.kendall, cmp.top10_displaced,
      cmp.rank1_changed, cmp.max_rank_shift);
  std::printf(
      "\nShape check (paper): rank correlation clearly below 1 with multiple\n"
      "top-10 displacements — the \"significant reordering of speed path\n"
      "criticality\" the abstract reports.\n");
  return 0;
}
