// Experiment T4 — design-intent-driven (selective) OPC.
//
// The paper's extension: "by passing design intent to process/OPC
// engineers, selective OPC can be applied to improve CD variation control
// based on gates' functions such as critical gates".  This bench compares
// three OPC policies on cost (fragments, litho iterations — the mask/CPU
// cost drivers) and on the timing the flow reports afterwards.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/sta/paths.h"

using namespace poc;

namespace {

struct PolicyResult {
  std::string name;
  OpcStats stats;
  Ps worst_slack;
  double mean_abs_resid_crit;  // mean |CD residual| over critical gates
};

}  // namespace

int main() {
  PlacedDesign design = bench::make_design("adder8");
  PostOpcFlow flow = bench::make_flow(design, 0.12);
  const std::vector<GateIdx> critical = flow.tag_critical_gates(30.0);
  std::printf("critical gates: %zu / %zu\n", critical.size(),
              design.netlist.num_gates());

  std::vector<PolicyResult> results;
  const auto run_policy = [&](const std::string& name, auto&& run_opc) {
    run_opc();
    PolicyResult pr;
    pr.name = name;
    pr.stats = flow.opc_stats();
    const auto ext = flow.extract({});
    const auto ann = flow.annotate(ext);
    pr.worst_slack = flow.run_sta(&ann).worst_slack;
    double resid = 0.0;
    std::size_t n = 0;
    for (GateIdx g : critical) {
      for (const DeviceCd& dev : ext[g].devices) {
        resid += std::abs(dev.profile.residual_nm());
        ++n;
      }
    }
    pr.mean_abs_resid_crit = n ? resid / static_cast<double>(n) : 0.0;
    results.push_back(pr);
  };

  run_policy("rule-based everywhere",
             [&] { flow.run_opc(OpcMode::kRuleBased); });
  run_policy("selective (model on critical)",
             [&] { flow.run_opc_selective(critical); });
  run_policy("model-based everywhere",
             [&] { flow.run_opc(OpcMode::kModelBased); });

  bench::section("T4: OPC policy cost vs timing fidelity");
  Table table({"policy", "model windows", "litho iterations",
               "crit |resid| (nm)", "worst slack (ps)"});
  for (const PolicyResult& pr : results) {
    table.add_row({pr.name,
                   std::to_string(pr.stats.model_based_windows) + "/" +
                       std::to_string(pr.stats.windows),
                   std::to_string(pr.stats.iterations),
                   Table::num(pr.mean_abs_resid_crit, 2),
                   Table::num(pr.worst_slack, 2)});
  }
  std::printf("%s", table.render().c_str());

  const double full_cost = static_cast<double>(results[2].stats.iterations);
  const double sel_cost = static_cast<double>(results[1].stats.iterations);
  std::printf(
      "\nselective OPC spends %.0f%% of full model-based litho iterations\n"
      "while keeping critical-gate CD residual at %.2f nm (vs %.2f full,\n"
      "%.2f rule-based) and worst slack within %.2f ps of full treatment.\n",
      full_cost > 0 ? 100.0 * sel_cost / full_cost : 0.0,
      results[1].mean_abs_resid_crit, results[2].mean_abs_resid_crit,
      results[0].mean_abs_resid_crit,
      std::abs(results[1].worst_slack - results[2].worst_slack));
  std::printf(
      "\nShape check (paper): design-intent targeting recovers nearly all of\n"
      "the timing fidelity of full model-based OPC at a fraction of the\n"
      "correction cost.\n");
  return 0;
}
