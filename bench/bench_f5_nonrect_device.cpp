// Experiment F5 — non-rectangular transistor modelling (DESIGN.md
// ablation 2, after Poppe et al., cited by the paper's flow).
//
// A litho-printed gate is not a rectangle: its CD varies along the channel
// width.  This bench extracts real slice profiles from simulated contours
// through focus and compares three device abstractions: naive mean-CD,
// drive-equivalent length, and leakage-equivalent length — showing why the
// flow carries TWO equivalent lengths per device.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/cdx/cd_extract.h"
#include "src/device/nonrect.h"
#include "src/opc/opc_engine.h"
#include "src/geom/polygon_ops.h"
#include "src/var/variation.h"

using namespace poc;

int main() {
  const LithoSimulator sim;
  const StdCellLibrary& lib = bench::library();
  const CharParams& cp = lib.char_params();

  // Post-OPC mask of an inverter window: the realistic input to the device
  // model (mild residual non-rectangularity at nominal, growing rounding
  // into the channel through focus).
  const CellLayout cell = lib.layout("INV_X1", Tech::default_tech());
  std::vector<Polygon> targets;
  for (const Shape& s : cell.shapes) {
    if (s.layer == Layer::kPoly) targets.push_back(s.poly);
  }
  const Rect window = cell.boundary.inflated(650);
  const OpcEngine opc(sim, OpcOptions{});
  const std::vector<Rect> mask = opc.correct(targets, window).mask_rects();

  bench::section("F5: slice CD profile of the NMOS gate through focus");
  CdExtractOptions cdx;
  cdx.num_slices = 9;
  cdx.edge_trim_fraction = 0.05;  // deliberately include near-edge slices
  Table prof_table({"focus (nm)", "slice CDs along width (nm)", "min", "max"});
  for (double focus : {0.0, 100.0, 150.0}) {
    const Image2D latent =
        sim.latent(mask, window, {focus, 1.0}, LithoQuality::kFine);
    const GateInfo& gi = cell.gates[0];  // MN_A_0
    const GateCdProfile prof = extract_gate_cd(
        latent, sim.print_threshold(), gi.region, true, cdx);
    std::string slices;
    for (double cd : prof.slice_cd_nm) slices += Table::num(cd, 1) + " ";
    prof_table.add_row({Table::num(focus, 0), slices,
                        Table::num(prof.min_cd(), 2),
                        Table::num(prof.max_cd(), 2)});
  }
  std::printf("%s", prof_table.render().c_str());

  bench::section("F5: equivalent-gate abstractions vs naive mean CD");
  Table eq_table({"focus (nm)", "mean CD", "Leff drive", "Leff leak",
                  "Ion err % (mean-CD model)", "Ioff err % (mean-CD model)"});
  for (double focus : {0.0, 100.0, 150.0}) {
    const Image2D latent =
        sim.latent(mask, window, {focus, 1.0}, LithoQuality::kFine);
    const GateInfo& gi = cell.gates[0];
    const GateCdProfile prof = extract_gate_cd(
        latent, sim.print_threshold(), gi.region, true, cdx);
    if (prof.mean_cd() <= 0.0) {
      eq_table.add_row({Table::num(focus, 0), "did not print", "-", "-", "-",
                        "-"});
      continue;
    }
    const EquivalentGate eq =
        equivalent_gate(prof, static_cast<double>(gi.drawn_w), cp.nmos);
    // The naive model treats the gate as a rectangle of the mean CD.
    const double ion_naive =
        cp.nmos.ion_per_um(eq.l_mean_nm) * eq.width_um;
    const double ioff_naive =
        cp.nmos.ioff_per_um(eq.l_mean_nm) * eq.width_um;
    eq_table.add_row(
        {Table::num(focus, 0), Table::num(eq.l_mean_nm, 2),
         Table::num(eq.l_eff_drive_nm, 2), Table::num(eq.l_eff_leak_nm, 2),
         Table::num((ion_naive / eq.ion_ua - 1.0) * 100.0, 2),
         Table::num((ioff_naive / eq.ioff_ua - 1.0) * 100.0, 2)});
  }
  std::printf("%s", eq_table.render().c_str());

  bench::section("F5: synthetic sweep — CD spread vs equivalent-length split");
  Table sweep({"slice spread (nm, +/-)", "Leff drive", "Leff leak",
               "leak underestimate of mean-CD model %"});
  for (double spread : {0.0, 2.0, 4.0, 6.0, 8.0, 10.0}) {
    GateCdProfile prof;
    prof.drawn_cd_nm = 90.0;
    prof.slice_width_nm = 120.0;
    for (int s = -2; s <= 2; ++s) {
      prof.slice_cd_nm.push_back(90.0 + spread * static_cast<double>(s) / 2.0);
    }
    const EquivalentGate eq = equivalent_gate(prof, 600.0, cp.nmos);
    const double ioff_naive = cp.nmos.ioff_per_um(eq.l_mean_nm) * eq.width_um;
    sweep.add_row({Table::num(spread, 1), Table::num(eq.l_eff_drive_nm, 2),
                   Table::num(eq.l_eff_leak_nm, 2),
                   Table::num((1.0 - ioff_naive / eq.ioff_ua) * 100.0, 2)});
  }
  std::printf("%s", sweep.render().c_str());
  std::printf(
      "\nShape check: the two equivalent lengths split apart as the CD\n"
      "profile spreads; the naive mean-CD model is nearly exact for drive\n"
      "but underestimates leakage increasingly (exponential weighting of\n"
      "short slices) — the reason the flow back-annotates them separately.\n");
  return 0;
}
