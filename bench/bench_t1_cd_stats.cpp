// Experiment T1 — residual post-OPC CD error statistics per gate.
//
// Reproduces the paper's extraction table: for every transistor gate of a
// placed-and-routed design, the post-OPC printed CD is measured and compared
// against the drawn 90 nm, at nominal exposure and at the four litho
// corners.  The paper's point: even after OPC the extracted CDs carry a
// systematic, context-dependent residual worth propagating into timing.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/var/variation.h"

using namespace poc;

int main() {
  bench::section("T1: post-OPC gate CD residual statistics (drawn = 90 nm)");
  Table table({"design", "condition", "devices", "mean CD", "sigma",
               "min", "max", "mean |resid|", "worst resid"});

  for (const char* name : {"c17", "adder8"}) {
    PlacedDesign design = bench::make_design(name);
    PostOpcFlow flow = bench::make_flow(design);
    flow.run_opc(OpcMode::kModelBased);
    for (const ProcessCorner& corner : standard_corners()) {
      RunningStats cd, resid_abs;
      double worst_resid = 0.0;
      for (const GateExtraction& ge : flow.extract(corner.exposure)) {
        for (const DeviceCd& dev : ge.devices) {
          cd.add(dev.profile.mean_cd());
          const double r = dev.profile.residual_nm();
          resid_abs.add(std::abs(r));
          if (std::abs(r) > std::abs(worst_resid)) worst_resid = r;
        }
      }
      table.add_row({name, corner.name, std::to_string(cd.count()),
                     Table::num(cd.mean(), 2), Table::num(cd.stddev(), 2),
                     Table::num(cd.min(), 2), Table::num(cd.max(), 2),
                     Table::num(resid_abs.mean(), 2),
                     Table::num(worst_resid, 2)});
    }
    const OpcStats& st = flow.opc_stats();
    std::printf("[%s] OPC: %zu windows, %zu fragments, worst body EPE %.2f "
                "nm, mean rms %.2f nm\n",
                name, st.windows, st.fragments, st.max_abs_epe_nm,
                st.windows ? st.rms_epe_sum / static_cast<double>(st.windows)
                           : 0.0);
  }
  std::printf("%s", table.render().c_str());

  bench::section("T1: extraction hot-path threads scaling (adder8)");
  {
    PlacedDesign design = bench::make_design("adder8");
    Table scale({"threads", "OPC wall (ms)", "extract wall (ms)", "OPC x",
                 "extract x"});
    double opc1 = 0.0, ext1 = 0.0;
    for (std::size_t th : {1u, 2u, 4u}) {
      FlowOptions fopt;
      fopt.threads = th;
      PostOpcFlow flow = bench::make_flow(design, 0.12, fopt);
      const double opc_ms =
          bench::wall_ms([&] { flow.run_opc(OpcMode::kModelBased); });
      const double ext_ms = bench::wall_ms([&] { flow.extract({}); });
      if (th == 1) {
        opc1 = opc_ms;
        ext1 = ext_ms;
      }
      scale.add_row({std::to_string(th), Table::num(opc_ms, 1),
                     Table::num(ext_ms, 1), Table::num(opc1 / opc_ms, 2),
                     Table::num(ext1 / ext_ms, 2)});
    }
    std::printf("%s", scale.render().c_str());
    std::printf(
        "(results are bit-identical across thread counts by construction;\n"
        " speedups track physical core count — see DESIGN.md determinism\n"
        " contract.)\n");
  }

  std::printf(
      "\nShape check (paper): nominal residuals are a few nm with visible\n"
      "context spread (sigma > 0); corner conditions widen both the mean\n"
      "shift (dose) and the spread (defocus).\n");
  return 0;
}
