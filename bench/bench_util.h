// Shared helpers for the experiment-reproduction benches: cached cell
// library, flow construction with a slack-margin clock, and consistent
// report formatting.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <map>
#include <filesystem>
#include <string>
#include <string_view>

#include "src/common/log.h"
#include "src/common/table.h"
#include "src/core/flow.h"
#include "src/netlist/generators.h"

namespace poc::bench {

inline const StdCellLibrary& library() {
  static const StdCellLibrary lib = [] {
    set_log_level(LogLevel::kWarn);
    const std::string path =
        (std::filesystem::temp_directory_path() / "poc_cells_bench.lib")
            .string();
    return StdCellLibrary::load_or_characterize(path);
  }();
  return lib;
}

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Wall-clock milliseconds of one fn() call — the threads-scaling tables
/// measure end-to-end latency, which is what parallelism buys.
inline double wall_ms(const std::function<void()>& fn) {
  const auto start = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

/// POC_CACHE=0 disables the window cache for every bench flow, so
/// scripts/bench.sh can A/B cache-on vs cache-off without a rebuild.
inline bool cache_env_enabled() {
  const char* v = std::getenv("POC_CACHE");
  return v == nullptr || std::string_view(v) != "0";
}

/// Builds a flow whose clock gives the drawn-CD baseline the requested
/// relative slack margin (the paper's result is quoted on a design with a
/// modest positive margin, which the slack percentage amplifies).
inline PostOpcFlow make_flow(const PlacedDesign& design, double margin = 0.12,
                             FlowOptions opts = {}) {
  opts.cache.enabled = opts.cache.enabled && cache_env_enabled();
  PostOpcFlow probe(design, library(), LithoSimulator{}, opts);
  const StaReport baseline = probe.run_sta(nullptr);
  opts.sta.clock_period = baseline.worst_arrival * (1.0 + margin);
  return PostOpcFlow(design, library(), LithoSimulator{}, opts);
}

inline PlacedDesign make_design(const std::string& benchmark) {
  const Netlist& nl = [&]() -> const Netlist& {
    static std::map<std::string, Netlist> cache;
    auto it = cache.find(benchmark);
    if (it == cache.end()) {
      it = cache.emplace(benchmark, make_benchmark(benchmark)).first;
    }
    return it->second;
  }();
  return place_and_route(nl, library());
}

}  // namespace poc::bench
