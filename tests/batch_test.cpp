// Tests for the batched SoA window-imaging engine (src/litho/batch.h):
// bit-identity of every lane against the scalar SOCS path across batch
// sizes, kernel branches (parity-packed and generic), blur settings and
// window origins; arena reuse across geometry changes; the Abbe fallback;
// and the zero-allocation guarantee of a warm batched inner loop (the
// allocation probe in src/common/alloc_probe.h counts operator-new calls).
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/alloc_probe.h"
#include "src/litho/batch.h"
#include "src/litho/imaging.h"
#include "src/litho/mask.h"
#include "src/litho/optics.h"

namespace poc {
namespace {

std::vector<Rect> line_array(DbUnit width, DbUnit pitch, int n,
                             DbUnit x0 = -700) {
  std::vector<Rect> lines;
  for (int i = 0; i < n; ++i) {
    const DbUnit x = x0 + static_cast<DbUnit>(i) * pitch;
    lines.push_back({x, -600, x + width, 600});
  }
  return lines;
}

/// Distinct same-window masks: varied line arrays rasterized over one
/// window at one pixel size, so the whole set shares a grid shape.
std::vector<Image2D> make_masks(std::size_t count, const Rect& window,
                                double pixel_nm) {
  std::vector<Image2D> masks;
  for (std::size_t i = 0; i < count; ++i) {
    const DbUnit w = 80 + 10 * static_cast<DbUnit>(i % 5);
    const DbUnit pitch = 220 + 40 * static_cast<DbUnit>(i % 3);
    masks.push_back(rasterize_mask(
        line_array(w, pitch, 5 + static_cast<int>(i % 3)), window, pixel_nm));
  }
  return masks;
}

bool bit_equal(const Image2D& a, const Image2D& b) {
  if (a.nx() != b.nx() || a.ny() != b.ny() || a.pixel() != b.pixel() ||
      a.origin_x() != b.origin_x() || a.origin_y() != b.origin_y()) {
    return false;
  }
  return std::memcmp(a.data().data(), b.data().data(),
                     a.data().size() * sizeof(double)) == 0;
}

/// Runs the batched engine over `masks` in sub-batches of `batch` and
/// checks every output against the scalar mode-selecting overload.
void expect_batches_match_scalar(const std::vector<Image2D>& masks,
                                 const OpticalSettings& opt, double defocus_nm,
                                 double blur_sigma_nm,
                                 const ImagingOptions& imaging,
                                 std::size_t batch) {
  const std::vector<SourcePoint> source = sample_source(opt);
  ScratchArena arena;
  for (std::size_t base = 0; base < masks.size(); base += batch) {
    const std::size_t count = std::min(batch, masks.size() - base);
    std::vector<const Image2D*> ptrs(count);
    for (std::size_t w = 0; w < count; ++w) ptrs[w] = &masks[base + w];
    const std::vector<Image2D> got = aerial_image_blurred_batch(
        ptrs.data(), count, opt, defocus_nm, blur_sigma_nm, source, imaging,
        arena);
    ASSERT_EQ(got.size(), count);
    for (std::size_t w = 0; w < count; ++w) {
      const Image2D ref = aerial_image_blurred(
          masks[base + w], opt, defocus_nm, blur_sigma_nm, source, imaging);
      EXPECT_TRUE(bit_equal(got[w], ref))
          << "batch=" << batch << " window=" << base + w;
    }
  }
}

TEST(BatchSocs, ParityPackedBitIdenticalAcrossBatchSizes) {
  // Nominal focus, default optics: parity-pure kernels, the packed branch.
  const Rect window{-900, -700, 990, 700};
  const std::vector<Image2D> masks = make_masks(8, window, 8.0);
  const OpticalSettings opt;
  const ImagingOptions imaging{ImagingMode::kSocs, SocsOptions{}, 0};
  for (const std::size_t batch : {1u, 2u, 3u, 8u}) {
    expect_batches_match_scalar(masks, opt, 0.0, 22.0, imaging, batch);
  }
}

TEST(BatchSocs, GenericKernelsBitIdentical) {
  // Aberrations + defocus break parity purity: the generic complex-kernel
  // branch must match the scalar accumulate_coherent loop bit for bit.
  const Rect window{-900, -700, 990, 700};
  const std::vector<Image2D> masks = make_masks(5, window, 8.0);
  OpticalSettings opt;
  opt.z9_spherical_waves = 0.035;
  opt.z7_coma_x_waves = 0.025;
  const ImagingOptions imaging{ImagingMode::kSocs, SocsOptions{}, 0};
  expect_batches_match_scalar(masks, opt, 80.0, 22.0, imaging, 5);
}

TEST(BatchSocs, NoBlurBitIdentical) {
  const Rect window{-900, -700, 990, 700};
  const std::vector<Image2D> masks = make_masks(4, window, 8.0);
  const OpticalSettings opt;
  const ImagingOptions imaging{ImagingMode::kSocs, SocsOptions{}, 0};
  expect_batches_match_scalar(masks, opt, 0.0, 0.0, imaging, 4);
}

TEST(BatchSocs, MixedOriginsKeepTheirWindows) {
  // Same shape, different window origins: each output must carry its own
  // mask's origin and match the scalar image of that mask.
  const double pixel = 8.0;
  const OpticalSettings opt;
  const std::vector<SourcePoint> source = sample_source(opt);
  const ImagingOptions imaging{ImagingMode::kSocs, SocsOptions{}, 0};
  std::vector<Image2D> masks;
  for (const DbUnit shift : {0, 1280, -2560}) {
    const Rect window{-900 + shift, -700, 990 + shift, 700};
    masks.push_back(
        rasterize_mask(line_array(90, 250, 5, -700 + shift), window, pixel));
  }
  ASSERT_EQ(masks[0].nx(), masks[1].nx());
  ASSERT_EQ(masks[0].nx(), masks[2].nx());
  expect_batches_match_scalar(masks, opt, 0.0, 22.0, imaging, masks.size());
}

TEST(BatchSocs, ArenaSurvivesGeometryChanges) {
  // One arena imaging two different window shapes alternately: the
  // persistent upsample spectra must reset on each geometry change and the
  // results must stay bit-identical to scalar throughout.
  const OpticalSettings opt;
  const std::vector<SourcePoint> source = sample_source(opt);
  const ImagingOptions imaging{ImagingMode::kSocs, SocsOptions{}, 0};
  const std::vector<Image2D> small = make_masks(3, {-500, -400, 500, 400}, 8.0);
  const std::vector<Image2D> large = make_masks(3, {-900, -700, 990, 700}, 8.0);
  ScratchArena arena;
  for (int round = 0; round < 2; ++round) {
    for (const std::vector<Image2D>* set : {&small, &large}) {
      std::vector<const Image2D*> ptrs;
      for (const Image2D& m : *set) ptrs.push_back(&m);
      const std::vector<Image2D> got = aerial_image_blurred_batch(
          ptrs.data(), ptrs.size(), opt, 0.0, 22.0, source, imaging, arena);
      for (std::size_t w = 0; w < got.size(); ++w) {
        const Image2D ref = aerial_image_blurred((*set)[w], opt, 0.0, 22.0,
                                                 source, imaging);
        EXPECT_TRUE(bit_equal(got[w], ref)) << "round=" << round;
      }
    }
  }
}

TEST(BatchSocs, AbbeFallbackMatchesScalar) {
  const Rect window{-900, -700, 990, 700};
  const std::vector<Image2D> masks = make_masks(3, window, 8.0);
  const OpticalSettings opt;
  const std::vector<SourcePoint> source = sample_source(opt);
  const ImagingOptions imaging{ImagingMode::kAbbe, SocsOptions{}, 0};
  std::vector<const Image2D*> ptrs;
  for (const Image2D& m : masks) ptrs.push_back(&m);
  ScratchArena arena;
  const std::vector<Image2D> got = aerial_image_blurred_batch(
      ptrs.data(), ptrs.size(), opt, 0.0, 22.0, source, imaging, arena);
  for (std::size_t w = 0; w < masks.size(); ++w) {
    const Image2D ref =
        aerial_image_blurred(masks[w], opt, 0.0, 22.0, source, imaging);
    EXPECT_TRUE(bit_equal(got[w], ref));
  }
}

TEST(BatchSocs, WarmInnerLoopPerformsZeroHeapAllocations) {
  // The whole point of the ScratchArena: once it (and the process-wide
  // twiddle/kernel memos) are warm and the outputs are right-sized, a
  // batched compute performs no heap allocation at all.  The allocation
  // probe counts every operator-new on this thread.  Runs under every
  // sanitizer config (check.sh runs batch_test in the ASan leg, where the
  // probe's malloc forwarding is fully intercepted).
  const Rect window{-900, -700, 990, 700};
  const std::vector<Image2D> masks = make_masks(4, window, 8.0);
  const OpticalSettings opt;
  const std::vector<SourcePoint> source = sample_source(opt);
  std::vector<const Image2D*> ptrs;
  for (const Image2D& m : masks) ptrs.push_back(&m);
  ScratchArena arena;
  std::vector<Image2D> out(masks.size());
  // Warm-up: grows the arena, builds twiddles and kernels, sizes outputs.
  aerial_image_blurred_socs_batch(ptrs.data(), ptrs.size(), opt, 0.0, 22.0,
                                  source, SocsOptions{}, arena, out.data());
  const std::vector<Image2D> ref = out;
  {
    alloc_probe::Scope probe;
    aerial_image_blurred_socs_batch(ptrs.data(), ptrs.size(), opt, 0.0, 22.0,
                                    source, SocsOptions{}, arena, out.data());
    EXPECT_EQ(probe.count(), 0u);
  }
  for (std::size_t w = 0; w < out.size(); ++w) {
    EXPECT_TRUE(bit_equal(out[w], ref[w]));
  }
}

TEST(AllocProbe, CountsThisThreadsAllocations) {
  alloc_probe::Scope probe;
  const std::size_t before = probe.count();
  std::vector<double>* v = new std::vector<double>(256);
  EXPECT_GT(probe.count(), before);
  delete v;
}

}  // namespace
}  // namespace poc
