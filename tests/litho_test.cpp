// Tests for the lithography simulator: mask rasterization exactness,
// imaging normalization/symmetry, partial-coherence behaviours the flow
// depends on (iso-dense bias, defocus contrast loss, dose sensitivity) and
// the resist model.
#include <cmath>

#include <gtest/gtest.h>

#include "src/cdx/contour.h"
#include "src/common/check.h"
#include "src/common/fft.h"
#include "src/litho/imaging.h"
#include "src/litho/mask.h"
#include "src/litho/optics.h"
#include "src/litho/resist.h"
#include "src/litho/simulator.h"

namespace poc {
namespace {

double measure_cd(const Image2D& latent, double threshold, double x_center,
                  double y = 0.0) {
  const auto w = printed_width(latent, threshold, {x_center, y}, true, 400.0);
  return w.value_or(0.0);
}

std::vector<Rect> line_array(DbUnit width, DbUnit pitch, int count,
                             DbUnit half_len = 500) {
  std::vector<Rect> rects;
  for (int k = -(count / 2); k <= count / 2; ++k) {
    const DbUnit x = k * pitch;
    rects.push_back({x, -half_len, x + width, half_len});
  }
  return rects;
}

TEST(Mask, CoverageConservesArea) {
  const Rect window{0, 0, 400, 400};
  const std::vector<Rect> features{{100, 100, 190, 300}};
  const Image2D m = rasterize_mask(features, window, 8.0);
  double blocked = 0.0;
  for (double v : m.data()) blocked += (1.0 - v);
  blocked *= m.pixel() * m.pixel();
  EXPECT_NEAR(blocked, 90.0 * 200.0, 1.0);  // sub-pixel exact coverage
}

TEST(Mask, GridIsPow2AndCoversWindow) {
  const Image2D m = rasterize_mask({}, {0, 0, 1000, 3000}, 10.0);
  EXPECT_TRUE(is_pow2(m.nx()));
  EXPECT_TRUE(is_pow2(m.ny()));
  EXPECT_LE(m.origin_x(), 0.0);
  EXPECT_LE(m.origin_y(), 0.0);
  EXPECT_GE(m.origin_x() + m.pixel() * (m.nx() - 1), 1000.0);
  EXPECT_GE(m.origin_y() + m.pixel() * (m.ny() - 1), 3000.0);
}

TEST(Mask, TransmissionBounds) {
  const Image2D m =
      rasterize_mask(line_array(90, 250, 5), {-600, -600, 600, 600}, 8.0);
  EXPECT_GE(m.min_value(), 0.0);
  EXPECT_LE(m.max_value(), 1.0);
  // Centre of a chrome line fully blocked.
  EXPECT_NEAR(m.sample(45.0, 0.0), 0.0, 1e-9);
}

TEST(Image, BilinearSampling) {
  Image2D img(4, 4, 10.0, 0.0, 0.0);
  img.at(1, 1) = 1.0;
  EXPECT_DOUBLE_EQ(img.sample(10.0, 10.0), 1.0);
  EXPECT_DOUBLE_EQ(img.sample(15.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(img.sample(15.0, 15.0), 0.25);
  EXPECT_TRUE(img.in_bounds(0.0, 0.0));
  EXPECT_FALSE(img.in_bounds(31.0, 0.0));
}

TEST(Image, CrossSection) {
  Image2D img(8, 8, 5.0, 0.0, 0.0);
  for (std::size_t i = 0; i < 8; ++i) img.at(i, 2) = static_cast<double>(i);
  const auto xs = img.cross_section_x(10.0, 0.0, 35.0, 8);
  EXPECT_DOUBLE_EQ(xs.front(), 0.0);
  EXPECT_DOUBLE_EQ(xs.back(), 7.0);
}

TEST(Source, CoherentPointWhenSigmaZero) {
  OpticalSettings opt;
  opt.sigma_inner = 0.0;
  opt.sigma_outer = 0.0;
  const auto pts = sample_source(opt);
  ASSERT_EQ(pts.size(), 1u);
  EXPECT_DOUBLE_EQ(pts[0].weight, 1.0);
}

TEST(Source, AnnularWeightsNormalized) {
  OpticalSettings opt;
  const auto pts = sample_source(opt);
  EXPECT_EQ(pts.size(), opt.source_rings * opt.source_spokes);
  double total = 0.0;
  for (const auto& p : pts) {
    total += p.weight;
    const double r = std::hypot(p.sx, p.sy);
    EXPECT_GE(r, opt.sigma_inner - 1e-9);
    EXPECT_LE(r, opt.sigma_outer + 1e-9);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Pupil, CutoffAndDefocusPhase) {
  OpticalSettings opt;
  const double fc = opt.cutoff_freq();
  EXPECT_EQ(pupil_value(opt, fc * 1.01, 0.0, 0.0), Cplx(0.0, 0.0));
  EXPECT_EQ(pupil_value(opt, 0.0, 0.0, 0.0), Cplx(1.0, 0.0));
  // In focus, everything inside the pupil passes unchanged.
  EXPECT_EQ(pupil_value(opt, fc * 0.5, 0.0, 0.0), Cplx(1.0, 0.0));
  // Defocus: unit magnitude, nonzero phase off-axis, zero phase at DC.
  const Cplx p = pupil_value(opt, fc * 0.8, 0.0, 150.0);
  EXPECT_NEAR(std::abs(p), 1.0, 1e-12);
  EXPECT_GT(std::abs(std::arg(p)), 0.01);
  EXPECT_NEAR(std::arg(pupil_value(opt, 0.0, 0.0, 150.0)), 0.0, 1e-12);
}

TEST(Pupil, AberrationsUnitMagnitudeAndZeroAtCalibratedPoints) {
  OpticalSettings opt;
  opt.z9_spherical_waves = 0.05;
  const double fc = opt.cutoff_freq();
  // Pure phase: magnitude 1 inside the pupil.
  for (double frac : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(std::abs(pupil_value(opt, fc * frac, 0.0, 0.0)), 1.0, 1e-12);
  }
  // Z9 = 6r^4-6r^2+1 vanishes at rho = sqrt((3±sqrt(3))/6).
  const double rho_zero = std::sqrt((3.0 - std::sqrt(3.0)) / 6.0);
  const Cplx at_zero = pupil_value(opt, fc * rho_zero, 0.0, 0.0);
  EXPECT_NEAR(std::arg(at_zero), 0.0, 1e-9);
  // At pupil centre Z9 = +1: phase = 2 pi * 0.05.
  EXPECT_NEAR(std::arg(pupil_value(opt, 0.0, 0.0, 0.0)),
              2.0 * 3.14159265358979 * 0.05, 1e-6);
}

TEST(Pupil, ComaIsOddInFx) {
  OpticalSettings opt;
  opt.z7_coma_x_waves = 0.03;
  const double fc = opt.cutoff_freq();
  const Cplx plus = pupil_value(opt, fc * 0.7, 0.0, 0.0);
  const Cplx minus = pupil_value(opt, -fc * 0.7, 0.0, 0.0);
  EXPECT_NEAR(std::arg(plus), -std::arg(minus), 1e-12);
  // And even in fy (cos(theta) term only).
  EXPECT_NEAR(std::arg(pupil_value(opt, 0.0, fc * 0.7, 0.0)), 0.0, 1e-12);
}

TEST(Imaging, SphericalAberrationBreaksFocusSymmetry) {
  // Z9 couples to defocus: +/-100 nm images differ with aberration, match
  // without.
  std::vector<Rect> lines;
  for (int k = -2; k <= 2; ++k) lines.push_back({k * 250, -400, k * 250 + 90, 400});
  const Rect window{-650, -550, 740, 550};
  const Image2D mask = rasterize_mask(lines, window, 8.0);
  OpticalSettings clean;
  OpticalSettings aber = clean;
  aber.z9_spherical_waves = 0.05;
  const auto centre_dip = [&](const OpticalSettings& o, double z) {
    return aerial_image(mask, o, z).sample(45.0, 0.0);
  };
  EXPECT_NEAR(centre_dip(clean, 100.0), centre_dip(clean, -100.0), 1e-9);
  EXPECT_GT(std::abs(centre_dip(aber, 100.0) - centre_dip(aber, -100.0)),
            0.003);
}

TEST(Imaging, ComaShiftsPatternPlacement) {
  // An isolated line images off-centre under x-coma.
  const std::vector<Rect> line{{0, -400, 90, 400}};
  const Rect window{-650, -550, 740, 550};
  const Image2D mask = rasterize_mask(line, window, 8.0);
  OpticalSettings aber;
  aber.z7_coma_x_waves = 0.05;
  const Image2D img = aerial_image(mask, aber, 0.0);
  // Find the printed line centre via the two threshold crossings.
  const auto left = first_crossing(img, 0.4, {45.0, 0.0}, {-200.0, 0.0}, 2.0);
  const auto right = first_crossing(img, 0.4, {45.0, 0.0}, {300.0, 0.0}, 2.0);
  ASSERT_TRUE(left && right);
  const double centre = 45.0 + (*right - *left) / 2.0;
  EXPECT_GT(std::abs(centre - 45.0), 0.5);  // placement error, nm
}

TEST(Imaging, OpenFrameIntensityIsOne) {
  const Image2D mask = rasterize_mask({}, {0, 0, 500, 500}, 10.0);
  const Image2D aerial = aerial_image(mask, OpticalSettings{}, 0.0);
  EXPECT_NEAR(aerial.min_value(), 1.0, 1e-6);
  EXPECT_NEAR(aerial.max_value(), 1.0, 1e-6);
}

TEST(Imaging, DarkUnderWideChrome) {
  // A very wide feature: centre is fully dark.
  const Image2D mask =
      rasterize_mask({{-400, -400, 400, 400}}, {-600, -600, 600, 600}, 10.0);
  const Image2D aerial = aerial_image(mask, OpticalSettings{}, 0.0);
  EXPECT_LT(aerial.sample(0.0, 0.0), 0.02);
}

TEST(Imaging, SymmetricMaskGivesSymmetricImage) {
  const std::vector<Rect> lines = line_array(90, 250, 3);
  const Rect window{-500, -500, 590, 500};
  const Image2D mask = rasterize_mask(lines, window, 8.0);
  const Image2D aerial = aerial_image(mask, OpticalSettings{}, 0.0);
  // The line array is symmetric about x = 45.
  for (double dx : {50.0, 100.0, 180.0}) {
    EXPECT_NEAR(aerial.sample(45.0 - dx, 0.0), aerial.sample(45.0 + dx, 0.0),
                0.01)
        << dx;
  }
}

/// Textbook Abbe reference: per source point, filter the full-grid mask
/// spectrum by the shifted pupil and inverse-transform at full resolution.
/// The production path (spectral cropping + Fourier upsampling) must agree
/// to numerical precision.
Image2D reference_abbe(const Image2D& mask, const OpticalSettings& opt,
                       double defocus_nm) {
  const std::size_t nx = mask.nx();
  const std::size_t ny = mask.ny();
  std::vector<Cplx> spectrum(nx * ny);
  for (std::size_t i = 0; i < nx * ny; ++i) spectrum[i] = mask.data()[i];
  fft_2d(spectrum, nx, ny, false);
  const double dfx = 1.0 / (static_cast<double>(nx) * mask.pixel());
  const double dfy = 1.0 / (static_cast<double>(ny) * mask.pixel());
  const double tilt = opt.na / opt.wavelength_nm;
  Image2D out(nx, ny, mask.pixel(), mask.origin_x(), mask.origin_y());
  std::vector<Cplx> field(nx * ny);
  for (const SourcePoint& sp : sample_source(opt)) {
    for (std::size_t iy = 0; iy < ny; ++iy) {
      const double fy = static_cast<double>(fft_freq_index(iy, ny)) * dfy;
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const double fx = static_cast<double>(fft_freq_index(ix, nx)) * dfx;
        field[iy * nx + ix] =
            spectrum[iy * nx + ix] *
            pupil_value(opt, fx + sp.sx * tilt, fy + sp.sy * tilt, defocus_nm);
      }
    }
    fft_2d(field, nx, ny, true);
    for (std::size_t i = 0; i < nx * ny; ++i) {
      out.data()[i] += sp.weight * std::norm(field[i]);
    }
  }
  return out;
}

TEST(Imaging, OptimizedPathMatchesTextbookReference) {
  std::vector<Rect> features{{-200, -300, -110, 300},
                             {40, -300, 130, 300},
                             {-50, -80, 40, 60}};
  const Image2D mask = rasterize_mask(features, {-500, -450, 520, 480}, 8.0);
  OpticalSettings opt;
  opt.source_rings = 2;
  opt.source_spokes = 6;
  for (double defocus : {0.0, 120.0}) {
    const Image2D fast = aerial_image(mask, opt, defocus);
    const Image2D ref = reference_abbe(mask, opt, defocus);
    double worst = 0.0;
    for (std::size_t i = 0; i < fast.data().size(); ++i) {
      worst = std::max(worst, std::abs(fast.data()[i] - ref.data()[i]));
    }
    EXPECT_LT(worst, 1e-9) << "defocus " << defocus;
  }
}

TEST(Imaging, BlurredVariantMatchesSeparateBlur) {
  const std::vector<Rect> lines = line_array(90, 300, 3);
  const Rect window{-500, -500, 590, 500};
  const Image2D mask = rasterize_mask(lines, window, 8.0);
  OpticalSettings opt;
  Image2D a = aerial_image(mask, opt, 50.0);
  gaussian_blur(a, 25.0);
  const Image2D b = aerial_image_blurred(mask, opt, 50.0, 25.0);
  double worst = 0.0;
  for (std::size_t i = 0; i < a.data().size(); ++i) {
    worst = std::max(worst, std::abs(a.data()[i] - b.data()[i]));
  }
  EXPECT_LT(worst, 1e-6);
}

TEST(Resist, BlurPreservesMeanReducesPeak) {
  Image2D img(64, 64, 8.0, 0.0, 0.0);
  img.at(32, 32) = 1.0;
  const double mean_before = 1.0 / (64.0 * 64.0);
  gaussian_blur(img, 30.0);
  double sum = 0.0;
  for (double v : img.data()) sum += v;
  EXPECT_NEAR(sum / (64.0 * 64.0), mean_before, 1e-12);
  EXPECT_LT(img.at(32, 32), 0.1);
  EXPECT_GT(img.at(32, 32), img.at(32, 40));  // still peaked at centre
}

TEST(Resist, ZeroSigmaIsNoop) {
  Image2D img(16, 16, 8.0, 0.0, 0.0);
  img.at(3, 3) = 2.0;
  gaussian_blur(img, 0.0);
  EXPECT_DOUBLE_EQ(img.at(3, 3), 2.0);
}

TEST(Resist, LatentScalesWithDose) {
  Image2D img(16, 16, 8.0, 0.0, 0.0);
  for (double& v : img.data()) v = 0.5;
  const ResistModel resist;
  const Image2D latent = resist.latent_image(img, 1.1);
  EXPECT_NEAR(latent.at(8, 8), 0.55, 1e-9);
}

// ---------- behavioural anchors the flow relies on ----------

class LithoBehaviour : public ::testing::Test {
 protected:
  LithoSimulator sim_;
  const Rect window_{-700, -600, 790, 600};
  double th() const { return sim_.print_threshold(); }
};

TEST_F(LithoBehaviour, IsoDenseBiasExists) {
  const Image2D dense =
      sim_.latent(line_array(90, 250, 7), window_, {}, LithoQuality::kStandard);
  const Image2D iso =
      sim_.latent({{0, -500, 90, 500}}, window_, {}, LithoQuality::kStandard);
  const double cd_dense = measure_cd(dense, th(), 45.0);
  const double cd_iso = measure_cd(iso, th(), 45.0);
  EXPECT_GT(cd_dense, 0.0);
  EXPECT_GT(cd_iso, 0.0);
  // Annular illumination prints dense lines wider than isolated ones here;
  // the existence of a multi-nm bias is what OPC must correct.
  EXPECT_GT(std::abs(cd_dense - cd_iso), 3.0);
}

TEST_F(LithoBehaviour, DefocusShrinksProcessWindow) {
  const auto lines = line_array(90, 250, 7);
  const double cd0 = measure_cd(
      sim_.latent(lines, window_, {0.0, 1.0}, LithoQuality::kStandard), th(),
      45.0);
  const double cd_def = measure_cd(
      sim_.latent(lines, window_, {150.0, 1.0}, LithoQuality::kStandard), th(),
      45.0);
  EXPECT_GT(cd0, 0.0);
  // Through focus the printed CD moves by several nm (Bossung curvature).
  EXPECT_GT(std::abs(cd_def - cd0), 1.0);
}

TEST_F(LithoBehaviour, FocusSymmetry) {
  const auto lines = line_array(90, 250, 5);
  const double cd_plus = measure_cd(
      sim_.latent(lines, window_, {100.0, 1.0}, LithoQuality::kStandard), th(),
      45.0);
  const double cd_minus = measure_cd(
      sim_.latent(lines, window_, {-100.0, 1.0}, LithoQuality::kStandard),
      th(), 45.0);
  // A thin-mask scalar model is symmetric in defocus.
  EXPECT_NEAR(cd_plus, cd_minus, 0.5);
}

TEST_F(LithoBehaviour, HigherDoseThinsLines) {
  const auto lines = line_array(90, 250, 5);
  const double cd_lo = measure_cd(
      sim_.latent(lines, window_, {0.0, 0.95}, LithoQuality::kStandard), th(),
      45.0);
  const double cd_hi = measure_cd(
      sim_.latent(lines, window_, {0.0, 1.05}, LithoQuality::kStandard), th(),
      45.0);
  EXPECT_GT(cd_lo, cd_hi + 2.0);
}

TEST_F(LithoBehaviour, LineEndPullback) {
  // A vertical line ending at y = 0; the printed end retreats from drawn.
  const std::vector<Rect> line{{0, -800, 90, 0}};
  const Rect window{-600, -1200, 690, 500};
  const Image2D latent =
      sim_.latent(line, window, {}, LithoQuality::kStandard);
  // Find the printed line end along the line's axis.
  const auto end = first_crossing(latent, th(), {45.0, -400.0}, {45.0, 300.0},
                                  4.0);
  ASSERT_TRUE(end.has_value());
  const double printed_end_y = -400.0 + *end;
  EXPECT_LT(printed_end_y, -8.0);  // pulled back by several nm
}

TEST_F(LithoBehaviour, QualityLevelsAgreeOnCd) {
  const auto lines = line_array(90, 250, 5);
  const double cd_draft = measure_cd(
      sim_.latent(lines, window_, {}, LithoQuality::kDraft), th(), 45.0);
  const double cd_fine = measure_cd(
      sim_.latent(lines, window_, {}, LithoQuality::kFine), th(), 45.0);
  EXPECT_NEAR(cd_draft, cd_fine, 3.5);
}

TEST(QualityParams, Presets) {
  EXPECT_GT(quality_params(LithoQuality::kDraft).pixel_nm,
            quality_params(LithoQuality::kFine).pixel_nm);
  EXPECT_LT(quality_params(LithoQuality::kDraft).source_spokes *
                quality_params(LithoQuality::kDraft).source_rings,
            quality_params(LithoQuality::kFine).source_spokes *
                quality_params(LithoQuality::kFine).source_rings);
}

}  // namespace
}  // namespace poc
