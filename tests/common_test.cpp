// Unit tests for src/common: FFT, statistics, linear algebra, tables,
// RNG determinism and the contract-check macros.
#include <cmath>
#include <numbers>

#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/common/fft.h"
#include "src/common/linalg.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/common/units.h"

namespace poc {
namespace {

TEST(Units, Conversions) {
  EXPECT_EQ(to_db(89.6), 90);
  EXPECT_EQ(to_db(-89.6), -90);
  EXPECT_DOUBLE_EQ(to_nm(250), 250.0);
  EXPECT_DOUBLE_EQ(nm_to_um(1500.0), 1.5);
  EXPECT_DOUBLE_EQ(um_to_nm(0.09), 90.0);
  // 1 kohm * 1 fF = 1 ps.
  EXPECT_DOUBLE_EQ(rc_to_ps(1000.0, 1.0), 1.0);
}

TEST(Check, ExpectsThrows) {
  EXPECT_THROW(POC_EXPECTS(false), CheckError);
  EXPECT_NO_THROW(POC_EXPECTS(true));
  EXPECT_THROW(POC_ENSURES(1 == 2), CheckError);
}

TEST(Fft, Pow2Helpers) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(256));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(100));
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(129), 256u);
  EXPECT_EQ(next_pow2(256), 256u);
}

TEST(Fft, RoundTrip1D) {
  Rng rng(7);
  std::vector<Cplx> data(64);
  for (auto& c : data) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto orig = data;
  fft_1d(data, false);
  fft_1d(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), orig[i].real(), 1e-12);
    EXPECT_NEAR(data[i].imag(), orig[i].imag(), 1e-12);
  }
}

TEST(Fft, DeltaTransformsToConstant) {
  std::vector<Cplx> data(32, Cplx(0, 0));
  data[0] = 1.0;
  fft_1d(data, false);
  for (const auto& c : data) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, SingleToneLandsInOneBin) {
  const std::size_t n = 64;
  std::vector<Cplx> data(n);
  const std::size_t k0 = 5;
  for (std::size_t i = 0; i < n; ++i) {
    const double phase = 2.0 * std::numbers::pi * static_cast<double>(k0 * i) /
                         static_cast<double>(n);
    data[i] = {std::cos(phase), std::sin(phase)};
  }
  fft_1d(data, false);
  for (std::size_t k = 0; k < n; ++k) {
    const double expected = k == k0 ? static_cast<double>(n) : 0.0;
    EXPECT_NEAR(std::abs(data[k]), expected, 1e-9) << "bin " << k;
  }
}

TEST(Fft, ParsevalHolds2D) {
  Rng rng(11);
  const std::size_t nx = 16, ny = 8;
  std::vector<Cplx> data(nx * ny);
  double time_energy = 0.0;
  for (auto& c : data) {
    c = {rng.uniform(-1, 1), 0.0};
    time_energy += std::norm(c);
  }
  fft_2d(data, nx, ny, false);
  double freq_energy = 0.0;
  for (const auto& c : data) freq_energy += std::norm(c);
  EXPECT_NEAR(freq_energy, time_energy * static_cast<double>(nx * ny), 1e-9);
}

TEST(Fft, RoundTrip2D) {
  Rng rng(3);
  const std::size_t nx = 32, ny = 16;
  std::vector<Cplx> data(nx * ny);
  for (auto& c : data) c = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  const auto orig = data;
  fft_2d(data, nx, ny, false);
  fft_2d(data, nx, ny, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(std::abs(data[i] - orig[i]), 0.0, 1e-12);
  }
}

TEST(Fft, NonPow2Rejected) {
  std::vector<Cplx> data(48);
  EXPECT_THROW(fft_1d(data, false), CheckError);
}

TEST(Fft, FreqIndexSignedMapping) {
  EXPECT_EQ(fft_freq_index(0, 8), 0);
  EXPECT_EQ(fft_freq_index(3, 8), 3);
  EXPECT_EQ(fft_freq_index(4, 8), -4);
  EXPECT_EQ(fft_freq_index(7, 8), -1);
}

TEST(Fft, BandForwardBitIdenticalInBand) {
  // The band-limited forward pass must agree with the full transform bit
  // for bit at every |kx| <= kx_max column (the Abbe path relies on this to
  // keep the golden results unchanged).
  Rng rng(7);
  const std::size_t nx = 32, ny = 16, kx_max = 5;
  std::vector<Cplx> full(nx * ny), band(nx * ny);
  for (std::size_t i = 0; i < nx * ny; ++i) {
    full[i] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    band[i] = full[i];
  }
  fft_2d(full, nx, ny, false);
  fft_2d_band_forward(band, nx, ny, kx_max);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      const long long kx = fft_freq_index(x, nx);
      if (kx < 0 ? -kx > static_cast<long long>(kx_max)
                 : kx > static_cast<long long>(kx_max)) {
        continue;
      }
      EXPECT_EQ(band[y * nx + x].real(), full[y * nx + x].real());
      EXPECT_EQ(band[y * nx + x].imag(), full[y * nx + x].imag());
    }
  }
}

TEST(Fft, BandInverseMatchesFullOnBandLimitedSpectrum) {
  Rng rng(11);
  const std::size_t nx = 32, ny = 16, kx_max = 5;
  std::vector<Cplx> spec(nx * ny, Cplx(0.0, 0.0));
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      const long long kx = fft_freq_index(x, nx);
      if (std::llabs(kx) > static_cast<long long>(kx_max)) continue;
      spec[y * nx + x] = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
    }
  }
  auto full = spec;
  auto band = spec;
  fft_2d(full, nx, ny, true);
  fft_2d_band_inverse(band, nx, ny, kx_max);
  for (std::size_t i = 0; i < nx * ny; ++i) {
    EXPECT_NEAR(std::abs(band[i] - full[i]), 0.0, 1e-12);
  }
}

TEST(Fft, PackedRealForwardMatchesComplexTransform) {
  Rng rng(17);
  const std::size_t nx = 32, ny = 16, kx_max = 6;
  std::vector<double> img(nx * ny);
  for (auto& v : img) v = rng.uniform(0, 1);
  std::vector<Cplx> full(nx * ny);
  for (std::size_t i = 0; i < nx * ny; ++i) full[i] = img[i];
  fft_2d(full, nx, ny, false);
  const std::vector<Cplx> packed = rfft_2d_band(img, nx, ny, kx_max);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      const long long kx = fft_freq_index(x, nx);
      if (std::llabs(kx) > static_cast<long long>(kx_max)) continue;
      EXPECT_NEAR(std::abs(packed[y * nx + x] - full[y * nx + x]), 0.0,
                  1e-11);
    }
  }
}

TEST(Fft, PackedRealInverseMatchesComplexTransform) {
  // Build a band-limited Hermitian spectrum from a real image, then check
  // the packed real inverse against the plain complex inverse.
  Rng rng(19);
  const std::size_t nx = 32, ny = 16, kx_max = 6;
  std::vector<double> img(nx * ny);
  for (auto& v : img) v = rng.uniform(-1, 1);
  std::vector<Cplx> spec(nx * ny);
  for (std::size_t i = 0; i < nx * ny; ++i) spec[i] = img[i];
  fft_2d(spec, nx, ny, false);
  for (std::size_t y = 0; y < ny; ++y) {
    for (std::size_t x = 0; x < nx; ++x) {
      const long long kx = fft_freq_index(x, nx);
      if (std::llabs(kx) > static_cast<long long>(kx_max)) {
        spec[y * nx + x] = Cplx(0.0, 0.0);
      }
    }
  }
  auto full = spec;
  fft_2d(full, nx, ny, true);
  const std::vector<double> packed = irfft_2d_band(spec, nx, ny, kx_max);
  for (std::size_t i = 0; i < nx * ny; ++i) {
    EXPECT_NEAR(packed[i], full[i].real(), 1e-11);
    EXPECT_NEAR(full[i].imag(), 0.0, 1e-11);
  }
}

TEST(Stats, RunningBasics) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);  // classic textbook sample
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Stats, MergeMatchesCombined) {
  Rng rng(5);
  RunningStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    const double v = rng.normal(3.0, 2.0);
    (i % 2 ? a : b).add(v);
    all.add(v);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.stddev(), all.stddev(), 1e-12);
}

TEST(Stats, Percentile) {
  std::vector<double> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.5), 3.0);
  EXPECT_DOUBLE_EQ(percentile(v, 0.25), 2.0);
}

TEST(Stats, RanksWithTies) {
  const std::vector<double> v{10.0, 20.0, 20.0, 30.0};
  const auto r = ranks_of(v);
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(Stats, SpearmanPerfectAndInverted) {
  const std::vector<double> a{1, 2, 3, 4, 5};
  const std::vector<double> b{10, 20, 30, 40, 50};
  const std::vector<double> c{50, 40, 30, 20, 10};
  EXPECT_NEAR(spearman(a, b), 1.0, 1e-12);
  EXPECT_NEAR(spearman(a, c), -1.0, 1e-12);
}

TEST(Stats, KendallKnownValue) {
  // One adjacent swap in 4 elements: tau = (5 - 1) / 6.
  const std::vector<double> a{1, 2, 3, 4};
  const std::vector<double> b{1, 3, 2, 4};
  EXPECT_NEAR(kendall_tau(a, b), 4.0 / 6.0, 1e-12);
}

TEST(Stats, PearsonOfLinearIsOne) {
  std::vector<double> a, b;
  for (int i = 0; i < 20; ++i) {
    a.push_back(i);
    b.push_back(3.0 * i - 7.0);
  }
  EXPECT_NEAR(pearson(a, b), 1.0, 1e-12);
}

TEST(Stats, HistogramBinsAndClamping) {
  const std::vector<double> v{-10.0, 0.1, 0.9, 0.9, 2.5, 99.0};
  const Histogram h = Histogram::build(v, 0.0, 3.0, 3);
  ASSERT_EQ(h.bins.size(), 3u);
  EXPECT_EQ(h.bins[0], 4u);  // clamped -10, plus 0.1, 0.9, 0.9
  EXPECT_EQ(h.bins[1], 0u);
  EXPECT_EQ(h.bins[2], 2u);  // 2.5 and clamped 99
  EXPECT_FALSE(h.render().empty());
}

TEST(Linalg, SolveKnownSystem) {
  // 2x + y = 5; x - y = 1 -> x = 2, y = 1.
  std::vector<double> a{2, 1, 1, -1};
  std::vector<double> b{5, 1};
  ASSERT_TRUE(solve_dense(a, b, 2));
  EXPECT_NEAR(b[0], 2.0, 1e-12);
  EXPECT_NEAR(b[1], 1.0, 1e-12);
}

TEST(Linalg, SingularDetected) {
  std::vector<double> a{1, 2, 2, 4};
  std::vector<double> b{3, 6};
  EXPECT_FALSE(solve_dense(a, b, 2));
}

TEST(Linalg, SolveRandomAgainstResidual) {
  Rng rng(13);
  const std::size_t n = 6;
  std::vector<double> a(n * n), b(n);
  for (auto& v : a) v = rng.uniform(-2, 2);
  for (auto& v : b) v = rng.uniform(-2, 2);
  const auto a0 = a;
  const auto b0 = b;
  ASSERT_TRUE(solve_dense(a, b, n));
  for (std::size_t r = 0; r < n; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < n; ++c) s += a0[r * n + c] * b[c];
    EXPECT_NEAR(s, b0[r], 1e-9);
  }
}

TEST(Linalg, LeastSquaresRecoversLine) {
  // y = 2x + 1 with exact data.
  std::vector<double> x, y;
  for (int i = 0; i < 10; ++i) {
    x.push_back(1.0);
    x.push_back(i);
    y.push_back(2.0 * i + 1.0);
  }
  const auto beta = least_squares(x, y, 10, 2);
  EXPECT_NEAR(beta[0], 1.0, 1e-9);
  EXPECT_NEAR(beta[1], 2.0, 1e-9);
}

TEST(JacobiHermitian, DiagonalPassesThroughSorted) {
  // Already diagonal: eigenvalues are the diagonal, sorted descending.
  std::vector<Cplx> a{{2.0, 0.0}, {0.0, 0.0}, {0.0, 0.0},
                      {0.0, 0.0}, {7.0, 0.0}, {0.0, 0.0},
                      {0.0, 0.0}, {0.0, 0.0}, {-1.0, 0.0}};
  const HermitianEigen e = jacobi_hermitian(a, 3);
  ASSERT_EQ(e.values.size(), 3u);
  EXPECT_NEAR(e.values[0], 7.0, 1e-14);
  EXPECT_NEAR(e.values[1], 2.0, 1e-14);
  EXPECT_NEAR(e.values[2], -1.0, 1e-14);
  // Eigenvectors are permuted unit vectors.
  EXPECT_NEAR(std::abs(e.vectors[0 * 3 + 1]), 1.0, 1e-14);
  EXPECT_NEAR(std::abs(e.vectors[1 * 3 + 0]), 1.0, 1e-14);
  EXPECT_NEAR(std::abs(e.vectors[2 * 3 + 2]), 1.0, 1e-14);
}

TEST(JacobiHermitian, KnownRealSymmetric2x2) {
  // [[2, 1], [1, 2]] -> eigenvalues 3 and 1, eigenvectors (1,1) and (1,-1).
  std::vector<Cplx> a{{2.0, 0.0}, {1.0, 0.0}, {1.0, 0.0}, {2.0, 0.0}};
  const HermitianEigen e = jacobi_hermitian(a, 2);
  EXPECT_NEAR(e.values[0], 3.0, 1e-14);
  EXPECT_NEAR(e.values[1], 1.0, 1e-14);
  const double inv_sq2 = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(e.vectors[0 * 2 + 0]), inv_sq2, 1e-12);
  EXPECT_NEAR(std::abs(e.vectors[0 * 2 + 1]), inv_sq2, 1e-12);
  // The (3.0) eigenvector has equal components, the (1.0) one opposite.
  EXPECT_NEAR(std::abs(e.vectors[0 * 2 + 0] + e.vectors[0 * 2 + 1]),
              std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(e.vectors[1 * 2 + 0] + e.vectors[1 * 2 + 1]), 0.0,
              1e-12);
}

TEST(JacobiHermitian, KnownComplexHermitian2x2) {
  // [[1, i], [-i, 1]]: eigenvalues 2 and 0.
  std::vector<Cplx> a{{1.0, 0.0}, {0.0, 1.0}, {0.0, -1.0}, {1.0, 0.0}};
  const HermitianEigen e = jacobi_hermitian(a, 2);
  EXPECT_NEAR(e.values[0], 2.0, 1e-14);
  EXPECT_NEAR(e.values[1], 0.0, 1e-14);
}

TEST(JacobiHermitian, RandomHermitianEigenEquation) {
  // Residual test on a dense complex Hermitian matrix: A v = lambda v,
  // orthonormal vectors, eigenvalue sum equals the trace.
  Rng rng(29);
  const std::size_t n = 9;
  std::vector<Cplx> a(n * n);
  for (std::size_t i = 0; i < n; ++i) {
    a[i * n + i] = Cplx(rng.uniform(-2, 2), 0.0);
    for (std::size_t j = i + 1; j < n; ++j) {
      a[i * n + j] = Cplx(rng.uniform(-1, 1), rng.uniform(-1, 1));
      a[j * n + i] = std::conj(a[i * n + j]);
    }
  }
  const HermitianEigen e = jacobi_hermitian(a, n);
  double trace = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    trace += a[i * n + i].real();
    sum += e.values[i];
    if (i > 0) {
      EXPECT_GE(e.values[i - 1], e.values[i]);  // sorted descending
    }
  }
  EXPECT_NEAR(trace, sum, 1e-10);
  for (std::size_t k = 0; k < n; ++k) {
    // |A v_k - lambda_k v_k| small.
    for (std::size_t i = 0; i < n; ++i) {
      Cplx av(0.0, 0.0);
      for (std::size_t j = 0; j < n; ++j) {
        av += a[i * n + j] * e.vectors[k * n + j];
      }
      const Cplx resid = av - e.values[k] * e.vectors[k * n + i];
      EXPECT_LT(std::abs(resid), 1e-11);
    }
    // Orthonormality against every other vector.
    for (std::size_t m = 0; m < n; ++m) {
      Cplx dot(0.0, 0.0);
      for (std::size_t i = 0; i < n; ++i) {
        dot += std::conj(e.vectors[k * n + i]) * e.vectors[m * n + i];
      }
      EXPECT_NEAR(std::abs(dot), k == m ? 1.0 : 0.0, 1e-11);
    }
  }
}

TEST(JacobiHermitian, DeterministicAcrossCalls) {
  std::vector<Cplx> a{{3.0, 0.0}, {1.0, 2.0}, {0.5, -0.25},
                      {1.0, -2.0}, {-1.0, 0.0}, {0.0, 1.0},
                      {0.5, 0.25}, {0.0, -1.0}, {2.0, 0.0}};
  const HermitianEigen e1 = jacobi_hermitian(a, 3);
  const HermitianEigen e2 = jacobi_hermitian(a, 3);
  EXPECT_EQ(e1.values, e2.values);
  EXPECT_EQ(e1.vectors, e2.vectors);
}

TEST(Rng, DeterministicStreams) {
  Rng a(123), b(123), c(124);
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  EXPECT_NE(a.uniform(), c.uniform());
  Rng d(55);
  Rng child = d.fork();
  EXPECT_GE(child.uniform(0, 1), 0.0);
}

TEST(Rng, ForkedStreamsStatisticallyIndependent) {
  // Repeated forks from one parent must give decorrelated streams: the old
  // XOR-of-a-draw derivation handed mt19937_64 a sequence of related seeds
  // whose early outputs correlate.  splitmix64 avalanches each draw into
  // an unrelated seed.  Check pairwise correlation of adjacent children
  // and of each child against the parent.
  Rng parent(2026);
  constexpr int kChildren = 12;
  constexpr int kDraws = 4000;
  std::vector<std::vector<double>> streams;
  for (int c = 0; c < kChildren; ++c) {
    Rng child = parent.fork();
    std::vector<double> draws(kDraws);
    for (double& d : draws) d = child.uniform(-1.0, 1.0);
    streams.push_back(std::move(draws));
  }
  const double bound = 4.0 / std::sqrt(static_cast<double>(kDraws));
  for (int c = 0; c + 1 < kChildren; ++c) {
    EXPECT_LT(std::abs(pearson(streams[c], streams[c + 1])), bound)
        << "children " << c << " and " << c + 1;
  }
  // Mean/variance of each child stream look uniform(-1, 1).
  for (int c = 0; c < kChildren; ++c) {
    RunningStats s;
    for (double d : streams[c]) s.add(d);
    EXPECT_NEAR(s.mean(), 0.0, 0.05) << "child " << c;
    EXPECT_NEAR(s.stddev(), 1.0 / std::sqrt(3.0), 0.05) << "child " << c;
  }
}

TEST(Rng, CounterDerivedStreamsReproducibleAndIndependent) {
  // Rng::stream(seed, index) is the parallel engine's per-work-item
  // seeding: the same (seed, index) must reproduce exactly, different
  // indices must decorrelate, and adjacent indices must not collide.
  Rng a = Rng::stream(42, 7);
  Rng b = Rng::stream(42, 7);
  EXPECT_DOUBLE_EQ(a.normal(), b.normal());
  EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());

  constexpr int kStreams = 16;
  constexpr int kDraws = 4000;
  std::vector<std::vector<double>> streams;
  for (int i = 0; i < kStreams; ++i) {
    Rng r = Rng::stream(99, static_cast<std::uint64_t>(i));
    std::vector<double> draws(kDraws);
    for (double& d : draws) d = r.uniform(-1.0, 1.0);
    streams.push_back(std::move(draws));
  }
  const double bound = 4.0 / std::sqrt(static_cast<double>(kDraws));
  for (int i = 0; i + 1 < kStreams; ++i) {
    EXPECT_LT(std::abs(pearson(streams[i], streams[i + 1])), bound)
        << "streams " << i << " and " << i + 1;
    EXPECT_NE(streams[i][0], streams[i + 1][0]);
  }
}

TEST(Rng, SplitMix64KnownVectors) {
  // Reference outputs of the standard SplitMix64 finalizer so the seeding
  // scheme cannot silently drift (it is part of the determinism contract).
  EXPECT_EQ(splitmix64(0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(splitmix64(1), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(splitmix64(2), 0x975835de1c9756ceULL);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  RunningStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Table, RendersAlignedRows) {
  Table t({"name", "value"});
  t.add_row({"x", Table::num(1.5, 1)});
  t.add_row({"longer_name", "2"});
  const std::string out = t.render();
  EXPECT_NE(out.find("longer_name"), std::string::npos);
  EXPECT_NE(out.find("1.5"), std::string::npos);
  EXPECT_THROW(t.add_row({"only_one"}), CheckError);
}

}  // namespace
}  // namespace poc
