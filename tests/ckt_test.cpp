// Tests for the transient circuit simulator: analytic RC behaviour,
// waveform utilities, CMOS stages and Newton robustness.
#include <cmath>

#include <gtest/gtest.h>

#include "src/ckt/circuit.h"
#include "src/ckt/transient.h"
#include "src/common/check.h"

namespace poc {
namespace {

TEST(Pwl, InterpolationAndClamping) {
  const Pwl w({{100.0, 0.0}, {200.0, 1.0}});
  EXPECT_DOUBLE_EQ(w.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.at(150.0), 0.5);
  EXPECT_DOUBLE_EQ(w.at(300.0), 1.0);
  EXPECT_DOUBLE_EQ(w.last_time(), 200.0);
  EXPECT_DOUBLE_EQ(Pwl::constant(1.2).at(999.0), 1.2);
  const Pwl r = Pwl::ramp(50.0, 100.0, 1.2, 0.0);
  EXPECT_DOUBLE_EQ(r.at(100.0), 0.6);
}

TEST(Trace, CrossTimeInterpolates) {
  Trace t{1.0, {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}};
  const auto x = t.cross_time(0.5, true);
  ASSERT_TRUE(x.has_value());
  EXPECT_NEAR(*x, 2.5, 1e-12);
  EXPECT_FALSE(t.cross_time(0.5, false).has_value());
  EXPECT_FALSE(t.cross_time(2.0, true).has_value());
}

TEST(Trace, SlewMeasurement) {
  // Linear 0 -> 1 V over 10 ps: 20-80 takes 6 ps, scaled by 1/0.6 = 10 ps.
  Trace t{1.0, {}};
  for (int i = 0; i <= 20; ++i) t.v.push_back(std::min(1.0, i / 10.0));
  const auto s = t.slew(1.0, true);
  ASSERT_TRUE(s.has_value());
  EXPECT_NEAR(*s, 10.0, 1e-9);
}

TEST(Circuit, ValidationChecks) {
  Circuit c;
  const NodeId n = c.add_node();
  EXPECT_THROW(c.add_cap(99, 1.0), CheckError);
  EXPECT_THROW(c.add_res(n, n + 7, 100.0), CheckError);
  EXPECT_THROW(c.add_vsource(kGround, Pwl::constant(0.0)), CheckError);
  c.add_cap(n, 2.0);
  c.add_cap(n, 3.0);
  EXPECT_DOUBLE_EQ(c.node_cap(n), 5.0);
  EXPECT_FALSE(c.is_driven(n));
  c.add_vsource(n, Pwl::constant(1.0));
  EXPECT_TRUE(c.is_driven(n));
}

TEST(Transient, RcDischargeMatchesAnalytic) {
  // 1 kohm to a 0 V source, 10 fF cap charged via initial source at 1 V
  // then stepped down: V(t) = exp(-t/RC), RC = 10 ps.
  Circuit c;
  const NodeId src = c.add_node();
  const NodeId out = c.add_node();
  // Hold at 1 V for 10 RC to charge the cap, then step down.
  c.add_vsource(src, Pwl({{0.0, 1.0}, {100.0, 1.0}, {100.1, 0.0}}));
  c.add_res(src, out, 1000.0);
  c.add_cap(out, 10.0);
  TransientOptions opts;
  opts.dt = 0.05;
  opts.t_end = 160.0;
  opts.cmin = 0.0;
  const TransientResult r = simulate(c, opts);
  ASSERT_TRUE(r.converged);
  const auto at = [&](Ps t) {
    return r.traces[out].v[static_cast<std::size_t>(t / opts.dt)];
  };
  EXPECT_NEAR(at(100.0), 1.0, 1e-3);  // fully charged before the step
  // At t0 + RC: 1/e.  Allow backward-Euler discretization error.
  EXPECT_NEAR(at(110.1), std::exp(-1.0), 0.02);
  EXPECT_NEAR(at(140.1), std::exp(-4.0), 0.01);
}

TEST(Transient, ChargeConservationTwoCaps) {
  // Two caps through a resistor equilibrate to the charge-weighted mean.
  Circuit c;
  const NodeId a = c.add_node();
  const NodeId b = c.add_node();
  const NodeId src = c.add_node();
  c.add_vsource(src, Pwl({{0.0, 1.0}, {0.5, 1.0}, {0.6, 0.0}}));
  c.add_res(src, a, 50.0);  // charges a to 1 V then source drops; use switch
  c.add_cap(a, 10.0);
  c.add_cap(b, 30.0);
  c.add_res(a, b, 10000.0);
  TransientOptions opts;
  opts.dt = 0.5;
  opts.t_end = 3000.0;
  opts.cmin = 0.0;
  opts.gmin_ua_per_v = 0.0;
  const TransientResult r = simulate(c, opts);
  ASSERT_TRUE(r.converged);
  // After the source collapses, a and b share charge through the 10k; but a
  // also discharges into the 0 V source through 50 ohm, so eventually all
  // voltages drain to 0.  Check monotone decay and b's peak below a's.
  double peak_b = 0.0;
  for (double v : r.traces[b].v) peak_b = std::max(peak_b, v);
  EXPECT_GT(peak_b, 0.0);
  EXPECT_LT(peak_b, 1.0);
  EXPECT_LT(r.traces[a].final_value(), 0.05);
}

class InverterFixture : public ::testing::Test {
 protected:
  /// Builds a CMOS inverter driving `load` fF; input ramp at t0 = 100 ps.
  Circuit build(bool input_rising, Ps slew, Ff load) {
    Circuit c;
    vdd_ = c.add_node();
    in_ = c.add_node();
    out_ = c.add_node();
    c.add_vsource(vdd_, Pwl::constant(1.2));
    c.add_vsource(in_, input_rising ? Pwl::ramp(100.0, slew, 0.0, 1.2)
                                    : Pwl::ramp(100.0, slew, 1.2, 0.0));
    MosfetInst mn;
    mn.params = MosfetParams::nmos();
    mn.width_um = 0.6;
    mn.drain = out_;
    mn.gate = in_;
    mn.source = kGround;
    c.add_mosfet(mn);
    MosfetInst mp;
    mp.params = MosfetParams::pmos();
    mp.width_um = 0.9;
    mp.drain = out_;
    mp.gate = in_;
    mp.source = vdd_;
    c.add_mosfet(mp);
    c.add_cap(out_, load);
    return c;
  }

  NodeId vdd_ = 0, in_ = 0, out_ = 0;
};

TEST_F(InverterFixture, StaticLevelsCorrect) {
  Circuit c = build(/*input_rising=*/true, 20.0, 5.0);
  TransientOptions opts;
  opts.t_end = 600.0;
  const TransientResult r = simulate(c, opts);
  ASSERT_TRUE(r.converged);
  // Before the edge: input low, output high.
  EXPECT_NEAR(r.traces[out_].v[static_cast<std::size_t>(90.0 / opts.dt)], 1.2,
              0.05);
  // Long after: output low.
  EXPECT_NEAR(r.traces[out_].final_value(), 0.0, 0.05);
}

TEST_F(InverterFixture, DelayGrowsWithLoad) {
  double prev_delay = 0.0;
  for (Ff load : {2.0, 8.0, 20.0}) {
    Circuit c = build(true, 30.0, load);
    TransientOptions opts;
    opts.t_end = 800.0;
    const TransientResult r = simulate(c, opts);
    ASSERT_TRUE(r.converged);
    const auto t_out = r.traces[out_].cross_time(0.6, false, 100.0);
    ASSERT_TRUE(t_out.has_value());
    const double delay = *t_out - 115.0;  // input 50% at 100 + 15
    EXPECT_GT(delay, prev_delay);
    prev_delay = delay;
  }
}

TEST_F(InverterFixture, RiseAndFallBothWork) {
  Circuit c = build(/*input_rising=*/false, 30.0, 5.0);
  TransientOptions opts;
  opts.t_end = 800.0;
  const TransientResult r = simulate(c, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.traces[out_].final_value(), 1.2, 0.05);
  const auto slew = r.traces[out_].slew(1.2, true, 100.0);
  ASSERT_TRUE(slew.has_value());
  EXPECT_GT(*slew, 1.0);
  EXPECT_LT(*slew, 300.0);
}

TEST(TransientNand, StackedPullDown) {
  // NAND2: output falls only when both inputs are high.
  Circuit c;
  const NodeId vdd = c.add_node();
  const NodeId a = c.add_node();
  const NodeId b = c.add_node();
  const NodeId out = c.add_node();
  const NodeId mid = c.add_node();
  c.add_vsource(vdd, Pwl::constant(1.2));
  c.add_vsource(a, Pwl::constant(1.2));  // one input held high
  c.add_vsource(b, Pwl::ramp(100.0, 30.0, 0.0, 1.2));
  MosfetInst m1;
  m1.params = MosfetParams::nmos();
  m1.width_um = 1.2;
  m1.drain = out;
  m1.gate = a;
  m1.source = mid;
  c.add_mosfet(m1);
  MosfetInst m2 = m1;
  m2.gate = b;
  m2.drain = mid;
  m2.source = kGround;
  c.add_mosfet(m2);
  for (NodeId g : {a, b}) {
    MosfetInst mp;
    mp.params = MosfetParams::pmos();
    mp.width_um = 0.9;
    mp.drain = out;
    mp.gate = g;
    mp.source = vdd;
    c.add_mosfet(mp);
  }
  c.add_cap(out, 5.0);
  c.add_cap(mid, 0.5);
  TransientOptions opts;
  opts.t_end = 700.0;
  const TransientResult r = simulate(c, opts);
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.traces[out].v[static_cast<std::size_t>(90.0 / opts.dt)], 1.2,
              0.06);
  EXPECT_NEAR(r.traces[out].final_value(), 0.0, 0.06);
}

}  // namespace
}  // namespace poc
