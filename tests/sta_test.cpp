// Tests for the static timing engine: arrival propagation against hand
// computation, annotation scaling, path enumeration vs brute force, slack
// bookkeeping, critical-gate tagging and rank comparison.
#include <algorithm>
#include <filesystem>

#include <gtest/gtest.h>

#include "src/ckt/transient.h"
#include "src/netlist/generators.h"
#include "src/stdcell/characterize.h"
#include "src/sta/paths.h"
#include "src/sta/sta.h"

namespace poc {
namespace {

const StdCellLibrary& lib() {
  static const StdCellLibrary l = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_test.lib")
          .string());
  return l;
}

/// A 3-inverter chain with no wires: arrival is exactly the chained table
/// lookups.
Netlist inv_chain(std::size_t n) {
  Netlist nl("chain");
  NetIdx prev = nl.add_net("in");
  nl.mark_primary_input(prev);
  for (std::size_t i = 0; i < n; ++i) {
    const NetIdx next = nl.add_net("n" + std::to_string(i));
    nl.add_gate("g" + std::to_string(i), "INV_X1", {prev}, next);
    prev = next;
  }
  nl.mark_primary_output(prev);
  return nl;
}

TEST(Sta, InverterChainMatchesHandCalc) {
  const Netlist nl = inv_chain(3);
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.clock_period = 500.0;
  opts.input_slew = 40.0;
  opts.po_load_ff = 5.0;
  const StaReport report = engine.run(opts);

  // Hand-propagate: rise at PO comes from fall at PI through three stages.
  const CellTiming& inv = lib().timing("INV_X1");
  const Ff load01 = inv.input_caps[0] + inv.output_self_cap;  // g0 -> g1
  // PI fall -> n0 rise.
  const double d0 = inv.arcs[0].delay_rise.lookup(40.0, load01);
  const double s0 = inv.arcs[0].slew_rise.lookup(40.0, load01);
  // n0 rise -> n1 fall.
  const double d1 = inv.arcs[0].delay_fall.lookup(s0, load01);
  const double s1 = inv.arcs[0].slew_fall.lookup(s0, load01);
  // n1 fall -> n2 rise (PO load + self cap).
  const Ff load_po = 5.0 + inv.output_self_cap;
  const double d2 = inv.arcs[0].delay_rise.lookup(s1, load_po);

  bool found = false;
  for (const EndpointTime& e : report.endpoints) {
    if (e.rising) {
      EXPECT_NEAR(e.arrival, d0 + d1 + d2, 1e-9);
      EXPECT_NEAR(e.slack, 500.0 - (d0 + d1 + d2), 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(report.endpoints.size(), 2u);  // rise + fall at one PO
}

TEST(Sta, WorstSlackConsistentWithArrival) {
  const Netlist nl = make_benchmark("adder8");
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.clock_period = 700.0;
  const StaReport r = engine.run(opts);
  EXPECT_NEAR(r.worst_slack, opts.clock_period - r.worst_arrival, 1e-9);
  ASSERT_FALSE(r.endpoints.empty());
  // Endpoints sorted worst-first.
  for (std::size_t i = 1; i < r.endpoints.size(); ++i) {
    EXPECT_GE(r.endpoints[i - 1].arrival, r.endpoints[i].arrival);
  }
  EXPECT_NEAR(r.endpoints.front().arrival, r.worst_arrival, 1e-9);
}

TEST(Sta, PathsMatchArrivalAndAreSorted) {
  const Netlist nl = make_benchmark("adder4");
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.clock_period = 600.0;
  opts.max_paths = 32;
  opts.path_window = 100.0;
  const StaReport r = engine.run(opts);
  ASSERT_FALSE(r.paths.empty());
  // The worst path's arrival equals the worst endpoint arrival.
  EXPECT_NEAR(r.paths[0].arrival, r.worst_arrival, 1e-6);
  for (std::size_t i = 1; i < r.paths.size(); ++i) {
    EXPECT_GE(r.paths[i - 1].arrival, r.paths[i].arrival);
  }
  for (const TimingPath& p : r.paths) {
    // Path starts at a PI and ends at its endpoint.
    EXPECT_TRUE(nl.net(p.points.front().net).is_primary_input);
    EXPECT_EQ(p.points.back().net, p.endpoint);
    EXPECT_NEAR(p.points.back().arrival, p.arrival, 1e-9);
    EXPECT_NEAR(p.slack, opts.clock_period - p.arrival, 1e-9);
    // Cumulative arrivals are nondecreasing.
    for (std::size_t i = 1; i < p.points.size(); ++i) {
      EXPECT_GE(p.points[i].arrival, p.points[i - 1].arrival);
    }
  }
  // Signatures are unique.
  std::vector<std::string> sigs;
  for (const TimingPath& p : r.paths) sigs.push_back(p.signature(nl));
  std::sort(sigs.begin(), sigs.end());
  EXPECT_EQ(std::adjacent_find(sigs.begin(), sigs.end()), sigs.end());
}

TEST(Sta, AnnotationsScaleDelays) {
  const Netlist nl = inv_chain(4);
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.clock_period = 500.0;
  const double base = engine.run(opts).worst_arrival;

  std::vector<DelayAnnotation> ann(nl.num_gates());
  for (auto& a : ann) {
    a.fall_scale = 1.2;
    a.rise_scale = 1.2;
  }
  engine.set_annotations(ann);
  const double slowed = engine.run(opts).worst_arrival;
  // Scaled slews compound downstream, so the chain slows slightly more
  // than the pure delay factor.
  EXPECT_GE(slowed / base, 1.2 - 1e-9);
  EXPECT_LT(slowed / base, 1.35);

  engine.clear_annotations();
  EXPECT_NEAR(engine.run(opts).worst_arrival, base, 1e-9);
}

TEST(Sta, AsymmetricAnnotationAffectsOneTransition) {
  const Netlist nl = inv_chain(1);
  StaEngine engine(nl, lib());
  StaOptions opts;
  std::vector<DelayAnnotation> ann(1);
  ann[0].fall_scale = 2.0;  // only output-fall (input-rise) arcs
  engine.set_annotations(ann);
  const StaReport r = engine.run(opts);
  double fall_at = 0.0, rise_at = 0.0;
  for (const EndpointTime& e : r.endpoints) {
    (e.rising ? rise_at : fall_at) = e.arrival;
  }
  EXPECT_GT(fall_at, rise_at);
}

TEST(Sta, WireDelaysAddedWhenParasiticsSet) {
  const Netlist nl = make_benchmark("c17");
  const PlacedDesign design = place_and_route(nl, lib());
  StaEngine ideal(nl, lib());
  StaEngine wired(nl, lib());
  const Extractor ex(design.tech);
  wired.set_parasitics(ex.extract_design(design));
  StaOptions opts;
  EXPECT_GT(wired.run(opts).worst_arrival, ideal.run(opts).worst_arrival);
}

TEST(Sta, GateSlackIdentifiesCriticalPath) {
  const Netlist nl = make_benchmark("adder8");
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.clock_period = 700.0;
  const StaReport r = engine.run(opts);
  // Gates on the worst path have (near-)worst slack.
  ASSERT_FALSE(r.paths.empty());
  const TimingPath& worst = r.paths[0];
  for (const PathPoint& pt : worst.points) {
    const Net& net = nl.net(pt.net);
    if (net.driver == kNoIndex) continue;
    EXPECT_LT(r.gate_slack[net.driver], r.worst_slack + 1.0)
        << nl.gate(net.driver).name;
  }
  // And no gate slack exceeds the clock period.
  for (Ps s : r.gate_slack) EXPECT_LE(s, opts.clock_period + 1e-9);
}

TEST(Sta, CriticalGatesWindowGrowsMonotonically) {
  const Netlist nl = make_benchmark("adder8");
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.clock_period = 700.0;
  const auto tight = engine.critical_gates(opts, 5.0);
  const auto loose = engine.critical_gates(opts, 100.0);
  EXPECT_FALSE(tight.empty());
  EXPECT_GE(loose.size(), tight.size());
  EXPECT_LT(loose.size(), nl.num_gates() + 1);
  for (GateIdx g : tight) {
    EXPECT_NE(std::find(loose.begin(), loose.end(), g), loose.end());
  }
}

TEST(Paths, CompareRanksIdentity) {
  const Netlist nl = make_benchmark("adder4");
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.max_paths = 24;
  const StaReport r = engine.run(opts);
  const auto cmp = compare_path_ranks(nl, r.paths, r.paths);
  EXPECT_EQ(cmp.matched, r.paths.size());
  EXPECT_NEAR(cmp.spearman, 1.0, 1e-12);
  EXPECT_NEAR(cmp.kendall, 1.0, 1e-12);
  EXPECT_EQ(cmp.top10_displaced, 0u);
  EXPECT_EQ(cmp.rank1_changed, 0u);
}

TEST(Paths, CompareRanksDetectsReordering) {
  const Netlist nl = make_benchmark("adder4");
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.max_paths = 24;
  const StaReport base = engine.run(opts);

  // Slow down one mid-ranked path's driver enough to reorder.
  ASSERT_GT(base.paths.size(), 4u);
  const TimingPath& target = base.paths[base.paths.size() / 2];
  std::vector<DelayAnnotation> ann(nl.num_gates());
  const NetIdx mid_net = target.points[target.points.size() / 2].net;
  ASSERT_NE(nl.net(mid_net).driver, kNoIndex);
  ann[nl.net(mid_net).driver].fall_scale = 1.6;
  ann[nl.net(mid_net).driver].rise_scale = 1.6;
  engine.set_annotations(ann);
  const StaReport mod = engine.run(opts);

  const auto cmp = compare_path_ranks(nl, base.paths, mod.paths);
  EXPECT_GT(cmp.matched, 4u);
  EXPECT_LT(cmp.spearman, 0.9999);
  EXPECT_GT(cmp.max_rank_shift, 0.0);
}

TEST(Paths, FormatPathReadable) {
  const Netlist nl = inv_chain(2);
  StaEngine engine(nl, lib());
  const StaReport r = engine.run({});
  ASSERT_FALSE(r.paths.empty());
  const std::string s = format_path(nl, r.paths[0]);
  EXPECT_NE(s.find("in"), std::string::npos);
  EXPECT_NE(s.find("arrival="), std::string::npos);
}

TEST(Sta, CrossValidatedAgainstTransistorLevelTransient) {
  // End-to-end abstraction check: the NLDM-table STA on a 3-inverter chain
  // must agree with a full transistor-level transient simulation of the
  // same chain within table-interpolation accuracy.
  const std::size_t stages = 3;
  const Netlist nl = inv_chain(stages);
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.input_slew = 50.0;
  opts.po_load_ff = 10.0;
  const StaReport sta = engine.run(opts);

  // Build the same chain in the circuit simulator.
  const CharParams& cp = lib().char_params();
  const CellSpec& inv = lib().spec("INV_X1");
  Circuit ckt;
  const NodeId vdd = ckt.add_node();
  ckt.add_vsource(vdd, Pwl::constant(cp.nmos.vdd));
  const NodeId in = ckt.add_node();
  // STA's PI fall arrival is at t=0 with 50 ps slew; mimic that ramp.
  ckt.add_vsource(in, Pwl::ramp(200.0, 50.0, cp.nmos.vdd, 0.0));
  std::vector<NodeId> nodes{in};
  for (std::size_t s = 0; s < stages; ++s) {
    const NodeId out = ckt.add_node();
    MosfetInst mn;
    mn.params = cp.nmos;
    mn.width_um = inv.nmos_w_um;
    mn.drain = out;
    mn.gate = nodes.back();
    mn.source = kGround;
    ckt.add_mosfet(mn);
    MosfetInst mp;
    mp.params = cp.pmos;
    mp.width_um = inv.pmos_w_um;
    mp.drain = out;
    mp.gate = nodes.back();
    mp.source = vdd;
    ckt.add_mosfet(mp);
    // Diffusion self-load as characterization assumed.
    ckt.add_cap(out, cp.cdiff_ff_per_um * (inv.nmos_w_um + inv.pmos_w_um));
    // Next stage's gate cap, or the PO load at the end.
    ckt.add_cap(out, s + 1 < stages ? input_cap_ff(inv, cp) : 10.0);
    nodes.push_back(out);
  }
  TransientOptions topt;
  topt.t_end = 1200.0;
  const TransientResult sim = simulate(ckt, topt);
  ASSERT_TRUE(sim.converged);
  // Input 50% at 225 ps; output (falling chain, odd stages -> rising out).
  const auto t_out = sim.traces[nodes.back()].cross_time(
      cp.nmos.vdd / 2.0, true, 200.0);
  ASSERT_TRUE(t_out.has_value());
  const double spice_delay = *t_out - 225.0;
  // STA's matching endpoint: rising arrival.
  double sta_delay = 0.0;
  for (const EndpointTime& e : sta.endpoints) {
    if (e.rising) sta_delay = e.arrival;
  }
  ASSERT_GT(sta_delay, 0.0);
  // NLDM tables are characterized with linear input ramps while the real
  // chain propagates exponential-tailed waveforms; the resulting waveform-
  // shape error is the known accuracy bound of the table abstraction
  // (production NLDM sits in the same 5-20 % band vs SPICE, on the
  // pessimistic side).  Guard the band and the sign.
  EXPECT_GT(sta_delay, spice_delay);  // pessimistic, never optimistic
  EXPECT_NEAR(sta_delay / spice_delay, 1.0, 0.20)
      << "sta " << sta_delay << " vs transient " << spice_delay;
}

TEST(Sta, DegradedSlewFormula) {
  EXPECT_DOUBLE_EQ(StaEngine::degraded_slew(40.0, 0.0), 40.0);
  // RMS combination: sqrt(30^2 + (2.2*10)^2).
  EXPECT_NEAR(StaEngine::degraded_slew(30.0, 10.0),
              std::sqrt(30.0 * 30.0 + 22.0 * 22.0), 1e-12);
  EXPECT_GT(StaEngine::degraded_slew(30.0, 20.0),
            StaEngine::degraded_slew(30.0, 10.0));
}

TEST(Sta, WireSlewDegradationSlowsDownstreamStages) {
  // Same netlist, same wire delay, but compare against hand-computed
  // arrival that includes the degraded slew at the sink.
  Netlist nl("t");
  const NetIdx in = nl.add_net("in");
  nl.mark_primary_input(in);
  const NetIdx mid = nl.add_net("mid");
  const NetIdx out = nl.add_net("out");
  nl.add_gate("g0", "INV_X1", {in}, mid);
  nl.add_gate("g1", "INV_X1", {mid}, out);
  nl.mark_primary_output(out);

  StaEngine engine(nl, lib());
  std::vector<NetParasitics> para(nl.num_nets());
  SinkParasitics sp;
  sp.sink_gate = 1;
  sp.sink_pin = 0;
  sp.path_res = 500.0;
  sp.elmore_ps = 20.0;
  para[mid].wire_cap = 10.0;
  para[mid].sinks.push_back(sp);
  engine.set_parasitics(std::move(para));
  StaOptions opts;
  const StaReport r = engine.run(opts);

  const CellTiming& inv = lib().timing("INV_X1");
  const Ff load_mid = 10.0 + inv.input_caps[0] + inv.output_self_cap;
  const Ff load_out = opts.po_load_ff + inv.output_self_cap;
  const double d0 = inv.arcs[0].delay_rise.lookup(opts.input_slew, load_mid);
  const double s0 = inv.arcs[0].slew_rise.lookup(opts.input_slew, load_mid);
  const double s0_sink = StaEngine::degraded_slew(s0, 20.0);
  const double d1 = inv.arcs[0].delay_fall.lookup(s0_sink, load_out);
  bool checked = false;
  for (const EndpointTime& e : r.endpoints) {
    if (!e.rising) {
      EXPECT_NEAR(e.arrival, d0 + 20.0 + d1, 1e-9);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(Sta, LateDerateScalesArrivalsUniformly) {
  const Netlist nl = make_benchmark("adder4");
  StaEngine engine(nl, lib());
  StaOptions opts;
  const double base = engine.run(opts).worst_arrival;
  opts.late_derate = 1.08;
  const StaReport derated = engine.run(opts);
  // Wire delays (none here) are not derated; pure-cell paths scale exactly.
  EXPECT_NEAR(derated.worst_arrival / base, 1.08, 1e-9);
  // Paths re-enumerate consistently under derate.
  ASSERT_FALSE(derated.paths.empty());
  EXPECT_NEAR(derated.paths[0].arrival, derated.worst_arrival, 1e-6);
}

TEST(Sta, LeakageSumAndScaling) {
  const Netlist nl = make_benchmark("c17");
  StaEngine engine(nl, lib());
  const double base = engine.run({}).total_leakage_ua;
  EXPECT_NEAR(base, 6.0 * lib().timing("NAND2_X1").leakage_ua, 1e-9);
  std::vector<DelayAnnotation> ann(nl.num_gates());
  for (auto& a : ann) a.leak_scale = 3.0;
  engine.set_annotations(ann);
  EXPECT_NEAR(engine.run({}).total_leakage_ua, 3.0 * base, 1e-9);
}

}  // namespace
}  // namespace poc
