// Tests for the static timing engine: arrival propagation against hand
// computation, annotation scaling, path enumeration vs brute force, slack
// bookkeeping, critical-gate tagging and rank comparison.
#include <algorithm>
#include <filesystem>

#include <gtest/gtest.h>

#include "src/ckt/transient.h"
#include "src/core/flow.h"
#include "src/netlist/generators.h"
#include "src/stdcell/characterize.h"
#include "src/sta/paths.h"
#include "src/sta/service.h"
#include "src/sta/sta.h"

namespace poc {
namespace {

const StdCellLibrary& lib() {
  static const StdCellLibrary l = StdCellLibrary::load_or_characterize(
      (std::filesystem::temp_directory_path() / "poc_cells_test.lib")
          .string());
  return l;
}

/// A 3-inverter chain with no wires: arrival is exactly the chained table
/// lookups.
Netlist inv_chain(std::size_t n) {
  Netlist nl("chain");
  NetIdx prev = nl.add_net("in");
  nl.mark_primary_input(prev);
  for (std::size_t i = 0; i < n; ++i) {
    const NetIdx next = nl.add_net("n" + std::to_string(i));
    nl.add_gate("g" + std::to_string(i), "INV_X1", {prev}, next);
    prev = next;
  }
  nl.mark_primary_output(prev);
  return nl;
}

TEST(Sta, InverterChainMatchesHandCalc) {
  const Netlist nl = inv_chain(3);
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.clock_period = 500.0;
  opts.input_slew = 40.0;
  opts.po_load_ff = 5.0;
  const StaReport report = engine.run(opts);

  // Hand-propagate: rise at PO comes from fall at PI through three stages.
  const CellTiming& inv = lib().timing("INV_X1");
  const Ff load01 = inv.input_caps[0] + inv.output_self_cap;  // g0 -> g1
  // PI fall -> n0 rise.
  const double d0 = inv.arcs[0].delay_rise.lookup(40.0, load01);
  const double s0 = inv.arcs[0].slew_rise.lookup(40.0, load01);
  // n0 rise -> n1 fall.
  const double d1 = inv.arcs[0].delay_fall.lookup(s0, load01);
  const double s1 = inv.arcs[0].slew_fall.lookup(s0, load01);
  // n1 fall -> n2 rise (PO load + self cap).
  const Ff load_po = 5.0 + inv.output_self_cap;
  const double d2 = inv.arcs[0].delay_rise.lookup(s1, load_po);

  bool found = false;
  for (const EndpointTime& e : report.endpoints) {
    if (e.rising) {
      EXPECT_NEAR(e.arrival, d0 + d1 + d2, 1e-9);
      EXPECT_NEAR(e.slack, 500.0 - (d0 + d1 + d2), 1e-9);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  EXPECT_EQ(report.endpoints.size(), 2u);  // rise + fall at one PO
}

TEST(Sta, WorstSlackConsistentWithArrival) {
  const Netlist nl = make_benchmark("adder8");
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.clock_period = 700.0;
  const StaReport r = engine.run(opts);
  EXPECT_NEAR(r.worst_slack, opts.clock_period - r.worst_arrival, 1e-9);
  ASSERT_FALSE(r.endpoints.empty());
  // Endpoints sorted worst-first.
  for (std::size_t i = 1; i < r.endpoints.size(); ++i) {
    EXPECT_GE(r.endpoints[i - 1].arrival, r.endpoints[i].arrival);
  }
  EXPECT_NEAR(r.endpoints.front().arrival, r.worst_arrival, 1e-9);
}

TEST(Sta, PathsMatchArrivalAndAreSorted) {
  const Netlist nl = make_benchmark("adder4");
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.clock_period = 600.0;
  opts.max_paths = 32;
  opts.path_window = 100.0;
  const StaReport r = engine.run(opts);
  ASSERT_FALSE(r.paths.empty());
  // The worst path's arrival equals the worst endpoint arrival.
  EXPECT_NEAR(r.paths[0].arrival, r.worst_arrival, 1e-6);
  for (std::size_t i = 1; i < r.paths.size(); ++i) {
    EXPECT_GE(r.paths[i - 1].arrival, r.paths[i].arrival);
  }
  for (const TimingPath& p : r.paths) {
    // Path starts at a PI and ends at its endpoint.
    EXPECT_TRUE(nl.net(p.points.front().net).is_primary_input);
    EXPECT_EQ(p.points.back().net, p.endpoint);
    EXPECT_NEAR(p.points.back().arrival, p.arrival, 1e-9);
    EXPECT_NEAR(p.slack, opts.clock_period - p.arrival, 1e-9);
    // Cumulative arrivals are nondecreasing.
    for (std::size_t i = 1; i < p.points.size(); ++i) {
      EXPECT_GE(p.points[i].arrival, p.points[i - 1].arrival);
    }
  }
  // Signatures are unique.
  std::vector<std::string> sigs;
  for (const TimingPath& p : r.paths) sigs.push_back(p.signature(nl));
  std::sort(sigs.begin(), sigs.end());
  EXPECT_EQ(std::adjacent_find(sigs.begin(), sigs.end()), sigs.end());
}

TEST(Sta, AnnotationsScaleDelays) {
  const Netlist nl = inv_chain(4);
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.clock_period = 500.0;
  const double base = engine.run(opts).worst_arrival;

  std::vector<DelayAnnotation> ann(nl.num_gates());
  for (auto& a : ann) {
    a.fall_scale = 1.2;
    a.rise_scale = 1.2;
  }
  engine.set_annotations(ann);
  const double slowed = engine.run(opts).worst_arrival;
  // Scaled slews compound downstream, so the chain slows slightly more
  // than the pure delay factor.
  EXPECT_GE(slowed / base, 1.2 - 1e-9);
  EXPECT_LT(slowed / base, 1.35);

  engine.clear_annotations();
  EXPECT_NEAR(engine.run(opts).worst_arrival, base, 1e-9);
}

TEST(Sta, AsymmetricAnnotationAffectsOneTransition) {
  const Netlist nl = inv_chain(1);
  StaEngine engine(nl, lib());
  StaOptions opts;
  std::vector<DelayAnnotation> ann(1);
  ann[0].fall_scale = 2.0;  // only output-fall (input-rise) arcs
  engine.set_annotations(ann);
  const StaReport r = engine.run(opts);
  double fall_at = 0.0, rise_at = 0.0;
  for (const EndpointTime& e : r.endpoints) {
    (e.rising ? rise_at : fall_at) = e.arrival;
  }
  EXPECT_GT(fall_at, rise_at);
}

TEST(Sta, WireDelaysAddedWhenParasiticsSet) {
  const Netlist nl = make_benchmark("c17");
  const PlacedDesign design = place_and_route(nl, lib());
  StaEngine ideal(nl, lib());
  StaEngine wired(nl, lib());
  const Extractor ex(design.tech);
  wired.set_parasitics(ex.extract_design(design));
  StaOptions opts;
  EXPECT_GT(wired.run(opts).worst_arrival, ideal.run(opts).worst_arrival);
}

TEST(Sta, GateSlackIdentifiesCriticalPath) {
  const Netlist nl = make_benchmark("adder8");
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.clock_period = 700.0;
  const StaReport r = engine.run(opts);
  // Gates on the worst path have (near-)worst slack.
  ASSERT_FALSE(r.paths.empty());
  const TimingPath& worst = r.paths[0];
  for (const PathPoint& pt : worst.points) {
    const Net& net = nl.net(pt.net);
    if (net.driver == kNoIndex) continue;
    EXPECT_LT(r.gate_slack[net.driver], r.worst_slack + 1.0)
        << nl.gate(net.driver).name;
  }
  // And no gate slack exceeds the clock period.
  for (Ps s : r.gate_slack) EXPECT_LE(s, opts.clock_period + 1e-9);
}

TEST(Sta, CriticalGatesWindowGrowsMonotonically) {
  const Netlist nl = make_benchmark("adder8");
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.clock_period = 700.0;
  const auto tight = engine.critical_gates(opts, 5.0);
  const auto loose = engine.critical_gates(opts, 100.0);
  EXPECT_FALSE(tight.empty());
  EXPECT_GE(loose.size(), tight.size());
  EXPECT_LT(loose.size(), nl.num_gates() + 1);
  for (GateIdx g : tight) {
    EXPECT_NE(std::find(loose.begin(), loose.end(), g), loose.end());
  }
}

TEST(Paths, CompareRanksIdentity) {
  const Netlist nl = make_benchmark("adder4");
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.max_paths = 24;
  const StaReport r = engine.run(opts);
  const auto cmp = compare_path_ranks(nl, r.paths, r.paths);
  EXPECT_EQ(cmp.matched, r.paths.size());
  EXPECT_NEAR(cmp.spearman, 1.0, 1e-12);
  EXPECT_NEAR(cmp.kendall, 1.0, 1e-12);
  EXPECT_EQ(cmp.top10_displaced, 0u);
  EXPECT_EQ(cmp.rank1_changed, 0u);
}

TEST(Paths, CompareRanksDetectsReordering) {
  const Netlist nl = make_benchmark("adder4");
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.max_paths = 24;
  const StaReport base = engine.run(opts);

  // Slow down one mid-ranked path's driver enough to reorder.
  ASSERT_GT(base.paths.size(), 4u);
  const TimingPath& target = base.paths[base.paths.size() / 2];
  std::vector<DelayAnnotation> ann(nl.num_gates());
  const NetIdx mid_net = target.points[target.points.size() / 2].net;
  ASSERT_NE(nl.net(mid_net).driver, kNoIndex);
  ann[nl.net(mid_net).driver].fall_scale = 1.6;
  ann[nl.net(mid_net).driver].rise_scale = 1.6;
  engine.set_annotations(ann);
  const StaReport mod = engine.run(opts);

  const auto cmp = compare_path_ranks(nl, base.paths, mod.paths);
  EXPECT_GT(cmp.matched, 4u);
  EXPECT_LT(cmp.spearman, 0.9999);
  EXPECT_GT(cmp.max_rank_shift, 0.0);
}

TEST(Paths, FormatPathReadable) {
  const Netlist nl = inv_chain(2);
  StaEngine engine(nl, lib());
  const StaReport r = engine.run({});
  ASSERT_FALSE(r.paths.empty());
  const std::string s = format_path(nl, r.paths[0]);
  EXPECT_NE(s.find("in"), std::string::npos);
  EXPECT_NE(s.find("arrival="), std::string::npos);
}

TEST(Sta, CrossValidatedAgainstTransistorLevelTransient) {
  // End-to-end abstraction check: the NLDM-table STA on a 3-inverter chain
  // must agree with a full transistor-level transient simulation of the
  // same chain within table-interpolation accuracy.
  const std::size_t stages = 3;
  const Netlist nl = inv_chain(stages);
  StaEngine engine(nl, lib());
  StaOptions opts;
  opts.input_slew = 50.0;
  opts.po_load_ff = 10.0;
  const StaReport sta = engine.run(opts);

  // Build the same chain in the circuit simulator.
  const CharParams& cp = lib().char_params();
  const CellSpec& inv = lib().spec("INV_X1");
  Circuit ckt;
  const NodeId vdd = ckt.add_node();
  ckt.add_vsource(vdd, Pwl::constant(cp.nmos.vdd));
  const NodeId in = ckt.add_node();
  // STA's PI fall arrival is at t=0 with 50 ps slew; mimic that ramp.
  ckt.add_vsource(in, Pwl::ramp(200.0, 50.0, cp.nmos.vdd, 0.0));
  std::vector<NodeId> nodes{in};
  for (std::size_t s = 0; s < stages; ++s) {
    const NodeId out = ckt.add_node();
    MosfetInst mn;
    mn.params = cp.nmos;
    mn.width_um = inv.nmos_w_um;
    mn.drain = out;
    mn.gate = nodes.back();
    mn.source = kGround;
    ckt.add_mosfet(mn);
    MosfetInst mp;
    mp.params = cp.pmos;
    mp.width_um = inv.pmos_w_um;
    mp.drain = out;
    mp.gate = nodes.back();
    mp.source = vdd;
    ckt.add_mosfet(mp);
    // Diffusion self-load as characterization assumed.
    ckt.add_cap(out, cp.cdiff_ff_per_um * (inv.nmos_w_um + inv.pmos_w_um));
    // Next stage's gate cap, or the PO load at the end.
    ckt.add_cap(out, s + 1 < stages ? input_cap_ff(inv, cp) : 10.0);
    nodes.push_back(out);
  }
  TransientOptions topt;
  topt.t_end = 1200.0;
  const TransientResult sim = simulate(ckt, topt);
  ASSERT_TRUE(sim.converged);
  // Input 50% at 225 ps; output (falling chain, odd stages -> rising out).
  const auto t_out = sim.traces[nodes.back()].cross_time(
      cp.nmos.vdd / 2.0, true, 200.0);
  ASSERT_TRUE(t_out.has_value());
  const double spice_delay = *t_out - 225.0;
  // STA's matching endpoint: rising arrival.
  double sta_delay = 0.0;
  for (const EndpointTime& e : sta.endpoints) {
    if (e.rising) sta_delay = e.arrival;
  }
  ASSERT_GT(sta_delay, 0.0);
  // NLDM tables are characterized with linear input ramps while the real
  // chain propagates exponential-tailed waveforms; the resulting waveform-
  // shape error is the known accuracy bound of the table abstraction
  // (production NLDM sits in the same 5-20 % band vs SPICE, on the
  // pessimistic side).  Guard the band and the sign.
  EXPECT_GT(sta_delay, spice_delay);  // pessimistic, never optimistic
  EXPECT_NEAR(sta_delay / spice_delay, 1.0, 0.20)
      << "sta " << sta_delay << " vs transient " << spice_delay;
}

TEST(Sta, DegradedSlewFormula) {
  EXPECT_DOUBLE_EQ(StaEngine::degraded_slew(40.0, 0.0), 40.0);
  // RMS combination: sqrt(30^2 + (2.2*10)^2).
  EXPECT_NEAR(StaEngine::degraded_slew(30.0, 10.0),
              std::sqrt(30.0 * 30.0 + 22.0 * 22.0), 1e-12);
  EXPECT_GT(StaEngine::degraded_slew(30.0, 20.0),
            StaEngine::degraded_slew(30.0, 10.0));
}

TEST(Sta, WireSlewDegradationSlowsDownstreamStages) {
  // Same netlist, same wire delay, but compare against hand-computed
  // arrival that includes the degraded slew at the sink.
  Netlist nl("t");
  const NetIdx in = nl.add_net("in");
  nl.mark_primary_input(in);
  const NetIdx mid = nl.add_net("mid");
  const NetIdx out = nl.add_net("out");
  nl.add_gate("g0", "INV_X1", {in}, mid);
  nl.add_gate("g1", "INV_X1", {mid}, out);
  nl.mark_primary_output(out);

  StaEngine engine(nl, lib());
  std::vector<NetParasitics> para(nl.num_nets());
  SinkParasitics sp;
  sp.sink_gate = 1;
  sp.sink_pin = 0;
  sp.path_res = 500.0;
  sp.elmore_ps = 20.0;
  para[mid].wire_cap = 10.0;
  para[mid].sinks.push_back(sp);
  engine.set_parasitics(std::move(para));
  StaOptions opts;
  const StaReport r = engine.run(opts);

  const CellTiming& inv = lib().timing("INV_X1");
  const Ff load_mid = 10.0 + inv.input_caps[0] + inv.output_self_cap;
  const Ff load_out = opts.po_load_ff + inv.output_self_cap;
  const double d0 = inv.arcs[0].delay_rise.lookup(opts.input_slew, load_mid);
  const double s0 = inv.arcs[0].slew_rise.lookup(opts.input_slew, load_mid);
  const double s0_sink = StaEngine::degraded_slew(s0, 20.0);
  const double d1 = inv.arcs[0].delay_fall.lookup(s0_sink, load_out);
  bool checked = false;
  for (const EndpointTime& e : r.endpoints) {
    if (!e.rising) {
      EXPECT_NEAR(e.arrival, d0 + 20.0 + d1, 1e-9);
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(Sta, LateDerateScalesArrivalsUniformly) {
  const Netlist nl = make_benchmark("adder4");
  StaEngine engine(nl, lib());
  StaOptions opts;
  const double base = engine.run(opts).worst_arrival;
  opts.late_derate = 1.08;
  const StaReport derated = engine.run(opts);
  // Wire delays (none here) are not derated; pure-cell paths scale exactly.
  EXPECT_NEAR(derated.worst_arrival / base, 1.08, 1e-9);
  // Paths re-enumerate consistently under derate.
  ASSERT_FALSE(derated.paths.empty());
  EXPECT_NEAR(derated.paths[0].arrival, derated.worst_arrival, 1e-6);
}

TEST(Sta, LeakageSumAndScaling) {
  const Netlist nl = make_benchmark("c17");
  StaEngine engine(nl, lib());
  const double base = engine.run({}).total_leakage_ua;
  EXPECT_NEAR(base, 6.0 * lib().timing("NAND2_X1").leakage_ua, 1e-9);
  std::vector<DelayAnnotation> ann(nl.num_gates());
  for (auto& a : ann) a.leak_scale = 3.0;
  engine.set_annotations(ann);
  EXPECT_NEAR(engine.run({}).total_leakage_ua, 3.0 * base, 1e-9);
}

// ----------------------------------------------------------- path ordering

std::vector<std::string> path_signatures(const Netlist& nl,
                                         const std::vector<TimingPath>& ps) {
  std::vector<std::string> sigs;
  for (const TimingPath& p : ps) sigs.push_back(p.signature(nl));
  return sigs;
}

TEST(Paths, TiesBreakByPinIdNotTraversalOrder) {
  // Two identical inverters off one PI: every arrival ties pairwise across
  // o0/o1.  The order must be pinned by net id (o0 before o1, rise before
  // fall at the same net), independent of the order gates were declared —
  // i.e. of levelization/traversal order.
  const auto build = [](bool reversed) {
    Netlist nl("tie");
    const NetIdx in = nl.add_net("in");
    nl.mark_primary_input(in);
    const NetIdx o0 = nl.add_net("o0");
    const NetIdx o1 = nl.add_net("o1");
    if (reversed) {
      nl.add_gate("g1", "INV_X1", {in}, o1);
      nl.add_gate("g0", "INV_X1", {in}, o0);
    } else {
      nl.add_gate("g0", "INV_X1", {in}, o0);
      nl.add_gate("g1", "INV_X1", {in}, o1);
    }
    nl.mark_primary_output(o0);
    nl.mark_primary_output(o1);
    return nl;
  };
  const Netlist a = build(false);
  const Netlist b = build(true);
  const StaReport ra = StaEngine(a, lib()).run({});
  const StaReport rb = StaEngine(b, lib()).run({});
  ASSERT_EQ(ra.paths.size(), 4u);
  // Equal-arrival groups ordered by endpoint net id, rise before fall.
  for (std::size_t i = 0; i + 1 < ra.paths.size(); ++i) {
    ASSERT_GE(ra.paths[i].arrival, ra.paths[i + 1].arrival);
    if (ra.paths[i].arrival == ra.paths[i + 1].arrival) {
      EXPECT_LT(ra.paths[i].endpoint, ra.paths[i + 1].endpoint);
    }
  }
  // Declaration order (levelization) must not leak into the ranking.
  EXPECT_EQ(path_signatures(a, ra.paths), path_signatures(b, rb.paths));
  // The warm graph enumerates through the same code and ties.
  TimingGraph graph(a, lib());
  EXPECT_EQ(path_signatures(a, graph.report().paths),
            path_signatures(a, ra.paths));
}

// ---------------------------------------------------------- timing service

void expect_paths_bit_eq(const Netlist& nl, const std::vector<TimingPath>& a,
                         const std::vector<TimingPath>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].signature(nl), b[i].signature(nl)) << "path " << i;
    EXPECT_EQ(a[i].arrival, b[i].arrival) << "path " << i;
    EXPECT_EQ(a[i].slack, b[i].slack) << "path " << i;
  }
}

TEST(TimingService, QueriesUnchangedAcrossInterleavedRetime) {
  const Netlist nl = make_benchmark("adder8");
  TimingService svc(nl, lib());

  const Ps ws0 = svc.worst_slack();
  const auto paths0 = svc.paths(6);
  std::vector<Ps> slack0;
  for (NetIdx e : nl.primary_outputs()) slack0.push_back(svc.slack(e));

  // whatif is apply-measure-revert: answers afterwards are bit-identical.
  std::vector<GateRetime> candidate;
  candidate.push_back({3, {1.3, 1.25, 1.1}});
  candidate.push_back({11, {0.9, 0.95, 1.0}});
  const WhatIfReport wr = svc.whatif(candidate);
  EXPECT_EQ(wr.worst_slack_before, ws0);
  EXPECT_EQ(wr.gates_changed, 2u);
  EXPECT_NE(wr.worst_slack_after, ws0);
  EXPECT_EQ(svc.worst_slack(), ws0);
  expect_paths_bit_eq(nl, svc.paths(6), paths0);

  // Interleaved retime: answers track a from-scratch engine over the new
  // state; retiming back restores every answer bitwise.
  const RetimeReport rr = svc.retime(candidate);
  EXPECT_EQ(rr.worst_slack_before, ws0);
  EXPECT_EQ(rr.worst_slack_after, wr.worst_slack_after);
  std::vector<DelayAnnotation> full(nl.num_gates());
  full[3] = {1.3, 1.25, 1.1};
  full[11] = {0.9, 0.95, 1.0};
  TimingGraph fresh(nl, lib());
  fresh.set_annotations(full);
  EXPECT_EQ(svc.worst_slack(), fresh.worst_slack());
  expect_paths_bit_eq(nl, svc.paths(6), fresh.top_paths(6));

  std::vector<GateRetime> revert;
  revert.push_back({3, {}});
  revert.push_back({11, {}});
  svc.retime(revert);
  EXPECT_EQ(svc.worst_slack(), ws0);
  expect_paths_bit_eq(nl, svc.paths(6), paths0);
  std::size_t k = 0;
  for (NetIdx e : nl.primary_outputs()) EXPECT_EQ(svc.slack(e), slack0[k++]);

  EXPECT_GE(svc.retime_stats().count, 2u);
  EXPECT_GE(svc.whatif_stats().count, 1u);
  EXPECT_FALSE(svc.stats_summary().empty());
}

TEST(TimingService, WhatIfOnJournaledFlowKeepsReplayBitIdentical) {
  // A whatif re-extracts windows at a different exposure through a
  // journaled flow, appending records a plain run never wrote.  Replay
  // looks records up by content fingerprint, so the extra records must be
  // ignored and a resumed run must stay bit-identical to an unjournaled
  // reference.
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() / "poc_sta_whatif_journal";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const Netlist nl = make_benchmark("c17");
  const PlacedDesign design = place_and_route(nl, lib());
  FlowOptions base;
  base.sta.clock_period = 90.0;
  base.cache.enabled = false;  // exact replay counters

  // Unjournaled ground truth.
  TimingComparison ref;
  {
    PostOpcFlow flow(design, lib(), LithoSimulator{}, base);
    flow.run_opc(OpcMode::kRuleBased);
    ref = flow.compare_timing({});
  }

  FlowOptions journaled = base;
  journaled.journal.enabled = true;
  journaled.journal.path = dir.string();
  {
    PostOpcFlow flow(design, lib(), LithoSimulator{}, journaled);
    flow.run_opc(OpcMode::kRuleBased);
    const TimingComparison cmp = flow.compare_timing({});
    EXPECT_EQ(cmp.annotated.worst_slack, ref.annotated.worst_slack);

    // whatif against the warm service: off-nominal re-extraction of a few
    // gates (journaled under different fingerprints), applied and reverted.
    TimingService svc = flow.make_timing_service();
    svc.load_annotations(flow.annotate(flow.extract({})));
    Exposure shifted;
    shifted.focus_nm = 60.0;
    const std::vector<GateIdx> subset{0, 1, 2};
    const auto ann = flow.annotate(flow.extract(shifted, subset));
    std::vector<GateRetime> candidate;
    for (GateIdx g : subset) candidate.push_back({g, ann[g]});
    const WhatIfReport wr = svc.whatif(candidate);
    EXPECT_EQ(wr.worst_slack_before, svc.worst_slack());
  }

  // Resume from the journal (now containing the whatif's extra records):
  // replay must be bit-identical to the reference.
  {
    PostOpcFlow flow(design, lib(), LithoSimulator{}, journaled);
    flow.run_opc(OpcMode::kRuleBased);
    const TimingComparison cmp = flow.compare_timing({});
    EXPECT_EQ(cmp.drawn.worst_slack, ref.drawn.worst_slack);
    EXPECT_EQ(cmp.annotated.worst_slack, ref.annotated.worst_slack);
    EXPECT_EQ(cmp.annotated.worst_arrival, ref.annotated.worst_arrival);
    EXPECT_EQ(cmp.annotated.total_leakage_ua, ref.annotated.total_leakage_ua);
    ASSERT_EQ(cmp.annotated.gate_slack.size(), ref.annotated.gate_slack.size());
    for (std::size_t g = 0; g < cmp.annotated.gate_slack.size(); ++g) {
      EXPECT_EQ(cmp.annotated.gate_slack[g], ref.annotated.gate_slack[g]);
    }
    EXPECT_GT(flow.journal_stats().replayed_hits, 0u)
        << "resume must replay, not recompute";
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace poc
