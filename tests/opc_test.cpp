// Tests for the OPC engine: fragmentation structure, fragment application
// geometry, rule-based bias, SRAF insertion, model-based convergence and
// ORC verification.
#include <cmath>

#include <gtest/gtest.h>

#include "src/cdx/contour.h"
#include "src/common/check.h"
#include "src/geom/polygon_ops.h"
#include "src/litho/simulator.h"
#include "src/opc/fragment.h"
#include "src/opc/opc_engine.h"
#include "src/opc/orc.h"
#include "src/opc/rule_opc.h"
#include "src/opc/sraf.h"

namespace poc {
namespace {

TEST(Fragmentation, ShortEdgeSingleFragment) {
  // 90 nm-wide line: the two 90 nm edges are below min_edge_for_corners.
  const Polygon line = Polygon::from_rect({0, 0, 90, 800});
  const auto frags = fragment_polygons({line});
  // Long edges: 2 corners + ceil(730/70)=11 interior = 13 each.
  // Short edges: 1 each.
  std::size_t line_end = 0, corner = 0;
  for (const Fragment& f : frags) {
    if (f.at_line_end) ++line_end;
    if (f.at_corner) ++corner;
  }
  EXPECT_EQ(line_end, 2u);
  EXPECT_EQ(corner, 4u);
  EXPECT_EQ(frags.size(), 2u * 13u + 2u);
}

TEST(Fragmentation, SpansCoverEdgesExactly) {
  const Polygon line = Polygon::from_rect({0, 0, 90, 800});
  const auto frags = fragment_polygons({line});
  // Per edge: fragments tile [0, len] without gaps or overlaps.
  for (std::size_t e = 0; e < 4; ++e) {
    DbUnit expect_start = 0;
    DbUnit len = 0;
    for (const Fragment& f : frags) {
      if (f.edge != e) continue;
      EXPECT_EQ(f.s, expect_start);
      EXPECT_GT(f.e, f.s);
      expect_start = f.e;
      len = f.e;
    }
    EXPECT_EQ(len, line.edge(e).length());
  }
}

TEST(Fragmentation, ControlPointsOnEdges) {
  const Polygon poly = Polygon::from_rect({0, 0, 300, 500});
  for (const Fragment& f : fragment_polygons({poly})) {
    EXPECT_TRUE(poly.contains(f.ctrl));
  }
}

TEST(ApplyFragments, ZeroBiasIsIdentity) {
  const Polygon line = Polygon::from_rect({0, 0, 90, 600});
  auto frags = fragment_polygons({line});
  const auto out = apply_fragments({line}, frags);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].area(), line.area());
  EXPECT_EQ(out[0].bbox(), line.bbox());
}

TEST(ApplyFragments, UniformBiasInflates) {
  const Polygon line = Polygon::from_rect({0, 0, 90, 600});
  auto frags = fragment_polygons({line});
  for (Fragment& f : frags) f.bias = 5;
  const auto out = apply_fragments({line}, frags);
  EXPECT_EQ(out[0].bbox(), (Rect{-5, -5, 95, 605}));
  EXPECT_DOUBLE_EQ(out[0].area(), 100.0 * 610.0);
}

TEST(ApplyFragments, SingleFragmentJogs) {
  const Polygon line = Polygon::from_rect({0, 0, 90, 600});
  auto frags = fragment_polygons({line});
  // Bias exactly one interior fragment of the long left edge outward.
  for (Fragment& f : frags) {
    if (f.edge == 3 && !f.at_corner && f.bias == 0) {
      f.bias = 8;
      break;
    }
  }
  const auto out = apply_fragments({line}, frags);
  // Area grows by fragment_length * 8.
  DbUnit frag_len = 0;
  for (const Fragment& f : frags) {
    if (f.bias == 8) frag_len = f.e - f.s;
  }
  EXPECT_GT(frag_len, 0);
  EXPECT_DOUBLE_EQ(out[0].area(),
                   line.area() + static_cast<double>(frag_len) * 8.0);
}

TEST(ApplyFragments, MultiPolygonOrderPreserved) {
  const Polygon a = Polygon::from_rect({0, 0, 90, 300});
  const Polygon b = Polygon::from_rect({300, 0, 390, 300});
  auto frags = fragment_polygons({a, b});
  const auto out = apply_fragments({a, b}, frags);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].bbox(), a.bbox());
  EXPECT_EQ(out[1].bbox(), b.bbox());
}

TEST(RuleOpc, SpacingMeasuredToFacingSolid) {
  const Polygon a = Polygon::from_rect({0, 0, 90, 500});
  const Polygon b = Polygon::from_rect({290, 0, 380, 500});
  std::vector<Rect> solids;
  for (const Rect& r : decompose(a)) solids.push_back(r);
  for (const Rect& r : decompose(b)) solids.push_back(r);
  Fragment f;
  f.ctrl = {90, 250};
  f.outward = Dir::kEast;
  EXPECT_EQ(fragment_spacing(f, solids, 10000), 200);  // to the facing line
  f.ctrl = {91, 250};
  EXPECT_EQ(fragment_spacing(f, solids, 10000), 199);
  f.outward = Dir::kWest;
  EXPECT_EQ(fragment_spacing(f, solids, 10000), 1);  // own polygon behind
}

TEST(RuleOpc, DenseGetsSmallerBiasThanIso) {
  const Polygon centre = Polygon::from_rect({0, 0, 90, 500});
  const Polygon near = Polygon::from_rect({250, 0, 340, 500});
  const RuleOpcTable table;
  // Dense pair: east edge of centre faces `near` at 160 nm.
  {
    std::vector<Fragment> frags = fragment_polygons({centre, near});
    rule_based_opc({centre, near}, frags, table);
    for (const Fragment& f : frags) {
      if (f.poly == 0 && f.outward == Dir::kEast && !f.at_corner) {
        EXPECT_EQ(f.bias, table.rows[0].second);  // <= 180 row
      }
    }
  }
  // Isolated line: all long-edge biases at iso value.
  {
    std::vector<Fragment> frags = fragment_polygons({centre});
    rule_based_opc({centre}, frags, table);
    for (const Fragment& f : frags) {
      if (!f.at_line_end && f.outward == Dir::kEast && !f.at_corner) {
        EXPECT_EQ(f.bias, table.iso_bias);
      }
      if (f.at_line_end) {
        EXPECT_EQ(f.bias, table.iso_bias + table.line_end_bias);
      }
    }
  }
}

TEST(Sraf, IsolatedEdgeGetsBar) {
  const Polygon line = Polygon::from_rect({0, 0, 90, 800});
  const auto bars = insert_srafs({line}, {-1000, -200, 1090, 1000});
  // Both long edges isolated -> two bars.
  ASSERT_EQ(bars.size(), 2u);
  for (const Rect& b : bars) {
    EXPECT_EQ(b.width(), 40);
    // 170 nm from the target edge.
    EXPECT_TRUE(b.xlo == 90 + 170 || b.xhi == 0 - 170);
  }
}

TEST(Sraf, DenseEdgesGetNoBar) {
  const Polygon a = Polygon::from_rect({0, 0, 90, 800});
  const Polygon b = Polygon::from_rect({250, 0, 340, 800});
  const auto bars = insert_srafs({a, b}, {-1000, -200, 1400, 1000});
  // Only the two outer edges qualify; the facing inner edges are dense.
  EXPECT_EQ(bars.size(), 2u);
  for (const Rect& bar : bars) {
    EXPECT_TRUE(bar.xhi <= 0 || bar.xlo >= 340);
  }
}

TEST(Sraf, BarsNeverOverlapTargets) {
  const Polygon a = Polygon::from_rect({0, 0, 90, 800});
  const auto bars = insert_srafs({a}, {-1000, -1000, 1200, 1800});
  for (const Rect& bar : bars) {
    for (const Rect& solid : decompose(a)) {
      EXPECT_FALSE(bar.intersects(solid));
    }
  }
}

class OpcConvergence : public ::testing::Test {
 protected:
  LithoSimulator sim_;
};

TEST_F(OpcConvergence, IsolatedLineEpeShrinks) {
  const Polygon line = Polygon::from_rect({0, -400, 90, 400});
  const Rect window{-700, -1100, 790, 1100};
  OpcOptions opts;
  opts.max_iterations = 7;
  OpcEngine engine(sim_, opts);
  const OpcResult result = engine.correct({line}, window);
  ASSERT_GE(result.iterations, 2u);
  // First-iteration EPE (uncorrected) is large; final body EPE is small.
  EXPECT_GT(result.max_epe_history.front(), 5.0);
  EXPECT_LT(result.rms_epe_body_nm, result.rms_epe_history.front() / 2.0);
  EXPECT_LT(result.rms_epe_body_nm, 2.0);
  // Corner rounding keeps the all-fragment number higher — that residual
  // is physical, not a convergence failure.
  EXPECT_GE(result.max_abs_epe_nm, result.max_abs_epe_body_nm);
}

TEST_F(OpcConvergence, DenseArrayConverges) {
  std::vector<Polygon> lines;
  for (int k = -2; k <= 2; ++k) {
    lines.push_back(
        Polygon::from_rect({k * 250, -400, k * 250 + 90, 400}));
  }
  const Rect window{-950, -1000, 1040, 1000};
  OpcEngine engine(sim_, OpcOptions{});
  const OpcResult result = engine.correct(lines, window);
  EXPECT_EQ(result.corrected.size(), lines.size());
  EXPECT_LT(result.rms_epe_body_nm, 2.0);
  // The corrected mask must differ from the target (bias applied).
  bool any_bias = false;
  for (const Fragment& f : result.fragments) {
    if (f.bias != 0) any_bias = true;
  }
  EXPECT_TRUE(any_bias);
}

TEST_F(OpcConvergence, CorrectionImprovesPrintedCd) {
  const Polygon line = Polygon::from_rect({0, -400, 90, 400});
  const Rect window{-700, -1100, 790, 1100};
  OpcEngine engine(sim_, OpcOptions{});
  const OpcResult result = engine.correct({line}, window);

  const auto printed_cd = [&](const std::vector<Rect>& mask) {
    const Image2D latent =
        sim_.latent(mask, window, {}, LithoQuality::kStandard);
    std::optional<double> w = printed_width(
        latent, sim_.print_threshold(), {45.0, 0.0}, true, 300.0);
    return w.value_or(0.0);
  };
  const double cd_before = printed_cd(decompose(line));
  const double cd_after = printed_cd(result.mask_rects());
  EXPECT_GT(std::abs(cd_before - 90.0), std::abs(cd_after - 90.0));
  EXPECT_NEAR(cd_after, 90.0, 2.5);
}

TEST_F(OpcConvergence, MeasureEpeSaturatesOnMissingFeature) {
  const Polygon line = Polygon::from_rect({0, -400, 90, 400});
  const Rect window{-700, -1100, 790, 1100};
  OpcOptions opts;
  OpcEngine engine(sim_, opts);
  std::vector<Fragment> frags = fragment_polygons({line});
  // Empty mask: nothing prints, EPE saturates at -probe_inside.
  engine.measure_epe(frags, {}, window, {}, LithoQuality::kDraft);
  for (const Fragment& f : frags) {
    EXPECT_DOUBLE_EQ(f.epe_nm, -opts.probe_inside_nm);
  }
}

TEST_F(OpcConvergence, OrcCleanAfterOpcAndFlagsPinchWithout) {
  const Polygon line = Polygon::from_rect({0, -400, 90, 400});
  const Rect window{-700, -1100, 790, 1100};
  OpcEngine engine(sim_, OpcOptions{});
  const OpcResult result = engine.correct({line}, window);

  OrcOptions orc_opts;
  orc_opts.epe_limit_nm = 5.0;
  const OrcReport good = run_orc(sim_, engine, {line}, result.mask_rects(),
                                 window, {}, orc_opts);
  EXPECT_LT(good.max_abs_epe_nm, 5.0);
  EXPECT_TRUE(good.clean()) << good.violations.size();

  // Uncorrected mask at high dose: line thins badly -> pinch or EPE hits.
  const OrcReport bad = run_orc(sim_, engine, {line}, decompose(line), window,
                                {0.0, 1.15}, orc_opts);
  EXPECT_FALSE(bad.clean());
}

TEST(OrcViolation, Describe) {
  OrcViolation v{OrcViolation::Kind::kPinch, {10, 20}, 55.0};
  const std::string s = v.describe();
  EXPECT_NE(s.find("PINCH"), std::string::npos);
  EXPECT_NE(s.find("55"), std::string::npos);
}

}  // namespace
}  // namespace poc
