// Tests for the alpha-power MOSFET model and the non-rectangular
// (slice-based) equivalent-gate model.
#include <cmath>

#include <gtest/gtest.h>

#include "src/device/mosfet.h"
#include "src/device/nonrect.h"

namespace poc {
namespace {

TEST(Mosfet, VthRollOffMonotoneInL) {
  const MosfetParams p = MosfetParams::nmos();
  EXPECT_LT(p.vth(70.0), p.vth(90.0));
  EXPECT_LT(p.vth(90.0), p.vth(150.0));
  // Long channel approaches vth_long.
  EXPECT_NEAR(p.vth(400.0), p.vth_long, 1e-4);
}

TEST(Mosfet, IonDecreasesWithL) {
  const MosfetParams p = MosfetParams::nmos();
  EXPECT_GT(p.ion_per_um(80.0), p.ion_per_um(90.0));
  EXPECT_GT(p.ion_per_um(90.0), p.ion_per_um(100.0));
}

TEST(Mosfet, IoffExponentialSensitivity) {
  const MosfetParams p = MosfetParams::nmos();
  const double r_drive = p.ion_per_um(80.0) / p.ion_per_um(90.0);
  const double r_leak = p.ioff_per_um(80.0) / p.ioff_per_um(90.0);
  // Leakage grows much faster than drive as L shrinks.
  EXPECT_GT(r_leak, r_drive * 1.2);
  EXPECT_GT(r_leak, 1.3);
}

TEST(Mosfet, PmosWeakerThanNmos) {
  EXPECT_LT(MosfetParams::pmos().ion_per_um(90.0),
            MosfetParams::nmos().ion_per_um(90.0));
}

TEST(Mosfet, IdSurfaceContinuity) {
  const MosfetParams p = MosfetParams::nmos();
  const double vgs = 1.0;
  const double vov = vgs - p.vth(90.0);
  const double vdsat = p.kv_sat * std::pow(vov, p.alpha / 2.0);
  // Continuous across the saturation boundary.
  EXPECT_NEAR(p.id_per_um(vgs, vdsat - 1e-6, 90.0),
              p.id_per_um(vgs, vdsat + 1e-6, 90.0), 1e-3);
  // Continuous across threshold (subthreshold meets strong inversion
  // within a modest factor; check no discontinuity explosion).
  const double vt = p.vth(90.0);
  const double below = p.id_per_um(vt - 1e-5, 0.6, 90.0);
  const double above = p.id_per_um(vt + 1e-5, 0.6, 90.0);
  EXPECT_GT(below, 0.0);
  EXPECT_LT(std::abs(above - below) / below, 0.5);
}

TEST(Mosfet, IdZeroAtZeroVds) {
  const MosfetParams p = MosfetParams::nmos();
  EXPECT_DOUBLE_EQ(p.id_per_um(1.2, 0.0, 90.0), 0.0);
  EXPECT_DOUBLE_EQ(p.id_per_um(1.2, -0.1, 90.0), 0.0);
}

TEST(Mosfet, IdMonotoneInVgsAndVds) {
  const MosfetParams p = MosfetParams::nmos();
  double prev = 0.0;
  for (double vgs = 0.2; vgs <= 1.2; vgs += 0.1) {
    const double id = p.id_per_um(vgs, 1.2, 90.0);
    EXPECT_GE(id, prev);
    prev = id;
  }
  prev = 0.0;
  for (double vds = 0.05; vds <= 1.2; vds += 0.05) {
    const double id = p.id_per_um(1.0, vds, 90.0);
    EXPECT_GE(id, prev - 1e-12);
    prev = id;
  }
}

TEST(Mosfet, SubthresholdSlopeDecade) {
  const MosfetParams p = MosfetParams::nmos();
  const double vt = p.vth(90.0);
  // n * vt * ln(10) per decade.
  const double i1 = p.id_per_um(vt - 0.2, 1.2, 90.0);
  const double i2 = p.id_per_um(vt - 0.2 + p.subthreshold_n * p.temp_vt *
                                             std::log(10.0),
                                1.2, 90.0);
  EXPECT_NEAR(i2 / i1, 10.0, 0.01);
}

TEST(Solvers, RoundTripIonIoff) {
  const MosfetParams p = MosfetParams::nmos();
  for (double l : {70.0, 90.0, 120.0}) {
    EXPECT_NEAR(solve_length_for_ion(p, p.ion_per_um(l)), l, 0.01);
    EXPECT_NEAR(solve_length_for_ioff(p, p.ioff_per_um(l)), l, 0.01);
  }
}

TEST(Solvers, ClampAtBracketEdges) {
  const MosfetParams p = MosfetParams::nmos();
  EXPECT_DOUBLE_EQ(solve_length_for_ion(p, p.ion_per_um(40.0) * 10.0), 40.0);
  EXPECT_DOUBLE_EQ(solve_length_for_ion(p, p.ion_per_um(250.0) / 10.0), 250.0);
}

GateCdProfile profile_of(std::vector<double> cds, double drawn = 90.0) {
  GateCdProfile prof;
  prof.slice_cd_nm = std::move(cds);
  prof.drawn_cd_nm = drawn;
  prof.slice_width_nm = 600.0 / static_cast<double>(prof.slice_cd_nm.size());
  return prof;
}

TEST(EquivalentGate, UniformSlicesMatchRectangular) {
  const MosfetParams p = MosfetParams::nmos();
  const EquivalentGate eq =
      equivalent_gate(profile_of({85.0, 85.0, 85.0, 85.0, 85.0}), 600.0, p);
  EXPECT_NEAR(eq.l_eff_drive_nm, 85.0, 0.05);
  EXPECT_NEAR(eq.l_eff_leak_nm, 85.0, 0.05);
  EXPECT_NEAR(eq.l_mean_nm, 85.0, 1e-9);
  EXPECT_TRUE(eq.functional);
  EXPECT_NEAR(eq.ion_ua, p.ion_per_um(85.0) * 0.6, 1e-6);
}

TEST(EquivalentGate, LeakLeffBelowDriveLeffForNonUniform) {
  // Mixed profile: leakage is dominated by the shortest slices.
  const MosfetParams p = MosfetParams::nmos();
  const EquivalentGate eq =
      equivalent_gate(profile_of({80.0, 85.0, 90.0, 95.0, 100.0}), 600.0, p);
  EXPECT_LT(eq.l_eff_leak_nm, eq.l_eff_drive_nm);
  EXPECT_LT(eq.l_eff_drive_nm, eq.l_mean_nm);  // drive favours short slices
}

TEST(EquivalentGate, SeparateLeffsDivergeWithSpread) {
  const MosfetParams p = MosfetParams::nmos();
  const EquivalentGate tight =
      equivalent_gate(profile_of({89.0, 90.0, 91.0}), 600.0, p);
  const EquivalentGate wide =
      equivalent_gate(profile_of({78.0, 90.0, 102.0}), 600.0, p);
  const double gap_tight = tight.l_eff_drive_nm - tight.l_eff_leak_nm;
  const double gap_wide = wide.l_eff_drive_nm - wide.l_eff_leak_nm;
  EXPECT_GT(gap_wide, gap_tight * 2.0);
}

TEST(EquivalentGate, PinchedSliceMarksNonFunctional) {
  const MosfetParams p = MosfetParams::nmos();
  const EquivalentGate eq =
      equivalent_gate(profile_of({90.0, 0.0, 90.0}), 600.0, p);
  EXPECT_FALSE(eq.functional);
  // Remaining slices still conduct.
  EXPECT_GT(eq.ion_ua, 0.0);
  EXPECT_LT(eq.ion_ua, p.ion_per_um(90.0) * 0.6 * 0.75);
}

TEST(EquivalentGate, RatiosAgainstDrawn) {
  const MosfetParams p = MosfetParams::nmos();
  const EquivalentGate shorter =
      equivalent_gate(profile_of({84.0, 84.0, 84.0}), 600.0, p);
  EXPECT_GT(shorter.drive_ratio_vs(90.0, p), 1.0);   // faster than drawn
  EXPECT_GT(shorter.leak_ratio_vs(90.0, p), 1.3);    // much leakier
  const EquivalentGate longer =
      equivalent_gate(profile_of({96.0, 96.0, 96.0}), 600.0, p);
  EXPECT_LT(longer.drive_ratio_vs(90.0, p), 1.0);
  EXPECT_LT(longer.leak_ratio_vs(90.0, p), 1.0);
}

TEST(EquivalentGate, AsymmetricLeakage) {
  // +/-6 nm slices: leakage of the short slice dominates the average;
  // the 36 % claim in the paper depends on this convexity.
  const MosfetParams p = MosfetParams::nmos();
  const EquivalentGate sym =
      equivalent_gate(profile_of({84.0, 96.0}), 600.0, p);
  const EquivalentGate flat =
      equivalent_gate(profile_of({90.0, 90.0}), 600.0, p);
  EXPECT_GT(sym.ioff_ua, flat.ioff_ua * 1.05);
}

}  // namespace
}  // namespace poc
