// Tests for the layout database: cell/instance management, window
// flattening, gate resolution and text serialization.
#include <gtest/gtest.h>

#include "src/common/check.h"
#include "src/geom/polygon_ops.h"
#include "src/layout/layout_db.h"
#include "src/layout/layout_io.h"
#include "src/layout/svg_dump.h"
#include "src/layout/tech.h"

namespace poc {
namespace {

CellLayout simple_cell(const std::string& name) {
  CellLayout cell;
  cell.name = name;
  cell.boundary = {0, 0, 300, 2400};
  cell.add_rect(Layer::kPoly, {105, 200, 195, 2300});
  cell.add_rect(Layer::kActive, {40, 300, 260, 900});
  GateInfo g;
  g.device = "MN_A_0";
  g.is_nmos = true;
  g.region = {105, 300, 195, 900};
  g.drawn_l = 90;
  g.drawn_w = 600;
  cell.gates.push_back(g);
  return cell;
}

TEST(LayerNames, RoundTrip) {
  for (std::size_t i = 0; i < kNumLayers; ++i) {
    const Layer layer = static_cast<Layer>(i);
    const auto back = layer_from_name(layer_name(layer));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, layer);
  }
  EXPECT_FALSE(layer_from_name("bogus").has_value());
}

TEST(LayoutDb, CellAndInstanceManagement) {
  LayoutDb db;
  const std::size_t c = db.add_cell(simple_cell("INV"));
  EXPECT_EQ(db.cell_index("INV"), c);
  EXPECT_THROW(db.cell_index("missing"), CheckError);
  EXPECT_THROW(db.add_cell(simple_cell("INV")), CheckError);  // dup name

  db.add_instance({"u1", c, {Orient::kR0, {0, 0}}});
  db.add_instance({"u2", c, {Orient::kMX, {300, 4800}}});
  EXPECT_THROW(db.add_instance({"u1", c, {}}), CheckError);
  EXPECT_EQ(db.num_instances(), 2u);
  EXPECT_EQ(db.instance_index("u2"), 1u);
}

TEST(LayoutDb, FreezeRequiredForQueries) {
  LayoutDb db;
  const std::size_t c = db.add_cell(simple_cell("INV"));
  db.add_instance({"u1", c, {Orient::kR0, {0, 0}}});
  EXPECT_THROW(db.flatten_layer({0, 0, 100, 100}, Layer::kPoly), CheckError);
  db.freeze();
  EXPECT_NO_THROW(db.flatten_layer({0, 0, 100, 100}, Layer::kPoly));
  EXPECT_THROW(db.freeze(), CheckError);
}

TEST(LayoutDb, FlattenTransformsAndClips) {
  LayoutDb db;
  const std::size_t c = db.add_cell(simple_cell("INV"));
  db.add_instance({"u1", c, {Orient::kR0, {1000, 0}}});
  db.freeze();
  const auto rects = db.flatten_layer({0, 0, 5000, 5000}, Layer::kPoly);
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], (Rect{1105, 200, 1195, 2300}));
  // Clipped query.
  const auto clipped = db.flatten_layer({0, 0, 1150, 5000}, Layer::kPoly);
  ASSERT_EQ(clipped.size(), 1u);
  EXPECT_EQ(clipped[0].xhi, 1150);
  // Missing layer empty.
  EXPECT_TRUE(db.flatten_layer({0, 0, 5000, 5000}, Layer::kMetal2).empty());
}

TEST(LayoutDb, FlattenMirroredInstance) {
  LayoutDb db;
  const std::size_t c = db.add_cell(simple_cell("INV"));
  // MX row at base 2400: cell occupies [2400, 4800].
  db.add_instance({"u1", c, {Orient::kMX, {0, 4800}}});
  db.freeze();
  const auto rects = db.flatten_layer({0, 0, 1000, 10000}, Layer::kPoly);
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], (Rect{105, 4800 - 2300, 195, 4800 - 200}));
}

TEST(LayoutDb, FlattenPolysReturnsWholeShapes) {
  LayoutDb db;
  const std::size_t c = db.add_cell(simple_cell("INV"));
  db.add_instance({"u1", c, {Orient::kR0, {0, 0}}});
  db.freeze();
  // Window clips the finger, but the returned polygon is whole.
  const auto polys = db.flatten_layer_polys({0, 0, 300, 500}, Layer::kPoly);
  ASSERT_EQ(polys.size(), 1u);
  EXPECT_EQ(polys[0].bbox(), (Rect{105, 200, 195, 2300}));
}

TEST(LayoutDb, PlacedGatesResolveTransforms) {
  LayoutDb db;
  const std::size_t c = db.add_cell(simple_cell("INV"));
  db.add_instance({"u1", c, {Orient::kR0, {500, 0}}});
  db.add_instance({"u2", c, {Orient::kMX, {500, 4800}}});
  db.freeze();
  const auto& gates = db.placed_gates();
  ASSERT_EQ(gates.size(), 2u);
  EXPECT_EQ(gates[0].region, (Rect{605, 300, 695, 900}));
  EXPECT_EQ(gates[1].region, (Rect{605, 4800 - 900, 695, 4800 - 300}));
  EXPECT_TRUE(gates[0].vertical_poly);
  EXPECT_TRUE(gates[1].vertical_poly);
}

TEST(LayoutDb, TopShapesIncludedInFlatten) {
  LayoutDb db;
  db.add_top_shape(Shape::rect(Layer::kMetal2, {0, 0, 1000, 140}));
  db.freeze();
  const auto rects = db.flatten_layer({0, 0, 2000, 2000}, Layer::kMetal2);
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0], (Rect{0, 0, 1000, 140}));
  EXPECT_EQ(db.extent(), (Rect{0, 0, 1000, 140}));
}

TEST(LayoutDb, OverlappingShapesFlattenDisjoint) {
  LayoutDb db;
  db.add_top_shape(Shape::rect(Layer::kMetal1, {0, 0, 100, 100}));
  db.add_top_shape(Shape::rect(Layer::kMetal1, {50, 0, 150, 100}));
  db.freeze();
  const auto rects = db.flatten_layer({0, 0, 200, 200}, Layer::kMetal1);
  double area = 0.0;
  for (const Rect& r : rects) area += r.area();
  EXPECT_DOUBLE_EQ(area, 150.0 * 100.0);
}

TEST(LayoutIo, RoundTripPreservesEverything) {
  LayoutDb db;
  CellLayout cell = simple_cell("INV");
  // Add a non-rectangular polygon too.
  cell.shapes.push_back(Shape{
      Layer::kPoly,
      Polygon({{0, 0}, {20, 0}, {20, 10}, {10, 10}, {10, 20}, {0, 20}})});
  const std::size_t c = db.add_cell(cell);
  db.add_instance({"u1", c, {Orient::kMX, {300, 2400}}});
  db.add_top_shape(Shape::rect(Layer::kMetal2, {0, 0, 500, 140}));

  const std::string text = layout_to_string(db);
  LayoutDb loaded = layout_from_string(text);
  EXPECT_EQ(loaded.num_cells(), db.num_cells());
  EXPECT_EQ(loaded.num_instances(), db.num_instances());
  EXPECT_EQ(loaded.top_shapes().size(), db.top_shapes().size());
  const CellLayout& lc = loaded.cell(0);
  EXPECT_EQ(lc.name, "INV");
  EXPECT_EQ(lc.shapes.size(), cell.shapes.size());
  EXPECT_EQ(lc.gates.size(), 1u);
  EXPECT_EQ(lc.gates[0].region, (Rect{105, 300, 195, 900}));
  // Round-trip again: identical text.
  EXPECT_EQ(layout_to_string(loaded), text);
}

TEST(LayoutIo, MalformedInputThrows) {
  EXPECT_THROW(layout_from_string("garbage line\n"), CheckError);
  EXPECT_THROW(layout_from_string("cell A 0 0 10 10\n"), CheckError);  // no endcell
}

TEST(SvgDump, RendersLayersAndContours) {
  SvgLayer layer;
  layer.name = "poly";
  layer.fill = "#d33";
  layer.stroke = "none";
  layer.polygons.push_back(Polygon::from_rect({0, 0, 90, 800}));
  SvgContour contour;
  contour.closed = true;
  contour.points = {{10.0, 10.0}, {80.0, 10.0}, {80.0, 790.0}, {10.0, 790.0}};
  const std::string svg =
      svg_to_string({-100, -100, 200, 900}, {layer}, {contour});
  EXPECT_NE(svg.find("<svg"), std::string::npos);
  EXPECT_NE(svg.find("id=\"poly\""), std::string::npos);
  EXPECT_NE(svg.find("<polygon"), std::string::npos);
  EXPECT_NE(svg.find("</svg>"), std::string::npos);
  // Y axis flipped: layout y=10 maps near the bottom of a 1000-tall window.
  EXPECT_THROW(svg_to_string({0, 0, 0, 10}, {}), CheckError);
}

TEST(Tech, DefaultsSane) {
  const Tech& t = Tech::default_tech();
  EXPECT_EQ(t.gate_length, 90);
  EXPECT_GT(t.cell_height, 0);
  EXPECT_GT(t.m1_cap_per_um_ff, 0.0);
}

}  // namespace
}  // namespace poc
